(** The [daenerys] command-line interface.

    - [daenerys suite -j N]      verify the whole benchmark suite
    - [daenerys verify NAME]     verify one suite entry (verbose)
    - [daenerys verify FILE.hl]  parse, elaborate and verify a surface file
    - [daenerys lint [NAME…]]    static analysis only, no solver
                                 (names ending in [.hl] are loaded as files)
    - [daenerys run NAME]        execute a suite program concretely
    - [daenerys list]            list suite entries

    Surface files ([.hl]) go through the located front-end: the lexer
    and parser stamp every node with a [file:line:col] span, the
    elaborator records a source map per specification clause, and both
    lint findings and verification failures are re-anchored at their
    source — with a caret snippet in pretty output and a ["span"]
    object in [--json].

    All verification goes through the parallel engine ([lib/engine]):
    [-j 1] is the same job pipeline on one domain, so parallel and
    sequential runs are comparable by construction. Timing is
    wall-clock ([Unix.gettimeofday]) — CPU time ([Sys.time]) would
    over-report under parallelism by summing across domains.

    [lint] (and the [--lint] gate on [suite]/[verify]) runs the
    pre-verification static analyzer of [lib/analysis]: spec
    well-formedness, stability explanations with ⌊·⌋ suggestions, and
    the per-branch frame lint — exit status 1 on any error-severity
    diagnostic.

    Exit codes separate judgement from abstention: 0 means every entry
    behaved as expected, 1 means a program is wrong (a failed
    verification, a misbehaving suite entry, or error-severity lint
    findings), 2 means the verifier {e gave up} somewhere — timeout,
    resource exhaustion, or crash — without finding anything wrong.
    [--timeout-ms]/[--retries] bound and retry each verification job;
    [--faults] (or [DAENERYS_FAULTS]) activates seeded fault
    injection for chaos testing. *)

module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module Pr = Suite.Programs
module E = Engine
module R = Server.Render
module Json = Server.Json
open Cmdliner

let find_entry name =
  List.find_opt (fun (e : Pr.entry) -> String.equal e.name name) Pr.all

let config ~jobs ~no_cache ~lint ~no_absint ~seed ~timeout_ms ~retries =
  {
    E.default_config with
    E.domains = max 1 jobs;
    cache = not no_cache;
    lint;
    absint = not no_absint;
    seed;
    timeout_ms;
    retries;
  }

(* Exit codes (also in the README): the program is wrong vs. the
   verifier gave up. Shared with the daemon via [Server.Render]. *)
let exit_ok = R.exit_ok
let exit_wrong = R.exit_wrong
let exit_gave_up = R.exit_gave_up

let fail_cli msg =
  Fmt.epr "daenerys: %s@." msg;
  exit_wrong

(** Activate [--faults SPEC] before any verification work. *)
let with_faults faults k =
  match faults with
  | None -> k ()
  | Some spec -> (
      match Stdx.Fault.configure_from_string spec with
      | Ok () -> k ()
      | Error m -> fail_cli m)

(* ------------------------------------------------------------------ *)
(* Surface (.hl) files *)

let is_hl name = Filename.check_suffix name ".hl"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Load an annotated surface file: parse and elaborate, returning the
    program, its source map, and the source text (for caret snippets).
    Front-end errors come back rendered, span and snippet included —
    the elaboration (and its error rendering) is the daemon's, so a
    file fed through [daenerys client] fails with the same message. *)
let load_hl path :
    (V.program * Diag.srcmap * string, string) result =
  if not (Sys.file_exists path) then Error ("no such file: " ^ path)
  else
    let src = read_file path in
    Result.map
      (fun (prog, srcmap) -> (prog, srcmap, src))
      (Server.Daemon.elaborate_source ~file:path src)

(** Print per-program lint findings (skipping clean programs). When a
    finding carries a span into one of [sources] (file → text), its
    caret snippet follows the one-line form. *)
let print_lint_findings ?(sources = []) results =
  let snippet d =
    match d.Diag.loc.Diag.span with
    | Some s when s.Stdx.Loc.file <> "" -> (
        match List.assoc_opt s.Stdx.Loc.file sources with
        | Some src -> Fmt.pr "%a@." Stdx.Loc.pp_snippet (src, s)
        | None -> ())
    | _ -> ()
  in
  List.iter
    (fun (_, ds) ->
      List.iter
        (fun d ->
          Fmt.pr "%a@." Diag.pp d;
          snippet d)
        ds)
    results

(* Entry statuses, verdict lines, exit-code folding and the [--json]
   report document all live in [Server.Render], shared with the
   daemon. *)

let entry_status (e : Pr.entry) (g : E.group_result) =
  R.entry_status ~expect_fail:e.expect_fail g

(** Print one entry's verdict line; returns its status. *)
let report_entry (e : Pr.entry) (g : E.group_result) =
  let status = entry_status e g in
  Fmt.pr "%-14s %-24s %6.1fms@." e.name
    (R.verdict_line ~expect_fail:e.expect_fail status)
    g.E.ms;
  status

let exit_of_statuses = R.exit_of_statuses
let json_of_report = R.json_of_report

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Number of worker domains.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the content-addressed VC cache.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print the engine stats block.")

let no_absint_arg =
  Arg.(
    value & flag
    & info [ "no-absint" ]
        ~doc:
          "Disable the abstract-interpretation pass: the DA018-DA025 \
           diagnostics in the lint stage and the interval/parity \
           pre-discharge of verification conditions ahead of the solver. \
           Verdicts are unaffected either way (the pass short-circuits \
           only $(b,Valid) obligations); this is the escape hatch and the \
           A/B switch for measuring its overhead.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Scheduler seed: permutes the order in which $(b,par) branches \
           are explored (and, under $(b,run), which branch each \
           interleaving step picks). Verdicts are schedule-independent — \
           every branch is verified under every seed — so this is a \
           determinism check, not a search knob. 0 (the default) is the \
           deterministic left-first order.")

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the static analyzer before verification; programs with \
           error-severity diagnostics fail without touching the solver.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock deadline per verification job, in milliseconds. A \
           job that overruns reports $(b,timeout) instead of hanging its \
           worker; see $(b,--retries).")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a job up to $(docv) times when it times out or runs out \
           of solver fuel, escalating the deadline 8x per attempt.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Activate seeded fault injection for chaos testing, e.g. \
           $(b,session=0.3,cache=0.1,seed=42). Sites: solver, session, \
           cache, pool, socket, worker, stall, disk. Equivalent to \
           setting $(b,DAENERYS_FAULTS).")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit per-procedure outcomes and run stats as JSON.")

let suite_cmd =
  let doc = "Verify every program in the benchmark suite." in
  Cmd.v (Cmd.info "suite" ~doc)
    Term.(
      const (fun jobs no_cache stats lint no_absint seed timeout_ms retries
                 faults json ->
          with_faults faults @@ fun () ->
          let report =
            E.verify_programs
              ~config:
                (config ~jobs ~no_cache ~lint ~no_absint ~seed ~timeout_ms
                   ~retries)
              (List.map (fun (e : Pr.entry) -> (e.name, e.prog)) Pr.all)
          in
          if json then begin
            let statuses =
              List.map2 entry_status Pr.all report.E.groups
            in
            let rows =
              List.map2
                (fun (e : Pr.entry) s -> (e.Pr.name, e.Pr.expect_fail, s))
                Pr.all statuses
            in
            Fmt.pr "%s@." (json_of_report report rows);
            exit_of_statuses statuses
          end
          else begin
            if lint then print_lint_findings report.E.lint;
            let statuses =
              List.map2 (fun e g -> report_entry e g) Pr.all report.E.groups
            in
            Fmt.pr "total %.1fms wall (%d jobs, %d domain(s), cache %s)@."
              report.E.stats.E.wall_ms report.E.stats.E.jobs
              report.E.stats.E.pool.E.Pool.domains
              (if no_cache then "off" else "on");
            if stats then Fmt.pr "%a@." E.pp_stats report.E.stats;
            (match exit_of_statuses statuses with
            | 0 -> ()
            | 1 -> Fmt.epr "daenerys: some entries misbehaved@."
            | _ ->
                Fmt.epr
                  "daenerys: the verifier gave up on some entries \
                   (timeout/resource/crash)@.");
            exit_of_statuses statuses
          end)
      $ jobs_arg $ no_cache_arg $ stats_arg $ lint_flag $ no_absint_arg
      $ seed_arg $ timeout_arg $ retries_arg $ faults_arg $ json_flag)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")

let print_proc_outcomes (g : E.group_result) =
  List.iter
    (fun (p, o) -> Fmt.pr "  proc %-12s %a@." p V.pp_outcome o)
    g.E.outcomes

let verify_file path ~jobs ~no_cache ~lint ~no_absint ~seed ~stats
    ~timeout_ms ~retries ~json =
  match load_hl path with
  | Error m -> fail_cli m
  | Ok (prog, srcmap, src) ->
      let report =
        E.verify_programs
          ~config:
            (config ~jobs ~no_cache ~lint ~no_absint ~seed ~timeout_ms
               ~retries)
          ~srcmaps:[ (path, srcmap) ]
          [ (path, prog) ]
      in
      let g = List.hd report.E.groups in
      let ok = E.group_ok g in
      let status =
        if ok then R.Good else if E.group_gave_up g then R.Gave_up else R.Bad
      in
      if json then
        Fmt.pr "%s@." (json_of_report report [ (path, false, status) ])
      else begin
        if lint then
          print_lint_findings ~sources:[ (path, src) ] report.E.lint;
        print_proc_outcomes g;
        Fmt.pr "%-24s %s  %.1fms@." path
          (if ok then "VERIFIED"
           else if E.group_gave_up g then "GAVE UP"
           else "FAILED")
          g.E.ms;
        if stats then Fmt.pr "%a@." E.pp_stats report.E.stats
      end;
      (match status with
      | R.Good -> exit_ok
      | R.Gave_up -> exit_gave_up
      | R.Bad -> exit_wrong)

let verify_cmd =
  let doc =
    "Verify one suite entry (by name) or an annotated surface file \
     (by .hl path), with statistics."
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const (fun name jobs no_cache lint no_absint seed timeout_ms retries
                 faults json ->
          with_faults faults @@ fun () ->
          if is_hl name then
            verify_file name ~jobs ~no_cache ~lint ~no_absint ~seed
              ~stats:false ~timeout_ms ~retries ~json
          else
          match find_entry name with
          | Some e ->
              let report =
                E.verify_program
                  ~config:
                    (config ~jobs ~no_cache ~lint ~no_absint ~seed
                       ~timeout_ms ~retries)
                  ~name:e.name e.prog
              in
              let g = List.hd report.E.groups in
              if json then begin
                let status = entry_status e g in
                Fmt.pr "%s@."
                  (json_of_report report
                     [ (e.Pr.name, e.Pr.expect_fail, status) ]);
                match status with
                | R.Good -> exit_ok
                | R.Gave_up -> exit_gave_up
                | R.Bad -> exit_wrong
              end
              else begin
                if lint then print_lint_findings report.E.lint;
                let status = report_entry e g in
                print_proc_outcomes g;
                Fmt.pr "%a@." E.pp_stats report.E.stats;
                match status with
                | R.Good -> exit_ok
                | R.Gave_up -> exit_gave_up
                | R.Bad ->
                    Fmt.epr "daenerys: verification misbehaved@.";
                    exit_wrong
              end
          | None -> fail_cli ("unknown entry " ^ name))
      $ name_arg $ jobs_arg $ no_cache_arg $ lint_flag $ no_absint_arg
      $ seed_arg $ timeout_arg $ retries_arg $ faults_arg $ json_flag)

(* ------------------------------------------------------------------ *)
(* lint *)

let lint_targets () =
  List.map (fun (e : Pr.entry) -> (e.name, e.prog)) Pr.all
  @ Suite.Examples.all

let lint_cmd =
  let doc =
    "Run the pre-verification static analyzer (no solver). Lints the \
     whole suite and the example programs by default, or just the \
     named entries; exits 1 on any error-severity diagnostic."
  in
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")
  in
  let ill_formed_arg =
    Arg.(
      value & flag
      & info [ "ill-formed" ]
          ~doc:
            "Lint the negative suite of deliberately ill-formed \
             programs instead, checking each produces its expected \
             diagnostic codes.")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const (fun names jobs json ill_formed no_absint stats ->
          if ill_formed then begin
            (* Expectation check over the lint-negative suite. *)
            let failures = ref 0 in
            List.iter
              (fun (c : Suite.Ill_formed.case) ->
                let ds =
                  Analysis.analyze_program ~name:c.Suite.Ill_formed.name
                    c.Suite.Ill_formed.prog
                in
                let got = List.map (fun d -> d.Diag.code) ds in
                let missing =
                  List.filter
                    (fun code -> not (List.mem code got))
                    c.Suite.Ill_formed.codes
                in
                if missing = [] then
                  Fmt.pr "%-20s ok  [%s]@." c.Suite.Ill_formed.name
                    (String.concat " " c.Suite.Ill_formed.codes)
                else begin
                  incr failures;
                  Fmt.pr "%-20s MISSING [%s] — got:@.%a@."
                    c.Suite.Ill_formed.name
                    (String.concat " " missing)
                    Diag.pp_list ds
                end)
              Suite.Ill_formed.all;
            if !failures = 0 then exit_ok
            else
              fail_cli
                (Printf.sprintf "%d ill-formed case(s) missed their codes"
                   !failures)
          end
          else
            (* Names ending in [.hl] are surface files; anything else
               must be a suite / example entry. *)
            let targets =
              match names with
              | [] -> Ok (lint_targets (), [], [])
              | ns ->
                  let all = lint_targets () in
                  let rec pick acc maps srcs = function
                    | [] -> Ok (List.rev acc, maps, srcs)
                    | n :: rest when is_hl n -> (
                        match load_hl n with
                        | Error m -> Error m
                        | Ok (prog, srcmap, src) ->
                            pick ((n, prog) :: acc)
                              ((n, srcmap) :: maps)
                              ((n, src) :: srcs)
                              rest)
                    | n :: rest -> (
                        match List.assoc_opt n all with
                        | Some p -> pick ((n, p) :: acc) maps srcs rest
                        | None -> Error ("unknown entry " ^ n))
                  in
                  pick [] [] [] ns
            in
            match targets with
            | Error m -> fail_cli m
            | Ok (targets, srcmaps, sources) ->
                let results, a =
                  E.run_analysis ~srcmaps ~absint:(not no_absint)
                    ~domains:(max 1 jobs) targets
                in
                let all_ds = List.concat_map snd results in
                if json then
                  Fmt.pr "%s@." (Diag.list_to_json (Diag.sort all_ds))
                else begin
                  print_lint_findings ~sources results;
                  Fmt.pr
                    "lint: %d program(s), %d finding(s), %d error(s)@."
                    a.E.a_programs a.E.a_diags a.E.a_errors
                end;
                if stats then
                  Fmt.pr "analysis wall time: %.1fms on %d domain(s)@."
                    a.E.a_wall_ms (max 1 jobs);
                if Diag.has_errors all_ds then
                  fail_cli "error-severity diagnostics found"
                else exit_ok)
      $ names_arg $ jobs_arg $ json_arg $ ill_formed_arg $ no_absint_arg
      $ stats_arg)

let list_cmd =
  let doc = "List the suite entries." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (e : Pr.entry) ->
              Fmt.pr "%-14s %s%s@." e.name e.descr
                (if e.expect_fail then "  [negative test]" else ""))
            Pr.all;
          exit_ok)
      $ const ())

let run_cmd =
  let doc =
    "Run a suite program concretely (symbols closed with small values)."
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const (fun name seed ->
          match find_entry name with
          | None -> fail_cli ("unknown entry " ^ name)
          | Some e -> (
              match
                List.find_opt
                  (fun p -> String.equal p.V.pname e.main)
                  e.prog.V.procs
              with
              | None -> fail_cli "no main procedure"
              | Some p ->
                  (* Allocate a cell per pointer-looking parameter,
                     close the rest with small integers. A parameter is
                     pointer-looking if the spec (requires or any named
                     invariant) uses it as a points-to location, or —
                     the historical heuristic — if it is a single
                     letter from the usual pointer alphabet. *)
                  let rec loc_vars acc = function
                    | A.Points_to { loc; _ } -> (
                        match loc.Smt.Term.node with
                        | Smt.Term.Var (x, _) -> x :: acc
                        | _ -> acc)
                    | A.Sep (a, b) | A.Wand (a, b) | A.And (a, b)
                    | A.Or (a, b) ->
                        loc_vars (loc_vars acc a) b
                    | A.Exists (_, a) | A.Forall (_, a)
                    | A.Persistently a | A.Later a | A.Upd a
                    | A.Stabilize a | A.Wp (_, _, a) ->
                        loc_vars acc a
                    | A.Pure _ | A.Emp | A.Pred _ | A.Ghost _ -> acc
                  in
                  let spec_locs =
                    List.fold_left
                      (fun acc (_, body) -> loc_vars acc body)
                      (loc_vars [] p.V.requires)
                      e.prog.V.invs
                  in
                  let closure =
                    List.mapi
                      (fun i x ->
                        if List.mem x spec_locs
                           || (String.length x = 1
                               && (x.[0] = 'l' || x.[0] = 'r' || x.[0] = 'i'
                                   || x.[0] = 'a' || x.[0] = 'b'))
                        then (x, HL.Loc i)
                        else (x, HL.Int 3))
                      p.V.params
                  in
                  let body = Heaplang.Subst.close_expr closure p.V.body in
                  let allocs =
                    List.fold_left
                      (fun acc _ -> HL.Seq (HL.Alloc (HL.Val (HL.Int 0)), acc))
                      body p.V.params
                  in
                  (match
                     (if seed = 0 then Heaplang.Interp.run allocs
                      else Heaplang.Interp.run ~seed allocs)
                   with
                  | Heaplang.Interp.Value v ->
                      Fmt.pr "result: %a@." HL.pp_value v
                  | Heaplang.Interp.Error m -> Fmt.pr "runtime error: %s@." m
                  | Heaplang.Interp.Timeout -> Fmt.pr "timeout@.");
                  exit_ok))
      $ name_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* serve / client: the daemon and its CLI front door (lib/server) *)

let socket_arg =
  Arg.(
    value
    & opt string Server.Daemon.default_config.Server.Daemon.socket_path
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let doc =
    "Run the verification daemon: a long-lived process with warm worker \
     domains and a two-tier (memory + disk) VC cache, serving \
     newline-delimited JSON requests on a Unix-domain socket."
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the VC cache on disk under $(docv), so verdicts for \
             unchanged programs survive daemon restarts. Default: memory \
             only.")
  in
  let cache_mb_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:"Size bound for the disk cache tier, in MiB (LRU eviction).")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Max queued requests per client; further submissions get an \
             immediate $(b,busy) response instead of unbounded buffering.")
  in
  let max_inflight_arg =
    Arg.(
      value
      & opt int Server.Daemon.default_config.Server.Daemon.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Global pending-request budget across all clients. Above it \
             new solve work is shed with $(b,busy) + a retry-after hint, \
             while lint and verdict-cache hits keep being served inline \
             (degraded mode). 0 disables shedding.")
  in
  let breaker_arg =
    Arg.(
      value
      & opt int Server.Daemon.default_config.Server.Daemon.breaker_threshold
      & info [ "breaker" ] ~docv:"N"
          ~doc:
            "Circuit breaker: quarantine a request digest after $(docv) \
             consecutive worker crashes; quarantined requests are \
             rejected immediately with a retry-after hint until the \
             cooldown lets a probe through. 0 disables the breaker.")
  in
  let breaker_cooldown_arg =
    Arg.(
      value
      & opt float
          Server.Daemon.default_config.Server.Daemon.breaker_cooldown_ms
      & info [ "breaker-cooldown-ms" ] ~docv:"MS"
          ~doc:"Quarantine duration before the breaker half-opens.")
  in
  let watchdog_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watchdog-ms" ] ~docv:"MS"
          ~doc:
            "Fixed watchdog budget per request. Default: derived from each \
             request's own deadline/retry envelope (requests without a \
             deadline are not watched).")
  in
  let watchdog_grace_arg =
    Arg.(
      value
      & opt float Server.Daemon.default_config.Server.Daemon.watchdog_grace
      & info [ "watchdog-grace" ] ~docv:"X"
          ~doc:
            "Watchdog grace factor: at budget x $(docv) the request's \
             ambient budget is cancelled, at twice that the worker is \
             declared stuck, its request answered with a retryable error, \
             and the domain written off and replaced.")
  in
  let recycle_arg =
    Arg.(
      value
      & opt int Server.Daemon.default_config.Server.Daemon.recycle_after
      & info [ "recycle-after" ] ~docv:"N"
          ~doc:
            "Recycle a worker domain after $(docv) crashes on its slot \
             (suspect domain-local state). 0 disables recycling.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const
        (fun socket jobs cache_dir cache_mb queue timeout_ms retries faults
             max_inflight breaker breaker_cooldown_ms watchdog_ms
             watchdog_grace recycle_after ->
          with_faults faults @@ fun () ->
          let cfg =
            {
              Server.Daemon.default_config with
              Server.Daemon.socket_path = socket;
              workers = max 1 jobs;
              queue_bound = queue;
              cache_dir;
              cache_max_bytes = cache_mb * 1024 * 1024;
              timeout_ms;
              retries;
              max_inflight;
              breaker_threshold = breaker;
              breaker_cooldown_ms;
              watchdog_ms;
              watchdog_grace;
              recycle_after;
            }
          in
          Fmt.pr "daenerys: serving on %s (%d worker(s), cache: %s)@." socket
            (max 1 jobs)
            (match cache_dir with
            | Some d -> "memory + disk at " ^ d
            | None -> "memory only");
          match Server.Daemon.run cfg with
          | Ok () ->
              Fmt.pr "daenerys: daemon stopped@.";
              exit_ok
          | Error m -> fail_cli m)
      $ socket_arg $ jobs_arg $ cache_dir_arg $ cache_mb_arg $ queue_arg
      $ timeout_arg $ retries_arg $ faults_arg $ max_inflight_arg
      $ breaker_arg $ breaker_cooldown_arg $ watchdog_ms_arg
      $ watchdog_grace_arg $ recycle_arg)

(* The daemon either judged the request (wrong: exit 1) or was never
   successfully asked — dead, unreachable, or still shedding after the
   retry budget (gave up: exit 2). Conflating the two would let an
   outage masquerade as a failed verification. *)
let fail_unavailable msg =
  Fmt.epr "daenerys: %s@." msg;
  exit_gave_up

let client_target name : (Server.Protocol.target, string) result =
  if is_hl name then
    if Sys.file_exists name then
      (* Ship the source inline: daemon and client need not share a
         working directory. *)
      Ok (Server.Protocol.Source { file = name; source = read_file name })
    else Error ("no such file: " ^ name)
  else Ok (Server.Protocol.Entry name)

(* Fold per-request exit codes like [Render.exit_of_statuses]: a wrong
   program (1) dominates the verifier giving up (2). *)
let combine_exits a b = if a = exit_wrong || b = exit_wrong then exit_wrong else max a b

let client_cmd =
  let doc =
    "Drive a running daemon: verify suite entries or .hl files over the \
     socket, print the daemon's reports, and propagate its 0/1/2 exit \
     codes. CI and the test suite use this to exercise the warm path."
  in
  let names_arg = Arg.(value & pos_all string [] & info [] ~docv:"NAME") in
  let suite_flag =
    Arg.(
      value & flag
      & info [ "suite" ] ~doc:"Verify every suite entry through the daemon.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the daemon's statistics (scheduler + cache) as JSON.")
  in
  let shutdown_flag =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Ask the daemon to drain in-flight work and exit.")
  in
  (* Per-request override: absent means "use the daemon's default",
     unlike the local [retries_arg] whose default is 0. *)
  let retries_opt_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Per-request retry override; defaults to the daemon's \
             configured retries.")
  in
  let retry_arg =
    Arg.(
      value
      & opt int Server.Client.default_retry.Server.Client.attempts
      & info [ "retry" ] ~docv:"N"
          ~doc:
            "Client-side resilience: total attempts per request. Between \
             attempts the client reconnects if needed and sleeps a \
             jittered exponential backoff (or the daemon's retry-after \
             hint, whichever is larger). Retried operations are \
             idempotent, so this never changes a verdict — only whether \
             one is obtained.")
  in
  let no_retry_flag =
    Arg.(
      value & flag
      & info [ "no-retry" ]
          ~doc:
            "Fail fast: one attempt per request, no reconnect. Same as \
             $(b,--retry 1).")
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const
        (fun socket names suite stats shutdown json lint no_absint seed
             timeout_ms retries retry no_retry ->
          let absint = not no_absint in
          let retry =
            {
              Server.Client.default_retry with
              Server.Client.attempts = (if no_retry then 1 else max 1 retry);
            }
          in
          let s = Server.Client.open_session ~retry socket in
          Fun.protect
            ~finally:(fun () -> Server.Client.close_session s)
            (fun () ->
              let names =
                if suite then
                  List.map (fun (e : Pr.entry) -> e.Pr.name) Pr.all
                else names
              in
              if stats then
                match
                  Server.Client.request s (Server.Protocol.stats_request ())
                with
                | Error (Server.Client.Fatal m) -> fail_cli m
                | Error (Server.Client.Unavailable m) -> fail_unavailable m
                | Ok resp ->
                    Fmt.pr "%s@."
                      (Json.to_string
                         (Option.value ~default:resp
                            (Json.member "stats" resp)));
                    exit_ok
              else if names = [] && not shutdown then
                fail_cli
                  "nothing to do: give entry NAMEs, .hl files, --suite, \
                   --stats or --shutdown"
              else
                let verify_one name =
                  match client_target name with
                  | Error m ->
                      Fmt.epr "daenerys: %s@." m;
                      exit_wrong
                  | Ok target -> (
                      match
                        Server.Client.request s
                          (Server.Protocol.verify_request ~lint ~absint
                             ~seed ?timeout_ms ?retries target)
                      with
                      | Error (Server.Client.Fatal m) ->
                          Fmt.epr "daenerys: %s: %s@." name m;
                          exit_wrong
                      | Error (Server.Client.Unavailable m) ->
                          Fmt.epr "daenerys: %s: %s@." name m;
                          exit_gave_up
                      | Ok resp ->
                          if json then
                            Fmt.pr "%s@."
                              (Json.to_string
                                 (Option.value ~default:resp
                                    (Json.member "report" resp)))
                          else
                            Fmt.pr "%s"
                              (Option.value ~default:""
                                 (Json.str_member "output" resp));
                          Option.value ~default:exit_wrong
                            (Json.int_member "exit" resp))
                in
                let ec =
                  List.fold_left
                    (fun acc n -> combine_exits acc (verify_one n))
                    exit_ok names
                in
                if shutdown then
                  match
                    Server.Client.request s
                      (Server.Protocol.shutdown_request ())
                  with
                  | Error (Server.Client.Fatal m) -> fail_cli m
                  | Error (Server.Client.Unavailable m) -> fail_unavailable m
                  | Ok _ ->
                      Fmt.pr "daenerys: shutdown acknowledged@.";
                      ec
                else ec))
          $ socket_arg $ names_arg $ suite_flag $ stats_flag $ shutdown_flag
          $ json_flag $ lint_flag $ no_absint_arg $ seed_arg $ timeout_arg
          $ retries_opt_arg $ retry_arg $ no_retry_flag)

let () =
  let doc = "a destabilized separation-logic verifier" in
  let info = Cmd.info "daenerys" ~version:"0.1" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            suite_cmd;
            verify_cmd;
            lint_cmd;
            list_cmd;
            run_cmd;
            serve_cmd;
            client_cmd;
          ]))
