(** The forward abstract interpreter over the heaplang executable
    fragment: {!Absdom}'s interval×parity environment threaded through
    {!Domain}'s symbolic heap, seeded from the requires clause and run
    over each procedure body. Branches split on the abstract truth of
    the condition and re-join ({!Domain.join}); loop heads are handled
    the way the executor handles them — the declared invariant is
    inhaled into a havocked state, the body is checked from there, and
    the frame (entry chunks the invariant does not claim) is restored
    on exit. Loops *without* an invariant (only reachable from the
    test harness — the analyzer's well-formedness pass makes them a
    DA008 error first) fall back to a classic join/widen fixpoint.

    Two consumers:

    - the DA018–DA025 diagnostics below, reported through the same
      {!Diag} machinery as the stability and frame lints;
    - {!eval_expr}, the analysis-free entry point the soundness tests
      and the verifier's VC pre-discharge build on.

    Severities: a *definite* contradiction in a spec the verifier will
    trust (DA018 division by zero, DA020 contradictory requires, DA021
    trivially-false ensures) is an error — the procedure either cannot
    run or verifies vacuously. Everything else is advice (warnings):
    dead branches, non-inductive invariants, redundant stabilization,
    unused parameters, missing variants.

    Soundness contract (property-tested in [test/test_analysis.ml]):
    for a closed expression, the abstract state computed here
    over-approximates every concrete {!Heaplang.Interp} run — so a
    {!Domain.holds} = [Yes] fact is true of every reachable concrete
    state, which is exactly what lets the verifier short-circuit
    [Valid] verdicts without consulting the SMT backend. *)

open Stdx
module A = Baselogic.Assertion
module K = Baselogic.Kernel
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module AD = Absdom

type ctx = {
  unit_name : string;
  proc : V.proc option;
  diags : Diag.t list ref;
  mutable mute : bool;
      (** suppress reporting — set during fixpoint iteration, where a
          not-yet-stable candidate state would make "definitely
          unreachable" claims that the widened state retracts *)
}

let add ctx d = if not ctx.mute then ctx.diags := d :: !(ctx.diags)

let with_mute ctx f =
  let saved = ctx.mute in
  ctx.mute <- true;
  Fun.protect ~finally:(fun () -> ctx.mute <- saved) f

let ploc ctx site =
  let context =
    match ctx.proc with
    | Some p -> Diag.Proc p.V.pname
    | None -> Diag.Program
  in
  Diag.loc ~unit_name:ctx.unit_name context site

(** The executor's unit value, for expression positions whose result
    is always [()]. *)
let tunit = K.value_term HL.Unit

(* ------------------------------------------------------------------ *)
(* The interpreter *)

(* Join two (state, value) pairs from a branch split: agreeing value
   terms survive; a disagreement becomes a fresh abstract atom equated
   with each branch's value *before* the join, so the joined
   environment carries the join of the two abstract values. *)
let join_values sta va stb vb =
  if Domain.is_bot sta then (stb, vb)
  else if Domain.is_bot stb then (sta, va)
  else
    match (va, vb) with
    | Some a, Some b when T.equal a b -> (Domain.join sta stb, va)
    | Some a, Some b ->
        let x = Domain.fresh_atom () in
        let bind st t = Domain.assume st (Some (T.eq x t)) in
        (Domain.join (bind sta a) (bind stb b), Some x)
    | _ -> (Domain.join sta stb, None)

let rec eval ctx (st : Domain.t) (venv : T.t Smap.t) (e : HL.expr) :
    Domain.t * T.t option =
  if Domain.is_bot st then (st, None)
  else
    match e with
    | HL.Val v -> (st, K.value_term v)
    | HL.Var x -> (st, Smap.find_opt x venv)
    | HL.Let (x, e1, e2) ->
        let st, t1 = eval ctx st venv e1 in
        let v = match t1 with Some t -> t | None -> Domain.fresh_atom () in
        eval ctx st (Smap.add x v venv) e2
    | HL.Seq (a, b) ->
        let st, _ = eval ctx st venv a in
        eval ctx st venv b
    | HL.UnOp (HL.Neg, e) ->
        let st, t = eval ctx st venv e in
        (st, Option.map (fun t -> T.sub (T.int 0) t) t)
    | HL.UnOp (HL.Not, e) ->
        (* the executor's boolean complement on the 0/1 encoding *)
        let st, t = eval ctx st venv e in
        (st, Option.map (fun t -> T.sub (T.int 1) t) t)
    | HL.BinOp ((HL.Div | HL.Rem) as op, a, b) ->
        let st, ta = eval ctx st venv a in
        let st, tb = eval ctx st venv b in
        (match tb with
        | Some tb
          when (not (Domain.is_bot st))
               && Domain.holds st (T.eq tb (T.int 0)) = AD.Yes ->
            add ctx
              (Diag.error ~code:"DA018"
                 ~hint:
                   "guard the division (e.g. [if (d == 0) ... else e / d]) \
                    or strengthen the specification to exclude 0"
                 ~loc:(ploc ctx Diag.Body)
                 "definite division by zero: the divisor %a is 0 in every \
                  state reaching this %s"
                 T.pp tb
                 (match op with HL.Div -> "division" | _ -> "remainder"))
        | _ -> ());
        let r =
          match (ta, tb) with
          | Some ta, Some tb -> (
              match (T.view ta, T.view tb) with
              | T.Int_lit m, T.Int_lit n when n <> 0 ->
                  Some (T.int (match op with HL.Div -> m / n | _ -> m mod n))
              | _ -> None (* the executor faults on symbolic divisors *))
          | _ -> None
        in
        (st, r)
    | HL.BinOp (op, a, b) ->
        let st, ta = eval ctx st venv a in
        let st, tb = eval ctx st venv b in
        let r =
          match (ta, tb) with
          | Some ta, Some tb -> K.binop_term op ta tb
          | _ -> None
        in
        (st, r)
    | HL.If (c, e1, e2) ->
        let st, cf = cond ctx st venv c in
        let st_then = Domain.assume st cf in
        let st_else = Domain.assume_not st cf in
        (match cf with
        | Some _ when not (Domain.is_bot st) ->
            let dead which =
              add ctx
                (Diag.warning ~code:"DA019"
                   ~hint:
                     "the interval/parity abstraction proves the condition \
                      constant on every path reaching it; drop the branch or \
                      fix the condition"
                   ~loc:(ploc ctx Diag.Body)
                   "definitely-unreachable branch: the %s-branch of this \
                    [if] is dead"
                   which)
            in
            if Domain.is_bot st_then && not (Domain.is_bot st_else) then
              dead "then"
            else if Domain.is_bot st_else && not (Domain.is_bot st_then) then
              dead "else"
        | _ -> ());
        let st1, v1 =
          if Domain.is_bot st_then then (st_then, None)
          else eval ctx st_then venv e1
        in
        let st2, v2 =
          if Domain.is_bot st_else then (st_else, None)
          else eval ctx st_else venv e2
        in
        join_values st1 v1 st2 v2
    | HL.While (c, body) -> (
        let inv =
          match ctx.proc with
          | None -> None
          | Some p ->
              let rec find i = function
                | [] -> None
                | (n, a) :: _ when n == e -> Some (i, a)
                | _ :: tl -> find (i + 1) tl
              in
              ignore body;
              find 0 p.V.invariants
        in
        match inv with
        | Some (idx, inv) -> while_with_inv ctx st venv c body idx inv
        | None -> while_fixpoint ctx st venv c body)
    | HL.Alloc e ->
        let st, tv = eval ctx st venv e in
        let v = match tv with Some v -> v | None -> Domain.fresh_atom () in
        let st, l = Domain.alloc st v in
        (st, Some l)
    | HL.Load e -> (
        let st, tl = eval ctx st venv e in
        match tl with
        | Some l -> (st, Some (Domain.load st l))
        | None -> (st, None))
    | HL.Store (el, ev) -> (
        let st, tl = eval ctx st venv el in
        let st, tv = eval ctx st venv ev in
        match (tl, tv) with
        | Some l, Some v -> (Domain.store st l v, tunit)
        | Some l, None -> (Domain.store st l (Domain.fresh_atom ()), tunit)
        | None, _ -> (Domain.havoc_values st, tunit))
    | HL.Free e -> (
        let st, tl = eval ctx st venv e in
        match tl with
        | Some l -> (Domain.remove st l, tunit)
        | None ->
            (* freeing an unknown location may deallocate any chunk *)
            ({ st with Domain.heap = [] }, tunit))
    | HL.Faa (el, ed) -> (
        let st, tl = eval ctx st venv el in
        let st, td = eval ctx st venv ed in
        match tl with
        | Some l -> (
            match (Domain.find_chunk st l, td) with
            | Some (_, old), Some d -> (Domain.store st l (T.add old d), Some old)
            | Some (_, old), None ->
                (Domain.store st l (Domain.fresh_atom ()), Some old)
            | None, _ -> (Domain.havoc_values st, None))
        | None -> (Domain.havoc_values st, None))
    | HL.Cas (el, ee, ed) -> (
        let st, tl = eval ctx st venv el in
        let st, te = eval ctx st venv ee in
        let st, td = eval ctx st venv ed in
        match (tl, te) with
        | Some l, Some expected ->
            let cur = Domain.load st l in
            let win = Domain.assume st (Some (T.eq cur expected)) in
            let win =
              match td with
              | Some d -> Domain.store win l d
              | None -> Domain.store win l (Domain.fresh_atom ())
            in
            let lose = Domain.assume_not st (Some (T.eq cur expected)) in
            join_values win (Some (T.int 1)) lose (Some (T.int 0))
        | _ -> (Domain.havoc_values st, None))
    | HL.Assert e ->
        (* continuing executions are exactly those where the test held *)
        let st, cf = cond ctx st venv e in
        (Domain.assume st cf, tunit)
    | HL.GhostMark _ ->
        (* fold/unfold/ghost updates never change program values *)
        (st, tunit)
    | HL.App (f, a) ->
        let st, _ = eval ctx st venv f in
        let st, _ = eval ctx st venv a in
        (* an unknown callee may mutate or free anything we own *)
        ({ st with Domain.heap = [] }, None)
    | HL.Rec _ -> (st, None)
    | HL.PairE (a, b) ->
        let st, _ = eval ctx st venv a in
        let st, _ = eval ctx st venv b in
        (st, None)
    | HL.Fst e | HL.Snd e | HL.InjRE e | HL.InjLE e ->
        let st, _ = eval ctx st venv e in
        (st, None)
    | HL.Case (e, (x1, e1), (x2, e2)) ->
        let st, _ = eval ctx st venv e in
        let st1, v1 = eval ctx st (Smap.add x1 (Domain.fresh_atom ()) venv) e1 in
        let st2, v2 = eval ctx st (Smap.add x2 (Domain.fresh_atom ()) venv) e2 in
        join_values st1 v1 st2 v2
    | HL.Atomic e ->
        (* The abstraction is thread-local: interference on shared
           cells is already modelled by the symbolic heap (loads of
           unowned cells produce fresh atoms), so the section body
           evaluates normally. *)
        eval ctx st venv e
    | HL.Par (e1, e2) ->
        (* Mirror the executor: each branch runs from a heapless
           (pure-facts-only) view for its own diagnostics, results are
           discarded, and the continuation keeps the parent's cells —
           branches reach shared state only through the invariants. *)
        let entry = { st with Domain.heap = [] } in
        let _ = eval ctx entry venv e1 in
        let _ = eval ctx entry venv e2 in
        (st, tunit)

(* Abstract truthiness of a condition expression, as a bool-sorted
   formula — comparisons keep their relational form (the executor
   round-trips them through the 0/1 encoding; [Absdom] reasons about
   [a < b] directly). Falls back to [t ≠ 0] on the encoded value. *)
and cond ctx st venv (e : HL.expr) : Domain.t * T.t option =
  match e with
  | HL.Val (HL.Bool b) -> (st, Some (T.bool b))
  | HL.UnOp (HL.Not, e) ->
      let st, c = cond ctx st venv e in
      (st, Option.map T.not_ c)
  | HL.BinOp (((HL.Eq | HL.Ne | HL.Lt | HL.Le | HL.Gt | HL.Ge) as op), a, b)
    -> (
      let st, ta = eval ctx st venv a in
      let st, tb = eval ctx st venv b in
      match (ta, tb) with
      | Some ta, Some tb ->
          let f =
            match op with
            | HL.Eq -> T.eq ta tb
            | HL.Ne -> T.neq ta tb
            | HL.Lt -> T.lt ta tb
            | HL.Le -> T.le ta tb
            | HL.Gt -> T.gt ta tb
            | _ -> T.ge ta tb
          in
          (st, Some f)
      | _ -> (st, None))
  | HL.BinOp (HL.AndOp, a, b) -> (
      (* non-short-circuit, as in the executor: both sides evaluate *)
      let st, ca = cond ctx st venv a in
      let st, cb = cond ctx st venv b in
      match (ca, cb) with
      | Some a, Some b -> (st, Some (T.and_ [ a; b ]))
      | _ -> (st, None))
  | HL.BinOp (HL.OrOp, a, b) -> (
      let st, ca = cond ctx st venv a in
      let st, cb = cond ctx st venv b in
      match (ca, cb) with
      | Some a, Some b -> (st, Some (T.or_ [ a; b ]))
      | _ -> (st, None))
  | HL.Let (x, e1, e2) ->
      let st, t1 = eval ctx st venv e1 in
      let v = match t1 with Some t -> t | None -> Domain.fresh_atom () in
      cond ctx st (Smap.add x v venv) e2
  | HL.Seq (a, b) ->
      let st, _ = eval ctx st venv a in
      cond ctx st venv b
  | _ ->
      let st, t = eval ctx st venv e in
      (st, Option.map (fun t -> T.neq t (T.int 0)) t)

(* A while loop with a declared invariant, mirrored off
   [Exec.exec_while]: inhale the invariant into a chunk-less copy of
   the entry state (entry *pure* knowledge about immutable atoms
   survives arbitrarily many iterations; entry *chunks* do not), check
   the body preserves it abstractly (DA022), and exit with ¬guard plus
   the framed entry chunks restored. *)
and while_with_inv ctx st venv cond_e body idx inv =
  let iloc = ploc ctx (Diag.Invariant idx) in
  add ctx
    (Diag.warning ~code:"DA025"
       ~hint:
         "termination is outside the verifier's guarantees; record the \
          intended measure as a pure conjunct (e.g. ⌜0 <= n - !i⌝) so the \
          decrease is at least visible"
       ~loc:iloc
       "while loop has no variant/decreases hint; termination is unchecked");
  let icases = Domain.inhale_cases { st with Domain.heap = [] } inv in
  let inv_locs =
    List.concat_map (fun (ist, _) -> List.map fst ist.Domain.heap) icases
  in
  (* The frame: entry chunks the invariant does not claim. Only
     meaningful when every claimed location is an entry chunk we can
     match syntactically — otherwise the invariant may own any of our
     chunks, and we keep none. *)
  let frame =
    let owns_all =
      List.for_all
        (fun l -> Option.is_some (Domain.find_chunk st l))
        inv_locs
    in
    if owns_all then
      List.filter
        (fun (l, _) -> not (List.exists (T.equal l) inv_locs))
        st.Domain.heap
    else []
  in
  List.iter
    (fun (ist, case) ->
      if not (Domain.is_bot ist) then begin
        let ist, cf = cond ctx ist venv cond_e in
        let body_st = Domain.assume ist cf in
        if not (Domain.is_bot body_st) then begin
          let st_end, _ = eval ctx body_st venv body in
          if not (Domain.is_bot st_end) then da022 ctx iloc st_end case
        end
      end)
    icases;
  let exit =
    List.fold_left
      (fun acc (ist, _) ->
        if Domain.is_bot ist then acc
        else
          let ist, cf = cond ctx ist venv cond_e in
          Domain.join acc (Domain.assume_not ist cf))
      Domain.bot icases
  in
  ({ exit with Domain.heap = exit.Domain.heap @ frame }, tunit)

(* DA022: is the invariant abstractly inductive? [case] is the
   freshened disjunct that was inhaled at the loop head; [st_end] the
   abstract state after one body iteration. Re-bind each existential
   chunk value (a binder atom) to the *end* state's value at the same
   location, then ask whether each pure conjunct — and each
   non-existential chunk value — is re-established. [Maybe] only
   warns when the conjunct is non-relational (at most one atom in its
   comparison): a single-variable fact is exactly what this domain
   can decide, so failure to re-establish it is signal; a relational
   fact ([⌜!i <= n⌝]-style) beyond the domain's precision stays
   silent. *)
and da022 ctx iloc st_end (case : Footprint.case) =
  let smap =
    List.fold_left
      (fun m (ch : Footprint.chunk) ->
        match T.view ch.Footprint.value with
        | T.Var (x, _) -> (
            match Domain.find_chunk st_end ch.Footprint.loc with
            | Some (_, w) -> Smap.add x w m
            | None -> m)
        | _ -> m)
      Smap.empty case.Footprint.chunks
  in
  let chunk_checks =
    List.filter_map
      (fun (ch : Footprint.chunk) ->
        match T.view ch.Footprint.value with
        | T.Var _ -> None
        | _ -> (
            match Domain.find_chunk st_end ch.Footprint.loc with
            | Some (_, w) -> Some (T.eq w (T.subst smap ch.Footprint.value))
            | None -> None))
      case.Footprint.chunks
  in
  let checks = List.map (T.subst smap) case.Footprint.pures @ chunk_checks in
  let conjuncts phi =
    match T.view phi with T.And ts -> ts | _ -> [ phi ]
  in
  let report verb phi =
    add ctx
      (Diag.warning ~code:"DA022"
         ~hint:
           "the SMT backend may still prove it — this is the \
            interval/parity abstraction's verdict — but an invariant the \
            abstraction cannot re-establish usually wants strengthening"
         ~loc:iloc
         "loop invariant is not abstractly inductive: after one body \
          iteration the abstract state %s ⌜%a⌝" verb T.pp phi)
  in
  List.iter
    (fun phi ->
      List.iter
        (fun phi ->
          match Domain.holds st_end phi with
          | AD.Yes -> ()
          | AD.No -> report "refutes" phi
          | AD.Maybe -> (
              match AD.comparison_atoms (Domain.resolve_reads st_end phi) with
              | Some n when n <= 1 -> report "cannot re-establish" phi
              | _ -> ()))
        (conjuncts phi))
    checks

(* A while loop with no invariant annotation: only reachable from
   hand-built programs (the well-formedness pass makes it DA008 in
   specs) and from the soundness harness's closed expressions. A
   join-then-widen fixpoint, muted so a not-yet-stable candidate
   cannot leak "definitely" claims; one unmuted pass over the stable
   state reports for real. *)
and while_fixpoint ctx st venv cond_e body =
  let step s =
    let s, cf = cond ctx s venv cond_e in
    let body_st = Domain.assume s cf in
    if Domain.is_bot body_st then Domain.bot
    else fst (eval ctx body_st venv body)
  in
  let rec iterate s k =
    let s_end = step s in
    let next = Domain.join s s_end in
    if Domain.leq next s then s
    else if k <= 0 then begin
      (* budget exhausted: havoc every chunk value and re-check once;
         if even that is not stable (the body allocates or frees), all
         heap claims go *)
      let h =
        {
          Domain.env = AD.top;
          heap = List.map (fun (l, _) -> (l, Domain.fresh_atom ())) s.Domain.heap;
        }
      in
      let h_end = step h in
      if Domain.leq (Domain.join h h_end) h then h else Domain.top
    end
    else iterate (if k <= 3 then Domain.widen s next else next) (k - 1)
  in
  let s_fix = with_mute ctx (fun () -> iterate st 6) in
  (* reporting pass over the stable loop state *)
  ignore (step s_fix);
  let s_fix, cf = cond ctx s_fix venv cond_e in
  (Domain.assume_not s_fix cf, tunit)

(* ------------------------------------------------------------------ *)
(* Entry points *)

(** Abstract execution of a bare expression from [st] — the soundness
    harness's and the pre-discharge's view of the interpreter. Never
    reports diagnostics. *)
let eval_expr ?(st = Domain.top) (e : HL.expr) : Domain.t * T.t option =
  let ctx = { unit_name = ""; proc = None; diags = ref []; mute = true } in
  eval ctx st Smap.empty e

(* ------------------------------------------------------------------ *)
(* Per-procedure checks *)

let rec expr_vars acc (e : HL.expr) =
  match e with
  | HL.Val v -> value_vars acc v
  | HL.Var x -> x :: acc
  | HL.Rec (_, _, e)
  | HL.UnOp (_, e)
  | HL.Fst e
  | HL.Snd e
  | HL.InjLE e
  | HL.InjRE e
  | HL.Alloc e
  | HL.Load e
  | HL.Free e
  | HL.Assert e
  | HL.Atomic e ->
      expr_vars acc e
  | HL.App (a, b)
  | HL.BinOp (_, a, b)
  | HL.Seq (a, b)
  | HL.While (a, b)
  | HL.PairE (a, b)
  | HL.Store (a, b)
  | HL.Faa (a, b)
  | HL.Par (a, b)
  | HL.Let (_, a, b) ->
      expr_vars (expr_vars acc a) b
  | HL.If (a, b, c) | HL.Cas (a, b, c) ->
      expr_vars (expr_vars (expr_vars acc a) b) c
  | HL.Case (e, (_, e1), (_, e2)) ->
      expr_vars (expr_vars (expr_vars acc e) e1) e2
  | HL.GhostMark _ -> acc

and value_vars acc (v : HL.value) =
  match v with
  | HL.Sym x -> x :: acc
  | HL.Pair (a, b) -> value_vars (value_vars acc a) b
  | HL.InjL v | HL.InjR v -> value_vars acc v
  | HL.RecV (_, _, e) -> expr_vars acc e
  | HL.Unit | HL.Bool _ | HL.Int _ | HL.Loc _ -> acc

let ghost_cmd_vars (c : V.ghost_cmd) : string list =
  let tvars t = List.map fst (T.vars t) in
  match c with
  | V.Fold (_, ts) | V.Unfold (_, ts) -> List.concat_map tvars ts
  | V.Update (_, a, b) ->
      List.concat_map tvars (A.ghost_val_terms a @ A.ghost_val_terms b)
  | V.GAlloc (_, v) -> List.concat_map tvars (A.ghost_val_terms v)
  | V.AssertA a -> A.free_vars a

(* DA023: a ⌊·⌋ around an already-stable assertion. Stabilization is
   idempotent and monotone, so the marker does nothing — and hides
   which reads actually needed one. *)
let rec redundant_stabilize ctx site path (a : A.t) =
  let deeper = Stability.step_of a :: path in
  (match a with
  | A.Stabilize p when Stability.stable p ->
      add ctx
        (Diag.warning ~code:"DA023"
           ~hint:
             "drop the ⌊·⌋ — the enclosed assertion is stable as written, \
              and the marker hides which reads actually need anchoring"
           ~loc:{ (ploc ctx site) with Diag.path = List.rev deeper }
           "redundant stabilization: the enclosed assertion is already \
            stable")
  | _ -> ());
  match a with
  | A.Pure _ | A.Emp | A.Points_to _ | A.Pred _ | A.Ghost _ | A.Wp _ -> ()
  | A.Sep (p, q) | A.Wand (p, q) | A.And (p, q) | A.Or (p, q) ->
      redundant_stabilize ctx site deeper p;
      redundant_stabilize ctx site deeper q
  | A.Exists (_, p)
  | A.Forall (_, p)
  | A.Persistently p
  | A.Later p
  | A.Upd p
  | A.Stabilize p ->
      redundant_stabilize ctx site deeper p

let check_proc ~unit_name (p : V.proc) : Diag.t list =
  let ctx = { unit_name; proc = Some p; diags = ref []; mute = false } in
  (* DA020: every disjunct of the requires is abstractly unsatisfiable
     — the procedure body is unreachable and verification vacuous. *)
  let seeds = Domain.seed p.V.requires in
  let live = List.filter (fun s -> not (Domain.is_bot s)) seeds in
  if live = [] then
    add ctx
      (Diag.error ~code:"DA020"
         ~hint:
           "every caller must prove this clause, and no state satisfies \
            it; the procedure verifies vacuously"
         ~loc:(ploc ctx Diag.Requires)
         "contradictory requires: no abstract state satisfies any disjunct");
  (* DA021: same question of the ensures (with [result] free). *)
  if List.for_all Domain.is_bot (Domain.seed p.V.ensures) then
    add ctx
      (Diag.error ~code:"DA021"
         ~hint:
           "no exit state can satisfy this clause, so the body can never \
            verify against it"
         ~loc:(ploc ctx Diag.Ensures)
         "trivially-false ensures: no abstract state satisfies any disjunct");
  (* DA023 over every specification clause. *)
  redundant_stabilize ctx Diag.Requires [] p.V.requires;
  redundant_stabilize ctx Diag.Ensures [] p.V.ensures;
  List.iteri
    (fun i (_, inv) -> redundant_stabilize ctx (Diag.Invariant i) [] inv)
    p.V.invariants;
  (* DA024: parameters no clause and no body expression mentions. *)
  let used = Hashtbl.create 16 in
  let addv = List.iter (fun x -> Hashtbl.replace used x ()) in
  addv (expr_vars [] p.V.body);
  addv (A.free_vars p.V.requires);
  addv (A.free_vars p.V.ensures);
  List.iter (fun (_, a) -> addv (A.free_vars a)) p.V.invariants;
  List.iter
    (fun (_, cmds) -> List.iter (fun c -> addv (ghost_cmd_vars c)) cmds)
    p.V.ghost;
  List.iter
    (fun x ->
      if not (Hashtbl.mem used x) then
        add ctx
          (Diag.warning ~code:"DA024"
             ~hint:"remove the parameter, or constrain it in the spec"
             ~loc:(ploc ctx Diag.Body)
             "parameter %s is used neither by the body nor by any \
              specification clause"
             x))
    p.V.params;
  (* DA018/DA019/DA022/DA025 come from running the interpreter over
     the body, seeded with the join of the satisfiable requires
     disjuncts (the join over-approximates every entry, so "definite"
     claims hold on all of them). *)
  (match live with
  | [] -> ()
  | s :: rest -> ignore (eval ctx (List.fold_left Domain.join s rest) Smap.empty p.V.body));
  (* loop fixpoints and per-case body checks can re-visit a site *)
  List.sort_uniq Stdlib.compare !(ctx.diags)

let check_program ~unit_name (prog : V.program) : Diag.t list =
  List.concat_map (check_proc ~unit_name) prog.V.procs
