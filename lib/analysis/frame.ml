(** The reachability / frame lint (DA013): heap reads no points-to
    chunk can cover in any branch.

    Stability (DA011/DA012) is about *surviving interference* — a read
    anchored to a footprint. This lint is about *resolvability*: when
    the executor inhales an assertion it resolves every read in the
    pure parts against the chunks inhaled in the same disjunctive case
    ([State.inhale_cases] adds chunks before resolving pures), and a
    read with no covering chunk fails right there ("heap read without
    permission"). A read under [Stabilize] passes the stability
    judgment by construction, so ⌊⌜!l = 5⌝⌋ with no [l ↦ _] anywhere is
    stable — and still unverifiable. This pass mirrors the executor's
    case split and flags such reads per branch.

    Severity: at [Requires] and [Invariant] sites the inhale happens in
    a state with no other chunks (the requires opens the procedure; the
    invariant opens a havocked loop state), so an uncovered read is an
    error. At [Ensures] and ghost asserts the state may own chunks the
    spec does not spell out (allocations, callee postconditions), so it
    is a warning. *)

module A = Baselogic.Assertion
module HT = Baselogic.Hterm
module T = Smt.Term

(** The case split itself — locations owned and reads performed per
    disjunct — lives in {!Footprint}, shared with the abstract
    interpreter's symbolic heap so the two mirrors of
    [State.inhale_cases] cannot drift. *)

(** Uncovered reads of [a]: for each disjunctive case, reads whose
    location matches (structurally) no chunk of that case and no
    [ambient] location. Deduplicated across cases — one report per
    read site. *)
let uncovered ~(ambient : T.t list) (a : A.t) :
    (T.t * string list) list option =
  match Footprint.cases a with
  | None -> None  (* too many branches; stay silent rather than guess *)
  | Some cases ->
      let bad = ref [] in
      List.iter
        (fun (c : Footprint.case) ->
          let covered l =
            List.exists (T.equal l) (Footprint.locs c)
            || List.exists (T.equal l) ambient
          in
          List.iter
            (fun (l, path) ->
              if
                (not (covered l))
                && not
                     (List.exists
                        (fun (l', p') -> T.equal l l' && p' = path)
                        !bad)
              then bad := (l, path) :: !bad)
            c.Footprint.reads)
        cases;
      Some (List.rev !bad)

let check ~(loc : Diag.loc) ~(severity : Diag.severity)
    ?(ambient = []) (a : A.t) : Diag.t list =
  match uncovered ~ambient a with
  | None | Some [] -> []
  | Some reads ->
      List.map
        (fun (l, path) ->
          let hint =
            Fmt.str
              "the executor resolves !%a against chunks inhaled in the \
               same branch; add %a ↦ _ to that branch%s"
              T.pp l T.pp l
              (match severity with
              | Diag.Error -> ""
              | _ -> ", or rely on chunks the verifier owns at this point")
          in
          Diag.v ~hint ~code:"DA013" ~severity
            ~loc:{ loc with Diag.path }
            (Fmt.str
               "heap read !%a has no covering points-to chunk in its \
                branch"
               T.pp l))
        reads
