(** Shared points-to-footprint collection: the one walk that mirrors
    [State.inhale_cases]'s case split, used by both the frame lint
    (DA013, {!Frame}) and the abstract interpreter's symbolic heap
    ({!Domain}). Factoring it here keeps the two consumers from
    drifting — if the executor's inhale discipline changes, this is
    the single place the static mirrors change with it.

    A {!case} is one disjunct of an assertion as the executor would
    inhale it: the points-to chunks it owns (location *and* symbolic
    value — the frame lint needs only the locations, the abstract heap
    needs both) and the heap reads its pure parts perform, each with
    the path to its [Pure] node. [Sep]/[And] cross-multiply, [Or]
    splits, binders and modalities descend; connectives outside the
    executable fragment contribute nothing (DA015 already rejects
    them). *)

module A = Baselogic.Assertion
module HT = Baselogic.Hterm
module T = Smt.Term

type chunk = { loc : T.t; value : T.t }

type case = {
  chunks : chunk list;
  pures : T.t list;  (** pure formulas of this disjunct, in order *)
  reads : (T.t * string list) list;
      (** heap reads in pure parts, with the path to their [Pure] *)
}

let empty_case = { chunks = []; pures = []; reads = [] }

(** Locations of a case's chunks — the frame lint's view. *)
let locs c = List.map (fun ch -> ch.loc) c.chunks

let max_cases = 64

exception Too_many_cases

(** Case-split [a]; [None] when the disjunction exceeds {!max_cases}
    (callers stay silent rather than guess). *)
let cases (a : A.t) : case list option =
  let rec go path (cs : case list) a : case list =
    if List.length cs > max_cases then raise Too_many_cases;
    let deeper = Stability.step_of a :: path in
    match a with
    | A.Pure t ->
        let reads =
          List.map (fun l -> (l, List.rev deeper)) (HT.heap_reads t)
        in
        List.map
          (fun c -> { c with pures = c.pures @ [ t ]; reads = c.reads @ reads })
          cs
    | A.Points_to { loc; value; _ } ->
        List.map (fun c -> { c with chunks = { loc; value } :: c.chunks }) cs
    | A.Emp | A.Ghost _ | A.Pred _ -> cs
    | A.Sep (p, q) | A.And (p, q) -> go deeper (go deeper cs p) q
    | A.Or (p, q) -> go deeper cs p @ go deeper cs q
    | A.Exists (_, p) | A.Stabilize p | A.Later p | A.Persistently p ->
        go deeper cs p
    | A.Wand _ | A.Forall _ | A.Upd _ | A.Wp _ -> cs
  in
  match go [] [ empty_case ] a with
  | cs -> Some cs
  | exception Too_many_cases -> None
