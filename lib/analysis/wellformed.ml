(** Spec well-formedness: everything about a {!Verifier.Exec.program}
    that can be rejected by name resolution and shape alone, before any
    symbolic execution — unknown or arity-mismatched predicates and
    procedures, unbound logical variables, [result] outside an ensures
    clause, ghost commands over undeclared ghost names, [While] bodies
    without invariants, program symbols that never bind, and constructs
    or connectives outside the executable fragment.

    Every condition reported here as a diagnostic is one the symbolic
    executor would otherwise hit as a runtime [Spec_error]/[fail] in
    the middle of verification; a program this pass accepts cannot
    reach any of those failure paths (the property pinned by the
    negative suite in [lib/suite/ill_formed.ml]). *)

open Stdx
module A = Baselogic.Assertion
module K = Baselogic.Kernel
module HL = Heaplang.Ast
module T = Smt.Term
module V = Verifier.Exec

module Sset = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Assertion-level checks *)

(** Named-predicate references of an assertion, with their paths:
    descends everything, including connectives outside the executable
    fragment (a bad reference under a wand is still a bad reference). *)
let pred_refs (a : A.t) : (string * int * string list) list =
  let acc = ref [] in
  let rec go path a =
    let enter sub = go (Stability.step_of a :: path) sub in
    match a with
    | A.Pred (p, args) ->
        acc := (p, List.length args, List.rev (Stability.step_of a :: path)) :: !acc
    | A.Pure _ | A.Emp | A.Points_to _ | A.Ghost _ -> ()
    | A.Sep (p, q) | A.Wand (p, q) | A.And (p, q) | A.Or (p, q) ->
        enter p;
        enter q
    | A.Exists (_, p) | A.Forall (_, p) | A.Persistently p | A.Later p
    | A.Upd p | A.Stabilize p ->
        enter p
    | A.Wp (_, _, q) -> enter q
  in
  go [] a;
  List.rev !acc

(** The ghost names an assertion owns ([own γ …] chunks). *)
let rec ghost_names acc = function
  | A.Ghost (g, _) -> g :: acc
  | A.Pure _ | A.Emp | A.Points_to _ | A.Pred _ -> acc
  | A.Sep (p, q) | A.Wand (p, q) | A.And (p, q) | A.Or (p, q) ->
      ghost_names (ghost_names acc p) q
  | A.Exists (_, p) | A.Forall (_, p) | A.Persistently p | A.Later p
  | A.Upd p | A.Stabilize p ->
      ghost_names acc p
  | A.Wp (_, _, q) -> ghost_names acc q

(** Connectives the inhale/consume fragment does not support (see
    [State.inhale_cases] / [State.consume_resolved]). *)
let fragment_violations (a : A.t) : (string * string list) list =
  let acc = ref [] in
  let rec go path a =
    let enter sub = go (Stability.step_of a :: path) sub in
    let flag what = acc := (what, List.rev (Stability.step_of a :: path)) :: !acc in
    match a with
    | A.Pure _ | A.Emp | A.Points_to _ | A.Ghost _ | A.Pred _ -> ()
    | A.Sep (p, q) | A.And (p, q) | A.Or (p, q) ->
        enter p;
        enter q
    | A.Wand (p, q) ->
        flag "-∗ (magic wand)";
        enter p;
        enter q
    | A.Forall (_, p) ->
        flag "∀ (universal quantifier)";
        enter p
    | A.Upd p ->
        flag "|==> (update modality)";
        enter p
    | A.Wp (_, _, q) ->
        flag "WP (weakest precondition)";
        enter q
    | A.Exists (_, p) | A.Persistently p | A.Later p | A.Stabilize p ->
        enter p
  in
  go [] a;
  List.rev !acc

(** All checks on one spec assertion at [loc]: predicate references
    (DA001/DA002), variable scoping (DA005/DA006), and executable
    fragment (DA015). [allowed] are the names the site may mention;
    [result_ok] admits the reserved [result] variable. *)
let check_assertion ~(loc : Diag.loc) ~(penv : A.pred_env) ~allowed
    ?(result_ok = false) (a : A.t) : Diag.t list =
  let preds =
    List.concat_map
      (fun (p, arity, path) ->
        let loc = { loc with Diag.path } in
        match Smap.find_opt p penv with
        | None ->
            [
              Diag.error ~code:"DA001" ~loc
                ~hint:
                  (Fmt.str "declare %s in the program's predicate \
                            environment, or fix the spelling" p)
                "unknown predicate %s" p;
            ]
        | Some def ->
            let want = List.length def.A.params in
            if arity <> want then
              [
                Diag.error ~code:"DA002" ~loc
                  "predicate %s applied to %d argument%s, declared with %d"
                  p arity
                  (if arity = 1 then "" else "s")
                  want;
              ]
            else [])
      (pred_refs a)
  in
  let vars =
    List.filter_map
      (fun x ->
        if Sset.mem x allowed then None
        else if String.equal x "result" then
          if result_ok then None
          else
            Some
              (Diag.error ~code:"DA006" ~loc
                 ~hint:"result names the return value and only an \
                        ensures clause has one"
                 "the reserved variable `result` is only meaningful in \
                  an ensures clause")
        else
          Some
            (Diag.error ~code:"DA005" ~loc
               ~hint:
                 (Fmt.str "bind %s with ∃, or add it to the parameter \
                           list" x)
               "unbound logical variable %s" x))
      (A.free_vars a)
  in
  let fragment =
    List.map
      (fun (what, path) ->
        Diag.error ~code:"DA015"
          ~loc:{ loc with Diag.path = path }
          ~hint:"the symbolic executor handles ⌜·⌝, ↦, own, named \
                 predicates, ∗, ∧, ∨, ∃, □, ▷ and ⌊·⌋ in specs"
          "%s is outside the executable spec fragment" what)
      (fragment_violations a)
  in
  preds @ vars @ fragment

(* ------------------------------------------------------------------ *)
(* Body checks *)

(** Collect [While] nodes, ghost-mark keys, and body diagnostics in one
    walk. Procedure calls are spine-collected exactly as
    [Exec.exec_call] does, so what we resolve here is what the executor
    would resolve. *)
let check_body ~(loc : Diag.loc) (prog : V.program) (proc : V.proc) :
    Diag.t list =
  let diags = ref [] in
  let whiles = ref [] in
  let marks = ref Sset.empty in
  let add d = diags := d :: !diags in
  let da014 fmt =
    Fmt.kstr
      (fun m ->
        add
          (Diag.error ~code:"DA014" ~loc
             ~hint:"pairs, sums and first-class functions are spec-level \
                    only; name intermediate values instead"
             "%s" m))
      fmt
  in
  let rec spine acc = function
    | HL.App (f, a) -> spine (a :: acc) f
    | e -> (e, acc)
  in
  let rec walk e =
    match e with
    | HL.Val v -> (
        match K.value_term v with
        | Some _ -> ()
        | None -> da014 "value %a has no term encoding" HL.pp_value v)
    | HL.Var _ -> ()
    | HL.GhostMark key ->
        marks := Sset.add key !marks;
        if not (List.mem_assoc key proc.V.ghost) then
          add
            (Diag.error ~code:"DA009" ~loc
               ~hint:
                 (Fmt.str "add a %S entry to the procedure's ghost \
                           command table" key)
               "ghost mark %s has no command block" key)
    | HL.App _ ->
        let head, args = spine [] e in
        (match head with
        | HL.Var f -> (
            match V.find_proc prog f with
            | None ->
                add
                  (Diag.error ~code:"DA003" ~loc "unknown procedure %s" f)
            | Some callee ->
                let want = List.length callee.V.params in
                if List.length args <> want then
                  add
                    (Diag.error ~code:"DA004" ~loc
                       "call %s: %d argument%s for %d parameter%s" f
                       (List.length args)
                       (if List.length args = 1 then "" else "s")
                       want
                       (if want = 1 then "" else "s")))
        | h ->
            da014 "unsupported callee %a (calls go through named \
                   procedures)" HL.pp_expr h;
            walk h);
        List.iter walk args
    | HL.While (c, b) ->
        whiles := e :: !whiles;
        if not (List.exists (fun (n, _) -> n == e) proc.V.invariants) then
          add
            (Diag.error ~code:"DA008" ~loc
               ~hint:"register the loop node in the procedure's \
                      invariants table (matched physically)"
               "while loop without an invariant annotation");
        walk c;
        walk b
    | HL.Rec (_, _, b) ->
        da014 "first-class function %a in verified code" HL.pp_expr e;
        walk b
    | HL.PairE (a, b) ->
        da014 "pair construction in verified code";
        walk a;
        walk b
    | HL.Fst a | HL.Snd a ->
        da014 "pair projection in verified code";
        walk a
    | HL.InjLE a | HL.InjRE a ->
        da014 "sum injection in verified code";
        walk a
    | HL.Case (a, (_, b), (_, c)) ->
        da014 "sum match in verified code";
        walk a;
        walk b;
        walk c
    | HL.UnOp (_, a) | HL.Alloc a | HL.Load a | HL.Free a | HL.Assert a
    | HL.Atomic a ->
        walk a
    | HL.BinOp (_, a, b)
    | HL.Let (_, a, b)
    | HL.Seq (a, b)
    | HL.Store (a, b)
    | HL.Faa (a, b)
    | HL.Par (a, b) ->
        walk a;
        walk b
    | HL.If (a, b, c) | HL.Cas (a, b, c) ->
        walk a;
        walk b;
        walk c
  in
  walk proc.V.body;
  (* DA016: invariant annotations no loop in the body points at. *)
  List.iteri
    (fun i (node, _) ->
      if not (List.memq node !whiles) then
        add
          (Diag.warning ~code:"DA016"
             ~loc:{ loc with Diag.site = Diag.Invariant i }
             ~hint:"invariants are matched to loops by physical \
                    identity of the While node"
             "invariant annotation attached to no loop in the body"))
    proc.V.invariants;
  (* DA017: ghost command blocks no mark in the body points at. *)
  List.iter
    (fun (key, _) ->
      if not (Sset.mem key !marks) then
        add
          (Diag.warning ~code:"DA017" ~loc
             ~hint:
               (Fmt.str "insert GhostMark %S in the body, or drop the \
                         block" key)
             "ghost block %s is never referenced by the body" key))
    proc.V.ghost;
  (* DA010: program symbols that never bind. Params are the spec-level
     names the requires clause constrains; any other [Sym] is an
     unconstrained fresh solver variable. *)
  let params = Sset.of_list proc.V.params in
  List.iter
    (fun x ->
      if not (Sset.mem x params) then
        add
          (Diag.error ~code:"DA010" ~loc
             ~hint:
               (Fmt.str "add %s to the parameter list or let-bind a \
                         computed value" x)
             "program symbol %s never binds (not a parameter)" x))
    (List.sort_uniq String.compare (A.expr_syms proc.V.body));
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Concurrency checks *)

(** Immediate subexpressions, for the shape-only concurrency walks. *)
let subexprs : HL.expr -> HL.expr list = function
  | HL.Val _ | HL.Var _ | HL.GhostMark _ -> []
  | HL.Rec (_, _, a)
  | HL.UnOp (_, a)
  | HL.Fst a | HL.Snd a | HL.InjLE a | HL.InjRE a
  | HL.Alloc a | HL.Load a | HL.Free a | HL.Assert a
  | HL.Atomic a ->
      [ a ]
  | HL.App (a, b) | HL.BinOp (_, a, b) | HL.Let (_, a, b) | HL.Seq (a, b)
  | HL.While (a, b) | HL.PairE (a, b) | HL.Store (a, b) | HL.Faa (a, b)
  | HL.Par (a, b) ->
      [ a; b ]
  | HL.If (a, b, c) | HL.Cas (a, b, c) -> [ a; b; c ]
  | HL.Case (a, (_, b), (_, c)) -> [ a; b; c ]

let rec has_atomic e =
  match e with
  | HL.Atomic _ -> true
  | e -> List.exists has_atomic (subexprs e)

(** Does the body use the concurrency constructs at all? Such
    procedures are the scopes the named invariants are read in. *)
let rec has_conc e =
  match e with
  | HL.Par _ | HL.Atomic _ -> true
  | e -> List.exists has_conc (subexprs e)

(** Variables anchoring the named invariants' footprints: free
    variables of every points-to left-hand side (and of predicate
    arguments — a predicate chunk carries its footprint with it). *)
let inv_fp_vars (invs : (string * A.t) list) : Sset.t =
  let add_term acc t =
    List.fold_left (fun acc (x, _) -> Sset.add x acc) acc (T.vars t)
  in
  let rec go acc = function
    | A.Points_to { loc; _ } -> add_term acc loc
    | A.Pred (_, args) -> List.fold_left add_term acc args
    | A.Pure _ | A.Emp | A.Ghost _ -> acc
    | A.Sep (p, q) | A.Wand (p, q) | A.And (p, q) | A.Or (p, q) ->
        go (go acc p) q
    | A.Exists (_, p) | A.Forall (_, p) | A.Persistently p | A.Later p
    | A.Upd p | A.Stabilize p ->
        go acc p
    | A.Wp _ -> acc
  in
  List.fold_left (fun acc (_, body) -> go acc body) Sset.empty invs

(** Address expressions of every heap access in [e], transitively. *)
let rec addrs acc e =
  let acc =
    match e with
    | HL.Load a | HL.Store (a, _) | HL.Free a | HL.Cas (a, _, _)
    | HL.Faa (a, _) ->
        a :: acc
    | _ -> acc
  in
  List.fold_left addrs acc (subexprs e)

(** DA026 (nested atomic — the executor opens every named invariant at
    an atomic section, so a nested open would duplicate their
    resources) and DA027 (a par branch that touches invariant-anchored
    state with no atomic section anywhere in the branch — a racy
    access the symbolic executor can only reject illegibly, as a
    missing-permission failure). DA027 is an address-shape heuristic:
    it sees accesses whose address mentions an invariant-anchored
    parameter directly, not through let-bound aliases. *)
let check_conc ~(loc : Diag.loc) (prog : V.program) (proc : V.proc) :
    Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let fp_vars = inv_fp_vars prog.V.invs in
  let check_branch b =
    if not (has_atomic b) then
      let touched =
        addrs [] b
        |> List.concat_map A.expr_syms
        |> List.sort_uniq String.compare
        |> List.filter (fun x -> Sset.mem x fp_vars)
      in
      if touched <> [] then
        add
          (Diag.warning ~code:"DA027" ~loc
             ~hint:
               "wrap the access in atomic { … } so the named invariant \
                can be opened around it"
             "par branch accesses invariant-governed %s outside any \
              atomic section"
             (String.concat ", " touched))
  in
  let rec walk in_atomic e =
    match e with
    | HL.Atomic a ->
        if in_atomic then
          add
            (Diag.error ~code:"DA026" ~loc
               ~hint:
                 "merge the sections: every named invariant is opened \
                  at an atomic section, and a nested open would \
                  duplicate its resources"
               "nested atomic section (invariant reentrancy)");
        walk true a
    | HL.Par (e1, e2) ->
        check_branch e1;
        check_branch e2;
        walk in_atomic e1;
        walk in_atomic e2
    | e -> List.iter (walk in_atomic) (subexprs e)
  in
  walk false proc.V.body;
  List.rev !diags

(** Checks on one named-invariant declaration: predicate references and
    fragment via {!check_assertion}, plus the scoping rule — every free
    variable of the body must be a parameter of every procedure that
    uses atomic/par (the scopes the body is opened in). *)
let check_inv_decl ~unit_name (prog : V.program)
    ((name, body) : string * A.t) : Diag.t list =
  let loc = Diag.loc ~unit_name (Diag.Inv name) Diag.Inv_body in
  let users =
    List.filter (fun (p : V.proc) -> has_conc p.V.body) prog.V.procs
  in
  let scope =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun (p : V.proc) ->
            if List.mem x p.V.params then None
            else
              Some
                (Diag.error ~code:"DA005" ~loc
                   ~hint:
                     (Fmt.str
                        "add %s to %s's parameters: invariant bodies \
                         are read in every atomic section's scope"
                        x p.V.pname)
                   "invariant %s mentions %s, which is not a parameter \
                    of %s (a procedure with atomic/par sections)"
                   name x p.V.pname))
          users)
      (List.sort_uniq String.compare (A.free_vars body))
  in
  check_assertion ~loc ~penv:prog.V.preds
    ~allowed:(Sset.of_list (A.free_vars body))
    body
  @ scope

(* ------------------------------------------------------------------ *)
(* Ghost-command checks *)

let ghost_cmd_terms : V.ghost_cmd -> T.t list = function
  | V.Fold (_, args) | V.Unfold (_, args) -> args
  | V.Update (_, from_gv, to_gv) ->
      A.ghost_val_terms from_gv @ A.ghost_val_terms to_gv
  | V.GAlloc (_, gv) -> A.ghost_val_terms gv
  | V.AssertA _ -> []

let check_ghost_block ~(loc : Diag.loc) ~(penv : A.pred_env) ~allowed
    ~declared (cmds : V.ghost_cmd list) : Diag.t list =
  List.concat_map
    (fun (cmd : V.ghost_cmd) ->
      let pred_check p arity =
        match Smap.find_opt p penv with
        | None -> [ Diag.error ~code:"DA001" ~loc "unknown predicate %s" p ]
        | Some def ->
            let want = List.length def.A.params in
            if arity <> want then
              [
                Diag.error ~code:"DA002" ~loc
                  "predicate %s applied to %d argument%s, declared with %d"
                  p arity
                  (if arity = 1 then "" else "s")
                  want;
              ]
            else []
      in
      let var_check =
        List.concat_map
          (fun t ->
            List.filter_map
              (fun (x, _) ->
                if Sset.mem x allowed then None
                else
                  Some
                    (Diag.error ~code:"DA005" ~loc
                       "unbound logical variable %s in a ghost command" x))
              (T.vars t))
          (ghost_cmd_terms cmd)
      in
      let cmd_check =
        match cmd with
        | V.Fold (p, args) | V.Unfold (p, args) ->
            pred_check p (List.length args)
        | V.Update (g, _, _) ->
            if Sset.mem g declared then []
            else
              [
                Diag.error ~code:"DA007" ~loc
                  ~hint:"ghost names come from `own` chunks in the \
                         requires clause or a prior ghost alloc"
                  "ghost update references undeclared ghost name %s" g;
              ]
        | V.GAlloc _ -> []
        | V.AssertA a -> check_assertion ~loc ~penv ~allowed a
      in
      cmd_check @ var_check)
    cmds

(* ------------------------------------------------------------------ *)
(* Whole-program entry *)

let check_proc ~unit_name (prog : V.program) (proc : V.proc) : Diag.t list =
  let ctx = Diag.Proc proc.V.pname in
  let loc site = Diag.loc ~unit_name ctx site in
  let penv = prog.V.preds in
  let params = Sset.of_list proc.V.params in
  let declared =
    Sset.of_list
      (ghost_names [] proc.V.requires
      @ List.concat_map
          (fun (_, cmds) ->
            List.filter_map
              (function V.GAlloc (g, _) -> Some g | _ -> None)
              cmds)
          proc.V.ghost)
  in
  let spec_ghosts site a =
    (* DA007 also covers specs claiming ownership the requires never
       granted: an ensures/invariant `own γ` with γ nowhere declared
       can only ever fail its consume. *)
    List.filter_map
      (fun g ->
        if Sset.mem g declared then None
        else
          Some
            (Diag.error ~code:"DA007" ~loc:(loc site)
               "ghost name %s is never declared (no `own %s` in \
                requires, no ghost alloc)"
               g g))
      (List.sort_uniq String.compare (ghost_names [] a))
  in
  check_assertion ~loc:(loc Diag.Requires) ~penv ~allowed:params
    proc.V.requires
  @ check_assertion ~loc:(loc Diag.Ensures) ~penv ~allowed:params
      ~result_ok:true proc.V.ensures
  @ spec_ghosts Diag.Ensures proc.V.ensures
  @ List.concat
      (List.mapi
         (fun i (_, inv) ->
           check_assertion ~loc:(loc (Diag.Invariant i)) ~penv
             ~allowed:params inv
           @ spec_ghosts (Diag.Invariant i) inv)
         proc.V.invariants)
  @ List.concat_map
      (fun (key, cmds) ->
        check_ghost_block
          ~loc:(loc (Diag.Ghost_block key))
          ~penv ~allowed:params ~declared cmds)
      proc.V.ghost
  @ check_body ~loc:(loc Diag.Body) prog proc
  @ check_conc ~loc:(loc Diag.Body) prog proc

let check_pred_def ~unit_name ~(penv : A.pred_env) (def : A.pred_def) :
    Diag.t list =
  let loc =
    Diag.loc ~unit_name (Diag.Pred def.A.pname) Diag.Pred_body
  in
  check_assertion ~loc ~penv ~allowed:(Sset.of_list def.A.params) def.A.body

let check_program ?(unit_name = "") (prog : V.program) : Diag.t list =
  let preds =
    Smap.bindings prog.V.preds
    |> List.concat_map (fun (_, def) ->
           check_pred_def ~unit_name ~penv:prog.V.preds def)
  in
  preds
  @ List.concat_map (check_inv_decl ~unit_name prog) prog.V.invs
  @ List.concat_map (check_proc ~unit_name prog) prog.V.procs
