(** The numeric abstract domain behind the abstract-interpretation
    pass: a reduced product of intervals and parity, evaluated through
    linear forms over hash-consed {!Smt.Term} atoms.

    The domain is deliberately non-relational: an environment maps
    *atoms* — maximal non-linear subterms (variables, uninterpreted
    applications, [ite]s, genuine products) — to interval×parity
    values, and every query first normalizes its term to a linear
    polynomial [Σ cᵢ·atomᵢ + k] over those atoms. Normalization rides
    on hash-consing: atoms are keyed by {!Smt.Term.compare} (the
    intern tag), so two structurally equal subterms always collapse
    into one coefficient. That is what lets an equality goal like
    [((v + s) + s) + s = v + 3·s] discharge by pure cancellation, with
    no solver involvement — the shape every corpus chain ends in.

    Soundness contract (see DESIGN.md §12): all arithmetic on
    constants and coefficients is overflow-checked; anything that
    cannot be represented exactly falls back to an opaque atom or an
    infinite bound, never to a wrong finite answer. Queries return
    three-valued verdicts ({!tv}); only [Yes] ("every concretization
    satisfies the formula") is ever allowed to short-circuit a solver
    verdict, mirroring the linear fast path's only-Valid discipline. *)

module T = Smt.Term

(** Three-valued truth: [Yes] = holds in every concretization, [No] =
    fails in every concretization, [Maybe] = the domain cannot tell. *)
type tv = Yes | No | Maybe

let tv_not = function Yes -> No | No -> Yes | Maybe -> Maybe

let pp_tv ppf tv =
  Fmt.string ppf (match tv with Yes -> "yes" | No -> "no" | Maybe -> "maybe")

(* ------------------------------------------------------------------ *)
(* Overflow-checked machine arithmetic *)

exception Overflow

let add_exn a b =
  let s = a + b in
  if a >= 0 = (b >= 0) && s >= 0 <> (a >= 0) then raise Overflow else s

let mul_exn a b =
  if a = 0 || b = 0 then 0
  else if a = min_int || b = min_int then raise Overflow
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

(* ------------------------------------------------------------------ *)
(* Intervals *)

module Itv = struct
  type bound = Ninf | Fin of int | Pinf

  (** Invariant: [lo] is never [Pinf], [hi] is never [Ninf], and
      [lo <= hi]; the empty interval is not representable (operations
      that can empty return [option]). Finite bounds are kept within
      ±[big] so bound arithmetic cannot overflow native ints; bounds
      beyond that round *outward* (sound). *)
  type t = { lo : bound; hi : bound }

  let big = 1 lsl 60
  let top = { lo = Ninf; hi = Pinf }
  let norm_lo n = if n < -big then Ninf else if n > big then Fin big else Fin n
  let norm_hi n = if n > big then Pinf else if n < -big then Fin (-big) else Fin n
  let of_int n = { lo = norm_lo n; hi = norm_hi n }
  let is_top t = t.lo = Ninf && t.hi = Pinf

  let mem n { lo; hi } =
    (match lo with Ninf -> true | Fin l -> l <= n | Pinf -> false)
    && match hi with Pinf -> true | Fin h -> n <= h | Ninf -> false

  let add a b =
    {
      lo =
        (match (a.lo, b.lo) with
        | Ninf, _ | _, Ninf -> Ninf
        | Fin x, Fin y -> norm_lo (x + y)
        | Pinf, _ | _, Pinf -> assert false);
      hi =
        (match (a.hi, b.hi) with
        | Pinf, _ | _, Pinf -> Pinf
        | Fin x, Fin y -> norm_hi (x + y)
        | Ninf, _ | _, Ninf -> assert false);
    }

  (* Scaling by a (possibly huge) constant: overflow rounds outward. *)
  let scale c t =
    if c = 0 then of_int 0
    else
      let mul_b = function
        | Fin n -> ( try Fin (mul_exn c n) with Overflow -> if (c > 0) = (n > 0) then Pinf else Ninf)
        | Ninf -> if c > 0 then Ninf else Pinf
        | Pinf -> if c > 0 then Pinf else Ninf
      in
      let x = mul_b t.lo and y = mul_b t.hi in
      let lo, hi = if c > 0 then (x, y) else (y, x) in
      {
        lo = (match lo with Fin n -> norm_lo n | b -> b);
        hi = (match hi with Fin n -> norm_hi n | b -> b);
      }

  let bmin a b =
    match (a, b) with
    | Ninf, _ | _, Ninf -> Ninf
    | Pinf, x | x, Pinf -> x
    | Fin x, Fin y -> Fin (min x y)

  let bmax a b =
    match (a, b) with
    | Pinf, _ | _, Pinf -> Pinf
    | Ninf, x | x, Ninf -> x
    | Fin x, Fin y -> Fin (max x y)

  let join a b = { lo = bmin a.lo b.lo; hi = bmax a.hi b.hi }

  let meet a b =
    let lo = bmax a.lo b.lo and hi = bmin a.hi b.hi in
    match (lo, hi) with
    | Fin l, Fin h when l > h -> None
    | Pinf, _ | _, Ninf -> None
    | _ -> Some { lo; hi }

  let bleq a b =
    match (a, b) with
    | Ninf, _ | _, Pinf -> true
    | _, Ninf | Pinf, _ -> false
    | Fin x, Fin y -> x <= y

  (** [leq a b] — a ⊆ b. *)
  let leq a b = bleq b.lo a.lo && bleq a.hi b.hi

  (** [widen old next] — standard interval widening: any bound that
      moved outward jumps to infinity. [next] is the join of the old
      state and the new contribution. *)
  let widen old next =
    {
      lo = (if bleq old.lo next.lo then old.lo else Ninf);
      hi = (if bleq next.hi old.hi then old.hi else Pinf);
    }

  (* Comparisons against zero, for linear-form verdicts. *)
  let is_nonpos t = bleq t.hi (Fin 0)
  let is_neg t = bleq t.hi (Fin (-1))
  let is_nonneg t = bleq (Fin 0) t.lo
  let is_pos t = bleq (Fin 1) t.lo
  let is_zero t = t.lo = Fin 0 && t.hi = Fin 0
  let excludes_zero t = is_pos t || is_neg t

  let pp ppf { lo; hi } =
    let pb inf ppf = function
      | Fin n -> Fmt.int ppf n
      | _ -> Fmt.string ppf inf
    in
    Fmt.pf ppf "[%a,%a]" (pb "-∞") lo (pb "+∞") hi
end

(* ------------------------------------------------------------------ *)
(* Parity *)

module Parity = struct
  type t = Even | Odd | Top

  let of_int n = if n land 1 = 0 then Even else Odd

  let add a b =
    match (a, b) with
    | Even, x | x, Even -> x
    | Odd, Odd -> Even
    | Top, _ | _, Top -> Top

  (** Parity of [c·x] given the parity of [x]. *)
  let scale c p = if c land 1 = 0 then Even else p

  let join a b = if a = b then a else Top
  let leq a b = b = Top || a = b
  let meet a b = if a = b then Some a else match (a, b) with
    | Top, x | x, Top -> Some x
    | _ -> None

  let mem n = function
    | Top -> true
    | Even -> n land 1 = 0
    | Odd -> n land 1 = 1

  let pp ppf p =
    Fmt.string ppf (match p with Even -> "even" | Odd -> "odd" | Top -> "⊤")
end

(* ------------------------------------------------------------------ *)
(* The reduced product *)

module Val = struct
  type t = { itv : Itv.t; par : Parity.t }

  let top = { itv = Itv.top; par = Parity.Top }
  let of_int n = { itv = Itv.of_int n; par = Parity.of_int n }
  let is_top v = Itv.is_top v.itv && v.par = Parity.Top
  let mem n v = Itv.mem n v.itv && Parity.mem n v.par
  let add a b = { itv = Itv.add a.itv b.itv; par = Parity.add a.par b.par }
  let scale c v = { itv = Itv.scale c v.itv; par = Parity.scale c v.par }
  let join a b = { itv = Itv.join a.itv b.itv; par = Parity.join a.par b.par }
  let leq a b = Itv.leq a.itv b.itv && Parity.leq a.par b.par

  let widen old next =
    { itv = Itv.widen old.itv next.itv; par = Parity.join old.par next.par }

  (* The reduction step: a finite bound whose parity is impossible
     tightens inward by one; a singleton fixes the parity or empties
     the product. One bump per bound suffices — two consecutive
     integers cover both parities. *)
  let reduce v =
    match v.par with
    | Parity.Top -> Some v
    | p ->
        let lo =
          match v.itv.Itv.lo with
          | Itv.Fin n when not (Parity.mem n p) -> Itv.Fin (n + 1)
          | b -> b
        in
        let hi =
          match v.itv.Itv.hi with
          | Itv.Fin n when not (Parity.mem n p) -> Itv.Fin (n - 1)
          | b -> b
        in
        (match (lo, hi) with
        | Itv.Fin l, Itv.Fin h when l > h -> None
        | _ -> Some { v with itv = { Itv.lo; hi } })

  let meet a b =
    match (Itv.meet a.itv b.itv, Parity.meet a.par b.par) with
    | Some itv, Some par -> reduce { itv; par }
    | _ -> None

  let pp ppf v =
    if v.par = Parity.Top then Itv.pp ppf v.itv
    else Fmt.pf ppf "%a %a" Itv.pp v.itv Parity.pp v.par
end

(* ------------------------------------------------------------------ *)
(* Linear forms over term atoms *)

module Tmap = Map.Make (struct
  type t = T.t

  let compare = T.compare
end)

(** [Σ cᵢ·atomᵢ + const] with non-zero coefficients, atoms sorted by
    intern tag. An atom is any int-sorted term the normalizer keeps
    opaque: variables, applications, [ite]s, non-constant products. *)
type lin = { const : int; coeffs : (T.t * int) list }

let lin_atom t = { const = 0; coeffs = [ (t, 1) ] }
let lin_const n = { const = n; coeffs = [] }

let lin_add a b =
  let rec merge xs ys =
    match (xs, ys) with
    | [], zs | zs, [] -> zs
    | (x, cx) :: xs', (y, cy) :: ys' ->
        let c = T.compare x y in
        if c < 0 then (x, cx) :: merge xs' ys
        else if c > 0 then (y, cy) :: merge xs ys'
        else
          let s = add_exn cx cy in
          if s = 0 then merge xs' ys' else (x, s) :: merge xs' ys'
  in
  { const = add_exn a.const b.const; coeffs = merge a.coeffs b.coeffs }

let lin_scale c l =
  if c = 0 then lin_const 0
  else
    {
      const = mul_exn c l.const;
      coeffs = List.map (fun (t, k) -> (t, mul_exn c k)) l.coeffs;
    }

(** Normalize an int-sorted term to a linear form. Total: overflow
    anywhere collapses the offending subterm (ultimately the whole
    term) into a single opaque atom, which is always sound. *)
let lin_of (t : T.t) : lin =
  let rec go t =
    match T.view t with
    | T.Int_lit n -> lin_const n
    | T.Add (a, b) -> lin_add (go a) (go b)
    | T.Sub (a, b) -> lin_add (go a) (lin_scale (-1) (go b))
    | T.Mul (a, b) -> (
        match (T.view a, T.view b) with
        | T.Int_lit c, _ -> lin_scale c (go b)
        | _, T.Int_lit c -> lin_scale c (go a)
        | _ -> lin_atom t)
    | _ -> lin_atom t
  in
  try go t with Overflow -> lin_atom t

let lin_sub a b = lin_add a (lin_scale (-1) b)

(* ------------------------------------------------------------------ *)
(* Environments *)

(** [Bot] is the unreachable state; [Env m] constrains the atoms in
    [m]'s domain (absent atom = ⊤). Top values are never stored. *)
type t = Bot | Env of Val.t Tmap.t

let top = Env Tmap.empty
let bot = Bot
let is_bot = function Bot -> true | Env _ -> false

let find m a = match Tmap.find_opt a m with Some v -> v | None -> Val.top

let set m a v =
  if Val.is_top v then Tmap.remove a m else Tmap.add a v m

(** Abstract value of an atom in the environment. *)
let val_of_atom env a =
  match env with Bot -> Val.of_int 0 | Env m -> find m a

(** Abstract value of a linear form. *)
let val_of_lin env l =
  List.fold_left
    (fun acc (a, c) -> Val.add acc (Val.scale c (val_of_atom env a)))
    (Val.of_int l.const) l.coeffs

(** Abstract value of an arbitrary int-sorted term. *)
let val_of env t = val_of_lin env (lin_of t)

(* ------------------------------------------------------------------ *)
(* Queries *)

let tv_and a b =
  match (a, b) with
  | No, _ | _, No -> No
  | Yes, Yes -> Yes
  | _ -> Maybe

let tv_or a b =
  match (a, b) with
  | Yes, _ | _, Yes -> Yes
  | No, No -> No
  | _ -> Maybe

(** Verdict of an (int-sorted) difference [l]: sign information of
    [Σ cᵢ·atomᵢ + k] under [env]. *)
let lin_cmp env l =
  if l.coeffs = [] then Some (Val.of_int l.const) else Some (val_of_lin env l)

(** [holds env φ] — three-valued truth of the boolean term [φ] in
    every concretization of [env]. [Bot] satisfies everything. *)
let rec holds env (phi : T.t) : tv =
  match env with
  | Bot -> Yes
  | Env _ -> (
      match T.view phi with
      | T.True -> Yes
      | T.False -> No
      | T.Not a -> tv_not (holds env a)
      | T.And ts ->
          List.fold_left (fun acc t -> tv_and acc (holds env t)) Yes ts
      | T.Or ts ->
          List.fold_left (fun acc t -> tv_or acc (holds env t)) No ts
      | T.Implies (a, b) -> tv_or (tv_not (holds env a)) (holds env b)
      | T.Iff (a, b) -> (
          match (holds env a, holds env b) with
          | Yes, Yes | No, No -> Yes
          | Yes, No | No, Yes -> No
          | _ -> Maybe)
      | T.Eq (a, b) when Smt.Sort.equal (T.sort_of a) Smt.Sort.Bool ->
          holds env (T.iff a b)
      | T.Eq (a, b) -> (
          let d = lin_sub (lin_of a) (lin_of b) in
          if d.coeffs = [] then if d.const = 0 then Yes else No
          else
            match lin_cmp env d with
            | Some v ->
                if Itv.is_zero v.Val.itv then Yes
                else if
                  Itv.excludes_zero v.Val.itv || v.Val.par = Parity.Odd
                then No
                else Maybe
            | None -> Maybe)
      | T.Le (a, b) -> (
          let d = lin_sub (lin_of a) (lin_of b) in
          match lin_cmp env d with
          | Some v ->
              if Itv.is_nonpos v.Val.itv then Yes
              else if Itv.is_pos v.Val.itv then No
              else Maybe
          | None -> Maybe)
      | T.Lt (a, b) -> (
          let d = lin_sub (lin_of a) (lin_of b) in
          match lin_cmp env d with
          | Some v ->
              if Itv.is_neg v.Val.itv then Yes
              else if Itv.is_nonneg v.Val.itv then No
              else Maybe
          | None -> Maybe)
      | T.Ite _ | T.Var _ | T.App _ | T.Pred _ | T.Int_lit _
      | T.Add _ | T.Sub _ | T.Mul _ ->
          Maybe)

(* The exception [holds] above creates: [lin_sub] can overflow when
   combining two already-normalized forms; treat as Maybe. *)
let holds env phi = try holds env phi with Overflow -> (match env with Bot -> Yes | _ -> Maybe)

(** Number of distinct atoms in the linear normal form of a
    comparison — the measure of how *relational* the formula is. A
    non-relational domain can only ever decide comparisons with at
    most one atom; callers use this to stay silent on [Maybe]
    verdicts the domain could never have decided. [None] when [phi]
    is not a comparison (or overflows normalization). *)
let comparison_atoms phi =
  match T.view phi with
  | T.Eq (a, b) | T.Le (a, b) | T.Lt (a, b) -> (
      try Some (List.length (lin_sub (lin_of a) (lin_of b)).coeffs)
      with Overflow -> None)
  | T.Not a -> (
      match T.view a with
      | T.Eq (x, y) | T.Le (x, y) | T.Lt (x, y) -> (
          try Some (List.length (lin_sub (lin_of x) (lin_of y)).coeffs)
          with Overflow -> None)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Constraint propagation *)

(* Rounding division helpers (b <> 0). *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 <> (b < 0) then q - 1 else q

let cdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 = (b < 0) then q + 1 else q

(* Divide an interval by a non-zero coefficient, rounding inward —
   the solution set of [c·x ∈ R] for integer x. A negative coefficient
   swaps the bounds *and* flips infinities. *)
let itv_div_inward (r : Itv.t) c =
  let lo, hi =
    if c > 0 then
      ( (match r.Itv.lo with
        | Itv.Fin n -> Itv.norm_lo (cdiv n c)
        | b -> b),
        match r.Itv.hi with
        | Itv.Fin n -> Itv.norm_hi (fdiv n c)
        | b -> b )
    else
      ( (match r.Itv.hi with
        | Itv.Fin n -> Itv.norm_lo (cdiv n c)
        | Itv.Pinf -> Itv.Ninf
        | Itv.Ninf -> Itv.Pinf),
        match r.Itv.lo with
        | Itv.Fin n -> Itv.norm_hi (fdiv n c)
        | Itv.Ninf -> Itv.Pinf
        | Itv.Pinf -> Itv.Ninf )
  in
  match (lo, hi) with
  | Itv.Pinf, _ | _, Itv.Ninf -> None
  | Itv.Fin l, Itv.Fin h when l > h -> None
  | lo, hi -> Some { Itv.lo; hi }

(* Refine every atom of the linear form [l] under the constraint
   [Σ cᵢ·atomᵢ + k ⋈ 0], where [⋈] is ≤ (le) or = (eq). For each atom
   x with coefficient c: c·x ∈ (bound − Σ others), divided inward. *)
let refine_lin ~eq (l : lin) m =
  let value_of (a, c) = Val.scale c (find m a) in
  let exception Empty in
  try
    let m =
      List.fold_left
        (fun m (x, c) ->
          let rest =
            List.fold_left
              (fun acc (y, cy) ->
                if T.equal x y then acc else Val.add acc (value_of (y, cy)))
              (Val.of_int l.const) l.coeffs
          in
          (* c·x = -rest (eq) or c·x ≤ -rest, i.e. c·x ∈ target. *)
          let neg_rest = Val.scale (-1) rest in
          let target =
            if eq then neg_rest.Val.itv
            else { Itv.lo = Itv.Ninf; hi = neg_rest.Val.itv.Itv.hi }
          in
          match itv_div_inward target c with
          | None -> raise Empty
          | Some itv -> (
              let refinement =
                {
                  Val.itv;
                  par =
                    (* c·x = v with c odd fixes x's parity from v's. *)
                    (if eq && c land 1 = 1 then neg_rest.Val.par
                     else Parity.Top);
                }
              in
              match Val.meet (find m x) refinement with
              | None -> raise Empty
              | Some v -> set m x v))
        m l.coeffs
    in
    Env m
  with Empty -> Bot

(** [assume φ env] — the strongest environment the domain can
    represent for [env ∧ φ]. Over-approximates: the result's
    concretization contains every model of [env] satisfying [φ]. *)
let rec assume (phi : T.t) (env : t) : t =
  match env with
  | Bot -> Bot
  | Env m -> (
      match holds env phi with
      | No -> Bot
      | Yes -> env
      | Maybe -> (
          match T.view phi with
          | T.And ts -> List.fold_left (fun e t -> assume t e) env ts
          | T.Or ts ->
              List.fold_left
                (fun acc t -> join acc (assume t env))
                Bot ts
          | T.Not a -> assume_not a env
          | T.Implies (a, b) ->
              join (assume_not a env) (assume b env)
          | T.Eq (a, b) when Smt.Sort.equal (T.sort_of a) Smt.Sort.Bool ->
              join
                (assume a (assume b env))
                (assume_not a (assume_not b env))
          | T.Eq (a, b) -> (
              try refine_lin ~eq:true (lin_sub (lin_of a) (lin_of b)) m
              with Overflow -> env)
          | T.Le (a, b) -> (
              try refine_lin ~eq:false (lin_sub (lin_of a) (lin_of b)) m
              with Overflow -> env)
          | T.Lt (a, b) -> (
              try
                refine_lin ~eq:false
                  (lin_add (lin_sub (lin_of a) (lin_of b)) (lin_const 1))
                  m
              with Overflow -> env)
          | _ -> env))

and assume_not (phi : T.t) (env : t) : t =
  match env with
  | Bot -> Bot
  | Env _ -> (
      match T.view phi with
      | T.Not a -> assume a env
      | T.And ts ->
          List.fold_left (fun acc t -> join acc (assume_not t env)) Bot ts
      | T.Or ts -> List.fold_left (fun e t -> assume_not t e) env ts
      | T.Le (a, b) -> assume (T.lt b a) env
      | T.Lt (a, b) -> assume (T.le b a) env
      | T.Implies (a, b) -> assume_not b (assume a env)
      | _ -> (
          (* No endpoint trimming on ≠: the imprecision is deliberate
             (and documented — it is what DA022's twin exercises). *)
          match holds env phi with Yes -> Bot | _ -> env))

(* ------------------------------------------------------------------ *)
(* Lattice structure *)

and join (a : t) (b : t) : t =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Env ma, Env mb ->
      Env
        (Tmap.merge
           (fun _ va vb ->
             match (va, vb) with
             | Some va, Some vb ->
                 let v = Val.join va vb in
                 if Val.is_top v then None else Some v
             | _ -> None)
           ma mb)

let widen (old : t) (next : t) : t =
  match (old, next) with
  | Bot, x | x, Bot -> x
  | Env mo, Env mn ->
      Env
        (Tmap.merge
           (fun _ vo vn ->
             match (vo, vn) with
             | Some vo, Some vn ->
                 let v = Val.widen vo vn in
                 if Val.is_top v then None else Some v
             | _ -> None)
           mo mn)

let leq (a : t) (b : t) : bool =
  match (a, b) with
  | Bot, _ -> true
  | Env _, Bot -> false
  | Env ma, Env mb ->
      Tmap.for_all (fun x vb -> Val.leq (find ma x) vb) mb

(** Constrained atoms and their values; [None] for [Bot]. *)
let bindings = function
  | Bot -> None
  | Env m -> Some (Tmap.bindings m)

(** [constrain env t v] — meet the value of atom [t] with [v]. Only
    meaningful when [t] is an atom of its own linear form. *)
let constrain (env : t) (atom : T.t) (v : Val.t) : t =
  match env with
  | Bot -> Bot
  | Env m -> (
      match Val.meet (find m atom) v with
      | None -> Bot
      | Some v -> Env (set m atom v))

(* ------------------------------------------------------------------ *)
(* Concretization membership (the QCheck soundness harness) *)

(** [satisfies ~lookup env] — does the valuation [lookup] (partial:
    [None] = unconstrained) lie in γ(env)? *)
let satisfies ~(lookup : T.t -> int option) (env : t) : bool =
  match env with
  | Bot -> false
  | Env m ->
      Tmap.for_all
        (fun a v -> match lookup a with None -> true | Some n -> Val.mem n v)
        m

let pp ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | Env m ->
      if Tmap.is_empty m then Fmt.string ppf "⊤"
      else
        Fmt.pf ppf "{@[%a@]}"
          (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (a, v) ->
               Fmt.pf ppf "%a ∈ %a" T.pp a Val.pp v))
          (Tmap.bindings m)
