(** The stability analyzer: {!Baselogic.Assertion.stable} promoted
    from a boolean to an explanation.

    [Assertion.stable] answers "is every heap read covered by the
    assertion's own points-to footprint?" — this module answers the
    follow-up questions a spec author actually needs: *which* read
    escapes, *where* it sits in the assertion, and *where* an
    enclosing [Stabilize] (⌊·⌋) would re-anchor it to a covering
    footprint. The verdict is definitionally aligned with the
    syntactic judgment: [verdict a = Stable] iff [Assertion.stable a]
    (pinned by a QCheck agreement test), so the linter never accepts
    a spec the kernel-side judgment would reject, or vice versa. *)

module A = Baselogic.Assertion
module HT = Baselogic.Hterm
module T = Smt.Term

type escape = {
  read : T.t;  (** the escaping heap-read location *)
  path : string list;  (** path to the offending [Pure], outermost first *)
  anchor : string list option;
      (** path of the innermost enclosing subassertion whose own
          footprint covers [read] — the suggested ⌊·⌋ placement;
          [None] when no enclosing footprint covers the read at all *)
}

type verdict = Stable | Unstable of escape list

let footprint a = A.footprint [] a

(* Path vocabulary, kept short and stable: these strings appear in
   diagnostics and in the --json output. *)
let step_of = function
  | A.Pure _ -> "⌜·⌝"
  | A.Emp -> "emp"
  | A.Points_to _ -> "↦"
  | A.Pred (p, _) -> p
  | A.Ghost (g, _) -> "own " ^ g
  | A.Sep _ -> "∗"
  | A.Wand _ -> "-∗"
  | A.And _ -> "∧"
  | A.Or _ -> "∨"
  | A.Exists (x, _) -> "∃" ^ x
  | A.Forall (x, _) -> "∀" ^ x
  | A.Persistently _ -> "□"
  | A.Later _ -> "▷"
  | A.Upd _ -> "|==>"
  | A.Stabilize _ -> "⌊·⌋"
  | A.Wp _ -> "WP"

(** Explain the stability of [a]. Mirrors [Assertion.stable]: heap
    reads in [Pure] parts are checked against the *whole* assertion's
    footprint; [Stabilize] subtrees are stable by construction; only
    the right-hand side of a wand is inspected. *)
let verdict (a : A.t) : verdict =
  let fp = footprint a in
  let covered l = List.exists (T.equal l) fp in
  (* [ancestors] is the enclosure stack, innermost first: each entry
     is (path to that node, its subtree footprint). Subtree footprints
     are computed on demand — reads escape rarely. *)
  let escapes = ref [] in
  let rec go path ancestors a =
    let here = (List.rev path, lazy (footprint a)) in
    let enter sub = go (step_of a :: path) (here :: ancestors) sub in
    match a with
    | A.Pure t ->
        List.iter
          (fun l ->
            if not (covered l) then
              let anchor =
                List.find_map
                  (fun (p, sub_fp) ->
                    if List.exists (T.equal l) (Lazy.force sub_fp) then Some p
                    else None)
                  ancestors
              in
              escapes :=
                { read = l; path = List.rev (step_of a :: path); anchor }
                :: !escapes)
          (HT.heap_reads t)
    | A.Emp | A.Points_to _ | A.Ghost _ | A.Pred _ -> ()
    | A.Sep (p, q) | A.And (p, q) | A.Or (p, q) ->
        enter p;
        enter q
    | A.Wand (_, q) -> enter q
    | A.Exists (_, p) | A.Forall (_, p) | A.Persistently p | A.Later p
    | A.Upd p ->
        enter p
    | A.Stabilize _ -> ()  (* stable by construction *)
    | A.Wp _ -> ()  (* quantifies over the global state itself *)
  in
  go [] [] a;
  match List.rev !escapes with [] -> Stable | es -> Unstable es

let stable a = verdict a = Stable

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

let pp_path ppf = function
  | [] -> Fmt.string ppf "the root"
  | p -> Fmt.string ppf (String.concat "/" p)

let escape_hint (e : escape) =
  match e.anchor with
  | Some [] | Some [ _ ] ->
      Fmt.str "wrap the specification in ⌊·⌋ (Stabilize) at the root to \
               re-anchor ⌜… !%a …⌝ to its points-to footprint" T.pp e.read
  | Some p ->
      Fmt.str "wrap the subassertion at %a in ⌊·⌋ (Stabilize): its \
               footprint owns %a ↦ _" pp_path p T.pp e.read
  | None ->
      Fmt.str "no enclosing footprint owns %a — add a points-to chunk \
               (%a ↦ _) to the same separating context, or drop the read"
        T.pp e.read T.pp e.read

(** DA011 diagnostics for an unstable spec assertion at [loc]. *)
let check ~(loc : Diag.loc) (a : A.t) : Diag.t list =
  match verdict a with
  | Stable -> []
  | Unstable escapes ->
      List.map
        (fun (e : escape) ->
          Diag.error ~code:"DA011" ~hint:(escape_hint e)
            ~loc:{ loc with Diag.path = e.path }
            "unstable assertion: heap read !%a escapes the points-to \
             footprint"
            T.pp e.read)
        escapes

(** DA012: a predicate body must be stable at declaration — this is
    the check [Assertion.stable]'s [Pred _ -> true] case relies on
    (and which {!Verifier.State.create} now enforces at runtime). *)
let check_pred ~unit_name (def : A.pred_def) : Diag.t list =
  match verdict def.A.body with
  | Stable -> []
  | Unstable escapes ->
      List.map
        (fun (e : escape) ->
          Diag.error ~code:"DA012" ~hint:(escape_hint e)
            ~loc:
              (Diag.loc ~unit_name ~path:e.path
                 (Diag.Pred def.A.pname) Diag.Pred_body)
            "predicate %s is unstable at declaration: heap read !%a \
             escapes its body's footprint (chunks assume predicates \
             stable)"
            def.A.pname T.pp e.read)
        escapes

(** DA028: a named invariant body must be stable at declaration — it
    stands for the shared state *between* atomic sections, under
    arbitrary interference from the other branches, where an escaping
    read is meaningless ({!Verifier.State.create} enforces the same
    condition at runtime). *)
let check_inv ~unit_name name (body : A.t) : Diag.t list =
  match verdict body with
  | Stable -> []
  | Unstable escapes ->
      List.map
        (fun (e : escape) ->
          Diag.error ~code:"DA028" ~hint:(escape_hint e)
            ~loc:
              (Diag.loc ~unit_name ~path:e.path (Diag.Inv name)
                 Diag.Inv_body)
            "invariant %s is unstable at declaration: heap read !%a \
             escapes its body's footprint"
            name T.pp e.read)
        escapes
