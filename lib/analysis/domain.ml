(** The abstract interpreter's state: an {!Absdom} numeric
    environment threaded through a *symbolic heap* of points-to
    chunks — the same chunks the frame lint reasons about, collected
    by the shared {!Footprint} walk so the two passes cannot drift.

    A state [{env; heap}] concretizes to the concrete states where
    (1) every heap chunk [(l, v)] stores the denotation of [v] at the
    denotation of [l], chunks denoting *distinct* locations (chunks
    are separated, exactly as in [State.inhale_cases]); and (2) every
    atom valuation satisfies [env]. Joins at branch merges and
    widening at loop heads replace disagreeing chunk values with
    fresh *abstract atoms* ([%absN] variables) whose [env] constraint
    is the join/widening of the branch values — the atoms are
    existentially quantified per concretization, which is what
    {!leq}'s chunk comparison relies on. *)

open Stdx
module A = Baselogic.Assertion
module HT = Baselogic.Hterm
module T = Smt.Term
module D = Absdom

type t = { env : D.t; heap : (T.t * T.t) list }

let top = { env = D.top; heap = [] }
let bot = { env = D.bot; heap = [] }
let is_bot st = D.is_bot st.env

(* ------------------------------------------------------------------ *)
(* Abstract atoms *)

let abs_prefix = "%abs"
let ctr = Atomic.make 0

let fresh_name () = abs_prefix ^ string_of_int (Atomic.fetch_and_add ctr 1)
let fresh_atom () = T.var (fresh_name ())

let is_abs_atom t =
  match T.view t with
  | T.Var (x, _) ->
      String.length x >= String.length abs_prefix
      && String.sub x 0 (String.length abs_prefix) = abs_prefix
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Heap-read resolution *)

let find_chunk st l = List.find_opt (fun (l', _) -> T.equal l l') st.heap

let resolve_reads st t =
  HT.resolve (fun l -> Option.map snd (find_chunk st l)) t

(** Assume the pure formula [phi], resolving its heap reads against
    the current chunks. A read no chunk covers stays a [!deref] term;
    constraints on such terms would go stale at the next mutation, so
    the formula is dropped (sound — we just learn nothing). *)
let assume st phi =
  match phi with
  | None -> st
  | Some phi ->
      let phi = resolve_reads st phi in
      if HT.heap_dependent phi then st
      else { st with env = D.assume phi st.env }

let assume_not st phi =
  match phi with
  | None -> st
  | Some phi ->
      let phi = resolve_reads st phi in
      if HT.heap_dependent phi then st
      else { st with env = D.assume_not phi st.env }

(** Three-valued truth of [phi] at this program point. Unresolved
    reads are opaque atoms — fine for an instantaneous query. *)
let holds st phi = D.holds st.env (resolve_reads st phi)

(** Abstract value of a term at this program point. *)
let value st t = D.val_of st.env (resolve_reads st t)

(* ------------------------------------------------------------------ *)
(* Inhaling assertions *)

(* Rename every [Exists]/[Forall] binder to a fresh abstract atom, so
   inhaling the same spec twice (or two specs reusing a binder name)
   cannot conflate distinct existentials. Mirrors the executor's
   gensym at [inhale_cases]'s [Exists] case. *)
let rec freshen (a : A.t) : A.t =
  match a with
  | A.Exists (x, p) ->
      let fx = fresh_name () in
      A.Exists (fx, freshen (A.subst (Smap.of_list [ (x, T.var fx) ]) p))
  | A.Forall (x, p) ->
      let fx = fresh_name () in
      A.Forall (fx, freshen (A.subst (Smap.of_list [ (x, T.var fx) ]) p))
  | A.Pure _ | A.Emp | A.Points_to _ | A.Pred _ | A.Ghost _ -> a
  | A.Sep (p, q) -> A.Sep (freshen p, freshen q)
  | A.Wand (p, q) -> A.Wand (freshen p, freshen q)
  | A.And (p, q) -> A.And (freshen p, freshen q)
  | A.Or (p, q) -> A.Or (freshen p, freshen q)
  | A.Persistently p -> A.Persistently (freshen p)
  | A.Later p -> A.Later (freshen p)
  | A.Upd p -> A.Upd (freshen p)
  | A.Stabilize p -> A.Stabilize (freshen p)
  | A.Wp _ -> a

(** Inhale [a] into [st], one result state per disjunctive case
    (chunks first, then pures — the executor's order), paired with
    the freshened case it came from (the DA022 inductiveness check
    needs the case's own pures and chunk terms). A case whose pures
    are abstractly contradictory comes back [Bot]; callers filter or
    report. [None] from the case split (too many disjuncts) degrades
    to the input state unchanged, paired with an empty case. *)
let inhale_cases (st : t) (a : A.t) : (t * Footprint.case) list =
  match Footprint.cases (freshen a) with
  | None -> [ (st, Footprint.empty_case) ]
  | Some cases ->
      List.map
        (fun (c : Footprint.case) ->
          let heap =
            List.fold_left
              (fun h (ch : Footprint.chunk) ->
                (ch.Footprint.loc, ch.Footprint.value)
                :: List.filter
                     (fun (l, _) -> not (T.equal l ch.Footprint.loc))
                     h)
              st.heap c.Footprint.chunks
          in
          let st =
            List.fold_left
              (fun st phi -> assume st (Some phi))
              { st with heap } c.Footprint.pures
          in
          (st, c))
        cases

let inhale (st : t) (a : A.t) : t list = List.map fst (inhale_cases st a)

(** [seed a] — the states an assertion describes on its own: inhale
    into the empty state. *)
let seed (a : A.t) : t list = inhale top a

(* ------------------------------------------------------------------ *)
(* Heap operations *)

(** Forget every chunk value (the chunks' *locations* are stable —
    ownership doesn't change — but their contents become opaque). *)
let havoc_values st =
  { st with heap = List.map (fun (l, _) -> (l, fresh_atom ())) st.heap }

let load st l =
  match find_chunk st l with
  | Some (_, v) -> v
  | None -> fresh_atom ()

(** Store through [l]: a matching chunk is updated in place; a store
    through an untracked location may alias any chunk, so every value
    is forgotten. *)
let store st l v =
  match find_chunk st l with
  | Some _ ->
      {
        st with
        heap =
          List.map
            (fun (l', v') -> if T.equal l l' then (l', v) else (l', v'))
            st.heap;
      }
  | None -> havoc_values st

let alloc st v =
  let l = fresh_atom () in
  let st = { st with heap = (l, v) :: st.heap } in
  ({ st with env = D.assume (T.le (T.int 0) l) st.env }, l)

let remove st l =
  match find_chunk st l with
  | Some _ ->
      { st with heap = List.filter (fun (l', _) -> not (T.equal l l')) st.heap }
  | None -> havoc_values st

(* ------------------------------------------------------------------ *)
(* Lattice structure *)

(* Join/widen two states: chunks surviving in both keep their term
   when the branches agree; a disagreement becomes a fresh atom
   constrained to the combination of the two branch values. *)
let merge ~combine_env ~combine_val a b =
  if is_bot a then b
  else if is_bot b then a
  else
    let heap, constraints =
      List.fold_left
        (fun (heap, cs) (l, va) ->
          match find_chunk b l with
          | None -> (heap, cs)
          | Some (_, vb) ->
              if T.equal va vb then ((l, va) :: heap, cs)
              else
                let x = fresh_atom () in
                let v = combine_val (D.val_of a.env va) (D.val_of b.env vb) in
                ((l, x) :: heap, (x, v) :: cs))
        ([], []) a.heap
    in
    let env = combine_env a.env b.env in
    let env =
      List.fold_left (fun env (x, v) -> D.constrain env x v) env constraints
    in
    { env; heap = List.rev heap }

let join a b = merge ~combine_env:D.join ~combine_val:D.Val.join a b
let widen a b = merge ~combine_env:D.widen ~combine_val:D.Val.widen a b

(** [leq a b] — is every concretization of [a] one of [b]? Abstract
    atoms on the right are existential (per-concretization), so a
    chunk value only needs its abstract *value* included; any other
    term demands syntactic agreement. *)
let leq a b =
  if is_bot a then true
  else if is_bot b then false
  else
    List.for_all
      (fun (l, vb) ->
        match find_chunk a l with
        | None -> false
        | Some (_, va) ->
            T.equal va vb
            || (is_abs_atom vb
               && D.Val.leq (D.val_of a.env va) (D.val_of b.env vb)))
      b.heap
    && match D.bindings b.env with
       | None -> false
       | Some bs ->
           List.for_all
             (fun (x, v) ->
               is_abs_atom x || D.Val.leq (D.val_of_atom a.env x) v)
             bs

let pp ppf st =
  if is_bot st then Fmt.string ppf "⊥"
  else
    Fmt.pf ppf "@[<v>heap: %a@ env: %a@]"
      (Fmt.list ~sep:(Fmt.any " ∗ ") (fun ppf (l, v) ->
           Fmt.pf ppf "%a ↦ %a" T.pp l T.pp v))
      st.heap D.pp st.env
