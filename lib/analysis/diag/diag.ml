(** Structured diagnostics for the pre-verification static analysis.

    Every finding carries a stable code (the [DA0xx] table below), a
    severity, and a structured location naming the enclosing procedure
    or predicate, the specification site (requires / ensures / the
    n-th invariant / a ghost block / the body), and a path into the
    assertion. Two renderers: a one-line pretty form for terminals and
    a JSON object for tooling ([daenerys lint --json]).

    This module is deliberately free of verifier dependencies so that
    [lib/verifier] itself can raise {!Spec_error} on the spec-shaped
    failure paths (unknown predicate, arity mismatch, missing
    invariant, …): the analyzer in [lib/analysis] and the runtime
    checks in the symbolic executor then speak the same language, and
    a program that lints clean cannot reach any of those runtime
    failures.

    The code table (keep in sync with DESIGN.md §"Static analysis"):

    {v
    DA001  unknown predicate                              error
    DA002  predicate arity mismatch                       error
    DA003  unknown procedure                              error
    DA004  procedure call arity mismatch                  error
    DA005  unbound logical variable in a specification    error
    DA006  `result` used outside an ensures clause        error
    DA007  ghost command references an undeclared ghost   error
    DA008  while loop without an invariant annotation     error
    DA009  ghost mark without a command block             error
    DA010  program symbol never bound                     error
    DA011  unstable assertion (heap read escapes the
           points-to footprint; suggests a ⌊·⌋ placement) error
    DA012  predicate body unstable at declaration         error
    DA013  heap read no points-to chunk covers in its
           branch (reachability / frame lint)             warning★
    DA014  construct outside the executable fragment      error
    DA015  assertion outside the executable fragment      error
    DA016  dangling invariant annotation                  warning
    DA017  ghost block never referenced by the body       warning
    DA018  definite division by zero (interval/parity
           abstraction proves the divisor 0)              error
    DA019  definitely-unreachable branch                  warning
    DA020  contradictory requires (no abstract state
           satisfies any disjunct)                        error
    DA021  trivially-false ensures                        error
    DA022  loop invariant not abstractly inductive        warning
    DA023  redundant ⌊·⌋ on an already-stable assertion   warning
    DA024  unused procedure parameter                     warning
    DA025  while loop without a variant/decreases hint    warning
    DA026  nested atomic section (an invariant would be
           opened twice — mask/reentrancy violation)      error
    DA027  par branch touches invariant-governed state
           outside any atomic section (racy access)       warning
    DA028  named invariant body unstable at declaration   error
    v}

    DA018–DA025 come from the abstract-interpretation pass
    ([lib/analysis/absint.ml]): a forward interpreter over a reduced
    product of interval and parity domains threaded through a symbolic
    heap. The same pass pre-discharges [Valid] verification conditions
    ahead of the SMT backend; [--no-absint] disables both.

    (★) DA013 is an error at [Requires] and [Invariant] sites, where
    an uncovered read makes the very first inhale fail; at [Ensures]
    the exit state may own chunks the spec does not spell out
    (allocations, callee postconditions), so it is a warning. *)

type severity = Error | Warning | Info

type context =
  | Proc of string  (** a procedure, by name *)
  | Pred of string  (** a named predicate definition *)
  | Inv of string  (** a named (atomic-section) invariant declaration *)
  | Program  (** whole-program findings *)

type site =
  | Requires
  | Ensures
  | Invariant of int  (** 0-based index into the proc's annotations *)
  | Ghost_block of string  (** the [GhostMark] key *)
  | Body
  | Pred_body
  | Inv_body  (** the body of a named invariant declaration *)

type loc = {
  unit_name : string;  (** owning program / suite entry; may be "" *)
  context : context;
  site : site;
  path : string list;  (** descent into the assertion, outermost first *)
  span : Stdx.Loc.t option;
      (** source span of the clause, when the program came from a
          [.hl] file; [None] for hand-built programs *)
}

type t = {
  code : string;  (** stable "DA0xx" identifier *)
  severity : severity;
  loc : loc;
  message : string;
  hint : string option;  (** a suggested fix, e.g. a ⌊·⌋ placement *)
}

exception Spec_error of t
(** Raised by the symbolic executor on spec-shaped failure paths. The
    analyzer reports the same conditions as values, never by raising. *)

let loc ?(unit_name = "") ?(path = []) ?span context site =
  { unit_name; context; site; path; span }

let v ?hint ~code ~severity ~loc message =
  { code; severity; loc; message; hint }

(** [error ~code ~loc fmt] and friends: formatted constructors. *)
let error ?hint ~code ~loc fmt =
  Fmt.kstr (fun message -> v ?hint ~code ~severity:Error ~loc message) fmt

let warning ?hint ~code ~loc fmt =
  Fmt.kstr (fun message -> v ?hint ~code ~severity:Warning ~loc message) fmt

let spec_error ?hint ~code ~loc fmt =
  Fmt.kstr
    (fun message ->
      raise (Spec_error (v ?hint ~code ~severity:Error ~loc message)))
    fmt

(* ------------------------------------------------------------------ *)
(* Source maps

   Elaboration from the surface language records, per specification
   clause, the source span it came from. Diagnostics produced against
   the elaborated (span-free) program are then re-anchored by looking
   up their structured location. Keys are at clause granularity —
   (context, site) — which is exactly the resolution the analyzer and
   the executor report at. *)

type srcmap = ((context * site) * Stdx.Loc.t) list

let srcmap_find (m : srcmap) ~context ~site =
  List.assoc_opt (context, site) m

(** Fill in [span] from the source map when the diagnostic does not
    already carry one. A [Pred p] context is resolved against the map
    regardless of which unit reported it (predicates are shared). *)
let relocate (m : srcmap) (d : t) : t =
  match d.loc.span with
  | Some _ -> d
  | None -> (
      match srcmap_find m ~context:d.loc.context ~site:d.loc.site with
      | Some span -> { d with loc = { d.loc with span = Some span } }
      | None -> d)

let relocate_all m ds = List.map (relocate m) ds

(* ------------------------------------------------------------------ *)
(* Accessors *)

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(** Sort key: unit, context, site, severity, code — so one program's
    findings group together and errors lead within a site. *)
let compare_diag a b =
  let c = String.compare a.loc.unit_name b.loc.unit_name in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.loc.context b.loc.context in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.loc.site b.loc.site in
      if c <> 0 then c
      else
        let c = compare (severity_rank a.severity) (severity_rank b.severity) in
        if c <> 0 then c else String.compare a.code b.code

let sort ds = List.stable_sort compare_diag ds

(* ------------------------------------------------------------------ *)
(* Pretty renderer *)

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let context_to_string = function
  | Proc p -> "proc " ^ p
  | Pred p -> "pred " ^ p
  | Inv n -> "invariant " ^ n
  | Program -> "program"

let site_to_string = function
  | Requires -> "requires"
  | Ensures -> "ensures"
  | Invariant i -> Printf.sprintf "invariant #%d" i
  | Ghost_block k -> Printf.sprintf "ghost %S" k
  | Body -> "body"
  | Pred_body -> "definition"
  | Inv_body -> "invariant body"

let pp_loc ppf l =
  (match l.span with
  | Some s when not (Stdx.Loc.is_dummy s) -> Fmt.pf ppf "%a: " Stdx.Loc.pp s
  | _ -> if l.unit_name <> "" then Fmt.pf ppf "%s: " l.unit_name);
  Fmt.pf ppf "%s, %s" (context_to_string l.context) (site_to_string l.site);
  match l.path with
  | [] -> ()
  | path -> Fmt.pf ppf ", at %s" (String.concat "/" path)

let pp ppf d =
  Fmt.pf ppf "%s[%s] %a: %s" (severity_to_string d.severity) d.code pp_loc
    d.loc d.message;
  match d.hint with None -> () | Some h -> Fmt.pf ppf "@   hint: %s" h

let pp_list ppf ds = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp) ds
let to_string d = Fmt.str "%a" pp d

(* ------------------------------------------------------------------ *)
(* JSON renderer *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let context_to_json = function
  | Proc p -> Printf.sprintf {|{"kind": "proc", "name": %s}|} (json_string p)
  | Pred p -> Printf.sprintf {|{"kind": "pred", "name": %s}|} (json_string p)
  | Inv n ->
      Printf.sprintf {|{"kind": "invariant", "name": %s}|} (json_string n)
  | Program -> {|{"kind": "program"}|}

let span_to_json (s : Stdx.Loc.t) =
  Printf.sprintf
    {|{"file": %s, "line": %d, "col": %d, "end_line": %d, "end_col": %d}|}
    (json_string s.Stdx.Loc.file)
    s.Stdx.Loc.line s.Stdx.Loc.col s.Stdx.Loc.end_line s.Stdx.Loc.end_col

let to_json d =
  let fields =
    [
      ("code", json_string d.code);
      ("severity", json_string (severity_to_string d.severity));
      ("unit", json_string d.loc.unit_name);
      ("context", context_to_json d.loc.context);
      ("site", json_string (site_to_string d.loc.site));
      ( "path",
        Printf.sprintf "[%s]"
          (String.concat ", " (List.map json_string d.loc.path)) );
      ("message", json_string d.message);
    ]
    @ (match d.loc.span with
      | Some s when not (Stdx.Loc.is_dummy s) -> [ ("span", span_to_json s) ]
      | _ -> [])
    @ match d.hint with None -> [] | Some h -> [ ("hint", json_string h) ]
  in
  Printf.sprintf "{%s}"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields))

let list_to_json = function
  | [] -> "[]"
  | ds ->
      Printf.sprintf "[\n  %s\n]" (String.concat ",\n  " (List.map to_json ds))

let () =
  Printexc.register_printer (function
    | Spec_error d -> Some (Fmt.str "Spec_error (%a)" pp d)
    | _ -> None)
