(** Pre-verification static analysis over a whole
    {!Verifier.Exec.program}: spec well-formedness, stability
    explanations, and the reachability/frame lint — everything that can
    be diagnosed without touching the SMT solver.

    The three passes and the diagnostics they emit (codes are stable;
    the full table lives in {!Diag} and DESIGN.md):

    - {!Wellformed} — name resolution and shape: DA001–DA010,
      DA014–DA017;
    - {!Stability} — {!Baselogic.Assertion.stable} as an explanation:
      DA011 (which read escapes which footprint, with a suggested ⌊·⌋
      placement) and DA012 (predicate bodies stable at declaration, the
      check [assertion.ml]'s [Pred _ -> true] case assumes);
    - {!Frame} — per-disjunct resolvability of heap reads: DA013;
    - {!Absint} — the forward abstract interpreter (interval×parity
      over a symbolic heap, {!Domain} on {!Absdom}): DA018–DA025.
      Disabled by [~absint:false] ([--no-absint] on the CLI), which
      also turns off the verifier's VC pre-discharge.

    [analyze_program] is pure and solver-free, so the engine runs it as
    ordinary jobs on the domain pool before any verification job. A
    program with no error-severity diagnostics cannot reach any
    spec-shaped [fail] in the symbolic executor. *)

module Diag = Diag
module Stability = Stability
module Wellformed = Wellformed
module Frame = Frame
module Footprint = Footprint
module Domain = Domain
module Absint = Absint

open Stdx
module A = Baselogic.Assertion
module V = Verifier.Exec

(** Stability diagnostics (DA011/DA012/DA028) for every spec site. *)
let stability_diags ~unit_name (prog : V.program) : Diag.t list =
  let preds =
    Smap.bindings prog.V.preds
    |> List.concat_map (fun (_, def) -> Stability.check_pred ~unit_name def)
  in
  let invs =
    List.concat_map
      (fun (name, body) -> Stability.check_inv ~unit_name name body)
      prog.V.invs
  in
  let proc (p : V.proc) =
    let loc site = Diag.loc ~unit_name (Diag.Proc p.V.pname) site in
    Stability.check ~loc:(loc Diag.Requires) p.V.requires
    @ Stability.check ~loc:(loc Diag.Ensures) p.V.ensures
    @ List.concat
        (List.mapi
           (fun i (_, inv) ->
             Stability.check ~loc:(loc (Diag.Invariant i)) inv)
           p.V.invariants)
    @ List.concat_map
        (fun (key, cmds) ->
          List.concat_map
            (function
              | V.AssertA a ->
                  Stability.check ~loc:(loc (Diag.Ghost_block key)) a
              | _ -> [])
            cmds)
        p.V.ghost
  in
  preds @ invs @ List.concat_map proc prog.V.procs

(** Frame-lint diagnostics (DA013). Requires and invariants inhale
    into chunk-free states, so uncovered reads there are errors;
    ensures and ghost asserts are consumed against whatever the
    execution owns, so those are warnings with the requires footprint
    as ambient context. *)
let frame_diags ~unit_name (prog : V.program) : Diag.t list =
  let preds =
    Smap.bindings prog.V.preds
    |> List.concat_map (fun (_, def) ->
           Frame.check
             ~loc:
               (Diag.loc ~unit_name (Diag.Pred def.A.pname) Diag.Pred_body)
             ~severity:Diag.Warning def.A.body)
  in
  let invs =
    (* Invariant bodies inhale into the (chunk-free) atomic-entry
       state, like requires clauses: uncovered reads are errors. *)
    List.concat_map
      (fun (name, body) ->
        Frame.check
          ~loc:(Diag.loc ~unit_name (Diag.Inv name) Diag.Inv_body)
          ~severity:Diag.Error body)
      prog.V.invs
  in
  let proc (p : V.proc) =
    let loc site = Diag.loc ~unit_name (Diag.Proc p.V.pname) site in
    let ambient = A.footprint [] p.V.requires in
    Frame.check ~loc:(loc Diag.Requires) ~severity:Diag.Error p.V.requires
    @ Frame.check ~loc:(loc Diag.Ensures) ~severity:Diag.Warning ~ambient
        p.V.ensures
    @ List.concat
        (List.mapi
           (fun i (_, inv) ->
             Frame.check
               ~loc:(loc (Diag.Invariant i))
               ~severity:Diag.Error inv)
           p.V.invariants)
    @ List.concat_map
        (fun (key, cmds) ->
          List.concat_map
            (function
              | V.AssertA a ->
                  Frame.check
                    ~loc:(loc (Diag.Ghost_block key))
                    ~severity:Diag.Warning ~ambient a
              | _ -> [])
            cmds)
        p.V.ghost
  in
  preds @ invs @ List.concat_map proc prog.V.procs

(** Run every pass over [prog]; diagnostics come back sorted (unit,
    context, site, severity, code). [name] labels the program in
    locations — suite entry name, file, … [absint:false] skips the
    abstract-interpretation pass (DA018–DA025) — the [--no-absint]
    escape hatch. *)
let analyze_program ?(name = "") ?(absint = true) (prog : V.program) :
    Diag.t list =
  Diag.sort
    (Wellformed.check_program ~unit_name:name prog
    @ stability_diags ~unit_name:name prog
    @ frame_diags ~unit_name:name prog
    @ (if absint then Absint.check_program ~unit_name:name prog else []))

(** [ok diags] — no error-severity findings. *)
let ok diags = not (Diag.has_errors diags)
