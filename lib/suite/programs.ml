(** The benchmark suite: annotated programs exercising the verifier
    (and, where marked, the certified baseline).

    Conventions: specification parameters appear as [Sym] values in
    programs and as term variables in assertions, with the same name;
    procedure results bind the reserved variable [result] in
    postconditions. *)

open Stdx
module A = Baselogic.Assertion
module GV = Baselogic.Ghost_val
module HT = Baselogic.Hterm
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module P = Proofmode.Prove

let sym x = HL.Val (HL.Sym x)
let pt ?frac l v = A.points_to ?frac (T.var l) v
let deref l = HT.deref (T.var l)

(** A baseline (proof-producing) verification task. *)
type baseline = {
  b_pre : A.t;
  b_body : HL.expr;
  b_post : A.t;  (** binds [result] *)
  b_invs : (HL.expr * P.loop_annot) list;
}

type entry = {
  name : string;
  descr : string;
  prog : V.program;
  main : string;
  baseline : baseline option;
  stable_variant : V.program option;
      (** same program, specs without heap-dependent assertions (A1) *)
  expect_fail : bool;  (** negative test: must NOT verify *)
}

let entry ?baseline ?stable_variant ?(expect_fail = false) ~descr name prog
    main =
  { name; descr; prog; main; baseline; stable_variant; expect_fail }

let one_proc ?(preds = Smap.empty) ?(invs = []) p = { V.procs = [ p ]; preds; invs }

(* ------------------------------------------------------------------ *)
(* 1. swap *)

let swap_body =
  HL.Let
    ( "x",
      HL.Load (sym "l"),
      HL.Let
        ( "y",
          HL.Load (sym "r"),
          HL.Seq
            (HL.Store (sym "l", HL.Var "y"), HL.Store (sym "r", HL.Var "x"))
        ) )

let swap_proc =
  {
    V.pname = "swap";
    params = [ "l"; "r"; "a"; "b" ];
    requires = A.seps [ pt "l" (T.var "a"); pt "r" (T.var "b") ];
    ensures = A.seps [ pt "l" (T.var "b"); pt "r" (T.var "a") ];
    body = swap_body;
    invariants = [];
    ghost = [];
  }

let swap =
  entry ~descr:"swap two references"
    ~baseline:
      {
        b_pre = swap_proc.V.requires;
        b_body = swap_body;
        b_post = swap_proc.V.ensures;
        b_invs = [];
      }
    "swap" (one_proc swap_proc) "swap"

(* ------------------------------------------------------------------ *)
(* 2. swap client (modular calls) *)

let swap_client_proc =
  {
    V.pname = "swap_client";
    params = [];
    requires = A.Emp;
    ensures = A.Pure (T.eq (T.var "result") (T.int 1));
    body =
      HL.Let
        ( "l",
          HL.Alloc (HL.Val (HL.Int 1)),
          HL.Let
            ( "r",
              HL.Alloc (HL.Val (HL.Int 2)),
              HL.Seq
                ( HL.App
                    ( HL.App
                        ( HL.App (HL.App (HL.Var "swap", HL.Var "l"), HL.Var "r"),
                          HL.Val (HL.Int 1) ),
                      HL.Val (HL.Int 2) ),
                  HL.Load (HL.Var "r") ) ) );
    invariants = [];
    ghost = [];
  }

let swap_client =
  entry ~descr:"modular verification through swap's spec" "swap_client"
    { V.procs = [ swap_proc; swap_client_proc ]; preds = Smap.empty; invs = [] }
    "swap_client"

(* ------------------------------------------------------------------ *)
(* 3. count to n — loop with heap-dependent invariant *)

let count_body =
  HL.Let
    ( "c",
      HL.Load (sym "i"),
      HL.Let
        ( "d",
          HL.BinOp (HL.Add, HL.Var "c", HL.Val (HL.Int 1)),
          HL.Store (sym "i", HL.Var "d") ) )

let count_cond =
  HL.Let ("c", HL.Load (sym "i"), HL.BinOp (HL.Lt, HL.Var "c", sym "n"))

let count_loop = HL.While (count_cond, count_body)

(* Heap-dependent invariant: one existential for the cell, the bounds
   read the heap directly. *)
let count_inv_hd =
  A.Sep
    ( A.Exists ("v", pt "i" (T.var "v")),
      A.Pure (T.and_ [ T.le (T.int 0) (deref "i"); T.le (deref "i") (T.var "n") ])
    )

(* Stable variant: the classic explicitly-threaded form. *)
let count_inv_stable =
  A.Exists
    ( "v",
      A.Sep
        ( pt "i" (T.var "v"),
          A.Pure (T.and_ [ T.le (T.int 0) (T.var "v"); T.le (T.var "v") (T.var "n") ])
        ) )

let count_proc inv =
  {
    V.pname = "count";
    params = [ "i"; "n" ];
    requires = A.seps [ pt "i" (T.int 0); A.Pure (T.le (T.int 0) (T.var "n")) ];
    ensures =
      A.Sep
        ( A.Pure (T.eq (T.var "result") (T.var "n")),
          A.Exists ("w", pt "i" (T.var "w")) );
    body = HL.Seq (count_loop, HL.Load (sym "i"));
    invariants = [ (count_loop, inv) ];
    ghost = [];
  }

let count =
  entry ~descr:"count a cell up to n (loop invariant reads the heap)"
    ~stable_variant:(one_proc (count_proc count_inv_stable))
    ~baseline:
      {
        b_pre = (count_proc count_inv_hd).V.requires;
        b_body = HL.Seq (count_loop, HL.Load (sym "i"));
        b_post = (count_proc count_inv_hd).V.ensures;
        b_invs =
          [
            ( count_loop,
              {
                P.inv = count_inv_stable;
                guard = Some (T.lt (deref "i") (T.var "n"));
              } );
          ];
      }
    "count" (one_proc (count_proc count_inv_hd)) "count"

(* ------------------------------------------------------------------ *)
(* 4. max3 — branch-heavy pure code *)

let max3_proc =
  let ge a b = HL.BinOp (HL.Ge, a, b) in
  {
    V.pname = "max3";
    params = [ "a"; "b"; "c" ];
    requires = A.Emp;
    ensures =
      (let r = T.var "result" in
       A.Pure
         (T.and_
            [
              T.ge r (T.var "a");
              T.ge r (T.var "b");
              T.ge r (T.var "c");
              T.or_
                [ T.eq r (T.var "a"); T.eq r (T.var "b"); T.eq r (T.var "c") ];
            ]));
    body =
      HL.Let
        ( "ab",
          HL.If (ge (sym "a") (sym "b"), sym "a", sym "b"),
          HL.If (ge (HL.Var "ab") (sym "c"), HL.Var "ab", sym "c") );
    invariants = [];
    ghost = [];
  }

let max3 =
  entry ~descr:"maximum of three, branch coverage"
    ~baseline:
      {
        b_pre = max3_proc.V.requires;
        b_body = P.anf max3_proc.V.body;
        b_post = max3_proc.V.ensures;
        b_invs = [];
      }
    "max3" (one_proc max3_proc) "max3"

(* ------------------------------------------------------------------ *)
(* 5. clamp with assert *)

let clamp_proc =
  {
    V.pname = "clamp";
    params = [ "x"; "lo"; "hi" ];
    requires = A.Pure (T.le (T.var "lo") (T.var "hi"));
    ensures =
      A.Pure
        (T.and_
           [ T.le (T.var "lo") (T.var "result"); T.le (T.var "result") (T.var "hi") ]);
    body =
      HL.Let
        ( "r",
          HL.If
            ( HL.BinOp (HL.Lt, sym "x", sym "lo"),
              sym "lo",
              HL.If (HL.BinOp (HL.Gt, sym "x", sym "hi"), sym "hi", sym "x") ),
          HL.Seq
            ( HL.Assert (HL.BinOp (HL.Le, sym "lo", HL.Var "r")),
              HL.Var "r" ) );
    invariants = [];
    ghost = [];
  }

let clamp =
  entry ~descr:"clamp with a runtime assert"
    ~baseline:
      {
        b_pre = clamp_proc.V.requires;
        b_body = P.anf clamp_proc.V.body;
        b_post = clamp_proc.V.ensures;
        b_invs = [];
      }
    "clamp" (one_proc clamp_proc) "clamp"

(* ------------------------------------------------------------------ *)
(* 6. bank transfer — the heap-dependent flagship *)

(* The invariant of the bank is heap-dependent: !a + !b = total. The
   transfer temporarily breaks and restores it. *)
let bank_proc =
  let amount = T.var "amt" in
  {
    V.pname = "transfer";
    params = [ "a"; "b"; "amt"; "total" ];
    requires =
      A.seps
        [
          A.Exists ("va", pt "a" (T.var "va"));
          A.Exists ("vb", pt "b" (T.var "vb"));
          A.Pure (T.eq (T.add (deref "a") (deref "b")) (T.var "total"));
          A.Pure (T.le (T.int 0) amount);
          A.Pure (T.le amount (deref "a"));
        ];
    ensures =
      A.seps
        [
          A.Exists ("wa", pt "a" (T.var "wa"));
          A.Exists ("wb", pt "b" (T.var "wb"));
          A.Pure (T.eq (T.add (deref "a") (deref "b")) (T.var "total"));
          A.Pure (T.le (T.int 0) (deref "a"));
        ];
    body =
      HL.Let
        ( "x",
          HL.Load (sym "a"),
          HL.Seq
            ( HL.Store (sym "a", HL.BinOp (HL.Sub, HL.Var "x", sym "amt")),
              HL.Let
                ( "y",
                  HL.Load (sym "b"),
                  HL.Store (sym "b", HL.BinOp (HL.Add, HL.Var "y", sym "amt"))
                ) ) );
    invariants = [];
    ghost = [];
  }

(* Stable variant: thread every value explicitly. *)
let bank_stable =
  {
    bank_proc with
    V.requires =
      A.Exists
        ( "va",
          A.Exists
            ( "vb",
              A.seps
                [
                  pt "a" (T.var "va");
                  pt "b" (T.var "vb");
                  A.Pure (T.eq (T.add (T.var "va") (T.var "vb")) (T.var "total"));
                  A.Pure (T.le (T.int 0) (T.var "amt"));
                  A.Pure (T.le (T.var "amt") (T.var "va"));
                ] ) );
    ensures =
      A.Exists
        ( "wa",
          A.Exists
            ( "wb",
              A.seps
                [
                  pt "a" (T.var "wa");
                  pt "b" (T.var "wb");
                  A.Pure (T.eq (T.add (T.var "wa") (T.var "wb")) (T.var "total"));
                  A.Pure (T.le (T.int 0) (T.var "wa"));
                ] ) );
  }

let bank =
  entry ~descr:"bank transfer preserving a heap-dependent sum invariant"
    ~stable_variant:(one_proc bank_stable) "bank" (one_proc bank_proc)
    "transfer"

(* ------------------------------------------------------------------ *)
(* 7. ghost counter — authoritative nat ghost state *)

let ghost_counter_proc =
  let gamma = "γc" in
  let auth n m = GV.Auth_nat { auth = Some n; frag = m } in
  {
    V.pname = "ghost_incr";
    params = [ "l"; "n" ];
    requires =
      A.seps
        [
          A.Exists ("v", A.Sep (pt "l" (T.var "v"),
                                A.Ghost (gamma, auth (T.var "v") (T.var "v"))));
          A.Pure (T.le (T.int 0) (deref "l"));
        ];
    ensures =
      A.seps
        [
          A.Exists
            ( "w",
              A.Sep (pt "l" (T.var "w"),
                     A.Ghost (gamma, auth (T.var "w") (T.var "w"))) );
          A.Pure (T.eq (deref "l") (T.add (T.var "v0") (T.int 1)));
        ];
    body =
      HL.Let
        ( "c",
          HL.Load (sym "l"),
          HL.Seq
            ( HL.Store (sym "l", HL.BinOp (HL.Add, HL.Var "c", HL.Val (HL.Int 1))),
              HL.GhostMark "bump" ) );
    invariants = [];
    ghost = [];
  }

(* The ghost command needs the symbolic old value, which is only known
   at verification time; we approximate with an update over the read
   value by naming the precondition's existential. Simplest sound
   setup: a version with explicit parameters. *)
let ghost_counter_proc =
  let gamma = "γc" in
  let auth n m = GV.Auth_nat { auth = Some n; frag = m } in
  {
    ghost_counter_proc with
    V.params = [ "l"; "v0" ];
    requires =
      A.seps
        [
          pt "l" (T.var "v0");
          A.Ghost (gamma, auth (T.var "v0") (T.var "v0"));
          A.Pure (T.le (T.int 0) (T.var "v0"));
        ];
    ensures =
      A.seps
        [
          pt "l" (T.add (T.var "v0") (T.int 1));
          A.Ghost
            (gamma, auth (T.add (T.var "v0") (T.int 1)) (T.add (T.var "v0") (T.int 1)));
        ];
    ghost =
      [
        ( "bump",
          [
            V.Update
              ( gamma,
                auth (T.var "v0") (T.var "v0"),
                auth (T.add (T.var "v0") (T.int 1)) (T.add (T.var "v0") (T.int 1))
              );
          ] );
      ];
  }

let ghost_counter =
  entry ~descr:"physical increment with an authoritative ghost counter"
    "ghost_counter" (one_proc ghost_counter_proc) "ghost_incr"

(* ------------------------------------------------------------------ *)
(* 8. monotone log — MaxNat ghost (persistent lower bounds) *)

let monotone_proc =
  let gamma = "γm" in
  {
    V.pname = "bump_log";
    params = [ "l"; "v0" ];
    requires =
      A.seps
        [
          pt "l" (T.var "v0");
          A.Ghost (gamma, GV.Max_nat (T.var "v0"));
          A.Pure (T.le (T.int 0) (T.var "v0"));
        ];
    ensures =
      A.seps
        [
          pt "l" (T.add (T.var "v0") (T.int 2));
          (* the old lower bound survives (persistence) … *)
          A.Ghost (gamma, GV.Max_nat (T.var "v0"));
        ];
    body =
      HL.Let
        ( "c",
          HL.Load (sym "l"),
          HL.Seq
            ( HL.Store (sym "l", HL.BinOp (HL.Add, HL.Var "c", HL.Val (HL.Int 2))),
              HL.GhostMark "bump" ) );
    invariants = [];
    ghost =
      [
        ( "bump",
          [
            V.Update
              (gamma, GV.Max_nat (T.var "v0"), GV.Max_nat (T.add (T.var "v0") (T.int 2)));
          ] );
      ];
  }

let monotone =
  entry ~descr:"monotone counter: MaxNat ghost bound survives updates"
    "monotone" (one_proc monotone_proc) "bump_log"

(* ------------------------------------------------------------------ *)
(* 9. linked chain length — recursive predicate + recursion *)

(* clist(p, n): p is a null(-1)-terminated chain of n cells, each
   holding the next pointer. *)
let clist_def =
  {
    A.pname = "clist";
    params = [ "p"; "n" ];
    body =
      A.Or
        ( A.Pure (T.and_ [ T.eq (T.var "p") (T.int (-1)); T.eq (T.var "n") (T.int 0) ]),
          A.seps
            [
              A.Pure (T.not_ (T.eq (T.var "p") (T.int (-1))));
              A.Pure (T.lt (T.int 0) (T.var "n"));
              A.Exists
                ( "nx",
                  A.Sep
                    ( pt "p" (T.var "nx"),
                      A.Pred ("clist", [ T.var "nx"; T.sub (T.var "n") (T.int 1) ])
                    ) );
            ] );
  }

let clist_preds = Smap.of_list [ ("clist", clist_def) ]

let length_proc =
  {
    V.pname = "length";
    params = [ "p"; "n" ];
    requires =
      A.Sep
        (A.Pred ("clist", [ T.var "p"; T.var "n" ]), A.Pure (T.le (T.int 0) (T.var "n")));
    ensures =
      A.Sep
        ( A.Pred ("clist", [ T.var "p"; T.var "n" ]),
          A.Pure (T.eq (T.var "result") (T.var "n")) );
    body =
      HL.Seq
        ( HL.GhostMark "unfold",
          HL.If
            ( HL.BinOp (HL.Eq, sym "p", HL.Val (HL.Int (-1))),
              HL.Seq (HL.GhostMark "fold_nil", HL.Val (HL.Int 0)),
              HL.Let
                ( "nx",
                  HL.Load (sym "p"),
                  HL.Let
                    ( "rest",
                      HL.App
                        ( HL.App (HL.Var "length", HL.Var "nx"),
                          HL.BinOp (HL.Sub, sym "n", HL.Val (HL.Int 1)) ),
                      HL.Seq
                        ( HL.GhostMark "fold_cons",
                          HL.BinOp (HL.Add, HL.Var "rest", HL.Val (HL.Int 1)) )
                    ) ) ) );
    invariants = [];
    ghost =
      [
        ("unfold", [ V.Unfold ("clist", [ T.var "p"; T.var "n" ]) ]);
        ("fold_nil", [ V.Fold ("clist", [ T.var "p"; T.var "n" ]) ]);
        ("fold_cons", [ V.Fold ("clist", [ T.var "p"; T.var "n" ]) ]);
      ];
  }

let list_length =
  entry ~descr:"recursive chain length with a recursive predicate"
    "list_length"
    { V.procs = [ length_proc ]; preds = clist_preds; invs = [] }
    "length"

(* ------------------------------------------------------------------ *)
(* 10. CAS once *)

let cas_proc =
  {
    V.pname = "cas_once";
    params = [ "l"; "v0" ];
    requires = pt "l" (T.var "v0");
    ensures =
      A.Sep
        ( A.Exists ("w", pt "l" (T.var "w")),
          A.Pure
            (T.or_
               [
                 T.and_
                   [ T.eq (T.var "result") (T.int 1); T.eq (deref "l") (T.int 42) ];
                 T.and_
                   [
                     T.eq (T.var "result") (T.int 0);
                     T.not_ (T.eq (T.var "v0") (T.int 0));
                   ];
               ]) );
    body = HL.Cas (sym "l", HL.Val (HL.Int 0), HL.Val (HL.Int 42));
    invariants = [];
    ghost = [];
  }

let cas_once =
  entry ~descr:"compare-and-set with a disjunctive postcondition" "cas_once"
    (one_proc cas_proc) "cas_once"

(* ------------------------------------------------------------------ *)
(* 11. FAA counter *)

let faa_proc =
  {
    V.pname = "faa_twice";
    params = [ "l"; "v0" ];
    requires = pt "l" (T.var "v0");
    ensures =
      A.Sep
        ( pt "l" (T.add (T.var "v0") (T.int 5)),
          A.Pure (T.eq (T.var "result") (T.add (T.var "v0") (T.int 2))) );
    body =
      HL.Seq
        (HL.Faa (sym "l", HL.Val (HL.Int 2)), HL.Faa (sym "l", HL.Val (HL.Int 3)));
    invariants = [];
    ghost = [];
  }

let faa_counter =
  entry ~descr:"two fetch-and-adds"
    ~baseline:
      {
        b_pre = faa_proc.V.requires;
        b_body = faa_proc.V.body;
        b_post = faa_proc.V.ensures;
        b_invs = [];
      }
    "faa_counter" (one_proc faa_proc) "faa_twice"

(* ------------------------------------------------------------------ *)
(* 12. negative tests — must fail *)

let bad_swap =
  entry ~descr:"swap with a wrong postcondition (must fail)" ~expect_fail:true
    "bad_swap"
    (one_proc
       { swap_proc with V.pname = "bad_swap"; ensures = swap_proc.V.requires })
    "bad_swap"

let bad_leak =
  entry ~descr:"reads a location without permission (must fail)"
    ~expect_fail:true "bad_leak"
    (one_proc
       {
         V.pname = "bad_leak";
         params = [ "l" ];
         requires = A.Emp;
         ensures = A.Emp;
         body = HL.Load (sym "l");
         invariants = [];
         ghost = [];
       })
    "bad_leak"

let bad_unstable =
  (* Claims a heap-dependent fact about a cell it mutates without
     re-establishing it: the destabilized discipline must reject. *)
  entry ~descr:"stale heap-dependent fact after store (must fail)"
    ~expect_fail:true "bad_unstable"
    (one_proc
       {
         V.pname = "bad_unstable";
         params = [ "l"; "v0" ];
         requires =
           A.Sep (pt "l" (T.var "v0"), A.Pure (T.eq (deref "l") (T.var "v0")));
         ensures = A.Sep (A.Exists ("w", pt "l" (T.var "w")),
                          A.Pure (T.eq (deref "l") (T.var "v0")));
         body = HL.Store (sym "l", HL.BinOp (HL.Add, sym "v0", HL.Val (HL.Int 1)));
         invariants = [];
         ghost = [];
       })
    "bad_unstable"

(* ------------------------------------------------------------------ *)



(* ------------------------------------------------------------------ *)
(* 13. times table: result = 7·n by repeated addition *)

let times7_body =
  HL.Let
    ( "c",
      HL.Load (sym "i"),
      HL.Let
        ( "c'",
          HL.BinOp (HL.Add, HL.Var "c", HL.Val (HL.Int 1)),
          HL.Seq
            ( HL.Store (sym "i", HL.Var "c'"),
              HL.Let
                ( "s",
                  HL.Load (sym "acc"),
                  HL.Let
                    ( "s'",
                      HL.BinOp (HL.Add, HL.Var "s", HL.Val (HL.Int 7)),
                      HL.Store (sym "acc", HL.Var "s'") ) ) ) ) )

let times7_cond =
  HL.Let ("c", HL.Load (sym "i"), HL.BinOp (HL.Lt, HL.Var "c", sym "n"))

let times7_loop = HL.While (times7_cond, times7_body)

let times7_proc =
  {
    V.pname = "times7";
    params = [ "i"; "acc"; "n" ];
    requires =
      A.seps
        [ pt "i" (T.int 0); pt "acc" (T.int 0); A.Pure (T.le (T.int 0) (T.var "n")) ];
    ensures =
      A.seps
        [
          A.Exists ("w", pt "i" (T.var "w"));
          A.Exists ("u", pt "acc" (T.var "u"));
          A.Pure (T.eq (T.var "result") (T.mul (T.int 7) (T.var "n")));
        ];
    body = HL.Seq (times7_loop, HL.Load (sym "acc"));
    invariants =
      [
        ( times7_loop,
          (* multiplication by the literal 7 keeps everything linear *)
          A.seps
            [
              A.Exists ("v", pt "i" (T.var "v"));
              A.Exists ("s", pt "acc" (T.var "s"));
              A.Pure
                (T.and_
                   [
                     T.le (T.int 0) (deref "i");
                     T.le (deref "i") (T.var "n");
                     T.eq (deref "acc") (T.mul (T.int 7) (deref "i"));
                   ]);
            ] );
      ];
    ghost = [];
  }

let times7 =
  entry ~descr:"7·n by repeated addition; invariant links two cells"
    "times7" (one_proc times7_proc) "times7"

(* ------------------------------------------------------------------ *)
(* 14. CAS retry loop: set a cell to 42 no matter what *)

let cas_retry_cond =
  HL.Let
    ( "ok",
      HL.Cas (sym "l", HL.Load (sym "l"), HL.Val (HL.Int 42)),
      (* keep looping while the cell is not yet 42 *)
      HL.Let
        ( "cur",
          HL.Load (sym "l"),
          HL.BinOp (HL.Ne, HL.Var "cur", HL.Val (HL.Int 42)) ) )

let cas_retry_loop = HL.While (cas_retry_cond, HL.Val HL.Unit)

let cas_retry_proc =
  {
    V.pname = "cas_retry";
    params = [ "l"; "v0" ];
    requires = pt "l" (T.var "v0");
    ensures =
      A.Sep
        ( A.Exists ("w", pt "l" (T.var "w")),
          A.Pure (T.eq (deref "l") (T.int 42)) );
    body = HL.Seq (cas_retry_loop, HL.Val HL.Unit);
    invariants =
      [ (cas_retry_loop, A.Exists ("v", pt "l" (T.var "v"))) ];
    ghost = [];
  }

let cas_retry =
  entry ~descr:"CAS retry loop establishing a fixed value" "cas_retry"
    (one_proc cas_retry_proc) "cas_retry"

(* ------------------------------------------------------------------ *)
(* 15. allocate, use, free — full lifecycle, leak-free *)

let lifecycle_proc =
  {
    V.pname = "lifecycle";
    params = [];
    requires = A.Emp;
    ensures = A.Pure (T.eq (T.var "result") (T.int 10));
    body =
      HL.Let
        ( "a",
          HL.Alloc (HL.Val (HL.Int 3)),
          HL.Let
            ( "b",
              HL.Alloc (HL.Val (HL.Int 7)),
              HL.Let
                ( "x",
                  HL.Load (HL.Var "a"),
                  HL.Let
                    ( "y",
                      HL.Load (HL.Var "b"),
                      HL.Seq
                        ( HL.Free (HL.Var "a"),
                          HL.Seq
                            ( HL.Free (HL.Var "b"),
                              HL.BinOp (HL.Add, HL.Var "x", HL.Var "y") ) ) ) )
            ) );
    invariants = [];
    ghost = [];
  }

let lifecycle =
  entry ~descr:"alloc/use/free lifecycle; the final heap is empty"
    ~baseline:
      {
        b_pre = lifecycle_proc.V.requires;
        b_body = lifecycle_proc.V.body;
        b_post = lifecycle_proc.V.ensures;
        b_invs = [];
      }
    "lifecycle" (one_proc lifecycle_proc) "lifecycle"

(* ------------------------------------------------------------------ *)
(* 16. double free — must fail *)

let bad_double_free =
  entry ~descr:"double free (must fail)" ~expect_fail:true "bad_double_free"
    (one_proc
       {
         V.pname = "bad_double_free";
         params = [ "l"; "v" ];
         requires = pt "l" (T.var "v");
         ensures = A.Emp;
         body = HL.Seq (HL.Free (sym "l"), HL.Free (sym "l"));
         invariants = [];
         ghost = [];
       })
    "bad_double_free"

(* ------------------------------------------------------------------ *)
(* 17. fractional read sharing: two half-permission readers agree *)

let shared_read_proc =
  {
    V.pname = "shared_read";
    params = [ "l"; "v" ];
    requires =
      A.Sep
        (pt ~frac:Q.half "l" (T.var "v"), pt ~frac:Q.half "l" (T.var "v"));
    ensures =
      A.Sep
        ( pt "l" (T.var "v"),
          A.Pure (T.eq (T.var "result") (T.mul (T.int 2) (T.var "v"))) );
    body =
      HL.Let
        ( "x",
          HL.Load (sym "l"),
          HL.Let
            ( "y",
              HL.Load (sym "l"),
              HL.BinOp (HL.Add, HL.Var "x", HL.Var "y") ) );
    invariants = [];
    ghost = [];
  }

let shared_read =
  entry ~descr:"two half-permissions read consistently and rejoin"
    ~baseline:
      {
        b_pre = shared_read_proc.V.requires;
        b_body = shared_read_proc.V.body;
        b_post = shared_read_proc.V.ensures;
        b_invs = [];
      }
    "shared_read" (one_proc shared_read_proc) "shared_read"

(* ------------------------------------------------------------------ *)
(* 18. write with half permission — must fail *)

let bad_half_write =
  entry ~descr:"store through a half permission (must fail)"
    ~expect_fail:true "bad_half_write"
    (one_proc
       {
         V.pname = "bad_half_write";
         params = [ "l"; "v" ];
         requires = pt ~frac:Q.half "l" (T.var "v");
         ensures = A.Exists ("w", pt ~frac:Q.half "l" (T.var "w"));
         body = HL.Store (sym "l", HL.Val (HL.Int 0));
         invariants = [];
         ghost = [];
       })
    "bad_half_write"

(* ------------------------------------------------------------------ *)
(* 19. spinlock — par + a named invariant transferring the cell *)

(* The lock invariant is the classic Or-shape: either the lock is free
   and the invariant owns the protected cell, or it is taken and the
   cell has been transferred to the winner. A CAS acquire inside
   [atomic] closes the invariant through the *taken* disjunct, so the
   winning branch walks away owning [x ↦ v] and may mutate it
   non-atomically until the releasing store hands both back. *)
let spinlock_inv =
  ( "lock",
    A.Or
      ( A.Sep (pt "lck" (T.int 0), A.Exists ("v", pt "x" (T.var "v"))),
        pt "lck" (T.int 1) ) )

let spinlock_branch =
  HL.Let
    ( "ok",
      HL.Atomic (HL.Cas (sym "lck", HL.Val (HL.Int 0), HL.Val (HL.Int 1))),
      HL.If
        ( HL.Var "ok",
          HL.Seq
            ( (* critical section: the branch owns x outright *)
              HL.Store
                ( sym "x",
                  HL.BinOp (HL.Add, HL.Load (sym "x"), HL.Val (HL.Int 1)) ),
              HL.Atomic (HL.Store (sym "lck", HL.Val (HL.Int 0))) ),
          HL.Val (HL.Int 0) ) )

let spinlock_proc =
  {
    V.pname = "spinlock";
    params = [ "lck"; "x" ];
    requires = A.Emp;
    ensures = A.Emp;
    body = HL.Par (spinlock_branch, spinlock_branch);
    invariants = [];
    ghost = [];
  }

let spinlock =
  entry
    ~descr:
      "spinlock: CAS acquire transfers the cell out of the lock invariant"
    "spinlock"
    { V.procs = [ spinlock_proc ]; preds = Smap.empty; invs = [ spinlock_inv ] }
    "spinlock"

(* ------------------------------------------------------------------ *)
(* 20. ticket lock — FAA + a weakened safety invariant *)

(* Without ghost state the invariant cannot tie a dispensed ticket to
   the dispenser's future values across interference, so it keeps only
   the safety bounds 0 ≤ owner and 0 ≤ next — exactly what survives
   arbitrary interleaving, and exactly what each atomic section must
   re-prove on close (the FAA re-establishes 0 ≤ next + 1, the serving
   store re-establishes 0 ≤ owner + 1). *)
let ticket_inv =
  ( "tickets",
    A.Exists
      ( "o",
        A.Exists
          ( "n",
            A.seps
              [
                pt "owner" (T.var "o");
                pt "next" (T.var "n");
                A.Pure (T.le (T.int 0) (T.var "o"));
                A.Pure (T.le (T.int 0) (T.var "n"));
              ] ) ) )

let ticket_branch =
  HL.Let
    ( "t",
      HL.Atomic (HL.Faa (sym "next", HL.Val (HL.Int 1))),
      HL.Atomic
        (HL.Let
           ( "o",
             HL.Load (sym "owner"),
             HL.If
               ( HL.BinOp (HL.Eq, HL.Var "o", HL.Var "t"),
                 HL.Store
                   ( sym "owner",
                     HL.BinOp (HL.Add, HL.Var "o", HL.Val (HL.Int 1)) ),
                 HL.Val (HL.Int 0) ) ) ) )

let ticket_lock_proc =
  {
    V.pname = "ticket_lock";
    params = [ "owner"; "next" ];
    requires = A.Emp;
    ensures = A.Emp;
    body = HL.Par (ticket_branch, ticket_branch);
    invariants = [];
    ghost = [];
  }

let ticket_lock =
  entry
    ~descr:"ticket lock: FAA dispenser under a weakened safety invariant"
    "ticket_lock"
    {
      V.procs = [ ticket_lock_proc ];
      preds = Smap.empty;
      invs = [ ticket_inv ];
    }
    "ticket_lock"

(* ------------------------------------------------------------------ *)
(* 21. Treiber stack — recursive predicate inside an invariant *)

(* stk(p): p heads a null(-1)-terminated chain of single-cell nodes,
   each holding the next pointer (the suite's minimal node shape). *)
let stk_def =
  {
    A.pname = "stk";
    params = [ "p" ];
    body =
      A.Or
        ( A.Pure (T.eq (T.var "p") (T.int (-1))),
          A.seps
            [
              A.Pure (T.not_ (T.eq (T.var "p") (T.int (-1))));
              A.Exists
                ( "nx",
                  A.Sep (pt "p" (T.var "nx"), A.Pred ("stk", [ T.var "nx" ]))
                );
            ] );
  }

let stk_preds = Smap.of_list [ ("stk", stk_def) ]

(* Push and pop are whole atomic sections (the CAS retry loop of the
   real structure collapses to its winning iteration): push allocates,
   links and folds the new head; pop unfolds the head, unlinks and
   frees it. Both close by giving [∃top. s ↦ top ∗ stk(top)] back. *)
let treiber_push =
  HL.Atomic
    (HL.Let
       ( "t",
         HL.Load (sym "s"),
         HL.Let
           ( "nd",
             HL.Alloc (HL.Var "t"),
             HL.Seq
               ( HL.Store (sym "s", HL.Var "nd"),
                 HL.Seq (HL.GhostMark "push_fold", HL.Var "nd") ) ) ) )

let treiber_pop =
  HL.Atomic
    (HL.Let
       ( "t",
         HL.Load (sym "s"),
         HL.If
           ( HL.BinOp (HL.Eq, HL.Var "t", HL.Val (HL.Int (-1))),
             HL.Val (HL.Int (-1)),
             HL.Seq
               ( HL.GhostMark "pop_unfold",
                 HL.Let
                   ( "nx",
                     HL.Load (HL.Var "t"),
                     HL.Seq
                       ( HL.Store (sym "s", HL.Var "nx"),
                         HL.Seq (HL.Free (HL.Var "t"), HL.Var "t") ) ) ) ) ) )

let treiber_inv =
  ( "stack",
    A.Exists ("top", A.Sep (pt "s" (T.var "top"), A.Pred ("stk", [ T.var "top" ])))
  )

let treiber_proc =
  {
    V.pname = "treiber";
    params = [ "s" ];
    requires = A.Emp;
    ensures = A.Emp;
    body = HL.Par (treiber_push, treiber_pop);
    invariants = [];
    ghost =
      [
        ("push_fold", [ V.Fold ("stk", [ deref "s" ]) ]);
        ("pop_unfold", [ V.Unfold ("stk", [ deref "s" ]) ]);
      ];
  }

let treiber =
  entry
    ~descr:"Treiber stack: recursive predicate owned by the invariant"
    "treiber"
    { V.procs = [ treiber_proc ]; preds = stk_preds; invs = [ treiber_inv ] }
    "treiber"

(* ------------------------------------------------------------------ *)
(* 22. racy increment — par without atomic must fail *)

let racy_branch =
  HL.Store (sym "x", HL.BinOp (HL.Add, HL.Load (sym "x"), HL.Val (HL.Int 1)))

let racy_incr_proc =
  {
    V.pname = "racy_incr";
    params = [ "x" ];
    requires = A.Emp;
    ensures = A.Emp;
    body = HL.Par (racy_branch, racy_branch);
    invariants = [];
    ghost = [];
  }

let racy_incr =
  entry
    ~descr:
      "parallel increment without atomic sections (must fail: branches \
       own nothing)"
    ~expect_fail:true "racy_incr"
    {
      V.procs = [ racy_incr_proc ];
      preds = Smap.empty;
      invs = [ ("cell", A.Exists ("v", pt "x" (T.var "v"))) ];
    }
    "racy_incr"

(* ------------------------------------------------------------------ *)
(* 23. lock without an invariant — must fail *)

let lock_noinv_proc = { spinlock_proc with V.pname = "lock_noinv" }

let lock_noinv =
  entry
    ~descr:
      "spinlock body with no declared invariant (must fail: the CAS has \
       no permission source)"
    ~expect_fail:true "lock_noinv"
    { V.procs = [ lock_noinv_proc ]; preds = Smap.empty; invs = [] }
    "lock_noinv"

(* ------------------------------------------------------------------ *)

let all : entry list =
  [
    swap;
    swap_client;
    count;
    max3;
    clamp;
    bank;
    ghost_counter;
    monotone;
    list_length;
    cas_once;
    faa_counter;
    times7;
    cas_retry;
    lifecycle;
    shared_read;
    spinlock;
    ticket_lock;
    treiber;
    bad_swap;
    bad_leak;
    bad_unstable;
    bad_double_free;
    bad_half_write;
    racy_incr;
    lock_noinv;
  ]

let positive = List.filter (fun e -> not e.expect_fail) all
let negative = List.filter (fun e -> e.expect_fail) all
