(** The benchmark suite: annotated programs ({!Programs}), parametric
    workload generators ({!Generators}), the corpus-scale synthetic
    generator ({!Corpus}), the lint-negative suite of deliberately
    ill-formed programs ({!Ill_formed}), and the [examples/] program
    registry ({!Examples}). *)

module Programs = Programs
module Generators = Generators
module Corpus = Corpus
module Ill_formed = Ill_formed
module Examples = Examples
