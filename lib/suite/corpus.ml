(** Synthetic corpus generator for whole-pipeline throughput.

    Scales the {!Generators} workload families to thousands of
    *distinct* procedures: every procedure gets its own constants and
    variable names, so its VCs miss the content-addressed cache on a
    cold run and hit on a warm one. A deterministic [seed] makes the
    corpus reproducible across processes and machines — the CI gate in
    [dev/check.sh] relies on a fixed-seed corpus having a fixed verdict
    manifest.

    A slice of the corpus (roughly one in twelve procedures) carries a
    deliberately wrong postcondition ([expect_fail]); throughput
    benchmarks double as a verdict-stability check because the
    expected verdict travels with each spec. *)

open Stdx
module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec

type spec = {
  name : string;
  program : V.program;
  expect_fail : bool;  (** the procedure must FAIL verification *)
}

let sym x = HL.Val (HL.Sym x)
let pt l v = A.points_to (T.var l) v

(** A chain of [n] updates of one cell starting at the symbolic value
    [v]; each step adds [step]; returns the final load. The
    postcondition claims the closed form [v + n*step (+ post_off)],
    so every procedure costs a real LIA entailment — the symbolic
    start value defeats constant folding. [post_off <> 0] skews the
    claimed final value (the spec is wrong). *)
let chain ~name ~n ~step ~salt ~post_off : V.proc =
  let v = Printf.sprintf "v%d" salt in
  let rec build i =
    if i = 0 then HL.Load (sym "l")
    else
      let c = Printf.sprintf "c%d_%d" salt i
      and d = Printf.sprintf "d%d_%d" salt i in
      HL.Let
        ( c,
          HL.Load (sym "l"),
          HL.Let
            ( d,
              HL.BinOp (HL.Add, HL.Var c, HL.Val (HL.Int step)),
              HL.Seq (HL.Store (sym "l", HL.Var d), build (i - 1)) ) )
  in
  let final = T.add (T.var v) (T.int ((n * step) + post_off)) in
  {
    V.pname = name;
    params = [ "l" ];
    requires = pt "l" (T.var v);
    ensures =
      A.Sep (pt "l" final, A.Pure (T.eq (T.var "result") final));
    body = build n;
    invariants = [];
    ghost = [];
  }

(** [k] cells with per-cell symbolic initial values, each bumped by
    [step]. The postcondition states each final value commuted
    ([step + v_i]) so chunk matching needs the solver rather than
    structural equality. [wrong_cell >= 0] skews that cell's claimed
    final value. *)
let cells ~name ~k ~step ~salt ~wrong_cell : V.proc =
  let cell i = Printf.sprintf "m%d_%d" salt i in
  let v i = Printf.sprintf "w%d_%d" salt i in
  let rec build i =
    let bump =
      HL.Let
        ( "c",
          HL.Load (sym (cell i)),
          HL.Let
            ( "d",
              HL.BinOp (HL.Add, HL.Var "c", HL.Val (HL.Int step)),
              HL.Store (sym (cell i), HL.Var "d") ) )
    in
    if i = k - 1 then bump else HL.Seq (bump, build (i + 1))
  in
  let post i =
    let off = step + if i = wrong_cell then 1 else 0 in
    pt (cell i) (T.add (T.int off) (T.var (v i)))
  in
  {
    V.pname = name;
    params = List.init k cell;
    requires = A.seps (List.init k (fun i -> pt (cell i) (T.var (v i))));
    ensures = A.seps (List.init k post);
    body = build 0;
    invariants = [];
    ghost = [];
  }

(** Deterministic corpus of [size] single-procedure programs. *)
let generate ~seed ~size : spec list =
  let rng = Random.State.make [| 0x5eed; seed |] in
  List.init size (fun i ->
      let fail = Random.State.int rng 12 = 0 in
      let salt = i in
      let proc, fam =
        if Random.State.bool rng then
          let n = 3 + Random.State.int rng 8 in
          let step = 1 + Random.State.int rng 9 in
          ( chain
              ~name:(Printf.sprintf "corpus%04d_chain%d" i n)
              ~n ~step ~salt
              ~post_off:(if fail then 1 + Random.State.int rng 3 else 0),
            "chain" )
        else
          let k = 2 + Random.State.int rng 7 in
          let step = 1 + Random.State.int rng 9 in
          ( cells
              ~name:(Printf.sprintf "corpus%04d_cells%d" i k)
              ~k ~step ~salt
              ~wrong_cell:(if fail then Random.State.int rng k else -1),
            "cells" )
      in
      ignore fam;
      {
        name = proc.V.pname;
        program = { V.procs = [ proc ]; preds = Smap.empty; invs = [] };
        expect_fail = fail;
      })

(** Canonical digest of a verdict manifest: MD5 over "name:verdict"
    lines. The CI gate pins (a prefix of) this against the committed
    benchmark baseline to catch verdict drift. *)
let manifest_digest (verdicts : (string * bool) list) : string =
  verdicts
  |> List.map (fun (name, failed) ->
         Printf.sprintf "%s:%s\n" name (if failed then "failed" else "verified"))
  |> String.concat ""
  |> Digest.string |> Digest.to_hex
