(** The example programs of [examples/] as a library-level registry, so
    they are one verification/lint target rather than code trapped
    inside executables. The executables import their programs from
    here; [daenerys lint] and [dev/check.sh] sweep [all]. *)

open Stdx
module A = Baselogic.Assertion
module HT = Baselogic.Hterm
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec

let sym x = HL.Val (HL.Sym x)
let deref l = HT.deref (T.var l)

(* ------------------------------------------------------------------ *)
(* quickstart: increment a cell twice *)

let incr2_body =
  HL.Let ("x", HL.Load (sym "l"),
    HL.Let ("x1", HL.BinOp (HL.Add, HL.Var "x", HL.Val (HL.Int 1)),
      HL.Seq (HL.Store (sym "l", HL.Var "x1"),
        HL.Let ("y", HL.Load (sym "l"),
          HL.Let ("y1", HL.BinOp (HL.Add, HL.Var "y", HL.Val (HL.Int 1)),
            HL.Seq (HL.Store (sym "l", HL.Var "y1"),
                    HL.Load (sym "l")))))))

let incr2_pre = A.points_to (T.var "l") (T.var "v0")

(* Destabilized style: the postcondition reads the heap directly —
   [!l = v0 + 2] — instead of naming the final value. *)
let incr2_post =
  A.Sep
    ( A.Exists ("w", A.points_to (T.var "l") (T.var "w")),
      A.Pure
        (T.and_
           [
             T.eq (deref "l") (T.add (T.var "v0") (T.int 2));
             T.eq (T.var "result") (T.add (T.var "v0") (T.int 2));
           ]) )

let incr2_proc =
  {
    V.pname = "incr2";
    params = [ "l"; "v0" ];
    requires = incr2_pre;
    ensures = incr2_post;
    body = incr2_body;
    invariants = [];
    ghost = [];
  }

let incr2 = { V.procs = [ incr2_proc ]; preds = Smap.empty; invs = [] }

(* ------------------------------------------------------------------ *)
(* parsed_program: absolute difference, through the textual front-end *)

let absdiff_src =
  {|
  (* absolute difference of the two cells, leaving both intact *)
  let x = !?a in
  let y = !?b in
  if x < y then y - x else x - y
|}

let absdiff_proc =
  {
    V.pname = "absdiff";
    params = [ "a"; "b"; "va"; "vb" ];
    requires =
      A.seps
        [
          A.points_to (T.var "a") (T.var "va");
          A.points_to (T.var "b") (T.var "vb");
        ];
    ensures =
      A.seps
        [
          A.points_to (T.var "a") (T.var "va");
          A.points_to (T.var "b") (T.var "vb");
          A.Pure (T.ge (T.var "result") (T.int 0));
          A.Pure
            (T.or_
               [
                 T.eq (T.var "result") (T.sub (T.var "va") (T.var "vb"));
                 T.eq (T.var "result") (T.sub (T.var "vb") (T.var "va"));
               ]);
        ];
    body = Heaplang.Parser.parse_exn absdiff_src;
    invariants = [];
    ghost = [];
  }

let absdiff = { V.procs = [ absdiff_proc ]; preds = Smap.empty; invs = [] }

(* ------------------------------------------------------------------ *)

(** Every example program, by name. [bank] and [list_length] reuse the
    suite entries the examples demonstrate. *)
let all : (string * V.program) list =
  [
    ("example:incr2", incr2);
    ("example:absdiff", absdiff);
    ("example:bank", Programs.bank.Programs.prog);
    ("example:list", Programs.list_length.Programs.prog);
  ]
