(** The negative suite for the static analyzer: deliberately ill-formed
    programs, each annotated with the diagnostic codes the analyzer
    must produce for it ([daenerys lint --ill-formed] and
    [test_analysis] check exactly that).

    These are *lint*-negative — malformed before any semantic question
    arises — unlike {!Programs.negative}, whose entries are well-formed
    programs with wrong specifications that only the solver can
    reject. *)

open Stdx
module A = Baselogic.Assertion
module GV = Baselogic.Ghost_val
module HT = Baselogic.Hterm
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec

type case = {
  name : string;
  descr : string;
  prog : V.program;
  codes : string list;  (** codes that must each appear at least once *)
}

let pt l v = A.points_to (T.var l) v
let deref l = HT.deref (T.var l)
let sym x = HL.Val (HL.Sym x)

let proc ?(params = []) ?(requires = A.Emp) ?(ensures = A.Emp)
    ?(body = HL.Val HL.Unit) ?(invariants = []) ?(ghost = []) pname =
  { V.pname; params; requires; ensures; body; invariants; ghost }

let one ?(preds = Smap.empty) ?(invs = []) p = { V.procs = [ p ]; preds; invs }

let case ~descr ~codes name prog = { name; descr; prog; codes }

(* A well-formed predicate to mis-reference. *)
let cell_def =
  { A.pname = "cell"; params = [ "p"; "v" ]; body = pt "p" (T.var "v") }

let cell_preds = Smap.of_list [ ("cell", cell_def) ]

let unknown_pred =
  case ~descr:"requires references a predicate nobody declared"
    ~codes:[ "DA001" ] "unknown_pred"
    (one
       (proc ~params:[ "p" ]
          ~requires:(A.Pred ("nolist", [ T.var "p" ]))
          "unknown_pred"))

let pred_arity =
  case ~descr:"cell/2 applied to one argument" ~codes:[ "DA002" ]
    "pred_arity"
    (one ~preds:cell_preds
       (proc ~params:[ "p" ]
          ~requires:(A.Pred ("cell", [ T.var "p" ]))
          "pred_arity"))

let unknown_proc =
  case ~descr:"calls a procedure that does not exist" ~codes:[ "DA003" ]
    "unknown_proc"
    (one (proc ~body:(HL.App (HL.Var "nosuch", HL.Val (HL.Int 1))) "caller"))

let call_arity =
  case ~descr:"two-parameter callee called with one argument"
    ~codes:[ "DA004" ] "call_arity"
    {
      V.procs =
        [
          proc ~params:[ "a"; "b" ] "callee";
          proc ~body:(HL.App (HL.Var "callee", HL.Val (HL.Int 1))) "caller";
        ];
      preds = Smap.empty;
      invs = [];
    }

let unbound_var =
  case ~descr:"requires mentions a logical variable that is no parameter"
    ~codes:[ "DA005" ] "unbound_var"
    (one (proc ~requires:(A.Pure (T.eq (T.var "x") (T.int 0))) "unbound_var"))

let result_in_requires =
  case ~descr:"`result` used in a requires clause" ~codes:[ "DA006" ]
    "result_in_requires"
    (one
       (proc ~requires:(A.Pure (T.eq (T.var "result") (T.int 0)))
          "result_in_requires"))

let undeclared_ghost =
  case ~descr:"ghost update over a name never owned or allocated"
    ~codes:[ "DA007" ] "undeclared_ghost"
    (one
       (proc ~body:(HL.GhostMark "bump")
          ~ghost:
            [
              ( "bump",
                [
                  V.Update
                    ("γ", GV.Max_nat (T.int 0), GV.Max_nat (T.int 1));
                ] );
            ]
          "undeclared_ghost"))

let while_no_inv =
  case ~descr:"while loop with no invariant annotation" ~codes:[ "DA008" ]
    "while_no_inv"
    (one
       (proc
          ~body:(HL.While (HL.Val (HL.Bool false), HL.Val HL.Unit))
          "while_no_inv"))

let ghost_mark_missing =
  case ~descr:"ghost mark with no command block" ~codes:[ "DA009" ]
    "ghost_mark_missing"
    (one (proc ~body:(HL.GhostMark "nothing_here") "ghost_mark_missing"))

let unbound_sym =
  case ~descr:"body reads through a symbol that is no parameter"
    ~codes:[ "DA010" ] "unbound_sym"
    (one (proc ~body:(HL.Load (sym "l")) "unbound_sym"))

let unstable_spec =
  case
    ~descr:"requires reads !l with no points-to footprint anywhere"
    ~codes:[ "DA011"; "DA013" ] "unstable_spec"
    (one
       (proc ~params:[ "l" ]
          ~requires:(A.Pure (T.eq (deref "l") (T.int 5)))
          "unstable_spec"))

let unstable_pred =
  case ~descr:"predicate body unstable at declaration" ~codes:[ "DA012" ]
    "unstable_pred"
    (one
       ~preds:
         (Smap.of_list
            [
              ( "shaky",
                {
                  A.pname = "shaky";
                  params = [ "p" ];
                  body = A.Pure (T.eq (deref "p") (T.int 0));
                } );
            ])
       (proc "unstable_pred"))

let uncovered_read =
  case
    ~descr:
      "⌊⌜!l = 5⌝⌋ is stable by construction yet no chunk can resolve \
       the read"
    ~codes:[ "DA013" ] "uncovered_read"
    (one
       (proc ~params:[ "l" ]
          ~requires:(A.Stabilize (A.Pure (T.eq (deref "l") (T.int 5))))
          "uncovered_read"))

let fragment_expr =
  case ~descr:"pair construction in verified code" ~codes:[ "DA014" ]
    "fragment_expr"
    (one
       (proc ~body:(HL.PairE (HL.Val (HL.Int 1), HL.Val (HL.Int 2)))
          "fragment_expr"))

let fragment_assert =
  case ~descr:"magic wand in a spec" ~codes:[ "DA015" ] "fragment_assert"
    (one (proc ~requires:(A.Wand (A.Emp, A.Emp)) "fragment_assert"))

let dangling_inv =
  let stray = HL.While (HL.Val (HL.Bool false), HL.Val HL.Unit) in
  case ~descr:"invariant annotation attached to no loop in the body"
    ~codes:[ "DA016" ] "dangling_inv"
    (one (proc ~invariants:[ (stray, A.Emp) ] "dangling_inv"))

let unused_ghost_block =
  case ~descr:"ghost command block never referenced by the body"
    ~codes:[ "DA017" ] "unused_ghost_block"
    (one
       (proc ~ghost:[ ("orphan", [ V.AssertA A.Emp ]) ] "unused_ghost_block"))

(* --------------------------------------------------------------- *)
(* DA018–DA025: the abstract-interpretation pass (lib/analysis/absint) *)

let div_by_zero =
  case ~descr:"divisor is the literal 0 on every path" ~codes:[ "DA018" ]
    "div_by_zero"
    (one
       (proc
          ~body:(HL.BinOp (HL.Div, HL.Val (HL.Int 1), HL.Val (HL.Int 0)))
          "div_by_zero"))

let dead_branch =
  case ~descr:"then-branch guarded by 1 < 0, dead in every state"
    ~codes:[ "DA019" ] "dead_branch"
    (one
       (proc
          ~body:
            (HL.If
               ( HL.BinOp (HL.Lt, HL.Val (HL.Int 1), HL.Val (HL.Int 0)),
                 HL.Val (HL.Int 1),
                 HL.Val (HL.Int 2) ))
          "dead_branch"))

let contradictory_requires =
  case ~descr:"requires demands n < n; no caller can ever satisfy it"
    ~codes:[ "DA020" ] "contradictory_requires"
    (one
       (proc ~params:[ "n" ]
          ~requires:(A.Pure (T.lt (T.var "n") (T.var "n")))
          "contradictory_requires"))

let false_ensures =
  case ~descr:"ensures claims 0 = 1; the body can never verify against it"
    ~codes:[ "DA021" ] "false_ensures"
    (one (proc ~ensures:(A.Pure (T.eq (T.int 0) (T.int 1))) "false_ensures"))

let inv_not_inductive =
  (* invariant pins !l to 0 while the body increments it: one abstract
     iteration refutes the re-established value *)
  let guard = HL.BinOp (HL.Lt, HL.Load (sym "l"), HL.Val (HL.Int 10)) in
  let body =
    HL.Store
      (sym "l", HL.BinOp (HL.Add, HL.Load (sym "l"), HL.Val (HL.Int 1)))
  in
  let w = HL.While (guard, body) in
  case ~descr:"loop invariant l ↦ 0 is not preserved by l <- !l + 1"
    ~codes:[ "DA022" ] "inv_not_inductive"
    (one
       (proc ~params:[ "l" ]
          ~requires:(pt "l" (T.int 0))
          ~invariants:[ (w, pt "l" (T.int 0)) ]
          ~body:w "inv_not_inductive"))

let redundant_stabilize =
  case ~descr:"⌊·⌋ around a points-to, which is already stable"
    ~codes:[ "DA023" ] "redundant_stabilize"
    (one
       (proc ~params:[ "l" ]
          ~requires:(A.Stabilize (pt "l" (T.int 0)))
          "redundant_stabilize"))

let unused_param =
  case ~descr:"parameter x appears in no clause and no body expression"
    ~codes:[ "DA024" ] "unused_param"
    (one (proc ~params:[ "x" ] "unused_param"))

let no_variant =
  (* a perfectly fine loop — the only finding is the missing
     termination hint *)
  let guard = HL.BinOp (HL.Lt, HL.Load (sym "l"), HL.Val (HL.Int 10)) in
  let body =
    HL.Store
      (sym "l", HL.BinOp (HL.Add, HL.Load (sym "l"), HL.Val (HL.Int 1)))
  in
  let w = HL.While (guard, body) in
  case ~descr:"while loop with no variant/decreases hint" ~codes:[ "DA025" ]
    "no_variant"
    (one
       (proc ~params:[ "l" ]
          ~requires:(A.Exists ("v", pt "l" (T.var "v")))
          ~invariants:[ (w, A.Exists ("v", pt "l" (T.var "v"))) ]
          ~body:w "no_variant"))

(* ------------------------------------------------------------------ *)
(* Concurrency: DA026–DA028 *)

let nested_atomic =
  case ~descr:"atomic section nested inside another (invariant reentrancy)"
    ~codes:[ "DA026" ] "nested_atomic"
    (one
       ~invs:[ ("cell", A.Exists ("v", pt "x" (T.var "v"))) ]
       (proc ~params:[ "x" ]
          ~body:(HL.Atomic (HL.Atomic (HL.Load (sym "x"))))
          "nested_atomic"))

let racy_par_branch =
  case
    ~descr:
      "par branch touches the invariant-governed cell with no atomic \
       section in the branch"
    ~codes:[ "DA027" ] "racy_par_branch"
    (one
       ~invs:[ ("cell", A.Exists ("v", pt "x" (T.var "v"))) ]
       (proc ~params:[ "x" ]
          ~body:
            (HL.Par
               ( HL.Store
                   ( sym "x",
                     HL.BinOp
                       (HL.Add, HL.Load (sym "x"), HL.Val (HL.Int 1)) ),
                 HL.Atomic (HL.Load (sym "x")) ))
          "racy_par_branch"))

let unstable_inv =
  case
    ~descr:"invariant body reads the heap outside its own footprint"
    ~codes:[ "DA028" ] "unstable_inv"
    (one
       ~invs:[ ("bad", A.Pure (T.eq (deref "x") (T.int 0))) ]
       (proc ~params:[ "x" ]
          ~body:(HL.Atomic (HL.Load (sym "x")))
          "unstable_inv"))

let all : case list =
  [
    unknown_pred;
    pred_arity;
    unknown_proc;
    call_arity;
    unbound_var;
    result_in_requires;
    undeclared_ghost;
    while_no_inv;
    ghost_mark_missing;
    unbound_sym;
    unstable_spec;
    unstable_pred;
    uncovered_read;
    fragment_expr;
    fragment_assert;
    dangling_inv;
    unused_ghost_block;
    div_by_zero;
    dead_branch;
    contradictory_requires;
    false_ensures;
    inv_not_inductive;
    redundant_stabilize;
    unused_param;
    no_variant;
    nested_atomic;
    racy_par_branch;
    unstable_inv;
  ]
