(** The proof-producing baseline verifier.

    Walks a program in A-normal form, applying one kernel WP rule per
    construct and discharging every side entailment through
    {!Baselogic.Kernel.entail_auto}. The result is a genuine
    {!Baselogic.Kernel.theorem}

    [pre ⊢ WP e {x. post}],

    with every step certified — which is also why this verifier is
    slower and chattier (in kernel-rule count) than the SMT-only
    verifier in [lib/verifier]: it pays for explicit resource
    threading at every program point, where the automated verifier
    discharges one first-order VC per obligation. That cost difference
    is precisely what the paper's comparison (as reconstructed)
    measures.

    Loops must be annotated: supply an invariant for each [While] node
    (matched by physical equality). *)

open Stdx
module A = Baselogic.Assertion
module K = Baselogic.Kernel
module T = Smt.Term
module HL = Heaplang.Ast

exception Tactic_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Tactic_error s)) fmt

(** A loop annotation: the invariant, plus (optionally) the loop guard
    as a heap-dependent formula — e.g. [!i < n] — which becomes the
    body's extra precondition. Heap reads in the guard are resolved
    against the invariant's chunks when the body proof starts, so this
    is exactly the destabilized-logic idiom for carrying the guard. *)
type loop_annot = { inv : A.t; guard : T.t option }

type st = {
  penv : A.pred_env;
  gensym : Gensym.t;
  hyps : A.t list;
  invariants : (HL.expr * loop_annot) list;  (** While node ↦ annotation *)
  witnesses : (string * T.t) list;  (** hints for existential goals *)
}

let init ?(penv = Smap.empty) ?(invariants = []) ?(witnesses = []) hyps =
  { penv; gensym = Gensym.create ~prefix:"z" (); hyps; invariants; witnesses }

let entail st goal =
  try K.entail_auto ~penv:st.penv ~witnesses:st.witnesses st.hyps goal
  with K.Rule_error m -> fail "%s" m

(** Close a wand goal: from a proof of [K] under [hyps @ conjuncts p],
    build [seps hyps ⊢ p -∗ K]. *)
let prove_wand st (p : A.t) (k_thm : K.theorem) : K.theorem =
  (* k_thm : seps (hyps @ conjuncts p) ⊢ K *)
  let extra = A.conjuncts p in
  let g =
    K.entail_auto ~penv:st.penv
      [ A.seps st.hyps; p ]
      (A.seps (st.hyps @ extra))
  in
  K.wand_intro (K.trans g k_thm)

let rec continue st (goal : A.t) : K.theorem =
  match goal with
  | A.Wp (e, x, q) -> wp st e x q
  | A.And (p, q) -> K.and_intro (continue st p) (continue st q)
  | A.Or (A.Pure phi, rhs) -> (
      (* Prefer the pure side when it is entailed; otherwise prove the
         right side classically under ¬φ. *)
      match entail st (A.Pure phi) with
      | th -> K.trans th (K.or_intro_l ~penv:st.penv (A.Pure phi) rhs)
      | exception Tactic_error _ ->
          let th =
            continue
              { st with hyps = st.hyps @ [ A.Pure (T.not_ phi) ] }
              rhs
          in
          K.or_classical st.hyps phi rhs th)
  | g -> entail st g

(** Destruct existential hypotheses: open each [∃x.P] with a fresh
    name, run the proof, and wrap with existential elimination. Also
    strips [⌊·⌋] and [|==>]-free structure by flattening [Sep]s. *)
and with_open_hyps st (k : st -> K.theorem) : K.theorem =
  let rec split before = function
    | [] -> None
    | A.Exists (x, p) :: after -> Some (List.rev before, x, p, after)
    | h :: after -> split (h :: before) after
  in
  match split [] st.hyps with
  | None -> k st
  | Some (before, x, p, after) ->
      let y = Gensym.fresh ~hint:x st.gensym in
      let p' = A.subst1 x (T.var y) p in
      let opened_flat = before @ A.conjuncts p' @ after in
      let th = with_open_hyps { st with hyps = opened_flat } k in
      let opened = before @ [ p' ] @ after in
      let bridge =
        K.entail_auto ~penv:st.penv opened (A.seps opened_flat)
      in
      K.exists_elim_ctx ~before x y p ~after (K.trans bridge th)

(** Prove [seps st.hyps ⊢ WP e {x. q}]. *)
and wp st (e : HL.expr) (x : string) (q : A.t) : K.theorem =
  if List.exists (function A.Exists _ -> true | _ -> false) st.hyps then
    with_open_hyps st (fun st -> wp st e x q)
  else if List.exists (fun h -> not (A.stable h)) st.hyps then begin
    (* Stabilize the context: heap-dependent facts are resolved against
       the owned chunks (or lost) before any wand is introduced. *)
    let scrubbed = K.scrub st.hyps in
    let bridge = K.entail_auto ~penv:st.penv st.hyps (A.seps scrubbed) in
    K.trans bridge (wp { st with hyps = scrubbed } e x q)
  end
  else
  match e with
  | HL.Val v -> (
      match K.value_term v with
      | Some t ->
          let g = A.subst1 x t q in
          K.trans (continue st g) (K.wp_value ~penv:st.penv v x q)
      | None -> fail "wp: value %a has no term encoding" HL.pp_value v)
  | HL.Let (xp, e1, e2) ->
      let y = Gensym.fresh st.gensym in
      let e2' = Heaplang.Subst.subst xp (HL.Sym y) e2 in
      let inner = A.Wp (e2', x, q) in
      K.trans (wp st e1 y inner) (K.wp_let ~penv:st.penv xp e1 e2 y x q)
  | HL.Seq (e1, e2) ->
      let y = Gensym.fresh st.gensym in
      let inner = A.Wp (e2, x, q) in
      K.trans (wp st e1 y inner) (K.wp_seq ~penv:st.penv e1 e2 y x q)
  | HL.BinOp (op, HL.Val a, HL.Val b)
    when (match (a, b) with
         | (HL.Sym _, _ | _, HL.Sym _) -> true
         | _ -> false) -> (
      match (K.value_term a, K.value_term b) with
      | Some ta, Some tb -> (
          match K.binop_term op ta tb with
          | Some t ->
              let z = Gensym.fresh st.gensym in
              let eqn = A.Pure (T.eq (T.var z) t) in
              let k_goal = A.subst1 x (T.var z) q in
              let k_thm = continue { st with hyps = st.hyps @ [ eqn ] } k_goal in
              let g =
                K.entail_auto ~penv:st.penv
                  [ A.seps st.hyps; eqn ]
                  (A.seps (st.hyps @ [ eqn ]))
              in
              let wand = K.wand_intro (K.trans g k_thm) in
              let forall = K.forall_intro z wand in
              K.trans forall (K.wp_binop_n ~penv:st.penv op ta tb z x q)
          | None -> fail "wp: binop %a has no symbolic meaning" HL.pp_bin_op op)
      | _ -> fail "wp: binop on non-first-order values")
  | HL.Load (HL.Val (HL.Sym l)) ->
      let focus_thm, frac, v, rest =
        try K.focus_points_to ~penv:st.penv st.hyps (T.var l)
        with K.Rule_error m -> fail "%s" m
      in
      let pt = A.points_to ~frac (T.var l) v in
      let z = Gensym.fresh st.gensym in
      let eqn = A.Pure (T.eq (T.var z) v) in
      let st_in = { st with hyps = rest @ [ pt ] } in
      let k_thm =
        continue { st_in with hyps = st_in.hyps @ [ eqn ] }
          (A.subst1 x (T.var z) q)
      in
      let wand_inner = prove_wand st_in eqn k_thm in
      (* wand_inner : seps (rest @ [pt]) ⊢ ⌜z=v⌝ -∗ Q[z/x] *)
      let forall = K.forall_intro z wand_inner in
      let outer = prove_wand_from st rest pt forall in
      (* outer : seps rest ⊢ pt -∗ ∀z.… *)
      let pair = K.trans focus_thm (K.sep_mono (K.refl ~penv:st.penv pt) outer) in
      K.trans pair (K.wp_load_n ~penv:st.penv frac l v z x q)
  | HL.Store (HL.Val (HL.Sym l), HL.Val w) ->
      let focus_thm, frac, v, rest =
        try K.focus_points_to ~penv:st.penv st.hyps (T.var l)
        with K.Rule_error m -> fail "%s" m
      in
      if not (Q.equal frac Q.one) then
        fail "wp: store to %s needs the full fraction" l;
      let wt =
        match K.value_term w with
        | Some t -> t
        | None -> fail "wp: stored value has no term encoding"
      in
      let pt = A.points_to (T.var l) v in
      let pt' = A.points_to (T.var l) wt in
      let k_thm =
        continue { st with hyps = rest @ [ pt' ] } (A.subst1 x (T.int 0) q)
      in
      let wand = prove_wand_from st rest pt' k_thm in
      let pair =
        K.trans focus_thm (K.sep_mono (K.refl ~penv:st.penv pt) wand)
      in
      K.trans pair (K.wp_store ~penv:st.penv l v w wt x q)
  | HL.Alloc (HL.Val v) -> (
      match K.value_term v with
      | Some vt ->
          let lname = Gensym.fresh ~hint:"l" st.gensym in
          let pt = A.points_to (T.var lname) vt in
          let k_thm =
            continue { st with hyps = st.hyps @ [ pt ] }
              (A.subst1 x (T.var lname) q)
          in
          let wand = prove_wand st pt k_thm in
          let forall = K.forall_intro lname wand in
          K.trans forall (K.wp_alloc ~penv:st.penv v vt lname x q)
      | None -> fail "wp: allocated value has no term encoding")
  | HL.Free (HL.Val (HL.Sym l)) ->
      let focus_thm, frac, v, rest =
        try K.focus_points_to ~penv:st.penv st.hyps (T.var l)
        with K.Rule_error m -> fail "%s" m
      in
      if not (Q.equal frac Q.one) then
        fail "wp: free of %s needs the full fraction" l;
      let pt = A.points_to (T.var l) v in
      let k_thm = continue { st with hyps = rest } (A.subst1 x (T.int 0) q) in
      let pair =
        K.trans focus_thm (K.sep_mono (K.refl ~penv:st.penv pt) k_thm)
      in
      K.trans pair (K.wp_free ~penv:st.penv l v x q)
  | HL.Faa (HL.Val (HL.Sym l), HL.Val d) ->
      let dt =
        match K.value_term d with
        | Some t -> t
        | None -> fail "wp: FAA delta has no term encoding"
      in
      let focus_thm, frac, v, rest =
        try K.focus_points_to ~penv:st.penv st.hyps (T.var l)
        with K.Rule_error m -> fail "%s" m
      in
      if not (Q.equal frac Q.one) then
        fail "wp: FAA on %s needs the full fraction" l;
      let pt = A.points_to (T.var l) v in
      let pt' = A.points_to (T.var l) (T.add v dt) in
      let z = Gensym.fresh st.gensym in
      let eqn = A.Pure (T.eq (T.var z) v) in
      let st_in = { st with hyps = rest @ [ pt' ] } in
      let k_thm =
        continue { st_in with hyps = st_in.hyps @ [ eqn ] }
          (A.subst1 x (T.var z) q)
      in
      let wand_inner = prove_wand st_in eqn k_thm in
      let forall = K.forall_intro z wand_inner in
      let wand = prove_wand_from st rest pt' forall in
      let pair =
        K.trans focus_thm (K.sep_mono (K.refl ~penv:st.penv pt) wand)
      in
      K.trans pair (K.wp_faa_n ~penv:st.penv l v dt z x q)
  | HL.If (HL.Val (HL.Sym b), e1, e2) ->
      let tb = T.var b in
      let zero = T.eq tb (T.int 0) in
      let th1 =
        let cond = A.Pure (T.not_ zero) in
        prove_wand st cond
          (wp { st with hyps = st.hyps @ [ cond ] } e1 x q)
      in
      let th2 =
        let cond = A.Pure zero in
        prove_wand st cond
          (wp { st with hyps = st.hyps @ [ cond ] } e2 x q)
      in
      K.trans (K.and_intro th1 th2) (K.wp_if_wand ~penv:st.penv tb e1 e2 x q)
  | HL.Assert (HL.Val (HL.Sym b)) ->
      let tb = T.var b in
      let th_cond = entail st (A.Pure (T.not_ (T.eq tb (T.int 0)))) in
      let th_post = continue st (A.subst1 x (T.int 0) q) in
      K.trans (K.and_intro th_cond th_post)
        (K.wp_assert ~penv:st.penv tb x q)
  | HL.While (cond, body) as loop ->
      let { inv; guard } =
        match
          List.find_opt (fun (n, _) -> n == loop) st.invariants
        with
        | Some (_, annot) -> annot
        | None -> fail "wp: while loop without an invariant annotation"
      in
      let bb = Gensym.fresh ~hint:"b" st.gensym in
      let guard =
        match guard with
        | Some g -> g
        | None -> T.not_ (T.eq (T.var bb) (T.int 0))
      in
      let body_pre = A.Sep (A.Pure guard, inv) in
      let q0 = A.subst1 x (T.int 0) q in
      let expected =
        A.And
          ( A.Or (A.Pure (T.eq (T.var bb) (T.int 0)), body_pre),
            A.Or (A.Pure (T.not_ (T.eq (T.var bb) (T.int 0))), q0) )
      in
      let cond_thm =
        wp { st with hyps = A.conjuncts inv } cond bb expected
      in
      (* cond_thm : seps (conjuncts inv) ⊢ …; wp_while wants lhs inv. *)
      let cond_thm =
        K.trans (K.entail_auto ~penv:st.penv [ inv ] (A.seps (A.conjuncts inv)))
          cond_thm
      in
      let y = Gensym.fresh st.gensym in
      let body_thm =
        wp { st with hyps = A.conjuncts body_pre } body y inv
      in
      let body_thm =
        K.trans
          (K.entail_auto ~penv:st.penv [ body_pre ]
             (A.seps (A.conjuncts body_pre)))
          body_thm
      in
      let while_thm =
        K.wp_while ~penv:st.penv ~inv ~body_pre ~cond ~body ~cond_thm
          ~body_thm x q
      in
      K.trans (entail st inv) while_thm
  | _ -> (
      (* Anything else: try a deterministic pure head step. *)
      match K.pure_head_step e with
      | Some e' -> K.trans (wp st e' x q) (K.wp_pure_step ~penv:st.penv e e' x q)
      | None -> fail "wp: unsupported expression %a (not in ANF?)" HL.pp_expr e)

(** [prove_wand_from st rest p k_thm]: like {!prove_wand} but with an
    explicit remaining-hypothesis list. *)
and prove_wand_from st (rest : A.t list) (p : A.t) (k_thm : K.theorem) :
    K.theorem =
  let extra = A.conjuncts p in
  let g =
    K.entail_auto ~penv:st.penv
      [ A.seps rest; p ]
      (A.seps (rest @ extra))
  in
  K.wand_intro (K.trans g k_thm)

(* ------------------------------------------------------------------ *)
(* A-normal form *)

(** Convert a program to A-normal form: every operand of a primitive
    becomes a variable or literal, with [let]-bindings introduced for
    intermediate results. The tactics (and the automated verifier)
    both work on ANF; use {!loops} on the *normalized* program to key
    loop invariants. *)
let anf (e : HL.expr) : HL.expr =
  let ctr = ref 0 in
  let fresh () =
    incr ctr;
    Printf.sprintf "a%d" !ctr
  in
  let atomize e k =
    match e with
    | HL.Val _ | HL.Var _ -> k e
    | e ->
        let x = fresh () in
        HL.Let (x, e, k (HL.Var x))
  in
  let rec go (e : HL.expr) : HL.expr =
    match e with
    | HL.Val _ | HL.Var _ | HL.GhostMark _ -> e
    | HL.Rec (f, x, b) -> HL.Rec (f, x, go b)
    | HL.App (f, a) ->
        atomize (go f) (fun vf -> atomize (go a) (fun va -> HL.App (vf, va)))
    | HL.UnOp (op, a) -> atomize (go a) (fun v -> HL.UnOp (op, v))
    | HL.BinOp (op, a, b) ->
        atomize (go a) (fun va ->
            atomize (go b) (fun vb -> HL.BinOp (op, va, vb)))
    | HL.If (c, a, b) -> atomize (go c) (fun vc -> HL.If (vc, go a, go b))
    | HL.Let (x, a, b) -> HL.Let (x, go a, go b)
    | HL.Seq (a, b) -> HL.Seq (go a, go b)
    | HL.While (c, b) -> HL.While (go c, go b)
    | HL.PairE (a, b) ->
        atomize (go a) (fun va -> atomize (go b) (fun vb -> HL.PairE (va, vb)))
    | HL.Fst a -> atomize (go a) (fun v -> HL.Fst v)
    | HL.Snd a -> atomize (go a) (fun v -> HL.Snd v)
    | HL.InjLE a -> atomize (go a) (fun v -> HL.InjLE v)
    | HL.InjRE a -> atomize (go a) (fun v -> HL.InjRE v)
    | HL.Case (a, (x, l), (y, r)) ->
        atomize (go a) (fun v -> HL.Case (v, (x, go l), (y, go r)))
    | HL.Alloc a -> atomize (go a) (fun v -> HL.Alloc v)
    | HL.Load a -> atomize (go a) (fun v -> HL.Load v)
    | HL.Store (a, b) ->
        atomize (go a) (fun va -> atomize (go b) (fun vb -> HL.Store (va, vb)))
    | HL.Free a -> atomize (go a) (fun v -> HL.Free v)
    | HL.Cas (a, b, c) ->
        atomize (go a) (fun va ->
            atomize (go b) (fun vb ->
                atomize (go c) (fun vc -> HL.Cas (va, vb, vc))))
    | HL.Faa (a, b) ->
        atomize (go a) (fun va -> atomize (go b) (fun vb -> HL.Faa (va, vb)))
    | HL.Assert a -> atomize (go a) (fun v -> HL.Assert v)
    | HL.Par (a, b) -> HL.Par (go a, go b)
    | HL.Atomic a -> HL.Atomic (go a)
  in
  go e

(** The [While] nodes of a program in pre-order — for keying loop
    invariants (by physical equality) after {!anf}. *)
let loops (e : HL.expr) : HL.expr list =
  let acc = ref [] in
  let rec go (e : HL.expr) =
    match e with
    | HL.While (c, b) ->
        acc := e :: !acc;
        go c;
        go b
    | HL.Val _ | HL.Var _ | HL.GhostMark _ -> ()
    | HL.Rec (_, _, b) -> go b
    | HL.App (a, b)
    | HL.BinOp (_, a, b)
    | HL.Let (_, a, b)
    | HL.Seq (a, b)
    | HL.PairE (a, b)
    | HL.Store (a, b)
    | HL.Faa (a, b)
    | HL.Par (a, b) ->
        go a;
        go b
    | HL.UnOp (_, a)
    | HL.Fst a | HL.Snd a | HL.InjLE a | HL.InjRE a
    | HL.Alloc a | HL.Load a | HL.Free a | HL.Assert a
    | HL.Atomic a ->
        go a
    | HL.If (a, b, c) | HL.Cas (a, b, c) ->
        go a;
        go b;
        go c
    | HL.Case (a, (_, b), (_, c)) ->
        go a;
        go b;
        go c
  in
  go e;
  List.rev !acc

(** Top-level entry: prove the Hoare triple
    [{pre} e {x. post}] as the kernel theorem [pre ⊢ WP e {x. post}]. *)
let prove_triple ?(penv = Smap.empty) ?(invariants = []) ?(witnesses = [])
    ~(pre : A.t) (e : HL.expr) (x : string) (post : A.t) : K.theorem =
  let st = init ~penv ~invariants ~witnesses (A.conjuncts pre) in
  let th = wp st e x post in
  (* th : seps (conjuncts pre) ⊢ WP e {x. post}; re-attach pre. *)
  K.trans (K.entail_auto ~penv [ pre ] (A.seps (A.conjuncts pre))) th
