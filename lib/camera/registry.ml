(** A registry of cameras and the resulting global ghost camera.

    Iris's global resource is a finite map from ghost names to elements
    of *any registered camera*. OCaml has no open-world sums, so we use
    an extensible variant: registering a camera mints a fresh
    constructor of [univ] (generative functor application guarantees
    freshness) and records, under a dense integer id, the camera
    operations lifted to [univ].

    The resulting [Ghost_map] module is a unital camera whose elements
    map ghost names to packed values; composing packed values from
    different registrations is invalid (it cannot happen through the
    typed [inject]/[project] API, but the raw camera must still be
    total). *)

open Stdx

type univ = ..

type packed = Pack of { cell : int; v : univ } | PackBot

module type CELL_OPS = sig
  val name : string
  val pp : univ Fmt.t
  val equal : univ -> univ -> bool
  val valid : univ -> bool
  val op : univ -> univ -> univ
  val pcore : univ -> univ option
  val included : univ -> univ -> bool
  val fpu : univ -> univ -> bool
end

(** A camera bundled with the update oracle it certifies. *)
module type REGISTRABLE = sig
  include Camera_intf.S

  val name : string

  val fpu : t -> t -> bool
  (** Sound (possibly incomplete) frame-preserving-update oracle. *)
end

(** Typed view of one registered camera. *)
module type INJECTION = sig
  type elt

  val cell : int
  val inject : elt -> packed
  val project : packed -> elt option
end

(* Thread-safety invariant: the cell table is written only under
   [registry_lock], by [Register] functor applications — which in
   practice all run at module-initialization time, before any worker
   domain exists. Lookups ([cell_ops]) are unsynchronized reads; they
   are safe because registration never shrinks the table and worker
   domains only ever read cells that were published before they were
   spawned. Do not register cameras from inside engine jobs. *)
let registry_lock = Mutex.create ()
let cells : (module CELL_OPS) option array ref = ref (Array.make 8 None)
let n_cells = ref 0

let cell_ops i : (module CELL_OPS) =
  match !cells.(i) with
  | Some ops -> ops
  | None -> invalid_arg "Registry.cell_ops: unregistered cell"

(** Register a camera. Generative: each application mints a distinct
    [univ] constructor, so the same underlying module can be registered
    twice and the two registrations will not mix. *)
module Register (C : REGISTRABLE) () = struct
  type elt = C.t
  type univ += U of C.t

  let prj = function U x -> x | _ -> invalid_arg ("Registry cell " ^ C.name)

  let cell =
    Mutex.lock registry_lock;
    let id = !n_cells in
    incr n_cells;
    if id >= Array.length !cells then begin
      let bigger = Array.make (2 * Array.length !cells) None in
      Array.blit !cells 0 bigger 0 (Array.length !cells);
      cells := bigger
    end;
    let module Ops = struct
      let name = C.name
      let pp ppf u = C.pp ppf (prj u)
      let equal a b = C.equal (prj a) (prj b)
      let valid a = C.valid (prj a)
      let op a b = U (C.op (prj a) (prj b))
      let pcore a = Option.map (fun c -> U c) (C.pcore (prj a))
      let included a b = C.included (prj a) (prj b)
      let fpu a b = C.fpu (prj a) (prj b)
    end in
    !cells.(id) <- Some (module Ops : CELL_OPS);
    Mutex.unlock registry_lock;
    id

  let inject x = Pack { cell; v = U x }

  let project = function
    | Pack { cell = c; v = U x } when c = cell -> Some x
    | _ -> None
end

module Packed = struct
  type t = packed

  let pp ppf = function
    | PackBot -> Fmt.string ppf "pack:⊥"
    | Pack { cell; v } ->
        let module Ops = (val cell_ops cell) in
        Fmt.pf ppf "%s:%a" Ops.name Ops.pp v

  let equal a b =
    match (a, b) with
    | PackBot, PackBot -> true
    | Pack a, Pack b when a.cell = b.cell ->
        let module Ops = (val cell_ops a.cell) in
        Ops.equal a.v b.v
    | _ -> false

  let valid = function
    | PackBot -> false
    | Pack { cell; v } ->
        let module Ops = (val cell_ops cell) in
        Ops.valid v

  let op a b =
    match (a, b) with
    | Pack x, Pack y when x.cell = y.cell ->
        let module Ops = (val cell_ops x.cell) in
        Pack { cell = x.cell; v = Ops.op x.v y.v }
    | _ -> PackBot

  let pcore = function
    | PackBot -> Some PackBot
    | Pack { cell; v } ->
        let module Ops = (val cell_ops cell) in
        Option.map (fun c -> Pack { cell; v = c }) (Ops.pcore v)

  let included a b =
    match (a, b) with
    | _, PackBot -> true
    | PackBot, _ -> false
    | Pack x, Pack y ->
        x.cell = y.cell
        &&
        let module Ops = (val cell_ops x.cell) in
        Ops.included x.v y.v || Ops.equal x.v y.v

  let fpu a b =
    match (a, b) with
    | Pack x, Pack y when x.cell = y.cell ->
        let module Ops = (val cell_ops x.cell) in
        Ops.fpu x.v y.v
    | _ -> false
end

(** The global ghost camera: ghost names to packed camera elements. *)
module Ghost_map = struct
  include Gmap.Make (Packed)

  (** Pointwise frame-preserving update: every key present on either
      side must be updatable (or unchanged); keys may not appear or
      disappear (allocation is a separate, existential rule in the
      kernel). *)
  let fpu (a : t) (b : t) =
    let keys =
      Smap.merge (fun _ x y -> if x = None && y = None then None else Some ())
        a b
    in
    Smap.for_all
      (fun k () ->
        match (Smap.find_opt k a, Smap.find_opt k b) with
        | Some va, Some vb -> Packed.equal va vb || Packed.fpu va vb
        | _ -> false)
      keys
end
