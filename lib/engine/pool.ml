(** A fixed-size pool of worker domains draining a shared queue.

    Built on OCaml 5 stdlib primitives only ([Domain], [Atomic]) — no
    domainslib in the sealed package set. The queue is the input array
    itself with an atomic index dispenser, which gives dynamic load
    balancing: a domain that drew a cheap job comes back for the next
    one immediately, so one slow job cannot strand work behind it.

    Result slots are disjoint array cells, written by exactly one
    worker each; [Domain.join] publishes them to the caller
    (happens-before), so no lock is needed on the result side. *)

type stats = {
  domains : int;
  jobs_per_domain : int array;
  ms_per_domain : float array;  (** wall-clock per worker, spawn→drain *)
  steals : int;
      (** jobs executed beyond a worker's even static share — how much
          work the dynamic queue moved between domains *)
}

let pp_stats ppf s =
  Fmt.pf ppf "domains=%d jobs=[%a] wall=[%a]ms steals=%d" s.domains
    Fmt.(array ~sep:(any ",") int)
    s.jobs_per_domain
    Fmt.(array ~sep:(any ",") (fmt "%.1f"))
    s.ms_per_domain s.steals

(** [run ~domains ~prologue ~epilogue f xs] applies [f] to every
    element of [xs] on a pool of [domains] workers (the calling domain
    is worker 0; [domains - 1] are spawned). [prologue]/[epilogue] run
    once per worker domain around its drain — the engine uses them to
    reset and snapshot that domain's solver statistics. Returns the
    results in input order, the per-worker epilogue values, and queue
    statistics.

    [f] must not raise: an escaping exception kills its worker and is
    re-raised at the join, losing that worker's remaining slots. *)
let run ~domains ?(prologue = fun () -> ()) ~epilogue
    (f : 'a -> 'b) (xs : 'a array) : 'b array * 'c array * stats =
  let n = Array.length xs in
  let domains = max 1 (min domains (max 1 n)) in
  let next = Atomic.make 0 in
  let results : 'b option array = Array.make n None in
  let jobs_per_domain = Array.make domains 0 in
  let ms_per_domain = Array.make domains 0.0 in
  let worker d () =
    let t0 = Unix.gettimeofday () in
    prologue ();
    let rec drain count =
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then count
      else begin
        results.(i) <- Some (f xs.(i));
        drain (count + 1)
      end
    in
    let count = drain 0 in
    let out = epilogue () in
    jobs_per_domain.(d) <- count;
    ms_per_domain.(d) <- (Unix.gettimeofday () -. t0) *. 1000.0;
    out
  in
  let spawned =
    Array.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  let out0 = worker 0 () in
  let outs =
    Array.append [| out0 |] (Array.map Domain.join spawned)
  in
  let share = (n + domains - 1) / domains in
  let steals =
    Array.fold_left (fun acc j -> acc + max 0 (j - share)) 0 jobs_per_domain
  in
  ( Array.map
      (function Some r -> r | None -> assert false (* every slot drained *))
      results,
    outs,
    { domains; jobs_per_domain; ms_per_domain; steals } )
