(** The parallel verification engine.

    Decomposes program verification into per-procedure {!Job}s, drains
    them over a {!Pool} of worker domains, and routes every SMT query
    through a shared content-addressed {!Vc_cache}. Statistics that
    used to live in process-global mutable records are per-job
    ({!Verifier.Vstats}, instance-passed through the symbolic state)
    or per-domain ({!Smt.Stats}, domain-local); the engine merges both
    into one report, so a parallel run accounts exactly like a
    sequential one.

    [domains = 1] runs the same job pipeline on the calling domain
    only — the CLI always goes through the engine, which is what makes
    "[-j 4] verdicts ≡ [-j 1] verdicts" checkable rather than
    aspirational. *)

module Pool = Pool
module Job = Job
module Vc_cache = Vc_cache
module V = Verifier.Exec

type config = {
  domains : int;  (** worker domains (including the calling one) *)
  cache : bool;  (** consult/fill the content-addressed VC cache *)
  heap_dep : bool;  (** heap-dependent assertions (ablation A1) *)
  absint : bool;
      (** abstract-interpretation pass: DA018–DA025 in the lint stage
          and the [Valid]-only VC pre-discharge ahead of the solver
          ([--no-absint] disables both) *)
  lint : bool;
      (** run the static analyzer first; programs with error-severity
          diagnostics are gated (their procedures report [Failed]
          without touching the solver) *)
  seed : int;
      (** interleaving-scheduler seed, threaded to every job: permutes
          the order [par] branches are explored in (0 = left-first).
          Verdicts are schedule-independent by construction; the
          daemon keys its verdict cache on the seed so the property is
          re-checked, not assumed, when the seed changes *)
  timeout_ms : float option;  (** per-job wall-clock deadline *)
  retries : int;
      (** budget-escalated retries per job on [Timeout]/[Resource_out] *)
  shared_cache : Vc_cache.t option;
      (** a caller-owned cache (the [daenerys serve] daemon's two-tier
          instance, installed once for the process); when set, the
          engine neither creates nor installs/uninstalls a cache, so
          concurrent runs on different worker domains share it safely *)
}

let default_config =
  {
    domains = 1;
    cache = true;
    heap_dep = true;
    absint = true;
    lint = false;
    seed = 0;
    timeout_ms = None;
    retries = 0;
    shared_cache = None;
  }

type analysis_stats = {
  a_programs : int;
  a_diags : int;  (** all findings, any severity *)
  a_errors : int;  (** error-severity findings *)
  a_wall_ms : float;  (** wall clock of the analysis phase *)
}

type stats = {
  analysis : analysis_stats option;  (** when [config.lint] *)
  jobs : int;
  wall_ms : float;  (** end-to-end wall clock for the whole run *)
  pool : Pool.stats;
  solver_ms_per_domain : float array;  (** time inside [check_sat] *)
  cache_hits : int;  (** answered from the in-memory tier *)
  cache_disk_hits : int;  (** answered from the persistent on-disk tier *)
  cache_misses : int;
  cache_entries : int;
  cache_corrupt : int;  (** entries that failed validation on read *)
  timeouts : int;  (** jobs whose final outcome was [Timeout] *)
  resource_outs : int;  (** jobs whose final outcome was [Resource_out] *)
  crashes : int;  (** jobs whose final outcome was [Crashed] *)
  retries : int;  (** extra attempts spent across all jobs *)
  vstats : Verifier.Vstats.t;  (** merged over all jobs *)
  smt : Smt.Stats.t;  (** merged over all worker domains *)
}

type group_result = {
  group : string;
  outcomes : (string * V.outcome) list;  (** per procedure, in order *)
  ms : float;  (** summed job time (≥ wall time under parallelism) *)
}

type report = {
  groups : group_result list;
  lint : (string * Diag.t list) list;
      (** per-program analyzer findings (empty unless [config.lint]) *)
  stats : stats;
}

let group_ok (g : group_result) =
  List.for_all (fun (_, o) -> o = V.Verified) g.outcomes

(** Did the verifier abstain somewhere in this group (timeout,
    resource exhaustion, crash) without finding an actual failure?
    Distinguishes "the program is wrong" from "the verifier gave up" —
    the CLI maps the two onto different exit codes. *)
let group_gave_up (g : group_result) =
  List.exists (fun (_, o) -> not (V.decided o)) g.outcomes
  && not (List.exists (fun (_, o) -> match o with V.Failed _ -> true | _ -> false) g.outcomes)

(** Fold per-job results back into per-program groups, preserving the
    input program order (jobs of one program are contiguous). *)
let regroup (results : Job.result array) : group_result list =
  Array.fold_left
    (fun acc (r : Job.result) ->
      let outcome = (r.job.Job.proc.V.pname, r.outcome) in
      match acc with
      | g :: rest when String.equal g.group r.job.Job.group ->
          { g with outcomes = outcome :: g.outcomes; ms = g.ms +. r.ms }
          :: rest
      | _ -> { group = r.job.Job.group; outcomes = [ outcome ]; ms = r.ms } :: acc)
    [] results
  |> List.rev_map (fun g -> { g with outcomes = List.rev g.outcomes })

(** The static-analysis phase: one job per program, drained over the
    same domain pool the verification jobs will use. Pure and
    solver-free, so no stats prologue/epilogue is needed. [srcmaps]
    associates program names with the source maps elaboration produced
    for them; findings on those programs are re-anchored at their
    source spans. *)
let run_analysis ?(srcmaps : (string * Diag.srcmap) list = [])
    ?(absint = true) ~domains (progs : (string * V.program) list) :
    (string * Diag.t list) list * analysis_stats =
  let t0 = Unix.gettimeofday () in
  let items = Array.of_list progs in
  let diags, _, _ =
    Pool.run ~domains
      ~epilogue:(fun () -> ())
      (fun (name, prog) ->
        (name, Analysis.analyze_program ~name ~absint prog))
      items
  in
  let results =
    Array.to_list diags
    |> List.map (fun (name, ds) ->
           match List.assoc_opt name srcmaps with
           | Some m -> (name, Diag.relocate_all m ds)
           | None -> (name, ds))
  in
  let all = List.concat_map snd results in
  ( results,
    {
      a_programs = List.length progs;
      a_diags = List.length all;
      a_errors = List.length (Diag.errors all);
      a_wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
    } )

(** Verify a list of named programs. Every procedure of every program
    becomes one job; all jobs share one queue, so parallelism is
    across programs as well as within them. With [config.lint], the
    analysis phase runs on the pool first and gates error-ridden
    programs away from the solver. *)
let verify_programs ?(config = default_config)
    ?(srcmaps : (string * Diag.srcmap) list = [])
    (progs : (string * V.program) list) : report =
  let lint_results, analysis_stats =
    if config.lint then
      let r, s =
        run_analysis ~srcmaps ~absint:config.absint ~domains:config.domains
          progs
      in
      (r, Some s)
    else ([], None)
  in
  (* Gate: a program with error-severity findings never reaches the
     solver — each of its procedures reports the first error. *)
  let gated name =
    match List.assoc_opt name lint_results with
    | Some ds when Diag.has_errors ds ->
        Some (List.find Diag.is_error ds)
    | _ -> None
  in
  let live, gated_groups =
    List.partition_map
      (fun (name, prog) ->
        match gated name with
        | None -> Either.Left (name, prog)
        | Some d ->
            Either.Right
              {
                group = name;
                outcomes =
                  List.map
                    (fun (p : V.proc) ->
                      (p.V.pname, V.Failed (Diag.to_string d)))
                    prog.V.procs;
                ms = 0.0;
              })
      progs
  in
  let jobs =
    List.concat_map
      (fun (group, prog) ->
        let srcmap =
          Option.value ~default:[] (List.assoc_opt group srcmaps)
        in
        Job.of_program ~heap_dep:config.heap_dep ~absint:config.absint
          ~seed:config.seed ~srcmap ~group prog)
      live
    |> Array.of_list
  in
  (* A shared cache (daemon mode) is owned and installed by the
     caller, once per process; an owned cache lives for this run. *)
  let cache, owned =
    match config.shared_cache with
    | Some c -> (Some c, false)
    | None when config.cache -> (Some (Vc_cache.create ()), true)
    | None -> (None, false)
  in
  if owned then Option.iter Vc_cache.install cache;
  let t0 = Unix.gettimeofday () in
  let results, per_domain, pool =
    Fun.protect
      ~finally:(fun () -> if owned then Vc_cache.uninstall ())
      (fun () ->
        Pool.run ~domains:config.domains
          ~prologue:(fun () ->
            Smt.Stats.reset ();
            Vc_cache.Local.reset ())
          ~epilogue:(fun () ->
            (Smt.Stats.snapshot (), Vc_cache.Local.snapshot ()))
          (Job.run ?timeout_ms:config.timeout_ms ~retries:config.retries)
          jobs)
  in
  let smt_per_domain = Array.map fst per_domain in
  let cache_local =
    Array.fold_left
      (fun acc (_, l) -> Vc_cache.Local.sum acc l)
      (Vc_cache.Local.create ())
      per_domain
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let vstats =
    Array.fold_left
      (fun acc (r : Job.result) -> Verifier.Vstats.sum acc r.vstats)
      (Verifier.Vstats.create ()) results
  in
  let smt =
    Array.fold_left Smt.Stats.sum (Smt.Stats.create ()) smt_per_domain
  in
  let count pred =
    Array.fold_left
      (fun n (r : Job.result) -> if pred r.Job.outcome then n + 1 else n)
      0 results
  in
  let stats =
    {
      analysis = analysis_stats;
      jobs = Array.length jobs;
      wall_ms;
      pool;
      solver_ms_per_domain =
        Array.map (fun (s : Smt.Stats.t) -> s.Smt.Stats.solve_ms) smt_per_domain;
      (* Per-run counters come from the merged domain-local records,
         not the cache instance: a shared (daemon) cache accumulates
         across requests, but each request must report only its own. *)
      cache_hits = cache_local.Vc_cache.Local.hits;
      cache_disk_hits = cache_local.Vc_cache.Local.disk_hits;
      cache_misses = cache_local.Vc_cache.Local.misses;
      cache_entries = (match cache with Some c -> Vc_cache.size c | None -> 0);
      cache_corrupt = cache_local.Vc_cache.Local.corrupt;
      timeouts = count (function V.Timeout _ -> true | _ -> false);
      resource_outs = count (function V.Resource_out _ -> true | _ -> false);
      crashes = count (function V.Crashed _ -> true | _ -> false);
      retries =
        Array.fold_left
          (fun n (r : Job.result) -> n + r.Job.attempts - 1)
          0 results;
      vstats;
      smt;
    }
  in
  (* Stitch gated groups back in, preserving the input program order. *)
  let verified_groups = regroup results in
  let groups =
    List.filter_map
      (fun (name, _) ->
        match
          List.find_opt (fun g -> String.equal g.group name) gated_groups
        with
        | Some g -> Some g
        | None ->
            List.find_opt
              (fun g -> String.equal g.group name)
              verified_groups)
      progs
  in
  { groups; lint = lint_results; stats }

(** Convenience wrapper for a single program. *)
let verify_program ?config ~name (prog : V.program) : report =
  verify_programs ?config [ (name, prog) ]

(** A report for a group whose verdicts were answered by the verdict
    tier of a shared cache ({!Vc_cache.lookup_verdicts}): no jobs ran,
    no symbolic execution, no solver work — all solver and verifier
    counters are zero by construction, and the cache counters record
    which tier answered. The daemon synthesizes warm responses with
    this. *)
let cached_report ~group ~(outcomes : (string * V.outcome) list)
    ~(tier : [ `Memory | `Disk ]) ~wall_ms : report =
  let mem, disk = match tier with `Memory -> (1, 0) | `Disk -> (0, 1) in
  {
    groups = [ { group; outcomes; ms = wall_ms } ];
    lint = [];
    stats =
      {
        analysis = None;
        jobs = 0;
        wall_ms;
        pool =
          {
            Pool.domains = 0;
            jobs_per_domain = [||];
            ms_per_domain = [||];
            steals = 0;
          };
        solver_ms_per_domain = [||];
        cache_hits = mem;
        cache_disk_hits = disk;
        cache_misses = 0;
        cache_entries = 0;
        cache_corrupt = 0;
        timeouts = 0;
        resource_outs = 0;
        crashes = 0;
        retries = 0;
        vstats = Verifier.Vstats.create ();
        smt = Smt.Stats.create ();
      };
  }

let pp_stats ppf (s : stats) =
  (match s.analysis with
  | Some a ->
      Fmt.pf ppf
        "analysis: %d program(s) in %.1fms — %d finding(s), %d error(s)@ "
        a.a_programs a.a_wall_ms a.a_diags a.a_errors
  | None -> ());
  let probes = s.cache_hits + s.cache_disk_hits + s.cache_misses in
  let rate =
    if probes = 0 then 0.0
    else
      100.0
      *. float_of_int (s.cache_hits + s.cache_disk_hits)
      /. float_of_int probes
  in
  Fmt.pf ppf
    "@[<v>engine: %d jobs on %d domain(s) in %.1fms (steals=%d)@ \
     per-domain jobs=[%a] wall=[%a]ms solver=[%a]ms@ \
     vc-cache: %d mem hits / %d disk hits / %d misses (%.1f%% hit rate, \
     %d entries, %d corrupt)@ \
     resilience: timeouts=%d resource-outs=%d crashes=%d retries=%d@ \
     %a@ %a@]"
    s.jobs s.pool.Pool.domains s.wall_ms s.pool.Pool.steals
    Fmt.(array ~sep:(any ",") int)
    s.pool.Pool.jobs_per_domain
    Fmt.(array ~sep:(any ",") (fmt "%.1f"))
    s.pool.Pool.ms_per_domain
    Fmt.(array ~sep:(any ",") (fmt "%.1f"))
    s.solver_ms_per_domain s.cache_hits s.cache_disk_hits s.cache_misses rate
    s.cache_entries s.cache_corrupt s.timeouts s.resource_outs s.crashes
    s.retries Verifier.Vstats.pp s.vstats Smt.Stats.pp s.smt
