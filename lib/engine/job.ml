(** Verification jobs: the unit of work the engine schedules.

    Suite- and file-level verification decomposes into one job per
    procedure — procedures share no mutable state (each gets a fresh
    symbolic state, gensym, and {!Verifier.Vstats} instance), which is
    what makes per-procedure verification embarrassingly parallel. *)

module V = Verifier.Exec

type t = {
  group : string;  (** owning program (suite entry / file) *)
  proc : V.proc;
  prog : V.program;  (** the whole program, for callee specs *)
  heap_dep : bool;
  srcmap : Diag.srcmap;
      (** source spans for the program's spec clauses; [[]] for
          hand-built programs *)
}

type result = {
  job : t;
  outcome : V.outcome;
  vstats : Verifier.Vstats.t;
  ms : float;  (** wall-clock verification time for this job *)
}

(** One job per procedure of [prog], in declaration order. *)
let of_program ?(heap_dep = true) ?(srcmap = []) ~group (prog : V.program) :
    t list =
  List.map (fun proc -> { group; proc; prog; heap_dep; srcmap }) prog.V.procs

(** Run a job. Never raises: stray exceptions (beyond the verifier's
    own [Verification_error], which [verify_proc] already converts)
    become [Failed] outcomes so one bad job cannot take down a worker
    domain and strand the queue. *)
let run (job : t) : result =
  let vstats = Verifier.Vstats.create () in
  let t0 = Unix.gettimeofday () in
  let outcome =
    match
      V.verify_proc ~heap_dep:job.heap_dep ~srcmap:job.srcmap ~stats:vstats
        job.prog job.proc
    with
    | o -> o
    | exception e -> V.Failed (Printexc.to_string e)
  in
  { job; outcome; vstats; ms = (Unix.gettimeofday () -. t0) *. 1000.0 }
