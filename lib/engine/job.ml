(** Verification jobs: the unit of work the engine schedules.

    Suite- and file-level verification decomposes into one job per
    procedure — procedures share no mutable state (each gets a fresh
    symbolic state, gensym, and {!Verifier.Vstats} instance), which is
    what makes per-procedure verification embarrassingly parallel. *)

module V = Verifier.Exec

(* Backtraces must be recorded for [Crashed] outcomes to carry one;
   negligible cost when nothing raises. *)
let () = Printexc.record_backtrace true

type t = {
  group : string;  (** owning program (suite entry / file) *)
  proc : V.proc;
  prog : V.program;  (** the whole program, for callee specs *)
  heap_dep : bool;
  absint : bool;  (** abstract pre-discharge ahead of the solver *)
  seed : int;  (** par-branch exploration order; 0 = left-first *)
  srcmap : Diag.srcmap;
      (** source spans for the program's spec clauses; [[]] for
          hand-built programs *)
}

type result = {
  job : t;
  outcome : V.outcome;
  vstats : Verifier.Vstats.t;
  ms : float;  (** wall-clock verification time for this job *)
  attempts : int;  (** 1 = first try; >1 means budget-escalated retries *)
}

(** One job per procedure of [prog], in declaration order. *)
let of_program ?(heap_dep = true) ?(absint = true) ?(seed = 0)
    ?(srcmap = []) ~group (prog : V.program) : t list =
  List.map
    (fun proc -> { group; proc; prog; heap_dep; absint; seed; srcmap })
    prog.V.procs

(** Each retry multiplies the previous deadline by this factor, so a
    job that timed out narrowly gets decisively more room instead of
    timing out again a hair later. *)
let escalation = 8.0

let run_once (job : t) vstats ~timeout_ms : V.outcome =
  let verify () =
    (* Chaos-testing hook inside the guarded region: a worker-level
       fault surfaces as [Crashed], exercising the engine's promise
       that one dying job cannot strand the queue or flip a verdict. *)
    Stdx.Fault.inject Stdx.Fault.Pool;
    V.verify_proc ~heap_dep:job.heap_dep ~absint:job.absint ~seed:job.seed
      ~srcmap:job.srcmap ~stats:vstats job.prog job.proc
  in
  match
    match timeout_ms with
    | None -> verify ()
    | Some ms ->
        (* Chain to the ambient budget rather than shadowing it: the
           daemon's supervisor installs a cancellation-only budget
           around the whole request, and the watchdog's soft preemption
           (cancel from another domain) must reach the solver loops
           through this per-attempt deadline budget. *)
        Stdx.Budget.with_budget
          (Stdx.Budget.create ?parent:(Stdx.Budget.current ()) ~timeout_ms:ms ())
          verify
  with
  | o -> o
  | exception
      Stdx.Budget.Exhausted
        ((Stdx.Budget.Deadline _ | Stdx.Budget.Cancelled) as r) ->
      (* A poll point can fire between [verify_proc]'s own handler and
         here (e.g. inside a [Fun.protect] finalizer); same outcome. *)
      let s = Smt.Stats.current () in
      s.Smt.Stats.deadline_stops <- s.Smt.Stats.deadline_stops + 1;
      V.Timeout (Stdx.Budget.reason_to_string r)
  | exception Stdx.Budget.Exhausted (Stdx.Budget.Fuel _ as r) ->
      V.Resource_out (Stdx.Budget.reason_to_string r)
  | exception e ->
      (* Anything else — including [Out_of_memory] and [Stack_overflow],
         which earlier versions silently conflated with [Failed] — is a
         crash of the verifier, not a judgement about the program. *)
      let backtrace = Printexc.get_backtrace () in
      V.Crashed { V.exn = Printexc.to_string e; backtrace }

(** Run a job; never raises. [timeout_ms] bounds one attempt's wall
    clock; on [Timeout]/[Resource_out] the job is retried up to
    [retries] times with the deadline escalated by {!escalation} per
    attempt (graceful degradation in the other direction: given more
    room, most resource-outs resolve to a real verdict). [Failed],
    [Verified] and [Crashed] are never retried — the first two are
    judgements, and a crash is a bug to surface, not to mask. *)
let run ?timeout_ms ?(retries = 0) (job : t) : result =
  let vstats = Verifier.Vstats.create () in
  let t0 = Unix.gettimeofday () in
  let rec attempt n ~timeout_ms =
    let outcome = run_once job vstats ~timeout_ms in
    match outcome with
    | V.Timeout _ | V.Resource_out _ when n <= retries ->
        attempt (n + 1)
          ~timeout_ms:(Option.map (fun ms -> ms *. escalation) timeout_ms)
    | _ -> (outcome, n)
  in
  let outcome, attempts = attempt 1 ~timeout_ms in
  { job; outcome; vstats; ms = (Unix.gettimeofday () -. t0) *. 1000.0; attempts }
