(** A two-tier content-addressed cache of VC verdicts.

    The solver serializes each query to canonical bytes
    ([Smt.Solver.serialize_vc]); we address results by the MD5 digest
    of those bytes, so structurally identical VCs — recurring path
    conditions within one procedure, identical obligations across
    repeated verification runs — are discharged once.

    {b Tier 1} is the in-memory table of PR 1: a mutex-guarded
    hashtable shared by every worker domain. {b Tier 2} is an optional
    persistent on-disk store (one file per digest under a cache
    directory), so verdicts survive process restarts — the substrate
    of the [daenerys serve] daemon, where a repeat request for an
    unchanged program must be a pure cache hit even across daemon
    generations. A memory miss probes the disk; a disk hit is promoted
    into memory, so the second probe is a memory hit.

    Disk entries are defensive on three axes:

    - {b torn writes}: entries are written to a temp file and
      published with an atomic [rename], so a concurrent daemon (or a
      crash mid-write) never observes a partial entry;
    - {b corruption}: the file carries the payload's digest; a read
      that fails re-digesting, unmarshalling, or decoding is {e
      evicted and counted as a miss} (the [corrupt] counter makes such
      events visible), exactly like PR 5's in-memory validation —
      corruption can cost a re-solve but can never resurface as a
      wrong verdict;
    - {b stale builds}: the binary's build fingerprint (digest of the
      executable) is folded into the on-disk file name {e and} stored
      in the entry, so a rebuilt verifier never replays verdicts
      produced by different code.

    The disk tier is size-bounded: an in-memory index (rebuilt from
    the directory at [create]) tracks per-entry sizes and a logical
    LRU clock; stores that push the total over [max_bytes] evict the
    least-recently-used entries. Eviction and loads tolerate files
    vanishing underneath them — several daemons may share a directory.

    Counters exist at two scopes. Per-instance atomics accumulate for
    the cache's lifetime (the daemon's [stats] request reports these);
    the domain-local {!Local} record gives exact per-request
    accounting even when concurrent requests share one cache — the
    engine resets it in each worker's prologue and merges the
    snapshots, mirroring [Smt.Stats]. *)

type entry = {
  payload : string;  (** [Marshal]ed {!Smt.Solver.result} *)
  digest : string;  (** MD5 of [payload], checked on every read *)
}

(* --------------------------------------------------------------- *)
(* Domain-local per-run counters *)

module Local = struct
  type t = {
    mutable hits : int;  (** answered from the in-memory tier *)
    mutable disk_hits : int;  (** answered from the on-disk tier *)
    mutable misses : int;
    mutable corrupt : int;
  }

  let create () = { hits = 0; disk_hits = 0; misses = 0; corrupt = 0 }
  let key : t Domain.DLS.key = Domain.DLS.new_key create
  let current () = Domain.DLS.get key

  let reset () =
    let s = current () in
    s.hits <- 0;
    s.disk_hits <- 0;
    s.misses <- 0;
    s.corrupt <- 0

  let snapshot () =
    let s = current () in
    { s with hits = s.hits }

  let sum a b =
    {
      hits = a.hits + b.hits;
      disk_hits = a.disk_hits + b.disk_hits;
      misses = a.misses + b.misses;
      corrupt = a.corrupt + b.corrupt;
    }
end

(* --------------------------------------------------------------- *)
(* The on-disk tier *)

(** The running binary's build fingerprint: a digest of the executable
    itself, so any rebuild — even one that only changes solver
    internals — keys a disjoint set of on-disk entries. *)
let build_fingerprint =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with _ -> "unknown-build")

type disk_meta = { size : int; mutable stamp : int (* LRU clock *) }

(** What the startup recovery scan found and repaired. A kill -9 can
    interrupt the store protocol at two points — after the temp write
    but before the [rename] (orphaned [.tmp.*] litter), and between an
    eviction's journal write and its deletes (a journal left behind) —
    and although [rename] itself is atomic, entries can still be torn
    by the filesystem or by siblings writing the path directly. All
    three are detected and repaired before the cache serves its first
    probe. *)
type recovery = {
  mutable tmp_swept : int;  (** orphaned temp files removed *)
  mutable torn_quarantined : int;  (** undecodable entries moved aside *)
  mutable journal_replayed : int;  (** eviction intents completed *)
}

let no_recovery () = { tmp_swept = 0; torn_quarantined = 0; journal_replayed = 0 }

type disk = {
  dir : string;
  max_bytes : int;
  fingerprint : string;
  dlock : Mutex.t;  (** guards [index], [total], [clock] *)
  index : (string, disk_meta) Hashtbl.t;  (** hex file key -> meta *)
  mutable total : int;  (** bytes accounted in [index] *)
  mutable clock : int;
  tmp_seq : int Atomic.t;  (** unique temp-file names within a process *)
  recovery : recovery;  (** what the startup scan repaired *)
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  disk_hits : int Atomic.t;
  misses : int Atomic.t;
  corrupt : int Atomic.t;
  disk : disk option;
}

let suffix = ".vc"

(** The on-disk key folds the build fingerprint into the address, so a
    rebuilt binary cannot even {e name} a stale entry. *)
let disk_key (d : disk) key =
  Digest.to_hex (Digest.string (d.fingerprint ^ "\x00" ^ key))

let disk_path (d : disk) hex = Filename.concat d.dir (hex ^ suffix)

(** Rebuild the size/LRU index by scanning the directory; entry mtimes
    seed the LRU order across restarts. Unreadable files are skipped
    (a sibling daemon may be mid-eviction). *)
let scan_dir dir (index : (string, disk_meta) Hashtbl.t) =
  let files =
    match Sys.readdir dir with exception _ -> [||] | fs -> fs
  in
  let stamped =
    Array.to_list files
    |> List.filter_map (fun f ->
           if not (Filename.check_suffix f suffix) then None
           else
             match Unix.stat (Filename.concat dir f) with
             | { Unix.st_size; st_mtime; _ } ->
                 Some (Filename.chop_suffix f suffix, st_size, st_mtime)
             | exception _ -> None)
    |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
  in
  let total = ref 0 and clock = ref 0 in
  List.iter
    (fun (hex, size, _) ->
      incr clock;
      total := !total + size;
      Hashtbl.replace index hex { size; stamp = !clock })
    stamped;
  (!total, !clock)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(** Validate an entry and surrender its payload bytes. The cache is
    payload-agnostic — the VC tier stores marshaled solver results,
    the verdict tier whole-group outcomes; both ride the same digest
    validation and the same two storage tiers. *)
let decode (e : entry) : string option =
  if String.equal (Digest.string e.payload) e.digest then Some e.payload
  else None

(* --- disk primitives ------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Drop [hex] from the directory and the index. Tolerates the file
    already being gone (another daemon evicted it first). *)
let disk_remove (d : disk) hex =
  Mutex.protect d.dlock (fun () ->
      match Hashtbl.find_opt d.index hex with
      | Some m ->
          Hashtbl.remove d.index hex;
          d.total <- d.total - m.size
      | None -> ());
  try Sys.remove (disk_path d hex) with _ -> ()

(** Evict least-recently-used entries until the accounted total fits.
    Called with fresh stores; the just-written entry carries the
    highest stamp, so it is evicted only if it alone exceeds the
    bound.

    The pass is {e journaled}: the full victim list is computed under
    the lock, written to an [evict.<pid>.<seq>.journal] file (published
    atomically, like entries), and only then deleted. A crash anywhere
    in the window leaves either no journal (nothing lost) or a journal
    whose replay at the next startup completes exactly the deletes
    that were already condemned — the index and the directory can
    never silently disagree. *)
let disk_evict_to_bound (d : disk) =
  let victims =
    Mutex.protect d.dlock (fun () ->
        if d.total <= d.max_bytes then []
        else begin
          let entries =
            Hashtbl.fold (fun hex m acc -> (hex, m) :: acc) d.index []
            |> List.sort (fun (_, a) (_, b) -> compare a.stamp b.stamp)
          in
          let rec condemn acc total = function
            | [] -> acc
            | _ when total <= d.max_bytes -> acc
            | (hex, m) :: rest -> condemn (hex :: acc) (total - m.size) rest
          in
          condemn [] d.total entries
        end)
  in
  if victims <> [] then begin
    let jpath =
      Filename.concat d.dir
        (Printf.sprintf "evict.%d.%d.journal" (Unix.getpid ())
           (Atomic.fetch_and_add d.tmp_seq 1))
    in
    let jtmp =
      Filename.concat d.dir
        (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
           (Atomic.fetch_and_add d.tmp_seq 1))
    in
    (match
       let oc = open_out_bin jtmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           List.iter (fun hex -> output_string oc (hex ^ "\n")) victims);
       Sys.rename jtmp jpath
     with
    | () -> ()
    | exception _ -> ( try Sys.remove jtmp with _ -> ()));
    List.iter (disk_remove d) victims;
    try Sys.remove jpath with _ -> ()
  end

(* On-disk framing. Deliberately NOT [Marshal]: unmarshalling
   corrupted bytes can crash the runtime, and disk entries are exactly
   the bytes we must assume corrupted. Every field is length-checked,
   so a malformed file can only ever parse to [None] — the payload is
   unmarshalled (by the typed layer) only after its digest validates. *)
let magic = "DAEVC1\n"

let encode_entry fp (e : entry) =
  String.concat ""
    [
      magic;
      string_of_int (String.length fp);
      "\n";
      fp;
      Digest.to_hex e.digest;
      "\n";
      string_of_int (String.length e.payload);
      "\n";
      e.payload;
    ]

(** Parse a disk file into (fingerprint, entry); [None] on any
    malformation — bad magic, bad lengths, non-hex digest, trailing or
    missing bytes. *)
let decode_entry bytes : (string * entry) option =
  let n = String.length bytes in
  let m = String.length magic in
  try
    if n < m || not (String.equal (String.sub bytes 0 m) magic) then None
    else begin
      let pos = ref m in
      let read_line () =
        let i = String.index_from bytes !pos '\n' in
        let s = String.sub bytes !pos (i - !pos) in
        pos := i + 1;
        s
      in
      let fp_len = int_of_string (read_line ()) in
      if fp_len < 0 || !pos + fp_len > n then None
      else begin
        let fp = String.sub bytes !pos fp_len in
        pos := !pos + fp_len;
        let digest = Digest.from_hex (read_line ()) in
        let payload_len = int_of_string (read_line ()) in
        if payload_len < 0 || !pos + payload_len <> n then None
        else Some (fp, { payload = String.sub bytes !pos payload_len; digest })
      end
    end
  with _ -> None

(* --- crash recovery --------------------------------------------- *)

let quarantine_subdir = "quarantine"
let tmp_prefix = ".tmp."
let journal_prefix = "evict."
let journal_suffix = ".journal"

let is_journal f =
  String.starts_with ~prefix:journal_prefix f
  && Filename.check_suffix f journal_suffix

(* Temp files are named [.tmp.<pid>.<seq>]; the pid tells recovery
   whether the writer can still publish it. *)
let tmp_owner_pid f =
  match String.split_on_char '.' f with
  | "" :: "tmp" :: pid :: _ -> int_of_string_opt pid
  | _ -> None

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception _ -> true (* EPERM and friends: someone owns it *)

(** Move a damaged entry aside rather than deleting it: torn files are
    evidence of a crash or a bad disk, and an operator may want to
    inspect them. Deletion is the fallback when the move fails. *)
let quarantine_file dir f =
  let src = Filename.concat dir f in
  let qdir = Filename.concat dir quarantine_subdir in
  try
    mkdir_p qdir;
    Sys.rename src (Filename.concat qdir f);
    true
  with _ -> ( try Sys.remove src; true with _ -> false)

(** The startup recovery pass over a cache directory, in publication
    order: complete interrupted evictions (their journals record
    exactly which entries were condemned), sweep temp files whose
    writer is gone, then validate every remaining entry end-to-end —
    framing, digest — and quarantine the torn ones. Only files that
    survive all three are indexed. *)
let recover_dir dir (r : recovery) =
  let files = match Sys.readdir dir with exception _ -> [||] | fs -> fs in
  Array.iter
    (fun f ->
      if is_journal f then begin
        let path = Filename.concat dir f in
        (match read_file path with
        | exception _ -> ()
        | bytes ->
            String.split_on_char '\n' bytes
            |> List.iter (fun hex ->
                   let hex = String.trim hex in
                   if hex <> "" then begin
                     (try Sys.remove (Filename.concat dir (hex ^ suffix))
                      with _ -> ());
                     r.journal_replayed <- r.journal_replayed + 1
                   end));
        try Sys.remove path with _ -> ()
      end)
    files;
  Array.iter
    (fun f ->
      if String.starts_with ~prefix:tmp_prefix f then begin
        let orphaned =
          match tmp_owner_pid f with
          | Some pid when pid = Unix.getpid () -> false
          | Some pid -> not (pid_alive pid)
          | None -> true
        in
        if orphaned then begin
          (try Sys.remove (Filename.concat dir f) with _ -> ());
          r.tmp_swept <- r.tmp_swept + 1
        end
      end)
    files;
  Array.iter
    (fun f ->
      if Filename.check_suffix f suffix then begin
        let torn =
          match read_file (Filename.concat dir f) with
          | exception _ -> false (* vanished or unreadable: skip, don't judge *)
          | bytes -> (
              match decode_entry bytes with
              | None -> true
              | Some (_, e) -> not (String.equal (Digest.string e.payload) e.digest))
        in
        if torn && quarantine_file dir f then
          r.torn_quarantined <- r.torn_quarantined + 1
      end)
    files

(** [create ()] is the PR 1 memory-only cache (per-run, CLI default).
    [create ~disk_dir ()] adds the persistent tier; [max_bytes] bounds
    it (default 256 MB) and [fingerprint] overrides the build digest
    (tests use this to simulate a rebuild). [recover] (default on)
    runs the crash-recovery pass before the directory is indexed;
    turning it off reproduces the pre-recovery behavior for tests. *)
let create ?disk_dir ?(max_bytes = 256 * 1024 * 1024) ?fingerprint
    ?(recover = true) () =
  let disk =
    Option.map
      (fun dir ->
        mkdir_p dir;
        let recovery = no_recovery () in
        if recover then recover_dir dir recovery;
        let index = Hashtbl.create 1024 in
        let total, clock = scan_dir dir index in
        {
          dir;
          max_bytes;
          fingerprint =
            (match fingerprint with
            | Some f -> f
            | None -> Lazy.force build_fingerprint);
          dlock = Mutex.create ();
          index;
          total;
          clock;
          tmp_seq = Atomic.make 0;
          recovery;
        })
      disk_dir
  in
  {
    tbl = Hashtbl.create 4096;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    disk_hits = Atomic.make 0;
    misses = Atomic.make 0;
    corrupt = Atomic.make 0;
    disk;
  }

(** Publish an entry: temp file in the same directory, then an atomic
    [rename] — a reader (this daemon or a sibling sharing the
    directory) sees the whole entry or nothing. IO errors are
    swallowed: a full or read-only disk degrades the cache to
    memory-only, never breaks verification. *)
let disk_store (d : disk) key (e : entry) =
  let hex = disk_key d key in
  let bytes = encode_entry d.fingerprint e in
  let tmp =
    Filename.concat d.dir
      (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
         (Atomic.fetch_and_add d.tmp_seq 1))
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc bytes);
    (* Chaos-testing hook: a disk fault is a crash in the publication
       window — the temp file was written but the rename never
       happens. The store is lost (a later probe re-solves) and the
       litter is exactly what the startup recovery sweep collects. *)
    Stdx.Fault.inject Stdx.Fault.Disk;
    Sys.rename tmp (disk_path d hex)
  with
  | () ->
      Mutex.protect d.dlock (fun () ->
          d.clock <- d.clock + 1;
          let size = String.length bytes in
          (match Hashtbl.find_opt d.index hex with
          | Some m -> d.total <- d.total - m.size
          | None -> ());
          Hashtbl.replace d.index hex { size; stamp = d.clock };
          d.total <- d.total + size);
      disk_evict_to_bound d
  | exception Stdx.Fault.Injected _ -> () (* leave the tmp litter *)
  | exception _ -> ( try Sys.remove tmp with _ -> ())

(** Probe the disk tier. [Ok e] is a validated entry; [Corrupt] means
    a file existed but failed validation (already evicted here);
    [Absent] is a plain miss. *)
let disk_load (d : disk) key =
  let hex = disk_key d key in
  match read_file (disk_path d hex) with
  | exception _ -> `Absent
  | bytes -> (
      let corrupt () =
        disk_remove d hex;
        `Corrupt
      in
      (* Chaos-testing hook: an injected cache fault garbles the read,
         exercising the promise that disk corruption is absorbed. *)
      if Stdx.Fault.fires Stdx.Fault.Cache then corrupt ()
      else
        match decode_entry bytes with
        | None -> corrupt ()
        | Some (fp, e) ->
            if not (String.equal fp d.fingerprint) then begin
              (* A hash collision across builds — address says ours,
                 content says otherwise. Treat as a plain miss. *)
              disk_remove d hex;
              `Absent
            end
            else if decode e = None then corrupt ()
            else begin
                Mutex.protect d.dlock (fun () ->
                    d.clock <- d.clock + 1;
                    match Hashtbl.find_opt d.index hex with
                    | Some m -> m.stamp <- d.clock
                    | None ->
                        (* Written by a sibling daemon after our scan. *)
                        Hashtbl.replace d.index hex
                          { size = String.length bytes; stamp = d.clock });
                `Ok e
              end)

(* --- the two-tier lookup/store -------------------------------- *)

let count_hit t =
  Atomic.incr t.hits;
  let l = Local.current () in
  l.Local.hits <- l.Local.hits + 1

let count_disk_hit t =
  Atomic.incr t.disk_hits;
  let l = Local.current () in
  l.Local.disk_hits <- l.Local.disk_hits + 1

let count_miss t =
  Atomic.incr t.misses;
  let l = Local.current () in
  l.Local.misses <- l.Local.misses + 1

let count_corrupt t =
  Atomic.incr t.corrupt;
  let l = Local.current () in
  l.Local.corrupt <- l.Local.corrupt + 1

(** Two-tier probe: memory, then disk (promoting a disk hit into
    memory). Returns the validated payload bytes and the tier that
    answered. *)
let lookup_bytes t serialized : (string * [ `Memory | `Disk ]) option =
  let key = Digest.string serialized in
  let mem = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.tbl key) in
  let from_disk () =
    match t.disk with
    | None ->
        count_miss t;
        None
    | Some d -> (
        match disk_load d key with
        | `Ok e -> (
            match decode e with
            | Some payload ->
                (* Promote: the next probe for this key is a memory
                   hit. *)
                Mutex.protect t.lock (fun () -> Hashtbl.replace t.tbl key e);
                count_disk_hit t;
                Some (payload, `Disk)
            | None ->
                (* disk_load validated the entry; unreachable unless
                   the bytes rot between the two reads. *)
                count_corrupt t;
                count_miss t;
                None)
        | `Corrupt ->
            count_corrupt t;
            count_miss t;
            None
        | `Absent ->
            count_miss t;
            None)
  in
  match mem with
  | None -> from_disk ()
  | Some e -> (
      match decode e with
      | Some payload ->
          count_hit t;
          Some (payload, `Memory)
      | None ->
          (* Corrupt memory entry: evict so the re-solved result
             replaces it, count, and fall back to the disk tier (its
             copy validates independently). *)
          Mutex.protect t.lock (fun () -> Hashtbl.remove t.tbl key);
          count_corrupt t;
          from_disk ())

let store_bytes t serialized (payload : string) =
  let key = Digest.string serialized in
  let entry = { payload; digest = Digest.string payload } in
  let entry =
    (* Chaos-testing hook: an injected cache fault corrupts the stored
       bytes *after* the digest was computed, exactly the failure the
       read-side validation exists to absorb (both tiers see the same
       corrupted bytes, so both validation paths are exercised). *)
    if Stdx.Fault.fires Stdx.Fault.Cache then
      { entry with payload = entry.payload ^ "\xde\xad" }
    else entry
  in
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.tbl key entry);
  Option.iter (fun d -> disk_store d key entry) t.disk

(* --- the VC tier: one solver result per serialized query -------- *)

let lookup t serialized : Smt.Solver.result option =
  match lookup_bytes t serialized with
  | None -> None
  | Some (payload, _tier) -> (
      match (Marshal.from_string payload 0 : Smt.Solver.result) with
      | r -> Some r
      | exception _ -> None)

let store t serialized (result : Smt.Solver.result) =
  store_bytes t serialized (Marshal.to_string result [])

(* --- the verdict tier: whole-group outcomes per program --------- *)

(** Per-procedure outcomes of one whole verification group, keyed on
    {e request content} (a suite entry's name, a surface program's
    source text) rather than on serialized VCs. This is the daemon's
    warm path: verification spends its time in incremental
    {!Smt.Session} probes that the per-query VC tier never sees, so a
    repeat request for an unchanged program is answered here — no
    symbolic execution, no session, no solver work at all.

    Only {e decided} groups (every outcome [Verified] or [Failed]) are
    stored: abstentions — timeout, fuel exhaustion, crash — are
    budget-dependent, and replaying them would deny a later request
    the retry its escalated budget exists to buy (the verdict-level
    analogue of the VC tier's [Resource_out] exclusion). *)
type verdicts = (string * Verifier.Exec.outcome) list

(* Namespace prefix: verdict keys can never collide with serialized
   VCs of the same bytes. *)
let verdict_ns = "verdict\x00"

let decided (v : verdicts) =
  List.for_all
    (fun (_, o) ->
      match o with
      | Verifier.Exec.Verified | Verifier.Exec.Failed _ -> true
      | Verifier.Exec.Timeout _ | Verifier.Exec.Resource_out _
      | Verifier.Exec.Crashed _ ->
          false)
    v

let lookup_verdicts t key : (verdicts * [ `Memory | `Disk ]) option =
  match lookup_bytes t (verdict_ns ^ key) with
  | None -> None
  | Some (payload, tier) -> (
      match (Marshal.from_string payload 0 : verdicts) with
      | v -> Some (v, tier)
      | exception _ -> None)

(** Store a group's verdicts under [key]; silently skipped when the
    group contains an abstention. *)
let store_verdicts t key (v : verdicts) =
  if decided v then store_bytes t (verdict_ns ^ key) (Marshal.to_string v [])

(** Deliberately corrupt the stored in-memory entry for [serialized],
    for regression tests. [`Flip] flips a payload bit; [`Truncate]
    drops the payload's tail. Returns [false] when no entry exists. *)
let corrupt_entry ?(mode = `Flip) t serialized =
  let key = Digest.string serialized in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> false
      | Some e ->
          let payload =
            match mode with
            | `Flip ->
                let b = Bytes.of_string e.payload in
                let i = Bytes.length b / 2 in
                Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
                Bytes.to_string b
            | `Truncate ->
                String.sub e.payload 0 (String.length e.payload / 2)
          in
          Hashtbl.replace t.tbl key { e with payload };
          true)

(** Corrupt the {e on-disk} entry for [serialized] (and forget the
    in-memory copy, so the next lookup must go to disk). For
    regression tests of the disk-validation path. *)
let corrupt_disk_entry ?(mode = `Flip) t serialized =
  match t.disk with
  | None -> false
  | Some d -> (
      let key = Digest.string serialized in
      Mutex.protect t.lock (fun () -> Hashtbl.remove t.tbl key);
      let path = disk_path d (disk_key d key) in
      match read_file path with
      | exception _ -> false
      | bytes ->
          let bytes =
            match mode with
            | `Flip ->
                let b = Bytes.of_string bytes in
                let i = Bytes.length b / 2 in
                Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
                Bytes.to_string b
            | `Truncate -> String.sub bytes 0 (String.length bytes / 2)
          in
          let oc = open_out_bin path in
          output_string oc bytes;
          close_out oc;
          true)

(** Route every [Smt.Solver.check_sat] in the process through [t]. *)
let install t =
  Smt.Solver.set_cache
    (Some { Smt.Solver.lookup = lookup t; store = store t })

let uninstall () = Smt.Solver.set_cache None

let hits t = Atomic.get t.hits
let disk_hits t = Atomic.get t.disk_hits
let misses t = Atomic.get t.misses
let corrupt t = Atomic.get t.corrupt
let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)

let disk_entries t =
  match t.disk with
  | None -> 0
  | Some d -> Mutex.protect d.dlock (fun () -> Hashtbl.length d.index)

let disk_bytes t =
  match t.disk with
  | None -> 0
  | Some d -> Mutex.protect d.dlock (fun () -> d.total)

let fingerprint t =
  match t.disk with None -> None | Some d -> Some d.fingerprint

(** What the startup recovery pass repaired; all-zero for memory-only
    caches and for [create ~recover:false]. *)
let recovery_stats t =
  match t.disk with None -> no_recovery () | Some d -> d.recovery

let recovered_tmp t = (recovery_stats t).tmp_swept
let recovered_torn t = (recovery_stats t).torn_quarantined
let journal_replayed t = (recovery_stats t).journal_replayed

(** Fraction of lookups answered from either tier, in [0;1]. *)
let hit_rate t =
  let h = hits t + disk_hits t and m = misses t in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
