(** A content-addressed cache of VC verdicts.

    The solver serializes each query to canonical bytes
    ([Smt.Solver.serialize_vc]); we address results by the MD5 digest
    of those bytes, so structurally identical VCs — recurring path
    conditions within one procedure, identical obligations across
    repeated verification runs — are discharged once. Stored verdicts
    ([Sat] with its model, [Unsat], [Unknown]) are immutable, so
    sharing them across domains is safe.

    One table serves every worker domain: lookups and stores take a
    mutex (the critical section is a hashtable probe — far cheaper than
    any solver call it saves), hit/miss counters are atomic so the
    report needs no lock. *)

type t = {
  tbl : (string, Smt.Solver.result) Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create () =
  {
    tbl = Hashtbl.create 4096;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let lookup t serialized =
  let key = Digest.string serialized in
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.tbl key) with
  | Some _ as r ->
      Atomic.incr t.hits;
      r
  | None ->
      Atomic.incr t.misses;
      None

let store t serialized result =
  let key = Digest.string serialized in
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.tbl key result)

(** Route every [Smt.Solver.check_sat] in the process through [t]. *)
let install t =
  Smt.Solver.set_cache
    (Some { Smt.Solver.lookup = lookup t; store = store t })

let uninstall () = Smt.Solver.set_cache None

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)

(** Fraction of lookups answered from the cache, in [0;1]. *)
let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
