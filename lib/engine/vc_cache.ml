(** A content-addressed cache of VC verdicts.

    The solver serializes each query to canonical bytes
    ([Smt.Solver.serialize_vc]); we address results by the MD5 digest
    of those bytes, so structurally identical VCs — recurring path
    conditions within one procedure, identical obligations across
    repeated verification runs — are discharged once.

    Entries are defensive: the verdict is stored as marshalled bytes
    together with a digest of those bytes, and every read re-digests
    and deserializes under a guard. An entry that fails validation —
    whether from an injected cache fault, a future spill-to-disk
    picking up a truncated file, or a plain bug — is {e evicted and
    counted as a miss}, so corruption can cost a re-solve but can never
    resurface as a wrong verdict. The [corrupt] counter makes such
    events visible in [--stats].

    One table serves every worker domain: lookups and stores take a
    mutex (the critical section is a hashtable probe — far cheaper than
    any solver call it saves), hit/miss counters are atomic so the
    report needs no lock. *)

type entry = {
  payload : string;  (** [Marshal]ed {!Smt.Solver.result} *)
  digest : string;  (** MD5 of [payload], checked on every read *)
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  corrupt : int Atomic.t;
}

let create () =
  {
    tbl = Hashtbl.create 4096;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    corrupt = Atomic.make 0;
  }

let decode (e : entry) : Smt.Solver.result option =
  if not (String.equal (Digest.string e.payload) e.digest) then None
  else
    (* The digest already vouches for the bytes; the guard covers
       truncation-shaped corruption where the digest was forged or the
       payload predates a format change. *)
    match (Marshal.from_string e.payload 0 : Smt.Solver.result) with
    | r -> Some r
    | exception _ -> None

let lookup t serialized =
  let key = Digest.string serialized in
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.tbl key) with
  | None ->
      Atomic.incr t.misses;
      None
  | Some e -> (
      match decode e with
      | Some _ as r ->
          Atomic.incr t.hits;
          r
      | None ->
          (* Corrupt entry: evict so the re-solved result replaces it,
             count, and report a miss. *)
          Mutex.protect t.lock (fun () -> Hashtbl.remove t.tbl key);
          Atomic.incr t.corrupt;
          Atomic.incr t.misses;
          None)

let store t serialized result =
  let key = Digest.string serialized in
  let payload = Marshal.to_string (result : Smt.Solver.result) [] in
  let entry = { payload; digest = Digest.string payload } in
  let entry =
    (* Chaos-testing hook: an injected cache fault corrupts the stored
       bytes *after* the digest was computed, exactly the failure the
       read-side validation exists to absorb. *)
    if Stdx.Fault.fires Stdx.Fault.Cache then
      { entry with payload = entry.payload ^ "\xde\xad" }
    else entry
  in
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.tbl key entry)

(** Deliberately corrupt the stored entry for [serialized], for
    regression tests. [`Flip] flips a payload bit; [`Truncate] drops
    the payload's tail. Returns [false] when no entry exists. *)
let corrupt_entry ?(mode = `Flip) t serialized =
  let key = Digest.string serialized in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> false
      | Some e ->
          let payload =
            match mode with
            | `Flip ->
                let b = Bytes.of_string e.payload in
                let i = Bytes.length b / 2 in
                Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
                Bytes.to_string b
            | `Truncate ->
                String.sub e.payload 0 (String.length e.payload / 2)
          in
          Hashtbl.replace t.tbl key { e with payload };
          true)

(** Route every [Smt.Solver.check_sat] in the process through [t]. *)
let install t =
  Smt.Solver.set_cache
    (Some { Smt.Solver.lookup = lookup t; store = store t })

let uninstall () = Smt.Solver.set_cache None

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let corrupt t = Atomic.get t.corrupt
let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)

(** Fraction of lookups answered from the cache, in [0;1]. *)
let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
