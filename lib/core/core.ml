(** The paper's primary contribution, as one façade library.

    [Core] re-exports the destabilized base logic and the two
    verification layers built on it, so downstream users can depend on
    a single library:

    - {!Logic} — the assertion language, semantics, and proof kernel
      ({!Baselogic});
    - {!Auto} — the SMT-backed automated verifier ({!Verifier});
    - {!Certified} — the proof-producing baseline ({!Proofmode}).

    The substrates ([Camera], [Smt], [Heaplang], [Stdx]) remain
    separately usable libraries. *)

module Logic = Baselogic
module Auto = Verifier
module Certified = Proofmode

(** One-call convenience: verify a single procedure automatically. *)
let verify_proc ?heap_dep ?(preds = Stdx.Smap.empty) (proc : Verifier.Exec.proc) :
    Verifier.Exec.outcome =
  Verifier.Exec.verify_proc ?heap_dep
    { Verifier.Exec.procs = [ proc ]; preds; invs = [] }
    proc

(** One-call convenience: prove a triple with the certified baseline.
    Returns the kernel theorem [pre ⊢ WP body {result. post}]. *)
let prove_triple = Proofmode.Prove.prove_triple
