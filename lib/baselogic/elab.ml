(** Elaboration of the surface specification language onto the logic.

    {!Heaplang.Surface} terms and assertions are pure located syntax;
    this module lowers them to {!Smt.Term} and {!Assertion} values:

    - a spec-level heap read [!t] becomes the reserved {!Hterm.deref}
      application, so heap-dependent pure assertions flow through the
      destabilized-logic pipeline unchanged;
    - [&&] / [||] become the n-ary solver connectives;
    - a points-to without a fraction annotation owns the full chunk
      ([Q.one]); [{n/d}] lowers to [Q.mk n d];
    - [exists x y. A] nests single-binder {!Assertion.Exists}.

    Division and remainder have no solver encoding; the parser rejects
    them in specs, and elaboration double-checks ({!Elab_error}). *)

open Stdx
module S = Heaplang.Surface
module T = Smt.Term
module A = Assertion

exception Elab_error of string * Loc.t
(** A surface construct with no logical encoding, with its span. *)

let fail span fmt = Fmt.kstr (fun m -> raise (Elab_error (m, span))) fmt

let rec term (t : S.term) : T.t =
  match t.S.t with
  | S.TInt n -> T.int n
  | S.TBool b -> T.bool b
  | S.TVar x -> T.var x
  | S.TDeref u -> Hterm.deref (term u)
  | S.TNeg u -> T.neg (term u)
  | S.TBin (op, a, b) -> (
      let a = term a and b = term b in
      match op with
      | Heaplang.Ast.Add -> T.add a b
      | Sub -> T.sub a b
      | Mul -> T.mul a b
      | Div | Rem ->
          fail t.S.tspan
            "division has no specification-term encoding (solver terms \
             are linear integer arithmetic)"
      | Eq -> T.eq a b
      | Ne -> T.neq a b
      | Lt -> T.lt a b
      | Le -> T.le a b
      | Gt -> T.gt a b
      | Ge -> T.ge a b
      | AndOp -> T.and_ [ a; b ]
      | OrOp -> T.or_ [ a; b ])

let frac : S.frac option -> Q.t = function
  | None -> Q.one
  | Some { S.num; den } -> Q.mk num den

let rec assertion (a : S.assertion) : A.t =
  match a.S.a with
  | S.AEmp -> A.Emp
  | S.APure t -> A.Pure (term t)
  | S.APointsTo { alhs; afrac; arhs } ->
      A.Points_to { loc = term alhs; frac = frac afrac; value = term arhs }
  | S.APred (p, args) -> A.Pred (p, List.map term args)
  | S.ASep (p, q) -> A.Sep (assertion p, assertion q)
  | S.AOr (p, q) -> A.Or (assertion p, assertion q)
  | S.AStabilize p -> A.Stabilize (assertion p)
  | S.AExists (xs, p) ->
      List.fold_right (fun x acc -> A.Exists (x, acc)) xs (assertion p)

let pred (p : S.pred) : A.pred_def =
  { A.pname = p.S.pr_name; params = p.S.pr_params; body = assertion p.S.pr_body }
