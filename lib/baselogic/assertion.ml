(** The assertion language of the destabilized logic.

    The grammar is Iris's, with three departures that are the point of
    the paper (as reconstructed):

    - pure assertions [Pure φ] may contain heap reads ([!l] terms, see
      {!Hterm}), making them *unstable* in general;
    - [Stabilize P] (written ⌊P⌋) is the stabilization modality that
      quantifies over the globals compatible with the local footprint,
      recovering a stable assertion;
    - ghost-state contents are symbolic ({!Ghost_val}), so the whole
      language is first-order and automation-friendly.

    Locations, integers, and booleans are all [Int]-sorted terms
    (booleans as 0/1); program pairs and sums are handled at spec level
    through mathematical functions, as in other automated verifiers. *)

open Stdx
open Smt

type t =
  | Pure of Term.t
  | Emp
  | Points_to of { loc : Term.t; frac : Q.t; value : Term.t }
  | Pred of string * Term.t list  (** named (recursive) predicate *)
  | Ghost of string * Ghost_val.t  (** [own γ a] *)
  | Sep of t * t
  | Wand of t * t
  | And of t * t
  | Or of t * t
  | Exists of string * t  (** int-sorted logical binder *)
  | Forall of string * t
  | Persistently of t
  | Later of t
  | Upd of t  (** basic update modality |==> *)
  | Stabilize of t  (** ⌊P⌋ *)
  | Wp of Heaplang.Ast.expr * string * t  (** WP e {v. Q}, [v] binds *)

(** A named predicate definition; [body] may mention [Pred (name, …)]
    recursively (semantically guarded by the step index). *)
type pred_def = { pname : string; params : string list; body : t }

type pred_env = pred_def Smap.t

let rec pp ppf = function
  | Pure t -> Fmt.pf ppf "⌜%a⌝" Term.pp t
  | Emp -> Fmt.string ppf "emp"
  | Points_to { loc; frac; value } ->
      if Q.equal frac Q.one then
        Fmt.pf ppf "%a ↦ %a" Term.pp loc Term.pp value
      else Fmt.pf ppf "%a ↦{%a} %a" Term.pp loc Q.pp frac Term.pp value
  | Pred (p, args) ->
      Fmt.pf ppf "%s(%a)" p (Fmt.list ~sep:(Fmt.any ",@ ") Term.pp) args
  | Ghost (g, v) -> Fmt.pf ppf "own %s (%a)" g Ghost_val.pp v
  | Sep (a, b) -> Fmt.pf ppf "(%a ∗ %a)" pp a pp b
  | Wand (a, b) -> Fmt.pf ppf "(%a -∗ %a)" pp a pp b
  | And (a, b) -> Fmt.pf ppf "(%a ∧ %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a ∨ %a)" pp a pp b
  | Exists (x, p) -> Fmt.pf ppf "(∃ %s. %a)" x pp p
  | Forall (x, p) -> Fmt.pf ppf "(∀ %s. %a)" x pp p
  | Persistently p -> Fmt.pf ppf "□ %a" pp p
  | Later p -> Fmt.pf ppf "▷ %a" pp p
  | Upd p -> Fmt.pf ppf "|==> %a" pp p
  | Stabilize p -> Fmt.pf ppf "⌊%a⌋" pp p
  | Wp (e, v, q) ->
      Fmt.pf ppf "WP %a {%s. %a}" Heaplang.Ast.pp_expr e v pp q

let to_string a = Fmt.str "%a" pp a

let rec equal a b =
  match (a, b) with
  | Pure x, Pure y -> Term.equal x y
  | Emp, Emp -> true
  | Points_to x, Points_to y ->
      Term.equal x.loc y.loc && Q.equal x.frac y.frac
      && Term.equal x.value y.value
  | Pred (p, xs), Pred (q, ys) ->
      String.equal p q && List.equal Term.equal xs ys
  | Ghost (g, v), Ghost (h, w) -> String.equal g h && Ghost_val.equal v w
  | Sep (a1, a2), Sep (b1, b2)
  | Wand (a1, a2), Wand (b1, b2)
  | And (a1, a2), And (b1, b2)
  | Or (a1, a2), Or (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Exists (x, p), Exists (y, q) | Forall (x, p), Forall (y, q) ->
      String.equal x y && equal p q
  | Persistently p, Persistently q
  | Later p, Later q
  | Upd p, Upd q
  | Stabilize p, Stabilize q ->
      equal p q
  | Wp (e1, v1, q1), Wp (e2, v2, q2) ->
      (* Structural: expressions are pure data (no functions). *)
      (e1 == e2 || e1 = e2) && String.equal v1 v2 && equal q1 q2
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Substitution of terms for logical variables *)

let subst_ghost_val map (v : Ghost_val.t) : Ghost_val.t =
  match v with
  | Ghost_val.Excl t -> Ghost_val.Excl (Term.subst map t)
  | Ghost_val.Agree t -> Ghost_val.Agree (Term.subst map t)
  | Ghost_val.Frac_tok q -> Ghost_val.Frac_tok q
  | Ghost_val.Auth_nat { auth; frag } ->
      Ghost_val.Auth_nat
        {
          auth = Option.map (Term.subst map) auth;
          frag = Term.subst map frag;
        }
  | Ghost_val.Max_nat t -> Ghost_val.Max_nat (Term.subst map t)
  | Ghost_val.Token -> Ghost_val.Token

exception Subst_error of string

(** The program symbols ([Sym x] leaves) of an expression. *)
let expr_syms (e : Heaplang.Ast.expr) : string list =
  let acc = ref [] in
  let rec syms (v : Heaplang.Ast.value) =
    match v with
    | Heaplang.Ast.Sym x -> acc := x :: !acc
    | Heaplang.Ast.Pair (a, b) ->
        syms a;
        syms b
    | Heaplang.Ast.InjL a | Heaplang.Ast.InjR a -> syms a
    | Heaplang.Ast.RecV (_, _, e) -> walk e
    | _ -> ()
  and walk (e : Heaplang.Ast.expr) =
    match e with
    | Heaplang.Ast.Val v -> syms v
    | Heaplang.Ast.Var _ | Heaplang.Ast.GhostMark _ -> ()
    | Heaplang.Ast.Rec (_, _, e) -> walk e
    | Heaplang.Ast.App (a, b)
    | Heaplang.Ast.BinOp (_, a, b)
    | Heaplang.Ast.Let (_, a, b)
    | Heaplang.Ast.Seq (a, b)
    | Heaplang.Ast.While (a, b)
    | Heaplang.Ast.PairE (a, b)
    | Heaplang.Ast.Store (a, b)
    | Heaplang.Ast.Faa (a, b)
    | Heaplang.Ast.Par (a, b) ->
        walk a;
        walk b
    | Heaplang.Ast.UnOp (_, a)
    | Heaplang.Ast.Fst a
    | Heaplang.Ast.Snd a
    | Heaplang.Ast.InjLE a
    | Heaplang.Ast.InjRE a
    | Heaplang.Ast.Alloc a
    | Heaplang.Ast.Load a
    | Heaplang.Ast.Free a
    | Heaplang.Ast.Assert a
    | Heaplang.Ast.Atomic a ->
        walk a
    | Heaplang.Ast.If (a, b, c) | Heaplang.Ast.Cas (a, b, c) ->
        walk a;
        walk b;
        walk c
    | Heaplang.Ast.Case (a, (_, b), (_, c)) ->
        walk a;
        walk b;
        walk c
  in
  walk e;
  !acc

(** Push a term substitution into program syntax: [Sym x] leaves are
    replaced by the value encoding of [map x]. Only variables and
    integer literals can cross the term/value boundary; substituting a
    compound term for a symbol that actually occurs in the program is
    an error (the proof layers avoid it by naming intermediate values,
    as symbolic executors do). *)
let subst_expr (map : Term.t Smap.t) (e : Heaplang.Ast.expr) :
    Heaplang.Ast.expr =
  let bindings =
    Smap.bindings map
    |> List.filter_map (fun (x, t) ->
           match Term.view t with
           | Term.Var (y, _) -> Some (x, Heaplang.Ast.Sym y)
           | Term.Int_lit n -> Some (x, Heaplang.Ast.Int n)
           | _ -> None)
  in
  let complex =
    Smap.bindings map
    |> List.filter (fun (_, t) ->
           match Term.view t with
           | Term.Var _ | Term.Int_lit _ -> false
           | _ -> true)
    |> List.map fst
  in
  let free = expr_syms e in
  List.iter
    (fun x ->
      if List.mem x free then
        raise
          (Subst_error
             (Printf.sprintf
                "cannot substitute a compound term for program symbol %s" x)))
    complex;
  Heaplang.Subst.close_expr bindings e

(** Substitute term variables. Binders ([Exists], [Forall], [Wp]'s
    result binder) shadow; we do not rename because substituted terms
    in practice contain only fresh symbolic names, and the test suite
    checks the no-capture precondition where it matters. Substitution
    descends into the program of a [Wp] (replacing [Sym] leaves), so a
    let-bound result can be instantiated consistently in both the
    program and its postcondition. *)
let rec subst (map : Term.t Smap.t) (a : t) : t =
  if Smap.is_empty map then a
  else
    match a with
    | Pure t -> Pure (Term.subst map t)
    | Emp -> Emp
    | Points_to { loc; frac; value } ->
        Points_to
          { loc = Term.subst map loc; frac; value = Term.subst map value }
    | Pred (p, args) -> Pred (p, List.map (Term.subst map) args)
    | Ghost (g, v) -> Ghost (g, subst_ghost_val map v)
    | Sep (p, q) -> Sep (subst map p, subst map q)
    | Wand (p, q) -> Wand (subst map p, subst map q)
    | And (p, q) -> And (subst map p, subst map q)
    | Or (p, q) -> Or (subst map p, subst map q)
    | Exists (x, p) -> Exists (x, subst (Smap.remove x map) p)
    | Forall (x, p) -> Forall (x, subst (Smap.remove x map) p)
    | Persistently p -> Persistently (subst map p)
    | Later p -> Later (subst map p)
    | Upd p -> Upd (subst map p)
    | Stabilize p -> Stabilize (subst map p)
    | Wp (e, v, q) -> Wp (subst_expr map e, v, subst (Smap.remove v map) q)

let subst1 x t a = subst (Smap.of_list [ (x, t) ]) a

(* ------------------------------------------------------------------ *)
(* Free term variables *)

let ghost_val_terms = function
  | Ghost_val.Excl t | Ghost_val.Agree t | Ghost_val.Max_nat t -> [ t ]
  | Ghost_val.Frac_tok _ | Ghost_val.Token -> []
  | Ghost_val.Auth_nat { auth; frag } -> frag :: Option.to_list auth

(** Free term variables of an assertion. *)
let free_vars (a : t) : string list =
  let module S = Set.Make (String) in
  let tvars t = List.map fst (Term.vars t) in
  let rec go bound acc = function
    | Pure t -> List.fold_left (fun acc x ->
        if S.mem x bound then acc else S.add x acc) acc (tvars t)
    | Emp -> acc
    | Points_to { loc; value; _ } ->
        List.fold_left (fun acc x ->
            if S.mem x bound then acc else S.add x acc)
          acc (tvars loc @ tvars value)
    | Pred (_, args) ->
        List.fold_left (fun acc x ->
            if S.mem x bound then acc else S.add x acc)
          acc (List.concat_map tvars args)
    | Ghost (_, v) ->
        List.fold_left (fun acc x ->
            if S.mem x bound then acc else S.add x acc)
          acc (List.concat_map tvars (ghost_val_terms v))
    | Sep (p, q) | Wand (p, q) | And (p, q) | Or (p, q) ->
        go bound (go bound acc p) q
    | Exists (x, p) | Forall (x, p) -> go (S.add x bound) acc p
    | Persistently p | Later p | Upd p | Stabilize p -> go bound acc p
    | Wp (e, v, q) ->
        let acc =
          List.fold_left
            (fun acc x -> if S.mem x bound then acc else S.add x acc)
            acc (expr_syms e)
        in
        go (S.add v bound) acc q
  in
  S.elements (go S.empty S.empty a)

(* ------------------------------------------------------------------ *)
(* Syntactic judgments *)

(** Persistence: persistent assertions are duplicable and survive
    [Persistently]. Sound approximation. *)
let rec persistent = function
  | Pure _ -> true  (* even heap-dependent: knowledge, not ownership *)
  | Emp -> true
  | Points_to _ -> false
  | Pred _ -> false  (* conservatively; could consult the environment *)
  | Ghost (_, v) -> Ghost_val.persistent v
  | Sep (p, q) | And (p, q) | Or (p, q) -> persistent p && persistent q
  | Wand _ -> false
  | Exists (_, p) | Forall (_, p) -> persistent p
  | Persistently _ -> true
  | Later p -> persistent p
  | Upd _ -> false
  | Stabilize p -> persistent p
  | Wp _ -> false

(** The heap locations an assertion's pure parts read. Pure assertions
    are *stable* only when their reads are covered by points-to
    footprint in the same separating context; this function feeds that
    analysis (see {!stable} and the verifier's stability checker). *)
let rec heap_reads acc = function
  | Pure t -> Hterm.heap_reads t @ acc
  | Emp -> acc
  | Points_to { loc; value; _ } ->
      Hterm.heap_reads loc @ Hterm.heap_reads value @ acc
  | Pred (_, args) -> List.concat_map Hterm.heap_reads args @ acc
  | Ghost _ -> acc
  | Sep (p, q) | Wand (p, q) | And (p, q) | Or (p, q) ->
      heap_reads (heap_reads acc p) q
  | Exists (_, p) | Forall (_, p) | Persistently p | Later p | Upd p
  | Stabilize p ->
      heap_reads acc p
  | Wp (_, _, q) -> heap_reads acc q

(** The syntactic footprint: location terms for which the assertion
    itself owns a points-to chunk (any fraction). *)
let rec footprint acc = function
  | Points_to { loc; _ } -> loc :: acc
  | Sep (p, q) | And (p, q) -> footprint (footprint acc p) q
  | Exists (_, p) | Later p | Stabilize p -> footprint acc p
  | _ -> acc

(** Syntactic stability: no heap read escapes the assertion's own
    footprint. [Stabilize _] is stable by construction; connectives
    are stable when their parts are. This is the judgment the paper
    (as reconstructed) uses to admit unstable assertions into frames
    only after stabilization. *)
let stable (a : t) : bool =
  let fp = footprint [] a in
  let covered l = List.exists (Term.equal l) fp in
  let rec go = function
    | Pure t -> List.for_all covered (Hterm.heap_reads t)
    | Emp | Points_to _ | Ghost _ -> true
    | Pred _ -> true  (* definitions are checked stable at declaration *)
    | Sep (p, q) | And (p, q) | Or (p, q) -> go p && go q
    | Wand (_, q) -> go q
    | Exists (_, p) | Forall (_, p) | Persistently p | Later p | Upd p -> go p
    | Stabilize _ -> true
    | Wp _ -> true  (* WP quantifies over the global state itself *)
  in
  go a

(* ------------------------------------------------------------------ *)
(* Constructors and sugar *)

let pure t = Pure t
let tru = Pure Term.tru
let fls = Pure Term.fls
let points_to ?(frac = Q.one) loc value = Points_to { loc; frac; value }
let sep a b = match (a, b) with Emp, x | x, Emp -> x | _ -> Sep (a, b)

(** Right-nested separating conjunction of a list, so that
    [seps (x :: xs) = Sep (x, seps xs)] whenever [xs] is nonempty —
    the proof-mode tactics rely on this definitional equality. *)
let rec seps = function [] -> Emp | [ x ] -> x | x :: xs -> Sep (x, seps xs)
let wand a b = Wand (a, b)
let exists x p = Exists (x, p)
let later p = Later p
let upd p = Upd p
let stabilize p = Stabilize p
let wp e v q = Wp (e, v, q)
let own g v = Ghost (g, v)

(** Flatten top-level separating conjunctions. *)
let rec conjuncts = function
  | Sep (a, b) -> conjuncts a @ conjuncts b
  | Emp -> []
  | a -> [ a ]
