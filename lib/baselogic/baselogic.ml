(** The destabilized Iris base logic.

    - {!Hterm}: heap-dependent terms ([!l] inside pure assertions);
    - {!Ghost_val}: symbolic camera elements;
    - {!Assertion}: the assertion language with [Stabilize];
    - {!Semantics}: finite-model semantics used to model-check rules;
    - {!Kernel}: the LCF-style proof kernel. *)

module Hterm = Hterm
module Ghost_val = Ghost_val
module Assertion = Assertion
module Semantics = Semantics
module Kernel = Kernel
module Elab = Elab
