(** Implementation of the proof kernel. See the interface for the
    reading guide. Every rule here is model-checked against
    {!Semantics.eval} by the test suite. *)

open Stdx
module A = Assertion
module T = Smt.Term
module HL = Heaplang.Ast

type theorem = { penv : A.pred_env; lhs : A.t; rhs : A.t }

let penv t = t.penv
let lhs t = t.lhs
let rhs t = t.rhs
let pp ppf t = Fmt.pf ppf "@[%a@ ⊢ %a@]" A.pp t.lhs A.pp t.rhs

exception Rule_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Rule_error s)) fmt

(* Atomic so the kernel-rule account stays coherent even if theorems
   are built from several domains (the parallel engine itself only runs
   the automated verifier, but nothing should silently under-count). *)
let rules = Atomic.make 0
let rule_count () = Atomic.get rules
let reset_rule_count () = Atomic.set rules 0

let mk ?(penv = Smap.empty) lhs rhs =
  Atomic.incr rules;
  { penv; lhs; rhs }

(** Predicate environments must agree when theorems are composed; an
    empty environment is compatible with anything. *)
let join_penv p1 p2 =
  if Smap.is_empty p1 then p2
  else if Smap.is_empty p2 then p1
  else if Smap.equal (fun a b -> a == b) p1 p2 then p1
  else fail "incompatible predicate environments"

(* ------------------------------------------------------------------ *)
(* Structural *)

let refl ?penv p = mk ?penv p p

let trans t1 t2 =
  if A.equal t1.rhs t2.lhs then
    mk ~penv:(join_penv t1.penv t2.penv) t1.lhs t2.rhs
  else fail "trans: %a vs %a" A.pp t1.rhs A.pp t2.lhs

(* ------------------------------------------------------------------ *)
(* Separating conjunction *)

let sep_comm ?penv p q = mk ?penv (A.Sep (p, q)) (A.Sep (q, p))
let sep_assoc_r ?penv p q r =
  mk ?penv (A.Sep (A.Sep (p, q), r)) (A.Sep (p, A.Sep (q, r)))
let sep_assoc_l ?penv p q r =
  mk ?penv (A.Sep (p, A.Sep (q, r))) (A.Sep (A.Sep (p, q), r))

let sep_mono t1 t2 =
  mk
    ~penv:(join_penv t1.penv t2.penv)
    (A.Sep (t1.lhs, t2.lhs))
    (A.Sep (t1.rhs, t2.rhs))

let sep_weaken_l ?penv p q = mk ?penv (A.Sep (p, q)) q
let emp_sep_intro ?penv p = mk ?penv p (A.Sep (A.Emp, p))
let emp_sep_elim ?penv p = mk ?penv (A.Sep (A.Emp, p)) p

let wand_intro t =
  match t.lhs with
  | A.Sep (p, q) ->
      (* Wands quantify over the globals compatible with the combined
         resource, so the retained context [p] must be stable — the
         destabilized logic's tax on magic wands. Unstable facts must
         be resolved against the footprint first (see
         [Assertion.stable]). *)
      if not (A.stable p) then
        fail "wand_intro: retained context is not stable: %a" A.pp p
      else mk ~penv:t.penv p (A.Wand (q, t.rhs))
  | _ -> fail "wand_intro: LHS not a separating conjunction"

let wand_elim ?penv q r = mk ?penv (A.Sep (A.Wand (q, r), q)) r

(* ------------------------------------------------------------------ *)
(* Conjunction / disjunction *)

let and_intro t1 t2 =
  if A.equal t1.lhs t2.lhs then
    mk ~penv:(join_penv t1.penv t2.penv) t1.lhs (A.And (t1.rhs, t2.rhs))
  else fail "and_intro: different hypotheses"

let and_elim_l ?penv p q = mk ?penv (A.And (p, q)) p
let and_elim_r ?penv p q = mk ?penv (A.And (p, q)) q
let or_intro_l ?penv p q = mk ?penv p (A.Or (p, q))
let or_intro_r ?penv p q = mk ?penv q (A.Or (p, q))

(** Classical introduction of [⌜φ⌝ ∨ R]: from
    [seps (hyps @ [⌜¬φ⌝]) ⊢ R] conclude [seps hyps ⊢ ⌜φ⌝ ∨ R] (our
    pure assertions are two-valued). *)
let or_classical hyps phi r t =
  if not (A.equal t.lhs (A.seps (hyps @ [ A.Pure (T.not_ phi) ]))) then
    fail "or_classical: hypothesis mismatch";
  if not (A.equal t.rhs r) then fail "or_classical: conclusion mismatch";
  mk ~penv:t.penv (A.seps hyps) (A.Or (A.Pure phi, r))

let or_elim t1 t2 =
  if A.equal t1.rhs t2.rhs then
    mk ~penv:(join_penv t1.penv t2.penv) (A.Or (t1.lhs, t2.lhs)) t1.rhs
  else fail "or_elim: different conclusions"

(* ------------------------------------------------------------------ *)
(* Pure assertions: the SMT gateway *)

(** Heap reads are opaque to the solver: [!l] is an uninterpreted
    function, so solver-validity means validity for every heap. The
    syntactic fast paths matter: the proof mode's structural glue
    entailments match chunks verbatim, and must not pay a solver call
    each. *)
let smt_entails hyps goal =
  T.equal goal T.tru
  || List.exists (T.equal goal) hyps
  || (match T.view goal with
     | T.Eq (a, b) -> T.equal a b
     | _ -> false)
  || Smt.Solver.entails_bool ~hyps goal

let pure_intro ?penv p phi =
  if smt_entails [] phi then mk ?penv p (A.Pure phi)
  else fail "pure_intro: %a not valid" T.pp phi

let pure_entail ?penv ~hyps psi =
  if smt_entails hyps psi then
    mk ?penv (A.seps (List.map A.pure hyps)) (A.Pure psi)
  else fail "pure_entail: not entailed"

let pure_false_elim ?penv q = mk ?penv (A.Pure T.fls) q

(* ------------------------------------------------------------------ *)
(* Quantifiers *)

let exists_intro ?penv x p t = mk ?penv (A.subst1 x t p) (A.Exists (x, p))

let exists_elim x t =
  if List.mem x (A.free_vars t.rhs) then
    fail "exists_elim: %s free in conclusion" x
  else mk ~penv:t.penv (A.Exists (x, t.lhs)) t.rhs

(** Existential elimination inside a separating context: from
    [seps (before @ [P\[y/x\]] @ after) ⊢ Q] with [y] fresh, conclude
    [seps (before @ [∃x.P] @ after) ⊢ Q]. *)
let exists_elim_ctx ~before x y p ~after t =
  let fresh_in a = not (List.mem y (A.free_vars a)) in
  if not (List.for_all fresh_in (before @ after) && fresh_in (A.Exists (x, p))
          && fresh_in t.rhs) then
    fail "exists_elim_ctx: %s not fresh" y;
  let opened = A.seps (before @ [ A.subst1 x (T.var y) p ] @ after) in
  if not (A.equal t.lhs opened) then
    fail "exists_elim_ctx: hypothesis mismatch";
  mk ~penv:t.penv (A.seps (before @ [ A.Exists (x, p) ] @ after)) t.rhs

let forall_elim ?penv x p t = mk ?penv (A.Forall (x, p)) (A.subst1 x t p)

let forall_intro x t =
  if List.mem x (A.free_vars t.lhs) then
    fail "forall_intro: %s free in hypothesis" x
  else mk ~penv:t.penv t.lhs (A.Forall (x, t.rhs))

(* ------------------------------------------------------------------ *)
(* Heap assertions *)

let points_to_agree ?penv q q' l v w =
  mk ?penv
    (A.Sep (A.points_to ~frac:q l v, A.points_to ~frac:q' l w))
    (A.Pure (T.eq v w))

let points_to_split ?penv l q q' v =
  mk ?penv
    (A.points_to ~frac:(Q.add q q') l v)
    (A.Sep (A.points_to ~frac:q l v, A.points_to ~frac:q' l v))

let points_to_join ?penv l q q' v =
  let s = Q.add q q' in
  if Q.leq s Q.one then
    mk ?penv
      (A.Sep (A.points_to ~frac:q l v, A.points_to ~frac:q' l v))
      (A.points_to ~frac:s l v)
  else fail "points_to_join: fraction above 1"

(** [φ(!l)] resolves to [φ(v)] under [l ↦{q} v]: substituting the read
    both ways. The compatibility baked into entailment (local
    fragments agree with the global heap) makes this sound. *)
let resolve_at l v phi =
  Hterm.resolve (fun l' -> if T.equal l l' then Some v else None) phi

let deref_resolve ?penv q l v phi =
  mk ?penv
    (A.Sep (A.points_to ~frac:q l v, A.Pure phi))
    (A.Sep (A.points_to ~frac:q l v, A.Pure (resolve_at l v phi)))

let deref_intro ?penv q l v phi_with_reads =
  (* The caller supplies the *unresolved* formula; the resolved one is
     the hypothesis. *)
  mk ?penv
    (A.Sep (A.points_to ~frac:q l v, A.Pure (resolve_at l v phi_with_reads)))
    (A.Sep (A.points_to ~frac:q l v, A.Pure phi_with_reads))

(* ------------------------------------------------------------------ *)
(* Ghost state *)

let ghost_op_split ?penv g a b =
  match Ghost_val.compose a b with
  | Some (ab, _) -> mk ?penv (A.own g ab) (A.Sep (A.own g a, A.own g b))
  | None -> fail "ghost_op_split: composition undefined"

let ghost_op_join ?penv g a b =
  match Ghost_val.compose a b with
  | Some (ab, fact) ->
      mk ?penv
        (A.Sep (A.own g a, A.own g b))
        (A.Sep (A.own g ab, A.Pure fact))
  | None -> fail "ghost_op_join: composition undefined"

let ghost_valid ?penv g a =
  mk ?penv (A.own g a) (A.Sep (A.own g a, A.Pure (Ghost_val.valid_fact a)))

let ghost_update ?penv ~hyps g a b =
  match Ghost_val.update a b with
  | Some cond when smt_entails hyps cond ->
      mk ?penv
        (A.seps (List.map A.pure hyps @ [ A.own g a ]))
        (A.Upd (A.own g b))
  | Some _ -> fail "ghost_update: side condition not entailed"
  | None -> fail "ghost_update: unrecognized update pattern"

let ghost_alloc ?penv ~hyps g a =
  if smt_entails hyps (Ghost_val.valid_fact a) then
    mk ?penv (A.seps (List.map A.pure hyps)) (A.Upd (A.own g a))
  else fail "ghost_alloc: allocated element not valid"

(* ------------------------------------------------------------------ *)
(* Persistence *)

let persistently_elim ?penv p = mk ?penv (A.Persistently p) p

let persistently_intro t =
  if A.persistent t.lhs then mk ~penv:t.penv t.lhs (A.Persistently t.rhs)
  else fail "persistently_intro: hypothesis not persistent"

let persistent_dup ?penv p =
  if A.persistent p then mk ?penv p (A.Sep (p, p))
  else fail "persistent_dup: not persistent"

(* ------------------------------------------------------------------ *)
(* Later *)

let later_intro ?penv p = mk ?penv p (A.Later p)
let later_mono t = mk ~penv:t.penv (A.Later t.lhs) (A.Later t.rhs)

(* ------------------------------------------------------------------ *)
(* Update modality *)

let upd_intro ?penv p = mk ?penv p (A.Upd p)
let upd_mono t = mk ~penv:t.penv (A.Upd t.lhs) (A.Upd t.rhs)
let upd_trans ?penv p = mk ?penv (A.Upd (A.Upd p)) (A.Upd p)
let upd_frame ?penv p q = mk ?penv (A.Sep (p, A.Upd q)) (A.Upd (A.Sep (p, q)))

(* ------------------------------------------------------------------ *)
(* Stabilization *)

let stabilize_elim ?penv p = mk ?penv (A.Stabilize p) p

let stabilize_intro ?penv p =
  if A.stable p then mk ?penv p (A.Stabilize p)
  else fail "stabilize_intro: %a is not syntactically stable" A.pp p

let stabilize_mono t =
  mk ~penv:t.penv (A.Stabilize t.lhs) (A.Stabilize t.rhs)

let stabilize_sep ?penv p q =
  mk ?penv
    (A.Sep (A.Stabilize p, A.Stabilize q))
    (A.Stabilize (A.Sep (p, q)))

(* ------------------------------------------------------------------ *)
(* Predicates *)

let pred_body ~(penv : A.pred_env) name args =
  match Smap.find_opt name penv with
  | None -> fail "unknown predicate %s" name
  | Some def ->
      if List.length args <> List.length def.A.params then
        fail "predicate %s: arity mismatch" name
      else
        A.subst
          (Smap.of_list (List.map2 (fun x t -> (x, t)) def.A.params args))
          def.A.body

let pred_unfold ~penv name args =
  let body = pred_body ~penv name args in
  mk ~penv (A.Pred (name, args)) (A.Later body)

let pred_fold ~penv name args =
  let body = pred_body ~penv name args in
  mk ~penv (A.Later body) (A.Pred (name, args))

(* ------------------------------------------------------------------ *)
(* Affinity *)

let emp_intro ?penv p = mk ?penv p A.Emp

(* ------------------------------------------------------------------ *)
(* Automated entailment (the frame-matching macro rule)

   [entail_auto] proves [H1 ∗ … ∗ Hn ⊢ G] by consuming hypothesis
   chunks to match each conjunct of [G]: syntactically, up to
   SMT-provable equality of the terms involved, splitting fractional
   points-to chunks, weakening ghost elements along camera inclusion,
   and resolving heap reads in pure goals against owned points-to
   chunks (the destabilized logic's resolution principle). Pure
   hypotheses are persistent and never consumed. Soundness of the
   whole macro is model-checked in the test suite; each internal match
   counts as one rule application for proof-size accounting. *)

type ctx = {
  mutable cpures : T.t list;
  mutable chunks : A.t list;
  cwitnesses : (string * T.t) list;
}

exception No_match of string

let nope fmt = Fmt.kstr (fun s -> raise (No_match s)) fmt

(** Collect the pure knowledge of a hypothesis list: pure conjuncts
    plus validity facts of ghost chunks. *)
let pure_knowledge (hyps : A.t list) : T.t list =
  List.concat_map
    (fun h ->
      match h with
      | A.Pure t -> [ t ]
      | A.Ghost (_, gv) -> [ Ghost_val.valid_fact gv ]
      | A.Points_to _ -> []
      | _ -> [])
    (List.concat_map A.conjuncts hyps)

(** Resolve the heap reads of [phi] against the context's points-to
    chunks (without consuming them — reading is persistent-ish). *)
let resolve_reads ctx phi =
  Hterm.resolve
    (fun l ->
      List.find_map
        (function
          | A.Points_to { loc; value; _ }
            when smt_entails ctx.cpures (T.eq l loc) ->
              Some value
          | _ -> None)
        ctx.chunks)
    phi

let take_chunk ctx pred =
  match Listx.find_remove pred ctx.chunks with
  | Some (c, rest) ->
      ctx.chunks <- rest;
      Some c
  | None -> None

let rec prove_goal ctx (goal : A.t) : unit =
  Atomic.incr rules;
  (* Strategy 0: an exactly matching chunk. *)
  match take_chunk ctx (A.equal goal) with
  | Some _ -> ()
  | None -> (
      match goal with
      | A.Emp -> ()
      | A.Pure phi ->
          let phi = resolve_reads ctx phi in
          if not (smt_entails ctx.cpures phi) then
            nope "pure goal %a not entailed" T.pp phi
      | A.Sep (p, q) ->
          prove_goal ctx p;
          prove_goal ctx q
      | A.And (p, q) ->
          (* Both conjuncts must hold of the same resource: prove each
             against a private copy, then conservatively consume
             everything either branch consumed (we drop the rest). *)
          let saved = ctx.chunks in
          prove_goal ctx p;
          let after_p = ctx.chunks in
          ctx.chunks <- saved;
          prove_goal ctx q;
          let after_q = ctx.chunks in
          ctx.chunks <-
            List.filter (fun c -> List.memq c after_q) after_p
      | A.Or (p, q) -> (
          (* Classical strengthening: to prove ⌜φ⌝ ∨ ψ it suffices to
             prove ψ under ¬φ (and symmetrically) — this is how loop
             postconditions receive the negated guard. *)
          let with_pure extra goal =
            let ctx' = { ctx with cpures = extra :: ctx.cpures } in
            prove_goal ctx' goal;
            ctx.chunks <- ctx'.chunks
          in
          let saved = ctx.chunks in
          match
            match (p, q) with
            | A.Pure phi, _ when not (smt_entails ctx.cpures phi) ->
                with_pure (T.not_ phi) q
            | _, A.Pure psi when not (smt_entails ctx.cpures psi) ->
                with_pure (T.not_ psi) p
            | _ -> prove_goal ctx p
          with
          | () -> ()
          | exception No_match _ ->
              ctx.chunks <- saved;
              prove_goal ctx q)
      | A.Points_to { loc; frac; value } -> (
          (* Coalesce fractional chunks at this location first: two
             chunks with provably equal locations agree on the value
             (their composition is valid), so they merge. *)
          let mine, others =
            List.partition
              (function
                | A.Points_to { loc = l'; _ } ->
                    T.equal loc l' || smt_entails ctx.cpures (T.eq loc l')
                | _ -> false)
              ctx.chunks
          in
          (match mine with
          | A.Points_to first :: (_ :: _ as rest) ->
              let q =
                List.fold_left
                  (fun q c ->
                    match c with
                    | A.Points_to { frac = q'; _ } -> Q.add q q'
                    | _ -> q)
                  first.frac rest
              in
              ctx.chunks <-
                A.points_to ~frac:q first.loc first.value :: others
          | _ -> ());
          let found =
            take_chunk ctx (function
              | A.Points_to { loc = l'; frac = q'; value = _ } ->
                  Q.geq q' frac && smt_entails ctx.cpures (T.eq loc l')
              | _ -> false)
          in
          match found with
          | Some (A.Points_to { loc = l'; frac = q'; value = v' }) ->
              if not (smt_entails ctx.cpures (T.eq value v')) then
                nope "points-to %a: value mismatch (%a vs %a)" T.pp loc T.pp
                  value T.pp v';
              if Q.gt q' frac then
                ctx.chunks <-
                  A.points_to ~frac:(Q.sub q' frac) l' v' :: ctx.chunks
          | _ -> nope "no points-to chunk for %a" T.pp loc)
      | A.Ghost (g, gv) -> (
          let found =
            take_chunk ctx (function
              | A.Ghost (g', gv') ->
                  String.equal g g'
                  && (match Ghost_val.sub_condition ~goal:gv ~chunk:gv' with
                     | Some cond -> smt_entails ctx.cpures cond
                     | None -> false)
              | _ -> false)
          in
          match found with
          | Some _ -> ()
          | None -> nope "no ghost chunk for %s" g)
      | A.Pred (p, args) -> (
          let found =
            take_chunk ctx (function
              | A.Pred (p', args') ->
                  String.equal p p'
                  && List.length args = List.length args'
                  && List.for_all2
                       (fun a b -> smt_entails ctx.cpures (T.eq a b))
                       args args'
              | _ -> false)
          in
          match found with
          | Some _ -> ()
          | None -> nope "no predicate chunk %s" p)
      | A.Exists (x, body) -> (
          let try_witness t =
            let saved = ctx.chunks in
            match prove_goal ctx (A.subst1 x t body) with
            | () -> true
            | exception No_match _ ->
                ctx.chunks <- saved;
                false
          in
          let hinted =
            match List.assoc_opt x ctx.cwitnesses with
            | Some t -> try_witness t
            | None -> false
          in
          if not hinted then
            let candidates = infer_witnesses ctx x body in
            if not (List.exists try_witness candidates) then
              nope "no witness for ∃%s" x)
      | A.Later p -> prove_goal ctx p  (* P ⊢ ▷P *)
      | A.Upd p -> prove_goal ctx p  (* P ⊢ |==>P *)
      | A.Stabilize p ->
          if A.stable p then begin
            (* Facts that read the heap beyond the goal's own footprint
               do not survive stabilization: prove [p] from the
               heap-independent fragment of the pure context. The
               resolved variants added at context creation keep the
               information that was covered by owned chunks. *)
            let stable_pures =
              List.filter (fun t -> not (Hterm.heap_dependent t)) ctx.cpures
            in
            let ctx' = { ctx with cpures = stable_pures } in
            prove_goal ctx' p;
            ctx.chunks <- ctx'.chunks
          end
          else nope "goal under ⌊·⌋ is not syntactically stable"
      | A.Persistently p ->
          if A.persistent p then prove_goal ctx p
          else nope "□ goal not persistent"
      | A.Wand (A.Pure phi, rhs) ->
          (* A wand from a pure assertion adds no resources, only the
             fact. *)
          let ctx' = { ctx with cpures = phi :: ctx.cpures } in
          prove_goal ctx' rhs;
          ctx.chunks <- ctx'.chunks
      | A.Forall _ | A.Wand _ | A.Wp _ ->
          nope "no matching chunk for %a" A.pp goal)

(** Witness inference for ∃x: unify the body's chunk-shaped conjuncts
    against available chunks and collect the terms x would have to
    equal. *)
and infer_witnesses ctx x body : T.t list =
  let rec peel = function A.Exists (_, p) -> peel p | p -> p in
  let body = peel body in
  let cands = ref [] in
  let is_x t =
    match T.view t with T.Var (y, _) -> String.equal y x | _ -> false
  in
  let consider pat chunk =
    match (pat, chunk) with
    | ( A.Points_to { loc; value; _ },
        A.Points_to { loc = l'; value = v'; _ } ) ->
        if is_x value then begin
          if smt_entails ctx.cpures (T.eq loc l') then cands := v' :: !cands
        end
        else if is_x loc then
          if smt_entails ctx.cpures (T.eq value v') then cands := l' :: !cands
    | ( A.Ghost (g, Ghost_val.Auth_nat { auth = Some a; _ }),
        A.Ghost (g', Ghost_val.Auth_nat { auth = Some n'; _ }) )
      when is_x a && String.equal g g' ->
        cands := n' :: !cands
    | A.Ghost (g, Ghost_val.Agree a), A.Ghost (g', Ghost_val.Agree v')
      when is_x a && String.equal g g' ->
        cands := v' :: !cands
    | A.Pred (p, args), A.Pred (p', args')
      when String.equal p p' && List.length args = List.length args' ->
        List.iter2
          (fun a a' -> if is_x a then cands := a' :: !cands)
          args args'
    | _ -> ()
  in
  List.iter
    (fun pat -> List.iter (consider pat) ctx.chunks)
    (A.conjuncts body);
  (* Heap reads make good witnesses too: ∃n. ⌜n = !l⌝ … *)
  List.iter
    (fun pat ->
      match pat with
      | A.Pure t -> (
          match T.view t with
          | T.Eq (lhs, rhs) when is_x lhs ->
              cands := resolve_reads ctx rhs :: !cands
          | T.Eq (lhs, rhs) when is_x rhs ->
              cands := resolve_reads ctx lhs :: !cands
          | _ -> ())
      | _ -> ())
    (A.conjuncts body);
  Listx.take 8 (List.rev !cands)

let entail_auto ?penv ?(witnesses = []) (hyps : A.t list) (goal : A.t) :
    theorem =
  let chunks =
    List.concat_map A.conjuncts hyps
    |> List.filter (function A.Pure _ -> false | _ -> true)
  in
  let ctx =
    { cpures = pure_knowledge hyps; chunks; cwitnesses = witnesses }
  in
  (* Heap-dependent pure facts also yield their resolution against the
     owned chunks (sound: local fragments agree with the global heap),
     which is the stable form that survives mutation. *)
  let resolved =
    List.filter_map
      (fun t ->
        if Hterm.heap_dependent t then
          let t' = resolve_reads ctx t in
          if Hterm.heap_dependent t' then None else Some t'
        else None)
      ctx.cpures
  in
  ctx.cpures <- ctx.cpures @ resolved;
  (* Pre-resolve the goal's pure parts against the *initial* chunks, so
     a pure conjunct may read a location whose chunk another conjunct
     of the same goal consumes (same argument as [deref_resolve]). *)
  let rec resolve_goal (a : A.t) : A.t =
    match a with
    | A.Pure phi -> A.Pure (resolve_reads ctx phi)
    | A.Emp | A.Points_to _ | A.Ghost _ | A.Pred _ -> a
    | A.Sep (p, q) -> A.Sep (resolve_goal p, resolve_goal q)
    | A.And (p, q) -> A.And (resolve_goal p, resolve_goal q)
    | A.Or (p, q) -> A.Or (resolve_goal p, resolve_goal q)
    | A.Exists (x, p) -> A.Exists (x, resolve_goal p)
    | A.Forall (x, p) -> A.Forall (x, resolve_goal p)
    | A.Stabilize p -> A.Stabilize (resolve_goal p)
    | A.Later p -> A.Later (resolve_goal p)
    | A.Upd p -> A.Upd (resolve_goal p)
    | A.Persistently p -> A.Persistently (resolve_goal p)
    | A.Wand _ | A.Wp _ -> a
  in
  (* Prove the resolved form; the emitted theorem keeps the original
     goal (sound: in-context, each read equals the owned chunk's
     value — the deref_intro principle). *)
  let resolved_goal = resolve_goal goal in
  (match prove_goal ctx resolved_goal with
  | () -> ()
  | exception No_match m ->
      fail "entail_auto:@ %s@ hyps: %a@ goal: %a" m
        (Fmt.list ~sep:Fmt.comma A.pp) hyps A.pp goal);
  mk ?penv (A.seps hyps) goal

(** Stabilize a hypothesis list: heap-dependent pure hypotheses are
    replaced by their resolution against the list's own points-to
    chunks (sound, since local fragments agree with the global heap)
    or dropped when unresolvable; other unstable hypotheses are
    dropped. The result is pointwise stable, as [wand_intro]
    requires. This is *not* a proof rule — the bridging entailment
    [seps hyps ⊢ seps (scrub hyps)] is proved by [entail_auto]. *)
let scrub (hyps : A.t list) : A.t list =
  let all = List.concat_map A.conjuncts hyps in
  let pures = pure_knowledge hyps in
  let resolve phi =
    Hterm.resolve
      (fun l ->
        List.find_map
          (function
            | A.Points_to { loc; value; _ }
              when T.equal l loc || smt_entails pures (T.eq l loc) ->
                Some value
            | _ -> None)
          all)
      phi
  in
  List.filter_map
    (fun h ->
      match h with
      | A.Pure phi when Hterm.heap_dependent phi ->
          let phi' = resolve phi in
          if Hterm.heap_dependent phi' then None else Some (A.Pure phi')
      | h -> if A.stable h then Some h else None)
    hyps

(** Focus a points-to chunk for location [loc]: returns
    [seps hyps ⊢ loc ↦{q} v ∗ seps rest] together with [q], [v] and the
    remaining hypotheses. *)
let focus_points_to ?penv (hyps : A.t list) (loc : T.t) :
    theorem * Q.t * T.t * A.t list =
  let pures = pure_knowledge hyps in
  let all = List.concat_map A.conjuncts hyps in
  match
    Listx.find_remove
      (function
        | A.Points_to { loc = l'; _ } -> smt_entails pures (T.eq loc l')
        | _ -> false)
      all
  with
  | Some (A.Points_to { frac; value; _ }, rest) ->
      ( mk ?penv (A.seps hyps)
          (A.Sep (A.points_to ~frac loc value, A.seps rest)),
        frac,
        value,
        rest )
  | _ -> fail "focus_points_to: no chunk for %a" T.pp loc

(** Focus the ghost chunk named [g]. *)
let focus_ghost ?penv (hyps : A.t list) (g : string) :
    theorem * Ghost_val.t * A.t list =
  let all = List.concat_map A.conjuncts hyps in
  match
    Listx.find_remove
      (function A.Ghost (g', _) -> String.equal g g' | _ -> false)
      all
  with
  | Some ((A.Ghost (_, gv) as chunk), rest) ->
      (mk ?penv (A.seps hyps) (A.Sep (chunk, A.seps rest)), gv, rest)
  | _ -> fail "focus_ghost: no ghost chunk %s" g

(** Focus the predicate chunk [p(args)] (args matched by SMT). *)
let focus_pred ?penv (hyps : A.t list) (p : string) (args : T.t list) :
    theorem * T.t list * A.t list =
  let pures = pure_knowledge hyps in
  let all = List.concat_map A.conjuncts hyps in
  match
    Listx.find_remove
      (function
        | A.Pred (p', args') ->
            String.equal p p'
            && List.length args = List.length args'
            && List.for_all2
                 (fun a b -> smt_entails pures (T.eq a b))
                 args args'
        | _ -> false)
      all
  with
  | Some (A.Pred (_, args'), rest) ->
      ( mk ?penv (A.seps hyps)
          (A.Sep (A.Pred (p, args'), A.seps rest)),
        args',
        rest )
  | _ -> fail "focus_pred: no chunk %s" p

(* ------------------------------------------------------------------ *)
(* Weakest preconditions *)

(** Term encoding of a first-order program value. *)
let value_term : HL.value -> T.t option = function
  | HL.Unit -> Some (T.int 0)
  | HL.Bool b -> Some (T.int (if b then 1 else 0))
  | HL.Int n -> Some (T.int n)
  | HL.Loc l -> Some (T.int l)
  | HL.Sym x -> Some (T.var x)
  | HL.Pair _ | HL.InjL _ | HL.InjR _ | HL.RecV _ -> None

let wp_value ?penv v x q =
  match value_term v with
  | Some t -> mk ?penv (A.subst1 x t q) (A.Wp (HL.Val v, x, q))
  | None -> fail "wp_value: value has no term encoding"

let wp_mono e x y q1 q2 t =
  let fresh_ok a = not (List.mem y (A.free_vars (A.Exists (x, a)))) in
  if not (fresh_ok q1 && fresh_ok q2) then fail "wp_mono: %s not fresh" y
  else if
    A.equal t.lhs (A.subst1 x (T.var y) q1)
    && A.equal t.rhs (A.subst1 x (T.var y) q2)
  then mk ~penv:t.penv (A.Wp (e, x, q1)) (A.Wp (e, x, q2))
  else fail "wp_mono: theorem does not match postconditions"

let wp_frame ?penv p e x q =
  if List.mem x (A.free_vars p) then fail "wp_frame: %s free in frame" x
  else mk ?penv (A.Sep (p, A.Wp (e, x, q))) (A.Wp (e, x, A.Sep (p, q)))

(** Pure (heap-free, deterministic) head reduction. *)
let pure_head_step (e : HL.expr) : HL.expr option =
  match e with
  | HL.App (HL.Val (HL.RecV (f, x, body) as clo), HL.Val arg) ->
      let body = Heaplang.Subst.subst x arg body in
      Some
        (match f with
        | Some f -> Heaplang.Subst.subst f clo body
        | None -> body)
  | HL.Rec (f, x, body) -> Some (HL.Val (HL.RecV (f, x, body)))
  | HL.Let (x, HL.Val v, body) -> Some (Heaplang.Subst.subst x v body)
  | HL.Seq (HL.Val _, b) -> Some b
  | HL.If (HL.Val (HL.Bool true), a, _) -> Some a
  | HL.If (HL.Val (HL.Bool false), _, b) -> Some b
  | HL.UnOp (op, HL.Val v) ->
      Option.map (fun v -> HL.Val v) (Heaplang.Step.eval_un_op op v)
  | HL.BinOp (op, HL.Val v1, HL.Val v2) ->
      Option.map (fun v -> HL.Val v) (Heaplang.Step.eval_bin_op op v1 v2)
  | HL.PairE (HL.Val a, HL.Val b) -> Some (HL.Val (HL.Pair (a, b)))
  | HL.Fst (HL.Val (HL.Pair (a, _))) -> Some (HL.Val a)
  | HL.Snd (HL.Val (HL.Pair (_, b))) -> Some (HL.Val b)
  | HL.InjLE (HL.Val v) -> Some (HL.Val (HL.InjL v))
  | HL.InjRE (HL.Val v) -> Some (HL.Val (HL.InjR v))
  | HL.Case (HL.Val (HL.InjL v), (x, l), _) ->
      Some (Heaplang.Subst.subst x v l)
  | HL.Case (HL.Val (HL.InjR v), _, (y, r)) ->
      Some (Heaplang.Subst.subst y v r)
  | HL.Assert (HL.Val (HL.Bool true)) -> Some (HL.Val HL.Unit)
  | _ -> None

let wp_pure_step ?penv e e' x q =
  match pure_head_step e with
  | Some e'' when e'' = e' -> mk ?penv (A.Wp (e', x, q)) (A.Wp (e, x, q))
  | Some e'' ->
      fail "wp_pure_step: %a steps to %a, not %a" HL.pp_expr e HL.pp_expr e''
        HL.pp_expr e'
  | None -> fail "wp_pure_step: %a is not a pure redex" HL.pp_expr e

(** Symbolic binary operations, 0/1-encoding booleans. Boolean
    operands are symbolic integers constrained to 0/1 by the callers'
    preconditions. Division is omitted (guarded by wp_pure_step on
    concrete values only). *)
let binop_term (op : HL.bin_op) (a : T.t) (b : T.t) : T.t option =
  let b01 t = T.ite t (T.int 1) (T.int 0) in
  match op with
  | HL.Add -> Some (T.add a b)
  | HL.Sub -> Some (T.sub a b)
  | HL.Mul -> Some (T.mul a b)
  | HL.Div | HL.Rem -> None
  | HL.Eq -> Some (b01 (T.eq a b))
  | HL.Ne -> Some (b01 (T.neq a b))
  | HL.Lt -> Some (b01 (T.lt a b))
  | HL.Le -> Some (b01 (T.le a b))
  | HL.Gt -> Some (b01 (T.gt a b))
  | HL.Ge -> Some (b01 (T.ge a b))
  | HL.AndOp -> Some (T.ite (T.eq a (T.int 0)) (T.int 0) b)
  | HL.OrOp -> Some (T.ite (T.eq a (T.int 0)) b (T.int 1))

(** Recover the program expression whose operands encode as [a], [b]:
    only variable and literal encodings are permitted, so the encoding
    is unambiguous. *)
let term_value (t : T.t) : HL.value option =
  match T.view t with
  | T.Var (x, _) -> Some (HL.Sym x)
  | T.Int_lit n -> Some (HL.Int n)
  | _ -> None

let wp_binop ?penv op a b x q =
  match (binop_term op a b, term_value a, term_value b) with
  | Some t, Some va, Some vb ->
      (* Boolean program operators work on Bool values; symbolic
         operands stand for any first-order value, and the 0/1 encoding
         is consistent across the kernel. *)
      mk ?penv (A.subst1 x t q)
        (A.Wp (HL.BinOp (op, HL.Val va, HL.Val vb), x, q))
  | None, _, _ -> fail "wp_binop: operator has no symbolic encoding"
  | _ -> fail "wp_binop: operands must be variables or literals"

let wp_if_sym ?penv b e1 e2 x q =
  match term_value b with
  | Some vb ->
      let zero = T.eq b (T.int 0) in
      mk ?penv
        (A.And
           ( A.Or (A.Pure zero, A.Wp (e1, x, q)),
             A.Or (A.Pure (T.not_ zero), A.Wp (e2, x, q)) ))
        (A.Wp (HL.If (HL.Val vb, e1, e2), x, q))
  | None -> fail "wp_if_sym: condition must be a variable or literal"

let wp_load ?penv frac lname v x q =
  let l = T.var lname in
  let pt = A.points_to ~frac l v in
  mk ?penv
    (A.Sep (pt, A.Wand (pt, A.subst1 x v q)))
    (A.Wp (HL.Load (HL.Val (HL.Sym lname)), x, q))

(* Heap mutation invalidates heap-dependent facts established before
   it: the continuation of every mutating rule sits under ⌊·⌋, so only
   assertions stable w.r.t. the mutated global survive. This is the
   destabilized logic's frame discipline (the whole reason the
   stabilization modality exists). *)

let wp_store ?penv lname v w wt x q =
  (match value_term w with
  | Some t when T.equal t wt -> ()
  | _ -> fail "wp_store: stored value does not encode to the given term");
  let l = T.var lname in
  mk ?penv
    (A.Sep
       ( A.points_to l v,
         A.Wand (A.points_to l wt, A.subst1 x (T.int 0) q) ))
    (A.Wp (HL.Store (HL.Val (HL.Sym lname), HL.Val w), x, q))

let wp_alloc ?penv v vt lname x q =
  (match value_term v with
  | Some t when T.equal t vt -> ()
  | _ -> fail "wp_alloc: value does not encode to the given term");
  if List.mem lname (A.free_vars (A.Exists (x, q))) then
    fail "wp_alloc: %s not fresh in postcondition" lname
  else
    mk ?penv
      (A.Forall
         ( lname,
           A.Wand
             ( A.points_to (T.var lname) vt,
               A.subst1 x (T.var lname) q ) ))
      (A.Wp (HL.Alloc (HL.Val v), x, q))

let wp_free ?penv lname v x q =
  mk ?penv
    (A.Sep (A.points_to (T.var lname) v, A.subst1 x (T.int 0) q))
    (A.Wp (HL.Free (HL.Val (HL.Sym lname)), x, q))

let wp_faa ?penv lname v d x q =
  match term_value d with
  | Some vd ->
      let l = T.var lname in
      mk ?penv
        (A.Sep
           ( A.points_to l v,
             A.Wand (A.points_to l (T.add v d), A.subst1 x v q) ))
        (A.Wp (HL.Faa (HL.Val (HL.Sym lname), HL.Val vd), x, q))
  | None -> fail "wp_faa: delta must be a variable or literal"

let wp_let ?penv xprog e1 e2 y r q =
  if List.mem y (A.free_vars (A.Exists (r, q))) then
    fail "wp_let: %s not fresh" y
  else
    let e2' = Heaplang.Subst.subst xprog (HL.Sym y) e2 in
    mk ?penv
      (A.Wp (e1, y, A.Wp (e2', r, q)))
      (A.Wp (HL.Let (xprog, e1, e2), r, q))

let wp_seq ?penv e1 e2 y r q =
  if List.mem y (A.free_vars (A.Exists (r, q))) then
    fail "wp_seq: %s not fresh" y
  else
    mk ?penv (A.Wp (e1, y, A.Wp (e2, r, q))) (A.Wp (HL.Seq (e1, e2), r, q))

let wp_assert ?penv b x q =
  match term_value b with
  | Some vb ->
      mk ?penv
        (A.And
           ( A.Pure (T.not_ (T.eq b (T.int 0))),
             A.subst1 x (T.int 0) q ))
        (A.Wp (HL.Assert (HL.Val vb), x, q))
  | None -> fail "wp_assert: condition must be a variable or literal"

(* Named variants: the continuation receives a fresh name [z] plus the
   defining equation, so only variables ever cross into program syntax
   (the tactic layer's A-normal discipline). Each is derivable from the
   unnamed rule plus forall/wand/pure reasoning. *)

let named_post z t x q =
  A.Forall (z, A.Wand (A.Pure (T.eq (T.var z) t), A.subst1 x (T.var z) q))

let check_fresh who z x q hyp_terms =
  if
    List.mem z (A.free_vars (A.Exists (x, q)))
    || List.exists (fun t -> List.mem_assoc z (T.vars t)) hyp_terms
  then fail "%s: %s not fresh" who z

let wp_binop_n ?penv op a b z x q =
  match (binop_term op a b, term_value a, term_value b) with
  | Some t, Some va, Some vb ->
      check_fresh "wp_binop_n" z x q [ a; b ];
      mk ?penv (named_post z t x q)
        (A.Wp (HL.BinOp (op, HL.Val va, HL.Val vb), x, q))
  | None, _, _ -> fail "wp_binop_n: operator has no symbolic encoding"
  | _ -> fail "wp_binop_n: operands must be variables or literals"

let wp_load_n ?penv frac lname v z x q =
  check_fresh "wp_load_n" z x q [ T.var lname; v ];
  let pt = A.points_to ~frac (T.var lname) v in
  mk ?penv
    (A.Sep (pt, A.Wand (pt, named_post z v x q)))
    (A.Wp (HL.Load (HL.Val (HL.Sym lname)), x, q))

let wp_faa_n ?penv lname v d z x q =
  match term_value d with
  | Some vd ->
      check_fresh "wp_faa_n" z x q [ T.var lname; v; d ];
      let l = T.var lname in
      mk ?penv
        (A.Sep
           ( A.points_to l v,
             A.Wand (A.points_to l (T.add v d), named_post z v x q) ))
        (A.Wp (HL.Faa (HL.Val (HL.Sym lname), HL.Val vd), x, q))
  | None -> fail "wp_faa_n: delta must be a variable or literal"

let wp_if_wand ?penv b e1 e2 x q =
  match term_value b with
  | Some vb ->
      let zero = T.eq b (T.int 0) in
      mk ?penv
        (A.And
           ( A.Wand (A.Pure (T.not_ zero), A.Wp (e1, x, q)),
             A.Wand (A.Pure zero, A.Wp (e2, x, q)) ))
        (A.Wp (HL.If (HL.Val vb, e1, e2), x, q))
  | None -> fail "wp_if_wand: condition must be a variable or literal"

let wp_while ~penv ~inv ~body_pre ~cond ~body ~cond_thm ~body_thm x q =
  (* cond_thm : inv ⊢ WP cond {b. (⌜b=0⌝ ∨ body_pre) ∧ (⌜b≠0⌝ ∨ Q[0/x])} *)
  let q0 = A.subst1 x (T.int 0) q in
  (match cond_thm.rhs with
  | A.Wp (c, b, post)
    when c == cond || c = cond ->
      let expected =
        A.And
          ( A.Or (A.Pure (T.eq (T.var b) (T.int 0)), body_pre),
            A.Or (A.Pure (T.not_ (T.eq (T.var b) (T.int 0))), q0) )
      in
      if not (A.equal post expected) then
        fail "wp_while: condition postcondition mismatch:@ %a@ vs@ %a" A.pp
          post A.pp expected;
      if not (A.equal cond_thm.lhs inv) then
        fail "wp_while: condition theorem must assume the invariant"
  | _ -> fail "wp_while: cond_thm is not a WP for the condition");
  (match body_thm.rhs with
  | A.Wp (bd, y, post)
    when (bd == body || bd = body)
         && A.equal post inv
         && not (List.mem y (A.free_vars inv)) ->
      if not (A.equal body_thm.lhs body_pre) then
        fail "wp_while: body theorem must assume the body precondition"
  | _ -> fail "wp_while: body_thm is not a WP of the body ending in inv");
  mk
    ~penv:(join_penv penv (join_penv cond_thm.penv body_thm.penv))
    inv
    (A.Wp (HL.While (cond, body), x, q))
