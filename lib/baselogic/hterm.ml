(** Heap-dependent terms.

    The destabilized logic's pure assertions may *read the heap*: the
    term language is {!Smt.Term} extended with a reserved uninterpreted
    symbol [!deref] applied to a location term. Reusing the solver's
    term type means heap-independent formulas flow to the solver
    unchanged, and heap-dependent ones are compiled by the symbolic
    executor (each read replaced by the symbolic contents of a matching
    points-to chunk) before discharge.

    This module owns the reserved symbol and the analyses around it. *)

open Smt

let deref_symbol = "!deref"

(** [deref l] is the heap read [!l] as a term. *)
let deref (l : Term.t) : Term.t = Term.app deref_symbol [ l ]

let is_deref t =
  match Term.view t with
  | Term.App (f, [ _ ]) -> String.equal f deref_symbol
  | _ -> false

(** All location terms read by [t], outermost first. A term is
    heap-dependent iff this is nonempty. *)
let rec reads acc (t : Term.t) : Term.t list =
  match Term.view t with
  | Term.App (f, [ l ]) when String.equal f deref_symbol ->
      l :: reads acc l
  | Term.Var _ | Term.Int_lit _ | Term.True | Term.False -> acc
  | Term.App (_, args) | Term.Pred (_, args) ->
      List.fold_left reads acc args
  | Term.Add (a, b) | Term.Sub (a, b) | Term.Mul (a, b) | Term.Eq (a, b)
  | Term.Le (a, b) | Term.Lt (a, b) | Term.Implies (a, b) | Term.Iff (a, b) ->
      reads (reads acc a) b
  | Term.Ite (c, a, b) -> reads (reads (reads acc c) a) b
  | Term.Not a -> reads acc a
  | Term.And ts | Term.Or ts -> List.fold_left reads acc ts

let heap_reads t = reads [] t
let heap_dependent t = heap_reads t <> []

(** Substitute heap reads: [resolve lookup t] replaces each [!l] by
    [lookup l] (innermost reads first, so nested reads like [!(!l)]
    resolve correctly). [lookup] returns [None] to leave a read in
    place. *)
let rec resolve (lookup : Term.t -> Term.t option) (t : Term.t) : Term.t =
  let go = resolve lookup in
  match Term.view t with
  | Term.App (f, [ l ]) when String.equal f deref_symbol -> (
      let l = go l in
      match lookup l with Some v -> v | None -> deref l)
  | Term.Var _ | Term.Int_lit _ | Term.True | Term.False -> t
  | Term.App (f, args) -> Term.app f (List.map go args)
  | Term.Pred (f, args) -> Term.pred f (List.map go args)
  | Term.Add (a, b) -> Term.add (go a) (go b)
  | Term.Sub (a, b) -> Term.sub (go a) (go b)
  | Term.Mul (a, b) -> Term.mul (go a) (go b)
  | Term.Ite (c, a, b) -> Term.ite (go c) (go a) (go b)
  | Term.Eq (a, b) -> Term.eq (go a) (go b)
  | Term.Le (a, b) -> Term.le (go a) (go b)
  | Term.Lt (a, b) -> Term.lt (go a) (go b)
  | Term.Not a -> Term.not_ (go a)
  | Term.And ts -> Term.and_ (List.map go ts)
  | Term.Or ts -> Term.or_ (List.map go ts)
  | Term.Implies (a, b) -> Term.implies (go a) (go b)
  | Term.Iff (a, b) -> Term.iff (go a) (go b)
