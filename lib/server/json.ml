(** A minimal JSON layer for the daemon protocol.

    The sealed package set has no JSON library; the repo already {e
    emits} JSON by hand (the [--json] renderers, [Diag.to_json]) but
    the daemon must also {e parse} requests, so this module adds the
    missing half: a small recursive-descent parser plus a single-line
    printer. [Raw] lets responses splice the existing renderers'
    pre-formatted output verbatim instead of re-encoding it. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string  (** pre-rendered JSON, spliced by the printer *)

(* --------------------------------------------------------------- *)
(* Printing (always a single line — the protocol is line-delimited) *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%g" f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          write b (Str k);
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'
  | Raw s ->
      (* Trusted pre-rendered JSON; newlines would break the
         line-delimited framing, so squash them to spaces (JSON
         whitespace — string literals already escape theirs). *)
      String.iter
        (fun c -> Buffer.add_char b (if c = '\n' || c = '\r' then ' ' else c))
        s

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --------------------------------------------------------------- *)
(* Parsing *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let error c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected %c" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else error c (Printf.sprintf "expected %s" word)

(** Encode a Unicode scalar (from [\uXXXX]) as UTF-8. *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then error c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if c.pos >= String.length c.s then error c "bad escape";
        let e = c.s.[c.pos] in
        c.pos <- c.pos + 1;
        match e with
        | '"' | '\\' | '/' ->
            Buffer.add_char b e;
            go ()
        | 'n' -> Buffer.add_char b '\n'; go ()
        | 't' -> Buffer.add_char b '\t'; go ()
        | 'r' -> Buffer.add_char b '\r'; go ()
        | 'b' -> Buffer.add_char b '\b'; go ()
        | 'f' -> Buffer.add_char b '\012'; go ()
        | 'u' ->
            if c.pos + 4 > String.length c.s then error c "bad \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some u -> add_utf8 b u
            | None -> error c "bad \\u escape");
            go ()
        | _ -> error c "bad escape")
    | ch ->
        Buffer.add_char b ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let numeric ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && numeric c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some f -> Num f
  | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> error c "expected , or }"
        in
        fields []
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List (List.rev (v :: acc))
          | _ -> error c "expected , or ]"
        in
        items []
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s : (t, string) result =
  let c = { s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then error c "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

(* --------------------------------------------------------------- *)
(* Accessors *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let str_member k v = Option.bind (member k v) to_str
let num_member k v = Option.bind (member k v) to_num
let int_member k v = Option.bind (member k v) to_int
let bool_member k v = Option.bind (member k v) to_bool
