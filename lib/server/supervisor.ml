(** The daemon's supervision layer: worker isolation, circuit
    breaking, watchdog preemption, and admission control.

    The daemon of PR 6 already turns {e request}-level failures into
    error responses, and PR 5's budgets stop cooperative loops. What
    neither layer covers is the worker itself misbehaving: an
    exception (or [Out_of_memory], [Stack_overflow]) escaping the
    engine, a loop that stops polling its budget, or a single
    pathological request resubmitted forever. This module sits between
    the daemon's dispatch and the {!Scheduler}, and closes those
    gaps:

    - {b Isolation} ({!guard}): every request body runs under a
      catch-all on its worker; an escaping exception becomes a
      structured crash result for {e that request}, is counted against
      the worker's slot (the scheduler recycles a domain whose crash
      count says its domain-local state is suspect), and never
      propagates.
    - {b Circuit breaking}: crashes are also counted per {e request
      digest}; after [breaker_threshold] consecutive crashes the
      digest is quarantined — subsequent submissions are rejected
      immediately with a retry-after hint instead of being fed to
      another worker. After [breaker_cooldown_ms] a single probe is
      let through (half-open): success closes the circuit, another
      crash re-opens it.
    - {b Watchdog preemption} (with {!Stdx.Watchdog}): each guarded
      request with a known budget is watched from outside. At
      [budget × grace] the ambient budget is cancelled — a loop that
      still polls dies at its next poll point. At twice that the
      worker is declared lost: the watchdog answers the request on its
      behalf (through the daemon's once-only reply), tells the
      scheduler to {!Scheduler.abandon} the incarnation, and a fresh
      worker takes the slot. A non-polling loop costs one domain, not
      the daemon.
    - {b Admission control} ({!admit}): a global in-flight/queued
      budget above the scheduler's per-client bound. Above
      [max_inflight] pending requests, new solve work is shed with a
      [busy] + retry-after response; the daemon keeps serving lint and
      verdict-cache hits inline (degraded mode), so saturated solve
      capacity never makes the service unreachable.

    Chaos hooks: the [worker] fault site injects a crash into the
    guarded body, and the [stall] site wedges the worker in a
    deliberately non-polling spin until the watchdog writes it off —
    both are exercised by the seeded chaos gates, which require that
    neither ever flips a verdict or kills the process. *)

type config = {
  breaker_threshold : int;
      (** consecutive crashes of one digest before quarantine; 0 = off *)
  breaker_cooldown_ms : float;  (** quarantine duration before a probe *)
  max_inflight : int;  (** global pending-request budget; 0 = unbounded *)
  watchdog_grace : float;  (** budget multiplier before soft preemption *)
  watchdog_ms : float option;
      (** fixed watchdog budget override; [None] derives it from each
          request's own deadline/retry envelope *)
}

let default_config =
  {
    breaker_threshold = 3;
    breaker_cooldown_ms = 2_000.0;
    max_inflight = 256;
    watchdog_grace = Stdx.Watchdog.default_grace;
    watchdog_ms = None;
  }

type breaker_entry = {
  mutable consec : int;  (** consecutive crashes; success resets *)
  mutable opened_at : float;  (** when the circuit opened (consec hit N) *)
}

type t = {
  cfg : config;
  watchdog : Stdx.Watchdog.t;
  block : Mutex.t;  (** guards [breaker] *)
  breaker : (string, breaker_entry) Hashtbl.t;
  crashes : int Atomic.t;  (** guarded bodies that raised *)
  preempted : int Atomic.t;  (** requests answered by the watchdog *)
  stalls : int Atomic.t;  (** injected non-polling stalls *)
  breaker_trips : int Atomic.t;  (** circuits opened *)
  breaker_rejects : int Atomic.t;  (** requests rejected while open *)
  shed : int Atomic.t;  (** requests shed by admission control *)
  degraded : int Atomic.t;  (** requests served inline while saturated *)
}

let create ?(watchdog_interval_s = 0.05) (cfg : config) =
  {
    cfg;
    watchdog = Stdx.Watchdog.create ~interval_s:watchdog_interval_s ();
    block = Mutex.create ();
    breaker = Hashtbl.create 64;
    crashes = Atomic.make 0;
    preempted = Atomic.make 0;
    stalls = Atomic.make 0;
    breaker_trips = Atomic.make 0;
    breaker_rejects = Atomic.make 0;
    shed = Atomic.make 0;
    degraded = Atomic.make 0;
  }

let stop t = Stdx.Watchdog.stop t.watchdog

(* --------------------------------------------------------------- *)
(* Circuit breaker *)

(* The table is bounded defensively: a daemon fed millions of distinct
   digests must not grow it without limit, and entries below the
   threshold carry no decision. *)
let breaker_cap = 4096

let record_crash t digest =
  if t.cfg.breaker_threshold > 0 then
    Mutex.protect t.block (fun () ->
        if Hashtbl.length t.breaker > breaker_cap then begin
          let keep =
            Hashtbl.fold
              (fun k e acc ->
                if e.consec >= t.cfg.breaker_threshold then (k, e) :: acc
                else acc)
              t.breaker []
          in
          Hashtbl.reset t.breaker;
          List.iter (fun (k, e) -> Hashtbl.replace t.breaker k e) keep
        end;
        let e =
          match Hashtbl.find_opt t.breaker digest with
          | Some e -> e
          | None ->
              let e = { consec = 0; opened_at = 0.0 } in
              Hashtbl.replace t.breaker digest e;
              e
        in
        e.consec <- e.consec + 1;
        if e.consec >= t.cfg.breaker_threshold then begin
          (* Newly tripped, or a half-open probe that crashed: (re)open
             the circuit from now. *)
          if e.consec = t.cfg.breaker_threshold then
            Atomic.incr t.breaker_trips;
          e.opened_at <- Unix.gettimeofday ()
        end)

let record_success t digest =
  if t.cfg.breaker_threshold > 0 then
    Mutex.protect t.block (fun () -> Hashtbl.remove t.breaker digest)

(** Digests currently quarantined (gauge, for the [stats] op). *)
let breaker_open t =
  Mutex.protect t.block (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          if e.consec >= t.cfg.breaker_threshold then acc + 1 else acc)
        t.breaker 0)

(* --------------------------------------------------------------- *)
(* Admission *)

type admission =
  | Admit
  | Shed of { retry_after_ms : float }
      (** over the global budget; the daemon may still serve it inline
          in degraded mode (lint, verdict-cache hit) *)
  | Quarantined of { retry_after_ms : float; crashes : int }

(** Admission decision for a request with content digest [digest],
    given the scheduler's current pending (queued + in-flight) count.
    Pure bookkeeping — no IO; called from the daemon's main loop. *)
let admit t ~pending ~digest =
  let quarantined =
    if t.cfg.breaker_threshold <= 0 then None
    else
      Mutex.protect t.block (fun () ->
          match Hashtbl.find_opt t.breaker digest with
          | Some e when e.consec >= t.cfg.breaker_threshold ->
              let elapsed_ms =
                (Unix.gettimeofday () -. e.opened_at) *. 1000.0
              in
              if elapsed_ms < t.cfg.breaker_cooldown_ms then
                Some
                  (Quarantined
                     {
                       retry_after_ms = t.cfg.breaker_cooldown_ms -. elapsed_ms;
                       crashes = e.consec;
                     })
              else None (* half-open: let one probe through *)
          | _ -> None)
  in
  match quarantined with
  | Some q ->
      Atomic.incr t.breaker_rejects;
      q
  | None ->
      if t.cfg.max_inflight > 0 && pending >= t.cfg.max_inflight then begin
        Atomic.incr t.shed;
        let overload = pending - t.cfg.max_inflight + 1 in
        Shed
          { retry_after_ms = Float.min 1_000.0 (25.0 *. float_of_int overload) }
      end
      else Admit

let note_degraded t = Atomic.incr t.degraded

(* --------------------------------------------------------------- *)
(* The guard: isolation + watchdog, on the worker *)

type outcome =
  | Done  (** body ran to completion and replied *)
  | Crashed of string  (** body raised; caller must reply *)
  | Preempted  (** watchdog already replied and replaced the worker *)

(** Run [body] (a request handler) isolated on the calling scheduler
    worker. [budget_ms] is the request's total cooperative budget
    (deadline × escalated retries); when known, the watchdog watches
    the request from outside, first cancelling the ambient budget
    installed here (soft), then — [on_preempt] — answering the request
    and abandoning the worker (hard). [on_preempt] runs on the
    watchdog domain and must not raise.

    Never raises. The caller translates {!Crashed} into a structured
    error response and {!Preempted} into silence (the watchdog already
    answered). *)
let guard t ~sched ~digest ~budget_ms ~on_preempt body =
  let slot = Scheduler.current_slot () in
  let gb = Stdx.Budget.create () in
  let aborted = Atomic.make false in
  let preempted = Atomic.make false in
  let budget_ms =
    match t.cfg.watchdog_ms with Some _ as w -> w | None -> budget_ms
  in
  let watch =
    match (budget_ms, slot) with
    | Some ms, Some (wid, seq) ->
        Some
          (Stdx.Watchdog.watch t.watchdog ~grace:t.cfg.watchdog_grace
             ~deadline_ms:ms
             ~cancel:(fun () -> Stdx.Budget.cancel gb)
             ~abandon:(fun () ->
               Atomic.set preempted true;
               Atomic.incr t.preempted;
               record_crash t digest;
               on_preempt ();
               (* Close the books and spawn the replacement before
                  releasing an injected stall: the stale incarnation
                  then always finds itself already written off and
                  exits without touching the accounting. *)
               ignore (Scheduler.abandon sched ~wid ~seq);
               Atomic.set aborted true)
             ())
    | _ -> None
  in
  let finish outcome =
    Option.iter (fun w -> ignore (Stdx.Watchdog.unwatch t.watchdog w)) watch;
    outcome
  in
  match
    Stdx.Budget.with_budget gb (fun () ->
        if watch <> None && Stdx.Fault.fires Stdx.Fault.Stall then begin
          (* Chaos hook: defeat the cooperative contract outright — a
             busy spin that never polls its budget. Only the watchdog's
             hard stage (which sets [aborted]) gets the domain back. *)
          Atomic.incr t.stalls;
          while not (Atomic.get aborted) do
            ignore (Sys.opaque_identity aborted)
          done
        end
        else begin
          (* Chaos hook: a crash escaping the whole request handler —
             past the engine's per-job catch-all. *)
          Stdx.Fault.inject Stdx.Fault.Worker;
          body ()
        end)
  with
  | () ->
      if Atomic.get preempted then finish Preempted
      else begin
        record_success t digest;
        finish Done
      end
  | exception e ->
      if Atomic.get preempted then finish Preempted
      else begin
        Atomic.incr t.crashes;
        record_crash t digest;
        (match slot with
        | Some (wid, _) -> ignore (Scheduler.note_crash sched ~wid)
        | None -> ());
        finish (Crashed (Printexc.to_string e))
      end

(* --------------------------------------------------------------- *)
(* Stats *)

type stats = {
  crashes : int;
  preempted : int;
  stalls : int;
  breaker_trips : int;
  breaker_rejects : int;
  breaker_open : int;
  shed : int;
  degraded : int;
  watchdog : Stdx.Watchdog.stats;
}

let stats (t : t) =
  {
    crashes = Atomic.get t.crashes;
    preempted = Atomic.get t.preempted;
    stalls = Atomic.get t.stalls;
    breaker_trips = Atomic.get t.breaker_trips;
    breaker_rejects = Atomic.get t.breaker_rejects;
    breaker_open = breaker_open t;
    shed = Atomic.get t.shed;
    degraded = Atomic.get t.degraded;
    watchdog = Stdx.Watchdog.stats t.watchdog;
  }
