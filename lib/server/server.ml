(** Verification as a service: the [daenerys serve] daemon, its wire
    protocol, scheduler, and client. See DESIGN.md §10. *)

module Json = Json
module Protocol = Protocol
module Render = Render
module Scheduler = Scheduler
module Supervisor = Supervisor
module Daemon = Daemon
module Client = Client
