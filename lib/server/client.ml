(** Client side of the daemon protocol.

    Thin by design: connect, send one JSON line, read one JSON line.
    The CLI's [daenerys client], the test suite, and the benchmark
    harness all drive the daemon through this module, so "the client"
    in every claim below is one piece of code. *)

type t = {
  fd : Unix.file_descr;
  rd : Stdx.Iox.line_reader;
}

let connect path : (t, string) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd; rd = Stdx.Iox.line_reader fd }
  | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

(** Connect, retrying while the daemon is still starting up (tests and
    the benchmark harness race the daemon's bind). *)
let rec connect_retry ?(attempts = 100) ?(delay = 0.05) path =
  match connect path with
  | Ok _ as ok -> ok
  | Error _ as e ->
      if attempts <= 1 then e
      else begin
        Unix.sleepf delay;
        connect_retry ~attempts:(attempts - 1) ~delay path
      end

let close t = try Unix.close t.fd with _ -> ()

let send t (req : Json.t) = Stdx.Iox.write_all t.fd (Protocol.line req)

let recv t : (Json.t, string) result =
  match Stdx.Iox.read_line t.rd with
  | None -> Error "connection closed by daemon"
  | Some l -> (
      match Json.parse l with
      | Ok _ as v -> v
      | Error m -> Error ("bad response: " ^ m))

(** One round trip. Requests pipelined with bare {!send}/{!recv} come
    back in FIFO order per connection (verify/lint; [stats] and error
    responses are answered inline and may overtake — correlate by
    [id]). *)
let rpc t req : (Json.t, string) result =
  match send t req with
  | () -> recv t
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send: " ^ Unix.error_message e)

let with_connection path f =
  match connect path with
  | Error _ as e -> e
  | Ok c -> Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
