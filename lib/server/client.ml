(** Client side of the daemon protocol.

    Thin by design: connect, send one JSON line, read one JSON line.
    The CLI's [daenerys client], the test suite, and the benchmark
    harness all drive the daemon through this module, so "the client"
    in every claim below is one piece of code.

    The {!session} layer adds resilience on top of the bare
    connection: reconnect with jittered exponential backoff, and
    idempotent retry of [busy]/[retryable]/transport failures — see
    {!request}. *)

type t = {
  fd : Unix.file_descr;
  rd : Stdx.Iox.line_reader;
}

let connect path : (t, string) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd; rd = Stdx.Iox.line_reader fd }
  | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

(** Connect, retrying while the daemon is still starting up (tests and
    the benchmark harness race the daemon's bind). *)
let rec connect_retry ?(attempts = 100) ?(delay = 0.05) path =
  match connect path with
  | Ok _ as ok -> ok
  | Error _ as e ->
      if attempts <= 1 then e
      else begin
        Unix.sleepf delay;
        connect_retry ~attempts:(attempts - 1) ~delay path
      end

let close t = try Unix.close t.fd with _ -> ()

let send t (req : Json.t) = Stdx.Iox.write_all t.fd (Protocol.line req)

let recv t : (Json.t, string) result =
  match Stdx.Iox.read_line t.rd with
  | None -> Error "connection closed by daemon"
  | Some l -> (
      match Json.parse l with
      | Ok _ as v -> v
      | Error m -> Error ("bad response: " ^ m))

(** One round trip. Requests pipelined with bare {!send}/{!recv} come
    back in FIFO order per connection (verify/lint; [stats] and error
    responses are answered inline and may overtake — correlate by
    [id]). *)
let rpc t req : (Json.t, string) result =
  match send t req with
  | () -> recv t
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send: " ^ Unix.error_message e)

let with_connection path f =
  match connect path with
  | Error _ as e -> e
  | Ok c -> Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

(* --------------------------------------------------------------- *)
(* Resilient sessions: reconnect + idempotent retry *)

(** Retry policy for a {!session}. [attempts] bounds total tries per
    request (1 = no retry); between tries the client sleeps an
    exponentially growing, jittered backoff from [base_delay_ms]
    (doubling per attempt, capped at [max_delay_ms]), or the daemon's
    own [retry_after_ms] hint when that is larger. *)
type retry = {
  attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
}

let default_retry = { attempts = 5; base_delay_ms = 50.0; max_delay_ms = 2_000.0 }

(** A lazily-connected, self-healing connection. The protocol's
    requests are idempotent — verdicts are deterministic and cached,
    so re-asking is always safe — which makes blind retry of [busy],
    [retryable] and transport failures correct: a retried request
    converges to the same response a fault-free run would have
    produced. *)
type session = {
  path : string;
  retry : retry;
  mutable conn : t option;
  mutable draws : int;  (** jitter counter (deterministic, seedless) *)
}

let open_session ?(retry = default_retry) path =
  { path; retry; conn = None; draws = 0 }

let close_session s =
  (match s.conn with Some c -> close c | None -> ());
  s.conn <- None

let session_conn s =
  match s.conn with
  | Some c -> Ok c
  | None -> (
      match connect s.path with
      | Ok c ->
          s.conn <- Some c;
          Ok c
      | Error _ as e -> e)

(* Full-jitter-ish backoff without a global RNG: the jitter draw is a
   hash of the session's draw counter (the same trick as
   [Stdx.Fault]), so two clients hammering a busy daemon desynchronize
   while each stays reproducible. *)
let backoff_ms s ~attempt ~hint =
  s.draws <- s.draws + 1;
  let base = s.retry.base_delay_ms *. (2.0 ** float_of_int (attempt - 1)) in
  let jitter =
    float_of_int (Hashtbl.hash (s.draws, attempt, s.path) land 0xff) /. 255.0
  in
  Float.max hint (Float.min s.retry.max_delay_ms (base *. (0.5 +. jitter)))

(** How a {!request} ultimately fails. *)
type session_error =
  | Fatal of string
      (** the daemon's judgement about the request (unknown entry,
          parse error) — retrying is pointless, the program is wrong *)
  | Unavailable of string
      (** transport failure or transient daemon-side failure that
          outlived the retry budget — nothing was judged; the honest
          exit code is "gave up", not "wrong" *)

let retryable_resp resp =
  Option.value ~default:false (Json.bool_member "retryable" resp)
  || Option.value ~default:false (Json.bool_member "busy" resp)

(** One request with the session's retry policy: reconnects after
    connection resets (and a daemon restart — the disk cache makes the
    new daemon answer like the old one), backs off and resubmits on
    [busy]/[retryable] responses, honouring the daemon's
    [retry_after_ms] hint. Returns the first [ok] response, [Fatal]
    for a non-retryable error response, or [Unavailable] once the
    attempt budget is spent. *)
let request s req : (Json.t, session_error) result =
  let attempts = max 1 s.retry.attempts in
  let rec go attempt =
    let outcome =
      match session_conn s with
      | Error m -> `Down m
      | Ok c -> (
          match rpc c req with
          | Ok resp ->
              if Option.value ~default:false (Json.bool_member "ok" resp) then
                `Ok resp
              else
                let msg =
                  Option.value ~default:"daemon error"
                    (Json.str_member "error" resp)
                in
                if retryable_resp resp then
                  `Retry
                    ( msg,
                      Option.value ~default:0.0
                        (Json.num_member "retry_after_ms" resp) )
                else `Fatal msg
          | Error m ->
              (* The stream is unusable mid-request (reset, torn line):
                 drop it so the next attempt reconnects fresh. *)
              close c;
              s.conn <- None;
              `Down m)
    in
    match outcome with
    | `Ok resp -> Ok resp
    | `Fatal m -> Error (Fatal m)
    | (`Retry _ | `Down _) as r ->
        let msg, hint =
          match r with `Retry (m, h) -> (m, h) | `Down m -> (m, 0.0)
        in
        if attempt >= attempts then Error (Unavailable msg)
        else begin
          Unix.sleepf (backoff_ms s ~attempt ~hint /. 1000.0);
          go (attempt + 1)
        end
  in
  go 1
