(** Report rendering shared by the CLI and the daemon.

    Lifted out of [bin/daenerys.ml] so that [daenerys suite --json],
    [daenerys verify --json] and the daemon's [verify] responses are
    produced by literally the same code — a client talking to the
    daemon sees the same JSON the CLI would print, and the daemon's
    pretty [output] field matches the CLI's report lines. *)

module V = Verifier.Exec
module E = Engine

(** How one entry behaved against its expectation. [Gave_up] is
    neither good nor bad: the verifier abstained (timeout, resource
    exhaustion, crash) without finding anything wrong, so neither
    "verified" nor "rejected" may be claimed. *)
type status = Good | Bad | Gave_up

let status_string = function
  | Good -> "ok"
  | Bad -> "misbehaved"
  | Gave_up -> "gave_up"

let entry_status ~expect_fail (g : E.group_result) =
  let failed =
    List.exists
      (fun (_, o) -> match o with V.Failed _ -> true | _ -> false)
      g.E.outcomes
  in
  if failed then if expect_fail then Good else Bad
  else if E.group_ok g then if expect_fail then Bad else Good
  else Gave_up

(* Exit codes (also in the README): the program is wrong vs. the
   verifier gave up. *)
let exit_ok = 0
let exit_wrong = 1
let exit_gave_up = 2

(** Fold entry statuses into an exit code: any [Bad] means the run
    found (or wrongly produced) a failure — exit 1; otherwise any
    [Gave_up] taints completeness — exit 2. *)
let exit_of_statuses statuses =
  if List.mem Bad statuses then exit_wrong
  else if List.mem Gave_up statuses then exit_gave_up
  else exit_ok

let exit_of_status = function
  | Good -> exit_ok
  | Bad -> exit_wrong
  | Gave_up -> exit_gave_up

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_outcome (o : V.outcome) =
  let kind, msg =
    match o with
    | V.Verified -> ("verified", None)
    | V.Failed m -> ("failed", Some m)
    | V.Timeout m -> ("timeout", Some m)
    | V.Resource_out m -> ("resource_out", Some m)
    | V.Crashed { V.exn; _ } -> ("crashed", Some exn)
  in
  match msg with
  | None -> Printf.sprintf {|{"kind":"%s"}|} kind
  | Some m ->
      Printf.sprintf {|{"kind":"%s","message":"%s"}|} kind (json_escape m)

(** [rows]: one (name, expect_fail, status) triple per report group.
    The stats block carries the solver-query and cache counters the
    daemon's acceptance test watches: a warm repeat request must show
    [queries = 0] with every probe answered by a cache tier. *)
let json_of_report (report : E.report) rows =
  let entries =
    List.map2
      (fun (name, expect_fail, status) g ->
        let procs =
          List.map
            (fun (p, o) ->
              Printf.sprintf {|{"proc":"%s","outcome":%s}|} (json_escape p)
                (json_of_outcome o))
            g.E.outcomes
        in
        Printf.sprintf
          {|{"entry":"%s","expect_fail":%b,"status":"%s","ms":%.1f,"procs":[%s]}|}
          (json_escape name) expect_fail (status_string status) g.E.ms
          (String.concat "," procs))
      rows report.E.groups
  in
  let s = report.E.stats in
  Printf.sprintf
    {|{"entries":[%s],"stats":{"jobs":%d,"wall_ms":%.1f,"queries":%d,"cache_hits":%d,"cache_disk_hits":%d,"cache_misses":%d,"cache_corrupt":%d,"timeouts":%d,"resource_outs":%d,"crashes":%d,"retries":%d,"session_fallbacks":%d,"par_branches":%d,"inv_opens":%d,"interference_havocs":%d}}|}
    (String.concat "," entries)
    s.E.jobs s.E.wall_ms s.E.smt.Smt.Stats.queries s.E.cache_hits
    s.E.cache_disk_hits s.E.cache_misses s.E.cache_corrupt s.E.timeouts
    s.E.resource_outs s.E.crashes s.E.retries
    s.E.smt.Smt.Stats.session_fallbacks
    s.E.vstats.Verifier.Vstats.par_branches
    s.E.vstats.Verifier.Vstats.inv_opens
    s.E.vstats.Verifier.Vstats.interference_havocs

(** Compact (single-line) diagnostics array, for the wire.
    [Diag.list_to_json] pretty-prints across lines; the protocol is
    newline-delimited. *)
let json_of_diags ds =
  Printf.sprintf "[%s]" (String.concat "," (List.map Diag.to_json ds))

(* ------------------------------------------------------------------ *)
(* Pretty text (the daemon's [output] field = the CLI's report lines) *)

let verdict_line ~expect_fail status =
  match (status, expect_fail) with
  | Good, false -> "VERIFIED"
  | Good, true -> "rejected (as expected)"
  | Bad, true -> "VERIFIED — BUT THIS ENTRY MUST FAIL"
  | Bad, false -> "FAILED"
  | Gave_up, _ -> "GAVE UP"

let pp_group_outcomes ppf (g : E.group_result) =
  List.iter
    (fun (p, o) -> Fmt.pf ppf "  proc %-12s %a@." p V.pp_outcome o)
    g.E.outcomes

(** One entry's report block: per-procedure outcomes, then the verdict
    line. *)
let group_text ~name ~expect_fail status (g : E.group_result) =
  Fmt.str "%a%-14s %-24s %6.1fms@." pp_group_outcomes g name
    (verdict_line ~expect_fail status)
    g.E.ms
