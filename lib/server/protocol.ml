(** The daemon's wire protocol.

    One JSON object per line, in both directions, over a Unix-domain
    socket. Four operations:

    {v
    {"op":"verify","name":"swap","id":1}
    {"op":"verify","file":"swap.hl","source":"...","id":2,
     "lint":true,"timeout_ms":500,"retries":2,"seed":7}
    {"op":"lint","name":"swap","id":3}
    {"op":"stats","id":4}
    {"op":"shutdown","id":5}
    v}

    [verify]/[lint] name either a suite entry ([name]) or carry an
    annotated surface program inline ([file] for diagnostics spans +
    [source] text) — the client ships the file's contents, so daemon
    and client need not share a working directory. [id] is an opaque
    client token echoed in the response; [lint]/[timeout_ms]/[retries]
    override the daemon's per-request defaults.

    Responses always carry ["ok"] and echo ["id"]:

    {v
    {"id":1,"ok":true,"exit":0,"status":"ok","report":{...},"output":"..."}
    {"id":9,"ok":false,"busy":true,"error":"queue full"}
    {"id":3,"ok":false,"error":"unknown entry nope"}
    {"id":4,"ok":true,"stats":{...}}
    {"id":5,"ok":true,"shutdown":true}
    v}

    ["report"] is exactly the CLI's [--json] document ({!Render});
    ["output"] is the CLI's pretty report text; ["exit"] is the CLI's
    0/1/2 exit-code taxonomy (as-expected / program-wrong / gave-up),
    which [daenerys client] propagates. A [busy] response is
    backpressure: the client's queue is full and the request was {e
    not} enqueued — resubmit later. *)

type target =
  | Entry of string  (** a suite entry, by name *)
  | Source of { file : string; source : string }
      (** an annotated surface program, shipped inline *)

type request =
  | Verify of {
      id : Json.t;  (** echoed verbatim; [Null] if absent *)
      target : target;
      lint : bool;
      absint : bool;  (** abstract pre-discharge (["absint":false] opts out) *)
      seed : int;  (** par-branch exploration order; 0 = left-first *)
      timeout_ms : float option;  (** per-request deadline override *)
      retries : int option;  (** per-request retry override *)
    }
  | Lint of { id : Json.t; target : target; absint : bool }
  | Stats of { id : Json.t }
  | Shutdown of { id : Json.t }

let request_id = function
  | Verify { id; _ } | Lint { id; _ } | Stats { id } | Shutdown { id } -> id

let target_of_json v : (target, string) result =
  match (Json.str_member "name" v, Json.str_member "source" v) with
  | Some n, None -> Ok (Entry n)
  | None, Some source ->
      let file = Option.value ~default:"<inline>" (Json.str_member "file" v) in
      Ok (Source { file; source })
  | Some _, Some _ -> Error "request carries both \"name\" and \"source\""
  | None, None -> Error "request needs \"name\" or \"source\""

let request_of_line line : (request, string) result =
  match Json.parse line with
  | Error m -> Error ("bad JSON: " ^ m)
  | Ok v -> (
      let id = Option.value ~default:Json.Null (Json.member "id" v) in
      match Json.str_member "op" v with
      | Some "verify" ->
          Result.map
            (fun target ->
              Verify
                {
                  id;
                  target;
                  lint =
                    Option.value ~default:false (Json.bool_member "lint" v);
                  absint =
                    Option.value ~default:true (Json.bool_member "absint" v);
                  seed = Option.value ~default:0 (Json.int_member "seed" v);
                  timeout_ms = Json.num_member "timeout_ms" v;
                  retries = Json.int_member "retries" v;
                })
            (target_of_json v)
      | Some "lint" ->
          Result.map
            (fun target ->
              Lint
                {
                  id;
                  target;
                  absint =
                    Option.value ~default:true (Json.bool_member "absint" v);
                })
            (target_of_json v)
      | Some "stats" -> Ok (Stats { id })
      | Some "shutdown" -> Ok (Shutdown { id })
      | Some op -> Error (Printf.sprintf "unknown op %S" op)
      | None -> Error "request needs an \"op\" field")

(* --------------------------------------------------------------- *)
(* Client-side request construction *)

let target_fields = function
  | Entry n -> [ ("name", Json.Str n) ]
  | Source { file; source } ->
      [ ("file", Json.Str file); ("source", Json.Str source) ]

let verify_request ?(id = Json.Null) ?(lint = false) ?(absint = true)
    ?(seed = 0) ?timeout_ms ?retries target =
  Json.Obj
    ([ ("op", Json.Str "verify"); ("id", id) ]
    @ target_fields target
    @ (if lint then [ ("lint", Json.Bool true) ] else [])
    @ (if absint then [] else [ ("absint", Json.Bool false) ])
    @ (if seed = 0 then []
       else [ ("seed", Json.Num (float_of_int seed)) ])
    @ (match timeout_ms with
      | Some ms -> [ ("timeout_ms", Json.Num ms) ]
      | None -> [])
    @
    match retries with
    | Some r -> [ ("retries", Json.Num (float_of_int r)) ]
    | None -> [])

let lint_request ?(id = Json.Null) ?(absint = true) target =
  Json.Obj
    ([ ("op", Json.Str "lint"); ("id", id) ]
    @ target_fields target
    @ if absint then [] else [ ("absint", Json.Bool false) ])

let stats_request ?(id = Json.Null) () =
  Json.Obj [ ("op", Json.Str "stats"); ("id", id) ]

let shutdown_request ?(id = Json.Null) () =
  Json.Obj [ ("op", Json.Str "shutdown"); ("id", id) ]

(* --------------------------------------------------------------- *)
(* Response construction (daemon side) *)

let response ~id fields = Json.Obj (("id", id) :: fields)

(** Error responses carry machine-readable retry metadata alongside
    the message: [busy] marks backpressure (the request was not
    enqueued), [retryable] marks transient daemon-side failures (an
    injected fault, a crashed or preempted worker, a quarantined
    digest in cooldown) that an idempotent resubmission may well
    succeed at, and [retry_after_ms] hints how long to back off first.
    Errors without [busy]/[retryable] — unknown entry, parse error —
    are judgements about the request and retrying them is pointless. *)
let error_response ~id ?(busy = false) ?(retryable = false) ?retry_after_ms msg
    =
  response ~id
    ([ ("ok", Json.Bool false) ]
    @ (if busy then [ ("busy", Json.Bool true) ] else [])
    @ (if retryable || busy then [ ("retryable", Json.Bool true) ] else [])
    @ (match retry_after_ms with
      | Some ms -> [ ("retry_after_ms", Json.Num (Float.max 0.0 ms)) ]
      | None -> [])
    @ [ ("error", Json.Str msg) ])

let line v = Json.to_string v ^ "\n"
