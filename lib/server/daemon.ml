(** The [daenerys serve] daemon: verification as a service.

    A long-lived process listening on a Unix-domain socket, speaking
    the newline-delimited JSON protocol of {!Protocol}. The main
    domain runs a [select] loop (accept connections, read request
    lines, write immediate responses); verification and lint work is
    submitted to a {!Scheduler} — a warm pool of worker domains with
    fair FIFO-per-client queues and bounded-queue backpressure — under
    the {!Supervisor}'s guard.

    Every request runs through the ordinary engine pipeline
    ([Engine.verify_programs] with [domains = 1] on the worker's own
    domain), so daemon verdicts are the CLI's verdicts by
    construction; the per-request deadline/retry budgets of PR 5 apply
    unchanged ([timeout_ms]/[retries] per request, with daemon-level
    defaults). All requests share one process-wide two-tier
    {!Engine.Vc_cache}: the in-memory tier serves repeats within this
    daemon's lifetime, the on-disk tier survives restarts — a repeat
    request for an unchanged program does no solver work at all, in
    this daemon generation or the next.

    Failure behavior, in one line: anything that goes wrong with a
    request (unknown entry, parse error, injected socket fault, full
    queue, worker exception, a worker wedged past its budget) becomes
    an {e error response on that request}; it never takes down the
    daemon and never changes another request's verdict. The PR 10
    supervision layer enforces this against the worker itself: crashes
    are isolated and counted, crashing digests are circuit-broken,
    stuck workers are written off by the watchdog and replaced, and a
    global in-flight budget sheds load (with lint and verdict-cache
    hits still served inline in degraded mode).

    Slow peers cannot wedge the loop in either direction: request
    lines may arrive a byte at a time (buffered per connection until
    the newline), and responses to a peer that stopped reading park in
    a per-connection write buffer flushed as [select] reports
    writability — a slow consumer costs memory up to a cap, never a
    blocked worker or main loop.

    A [shutdown] request — or SIGTERM/SIGINT — stops admissions,
    drains everything already accepted (their responses are written
    first), and exits cleanly; SIGHUP logs a stats snapshot to
    stderr. *)

module V = Verifier.Exec
module E = Engine
module Pr = Suite.Programs

type config = {
  socket_path : string;
  workers : int;  (** warm worker domains *)
  queue_bound : int;  (** max queued requests per client; 0 rejects all *)
  cache_dir : string option;  (** on-disk VC cache; [None] = memory only *)
  cache_max_bytes : int;  (** disk-tier LRU bound *)
  cache_fingerprint : string option;
      (** build-fingerprint override (tests simulate rebuilds) *)
  timeout_ms : float option;  (** default per-request deadline *)
  retries : int;  (** default per-request retries *)
  max_inflight : int;  (** global pending budget; 0 = unbounded *)
  breaker_threshold : int;  (** digest quarantine after N crashes; 0 = off *)
  breaker_cooldown_ms : float;  (** quarantine duration *)
  watchdog_ms : float option;  (** fixed watchdog budget override *)
  watchdog_grace : float;  (** budget multiplier before preemption *)
  recycle_after : int;  (** worker crashes before domain recycle; 0 = off *)
}

let default_config =
  {
    socket_path = Filename.concat (Filename.get_temp_dir_name ()) "daenerys.sock";
    workers = 1;
    queue_bound = 64;
    cache_dir = None;
    cache_max_bytes = 256 * 1024 * 1024;
    cache_fingerprint = None;
    timeout_ms = None;
    retries = 0;
    max_inflight = 256;
    breaker_threshold = 3;
    breaker_cooldown_ms = 2_000.0;
    watchdog_ms = None;
    watchdog_grace = Stdx.Watchdog.default_grace;
    recycle_after = 32;
  }

(* --------------------------------------------------------------- *)
(* The surface front-end, shared with the CLI *)

(** Elaborate an annotated surface program from source text. Front-end
    errors come back rendered with their span and caret snippet — the
    same text the CLI prints. *)
let elaborate_source ~file source :
    (V.program * Diag.srcmap, string) result =
  let render what m span =
    Error
      (Fmt.str "%s at %a: %s@.%a" what Stdx.Loc.pp span m Stdx.Loc.pp_snippet
         (source, span))
  in
  match Verifier.Elab.program_of_string ~file source with
  | prog, srcmap -> Ok (prog, srcmap)
  | exception Heaplang.Parser.Parse_error (m, sp) -> render "parse error" m sp
  | exception Heaplang.Lexer.Lex_error (m, sp) -> render "lex error" m sp
  | exception Baselogic.Elab.Elab_error (m, sp) ->
      render "elaboration error" m sp

type resolved = {
  r_name : string;
  r_prog : V.program;
  r_srcmaps : (string * Diag.srcmap) list;
  r_expect_fail : bool;
  r_source : string option;  (** for caret snippets in lint output *)
}

let resolve (t : Protocol.target) : (resolved, string) result =
  match t with
  | Protocol.Entry n -> (
      match
        List.find_opt (fun (e : Pr.entry) -> String.equal e.name n) Pr.all
      with
      | Some e ->
          Ok
            {
              r_name = e.name;
              r_prog = e.prog;
              r_srcmaps = [];
              r_expect_fail = e.expect_fail;
              r_source = None;
            }
      | None -> Error ("unknown entry " ^ n))
  | Protocol.Source { file; source } ->
      Result.map
        (fun (prog, srcmap) ->
          {
            r_name = file;
            r_prog = prog;
            r_srcmaps = [ (file, srcmap) ];
            r_expect_fail = false;
            r_source = Some source;
          })
        (elaborate_source ~file source)

(* --------------------------------------------------------------- *)
(* Connections *)

(** A request line longer than this (no newline seen) is an attack or
    a bug, not a workload: the connection is answered and dropped
    rather than buffered without bound. *)
let line_cap = 16 * 1024 * 1024

(** Unflushed responses to a peer that stopped reading park in
    [wbuf] up to this bound; past it the peer is declared a dead
    consumer and dropped. *)
let wbuf_cap = 64 * 1024 * 1024

type conn = {
  cid : int;
  fd : Unix.file_descr;
  clock : Mutex.t;  (** guards writes, [wbuf], [pending], [closing], [closed] *)
  mutable rbuf : string;  (** partial request line (main loop only) *)
  mutable wbuf : string;  (** response bytes the socket hasn't taken yet *)
  mutable pending : int;  (** scheduled tasks not yet responded *)
  mutable closing : bool;  (** peer EOF seen; close once drained *)
  mutable closed : bool;
}

type t = {
  cfg : config;
  cache : E.Vc_cache.t;
  sched : Scheduler.t;
  sup : Supervisor.t;
  listen_fd : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;  (* main loop only *)
  mutable next_cid : int;
  started : float;
  parse_errors : int Atomic.t;
  socket_faults : int Atomic.t;
  slow_consumers : int Atomic.t;  (** connections dropped over [wbuf_cap] *)
  absint_discharged : int Atomic.t;
      (** entailments answered by the abstract domain, summed over all
          cold verify runs this daemon served *)
  absint_abstained : int Atomic.t;
      (** entailments the abstract domain passed to the solver *)
  par_branches : int Atomic.t;  (** par branches verified (cold runs) *)
  inv_opens : int Atomic.t;  (** named-invariant opens at atomic sections *)
  interference_havocs : int Atomic.t;  (** fork-join interference points *)
}

(* [c.clock] held. Push as much of [wbuf] as the (non-blocking) socket
   accepts; the rest waits for the main loop's writability pass. A
   write error marks the connection dead — its verdicts are already
   safe in the cache for whoever asks next. *)
let rec try_flush_locked (c : conn) =
  let len = String.length c.wbuf in
  if (not c.closed) && len > 0 then
    match Unix.write_substring c.fd c.wbuf 0 len with
    | 0 -> ()
    | n ->
        c.wbuf <- String.sub c.wbuf n (len - n);
        try_flush_locked c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> try_flush_locked c
    | exception _ ->
        c.closed <- true;
        (try Unix.close c.fd with _ -> ())

(** Queue one response line and flush opportunistically. Any domain
    may call this (workers, the watchdog, the main loop); writes never
    block — a stalled reader costs buffer space, not a worker. *)
let respond (c : conn) json =
  let line = Protocol.line json in
  Mutex.protect c.clock (fun () ->
      if not c.closed then begin
        c.wbuf <- c.wbuf ^ line;
        try_flush_locked c
      end)

(** Does [c] have unflushed response bytes? (Main loop: include it in
    the select write set.) *)
let wants_write (c : conn) =
  Mutex.protect c.clock (fun () -> (not c.closed) && String.length c.wbuf > 0)

(** One scheduled task finished (its response is written): drop the
    pending count and close the descriptor if the peer already left. *)
let task_done (c : conn) =
  Mutex.protect c.clock (fun () ->
      c.pending <- c.pending - 1;
      if c.closing && c.pending = 0 && not c.closed then begin
        c.closed <- true;
        try Unix.close c.fd with _ -> ()
      end)

let close_conn (c : conn) =
  Mutex.protect c.clock (fun () ->
      c.closing <- true;
      if c.pending = 0 && not c.closed then begin
        c.closed <- true;
        try Unix.close c.fd with _ -> ()
      end)

(* --------------------------------------------------------------- *)
(* Request handlers (run on scheduler workers; return the response) *)

let lint_findings_text ?source results =
  let b = Buffer.create 256 in
  List.iter
    (fun (_, ds) ->
      List.iter
        (fun d ->
          Buffer.add_string b (Fmt.str "%a@." Diag.pp d);
          match (d.Diag.loc.Diag.span, source) with
          | Some s, Some src when s.Stdx.Loc.file <> "" ->
              Buffer.add_string b
                (Fmt.str "%a@." Stdx.Loc.pp_snippet (src, s))
          | _ -> ())
        ds)
    results;
  Buffer.contents b

(** The verdict-cache key is the {e request content}: a suite entry is
    keyed by name (its program is a static constant of this build — the
    build fingerprint on the disk tier keeps entries from outliving the
    code that produced them), a surface program by its full source text
    (so an edited file misses, an unchanged one hits even under a
    different path). [lint] participates because lint gating changes
    outcomes. Deadline/retry knobs deliberately do not: only decided
    verdicts are stored, and those are budget-independent. [absint]
    participates too — verdicts are identical by design with the pass
    on or off, but lint findings differ, and keying on it keeps the
    cached response an exact replay of a cold run with the same
    request. [seed] participates for the same replay reason: verdicts
    are schedule-independent by construction, and keying on the seed
    means a changed seed is re-verified — the independence property
    stays continuously checked instead of assumed. *)
let verdict_key ~lint ~absint ~seed (target : Protocol.target) =
  (if lint then "lint\x00" else "")
  ^ (if absint then "" else "noabsint\x00")
  ^ (if seed = 0 then "" else Printf.sprintf "seed=%d\x00" seed)
  ^
  match target with
  | Protocol.Entry n -> "entry\x00" ^ n
  | Protocol.Source { source; _ } -> "source\x00" ^ source

let handle_verify (d : t) ~id ~target ~lint ~absint ~seed ~timeout_ms
    ~retries : Json.t =
  match resolve target with
  | Error m -> Protocol.error_response ~id m
  | Ok r ->
      let key = verdict_key ~lint ~absint ~seed target in
      let t0 = Unix.gettimeofday () in
      let report, cached =
        match E.Vc_cache.lookup_verdicts d.cache key with
        | Some (outcomes, tier) ->
            (* Warm path: the whole group is answered from the cache —
               no symbolic execution, no solver work. Lint findings are
               recomputed (no solver there either) so the response text
               matches a cold run's. *)
            let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            let rep =
              E.cached_report ~group:r.r_name ~outcomes ~tier ~wall_ms
            in
            if lint then
              let results, _ =
                E.run_analysis ~srcmaps:r.r_srcmaps ~absint ~domains:1
                  [ (r.r_name, r.r_prog) ]
              in
              ({ rep with E.lint = results }, true)
            else (rep, true)
        | None ->
            let config =
              {
                E.default_config with
                E.domains = 1;
                shared_cache = Some d.cache;
                lint;
                absint;
                seed;
                timeout_ms =
                  (match timeout_ms with
                  | Some _ as t -> t
                  | None -> d.cfg.timeout_ms);
                retries = Option.value ~default:d.cfg.retries retries;
              }
            in
            let report =
              E.verify_programs ~config ~srcmaps:r.r_srcmaps
                [ (r.r_name, r.r_prog) ]
            in
            let g = List.hd report.E.groups in
            E.Vc_cache.store_verdicts d.cache key g.E.outcomes;
            (* Daemon-lifetime gauges for the [stats] op: how much work
               the abstract pre-discharge saved across cold runs. *)
            let vs = report.E.stats.E.vstats in
            ignore
              (Atomic.fetch_and_add d.absint_discharged
                 vs.Verifier.Vstats.absint_discharged);
            ignore
              (Atomic.fetch_and_add d.absint_abstained
                 vs.Verifier.Vstats.absint_abstained);
            ignore
              (Atomic.fetch_and_add d.par_branches
                 vs.Verifier.Vstats.par_branches);
            ignore
              (Atomic.fetch_and_add d.inv_opens
                 vs.Verifier.Vstats.inv_opens);
            ignore
              (Atomic.fetch_and_add d.interference_havocs
                 vs.Verifier.Vstats.interference_havocs);
            (report, false)
      in
      let g = List.hd report.E.groups in
      let status = Render.entry_status ~expect_fail:r.r_expect_fail g in
      let output =
        (if lint then lint_findings_text ?source:r.r_source report.E.lint
         else "")
        ^ Render.group_text ~name:r.r_name ~expect_fail:r.r_expect_fail status
            g
      in
      Protocol.response ~id
        [
          ("ok", Json.Bool true);
          ("exit", Json.Num (float_of_int (Render.exit_of_status status)));
          ("status", Json.Str (Render.status_string status));
          ("cached", Json.Bool cached);
          ( "report",
            Json.Raw
              (Render.json_of_report report
                 [ (r.r_name, r.r_expect_fail, status) ]) );
          ("output", Json.Str output);
        ]

let handle_lint (d : t) ~id ~target ~absint : Json.t =
  ignore d;
  match resolve target with
  | Error m -> Protocol.error_response ~id m
  | Ok r ->
      let results, a =
        E.run_analysis ~srcmaps:r.r_srcmaps ~absint ~domains:1
          [ (r.r_name, r.r_prog) ]
      in
      let ds = List.concat_map snd results in
      let errors = Diag.has_errors ds in
      Protocol.response ~id
        [
          ("ok", Json.Bool true);
          ("exit", Json.Num (if errors then 1.0 else 0.0));
          ("diags", Json.Raw (Render.json_of_diags (Diag.sort ds)));
          ("findings", Json.Num (float_of_int a.E.a_diags));
          ("errors", Json.Num (float_of_int a.E.a_errors));
          ( "output",
            Json.Str (lint_findings_text ?source:r.r_source results) );
        ]

(* --------------------------------------------------------------- *)
(* Stats *)

let num i = Json.Num (float_of_int i)

let stats_json (d : t) =
  let s = Scheduler.stats d.sched in
  let sup = Supervisor.stats d.sup in
  let cache = d.cache in
  Json.Obj
    [
      ( "uptime_ms",
        Json.Num ((Unix.gettimeofday () -. d.started) *. 1000.0) );
      ("workers", num s.Scheduler.workers);
      ("pending", num s.Scheduler.pending);
      ("submitted", num s.Scheduler.submitted);
      ("rejected", num s.Scheduler.rejected);
      ("completed", num s.Scheduler.completed);
      ("task_failures", num s.Scheduler.task_failures);
      ("parse_errors", num (Atomic.get d.parse_errors));
      ("socket_faults", num (Atomic.get d.socket_faults));
      ("slow_consumers", num (Atomic.get d.slow_consumers));
      ("absint_discharged", num (Atomic.get d.absint_discharged));
      ("absint_abstained", num (Atomic.get d.absint_abstained));
      ("par_branches", num (Atomic.get d.par_branches));
      ("inv_opens", num (Atomic.get d.inv_opens));
      ("interference_havocs", num (Atomic.get d.interference_havocs));
      ( "supervisor",
        (* The PR 10 supervision counters the chaos gates watch: every
           repair mechanism leaves an audit trail here. *)
        Json.Obj
          [
            ("worker_crashes", num s.Scheduler.worker_crashes);
            ( "worker_crash_counts",
              Json.List (List.map num (Scheduler.crash_counts d.sched)) );
            ("respawns", num s.Scheduler.respawns);
            ("abandoned", num s.Scheduler.abandoned);
            ("crashes", num sup.Supervisor.crashes);
            ("preempted", num sup.Supervisor.preempted);
            ("stalls", num sup.Supervisor.stalls);
            ("breaker_trips", num sup.Supervisor.breaker_trips);
            ("breaker_rejects", num sup.Supervisor.breaker_rejects);
            ("breaker_open", num sup.Supervisor.breaker_open);
            ("shed", num sup.Supervisor.shed);
            ("degraded_served", num sup.Supervisor.degraded);
            ( "watchdog",
              let w = sup.Supervisor.watchdog in
              Json.Obj
                [
                  ("active", num w.Stdx.Watchdog.active);
                  ("watched", num w.Stdx.Watchdog.watched_total);
                  ("cancels", num w.Stdx.Watchdog.cancels);
                  ("abandons", num w.Stdx.Watchdog.abandons);
                ] );
          ] );
      ( "solver",
        (* Process-global gauges from the hash-consed term pool; the
           per-VC counters live in the per-report engine stats. *)
        let ps = Smt.Term.pool_stats () in
        let lookups = ps.Smt.Term.pool_hits + ps.Smt.Term.pool_misses in
        Json.Obj
          [
            ("term_pool_size", num ps.Smt.Term.pool_size);
            ("term_pool_hits", num ps.Smt.Term.pool_hits);
            ("term_pool_misses", num ps.Smt.Term.pool_misses);
            ( "term_pool_hit_rate",
              Json.Num
                (if lookups = 0 then 0.0
                 else float_of_int ps.Smt.Term.pool_hits /. float_of_int lookups)
            );
          ] );
      ( "cache",
        Json.Obj
          ([
             ("mem_hits", num (E.Vc_cache.hits cache));
             ("disk_hits", num (E.Vc_cache.disk_hits cache));
             ("misses", num (E.Vc_cache.misses cache));
             ("corrupt", num (E.Vc_cache.corrupt cache));
             ("mem_entries", num (E.Vc_cache.size cache));
             ("disk_entries", num (E.Vc_cache.disk_entries cache));
             ("disk_bytes", num (E.Vc_cache.disk_bytes cache));
             (* Crash-recovery results from this daemon's startup scan. *)
             ("recovered_tmp", num (E.Vc_cache.recovered_tmp cache));
             ("recovered_torn", num (E.Vc_cache.recovered_torn cache));
             ("journal_replayed", num (E.Vc_cache.journal_replayed cache));
           ]
          @
          match E.Vc_cache.fingerprint cache with
          | Some f -> [ ("fingerprint", Json.Str f) ]
          | None -> []) );
    ]

(* --------------------------------------------------------------- *)
(* The main loop *)

exception Shutdown_requested of conn * Json.t  (* conn, request id *)
exception Signal_drain  (* SIGTERM/SIGINT: graceful drain, no ack conn *)

(** The request's total cooperative budget: its deadline times every
    escalated retry it is entitled to. The watchdog only calls a
    worker stuck once this whole envelope (times the grace factor) is
    exhausted — legitimate slow requests retire on their own. *)
let request_budget_ms (d : t) ~timeout_ms ~retries =
  let base =
    match timeout_ms with Some _ as t -> t | None -> d.cfg.timeout_ms
  in
  let retries = Option.value ~default:d.cfg.retries retries in
  Option.map
    (fun ms ->
      let rec total acc ms i =
        if i > retries then acc
        else total (acc +. ms) (ms *. E.Job.escalation) (i + 1)
      in
      total 0.0 ms 0)
    base

(** The circuit breaker's identity for a request: everything that
    determines what work it triggers. Two requests with the same
    digest crash workers the same way. *)
let request_digest (req : Protocol.request) =
  match req with
  | Protocol.Verify { target; lint; absint; seed; _ } ->
      Digest.to_hex
        (Digest.string ("verify\x00" ^ verdict_key ~lint ~absint ~seed target))
  | Protocol.Lint { target; absint; _ } ->
      Digest.to_hex
        (Digest.string
           (Printf.sprintf "lintop\x00%b\x00%s" absint
              (verdict_key ~lint:false ~absint ~seed:0 target)))
  | Protocol.Stats _ | Protocol.Shutdown _ -> ""

(** Run an admitted verify/lint request on a scheduler worker under
    the supervisor's guard, with a once-only reply: exactly one of the
    handler's response, a structured crash response, or the watchdog's
    preemption response reaches the client — whichever settles
    first. *)
let submit_guarded (d : t) (c : conn) req ~id ~digest ~budget_ms =
  let settled = Atomic.make false in
  let reply json =
    if not (Atomic.exchange settled true) then begin
      respond c json;
      task_done c
    end
  in
  let task () =
    match
      Supervisor.guard d.sup ~sched:d.sched ~digest ~budget_ms
        ~on_preempt:(fun () ->
          reply
            (Protocol.error_response ~id ~retryable:true
               "preempted: worker exceeded its budget and stopped \
                responding; the watchdog replaced it"))
        (fun () ->
          let resp =
            match req with
            | Protocol.Verify
                { id; target; lint; absint; seed; timeout_ms; retries } ->
                handle_verify d ~id ~target ~lint ~absint ~seed ~timeout_ms
                  ~retries
            | Protocol.Lint { id; target; absint } ->
                handle_lint d ~id ~target ~absint
            | Protocol.Stats _ | Protocol.Shutdown _ -> assert false
          in
          reply resp)
    with
    | Supervisor.Done | Supervisor.Preempted -> ()
    | Supervisor.Crashed msg ->
        reply
          (Protocol.error_response ~id ~retryable:true
             ("worker crashed: " ^ msg))
  in
  Mutex.protect c.clock (fun () -> c.pending <- c.pending + 1);
  match Scheduler.submit d.sched ~cid:c.cid task with
  | `Accepted -> ()
  | `Busy ->
      Mutex.protect c.clock (fun () -> c.pending <- c.pending - 1);
      respond c
        (Protocol.error_response ~id ~busy:true ~retry_after_ms:100.0
           "queue full — daemon is busy, retry later")
  | `Stopping ->
      Mutex.protect c.clock (fun () -> c.pending <- c.pending - 1);
      respond c (Protocol.error_response ~id "daemon is shutting down")

(** Dispatch one request line from [c]. Cheap requests (stats, errors,
    backpressure rejections) answer inline from the main loop;
    verify/lint go through admission control and then the scheduler,
    which preserves per-client FIFO order for them. *)
let dispatch (d : t) (c : conn) line =
  (* Chaos-testing hook: an injected socket fault garbles this request
     — the daemon answers with an error instead of dispatching, the
     degradation the soundness property allows (the client can retry;
     no verdict is ever fabricated). *)
  if Stdx.Fault.fires Stdx.Fault.Socket then begin
    Atomic.incr d.socket_faults;
    respond c
      (Protocol.error_response ~id:Json.Null ~retryable:true
         "injected fault: socket")
  end
  else
    match Protocol.request_of_line line with
    | Error m ->
        Atomic.incr d.parse_errors;
        respond c (Protocol.error_response ~id:Json.Null m)
    | Ok (Protocol.Stats { id }) ->
        respond c
          (Protocol.response ~id
             [ ("ok", Json.Bool true); ("stats", stats_json d) ])
    | Ok (Protocol.Shutdown { id }) -> raise (Shutdown_requested (c, id))
    | Ok ((Protocol.Verify _ | Protocol.Lint _) as req) -> (
        let id = Protocol.request_id req in
        let digest = request_digest req in
        let pending = (Scheduler.stats d.sched).Scheduler.pending in
        match Supervisor.admit d.sup ~pending ~digest with
        | Supervisor.Quarantined { retry_after_ms; crashes } ->
            respond c
              (Protocol.error_response ~id ~retryable:true ~retry_after_ms
                 (Printf.sprintf
                    "quarantined: this request crashed %d consecutive \
                     workers; circuit open, retry after cooldown"
                    crashes))
        | Supervisor.Shed { retry_after_ms } -> (
            (* Degraded mode: solve capacity is saturated, but requests
               that need no solver — lint, verdict-cache hits — are
               served inline from the main loop, so the service stays
               reachable under overload. *)
            match req with
            | Protocol.Lint { id; target; absint } ->
                Supervisor.note_degraded d.sup;
                respond c (handle_lint d ~id ~target ~absint)
            | Protocol.Verify
                { id; target; lint; absint; seed; timeout_ms; retries }
              when E.Vc_cache.lookup_verdicts d.cache
                     (verdict_key ~lint ~absint ~seed target)
                   <> None ->
                Supervisor.note_degraded d.sup;
                respond c
                  (handle_verify d ~id ~target ~lint ~absint ~seed
                     ~timeout_ms ~retries)
            | _ ->
                respond c
                  (Protocol.error_response ~id ~busy:true ~retry_after_ms
                     "overloaded — global in-flight budget exhausted, \
                      retry later"))
        | Supervisor.Admit ->
            let budget_ms =
              match req with
              | Protocol.Verify { timeout_ms; retries; _ } ->
                  request_budget_ms d ~timeout_ms ~retries
              | _ -> None
            in
            submit_guarded d c req ~id ~digest ~budget_ms)

(** Consume complete lines from [c]'s read buffer. *)
let drain_lines (d : t) (c : conn) =
  let rec go () =
    match String.index_opt c.rbuf '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub c.rbuf 0 i in
        c.rbuf <- String.sub c.rbuf (i + 1) (String.length c.rbuf - i - 1);
        if String.trim line <> "" then dispatch d c line;
        go ()
  in
  go ()

let handle_readable (d : t) (c : conn) =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 ->
      Hashtbl.remove d.conns c.fd;
      close_conn c
  | n ->
      c.rbuf <- c.rbuf ^ Bytes.sub_string buf 0 n;
      drain_lines d c;
      if String.length c.rbuf > line_cap then begin
        (* A "line" this long is not a request; stop buffering it. *)
        Atomic.incr d.parse_errors;
        respond c
          (Protocol.error_response ~id:Json.Null "request line too long");
        Hashtbl.remove d.conns c.fd;
        close_conn c
      end
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
  | exception Unix.Unix_error _ ->
      Hashtbl.remove d.conns c.fd;
      close_conn c

(** Flush [c]'s write buffer on main-loop writability; drop dead
    consumers whose buffer outgrew the cap. *)
let handle_writable (d : t) (c : conn) =
  Mutex.protect c.clock (fun () ->
      try_flush_locked c;
      if String.length c.wbuf > wbuf_cap then begin
        Atomic.incr d.slow_consumers;
        c.closed <- true;
        try Unix.close c.fd with _ -> ()
      end);
  if
    Mutex.protect c.clock (fun () -> c.closed)
  then Hashtbl.remove d.conns c.fd

let accept_conn (d : t) =
  match Unix.accept d.listen_fd with
  | fd, _ ->
      (* Non-blocking on both sides: reads can't stall the loop past
         select's word, and writes park in [wbuf] instead of blocking
         a worker on a slow reader. *)
      (try Unix.set_nonblock fd with _ -> ());
      d.next_cid <- d.next_cid + 1;
      Hashtbl.replace d.conns fd
        {
          cid = d.next_cid;
          fd;
          clock = Mutex.create ();
          rbuf = "";
          wbuf = "";
          pending = 0;
          closing = false;
          closed = false;
        }
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()

(** Bind the listening socket, replacing a stale socket file (one
    whose daemon is gone); refuse to displace a live daemon. *)
let bind_socket path : (Unix.file_descr, string) result =
  let addr = Unix.ADDR_UNIX path in
  let stale_check =
    if not (Sys.file_exists path) then Ok ()
    else begin
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect probe addr with
      | () ->
          Unix.close probe;
          Error (Printf.sprintf "%s: a daemon is already listening" path)
      | exception Unix.Unix_error (_, _, _) ->
          Unix.close probe;
          (try Sys.remove path with _ -> ());
          Ok ()
    end
  in
  match stale_check with
  | Error _ as e -> e
  | Ok () -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd addr;
        Unix.listen fd 64
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

(** Push every connection's unflushed responses out, bounded by
    [seconds] — the final write pass of a drain, after the workers
    have finished. Peers that never read again are abandoned at the
    deadline. *)
let drain_flush (d : t) ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    let wfds =
      Hashtbl.fold
        (fun fd c acc -> if wants_write c then fd :: acc else acc)
        d.conns []
    in
    if wfds <> [] && Unix.gettimeofday () < deadline then begin
      (match Unix.select [] wfds [] 0.2 with
      | _, ws, _ ->
          List.iter
            (fun fd ->
              match Hashtbl.find_opt d.conns fd with
              | Some c -> handle_writable d c
              | None -> ())
            ws
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(** Run the daemon. Blocks until a [shutdown] request or a
    SIGTERM/SIGINT arrives; returns [Ok ()] after draining — workers
    finish everything accepted, responses are flushed, the socket file
    is removed. SIGHUP logs a stats snapshot to stderr without
    interrupting service. The VC cache is installed process-wide for
    the daemon's lifetime. *)
let run (cfg : config) : (unit, string) result =
  (match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ());
  match bind_socket cfg.socket_path with
  | Error _ as e -> e
  | Ok listen_fd ->
      let cache =
        E.Vc_cache.create ?disk_dir:cfg.cache_dir
          ~max_bytes:cfg.cache_max_bytes ?fingerprint:cfg.cache_fingerprint ()
      in
      E.Vc_cache.install cache;
      let d =
        {
          cfg;
          cache;
          sched =
            Scheduler.create ~bound:cfg.queue_bound
              ~recycle_after:cfg.recycle_after ~workers:cfg.workers ();
          sup =
            Supervisor.create
              {
                Supervisor.breaker_threshold = cfg.breaker_threshold;
                breaker_cooldown_ms = cfg.breaker_cooldown_ms;
                max_inflight = cfg.max_inflight;
                watchdog_grace = cfg.watchdog_grace;
                watchdog_ms = cfg.watchdog_ms;
              };
          listen_fd;
          conns = Hashtbl.create 16;
          next_cid = 0;
          started = Unix.gettimeofday ();
          parse_errors = Atomic.make 0;
          socket_faults = Atomic.make 0;
          slow_consumers = Atomic.make 0;
          absint_discharged = Atomic.make 0;
          absint_abstained = Atomic.make 0;
          par_branches = Atomic.make 0;
          inv_opens = Atomic.make 0;
          interference_havocs = Atomic.make 0;
        }
      in
      (* Signal-driven lifecycle: TERM/INT request a graceful drain,
         HUP a stats snapshot. Handlers only flip atomics — the select
         loop (woken by EINTR or its own timeout) does the work. *)
      let sig_term = Atomic.make false and sig_hup = Atomic.make false in
      let saved_signals =
        List.filter_map
          (fun (signo, beh) ->
            try Some (signo, Sys.signal signo beh) with _ -> None)
          [
            (Sys.sigterm, Sys.Signal_handle (fun _ -> Atomic.set sig_term true));
            (Sys.sigint, Sys.Signal_handle (fun _ -> Atomic.set sig_term true));
            (Sys.sighup, Sys.Signal_handle (fun _ -> Atomic.set sig_hup true));
          ]
      in
      let cleanup () =
        drain_flush d ~seconds:5.0;
        Supervisor.stop d.sup;
        Hashtbl.iter (fun _ c -> close_conn c) d.conns;
        (try Unix.close listen_fd with _ -> ());
        (try Sys.remove cfg.socket_path with _ -> ());
        List.iter
          (fun (signo, beh) -> try Sys.set_signal signo beh with _ -> ())
          saved_signals;
        E.Vc_cache.uninstall ()
      in
      let rec loop () =
        if Atomic.get sig_hup then begin
          Atomic.set sig_hup false;
          Fmt.epr "daenerys-serve stats: %s@." (Json.to_string (stats_json d))
        end;
        if Atomic.get sig_term then raise Signal_drain;
        let rfds =
          listen_fd
          :: Hashtbl.fold
               (fun fd c acc -> if c.closed then acc else fd :: acc)
               d.conns []
        in
        let wfds =
          Hashtbl.fold
            (fun fd c acc -> if wants_write c then fd :: acc else acc)
            d.conns []
        in
        let readable, writable =
          match Unix.select rfds wfds [] 0.5 with
          | r, w, _ -> (r, w)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
        in
        List.iter
          (fun fd ->
            match Hashtbl.find_opt d.conns fd with
            | Some c -> handle_writable d c
            | None -> ())
          writable;
        List.iter
          (fun fd ->
            if fd = listen_fd then accept_conn d
            else
              match Hashtbl.find_opt d.conns fd with
              | Some c -> handle_readable d c
              | None -> ())
          readable;
        loop ()
      in
      (match loop () with
      | () -> ()
      | exception Shutdown_requested (c, id) ->
          (* Stop admissions, drain everything accepted (their
             responses are written by the workers), then ack. *)
          Scheduler.shutdown d.sched;
          Scheduler.wait d.sched;
          respond c
            (Protocol.response ~id
               [ ("ok", Json.Bool true); ("shutdown", Json.Bool true) ])
      | exception Signal_drain ->
          (* SIGTERM/SIGINT: same drain, no ack connection. The cache's
             disk tier is already durable (every store published
             atomically at store time), so draining the workers is the
             whole flush. *)
          Scheduler.shutdown d.sched;
          Scheduler.wait d.sched);
      cleanup ();
      Ok ()
