(** A fair FIFO-per-client scheduler over a warm pool of domains.

    The batch pool of PR 1 ([Engine.Pool]) drains a fixed array and
    joins its workers — right for one CLI run, wrong for a daemon. This
    scheduler keeps [workers] domains alive across requests (warm
    domains: no spawn cost, and domain-local solver state — statistics,
    budgets — stays resident) and feeds them from per-client queues:

    - {b FIFO per client}: each client's requests run in submission
      order, at most one in flight at a time — which is also what makes
      that client's responses arrive in order.
    - {b Fair across clients}: runnable clients wait in a round-robin
      ring; after each task the client re-enters at the back, so a
      client with a deep queue cannot starve the others.
    - {b Backpressure}: each client's queue is bounded; a submit
      against a full queue is {e rejected immediately} ([`Busy]) rather
      than buffered without limit — the daemon turns this into a
      [busy] response the client can react to.
    - {b Drain on shutdown}: {!shutdown} stops admissions; workers
      finish everything already accepted (in flight {e and} queued)
      before {!wait} returns, so no accepted request is ever dropped.

    Workers are {e replaceable} (the substrate of the PR 10
    supervisor): each of the [workers] capacity slots holds the current
    {e incarnation} of that worker, and

    - {!abandon} writes off an incarnation wedged in a non-cooperative
      task (the watchdog's hard preemption): the task is accounted
      completed — its owner answers the request on the worker's behalf
      — the client is re-rung, and a fresh incarnation is spawned into
      the slot. An OCaml domain cannot be killed from outside, so the
      old one is left to run; if its task ever finishes, the stale
      incarnation notices it was abandoned and exits without touching
      the books. A stuck loop costs one domain, never the pool.
    - {!recycle} retires an incarnation at its next idle point — after
      [recycle_after] raising tasks (automatic hygiene: a domain that
      keeps crashing may have poisoned domain-local state), or on
      demand from the supervisor's per-worker crash counters.

    Tasks must not raise — the daemon wraps each request handler in
    its own catch-all (a failing request becomes an error response,
    not a dead worker). A raising task is caught here anyway and
    counted, as a last line of defense. *)

type task = unit -> unit

type client_q = {
  tasks : task Queue.t;
  mutable in_flight : bool;  (** a worker is running this client's task *)
  mutable in_ring : bool;  (** queued in [ring] (at most once) *)
}

(** One spawned domain. The slot it occupies survives it; the
    incarnation record is the identity the domain checks to learn it
    was abandoned while stuck. *)
type inc = { mutable gone : bool }

type slot = {
  wid : int;  (** stable worker id (slot index) *)
  mutable inc : inc;  (** current incarnation *)
  mutable dom : unit Domain.t option;  (** joinable current domain *)
  mutable running : (int * int) option;  (** (cid, task seq) in flight *)
  mutable retire : bool;  (** recycle after the current task *)
  mutable crashes : int;  (** raising tasks, across incarnations *)
}

type t = {
  lock : Mutex.t;
  runnable : Condition.t;  (** signalled when [ring] gains a client *)
  drained : Condition.t;  (** signalled when all work has finished *)
  clients : (int, client_q) Hashtbl.t;
  ring : int Queue.t;  (** round-robin ring of runnable client ids *)
  bound : int;  (** max queued (not yet running) tasks per client *)
  recycle_after : int;  (** raising tasks before automatic recycle *)
  slots : slot array;
  mutable task_seq : int;  (** distinguishes a slot's successive tasks *)
  mutable stopping : bool;
  mutable live : int;  (** queued + in-flight tasks *)
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable task_failures : int;  (** tasks that raised (should be zero) *)
  mutable respawns : int;  (** incarnations spawned beyond the first *)
  mutable abandoned : int;  (** incarnations written off while stuck *)
}

(* The slot identity of the calling worker domain's current task, for
   code (the supervisor's guard) that runs inside a task and needs to
   name its own worker to {!abandon}/{!recycle}. *)
let slot_key : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(** [(wid, task seq)] of the task the calling domain is running, if it
    is a scheduler worker inside a task. *)
let current_slot () = !(Domain.DLS.get slot_key)

let client_q t cid =
  match Hashtbl.find_opt t.clients cid with
  | Some q -> q
  | None ->
      let q = { tasks = Queue.create (); in_flight = false; in_ring = false } in
      Hashtbl.replace t.clients cid q;
      q

(** Make [cid] runnable if it has work and nothing in flight. *)
let enring t cid (q : client_q) =
  if (not q.in_ring) && (not q.in_flight) && not (Queue.is_empty q.tasks)
  then begin
    q.in_ring <- true;
    Queue.push cid t.ring;
    Condition.signal t.runnable
  end

let rec worker t (slot : slot) (inc : inc) () =
  let cell = Domain.DLS.get slot_key in
  let rec loop () =
    Mutex.lock t.lock;
    while
      Queue.is_empty t.ring && (not (t.stopping && t.live = 0)) && not inc.gone
    do
      Condition.wait t.runnable t.lock
    done;
    if inc.gone then
      (* Abandoned while idle (cannot happen today: [abandon] targets a
         running task) or retired by a racing recycle. Just leave. *)
      Mutex.unlock t.lock
    else if Queue.is_empty t.ring then
      (* stopping && live = 0: everything accepted has been drained. *)
      Mutex.unlock t.lock
    else begin
      let cid = Queue.pop t.ring in
      let q = Hashtbl.find t.clients cid in
      q.in_ring <- false;
      q.in_flight <- true;
      t.task_seq <- t.task_seq + 1;
      let seq = t.task_seq in
      slot.running <- Some (cid, seq);
      cell := Some (slot.wid, seq);
      let task = Queue.pop q.tasks in
      Mutex.unlock t.lock;
      let crashed =
        match task () with () -> false | exception _ -> true
      in
      Mutex.lock t.lock;
      cell := None;
      if inc.gone then
        (* The watchdog wrote this incarnation off mid-task and already
           completed the books (and spawned a successor). Exit without
           double-counting. *)
        Mutex.unlock t.lock
      else begin
        if crashed then begin
          t.task_failures <- t.task_failures + 1;
          slot.crashes <- slot.crashes + 1;
          if t.recycle_after > 0 && slot.crashes mod t.recycle_after = 0 then
            slot.retire <- true
        end;
        slot.running <- None;
        q.in_flight <- false;
        t.live <- t.live - 1;
        t.completed <- t.completed + 1;
        enring t cid q;
        if t.live = 0 then begin
          Condition.broadcast t.drained;
          (* Wake idle workers so they can observe the drained+stopping
             state and exit. *)
          if t.stopping then Condition.broadcast t.runnable
        end;
        if slot.retire && not t.stopping then begin
          (* Hygiene recycle: retire this incarnation and spawn a fresh
             domain into the slot (fresh domain-local state). *)
          slot.retire <- false;
          inc.gone <- true;
          respawn t slot;
          Mutex.unlock t.lock
        end
        else begin
          Mutex.unlock t.lock;
          loop ()
        end
      end
    end
  in
  loop ()

(** Spawn a fresh incarnation into [slot]. Caller holds [t.lock]. *)
and respawn t slot =
  let inc = { gone = false } in
  slot.inc <- inc;
  slot.dom <- Some (Domain.spawn (worker t slot inc));
  t.respawns <- t.respawns + 1

let create ?(bound = 64) ?(recycle_after = 32) ~workers () =
  let n = max 1 workers in
  let t =
    {
      lock = Mutex.create ();
      runnable = Condition.create ();
      drained = Condition.create ();
      clients = Hashtbl.create 16;
      ring = Queue.create ();
      bound = max 0 bound;
      recycle_after = max 0 recycle_after;
      slots =
        Array.init n (fun wid ->
            {
              wid;
              inc = { gone = false };
              dom = None;
              running = None;
              retire = false;
              crashes = 0;
            });
      task_seq = 0;
      stopping = false;
      live = 0;
      submitted = 0;
      rejected = 0;
      completed = 0;
      task_failures = 0;
      respawns = 0;
      abandoned = 0;
    }
  in
  Array.iter
    (fun slot -> slot.dom <- Some (Domain.spawn (worker t slot slot.inc)))
    t.slots;
  t

(** Enqueue [task] for [cid]. [`Busy] when the client's queue is at
    the bound (the task was {e not} accepted); [`Stopping] after
    {!shutdown}. *)
let submit t ~cid (task : task) : [ `Accepted | `Busy | `Stopping ] =
  Mutex.protect t.lock (fun () ->
      if t.stopping then `Stopping
      else
        let q = client_q t cid in
        if Queue.length q.tasks >= t.bound then begin
          t.rejected <- t.rejected + 1;
          `Busy
        end
        else begin
          Queue.push task q.tasks;
          t.live <- t.live + 1;
          t.submitted <- t.submitted + 1;
          enring t cid q;
          `Accepted
        end)

(** Write off the incarnation in slot [wid] {e if} it is still running
    task [seq] (the pair comes from {!current_slot}, recorded when the
    task started — a completed task wins any race against a late
    watchdog). The task is accounted completed — the caller must have
    answered its request already — and a fresh incarnation takes the
    slot. Returns [true] if the write-off happened. *)
let abandon t ~wid ~seq =
  Mutex.protect t.lock (fun () ->
      if wid < 0 || wid >= Array.length t.slots then false
      else
        let slot = t.slots.(wid) in
        match slot.running with
        | Some (cid, s) when s = seq && not slot.inc.gone ->
            slot.inc.gone <- true;
            slot.running <- None;
            t.abandoned <- t.abandoned + 1;
            (match Hashtbl.find_opt t.clients cid with
            | Some q ->
                q.in_flight <- false;
                enring t cid q
            | None -> ());
            t.live <- t.live - 1;
            t.completed <- t.completed + 1;
            if t.live = 0 then begin
              Condition.broadcast t.drained;
              if t.stopping then Condition.broadcast t.runnable
            end;
            (* The old domain is unreferenced from here on: it cannot
               be joined (it may never return) and exits silently if it
               ever does. *)
            respawn t slot;
            true
        | _ -> false)

(** Ask slot [wid]'s incarnation to retire and be replaced after its
    current (or next) task — the supervisor calls this when a worker's
    crash count says its domain-local state is suspect. *)
let recycle t ~wid =
  Mutex.protect t.lock (fun () ->
      if wid >= 0 && wid < Array.length t.slots then
        t.slots.(wid).retire <- true)

(** Record a crashing request against slot [wid] (the supervisor's
    guard catches the exception before the scheduler ever sees it, so
    it reports here). Returns the slot's total crash count. *)
let note_crash t ~wid =
  Mutex.protect t.lock (fun () ->
      if wid >= 0 && wid < Array.length t.slots then begin
        let slot = t.slots.(wid) in
        slot.crashes <- slot.crashes + 1;
        if t.recycle_after > 0 && slot.crashes mod t.recycle_after = 0 then
          slot.retire <- true;
        slot.crashes
      end
      else 0)

(** Stop admitting work. Already-accepted tasks (queued and in-flight)
    still run to completion. *)
let shutdown t =
  Mutex.protect t.lock (fun () ->
      t.stopping <- true;
      Condition.broadcast t.runnable)

(** Block until every accepted task has completed and all (current
    incarnations of) workers have exited. Call after {!shutdown}.
    Abandoned incarnations are not waited for — they may never
    return. *)
let wait t =
  Mutex.lock t.lock;
  while t.live > 0 do
    Condition.wait t.drained t.lock
  done;
  let doms =
    Array.to_list t.slots |> List.filter_map (fun s -> s.dom)
  in
  Array.iter (fun s -> s.dom <- None) t.slots;
  Mutex.unlock t.lock;
  List.iter Domain.join doms

type stats = {
  workers : int;
  pending : int;  (** accepted but not yet completed *)
  submitted : int;
  rejected : int;
  completed : int;
  task_failures : int;
  worker_crashes : int;  (** per-slot crash counters, summed *)
  respawns : int;
  abandoned : int;
}

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        workers = Array.length t.slots;
        pending = t.live;
        submitted = t.submitted;
        rejected = t.rejected;
        completed = t.completed;
        task_failures = t.task_failures;
        worker_crashes =
          Array.fold_left (fun acc s -> acc + s.crashes) 0 t.slots;
        respawns = t.respawns;
        abandoned = t.abandoned;
      })

(** Per-slot crash counters, for the daemon's [stats] op. *)
let crash_counts t =
  Mutex.protect t.lock (fun () ->
      Array.to_list (Array.map (fun s -> s.crashes) t.slots))
