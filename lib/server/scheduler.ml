(** A fair FIFO-per-client scheduler over a warm pool of domains.

    The batch pool of PR 1 ([Engine.Pool]) drains a fixed array and
    joins its workers — right for one CLI run, wrong for a daemon. This
    scheduler keeps [workers] domains alive across requests (warm
    domains: no spawn cost, and domain-local solver state — statistics,
    budgets — stays resident) and feeds them from per-client queues:

    - {b FIFO per client}: each client's requests run in submission
      order, at most one in flight at a time — which is also what makes
      that client's responses arrive in order.
    - {b Fair across clients}: runnable clients wait in a round-robin
      ring; after each task the client re-enters at the back, so a
      client with a deep queue cannot starve the others.
    - {b Backpressure}: each client's queue is bounded; a submit
      against a full queue is {e rejected immediately} ([`Busy]) rather
      than buffered without limit — the daemon turns this into a
      [busy] response the client can react to.
    - {b Drain on shutdown}: {!shutdown} stops admissions; workers
      finish everything already accepted (in flight {e and} queued)
      before {!wait} returns, so no accepted request is ever dropped.

    Tasks must not raise — the daemon wraps each request handler in
    its own catch-all (a failing request becomes an error response,
    not a dead worker). A raising task is caught here anyway and
    counted, as a last line of defense. *)

type task = unit -> unit

type client_q = {
  tasks : task Queue.t;
  mutable in_flight : bool;  (** a worker is running this client's task *)
  mutable in_ring : bool;  (** queued in [ring] (at most once) *)
}

type t = {
  lock : Mutex.t;
  runnable : Condition.t;  (** signalled when [ring] gains a client *)
  drained : Condition.t;  (** signalled when all work has finished *)
  clients : (int, client_q) Hashtbl.t;
  ring : int Queue.t;  (** round-robin ring of runnable client ids *)
  bound : int;  (** max queued (not yet running) tasks per client *)
  mutable stopping : bool;
  mutable live : int;  (** queued + in-flight tasks *)
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable task_failures : int;  (** tasks that raised (should be zero) *)
  mutable workers : unit Domain.t list;
}

let client_q t cid =
  match Hashtbl.find_opt t.clients cid with
  | Some q -> q
  | None ->
      let q = { tasks = Queue.create (); in_flight = false; in_ring = false } in
      Hashtbl.replace t.clients cid q;
      q

(** Make [cid] runnable if it has work and nothing in flight. *)
let enring t cid (q : client_q) =
  if (not q.in_ring) && (not q.in_flight) && not (Queue.is_empty q.tasks)
  then begin
    q.in_ring <- true;
    Queue.push cid t.ring;
    Condition.signal t.runnable
  end

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.ring && not (t.stopping && t.live = 0) do
      Condition.wait t.runnable t.lock
    done;
    if Queue.is_empty t.ring then begin
      (* stopping && live = 0: everything accepted has been drained. *)
      Mutex.unlock t.lock;
      ()
    end
    else begin
      let cid = Queue.pop t.ring in
      let q = Hashtbl.find t.clients cid in
      q.in_ring <- false;
      q.in_flight <- true;
      let task = Queue.pop q.tasks in
      Mutex.unlock t.lock;
      (match task () with
      | () -> ()
      | exception _ ->
          Mutex.protect t.lock (fun () ->
              t.task_failures <- t.task_failures + 1));
      Mutex.lock t.lock;
      q.in_flight <- false;
      t.live <- t.live - 1;
      t.completed <- t.completed + 1;
      enring t cid q;
      if t.live = 0 then begin
        Condition.broadcast t.drained;
        (* Wake idle workers so they can observe the drained+stopping
           state and exit. *)
        if t.stopping then Condition.broadcast t.runnable
      end;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ?(bound = 64) ~workers () =
  let t =
    {
      lock = Mutex.create ();
      runnable = Condition.create ();
      drained = Condition.create ();
      clients = Hashtbl.create 16;
      ring = Queue.create ();
      bound = max 0 bound;
      stopping = false;
      live = 0;
      submitted = 0;
      rejected = 0;
      completed = 0;
      task_failures = 0;
      workers = [];
    }
  in
  t.workers <- List.init (max 1 workers) (fun _ -> Domain.spawn (worker t));
  t

(** Enqueue [task] for [cid]. [`Busy] when the client's queue is at
    the bound (the task was {e not} accepted); [`Stopping] after
    {!shutdown}. *)
let submit t ~cid (task : task) : [ `Accepted | `Busy | `Stopping ] =
  Mutex.protect t.lock (fun () ->
      if t.stopping then `Stopping
      else
        let q = client_q t cid in
        if Queue.length q.tasks >= t.bound then begin
          t.rejected <- t.rejected + 1;
          `Busy
        end
        else begin
          Queue.push task q.tasks;
          t.live <- t.live + 1;
          t.submitted <- t.submitted + 1;
          enring t cid q;
          `Accepted
        end)

(** Stop admitting work. Already-accepted tasks (queued and in-flight)
    still run to completion. *)
let shutdown t =
  Mutex.protect t.lock (fun () ->
      t.stopping <- true;
      Condition.broadcast t.runnable)

(** Block until every accepted task has completed and all workers have
    exited. Call after {!shutdown}. *)
let wait t =
  Mutex.lock t.lock;
  while t.live > 0 do
    Condition.wait t.drained t.lock
  done;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

type stats = {
  workers : int;
  pending : int;  (** accepted but not yet completed *)
  submitted : int;
  rejected : int;
  completed : int;
  task_failures : int;
}

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        workers = List.length t.workers;
        pending = t.live;
        submitted = t.submitted;
        rejected = t.rejected;
        completed = t.completed;
        task_failures = t.task_failures;
      })
