(** A CDCL SAT solver.

    Classic architecture: two-watched-literal propagation, first-UIP
    conflict analysis with clause learning, VSIDS activity ordering
    served by an indexed binary heap, learnt-clause database reduction,
    Luby restarts, and phase saving. The solver is incremental in the
    sense needed by lazy SMT: after a model is found, new (blocking)
    clauses may be added and solving resumed.

    Literal encoding: variable [v] yields literals [2*v] (positive) and
    [2*v+1] (negative). *)

type lit = int

let lit_of_var ?(neg = false) v = (2 * v) lor if neg then 1 else 0
let var_of_lit l = l lsr 1
let neg_lit l = l lxor 1
let is_pos l = l land 1 = 0

type result =
  | Sat
  | Unsat
  | Unknown
  | Resource_out  (** stopped by the [max_conflicts] fuel knob *)

type clause = {
  lits : lit array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
      (** set by [reduce_db]; watch lists drop marked clauses on their
          next traversal *)
}

let dummy_clause = { lits = [||]; activity = 0.0; learnt = false; deleted = false }

(* Growable clause vector — watch lists and the clause databases. The
   seed kept cons lists and rebuilt them on every propagation; vectors
   make traversal cache-friendly and in-place compaction free. *)
type cvec = { mutable data : clause array; mutable sz : int }

let cvec_make () = { data = [||]; sz = 0 }

let cvec_push v c =
  if v.sz = Array.length v.data then begin
    let cap = max 4 (2 * v.sz) in
    let data = Array.make cap dummy_clause in
    Array.blit v.data 0 data 0 v.sz;
    v.data <- data
  end;
  v.data.(v.sz) <- c;
  v.sz <- v.sz + 1

type t = {
  mutable n_vars : int;
  clauses : cvec;
  learnts : cvec;
  mutable watches : cvec array;  (* indexed by literal *)
  mutable assign : int array;  (* var -> -1 unassigned / 0 false / 1 true *)
  mutable level : int array;  (* var -> decision level *)
  mutable reason : clause option array;  (* var -> antecedent clause *)
  mutable phase : bool array;  (* var -> saved phase *)
  mutable activity : float array;  (* var -> VSIDS activity *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable heap : int array;  (* binary max-heap of vars by activity *)
  mutable heap_sz : int;
  mutable hindex : int array;  (* var -> heap position, -1 if absent *)
  mutable seen : bool array;  (* var -> scratch flag for analyze *)
  mutable trail : lit array;
  mutable trail_len : int;
  mutable trail_lim : int array;  (* level -> trail length at its start *)
  mutable n_levels : int;
  mutable prop_head : int;
  mutable max_learnts : int;  (* reduce_db threshold, grows geometrically *)
  mutable ok : bool;  (* false once toplevel conflict found *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learnts_deleted : int;
  mutable heap_decisions : int;  (* heap pops serving branch selection *)
}

let create () =
  {
    n_vars = 0;
    clauses = cvec_make ();
    learnts = cvec_make ();
    watches = Array.init 16 (fun _ -> cvec_make ());
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 None;
    phase = Array.make 8 false;
    activity = Array.make 8 0.0;
    var_inc = 1.0;
    cla_inc = 1.0;
    heap = Array.make 8 0;
    heap_sz = 0;
    hindex = Array.make 8 (-1);
    seen = Array.make 8 false;
    trail = Array.make 8 0;
    trail_len = 0;
    trail_lim = Array.make 8 0;
    n_levels = 0;
    prop_head = 0;
    max_learnts = 256;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    learnts_deleted = 0;
    heap_decisions = 0;
  }

(* ------------------------------------------------------------------ *)
(* Variable activity heap *)

(* Indexed binary max-heap: [heap.(0..heap_sz)] holds variables ordered
   by activity, [hindex] maps a variable to its position (-1 when
   absent) so bumps re-sift in O(log n). Every unassigned variable is
   in the heap: variables leave only through [pick_branch_var] (and are
   immediately assigned) and re-enter on backtracking. *)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.hindex.(b) <- i;
  t.hindex.(a) <- j

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.activity.(t.heap.(i)) > t.activity.(t.heap.(p)) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_sz && t.activity.(t.heap.(l)) > t.activity.(t.heap.(!best))
  then best := l;
  if r < t.heap_sz && t.activity.(t.heap.(r)) > t.activity.(t.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.hindex.(v) < 0 then begin
    t.heap.(t.heap_sz) <- v;
    t.hindex.(v) <- t.heap_sz;
    t.heap_sz <- t.heap_sz + 1;
    heap_up t t.hindex.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_sz <- t.heap_sz - 1;
  let last = t.heap.(t.heap_sz) in
  t.heap.(0) <- last;
  t.hindex.(last) <- 0;
  t.hindex.(v) <- -1;
  if t.heap_sz > 0 then heap_down t 0;
  v

(* ------------------------------------------------------------------ *)
(* Variable allocation *)

let grow_arrays t n =
  let cap a fill =
    let len = Array.length a in
    if n <= len then a
    else begin
      let a' = Array.make (max n (2 * len)) fill in
      Array.blit a 0 a' 0 len;
      a'
    end
  in
  t.assign <- cap t.assign (-1);
  t.level <- cap t.level 0;
  t.reason <- cap t.reason None;
  t.phase <- cap t.phase false;
  t.activity <- cap t.activity 0.0;
  t.heap <- cap t.heap 0;
  t.hindex <- cap t.hindex (-1);
  t.seen <- cap t.seen false;
  t.trail <- cap t.trail 0;
  t.trail_lim <- cap t.trail_lim 0;
  let wlen = Array.length t.watches in
  if 2 * n > wlen then begin
    let w = Array.init (max (2 * n) (2 * wlen)) (fun _ -> cvec_make ()) in
    Array.blit t.watches 0 w 0 wlen;
    t.watches <- w
  end

(** Allocate variables up to id [v]. *)
let ensure_var t v =
  if v >= t.n_vars then begin
    grow_arrays t (v + 1);
    for i = t.n_vars to v do
      heap_insert t i
    done;
    t.n_vars <- v + 1
  end

let new_var t =
  let v = t.n_vars in
  ensure_var t v;
  v

let value_lit t l =
  let a = t.assign.(var_of_lit l) in
  if a < 0 then -1 else if is_pos l then a else 1 - a

let decision_level t = t.n_levels

let enqueue t l reason =
  let v = var_of_lit l in
  t.assign.(v) <- (if is_pos l then 1 else 0);
  t.level.(v) <- t.n_levels;
  t.reason.(v) <- reason;
  t.phase.(v) <- is_pos l;
  t.trail.(t.trail_len) <- l;
  t.trail_len <- t.trail_len + 1

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    (* Uniform rescale preserves the heap order; no re-sift needed. *)
    for i = 0 to t.n_vars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.hindex.(v) >= 0 then heap_up t t.hindex.(v)

let decay_var_activity t = t.var_inc <- t.var_inc /. 0.95

let bump_clause t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    for i = 0 to t.learnts.sz - 1 do
      let c' = t.learnts.data.(i) in
      c'.activity <- c'.activity *. 1e-20
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let decay_cla_activity t = t.cla_inc <- t.cla_inc /. 0.999

(* ------------------------------------------------------------------ *)
(* Propagation *)

let watch t l c = cvec_push t.watches.(l) c

(** Attach a clause of length >= 2 to the watch lists. *)
let attach t c =
  watch t (neg_lit c.lits.(0)) c;
  watch t (neg_lit c.lits.(1)) c

let propagate t =
  let confl = ref None in
  while !confl = None && t.prop_head < t.trail_len do
    let l = t.trail.(t.prop_head) in
    t.prop_head <- t.prop_head + 1;
    t.propagations <- t.propagations + 1;
    (* [l] became true; visit clauses watching [neg l]. Surviving
       watchers are compacted in place at [j]; clauses that move to a
       new watch or were deleted are dropped. *)
    let ws = t.watches.(l) in
    let n = ws.sz in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = ws.data.(!i) in
      incr i;
      if not c.deleted then begin
        let lits = c.lits in
        let falsified = neg_lit l in
        (* Normalize: the false watch sits at position 1. *)
        if lits.(0) = falsified then begin
          lits.(0) <- lits.(1);
          lits.(1) <- falsified
        end;
        if value_lit t lits.(0) = 1 then begin
          (* Clause already satisfied; keep watching. *)
          ws.data.(!j) <- c;
          incr j
        end
        else begin
          (* Find a new literal to watch. *)
          let len = Array.length lits in
          let k = ref 2 and found = ref (-1) in
          while !found < 0 && !k < len do
            if value_lit t lits.(!k) <> 0 then found := !k;
            incr k
          done;
          if !found >= 0 then begin
            lits.(1) <- lits.(!found);
            lits.(!found) <- falsified;
            watch t (neg_lit lits.(1)) c
          end
          else begin
            (* Unit or conflicting; stays on this watch list. *)
            ws.data.(!j) <- c;
            incr j;
            if value_lit t lits.(0) = 0 then begin
              (* Conflict: keep the unvisited tail of the watch list. *)
              while !i < n do
                ws.data.(!j) <- ws.data.(!i);
                incr j;
                incr i
              done;
              confl := Some c
            end
            else enqueue t lits.(0) (Some c)
          end
        end
      end
    done;
    ws.sz <- !j
  done;
  !confl

(* ------------------------------------------------------------------ *)
(* Conflict analysis (first UIP) *)

let analyze t confl =
  let learnt = ref [] in
  let touched = ref [] in
  let counter = ref 0 in
  let p = ref (-1) (* literal being resolved on; -1 = conflict clause *) in
  let confl = ref (Some confl) in
  let idx = ref (t.trail_len - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    (match !confl with
    | None -> invalid_arg "analyze: missing antecedent"
    | Some c ->
        if c.learnt then bump_clause t c;
        Array.iter
          (fun q ->
            if q <> !p then
              let v = var_of_lit q in
              if (not t.seen.(v)) && t.level.(v) > 0 then begin
                t.seen.(v) <- true;
                touched := v :: !touched;
                bump_var t v;
                if t.level.(v) >= t.n_levels then incr counter
                else begin
                  learnt := q :: !learnt;
                  btlevel := max !btlevel t.level.(v)
                end
              end)
          c.lits);
    (* Find next literal on the trail to resolve. *)
    let rec next () =
      let l = t.trail.(!idx) in
      decr idx;
      if t.seen.(var_of_lit l) then l else next ()
    in
    let l = next () in
    decr counter;
    if !counter = 0 then begin
      learnt := neg_lit l :: !learnt;
      continue := false
    end
    else begin
      p := l;
      t.seen.(var_of_lit l) <- false;
      confl := t.reason.(var_of_lit l)
    end
  done;
  List.iter (fun v -> t.seen.(v) <- false) !touched;
  (* The asserting literal must be first. *)
  let lits =
    match !learnt with
    | uip :: rest -> Array.of_list (uip :: rest)
    | [] -> invalid_arg "analyze: empty learnt clause"
  in
  (lits, !btlevel)

let cancel_until t lvl =
  if t.n_levels > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_len - 1 downto bound do
      let v = var_of_lit t.trail.(i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_len <- bound;
    t.prop_head <- bound;
    t.n_levels <- lvl
  end

(* ------------------------------------------------------------------ *)
(* Learnt-clause database reduction *)

(** A clause is locked while it is the antecedent of an assignment: its
    asserting literal sits at position 0 for as long as it is a
    reason, so the check is one array read. Locked clauses are never
    deleted. *)
let locked t c =
  Array.length c.lits > 0
  &&
  match t.reason.(var_of_lit c.lits.(0)) with
  | Some c' -> c' == c
  | None -> false

(** Delete the lower-activity half of the learnt database (skipping
    locked and binary clauses), then purge the watch lists. Deleted
    clauses are marked so any stale watcher reference is dropped on its
    next traversal. *)
let reduce_db t =
  let n = t.learnts.sz in
  let arr = Array.sub t.learnts.data 0 n in
  Array.sort
    (fun (a : clause) (b : clause) -> Float.compare a.activity b.activity)
    arr;
  for i = 0 to (n / 2) - 1 do
    let c = arr.(i) in
    if Array.length c.lits > 2 && not (locked t c) then begin
      c.deleted <- true;
      t.learnts_deleted <- t.learnts_deleted + 1
    end
  done;
  let j = ref 0 in
  for i = 0 to n - 1 do
    let c = t.learnts.data.(i) in
    if not c.deleted then begin
      t.learnts.data.(!j) <- c;
      incr j
    end
  done;
  for i = !j to n - 1 do
    t.learnts.data.(i) <- dummy_clause
  done;
  t.learnts.sz <- !j;
  Array.iter
    (fun ws ->
      let k = ref 0 in
      for i = 0 to ws.sz - 1 do
        let c = ws.data.(i) in
        if not c.deleted then begin
          ws.data.(!k) <- c;
          incr k
        end
      done;
      for i = !k to ws.sz - 1 do
        ws.data.(i) <- dummy_clause
      done;
      ws.sz <- !k)
    t.watches

(* ------------------------------------------------------------------ *)
(* Clause addition *)

(** Add a clause; returns [false] if the solver became trivially
    inconsistent. May be called between [solve] invocations (blocking
    clauses); the solver backtracks to level 0 first. *)
let add_clause t lits =
  if not t.ok then false
  else begin
    cancel_until t 0;
    List.iter (fun l -> ensure_var t (var_of_lit l)) lits;
    (* Sort, then simplify in one linear scan: duplicates land adjacent,
       and with the [2v]/[2v+1] encoding a literal and its negation
       differ only in the low bit, so they land adjacent too —
       [l lxor l' = 1] detects a tautology without the quadratic
       membership test. *)
    let arr = Array.of_list lits in
    Array.sort compare arr;
    let n = Array.length arr in
    let taut = ref false in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let l = arr.(i) in
      if !j > 0 && arr.(!j - 1) = l then () (* duplicate *)
      else begin
        if !j > 0 && arr.(!j - 1) lxor l = 1 then taut := true;
        arr.(!j) <- l;
        incr j
      end
    done;
    let keep = ref [] in
    let sat_at_root = ref false in
    for i = !j - 1 downto 0 do
      match value_lit t arr.(i) with
      | 1 -> sat_at_root := true
      | 0 -> () (* false at level 0: drop *)
      | _ -> keep := arr.(i) :: !keep
    done;
    if !taut || !sat_at_root then true
    else
      match !keep with
      | [] ->
          t.ok <- false;
          false
      | [ l ] ->
          enqueue t l None;
          (match propagate t with
          | Some _ ->
              t.ok <- false;
              false
          | None -> true)
      | lits ->
          let c =
            { lits = Array.of_list lits; activity = 0.0; learnt = false;
              deleted = false }
          in
          cvec_push t.clauses c;
          attach t c;
          true
  end

(* ------------------------------------------------------------------ *)
(* Search *)

let rec pick_branch_var t =
  if t.heap_sz = 0 then -1
  else begin
    t.heap_decisions <- t.heap_decisions + 1;
    let v = heap_pop t in
    if t.assign.(v) < 0 then v else pick_branch_var t
  end

let luby i =
  (* Luby restart sequence. *)
  let rec go k i =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i < (1 lsl (k - 1)) - 1 then go (k - 1) i
    else go (k - 1) (i - ((1 lsl (k - 1)) - 1))
  in
  let rec find_k k = if (1 lsl k) - 1 > i then k else find_k (k + 1) in
  go (find_k 1) i

(** Solve the current clause set. *)
let solve ?(max_conflicts = max_int) t =
  if not t.ok then Unsat
  else begin
    let restart_count = ref 0 in
    let result = ref None in
    while !result = None do
      let budget = 64 * luby !restart_count in
      incr restart_count;
      let conflicts_here = ref 0 in
      while !result = None && !conflicts_here < budget do
        Stdx.Budget.poll ();
        match propagate t with
        | Some confl ->
            t.conflicts <- t.conflicts + 1;
            incr conflicts_here;
            if t.conflicts > max_conflicts then begin
              (Stats.current ()).fuel_sat_conflicts <-
                (Stats.current ()).fuel_sat_conflicts + 1;
              result := Some Resource_out
            end
            else if t.n_levels = 0 then begin
              t.ok <- false;
              result := Some Unsat
            end
            else begin
              let lits, btlevel = analyze t confl in
              cancel_until t btlevel;
              decay_var_activity t;
              decay_cla_activity t;
              if Array.length lits = 1 then enqueue t lits.(0) None
              else begin
                let c =
                  { lits; activity = t.cla_inc; learnt = true;
                    deleted = false }
                in
                cvec_push t.learnts c;
                attach t c;
                enqueue t lits.(0) (Some c)
              end
            end
        | None ->
            if t.learnts.sz >= t.max_learnts then begin
              reduce_db t;
              (* Geometric schedule: each reduction raises the cap, so
                 the database grows but stays bounded relative to the
                 search effort. *)
              t.max_learnts <- t.max_learnts * 13 / 10
            end;
            let v = pick_branch_var t in
            if v < 0 then result := Some Sat
            else begin
              t.decisions <- t.decisions + 1;
              t.trail_lim.(t.n_levels) <- t.trail_len;
              t.n_levels <- t.n_levels + 1;
              enqueue t (lit_of_var ~neg:(not t.phase.(v)) v) None
            end
      done;
      if !result = None then cancel_until t 0 (* restart *)
    done;
    Option.get !result
  end

(** Value of a variable in the current (SAT) assignment. *)
let model_value t v = t.assign.(v) = 1
