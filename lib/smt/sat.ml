(** A CDCL SAT solver.

    Classic architecture: two-watched-literal propagation, first-UIP
    conflict analysis with clause learning, VSIDS-style activity
    ordering, Luby restarts, and phase saving. The solver is
    incremental in the sense needed by lazy SMT: after a model is
    found, new (blocking) clauses may be added and solving resumed.

    Literal encoding: variable [v] yields literals [2*v] (positive) and
    [2*v+1] (negative). *)

type lit = int

let lit_of_var ?(neg = false) v = (2 * v) lor if neg then 1 else 0
let var_of_lit l = l lsr 1
let neg_lit l = l lxor 1
let is_pos l = l land 1 = 0

type result =
  | Sat
  | Unsat
  | Unknown
  | Resource_out  (** stopped by the [max_conflicts] fuel knob *)

type clause = { lits : lit array; mutable activity : float; learnt : bool }

type t = {
  mutable n_vars : int;
  mutable clauses : clause list;
  mutable learnts : clause list;
  mutable watches : clause list array;  (* indexed by literal *)
  mutable assign : int array;  (* var -> -1 unassigned / 0 false / 1 true *)
  mutable level : int array;  (* var -> decision level *)
  mutable reason : clause option array;  (* var -> antecedent clause *)
  mutable phase : bool array;  (* var -> saved phase *)
  mutable activity : float array;  (* var -> VSIDS activity *)
  mutable var_inc : float;
  mutable trail : lit array;
  mutable trail_len : int;
  mutable trail_lim : int list;  (* decision-level markers *)
  mutable prop_head : int;
  mutable ok : bool;  (* false once toplevel conflict found *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
}

let create () =
  {
    n_vars = 0;
    clauses = [];
    learnts = [];
    watches = Array.make 16 [];
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 None;
    phase = Array.make 8 false;
    activity = Array.make 8 0.0;
    var_inc = 1.0;
    trail = Array.make 8 0;
    trail_len = 0;
    trail_lim = [];
    prop_head = 0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
  }

let grow_arrays t n =
  let cap a fill =
    let len = Array.length a in
    if n <= len then a
    else begin
      let a' = Array.make (max n (2 * len)) fill in
      Array.blit a 0 a' 0 len;
      a'
    end
  in
  t.assign <- cap t.assign (-1);
  t.level <- cap t.level 0;
  t.reason <- cap t.reason None;
  t.phase <- cap t.phase false;
  t.activity <- cap t.activity 0.0;
  t.trail <- cap t.trail 0;
  let wlen = Array.length t.watches in
  if 2 * n > wlen then begin
    let w = Array.make (max (2 * n) (2 * wlen)) [] in
    Array.blit t.watches 0 w 0 wlen;
    t.watches <- w
  end

(** Allocate variables up to id [v]. *)
let ensure_var t v =
  if v >= t.n_vars then begin
    grow_arrays t (v + 1);
    t.n_vars <- v + 1
  end

let new_var t =
  let v = t.n_vars in
  ensure_var t v;
  v

let value_lit t l =
  let a = t.assign.(var_of_lit l) in
  if a < 0 then -1 else if is_pos l then a else 1 - a

let decision_level t = List.length t.trail_lim

let enqueue t l reason =
  let v = var_of_lit l in
  t.assign.(v) <- (if is_pos l then 1 else 0);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- is_pos l;
  t.trail.(t.trail_len) <- l;
  t.trail_len <- t.trail_len + 1

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.n_vars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

let decay_var_activity t = t.var_inc <- t.var_inc /. 0.95

(* ------------------------------------------------------------------ *)
(* Propagation *)

exception Conflict of clause

let watch t l c = t.watches.(l) <- c :: t.watches.(l)

(** Attach a clause of length >= 2 to the watch lists. *)
let attach t c =
  watch t (neg_lit c.lits.(0)) c;
  watch t (neg_lit c.lits.(1)) c

let propagate t =
  try
    while t.prop_head < t.trail_len do
      let l = t.trail.(t.prop_head) in
      t.prop_head <- t.prop_head + 1;
      t.propagations <- t.propagations + 1;
      (* [l] became true; visit clauses watching [neg l]. *)
      let watching = t.watches.(l) in
      t.watches.(l) <- [];
      let rec go = function
        | [] -> ()
        | c :: rest -> (
            (* Normalize: false watch at position 0/1 being neg l. *)
            let lits = c.lits in
            let falsified = neg_lit l in
            if lits.(0) = falsified then begin
              lits.(0) <- lits.(1);
              lits.(1) <- falsified
            end;
            if value_lit t lits.(0) = 1 then begin
              (* Clause already satisfied; keep watching. *)
              watch t l c;
              go rest
            end
            else
              (* Find a new literal to watch. *)
              let n = Array.length lits in
              let rec find i =
                if i >= n then None
                else if value_lit t lits.(i) <> 0 then Some i
                else find (i + 1)
              in
              match find 2 with
              | Some i ->
                  lits.(1) <- lits.(i);
                  lits.(i) <- falsified;
                  watch t (neg_lit lits.(1)) c;
                  go rest
              | None ->
                  (* Unit or conflicting. *)
                  watch t l c;
                  if value_lit t lits.(0) = 0 then begin
                    (* Conflict: restore remaining watches first. *)
                    List.iter (fun c' -> watch t l c') rest;
                    raise (Conflict c)
                  end
                  else begin
                    enqueue t lits.(0) (Some c);
                    go rest
                  end)
      in
      go watching
    done;
    None
  with Conflict c -> Some c

(* ------------------------------------------------------------------ *)
(* Conflict analysis (first UIP) *)

let analyze t confl =
  let seen = Array.make t.n_vars false in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) (* literal being resolved on; -1 = conflict clause *) in
  let confl = ref (Some confl) in
  let idx = ref (t.trail_len - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    (match !confl with
    | None -> invalid_arg "analyze: missing antecedent"
    | Some c ->
        Array.iter
          (fun q ->
            if q <> !p then
              let v = var_of_lit q in
              if (not seen.(v)) && t.level.(v) > 0 then begin
                seen.(v) <- true;
                bump_var t v;
                if t.level.(v) >= decision_level t then incr counter
                else begin
                  learnt := q :: !learnt;
                  btlevel := max !btlevel t.level.(v)
                end
              end)
          c.lits);
    (* Find next literal on the trail to resolve. *)
    let rec next () =
      let l = t.trail.(!idx) in
      decr idx;
      if seen.(var_of_lit l) then l else next ()
    in
    let l = next () in
    decr counter;
    if !counter = 0 then begin
      learnt := neg_lit l :: !learnt;
      continue := false
    end
    else begin
      p := l;
      seen.(var_of_lit l) <- false;
      confl := t.reason.(var_of_lit l)
    end
  done;
  (* The asserting literal must be first. *)
  let lits =
    match !learnt with
    | uip :: rest -> Array.of_list (uip :: rest)
    | [] -> invalid_arg "analyze: empty learnt clause"
  in
  (lits, !btlevel)

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let rec marker lim n = match lim with
      | [] -> 0
      | m :: rest -> if n = lvl + 1 then m else marker rest (n - 1)
    in
    let bound = marker t.trail_lim (decision_level t) in
    for i = t.trail_len - 1 downto bound do
      let v = var_of_lit t.trail.(i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- None
    done;
    t.trail_len <- bound;
    t.prop_head <- bound;
    let rec drop lim n = if n = lvl then lim else match lim with
      | _ :: rest -> drop rest (n - 1)
      | [] -> []
    in
    t.trail_lim <- drop t.trail_lim (decision_level t)
  end

(* ------------------------------------------------------------------ *)
(* Clause addition *)

(** Add a clause; returns [false] if the solver became trivially
    inconsistent. May be called between [solve] invocations (blocking
    clauses); the solver backtracks to level 0 first. *)
let add_clause t lits =
  if not t.ok then false
  else begin
    cancel_until t 0;
    List.iter (fun l -> ensure_var t (var_of_lit l)) lits;
    (* Simplify: drop duplicate and false literals, detect tautology. *)
    let lits = List.sort_uniq compare lits in
    let taut =
      List.exists (fun l -> List.mem (neg_lit l) lits) lits
      || List.exists (fun l -> value_lit t l = 1) lits
    in
    if taut then true
    else begin
      let lits = List.filter (fun l -> value_lit t l <> 0) lits in
      match lits with
      | [] ->
          t.ok <- false;
          false
      | [ l ] ->
          enqueue t l None;
          (match propagate t with
          | Some _ ->
              t.ok <- false;
              false
          | None -> true)
      | l0 :: l1 :: _ ->
          ignore l1;
          ignore l0;
          let c = { lits = Array.of_list lits; activity = 0.0; learnt = false } in
          t.clauses <- c :: t.clauses;
          attach t c;
          true
    end
  end

(* ------------------------------------------------------------------ *)
(* Search *)

let pick_branch_var t =
  let best = ref (-1) and best_act = ref neg_infinity in
  for v = 0 to t.n_vars - 1 do
    if t.assign.(v) < 0 && t.activity.(v) > !best_act then begin
      best := v;
      best_act := t.activity.(v)
    end
  done;
  !best

let luby i =
  (* Luby restart sequence. *)
  let rec go k i =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i < (1 lsl (k - 1)) - 1 then go (k - 1) i
    else go (k - 1) (i - ((1 lsl (k - 1)) - 1))
  in
  let rec find_k k = if (1 lsl k) - 1 > i then k else find_k (k + 1) in
  go (find_k 1) i

(** Solve the current clause set. *)
let solve ?(max_conflicts = max_int) t =
  if not t.ok then Unsat
  else begin
    let restart_count = ref 0 in
    let result = ref None in
    while !result = None do
      let budget = 64 * luby !restart_count in
      incr restart_count;
      let conflicts_here = ref 0 in
      (try
         while !result = None && !conflicts_here < budget do
           Stdx.Budget.poll ();
           match propagate t with
           | Some confl ->
               t.conflicts <- t.conflicts + 1;
               incr conflicts_here;
               if t.conflicts > max_conflicts then begin
                 (Stats.current ()).fuel_sat_conflicts <-
                   (Stats.current ()).fuel_sat_conflicts + 1;
                 result := Some Resource_out
               end
               else if decision_level t = 0 then begin
                 t.ok <- false;
                 result := Some Unsat
               end
               else begin
                 let lits, btlevel = analyze t confl in
                 cancel_until t btlevel;
                 decay_var_activity t;
                 if Array.length lits = 1 then enqueue t lits.(0) None
                 else begin
                   let c = { lits; activity = 0.0; learnt = true } in
                   t.learnts <- c :: t.learnts;
                   attach t c;
                   enqueue t lits.(0) (Some c)
                 end
               end
           | None ->
               let v = pick_branch_var t in
               if v < 0 then result := Some Sat
               else begin
                 t.decisions <- t.decisions + 1;
                 t.trail_lim <- t.trail_len :: t.trail_lim;
                 enqueue t (lit_of_var ~neg:(not t.phase.(v)) v) None
               end
         done
       with Conflict _ -> invalid_arg "sat: uncaught conflict");
      if !result = None then cancel_until t 0 (* restart *)
    done;
    Option.get !result
  end

(** Value of a variable in the current (SAT) assignment. *)
let model_value t v = t.assign.(v) = 1
