(** Solver statistics.

    Counters used to live in one process-global mutable record, which
    is unsound once several domains discharge VCs concurrently (the
    parallel engine in [lib/engine]). They are now {e domain-local}:
    every domain accumulates into its own instance, obtained with
    {!current}; the engine snapshots each worker domain's instance
    after the queue drains and merges them with {!sum} into one report.

    Sequential callers keep the old ergonomics: [reset] and [snapshot]
    operate on the calling domain's instance, so a single-domain
    program behaves exactly as before. *)

type t = {
  mutable queries : int;  (** top-level [check_sat] calls *)
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
  mutable theory_checks : int;  (** candidate models checked *)
  mutable lia_checks : int;  (** simplex invocations *)
  mutable euf_checks : int;  (** congruence-closure invocations *)
  mutable blocking_clauses : int;
  mutable eq_propagations : int;  (** cross-theory equalities *)
  mutable combination_timeouts : int;
      (** combination-loop fuel or eq-budget exhaustions — each one is a
          potentially incomplete answer that used to be visible only
          under SMT_DEBUG *)
  mutable session_checks : int;  (** incremental [Session.check_goal] calls *)
  mutable session_fallbacks : int;
      (** session checks outside the convex-literal fragment (or hit by
          an injected session fault), re-solved through the full
          one-shot pipeline *)
  mutable learnts_deleted : int;
      (** learnt clauses dropped by the SAT core's database reduction *)
  mutable heap_decisions : int;
      (** branch selections served by the VSIDS activity heap, counting
          stale (already-assigned) entries that were popped and skipped *)
  mutable fuel_sat_conflicts : int;
      (** CDCL searches stopped by the [max_conflicts] knob *)
  mutable fuel_lazy_rounds : int;
      (** lazy-loop exits via the [max_rounds] knob *)
  mutable fuel_simplex : int;
      (** branch-and-bound exits via the simplex [fuel] knob *)
  mutable fuel_combination : int;
      (** Nelson–Oppen combination-loop fuel exhaustions *)
  mutable fuel_eq_budget : int;
      (** cross-theory equality probes starved by [eq_budget] *)
  mutable deadline_stops : int;
      (** solver exits forced by a wall-clock deadline / cancellation *)
  mutable solve_ms : float;  (** wall-clock time inside [check_sat] *)
}

let create () =
  {
    queries = 0;
    sat_conflicts = 0;
    sat_decisions = 0;
    sat_propagations = 0;
    theory_checks = 0;
    lia_checks = 0;
    euf_checks = 0;
    blocking_clauses = 0;
    eq_propagations = 0;
    combination_timeouts = 0;
    session_checks = 0;
    session_fallbacks = 0;
    learnts_deleted = 0;
    heap_decisions = 0;
    fuel_sat_conflicts = 0;
    fuel_lazy_rounds = 0;
    fuel_simplex = 0;
    fuel_combination = 0;
    fuel_eq_budget = 0;
    deadline_stops = 0;
    solve_ms = 0.0;
  }

let key : t Domain.DLS.key = Domain.DLS.new_key create

(** The calling domain's statistics instance. *)
let current () = Domain.DLS.get key

let reset () =
  let s = current () in
  s.queries <- 0;
  s.sat_conflicts <- 0;
  s.sat_decisions <- 0;
  s.sat_propagations <- 0;
  s.theory_checks <- 0;
  s.lia_checks <- 0;
  s.euf_checks <- 0;
  s.blocking_clauses <- 0;
  s.eq_propagations <- 0;
  s.combination_timeouts <- 0;
  s.session_checks <- 0;
  s.session_fallbacks <- 0;
  s.learnts_deleted <- 0;
  s.heap_decisions <- 0;
  s.fuel_sat_conflicts <- 0;
  s.fuel_lazy_rounds <- 0;
  s.fuel_simplex <- 0;
  s.fuel_combination <- 0;
  s.fuel_eq_budget <- 0;
  s.deadline_stops <- 0;
  s.solve_ms <- 0.0

let copy s = { s with queries = s.queries }

(** A copy of the calling domain's instance. *)
let snapshot () = copy (current ())

let diff a b =
  {
    queries = a.queries - b.queries;
    sat_conflicts = a.sat_conflicts - b.sat_conflicts;
    sat_decisions = a.sat_decisions - b.sat_decisions;
    sat_propagations = a.sat_propagations - b.sat_propagations;
    theory_checks = a.theory_checks - b.theory_checks;
    lia_checks = a.lia_checks - b.lia_checks;
    euf_checks = a.euf_checks - b.euf_checks;
    blocking_clauses = a.blocking_clauses - b.blocking_clauses;
    eq_propagations = a.eq_propagations - b.eq_propagations;
    combination_timeouts = a.combination_timeouts - b.combination_timeouts;
    session_checks = a.session_checks - b.session_checks;
    session_fallbacks = a.session_fallbacks - b.session_fallbacks;
    learnts_deleted = a.learnts_deleted - b.learnts_deleted;
    heap_decisions = a.heap_decisions - b.heap_decisions;
    fuel_sat_conflicts = a.fuel_sat_conflicts - b.fuel_sat_conflicts;
    fuel_lazy_rounds = a.fuel_lazy_rounds - b.fuel_lazy_rounds;
    fuel_simplex = a.fuel_simplex - b.fuel_simplex;
    fuel_combination = a.fuel_combination - b.fuel_combination;
    fuel_eq_budget = a.fuel_eq_budget - b.fuel_eq_budget;
    deadline_stops = a.deadline_stops - b.deadline_stops;
    solve_ms = a.solve_ms -. b.solve_ms;
  }

(** Pointwise sum; used by the engine to merge per-domain snapshots. *)
let sum a b =
  {
    queries = a.queries + b.queries;
    sat_conflicts = a.sat_conflicts + b.sat_conflicts;
    sat_decisions = a.sat_decisions + b.sat_decisions;
    sat_propagations = a.sat_propagations + b.sat_propagations;
    theory_checks = a.theory_checks + b.theory_checks;
    lia_checks = a.lia_checks + b.lia_checks;
    euf_checks = a.euf_checks + b.euf_checks;
    blocking_clauses = a.blocking_clauses + b.blocking_clauses;
    eq_propagations = a.eq_propagations + b.eq_propagations;
    combination_timeouts = a.combination_timeouts + b.combination_timeouts;
    session_checks = a.session_checks + b.session_checks;
    session_fallbacks = a.session_fallbacks + b.session_fallbacks;
    learnts_deleted = a.learnts_deleted + b.learnts_deleted;
    heap_decisions = a.heap_decisions + b.heap_decisions;
    fuel_sat_conflicts = a.fuel_sat_conflicts + b.fuel_sat_conflicts;
    fuel_lazy_rounds = a.fuel_lazy_rounds + b.fuel_lazy_rounds;
    fuel_simplex = a.fuel_simplex + b.fuel_simplex;
    fuel_combination = a.fuel_combination + b.fuel_combination;
    fuel_eq_budget = a.fuel_eq_budget + b.fuel_eq_budget;
    deadline_stops = a.deadline_stops + b.deadline_stops;
    solve_ms = a.solve_ms +. b.solve_ms;
  }

let pp ppf s =
  (* The term pool is a process-global gauge (the hash-consing tables
     are shared by every domain), so it is read live rather than stored
     in the per-domain counter record. *)
  let ps = Term.pool_stats () in
  let lookups = ps.Term.pool_hits + ps.Term.pool_misses in
  let hit_rate =
    if lookups = 0 then 0.0
    else 100.0 *. float_of_int ps.Term.pool_hits /. float_of_int lookups
  in
  Fmt.pf ppf
    "queries=%d conflicts=%d decisions=%d theory=%d lia=%d euf=%d blocked=%d \
     eqprop=%d timeouts=%d session=%d/%d solve=%.1fms@ \
     sat-db: learnts_deleted=%d heap_decisions=%d@ \
     terms: pool=%d hit-rate=%.1f%%@ \
     fuel-out: sat_conflicts=%d lazy_rounds=%d simplex=%d combination=%d \
     eq_budget=%d deadline-stops=%d"
    s.queries s.sat_conflicts s.sat_decisions s.theory_checks s.lia_checks
    s.euf_checks s.blocking_clauses s.eq_propagations s.combination_timeouts
    s.session_checks s.session_fallbacks s.solve_ms s.learnts_deleted
    s.heap_decisions ps.Term.pool_size hit_rate s.fuel_sat_conflicts
    s.fuel_lazy_rounds s.fuel_simplex s.fuel_combination s.fuel_eq_budget
    s.deadline_stops
