(** Linear integer arithmetic via general simplex with branch-and-bound.

    The rational core is the Dutertre–de Moura "general simplex" used
    in DPLL(T) solvers: every constraint [Σ cᵢ·xᵢ ⋈ k] is turned into a
    slack variable [s = Σ cᵢ·xᵢ] (a tableau row) plus a bound on [s].
    Strict bounds are handled with δ-rationals (pairs [v + k·δ] for an
    infinitesimal δ). Integrality is recovered by branch-and-bound on
    the rational relaxation.

    The solver is {e backtrackable}: {!push} records a mark and {!pop}
    undoes every bound change (and the trivially-unsat flag) since the
    matching mark. Only bounds need undoing — pivoting is a
    solution-space-preserving change of basis, so accumulated pivots
    survive backtracking, and tableau rows / variables allocated inside
    a popped scope simply linger unconstrained (a slack with no bounds
    restricts nothing; identical expressions reuse their slack through
    a memo table, so sessions do not grow rows per re-assertion).
    Branch-and-bound itself runs on push/pop instead of copying the
    tableau per branch. *)

open Stdx

(* δ-rationals: v + d·δ, ordered lexicographically. *)
module Dq = struct
  type t = { v : Q.t; d : Q.t }

  let of_q v = { v; d = Q.zero }
  let zero = of_q Q.zero
  let make v d = { v; d }
  let add a b = { v = Q.add a.v b.v; d = Q.add a.d b.d }
  let sub a b = { v = Q.sub a.v b.v; d = Q.sub a.d b.d }
  let scale c a = { v = Q.mul c a.v; d = Q.mul c a.d }

  let compare a b =
    let c = Q.compare a.v b.v in
    if c <> 0 then c else Q.compare a.d b.d

  let leq a b = compare a b <= 0
  let lt a b = compare a b < 0
  let pp ppf a =
    if Q.equal a.d Q.zero then Q.pp ppf a.v
    else Fmt.pf ppf "%a+(%a)δ" Q.pp a.v Q.pp a.d
end

type op = Le | Lt | Ge | Gt | Eq

(* A linear expression: coefficient map over variable ids. *)
module Linexp = struct
  type t = Q.t Smap.t

  let empty : t = Smap.empty

  let add_term x c (e : t) : t =
    Smap.update x
      (function
        | None -> if Q.equal c Q.zero then None else Some c
        | Some c' ->
            let s = Q.add c c' in
            if Q.equal s Q.zero then None else Some s)
      e

  let of_list l = List.fold_left (fun e (x, c) -> add_term x c e) empty l
  let is_empty (e : t) = Smap.is_empty e
end

type undo =
  | Mark
  | Lower of int * Dq.t option  (** restore a lower bound *)
  | Upper of int * Dq.t option  (** restore an upper bound *)
  | Triv  (** clear [trivially_unsat] (only the false→true edge is trailed) *)

type t = {
  mutable n : int;  (* number of solver variables *)
  names : (string, int) Hashtbl.t;
  slack_memo : ((string * Q.t) list, int) Hashtbl.t;
      (* canonical expression -> its slack row, so re-asserting the
         same expression in a session reuses the row *)
  mutable rows : (int * Q.t) list array;  (* basic var -> row over nonbasics *)
  mutable is_basic : bool array;
  mutable lower : Dq.t option array;
  mutable upper : Dq.t option array;
  mutable beta : Dq.t array;
  mutable trivially_unsat : bool;
  mutable trail : undo list;
}

let create () =
  {
    n = 0;
    names = Hashtbl.create 16;
    slack_memo = Hashtbl.create 16;
    rows = Array.make 16 [];
    is_basic = Array.make 16 false;
    lower = Array.make 16 None;
    upper = Array.make 16 None;
    beta = Array.make 16 Dq.zero;
    trivially_unsat = false;
    trail = [];
  }

let grow t n =
  if n >= Array.length t.is_basic then begin
    let cap = max (n + 1) (2 * Array.length t.is_basic) in
    let copy a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 t.n;
      a'
    in
    t.rows <- copy t.rows [];
    t.is_basic <- copy t.is_basic false;
    t.lower <- copy t.lower None;
    t.upper <- copy t.upper None;
    t.beta <- copy t.beta Dq.zero
  end

let fresh_var t =
  let id = t.n in
  grow t id;
  t.n <- id + 1;
  id

let var_of_name t x =
  match Hashtbl.find_opt t.names x with
  | Some id -> id
  | None ->
      let id = fresh_var t in
      Hashtbl.add t.names x id;
      id

let tighten_lower t x b =
  match t.lower.(x) with
  | Some l when Dq.leq b l -> ()
  | old ->
      t.trail <- Lower (x, old) :: t.trail;
      t.lower.(x) <- Some b

let tighten_upper t x b =
  match t.upper.(x) with
  | Some u when Dq.leq u b -> ()
  | old ->
      t.trail <- Upper (x, old) :: t.trail;
      t.upper.(x) <- Some b

let set_trivially_unsat t =
  if not t.trivially_unsat then begin
    t.trail <- Triv :: t.trail;
    t.trivially_unsat <- true
  end

(* --------------------------------------------------------------- *)
(* Backtracking *)

let push t = t.trail <- Mark :: t.trail

(** Undo every bound change back to the latest {!push} mark. Rows,
    variables, and pivots persist — see the module comment. *)
let rec pop t =
  match t.trail with
  | [] -> invalid_arg "Simplex.pop: no matching push"
  | Mark :: rest -> t.trail <- rest
  | Lower (x, old) :: rest ->
      t.lower.(x) <- old;
      t.trail <- rest;
      pop t
  | Upper (x, old) :: rest ->
      t.upper.(x) <- old;
      t.trail <- rest;
      pop t
  | Triv :: rest ->
      t.trivially_unsat <- false;
      t.trail <- rest;
      pop t

(* --------------------------------------------------------------- *)
(* Heavyweight checkpoints *)

(** Trail-based {!push}/{!pop} undoes only bounds — variables, rows and
    pivots accumulated inside the scope persist (harmless within one
    query, where the slack memo makes re-assertion converge). A
    long-lived {e session} state cannot afford that: every popped goal
    probe would leave its purification variables behind and the tableau
    would grow without bound, making each subsequent check pay for all
    previous ones. A {!snapshot} captures the full tableau shape so
    {!restore} deallocates everything the scope created — including
    pivots that substituted scope-local variables into outer rows.

    Snapshots must be restored LIFO: restoring an outer snapshot
    discards any inner scopes still notionally open. *)
type snapshot = {
  s_n : int;
  s_rows : (int * Q.t) list array;
  s_is_basic : bool array;
  s_lower : Dq.t option array;
  s_upper : Dq.t option array;
  s_beta : Dq.t array;
  s_names : (string, int) Hashtbl.t;
  s_memo : ((string * Q.t) list, int) Hashtbl.t;
  s_triv : bool;
  s_trail : undo list;
}

let checkpoint t : snapshot =
  {
    s_n = t.n;
    s_rows = Array.sub t.rows 0 t.n;
    s_is_basic = Array.sub t.is_basic 0 t.n;
    s_lower = Array.sub t.lower 0 t.n;
    s_upper = Array.sub t.upper 0 t.n;
    s_beta = Array.sub t.beta 0 t.n;
    s_names = Hashtbl.copy t.names;
    s_memo = Hashtbl.copy t.slack_memo;
    s_triv = t.trivially_unsat;
    s_trail = t.trail;
  }

let restore t (s : snapshot) =
  (* Clear slots allocated since the checkpoint so reallocation starts
     from clean state, then reinstate the saved prefix (pivots inside
     the scope may have rewritten outer rows). *)
  for x = s.s_n to t.n - 1 do
    t.rows.(x) <- [];
    t.is_basic.(x) <- false;
    t.lower.(x) <- None;
    t.upper.(x) <- None;
    t.beta.(x) <- Dq.zero
  done;
  Array.blit s.s_rows 0 t.rows 0 s.s_n;
  Array.blit s.s_is_basic 0 t.is_basic 0 s.s_n;
  Array.blit s.s_lower 0 t.lower 0 s.s_n;
  Array.blit s.s_upper 0 t.upper 0 s.s_n;
  Array.blit s.s_beta 0 t.beta 0 s.s_n;
  t.n <- s.s_n;
  Hashtbl.reset t.names;
  Hashtbl.iter (Hashtbl.add t.names) s.s_names;
  Hashtbl.reset t.slack_memo;
  Hashtbl.iter (Hashtbl.add t.slack_memo) s.s_memo;
  t.trivially_unsat <- s.s_triv;
  t.trail <- s.s_trail

let row_coeff row y =
  match List.assoc_opt y row with Some c -> c | None -> Q.zero

(** [add_scaled base c extra] is the linear combination
    [base + c·extra] as an association list without zero entries. *)
let add_scaled base c extra =
  List.fold_left
    (fun acc (z, cz) ->
      let cz = Q.mul c cz in
      let merged = Q.add (row_coeff acc z) cz in
      let acc = List.filter (fun (w, _) -> w <> z) acc in
      if Q.equal merged Q.zero then acc else (z, merged) :: acc)
    base extra

(** The tableau row [s = e] for a slack [s]; memoized per expression so
    sessions that re-assert the same expression after a pop reuse the
    existing row instead of growing the tableau.

    In a persistent tableau the basis may have pivoted before a new
    constraint arrives, so variables of [e] can be {e basic}; they are
    expanded through their defining rows to keep every row expressed
    over nonbasics — the invariant pivoting relies on. (The one-shot
    solver never hit this: all asserts preceded the first pivot.) *)
let slack_for t (e : Linexp.t) =
  let key = Smap.bindings e in
  match Hashtbl.find_opt t.slack_memo key with
  | Some s -> s
  | None ->
      let s = fresh_var t in
      let row =
        List.fold_left
          (fun acc (x, c) ->
            let x = var_of_name t x in
            if t.is_basic.(x) then add_scaled acc c t.rows.(x)
            else add_scaled acc c [ (x, Q.one) ])
          [] key
      in
      t.is_basic.(s) <- true;
      t.rows.(s) <- row;
      Hashtbl.add t.slack_memo key s;
      s

(** Assert [e ⋈ k]. Single-variable expressions bound the variable
    directly; general expressions go through a slack variable. *)
let assert_atom t (e : Linexp.t) (op : op) (k : Q.t) =
  if Linexp.is_empty e then begin
    (* Constant constraint: 0 ⋈ k. *)
    let holds =
      match op with
      | Le -> Q.leq Q.zero k
      | Lt -> Q.lt Q.zero k
      | Ge -> Q.geq Q.zero k
      | Gt -> Q.gt Q.zero k
      | Eq -> Q.equal Q.zero k
    in
    if not holds then set_trivially_unsat t
  end
  else begin
    let x, unit_coeff =
      match Smap.bindings e with
      | [ (x, c) ] -> (Some (var_of_name t x), c)
      | _ -> (None, Q.one)
    in
    let target, scale =
      match x with
      | Some x -> (x, unit_coeff)
      | None -> (slack_for t e, Q.one)
    in
    (* target·scale ⋈ k, i.e. target ⋈ k/scale (flipping on negative). *)
    let k = Q.div k scale in
    let op =
      if Q.lt scale Q.zero then
        match op with Le -> Ge | Lt -> Gt | Ge -> Le | Gt -> Lt | Eq -> Eq
      else op
    in
    (* Integer tightening: every solver variable is integral (problem
       variables by sorting, slacks as integer combinations when the
       expression has integer coefficients), so strict bounds tighten
       to non-strict ones on the adjacent integer and fractional
       constants round inward. Without this, branch-and-bound cannot
       refute facts like [x < n ∧ x + 1 > n] (no integer strictly
       between consecutive integers) and diverges. *)
    let integral =
      (* A problem variable is integral by sorting; a slack is integral
         when the expression's coefficients all are. *)
      match x with
      | Some _ -> true
      | None -> Smap.for_all (fun _ c -> Q.is_int c) e
    in
    if integral then
      match op with
      | Le -> tighten_upper t target (Dq.of_q (Q.of_int (Q.floor k)))
      | Lt ->
          let b = if Q.is_int k then Q.num k - 1 else Q.floor k in
          tighten_upper t target (Dq.of_q (Q.of_int b))
      | Ge -> tighten_lower t target (Dq.of_q (Q.of_int (Q.ceil k)))
      | Gt ->
          let b = if Q.is_int k then Q.num k + 1 else Q.ceil k in
          tighten_lower t target (Dq.of_q (Q.of_int b))
      | Eq ->
          if Q.is_int k then begin
            tighten_lower t target (Dq.of_q k);
            tighten_upper t target (Dq.of_q k)
          end
          else set_trivially_unsat t
    else
      match op with
      | Le -> tighten_upper t target (Dq.of_q k)
      | Lt -> tighten_upper t target (Dq.make k Q.minus_one)
      | Ge -> tighten_lower t target (Dq.of_q k)
      | Gt -> tighten_lower t target (Dq.make k Q.one)
      | Eq ->
          tighten_lower t target (Dq.of_q k);
          tighten_upper t target (Dq.of_q k)
  end

(* ------------------------------------------------------------------ *)
(* The simplex core *)

(** Recompute β for basic variables from nonbasic assignments. *)
let recompute_basics t =
  for x = 0 to t.n - 1 do
    if t.is_basic.(x) then
      t.beta.(x) <-
        List.fold_left
          (fun acc (y, c) -> Dq.add acc (Dq.scale c t.beta.(y)))
          Dq.zero t.rows.(x)
  done

let init_assignment t =
  for x = 0 to t.n - 1 do
    if not t.is_basic.(x) then
      t.beta.(x) <-
        (match (t.lower.(x), t.upper.(x)) with
        | Some l, _ -> l
        | None, Some u -> u
        | None, None -> Dq.zero)
  done;
  recompute_basics t

let out_of_bounds t x =
  (match t.lower.(x) with Some l -> Dq.lt t.beta.(x) l | None -> false)
  || match t.upper.(x) with Some u -> Dq.lt u t.beta.(x) | None -> false

(** Pivot basic [x] with nonbasic [y] (occurring in x's row) and move
    β(x) to [v], adjusting β(y) so all rows stay satisfied. *)
let pivot_and_update t x y v =
  let row_x = t.rows.(x) in
  let a_xy = row_coeff row_x y in
  (* Solve x's row for y: y = x/a_xy - Σ_{z≠y} (a_xz/a_xy)·z. *)
  let inv = Q.inv a_xy in
  let row_y =
    (x, inv)
    :: List.filter_map
         (fun (z, c) ->
           if z = y then None else Some (z, Q.neg (Q.mul c inv)))
         row_x
  in
  let theta = Dq.scale inv (Dq.sub v t.beta.(x)) in
  t.beta.(x) <- v;
  t.beta.(y) <- Dq.add t.beta.(y) theta;
  t.is_basic.(x) <- false;
  t.is_basic.(y) <- true;
  t.rows.(x) <- [];
  t.rows.(y) <- row_y;
  (* Substitute y's definition into every other row. *)
  for b = 0 to t.n - 1 do
    if t.is_basic.(b) && b <> y then begin
      let row = t.rows.(b) in
      let c_y = row_coeff row y in
      if not (Q.equal c_y Q.zero) then begin
        let base = List.filter (fun (z, _) -> z <> y) row in
        t.rows.(b) <- add_scaled base c_y row_y
      end
    end
  done;
  recompute_basics t

type check_result = Sat | Unsat

let bounds_consistent t =
  let ok = ref true in
  for x = 0 to t.n - 1 do
    match (t.lower.(x), t.upper.(x)) with
    | Some l, Some u when Dq.lt u l -> ok := false
    | _ -> ()
  done;
  !ok

(** Rational feasibility check (Bland's rule for termination). *)
let check_rational t =
  if t.trivially_unsat || not (bounds_consistent t) then Unsat
  else begin
    init_assignment t;
    let result = ref None in
    let steps = ref 0 in
    while !result = None do
      incr steps;
      Budget.poll ();
      (* Bland's rule (smallest index both for the leaving and the
         entering variable) guarantees termination; the assertion
         guards against implementation bugs, not theory. *)
      if !steps > 2_000_000 then failwith "Simplex.check_rational: cycling"
      else begin
        (* Smallest-index out-of-bounds basic variable. *)
        let x = ref (-1) in
        (try
           for i = 0 to t.n - 1 do
             if t.is_basic.(i) && out_of_bounds t i then begin
               x := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !x < 0 then result := Some Sat
        else begin
          let x = !x in
          let below =
            match t.lower.(x) with
            | Some l -> Dq.lt t.beta.(x) l
            | None -> false
          in
          let target =
            if below then Option.get t.lower.(x) else Option.get t.upper.(x)
          in
          (* Find a suitable nonbasic variable (smallest index). *)
          let row = List.sort (fun (a, _) (b, _) -> compare a b) t.rows.(x) in
          let suitable (y, c) =
            if below then
              (Q.gt c Q.zero
              && (match t.upper.(y) with
                 | None -> true
                 | Some u -> Dq.lt t.beta.(y) u))
              || (Q.lt c Q.zero
                 && match t.lower.(y) with
                    | None -> true
                    | Some l -> Dq.lt l t.beta.(y))
            else
              (Q.lt c Q.zero
              && (match t.upper.(y) with
                 | None -> true
                 | Some u -> Dq.lt t.beta.(y) u))
              || (Q.gt c Q.zero
                 && match t.lower.(y) with
                    | None -> true
                    | Some l -> Dq.lt l t.beta.(y))
          in
          match List.find_opt suitable row with
          | None -> result := Some Unsat
          | Some (y, _) -> pivot_and_update t x y target
        end
      end
    done;
    Option.get !result
  end

(* ------------------------------------------------------------------ *)
(* Concrete models and integrality *)

(** Choose a concrete rational value for δ small enough that every
    satisfied δ-rational bound stays satisfied concretely, then read
    off the model. *)
let concrete_model t =
  let delta = ref Q.one in
  (* [lo ≤ hi] holds lexicographically; make it hold for concrete δ:
     lo.v + lo.d·δ ≤ hi.v + hi.d·δ, i.e. (lo.d - hi.d)·δ ≤ hi.v - lo.v.
     Binding only when lo.d > hi.d, in which case hi.v - lo.v > 0. *)
  let constrain (lo : Dq.t) (hi : Dq.t) =
    let num = Q.sub hi.Dq.v lo.Dq.v and den = Q.sub lo.Dq.d hi.Dq.d in
    if Q.gt den Q.zero && Q.gt num Q.zero then
      delta := Q.min !delta (Q.div num den)
  in
  for x = 0 to t.n - 1 do
    (match t.lower.(x) with Some l -> constrain l t.beta.(x) | None -> ());
    match t.upper.(x) with Some u -> constrain t.beta.(x) u | None -> ()
  done;
  let d = !delta in
  Array.init t.n (fun x ->
      let b = t.beta.(x) in
      Q.add b.Dq.v (Q.mul b.Dq.d d))

type int_result = IModel of int Smap.t | IUnsat | IResource_out

(** Integer feasibility by branch-and-bound on the named (problem)
    variables. With integer coefficients, integrality of the problem
    variables forces integrality of slacks, so branching on problem
    variables is complete. Running out of [fuel] reports
    [IResource_out] — never silently [IUnsat], since the caller uses
    unsatisfiability to claim entailments.

    Branches are explored by tightening a bound under {!push} and
    undoing it with {!pop}, so the caller's bounds are intact on
    return (the basis may have moved, which is semantics-preserving). *)
let check_int ?(fuel = 10_000) t : int_result =
  let fuel = Budget.Fuel.create ~knob:"simplex_fuel" fuel in
  let rec go () =
    Budget.poll ();
    if not (Budget.Fuel.spend fuel) then begin
      (Stats.current ()).fuel_simplex <- (Stats.current ()).fuel_simplex + 1;
      IResource_out
    end
    else begin
      match check_rational t with
      | Unsat -> IUnsat
      | Sat -> (
          let model = concrete_model t in
          let frac = ref None in
          Hashtbl.iter
            (fun name id ->
              if !frac = None && not (Q.is_int model.(id)) then
                frac := Some (name, id, model.(id)))
            t.names;
          match !frac with
          | None ->
              let m = ref Smap.empty in
              Hashtbl.iter
                (fun name id -> m := Smap.add name (Q.floor model.(id)) !m)
                t.names;
              IModel !m
          | Some (_, id, q) -> (
              let branch bound =
                push t;
                bound ();
                let r = go () in
                pop t;
                r
              in
              match
                branch (fun () ->
                    tighten_upper t id (Dq.of_q (Q.of_int (Q.floor q))))
              with
              | IModel m -> IModel m
              | IUnsat ->
                  branch (fun () ->
                      tighten_lower t id (Dq.of_q (Q.of_int (Q.ceil q))))
              | IResource_out -> IResource_out))
    end
  in
  go ()
