(** The lazy SMT(EUF + LIA) solver.

    Pipeline: int-[ite] elimination → Tseitin CNF over theory atoms →
    CDCL; every propositional model is checked by {!Theory}; theory
    conflicts come back as blocking clauses over a greedily minimized
    core. Equality atoms over integers get eager splitting lemmas
    [a = b ∨ a < b ∨ b < a] so that negated equalities reach the
    arithmetic solver as strict inequalities. *)

open Stdx

type model = { ints : int Smap.t; bools : bool Smap.t }

type result =
  | Sat of model
  | Unsat
  | Unknown  (** genuinely incomplete: the VC left the decided fragment *)
  | Resource_out of Budget.reason
      (** a fuel knob ran dry before an answer; distinct from [Unknown]
          because a retry with a bigger budget may well succeed *)

let pp_model ppf m =
  Fmt.pf ppf "@[<v>%a@ %a@]"
    (Smap.pp Fmt.int) m.ints
    (Smap.pp Fmt.bool) m.bools

(* ------------------------------------------------------------------ *)
(* Preprocessing: eliminate integer-sorted ite *)

let elim_ite gensym (ts : Term.t list) : Term.t list =
  let defs = ref [] in
  (* Memo keyed on the intern id: O(1) lookups, no tree hashing. *)
  let memo : (int, Term.t) Hashtbl.t = Hashtbl.create 16 in
  let rec go (t : Term.t) : Term.t =
    match Term.view t with
    | Term.Ite (c, a, b) when Sort.equal (Term.sort_of a) Sort.Int -> (
        match Hashtbl.find_opt memo (Term.id t) with
        | Some v -> v
        | None ->
            let c = go c and a = go a and b = go b in
            let v = Term.var (Gensym.fresh ~hint:"ite" gensym) in
            defs := Term.implies c (Term.eq v a) :: !defs;
            defs := Term.implies (Term.not_ c) (Term.eq v b) :: !defs;
            Hashtbl.add memo (Term.id t) v;
            v)
    | Term.Ite (c, a, b) ->
        (* Boolean ite: expand propositionally. *)
        Term.and_
          [ Term.implies (go c) (go a); Term.implies (Term.not_ (go c)) (go b) ]
    | Term.Var _ | Term.Int_lit _ | Term.True | Term.False -> t
    | Term.App (f, args) -> Term.app f (List.map go args)
    | Term.Pred (f, args) -> Term.pred f (List.map go args)
    | Term.Add (a, b) -> Term.add (go a) (go b)
    | Term.Sub (a, b) -> Term.sub (go a) (go b)
    | Term.Mul (a, b) -> Term.mul (go a) (go b)
    | Term.Eq (a, b) -> Term.eq (go a) (go b)
    | Term.Le (a, b) -> Term.le (go a) (go b)
    | Term.Lt (a, b) -> Term.lt (go a) (go b)
    | Term.Not a -> Term.not_ (go a)
    | Term.And xs -> Term.and_ (List.map go xs)
    | Term.Or xs -> Term.or_ (List.map go xs)
    | Term.Implies (a, b) -> Term.implies (go a) (go b)
    | Term.Iff (a, b) -> Term.iff (go a) (go b)
  in
  let ts = List.map go ts in
  ts @ !defs

(* ------------------------------------------------------------------ *)
(* Tseitin encoding *)

(* All memo tables are keyed on the intern id (hash-consing makes
   structurally equal terms share one id), so lookups cost a word
   hash instead of a tree hash. Ids are process-local, which is fine:
   an encoder never outlives the process. *)
type encoder = {
  sat : Sat.t;
  atom_vars : (int, int) Hashtbl.t;  (* Term.id -> SAT var *)
  mutable atoms : (int * Term.t) list;  (* SAT var -> atom *)
  memo : (int, Sat.lit) Hashtbl.t;  (* Term.id -> encoded literal *)
  mutable split_done : (int, unit) Hashtbl.t;  (* Term.id *)
}

let atom_var enc (t : Term.t) =
  match Hashtbl.find_opt enc.atom_vars (Term.id t) with
  | Some v -> v
  | None ->
      let v = Sat.new_var enc.sat in
      Hashtbl.add enc.atom_vars (Term.id t) v;
      enc.atoms <- (v, t) :: enc.atoms;
      v

let is_atom (t : Term.t) =
  match Term.view t with
  | Term.Eq _ | Term.Le _ | Term.Lt _ | Term.Pred _ -> true
  | Term.Var (_, Sort.Bool) -> true
  | _ -> false

(** Eager integer-equality splitting: [a = b ∨ a < b ∨ b < a]. *)
let rec add_split_lemma enc (t : Term.t) =
  match Term.view t with
  | Term.Eq (a, b)
    when Sort.equal (Term.sort_of a) Sort.Int
         && not (Hashtbl.mem enc.split_done (Term.id t)) ->
      Hashtbl.add enc.split_done (Term.id t) ();
      let v_eq = atom_var enc t in
      (* [Term.lt] cannot fold here: an interned [Eq (a, b)] node
         guarantees a and b are distinct non-literal operands. *)
      let v_lt = atom_var enc (Term.lt a b) in
      let v_gt = atom_var enc (Term.lt b a) in
      ignore
        (Sat.add_clause enc.sat
           [ Sat.lit_of_var v_eq; Sat.lit_of_var v_lt; Sat.lit_of_var v_gt ])
  | _ -> ()

and encode enc (t : Term.t) : Sat.lit =
  match Hashtbl.find_opt enc.memo (Term.id t) with
  | Some l -> l
  | None ->
      let l =
        match Term.view t with
        | _ when is_atom t ->
            add_split_lemma enc t;
            Sat.lit_of_var (atom_var enc t)
        | Term.True ->
            let v = Sat.new_var enc.sat in
            ignore (Sat.add_clause enc.sat [ Sat.lit_of_var v ]);
            Sat.lit_of_var v
        | Term.False ->
            let v = Sat.new_var enc.sat in
            ignore (Sat.add_clause enc.sat [ Sat.lit_of_var ~neg:true v ]);
            Sat.lit_of_var v
        | Term.Not a -> Sat.neg_lit (encode enc a)
        | Term.And ts ->
            let lits = List.map (encode enc) ts in
            let v = Sat.new_var enc.sat in
            let lv = Sat.lit_of_var v in
            List.iter
              (fun li ->
                ignore (Sat.add_clause enc.sat [ Sat.neg_lit lv; li ]))
              lits;
            ignore
              (Sat.add_clause enc.sat (lv :: List.map Sat.neg_lit lits));
            lv
        | Term.Or ts ->
            let lits = List.map (encode enc) ts in
            let v = Sat.new_var enc.sat in
            let lv = Sat.lit_of_var v in
            List.iter
              (fun li ->
                ignore (Sat.add_clause enc.sat [ lv; Sat.neg_lit li ]))
              lits;
            ignore (Sat.add_clause enc.sat (Sat.neg_lit lv :: lits));
            lv
        | Term.Implies (a, b) -> encode enc (Term.or_ [ Term.not_ a; b ])
        | Term.Iff (a, b) ->
            let la = encode enc a and lb = encode enc b in
            let v = Sat.new_var enc.sat in
            let lv = Sat.lit_of_var v in
            ignore
              (Sat.add_clause enc.sat
                 [ Sat.neg_lit lv; Sat.neg_lit la; lb ]);
            ignore
              (Sat.add_clause enc.sat
                 [ Sat.neg_lit lv; la; Sat.neg_lit lb ]);
            ignore (Sat.add_clause enc.sat [ lv; la; lb ]);
            ignore
              (Sat.add_clause enc.sat [ lv; Sat.neg_lit la; Sat.neg_lit lb ]);
            lv
        | _ ->
            invalid_arg (Fmt.str "Solver.encode: unexpected term %a" Term.pp t)
      in
      Hashtbl.add enc.memo (Term.id t) l;
      l

(* ------------------------------------------------------------------ *)
(* Theory interaction *)

(* Read once per process instead of once per theory conflict. *)
let debug = lazy (Sys.getenv_opt "SMT_DEBUG" <> None)

(** A persistent theory stack: one {!Theory.state} kept alive across
    lazy-loop rounds and minimization probes, with each asserted
    literal in its own push frame. {!sync} re-points the stack at a new
    literal sequence by popping down to the longest common prefix and
    asserting only the suffix — candidate models from consecutive
    rounds (and consecutive deletion probes) agree on long prefixes, so
    most literals are never re-purified or re-asserted. *)
type tstack = { tstate : Theory.state; mutable asserted : Theory.atom list }

let tstack_create () = { tstate = Theory.create (); asserted = [] }

(* Physical term equality suffices: the lazy loop and the minimizer
   rebuild literal lists from the same interned atom terms. A false
   negative only costs a pop/re-assert, never correctness. *)
let same_atom (a : Theory.atom) (b : Theory.atom) =
  a == b || (a.Theory.term == b.Theory.term && a.Theory.pos = b.Theory.pos)

let sync ts (lits : Theory.atom list) =
  let rec lcp n olds news =
    match (olds, news) with
    | o :: os, l :: ls when same_atom o l -> lcp (n + 1) os ls
    | _ -> n
  in
  let k = lcp 0 ts.asserted lits in
  for _ = 1 to List.length ts.asserted - k do
    Theory.pop ts.tstate
  done;
  let kept = Stdx.Listx.take k ts.asserted in
  ts.asserted <- kept;
  let rec grow acc = function
    | [] -> ts.asserted <- kept @ List.rev acc
    | l :: rest -> (
        Theory.push ts.tstate;
        match Theory.assert_literal ts.tstate l with
        | () -> grow (l :: acc) rest
        | exception e ->
            Theory.pop ts.tstate;
            ts.asserted <- kept @ List.rev acc;
            raise e)
  in
  grow [] (Stdx.Listx.drop k lits)

(** Check a literal sequence against the persistent stack. The check
    itself runs under a checkpoint ({!Theory.check_scoped}), so the
    synced literals remain reusable for the next round or probe.
    [None] means the literals left the supported fragment entirely
    (e.g. an unpurifiable term) — genuine incompleteness, not a
    resource exhaustion. *)
let theory_check ?eq_budget ts (lits : Theory.atom list) :
    Theory.result option =
  match sync ts lits with
  | () -> Some (Theory.check_scoped ?eq_budget ts.tstate)
  | exception Invalid_argument _ -> None

(** Unsat-core minimization by chunked deletion: first try dropping
    whole blocks (an eighth of the literals at a time), then refine the
    survivors one by one. Cost is O(k + n/k) theory checks, which pays
    for itself many times over in avoided blocking-clause enumeration
    (see ablation A2 in the benchmarks). Probes run as push/pop
    deletions against the caller's persistent stack — consecutive
    probes share their kept-prefix, so each probe re-asserts only the
    tail it actually varies. *)
let minimize_core ts (lits : Theory.atom list) : Theory.atom list =
  (* Minimization only trusts Unsat, so the cheap bounded-propagation
     theory check suffices: a spurious Sat just keeps a literal. *)
  let check lits = theory_check ~eq_budget:8 ts lits in
  let drop_block kept rest block =
    let remaining = List.filter (fun l -> not (List.memq l block)) rest in
    match check (kept @ remaining) with
    | Some Theory.Unsat -> Some remaining
    | _ -> None
  in
  let rec blocks kept rest size =
    if rest = [] then kept
    else
      let block = Stdx.Listx.take size rest in
      let rest' = Stdx.Listx.drop size rest in
      match drop_block kept rest block with
      | Some remaining -> blocks kept remaining size
      | None -> blocks (kept @ block) rest' size
  in
  let rec singles kept = function
    | [] -> kept
    | l :: rest -> (
        match check (kept @ rest) with
        | Some Theory.Unsat -> singles kept rest
        | _ -> singles (kept @ [ l ]) rest)
  in
  let n = List.length lits in
  let coarse = if n > 12 then blocks [] lits (max 4 (n / 8)) else lits in
  singles [] coarse

(* ------------------------------------------------------------------ *)
(* The VC cache hook *)

(** A content-addressed result cache, installed by [lib/engine]
    ({!Engine.Vc_cache}). The solver serializes every query to a
    canonical byte string and consults the hook before doing any work;
    the hook owns hashing, storage, synchronization, and hit/miss
    accounting. The hook cell is atomic so install/uninstall from the
    engine is safe with respect to concurrently solving domains. *)
type cache = {
  lookup : string -> result option;  (** key: serialized VC *)
  store : string -> result -> unit;
}

let cache_hook : cache option Atomic.t = Atomic.make None

let set_cache c = Atomic.set cache_hook c

(** Canonical serialization of a query: the solver parameters followed
    by each assertion's memoized canonical digest ({!Term.digest}), so
    building a key is O(1) amortized per assertion instead of
    re-marshalling whole trees. Digests are structure-derived — never
    intern-id-derived — so structurally equal VCs from different runs,
    domains, or processes collide in the cache, as intended (the disk
    tier survives daemon restarts). The solver parameters are part of
    the key so ablation runs cannot contaminate each other. *)
let serialize_vc ~max_rounds ~minimize (assertions : Term.t list) : string =
  let buf = Buffer.create (24 + (16 * List.length assertions)) in
  Buffer.add_string buf "vc2|";
  Buffer.add_string buf (string_of_int max_rounds);
  Buffer.add_char buf '|';
  Buffer.add_string buf (if minimize then "m|" else "-|");
  List.iter (fun t -> Buffer.add_string buf (Term.digest t)) assertions;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Main loop *)

let check_sat_uncached ~max_rounds ~minimize
    (assertions : Term.t list) : result =
  (* Chaos-testing hook: a solver fault crashes the query (caught and
     reported as [Crashed] by the engine), it never alters a verdict. *)
  Fault.inject Fault.Solver;
  let stats = Stats.current () in
  let gensym = Gensym.create ~prefix:"%" () in
  let assertions = elim_ite gensym assertions in
  (* Fast path: no boolean structure and trivially true/false. *)
  if List.exists (Term.equal Term.fls) assertions then Unsat
  else begin
    let enc =
      {
        sat = Sat.create ();
        atom_vars = Hashtbl.create 64;
        atoms = [];
        memo = Hashtbl.create 64;
        split_done = Hashtbl.create 16;
      }
    in
    let ok =
      List.for_all
        (fun t ->
          Term.equal t Term.tru
          || Sat.add_clause enc.sat [ encode enc t ])
        assertions
    in
    if not ok then Unsat
    else begin
      (* One theory state for the whole query: each round asserts only
         the literals on which the new candidate model differs from the
         previous one (see {!sync}). *)
      let ts = tstack_create () in
      let result = ref None in
      let rounds = ref 0 in
      while !result = None do
        Budget.poll ();
        incr rounds;
        if !rounds > max_rounds then begin
          stats.Stats.fuel_lazy_rounds <- stats.Stats.fuel_lazy_rounds + 1;
          result := Some (Resource_out (Budget.Fuel "max_rounds"))
        end
        else begin
          match Sat.solve enc.sat with
          | Sat.Unsat -> result := Some Unsat
          | Sat.Unknown -> result := Some Unknown
          | Sat.Resource_out ->
              result := Some (Resource_out (Budget.Fuel "sat_conflicts"))
          | Sat.Sat -> (
              let lits =
                List.filter_map
                  (fun (v, atom) ->
                    Some { Theory.term = atom; pos = Sat.model_value enc.sat v })
                  enc.atoms
              in
              match theory_check ts lits with
              | None -> result := Some Unknown
              | Some (Theory.Resource_out r) ->
                  result := Some (Resource_out r)
              | Some (Theory.Sat m) ->
                  let bools =
                    List.fold_left
                      (fun acc (v, atom) ->
                        match Term.view atom with
                        | Term.Var (x, Sort.Bool) ->
                            Smap.add x (Sat.model_value enc.sat v) acc
                        | _ -> acc)
                      Smap.empty enc.atoms
                  in
                  let ints =
                    Smap.filter (fun x _ -> x.[0] <> '%') m
                  in
                  result := Some (Sat { ints; bools })
              | Some Theory.Unsat ->
                  let core =
                    if minimize then minimize_core ts lits else lits
                  in
                  (if Lazy.force debug then
                     Fmt.epr "core(%d): %a@." (List.length core)
                       (Fmt.list ~sep:Fmt.comma (fun ppf (a : Theory.atom) ->
                            Fmt.pf ppf "%s%a" (if a.Theory.pos then "" else "¬")
                              Term.pp a.Theory.term))
                       core);
                  stats.Stats.blocking_clauses <-
                    stats.Stats.blocking_clauses + 1;
                  let clause =
                    List.map
                      (fun { Theory.term; pos } ->
                        let v = atom_var enc term in
                        Sat.lit_of_var ~neg:pos v)
                      core
                  in
                  if not (Sat.add_clause enc.sat clause) then
                    result := Some Unsat)
        end
      done;
      stats.Stats.sat_conflicts <-
        stats.Stats.sat_conflicts + enc.sat.Sat.conflicts;
      stats.Stats.sat_decisions <-
        stats.Stats.sat_decisions + enc.sat.Sat.decisions;
      stats.Stats.sat_propagations <-
        stats.Stats.sat_propagations + enc.sat.Sat.propagations;
      stats.Stats.learnts_deleted <-
        stats.Stats.learnts_deleted + enc.sat.Sat.learnts_deleted;
      stats.Stats.heap_decisions <-
        stats.Stats.heap_decisions + enc.sat.Sat.heap_decisions;
      Option.get !result
    end
  end

(** Public entry: count the query, consult the VC cache (when an
    engine installed one), and account wall-clock solving time to the
    calling domain's {!Stats} instance. *)
let check_sat ?(max_rounds = 5_000) ?(minimize = true)
    (assertions : Term.t list) : result =
  let stats = Stats.current () in
  stats.Stats.queries <- stats.Stats.queries + 1;
  let solve () =
    let t0 = Unix.gettimeofday () in
    let r = check_sat_uncached ~max_rounds ~minimize assertions in
    stats.Stats.solve_ms <-
      stats.Stats.solve_ms +. ((Unix.gettimeofday () -. t0) *. 1000.0);
    r
  in
  match Atomic.get cache_hook with
  | None -> solve ()
  | Some c -> (
      let key = serialize_vc ~max_rounds ~minimize assertions in
      match c.lookup key with
      | Some r -> r
      | None ->
          let r = solve () in
          (* Budget-dependent outcomes must not be cached: a retry with
             an escalated budget would be poisoned by the stored
             giving-up result. *)
          (match r with Resource_out _ -> () | _ -> c.store key r);
          r)

(* ------------------------------------------------------------------ *)
(* Entailment interface used by the verifier and the kernel *)

type verdict =
  | Valid
  | Invalid of model
  | Undecided
  | Gave_up of Budget.reason
      (** the solver ran out of some resource — says nothing about the
          goal either way, but unlike [Undecided] a retry can help *)

(** Is [goal] entailed by [hyps]? Checks unsatisfiability of
    [hyps ∧ ¬goal]. *)
let entails ?(hyps = []) (goal : Term.t) : verdict =
  let t = Term.and_ (hyps @ [ Term.not_ goal ]) in
  if Term.equal t Term.fls then Valid
  else (
      match check_sat [ t ] with
      | Unsat -> Valid
      | Sat m -> Invalid m
      | Unknown -> Undecided
      | Resource_out r -> Gave_up r)

let entails_bool ?hyps goal =
  match entails ?hyps goal with Valid -> true | _ -> false

(** Entailment through the full one-shot pipeline but bypassing the VC
    cache. {!Session} falls back to this when a goal leaves the
    convex-literal fragment its live theory state can decide; caching
    those fallbacks would double-count them against the cache's
    hit-rate accounting and key them on context the session already
    holds. *)
let entails_uncached ?(hyps = []) (goal : Term.t) : verdict =
  let t = Term.and_ (hyps @ [ Term.not_ goal ]) in
  if Term.equal t Term.fls then Valid
  else (
      match check_sat_uncached ~max_rounds:5_000 ~minimize:true [ t ] with
      | Unsat -> Valid
      | Sat m -> Invalid m
      | Unknown -> Undecided
      | Resource_out r -> Gave_up r)
