(** Persistent entailment sessions.

    A session keeps one {!Theory} state alive across many entailment
    queries, the way a translational verifier keeps one solver process:
    hypotheses (path conditions, heap facts) are {e pushed} as symbolic
    execution descends and {e popped} on the way back up, and each
    obligation is discharged against the live context instead of
    re-sending — and re-purifying — the whole context per query.

    Soundness discipline. The live state holds only hypotheses that are
    conjunctions of theory literals; anything with residual boolean
    structure (disjunctions, iffs, uneliminated [ite]) is recorded but
    not asserted. A goal is checked by asserting its negated literals
    under a checkpoint:

    - [Unsat] is {e always} trusted: the asserted hypotheses are
      implied by the full context, so their unsatisfiability (with the
      negated goal) transfers — [Valid].
    - [Sat] is trusted only when nothing was held back {e and} no
      integer disequality is in scope. Disequalities are the one
      nonconvex literal here: the one-shot pipeline splits [a ≠ b] into
      strict branches at the SAT level, which a pure conjunction check
      cannot imitate (e.g. [2x ≤ 2y ≤ 2x+1, x ≠ y] is theory-Sat but
      integer-Unsat). Outside the trusted fragment the session falls
      back to the full one-shot pipeline ({!Solver.entails_uncached}),
      bypassing the VC cache — session queries are keyed on live state,
      not serialized VCs.

    Verdicts therefore coincide with the one-shot API on every query;
    the differential tests in [test/test_smt.ml] pin this. *)

open Stdx

(** What one theory check of the bare context established — memoized
    per context generation, so feasibility queries and model-based
    refutations over an unchanged context cost nothing. *)
type ctx_status =
  | CtxUnsat  (** the hypotheses themselves are inconsistent *)
  | CtxSat of int Smap.t  (** trusted model of the context *)
  | CtxUnknown  (** untrusted [Sat] or an inconclusive theory check *)

type t = {
  th : Theory.state;
  mutable hyps : Term.t list;  (** everything in scope, newest-first *)
  mutable nonlit : int;  (** hypotheses in scope not (fully) asserted *)
  mutable neqs : int;  (** asserted integer disequalities in scope *)
  mutable saved : (Term.t list * int * int) list;  (** frame stack *)
  mutable synced : Term.t list;  (** oldest-first, one frame per hyp;
                                     maintained by {!sync} only *)
  mutable gen : int;  (** bumped on every context change *)
  mutable ctx_cache : (int * ctx_status) option;
  mutable ctx_vars : (int * unit Smap.t) option;
      (** variables occurring in the hypotheses, per generation *)
}

let create () =
  {
    th = Theory.create ();
    hyps = [];
    nonlit = 0;
    neqs = 0;
    saved = [];
    synced = [];
    gen = 0;
    ctx_cache = None;
    ctx_vars = None;
  }

let push s =
  Theory.push_scoped s.th;
  s.gen <- s.gen + 1;
  s.saved <- (s.hyps, s.nonlit, s.neqs) :: s.saved

let pop s =
  match s.saved with
  | [] -> invalid_arg "Session.pop: no matching push"
  | (hyps, nonlit, neqs) :: rest ->
      Theory.pop_scoped s.th;
      s.gen <- s.gen + 1;
      s.hyps <- hyps;
      s.nonlit <- nonlit;
      s.neqs <- neqs;
      s.saved <- rest

(* --------------------------------------------------------------- *)
(* Literal classification *)

let is_lit_atom (t : Term.t) =
  match t with
  | Term.Eq _ | Term.Le _ | Term.Lt _ | Term.Pred _ -> true
  | Term.Var (_, Sort.Bool) -> true
  | _ -> false

(** The atoms of [t] viewed as a conjunction of literals, or [None] if
    boolean structure remains. *)
let rec pos_atoms acc (t : Term.t) : Theory.atom list option =
  match t with
  | Term.True -> Some acc
  | Term.And ts ->
      List.fold_left
        (fun acc t -> Option.bind acc (fun acc -> pos_atoms acc t))
        (Some acc) ts
  | Term.Not a when is_lit_atom a -> Some ({ Theory.term = a; pos = false } :: acc)
  | _ when is_lit_atom t -> Some ({ Theory.term = t; pos = true } :: acc)
  | _ -> None

(** The atoms of [¬t] viewed as a conjunction of literals — [t] must be
    a disjunction of literals for this to exist. *)
let rec neg_atoms acc (t : Term.t) : Theory.atom list option =
  match t with
  | Term.False -> Some acc
  | Term.Or ts ->
      List.fold_left
        (fun acc t -> Option.bind acc (fun acc -> neg_atoms acc t))
        (Some acc) ts
  | Term.Not a when is_lit_atom a -> Some ({ Theory.term = a; pos = true } :: acc)
  | _ when is_lit_atom t -> Some ({ Theory.term = t; pos = false } :: acc)
  | _ -> None

(** The nonconvex literals: negated integer equalities. *)
let is_neq (a : Theory.atom) =
  match (a.Theory.term, a.Theory.pos) with
  | Term.Eq (x, _), false -> Sort.equal (Term.sort_of x) Sort.Int
  | _ -> false

(* --------------------------------------------------------------- *)
(* Asserting and checking *)

let assert_hyp s (h : Term.t) =
  s.hyps <- h :: s.hyps;
  s.gen <- s.gen + 1;
  match pos_atoms [] h with
  | None -> s.nonlit <- s.nonlit + 1
  | Some atoms -> (
      match List.iter (Theory.assert_literal s.th) atoms with
      | () ->
          List.iter (fun a -> if is_neq a then s.neqs <- s.neqs + 1) atoms
      | exception Invalid_argument _ ->
          (* Unpurifiable literal (e.g. an embedded [ite]); whatever was
             asserted before the failure is implied by [h], so keeping
             it is sound — but [Sat] can no longer be trusted. *)
          s.nonlit <- s.nonlit + 1)

(* --------------------------------------------------------------- *)
(* Context model caching *)

(** One theory check of the bare context, memoized per generation:
    [Unsat] is always trusted (the asserted atoms are implied by the
    hypotheses), a model is trusted only when nothing was held back and
    no disequality is in scope. The verifier asks about the same live
    context many times in a row (feasibility after every step, one
    entailment per heap chunk scanned), so this is checked once and
    then answered from cache until the context changes. *)
let context_status s =
  match s.ctx_cache with
  | Some (g, st) when g = s.gen -> st
  | _ ->
      Theory.push_scoped s.th;
      let r = Theory.check s.th in
      Theory.pop_scoped s.th;
      let st =
        match r with
        | Theory.Unsat -> CtxUnsat
        | Theory.Sat m when s.nonlit = 0 && s.neqs = 0 -> CtxSat m
        | Theory.Sat _ | Theory.Resource_out _ -> CtxUnknown
      in
      s.ctx_cache <- Some (s.gen, st);
      st

let context_vars s =
  match s.ctx_vars with
  | Some (g, vs) when g = s.gen -> vs
  | _ ->
      let vs =
        List.fold_left
          (fun acc h ->
            List.fold_left
              (fun acc (x, _) -> Smap.add x () acc)
              acc (Term.vars h))
          Smap.empty s.hyps
      in
      s.ctx_vars <- Some (s.gen, vs);
      vs

(** [refute_neq s m a b] tries to extend the trusted context model [m]
    to a witness of [a ≠ b]. If one side is an integer variable
    occurring neither in the hypotheses nor in the other side, every
    model of the context extends to one separating the two sides (the
    fresh variable is unconstrained), so the entailment of [a = b] is
    refuted with no theory work — this is the common case of the
    verifier's heap-chunk scans asking "is this the chunk for that
    location?". The witness values are best-effort: other
    context-fresh variables default to 0, which cannot falsify
    hypotheses they do not occur in. *)
let refute_neq s (m : int Smap.t) (a : Term.t) (b : Term.t) =
  let ctx = context_vars s in
  let try_fresh x other =
    if
      Smap.mem x ctx
      || List.exists (fun (y, _) -> String.equal y x) (Term.vars other)
    then None
    else
      let env =
        List.fold_left
          (fun env (y, srt) ->
            if Sort.equal srt Sort.Int && not (Smap.mem y env) then
              Smap.add y 0 env
            else env)
          m (Term.vars other)
      in
      match Term.eval ~env other with
      | Some v -> Some (Smap.add x (v + 1) env)
      | None -> None
  in
  match (a, b) with
  | Term.Var (x, Sort.Int), _ -> (
      match try_fresh x b with
      | Some _ as r -> r
      | None -> (
          match b with Term.Var (y, Sort.Int) -> try_fresh y a | _ -> None))
  | _, Term.Var (y, Sort.Int) -> try_fresh y a
  | _ -> None

(** Escape hatch for benchmarks and differential tests: when set, every
    {!check_goal} routes through the cached one-shot pipeline exactly
    like the pre-session verifier, so session-based and one-shot runs
    can be compared on identical workloads. Domain-local would be
    cleaner, but the flag is only flipped by single-domain harnesses. *)
let oneshot = ref false

(** Discharge the negated-goal atoms against the live context by theory
    probes. Integer disequalities among them are split into strict
    branches, [a ≠ b] into [a < b] and [b < a] — the session-level
    analogue of the one-shot solver's eager split lemma. Each branch is
    convex (the strict inequality separates the pair in every model),
    so both verdicts are trustworthy per branch: the goal is entailed
    iff every branch is Unsat, and one trusted-Sat branch refutes it.
    Past two disequalities the 2^m blowup stops paying; fall back. *)
let probe s natoms fallback invalid =
  let neqs_g, convex = List.partition is_neq natoms in
  if List.length neqs_g > 2 then fallback ()
  else begin
    let rec branches acc = function
      | [] -> [ acc ]
      | ({ Theory.term = Term.Eq (a, b); _ } as n) :: rest ->
          branches ({ Theory.term = Term.Lt (a, b); pos = true } :: n :: acc) rest
          @ branches
              ({ Theory.term = Term.Lt (b, a); pos = true } :: n :: acc)
              rest
      | _ :: _ -> assert false (* is_neq only matches Eq *)
    in
    let check_branch atoms =
      Theory.push_scoped s.th;
      let r =
        match List.iter (Theory.assert_literal s.th) atoms with
        | () -> Some (Theory.check s.th)
        | exception Invalid_argument _ -> None
      in
      Theory.pop_scoped s.th;
      r
    in
    let trusted = s.nonlit = 0 && s.neqs = 0 in
    let rec eval = function
      | [] -> Some None (* every branch refuted: goal entailed *)
      | atoms :: rest -> (
          match check_branch atoms with
          | Some Theory.Unsat -> eval rest
          | Some (Theory.Sat m) when trusted -> Some (Some m)
          | _ -> None (* inconclusive branch: cannot decide here *))
    in
    match eval (branches convex neqs_g) with
    | Some None -> Solver.Valid
    | Some (Some m) -> invalid m
    | None -> fallback ()
  end

let check_goal s (goal : Term.t) : Solver.verdict =
  if !oneshot then Solver.entails ~hyps:(List.rev s.hyps) goal
  else begin
  let stats = Stats.current () in
  stats.Stats.session_checks <- stats.Stats.session_checks + 1;
  let fallback () =
    stats.Stats.session_fallbacks <- stats.Stats.session_fallbacks + 1;
    Solver.entails_uncached ~hyps:(List.rev s.hyps) goal
  in
  (* Chaos-testing hook: an injected session fault stands for a lost or
     corrupted incremental state. Degrading to the one-shot pipeline is
     exactly the recovery the fallback path exists for, so verdicts are
     unchanged — only [session_fallbacks] moves. *)
  if Fault.fires Fault.Session then fallback ()
  else
  match neg_atoms [] goal with
  | None -> fallback ()
  | Some natoms -> (
      let invalid m =
        let ints = Smap.filter (fun x _ -> x.[0] <> '%') m in
        Solver.Invalid { Solver.ints; bools = Smap.empty }
      in
      match context_status s with
      | CtxUnsat -> Solver.Valid (* inconsistent context entails anything *)
      | ctx -> (
          (* Model-based fast paths over the cached context model:
             feasibility queries ([goal = False], no negated atoms) are
             answered directly, and a single-disequality goal is
             refuted by extending the model over a context-fresh
             variable. Both skip the theory solver entirely. *)
          let refuted =
            match (natoms, ctx) with
            | [], CtxSat m -> Some (invalid m)
            | [ n ], CtxSat m when is_neq n -> (
                match n.Theory.term with
                | Term.Eq (a, b) -> Option.map invalid (refute_neq s m a b)
                | _ -> None)
            | _ -> None
          in
          match refuted with
          | Some v -> v
          | None ->
              if natoms = [] then fallback ()
              else probe s natoms fallback invalid))
  end

let check_goal_bool s goal =
  match check_goal s goal with Solver.Valid -> true | _ -> false

(* --------------------------------------------------------------- *)
(* Context synchronization *)

(** [sync s hyps] re-points the session at exactly [hyps]
    (oldest-first), one frame per hypothesis, reusing the longest
    common prefix of what is already pushed. This is how the verifier
    drives a session: branching symbolic execution hands each branch's
    path condition over as a list, and branches sharing a prefix pay
    only for their delta. Physical equality identifies unchanged
    hypotheses — path conditions are shared sublists across branches —
    and a miss merely costs a pop/re-assert, never correctness.

    Must not be interleaved with manual {!push}/{!pop} on the same
    session: sync owns the frame discipline. *)
let sync s (hyps : Term.t list) =
  let rec lcp n olds news =
    match (olds, news) with
    | o :: os, h :: hs when o == h -> lcp (n + 1) os hs
    | _ -> n
  in
  let k = lcp 0 s.synced hyps in
  for _ = 1 to List.length s.synced - k do
    pop s
  done;
  let kept = Listx.take k s.synced in
  let added = Listx.drop k hyps in
  List.iter
    (fun h ->
      push s;
      assert_hyp s h)
    added;
  s.synced <- kept @ added
