(** Persistent entailment sessions.

    A session keeps one {!Theory} state alive across many entailment
    queries, the way a translational verifier keeps one solver process:
    hypotheses (path conditions, heap facts) are {e pushed} as symbolic
    execution descends and {e popped} on the way back up, and each
    obligation is discharged against the live context instead of
    re-sending — and re-purifying — the whole context per query.

    Soundness discipline. The live state holds only hypotheses that are
    conjunctions of theory literals; anything with residual boolean
    structure (disjunctions, iffs, uneliminated [ite]) is recorded but
    not asserted. A goal is checked by asserting its negated literals
    under a checkpoint:

    - [Unsat] is {e always} trusted: the asserted hypotheses are
      implied by the full context, so their unsatisfiability (with the
      negated goal) transfers — [Valid].
    - [Sat] is trusted only when nothing was held back {e and} no
      integer disequality is in scope. Disequalities are the one
      nonconvex literal here: the one-shot pipeline splits [a ≠ b] into
      strict branches at the SAT level, which a pure conjunction check
      cannot imitate (e.g. [2x ≤ 2y ≤ 2x+1, x ≠ y] is theory-Sat but
      integer-Unsat). Outside the trusted fragment the session falls
      back to the full one-shot pipeline ({!Solver.entails_uncached}),
      bypassing the VC cache — session queries are keyed on live state,
      not serialized VCs.

    Verdicts therefore coincide with the one-shot API on every query;
    the differential tests in [test/test_smt.ml] pin this. *)

open Stdx

(** What one theory check of the bare context established — memoized
    per context generation, so feasibility queries and model-based
    refutations over an unchanged context cost nothing. *)
type ctx_status =
  | CtxUnsat  (** the hypotheses themselves are inconsistent *)
  | CtxSat of int Smap.t  (** trusted model of the context *)
  | CtxUnknown  (** untrusted [Sat] or an inconclusive theory check *)

type t = {
  th : Theory.state;
  mutable hyps : Term.t list;  (** everything in scope, newest-first *)
  mutable nonlit : int;  (** hypotheses in scope not (fully) asserted *)
  mutable neqs : int;  (** asserted integer disequalities in scope *)
  mutable defs : Term.t Smap.t;
      (** oriented defining equalities [x = rhs] implied by the
          hypotheses, for the linear fast path *)
  mutable saved : (Term.t list * int * int * Term.t Smap.t) list;
      (** frame stack *)
  mutable synced : Term.t list;  (** oldest-first, one frame per hyp;
                                     maintained by {!sync} only *)
  mutable gen : int;  (** bumped on every context change *)
  mutable ctx_cache : (int * ctx_status) option;
  mutable ctx_vars : (int * unit Smap.t) option;
      (** variables occurring in the hypotheses, per generation *)
  poly_tbl : (int, (int Smap.t * int) option) Hashtbl.t;
      (** term id -> defs-resolved linear normal form, valid for
          [poly_gen] only (term ids are stable, contexts are not) *)
  mutable poly_gen : int;
}

let create () =
  {
    th = Theory.create ();
    hyps = [];
    nonlit = 0;
    neqs = 0;
    defs = Smap.empty;
    saved = [];
    synced = [];
    gen = 0;
    ctx_cache = None;
    ctx_vars = None;
    poly_tbl = Hashtbl.create 256;
    poly_gen = -1;
  }

let push s =
  Theory.push_scoped s.th;
  s.gen <- s.gen + 1;
  s.saved <- (s.hyps, s.nonlit, s.neqs, s.defs) :: s.saved

let pop s =
  match s.saved with
  | [] -> invalid_arg "Session.pop: no matching push"
  | (hyps, nonlit, neqs, defs) :: rest ->
      Theory.pop_scoped s.th;
      s.gen <- s.gen + 1;
      s.hyps <- hyps;
      s.nonlit <- nonlit;
      s.neqs <- neqs;
      s.defs <- defs;
      s.saved <- rest

(* --------------------------------------------------------------- *)
(* Literal classification *)

let is_lit_atom (t : Term.t) =
  match Term.view t with
  | Term.Eq _ | Term.Le _ | Term.Lt _ | Term.Pred _ -> true
  | Term.Var (_, Sort.Bool) -> true
  | _ -> false

(** The atoms of [t] viewed as a conjunction of literals, or [None] if
    boolean structure remains. *)
let rec pos_atoms acc (t : Term.t) : Theory.atom list option =
  match Term.view t with
  | Term.True -> Some acc
  | Term.And ts ->
      List.fold_left
        (fun acc t -> Option.bind acc (fun acc -> pos_atoms acc t))
        (Some acc) ts
  | Term.Not a when is_lit_atom a -> Some ({ Theory.term = a; pos = false } :: acc)
  | _ when is_lit_atom t -> Some ({ Theory.term = t; pos = true } :: acc)
  | _ -> None

(** The atoms of [¬t] viewed as a conjunction of literals — [t] must be
    a disjunction of literals for this to exist. *)
let rec neg_atoms acc (t : Term.t) : Theory.atom list option =
  match Term.view t with
  | Term.False -> Some acc
  | Term.Or ts ->
      List.fold_left
        (fun acc t -> Option.bind acc (fun acc -> neg_atoms acc t))
        (Some acc) ts
  | Term.Not a when is_lit_atom a -> Some ({ Theory.term = a; pos = true } :: acc)
  | _ when is_lit_atom t -> Some ({ Theory.term = t; pos = false } :: acc)
  | _ -> None

(** The nonconvex literals: negated integer equalities. *)
let is_neq (a : Theory.atom) =
  match (Term.view a.Theory.term, a.Theory.pos) with
  | Term.Eq (x, _), false -> Sort.equal (Term.sort_of x) Sort.Int
  | _ -> false

(* --------------------------------------------------------------- *)
(* Asserting and checking *)

(** Record oriented defining equalities [x = rhs] from asserted atoms:
    [x] integer-sorted, not yet defined, not occurring directly in
    [rhs]. Transitive cycles through several definitions are possible
    and tolerated — resolution in the linear fast path is
    fuel-bounded, so a cycle only costs a failed normalization. *)
let add_defs s atoms =
  List.iter
    (fun (a : Theory.atom) ->
      if a.Theory.pos then
        match Term.view a.Theory.term with
        | Term.Eq (l, r) when Sort.equal (Term.sort_of l) Sort.Int ->
            let rec occurs x t =
              match Term.view t with
              | Term.Var (y, _) -> String.equal y x
              | Term.Int_lit _ | Term.True | Term.False -> false
              | Term.App (_, ts) | Term.Pred (_, ts)
              | Term.And ts | Term.Or ts ->
                  List.exists (occurs x) ts
              | Term.Add (a, b) | Term.Sub (a, b) | Term.Mul (a, b)
              | Term.Eq (a, b) | Term.Le (a, b) | Term.Lt (a, b)
              | Term.Implies (a, b) | Term.Iff (a, b) ->
                  occurs x a || occurs x b
              | Term.Ite (c, a, b) -> occurs x c || occurs x a || occurs x b
              | Term.Not a -> occurs x a
            in
            let definable x rhs =
              (not (Smap.mem x s.defs)) && not (occurs x rhs)
            in
            (match (Term.view l, Term.view r) with
            | Term.Var (x, _), _ when definable x r ->
                s.defs <- Smap.add x r s.defs
            | _, Term.Var (x, _) when definable x l ->
                s.defs <- Smap.add x l s.defs
            | _ -> ())
        | _ -> ())
    atoms

let assert_hyp s (h : Term.t) =
  s.hyps <- h :: s.hyps;
  s.gen <- s.gen + 1;
  match pos_atoms [] h with
  | None -> s.nonlit <- s.nonlit + 1
  | Some atoms -> (
      add_defs s atoms;
      match List.iter (Theory.assert_literal s.th) atoms with
      | () ->
          List.iter (fun a -> if is_neq a then s.neqs <- s.neqs + 1) atoms
      | exception Invalid_argument _ ->
          (* Unpurifiable literal (e.g. an embedded [ite]); whatever was
             asserted before the failure is implied by [h], so keeping
             it is sound — but [Sat] can no longer be trusted. *)
          s.nonlit <- s.nonlit + 1)

(* --------------------------------------------------------------- *)
(* Context model caching *)

(** One theory check of the bare context, memoized per generation:
    [Unsat] is always trusted (the asserted atoms are implied by the
    hypotheses), a model is trusted only when nothing was held back and
    no disequality is in scope. The verifier asks about the same live
    context many times in a row (feasibility after every step, one
    entailment per heap chunk scanned), so this is checked once and
    then answered from cache until the context changes. *)
let context_status s =
  match s.ctx_cache with
  | Some (g, st) when g = s.gen -> st
  | _ ->
      Theory.push_scoped s.th;
      let r = Theory.check s.th in
      Theory.pop_scoped s.th;
      let st =
        match r with
        | Theory.Unsat -> CtxUnsat
        | Theory.Sat m when s.nonlit = 0 && s.neqs = 0 -> CtxSat m
        | Theory.Sat _ | Theory.Resource_out _ -> CtxUnknown
      in
      s.ctx_cache <- Some (s.gen, st);
      st

let context_vars s =
  match s.ctx_vars with
  | Some (g, vs) when g = s.gen -> vs
  | _ ->
      let vs =
        List.fold_left
          (fun acc h ->
            List.fold_left
              (fun acc (x, _) -> Smap.add x () acc)
              acc (Term.vars h))
          Smap.empty s.hyps
      in
      s.ctx_vars <- Some (s.gen, vs);
      vs

(** [refute_neq s m a b] tries to extend the trusted context model [m]
    to a witness of [a ≠ b]. If one side is an integer variable
    occurring neither in the hypotheses nor in the other side, every
    model of the context extends to one separating the two sides (the
    fresh variable is unconstrained), so the entailment of [a = b] is
    refuted with no theory work — this is the common case of the
    verifier's heap-chunk scans asking "is this the chunk for that
    location?". The witness values are best-effort: other
    context-fresh variables default to 0, which cannot falsify
    hypotheses they do not occur in. *)
let refute_neq s (m : int Smap.t) (a : Term.t) (b : Term.t) =
  let ctx = context_vars s in
  let try_fresh x other =
    if
      Smap.mem x ctx
      || List.exists (fun (y, _) -> String.equal y x) (Term.vars other)
    then None
    else
      let env =
        List.fold_left
          (fun env (y, srt) ->
            if Sort.equal srt Sort.Int && not (Smap.mem y env) then
              Smap.add y 0 env
            else env)
          m (Term.vars other)
      in
      match Term.eval ~env other with
      | Some v -> Some (Smap.add x (v + 1) env)
      | None -> None
  in
  match (Term.view a, Term.view b) with
  | Term.Var (x, Sort.Int), _ -> (
      match try_fresh x b with
      | Some _ as r -> r
      | None -> (
          match Term.view b with
          | Term.Var (y, Sort.Int) -> try_fresh y a
          | _ -> None))
  | _, Term.Var (y, Sort.Int) -> try_fresh y a
  | _ -> None

(** Escape hatch for benchmarks and differential tests: when set, every
    {!check_goal} routes through the cached one-shot pipeline exactly
    like the pre-session verifier, so session-based and one-shot runs
    can be compared on identical workloads. Domain-local would be
    cleaner, but the flag is only flipped by single-domain harnesses. *)
let oneshot = ref false

(** Discharge the negated-goal atoms against the live context by theory
    probes. Integer disequalities among them are split into strict
    branches, [a ≠ b] into [a < b] and [b < a] — the session-level
    analogue of the one-shot solver's eager split lemma. Each branch is
    convex (the strict inequality separates the pair in every model),
    so both verdicts are trustworthy per branch: the goal is entailed
    iff every branch is Unsat, and one trusted-Sat branch refutes it.
    Past two disequalities the 2^m blowup stops paying; fall back. *)
let probe s natoms fallback invalid =
  let neqs_g, convex = List.partition is_neq natoms in
  if List.length neqs_g > 2 then fallback ()
  else begin
    let rec branches acc = function
      | [] -> [ acc ]
      | n :: rest -> (
          match Term.view n.Theory.term with
          | Term.Eq (a, b) ->
              (* [Term.lt] cannot fold: an interned [Eq] node has
                 distinct non-literal operands. *)
              branches
                ({ Theory.term = Term.lt a b; pos = true } :: n :: acc)
                rest
              @ branches
                  ({ Theory.term = Term.lt b a; pos = true } :: n :: acc)
                  rest
          | _ -> assert false (* is_neq only matches Eq *))
    in
    let check_branch atoms =
      Theory.push_scoped s.th;
      let r =
        match List.iter (Theory.assert_literal s.th) atoms with
        | () -> Some (Theory.check s.th)
        | exception Invalid_argument _ -> None
      in
      Theory.pop_scoped s.th;
      r
    in
    let trusted = s.nonlit = 0 && s.neqs = 0 in
    let rec eval = function
      | [] -> Some None (* every branch refuted: goal entailed *)
      | atoms :: rest -> (
          match check_branch atoms with
          | Some Theory.Unsat -> eval rest
          | Some (Theory.Sat m) when trusted -> Some (Some m)
          | _ -> None (* inconclusive branch: cannot decide here *))
    in
    match eval (branches convex neqs_g) with
    | Some None -> Solver.Valid
    | Some (Some m) -> invalid m
    | None -> fallback ()
  end

(* --------------------------------------------------------------- *)
(* The linear fast path *)

(* Entailments the verifier generates in bulk are linear identities:
   the strongest-postcondition term and the spec's right-hand side
   are the same polynomial written differently (⟦v+1+1⟧ vs ⟦v+2⟧),
   possibly through context equalities defining intermediate names.
   Normalizing both sides to a coefficient map over defs-resolved
   variables decides those goals with integer arithmetic only — no
   congruence closure, no simplex, no push/pop. The normal form is
   memoized per term id (hash-consing makes the key O(1)) and
   invalidated whenever the context generation moves. *)

exception Poly_fail

(* Coefficients stay far below [max_int]: every operation is bounds-
   checked and bails to the theory solver rather than wrapping. *)
let poly_bound = 1 lsl 40

let poly_of s (t0 : Term.t) : (int Smap.t * int) option =
  if s.poly_gen <> s.gen then begin
    Hashtbl.reset s.poly_tbl;
    s.poly_gen <- s.gen
  end;
  let fuel = ref 4096 in
  let chk n = if n > poly_bound || n < -poly_bound then raise Poly_fail else n in
  let combine sign (c1, k1) (c2, k2) =
    ( Smap.merge
        (fun _ a b ->
          let v =
            chk
              (Option.value a ~default:0 + (sign * Option.value b ~default:0))
          in
          if v = 0 then None else Some v)
        c1 c2,
      chk (k1 + (sign * k2)) )
  in
  let scale c (cs, k) =
    if c = 0 then (Smap.empty, 0)
    else
      (* Refuse products whose magnitude exceeds [poly_bound] *before*
         multiplying: checking afterwards would let a native-int wrap
         land back inside the bound and corrupt the normal form. *)
      let mul v =
        if v <> 0 && abs v > poly_bound / abs c then raise Poly_fail
        else v * c
      in
      (Smap.filter_map (fun _ v -> Some (mul v)) cs, mul k)
  in
  let rec go t =
    match Hashtbl.find_opt s.poly_tbl (Term.id t) with
    | Some (Some p) -> p
    | Some None -> raise Poly_fail
    | None ->
        let r = try Some (compute t) with Poly_fail -> None in
        Hashtbl.replace s.poly_tbl (Term.id t) r;
        (match r with Some p -> p | None -> raise Poly_fail)
  and compute t =
    decr fuel;
    if !fuel <= 0 then raise Poly_fail;
    match Term.view t with
    | Term.Int_lit n -> (Smap.empty, chk n)
    | Term.Var (x, Sort.Int) -> (
        match Smap.find_opt x s.defs with
        | Some d -> go d
        | None -> (Smap.singleton x 1, 0))
    | Term.Add (a, b) -> combine 1 (go a) (go b)
    | Term.Sub (a, b) -> combine (-1) (go a) (go b)
    | Term.Mul (a, b) -> (
        let pa = go a in
        let pb = go b in
        match (Smap.is_empty (fst pa), Smap.is_empty (fst pb)) with
        | true, _ -> scale (snd pa) pb
        | _, true -> scale (snd pb) pa
        | _ -> raise Poly_fail)
    | _ -> raise Poly_fail
  in
  try Some (go t0) with Poly_fail -> None

(** Is some negated-goal atom identically false under the context's
    defining equalities? Each atom is a literal of ¬goal; one of them
    being unsatisfiable in every model of [defs] (a superset of the
    context's models) makes the goal entailed. Only concludes
    [Valid]; anything short of a constant verdict falls through to
    the theory pipeline. *)
let poly_entails s (natoms : Theory.atom list) : bool =
  let const_diff a b =
    (* poly(a) - poly(b) when it is a constant *)
    match (poly_of s a, poly_of s b) with
    | Some (ca, ka), Some (cb, kb) when Smap.equal Int.equal ca cb ->
        Some (ka - kb)
    | _ -> None
  in
  List.exists
    (fun (n : Theory.atom) ->
      match Term.view n.Theory.term with
      | Term.Eq (a, b) when Sort.equal (Term.sort_of a) Sort.Int -> (
          match const_diff a b with
          | Some c -> if n.Theory.pos then c <> 0 else c = 0
          | None -> false)
      | Term.Le (a, b) -> (
          match const_diff b a with
          | Some c -> if n.Theory.pos then c < 0 else c >= 0
          | None -> false)
      | Term.Lt (a, b) -> (
          match const_diff b a with
          | Some c -> if n.Theory.pos then c <= 0 else c > 0
          | None -> false)
      | _ -> false)
    natoms

let check_goal s (goal : Term.t) : Solver.verdict =
  if !oneshot then Solver.entails ~hyps:(List.rev s.hyps) goal
  else begin
  let stats = Stats.current () in
  stats.Stats.session_checks <- stats.Stats.session_checks + 1;
  let fallback () =
    stats.Stats.session_fallbacks <- stats.Stats.session_fallbacks + 1;
    Solver.entails_uncached ~hyps:(List.rev s.hyps) goal
  in
  (* Chaos-testing hook: an injected session fault stands for a lost or
     corrupted incremental state. Degrading to the one-shot pipeline is
     exactly the recovery the fallback path exists for, so verdicts are
     unchanged — only [session_fallbacks] moves. *)
  if Fault.fires Fault.Session then fallback ()
  else
  match neg_atoms [] goal with
  | None -> fallback ()
  | Some natoms when natoms <> [] && poly_entails s natoms ->
      (* Linear fast path: a negated-goal atom is identically false
         under the context's defining equalities, so the goal holds in
         every context model. Sound to short-circuit only [Valid]:
         failing goals keep their exact model-producing pipeline. *)
      Solver.Valid
  | Some natoms -> (
      let invalid m =
        let ints = Smap.filter (fun x _ -> x.[0] <> '%') m in
        Solver.Invalid { Solver.ints; bools = Smap.empty }
      in
      match context_status s with
      | CtxUnsat -> Solver.Valid (* inconsistent context entails anything *)
      | ctx -> (
          (* Model-based fast paths over the cached context model:
             feasibility queries ([goal = False], no negated atoms) are
             answered directly, and a single-disequality goal is
             refuted by extending the model over a context-fresh
             variable. Both skip the theory solver entirely. *)
          let refuted =
            match (natoms, ctx) with
            | [], CtxSat m -> Some (invalid m)
            | [ n ], CtxSat m when is_neq n -> (
                match Term.view n.Theory.term with
                | Term.Eq (a, b) -> Option.map invalid (refute_neq s m a b)
                | _ -> None)
            | _ -> None
          in
          match refuted with
          | Some v -> v
          | None ->
              if natoms = [] then fallback ()
              else probe s natoms fallback invalid))
  end

let check_goal_bool s goal =
  match check_goal s goal with Solver.Valid -> true | _ -> false

(* --------------------------------------------------------------- *)
(* Context synchronization *)

(** [sync s hyps] re-points the session at exactly [hyps]
    (oldest-first), one frame per hypothesis, reusing the longest
    common prefix of what is already pushed. This is how the verifier
    drives a session: branching symbolic execution hands each branch's
    path condition over as a list, and branches sharing a prefix pay
    only for their delta. Physical equality identifies unchanged
    hypotheses — path conditions are shared sublists across branches —
    and a miss merely costs a pop/re-assert, never correctness.

    Must not be interleaved with manual {!push}/{!pop} on the same
    session: sync owns the frame discipline. *)
let sync s (hyps : Term.t list) =
  let rec lcp n olds news =
    match (olds, news) with
    | o :: os, h :: hs when o == h -> lcp (n + 1) os hs
    | _ -> n
  in
  let k = lcp 0 s.synced hyps in
  for _ = 1 to List.length s.synced - k do
    pop s
  done;
  let kept = Listx.take k s.synced in
  let added = Listx.drop k hyps in
  List.iter
    (fun h ->
      push s;
      assert_hyp s h)
    added;
  s.synced <- kept @ added
