(** The combined theory checker: EUF + linear integer arithmetic.

    Given a conjunction of theory literals (atoms with polarity), decide
    satisfiability. Terms are purified on the fly:

    - every application of an uninterpreted symbol becomes a congruence
      node; if it occurs inside arithmetic it is abstracted by a proxy
      variable tied to the node;
    - every arithmetic subterm occurring under an uninterpreted symbol
      is abstracted by a proxy variable defined by a LIA equality;
    - integer equality atoms go to *both* theories, disequalities go to
      EUF and (on demand, through model-guided propagation) to LIA.

    The combination loop alternates the two solvers, propagating
    variable equalities until a fixed point — a model-guided,
    entailment-checked version of Nelson–Oppen for the convex/ish
    fragment our verification conditions live in. *)

open Stdx

type atom = { term : Term.t; pos : bool }

type result = Sat of int Smap.t | Unsat | Unknown

type state = {
  cc : Cc.t;
  mutable lia : Simplex.t;
  gensym : Gensym.t;
  (* proxy variable <-> congruence node for shared terms *)
  mutable shared : (string * int) list;
  mutable proxy_of_node : (int * string) list;
  (* LIA equalities implied by EUF already propagated *)
  mutable propagated : (string * string) list;
  node_true : int;
  node_false : int;
}

let create () =
  let cc = Cc.create () in
  let node_true = Cc.node_of_term cc (Term.var ~sort:Sort.Int "%true") in
  let node_false = Cc.node_of_term cc (Term.var ~sort:Sort.Int "%false") in
  Cc.assert_neq cc node_true node_false;
  {
    cc;
    lia = Simplex.create ();
    gensym = Gensym.create ~prefix:"%p" ();
    shared = [];
    proxy_of_node = [];
    propagated = [];
    node_true;
    node_false;
  }

let share st name node =
  if not (List.mem_assoc name st.shared) then begin
    st.shared <- (name, node) :: st.shared;
    st.proxy_of_node <- (node, name) :: st.proxy_of_node
  end

(* --------------------------------------------------------------- *)
(* Purification *)

(** Translate an int-sorted term into a linear expression, registering
    proxies for uninterpreted applications. *)
let rec linearize st (t : Term.t) : Simplex.Linexp.t * Q.t =
  match t with
  | Term.Int_lit n -> (Simplex.Linexp.empty, Q.of_int n)
  | Term.Var (x, _) ->
      let node = Cc.node_of_term st.cc (Term.var x) in
      share st x node;
      (Simplex.Linexp.add_term x Q.one Simplex.Linexp.empty, Q.zero)
  | Term.Add (a, b) ->
      let ea, ka = linearize st a and eb, kb = linearize st b in
      (merge_linexp ea eb Q.one, Q.add ka kb)
  | Term.Sub (a, b) ->
      let ea, ka = linearize st a and eb, kb = linearize st b in
      (merge_linexp ea eb Q.minus_one, Q.sub ka kb)
  | Term.Mul (a, b) -> (
      match (constant_of st a, constant_of st b) with
      | Some c, _ ->
          let eb, kb = linearize st b in
          (scale_linexp c eb, Q.mul c kb)
      | _, Some c ->
          let ea, ka = linearize st a in
          (scale_linexp c ea, Q.mul c ka)
      | None, None ->
          (* Nonlinear product: abstract as an uninterpreted term so
             congruence still applies to syntactically equal products. *)
          let node = euf_node st (Term.App ("%mul", [ a; b ])) in
          let name = proxy_name st node in
          (Simplex.Linexp.add_term name Q.one Simplex.Linexp.empty, Q.zero))
  | Term.App _ ->
      let node = euf_node st t in
      let name = proxy_name st node in
      (Simplex.Linexp.add_term name Q.one Simplex.Linexp.empty, Q.zero)
  | Term.Ite _ ->
      invalid_arg "Theory.linearize: ite must be eliminated by preprocessing"
  | _ -> invalid_arg (Fmt.str "Theory.linearize: %a" Term.pp t)

and merge_linexp ea eb sign =
  Smap.fold (fun x c acc -> Simplex.Linexp.add_term x (Q.mul sign c) acc) eb ea

and scale_linexp c e = Smap.map (Q.mul c) e

and constant_of _st = function Term.Int_lit n -> Some (Q.of_int n) | _ -> None

(** Intern an int term as a congruence node. Arithmetic below an
    application is abstracted: a proxy variable is created, defined in
    LIA, and the proxy's node is used. *)
and euf_node st (t : Term.t) : int =
  match t with
  | Term.Var (x, _) ->
      let node = Cc.node_of_term st.cc (Term.var x) in
      share st x node;
      node
  | Term.Int_lit _ -> Cc.node_of_term st.cc t
  | Term.App (f, args) ->
      let args = List.map (euf_node st) args in
      let node =
        (* Build the node from purified argument nodes directly. *)
        cc_app st f args
      in
      node
  | _ ->
      (* Arithmetic term in an EUF position: abstract with a proxy
         defined by a LIA equality. *)
      let e, k = linearize st t in
      let name = Gensym.fresh st.gensym in
      let node = Cc.node_of_term st.cc (Term.var name) in
      share st name node;
      (* name = e + k  ⇒  name - e = k *)
      let lhs =
        Smap.fold
          (fun x c acc -> Simplex.Linexp.add_term x (Q.neg c) acc)
          e
          (Simplex.Linexp.add_term name Q.one Simplex.Linexp.empty)
      in
      Simplex.assert_atom st.lia lhs Simplex.Eq k;
      node

and cc_app st f arg_nodes = Cc.alloc st.cc (Cc.Fapp (f, arg_nodes))

(** [proxy_name st node] returns the LIA variable standing for the
    congruence node, minting one if needed. *)
and proxy_name st node =
  match List.assoc_opt node st.proxy_of_node with
  | Some name -> name
  | None ->
      let name = Gensym.fresh st.gensym in
      share st name node;
      name

(* --------------------------------------------------------------- *)
(* Asserting literals *)

let assert_arith st (a : Term.t) (b : Term.t) (op : Simplex.op) =
  let ea, ka = linearize st a and eb, kb = linearize st b in
  (* ea + ka op eb + kb  ⇒  ea - eb op kb - ka *)
  let e = merge_linexp ea eb Q.minus_one in
  Simplex.assert_atom st.lia e op (Q.sub kb ka)

let assert_literal st ({ term; pos } : atom) =
  match (term, pos) with
  | Term.Eq (a, b), true when Sort.equal (Term.sort_of a) Sort.Int ->
      assert_arith st a b Simplex.Eq;
      Cc.assert_eq st.cc (euf_node st a) (euf_node st b)
  | Term.Eq (a, b), false when Sort.equal (Term.sort_of a) Sort.Int ->
      (* EUF records the disequality; on the LIA side the eager
         splitting lemma Eq ∨ Lt ∨ Gt (added in preprocessing) forces
         the SAT solver to pick a strict separation, so no arithmetic
         disequality handling is needed here. *)
      Cc.assert_neq st.cc (euf_node st a) (euf_node st b)
  | Term.Le (a, b), true -> assert_arith st a b Simplex.Le
  | Term.Le (a, b), false -> assert_arith st a b Simplex.Gt
  | Term.Lt (a, b), true -> assert_arith st a b Simplex.Lt
  | Term.Lt (a, b), false -> assert_arith st a b Simplex.Ge
  | Term.Pred (f, args), pos ->
      let args = List.map (euf_node st) args in
      let node = cc_app st f args in
      Cc.assert_eq st.cc node (if pos then st.node_true else st.node_false)
  | Term.Var (x, Sort.Bool), pos ->
      let node = Cc.node_of_term st.cc (Term.var ("%b" ^ x)) in
      Cc.assert_eq st.cc node (if pos then st.node_true else st.node_false)
  | Term.Eq (a, b), pos ->
      (* Boolean equality between atoms should have been removed by
         Tseitin (encoded as Iff); defensive fallback. *)
      ignore (a, b, pos);
      invalid_arg "Theory.assert_literal: boolean equality atom"
  | t, _ -> invalid_arg (Fmt.str "Theory.assert_literal: %a" Term.pp t)

(* --------------------------------------------------------------- *)
(* The combination loop *)

(** LIA entailment of [x = y] under the current constraints: UNSAT of
    both strict separations. *)
let lia_entails_eq st x y =
  let test op =
    let s = Simplex.copy st.lia in
    let e =
      Simplex.Linexp.add_term x Q.one
        (Simplex.Linexp.add_term y Q.minus_one Simplex.Linexp.empty)
    in
    Simplex.assert_atom s e op Q.zero;
    (Stats.current ()).lia_checks <- (Stats.current ()).lia_checks + 1;
    match Simplex.check_rational s with
    | Simplex.Unsat -> true
    | Simplex.Sat -> false
  in
  test Simplex.Lt && test Simplex.Gt

(** Run the combined check on the literals already asserted.

    [eq_budget] caps the number of model-guided cross-theory equality
    entailment tests. With the default (unbounded) budget the check is
    complete for our fragment; with a small budget a [Sat] answer may
    be spurious, which is fine for callers (unsat-core minimization)
    that only trust [Unsat]. *)
let check ?(eq_budget = max_int) st : result =
  let eq_budget = ref eq_budget in
  (Stats.current ()).theory_checks <- (Stats.current ()).theory_checks + 1;
  (* Cross-theory propagation only concerns variables the arithmetic
     solver actually constrains; in pure-EUF problems the LIA state is
     empty and the quadratic pair scan must not run at all. *)
  let lia_relevant () =
    List.filter (fun (x, _) -> Hashtbl.mem st.lia.Simplex.names x) st.shared
  in
  let rec loop fuel =
    if fuel <= 0 then (if Sys.getenv_opt "SMT_DEBUG" <> None then prerr_endline "DEBUG: combination fuel out"; Unknown)
    else begin
      (Stats.current ()).euf_checks <- (Stats.current ()).euf_checks + 1;
      if not (Cc.consistent st.cc) then Unsat
      else begin
        (* EUF → LIA: merged shared variables become LIA equalities. *)
        let new_eqs = ref [] in
        let shared = lia_relevant () in
        List.iteri
          (fun i (x, nx) ->
            List.iteri
              (fun j (y, ny) ->
                if i < j && Cc.are_equal st.cc nx ny then
                  let key = if x < y then (x, y) else (y, x) in
                  if not (List.mem key st.propagated) then
                    new_eqs := key :: !new_eqs)
              shared)
          shared;
        List.iter
          (fun (x, y) ->
            st.propagated <- (x, y) :: st.propagated;
            (Stats.current ()).eq_propagations <- (Stats.current ()).eq_propagations + 1;
            let e =
              Simplex.Linexp.add_term x Q.one
                (Simplex.Linexp.add_term y Q.minus_one Simplex.Linexp.empty)
            in
            Simplex.assert_atom st.lia e Simplex.Eq Q.zero)
          !new_eqs;
        (Stats.current ()).lia_checks <- (Stats.current ()).lia_checks + 1;
        match Simplex.check_int st.lia with
        | Simplex.IUnsat -> Unsat
        | Simplex.IUnknown -> (if Sys.getenv_opt "SMT_DEBUG" <> None then prerr_endline "DEBUG: check_int unknown"; Unknown)
        | Simplex.IModel m ->
            (* LIA → EUF: model-guided entailed equalities. Only pairs
               the model already makes equal can be entailed. *)
            let candidates =
              Listx.all_pairs (lia_relevant ())
              |> List.filter (fun ((x, nx), (y, ny)) ->
                     (not (Cc.are_equal st.cc nx ny))
                     &&
                     match (Smap.find_opt x m, Smap.find_opt y m) with
                     | Some vx, Some vy -> vx = vy
                     | _ -> false)
            in
            let merged = ref false in
            List.iter
              (fun ((x, nx), (y, ny)) ->
                if
                  !eq_budget > 0
                  && (not (Cc.are_equal st.cc nx ny))
                  && (decr eq_budget;
                      lia_entails_eq st x y)
                then begin
                  merged := true;
                  (Stats.current ()).eq_propagations <-
                    (Stats.current ()).eq_propagations + 1;
                  Cc.assert_eq st.cc nx ny
                end)
              candidates;
            if !merged then loop (fuel - 1) else Sat m
      end
    end
  in
  loop 64
