(** The combined theory checker: EUF + linear integer arithmetic.

    Given a conjunction of theory literals (atoms with polarity), decide
    satisfiability. Terms are purified on the fly:

    - every application of an uninterpreted symbol becomes a congruence
      node; if it occurs inside arithmetic it is abstracted by a proxy
      variable tied to the node;
    - every arithmetic subterm occurring under an uninterpreted symbol
      is abstracted by a proxy variable defined by a LIA equality;
    - integer equality atoms go to *both* theories, disequalities go to
      EUF and (on demand, through model-guided propagation) to LIA.

    The combination loop alternates the two solvers, propagating
    variable equalities until a fixed point — a model-guided,
    entailment-checked version of Nelson–Oppen for the convex/ish
    fragment our verification conditions live in.

    The state is {e backtrackable}: {!push}/{!pop} checkpoint and
    restore the congruence closure, the simplex, and the purification
    bookkeeping (shared variables, proxies, propagated equalities), so
    a caller can keep one state alive and assert/retract literals
    incrementally. {!check} mutates the state (propagated equalities,
    CC merges); callers that need the state back afterwards use
    {!check_scoped}. *)

open Stdx

type atom = { term : Term.t; pos : bool }

type result =
  | Sat of int Smap.t
  | Unsat
  | Resource_out of Budget.reason
      (** a fuel knob ran out before the combination converged — which
          one is in the {!Budget.reason} *)

(* Read once per process instead of per conflict-loop iteration; the
   environment does not change under the solver. *)
let debug = lazy (Sys.getenv_opt "SMT_DEBUG" <> None)

type undo =
  | Mark
  | Unshare of string * int  (** remove a shared-variable registration *)
  | Unpropagate of string * string  (** forget a propagated EUF→LIA equality *)

type state = {
  cc : Cc.t;
  lia : Simplex.t;
  gensym : Gensym.t;
  (* proxy variable <-> congruence node for shared terms *)
  shared : (string, int) Hashtbl.t;
  proxy_of_node : (int, string) Hashtbl.t;
  (* LIA equalities implied by EUF already asserted, as canonical
     (min, max) name pairs *)
  propagated : (string * string, unit) Hashtbl.t;
  node_true : int;
  node_false : int;
  mutable trail : undo list;
  mutable lia_snaps : Simplex.snapshot list;
      (* simplex checkpoints for {!push_scoped} frames *)
}

let create () =
  let cc = Cc.create () in
  let node_true = Cc.node_of_term cc (Term.var ~sort:Sort.Int "%true") in
  let node_false = Cc.node_of_term cc (Term.var ~sort:Sort.Int "%false") in
  Cc.assert_neq cc node_true node_false;
  {
    cc;
    lia = Simplex.create ();
    gensym = Gensym.create ~prefix:"%p" ();
    shared = Hashtbl.create 32;
    proxy_of_node = Hashtbl.create 32;
    propagated = Hashtbl.create 32;
    node_true;
    node_false;
    trail = [];
    lia_snaps = [];
  }

let share st name node =
  if not (Hashtbl.mem st.shared name) then begin
    Hashtbl.add st.shared name node;
    Hashtbl.add st.proxy_of_node node name;
    st.trail <- Unshare (name, node) :: st.trail
  end

(* --------------------------------------------------------------- *)
(* Backtracking *)

let push st =
  st.trail <- Mark :: st.trail;
  Cc.push st.cc;
  Simplex.push st.lia

let unwind_trail st =
  let rec undo () =
    match st.trail with
    | [] -> invalid_arg "Theory.pop: no matching push"
    | Mark :: rest -> st.trail <- rest
    | Unshare (name, node) :: rest ->
        Hashtbl.remove st.shared name;
        Hashtbl.remove st.proxy_of_node node;
        st.trail <- rest;
        undo ()
    | Unpropagate (x, y) :: rest ->
        Hashtbl.remove st.propagated (x, y);
        st.trail <- rest;
        undo ()
  in
  undo ()

let pop st =
  unwind_trail st;
  Cc.pop st.cc;
  Simplex.pop st.lia

(** Scoped checkpoints for long-lived session states. {!push}/{!pop}
    undo only bounds in the simplex — variables and rows allocated in
    the scope persist, which is fine within a single query (the slack
    memo makes re-assertion converge) but lets a session's tableau grow
    by a few rows per discharged goal, forever. [push_scoped] takes a
    full simplex snapshot so [pop_scoped] deallocates everything the
    scope purified. Scoped and plain frames may nest, but each pop must
    match its push's flavor. *)
let push_scoped st =
  st.trail <- Mark :: st.trail;
  Cc.push st.cc;
  st.lia_snaps <- Simplex.checkpoint st.lia :: st.lia_snaps

let pop_scoped st =
  unwind_trail st;
  Cc.pop st.cc;
  match st.lia_snaps with
  | [] -> invalid_arg "Theory.pop_scoped: no matching push_scoped"
  | s :: rest ->
      Simplex.restore st.lia s;
      st.lia_snaps <- rest

(* --------------------------------------------------------------- *)
(* Purification *)

(** Translate an int-sorted term into a linear expression, registering
    proxies for uninterpreted applications. *)
let rec linearize st (t : Term.t) : Simplex.Linexp.t * Q.t =
  match Term.view t with
  | Term.Int_lit n -> (Simplex.Linexp.empty, Q.of_int n)
  | Term.Var (x, _) ->
      let node = Cc.node_of_term st.cc (Term.var x) in
      share st x node;
      (Simplex.Linexp.add_term x Q.one Simplex.Linexp.empty, Q.zero)
  | Term.Add (a, b) ->
      let ea, ka = linearize st a and eb, kb = linearize st b in
      (merge_linexp ea eb Q.one, Q.add ka kb)
  | Term.Sub (a, b) ->
      let ea, ka = linearize st a and eb, kb = linearize st b in
      (merge_linexp ea eb Q.minus_one, Q.sub ka kb)
  | Term.Mul (a, b) -> (
      match (constant_of st a, constant_of st b) with
      | Some c, _ ->
          let eb, kb = linearize st b in
          (scale_linexp c eb, Q.mul c kb)
      | _, Some c ->
          let ea, ka = linearize st a in
          (scale_linexp c ea, Q.mul c ka)
      | None, None ->
          (* Nonlinear product: abstract as an uninterpreted term so
             congruence still applies to syntactically equal products. *)
          let node = euf_node st (Term.app "%mul" [ a; b ]) in
          let name = proxy_name st node in
          (Simplex.Linexp.add_term name Q.one Simplex.Linexp.empty, Q.zero))
  | Term.App _ ->
      let node = euf_node st t in
      let name = proxy_name st node in
      (Simplex.Linexp.add_term name Q.one Simplex.Linexp.empty, Q.zero)
  | Term.Ite _ ->
      invalid_arg "Theory.linearize: ite must be eliminated by preprocessing"
  | _ -> invalid_arg (Fmt.str "Theory.linearize: %a" Term.pp t)

and merge_linexp ea eb sign =
  Smap.fold (fun x c acc -> Simplex.Linexp.add_term x (Q.mul sign c) acc) eb ea

and scale_linexp c e = Smap.map (Q.mul c) e

and constant_of _st t =
  match Term.view t with Term.Int_lit n -> Some (Q.of_int n) | _ -> None

(** Intern an int term as a congruence node. Arithmetic below an
    application is abstracted: a proxy variable is created, defined in
    LIA, and the proxy's node is used. *)
and euf_node st (t : Term.t) : int =
  match Term.view t with
  | Term.Var (x, _) ->
      let node = Cc.node_of_term st.cc (Term.var x) in
      share st x node;
      node
  | Term.Int_lit _ -> Cc.node_of_term st.cc t
  | Term.App (f, args) ->
      let args = List.map (euf_node st) args in
      let node =
        (* Build the node from purified argument nodes directly. *)
        cc_app st f args
      in
      node
  | _ ->
      (* Arithmetic term in an EUF position: abstract with a proxy
         defined by a LIA equality. *)
      let e, k = linearize st t in
      let name = Gensym.fresh st.gensym in
      let node = Cc.node_of_term st.cc (Term.var name) in
      share st name node;
      (* name = e + k  ⇒  name - e = k *)
      let lhs =
        Smap.fold
          (fun x c acc -> Simplex.Linexp.add_term x (Q.neg c) acc)
          e
          (Simplex.Linexp.add_term name Q.one Simplex.Linexp.empty)
      in
      Simplex.assert_atom st.lia lhs Simplex.Eq k;
      node

and cc_app st f arg_nodes = Cc.alloc st.cc (Cc.Fapp (f, arg_nodes))

(** [proxy_name st node] returns the LIA variable standing for the
    congruence node, minting one if needed. *)
and proxy_name st node =
  match Hashtbl.find_opt st.proxy_of_node node with
  | Some name -> name
  | None ->
      let name = Gensym.fresh st.gensym in
      share st name node;
      name

(* --------------------------------------------------------------- *)
(* Asserting literals *)

let assert_arith st (a : Term.t) (b : Term.t) (op : Simplex.op) =
  let ea, ka = linearize st a and eb, kb = linearize st b in
  (* ea + ka op eb + kb  ⇒  ea - eb op kb - ka *)
  let e = merge_linexp ea eb Q.minus_one in
  Simplex.assert_atom st.lia e op (Q.sub kb ka)

let assert_literal st ({ term; pos } : atom) =
  match (Term.view term, pos) with
  | Term.Eq (a, b), true when Sort.equal (Term.sort_of a) Sort.Int ->
      assert_arith st a b Simplex.Eq;
      Cc.assert_eq st.cc (euf_node st a) (euf_node st b)
  | Term.Eq (a, b), false when Sort.equal (Term.sort_of a) Sort.Int ->
      (* EUF records the disequality; on the LIA side the eager
         splitting lemma Eq ∨ Lt ∨ Gt (added in preprocessing) forces
         the SAT solver to pick a strict separation, so no arithmetic
         disequality handling is needed here. *)
      Cc.assert_neq st.cc (euf_node st a) (euf_node st b)
  | Term.Le (a, b), true -> assert_arith st a b Simplex.Le
  | Term.Le (a, b), false -> assert_arith st a b Simplex.Gt
  | Term.Lt (a, b), true -> assert_arith st a b Simplex.Lt
  | Term.Lt (a, b), false -> assert_arith st a b Simplex.Ge
  | Term.Pred (f, args), pos ->
      let args = List.map (euf_node st) args in
      let node = cc_app st f args in
      Cc.assert_eq st.cc node (if pos then st.node_true else st.node_false)
  | Term.Var (x, Sort.Bool), pos ->
      let node = Cc.node_of_term st.cc (Term.var ("%b" ^ x)) in
      Cc.assert_eq st.cc node (if pos then st.node_true else st.node_false)
  | Term.Eq (a, b), pos ->
      (* Boolean equality between atoms should have been removed by
         Tseitin (encoded as Iff); defensive fallback. *)
      ignore (a, b, pos);
      invalid_arg "Theory.assert_literal: boolean equality atom"
  | _, _ -> invalid_arg (Fmt.str "Theory.assert_literal: %a" Term.pp term)

(* --------------------------------------------------------------- *)
(* The combination loop *)

(** LIA entailment of [x = y] under the current constraints: UNSAT of
    both strict separations, each probed under a push/pop instead of
    copying the tableau. *)
let lia_entails_eq stats st x y =
  let test op =
    Simplex.push st.lia;
    let e =
      Simplex.Linexp.add_term x Q.one
        (Simplex.Linexp.add_term y Q.minus_one Simplex.Linexp.empty)
    in
    Simplex.assert_atom st.lia e op Q.zero;
    stats.Stats.lia_checks <- stats.Stats.lia_checks + 1;
    let r = Simplex.check_rational st.lia in
    Simplex.pop st.lia;
    match r with Simplex.Unsat -> true | Simplex.Sat -> false
  in
  test Simplex.Lt && test Simplex.Gt

(** Run the combined check on the literals already asserted.

    [eq_budget] caps the number of model-guided cross-theory equality
    entailment tests. With the default (unbounded) budget the check is
    complete for our fragment; with a small budget a [Sat] answer may
    be spurious, which is fine for callers (unsat-core minimization)
    that only trust [Unsat]. Every incomplete exit — combination fuel
    out, simplex branch-and-bound fuel out, or an eq-budget-starved
    [Sat] — bumps [Stats.combination_timeouts] so incompleteness is
    observable without [SMT_DEBUG]. *)
let check ?(eq_budget = max_int) st : result =
  let stats = Stats.current () in
  let eq_budget = ref eq_budget in
  let budget_hit = ref false in
  stats.Stats.theory_checks <- stats.Stats.theory_checks + 1;
  (* Cross-theory propagation only concerns variables the arithmetic
     solver actually constrains; in pure-EUF problems the LIA state is
     empty and no propagation pass must run at all. *)
  let lia_relevant () =
    Hashtbl.fold
      (fun x node acc ->
        if Hashtbl.mem st.lia.Simplex.names x then (x, node) :: acc else acc)
      st.shared []
  in
  let rec loop fuel =
    Budget.poll ();
    if fuel <= 0 then begin
      stats.Stats.combination_timeouts <- stats.Stats.combination_timeouts + 1;
      stats.Stats.fuel_combination <- stats.Stats.fuel_combination + 1;
      if Lazy.force debug then prerr_endline "DEBUG: combination fuel out";
      Resource_out (Budget.Fuel "combination")
    end
    else begin
      stats.Stats.euf_checks <- stats.Stats.euf_checks + 1;
      if not (Cc.consistent st.cc) then Unsat
      else begin
        (* EUF → LIA: merged shared variables become LIA equalities.
           Bucket the shared variables by congruence class and link
           each class along a spanning tree anchored at its minimal
           name — linear in the class size, instead of asserting (and
           membership-testing) every quadratic pair. *)
        let shared = lia_relevant () in
        let classes : (int, (string * int) list) Hashtbl.t =
          Hashtbl.create 16
        in
        List.iter
          (fun (x, nx) ->
            let r = Cc.find st.cc nx in
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt classes r)
            in
            Hashtbl.replace classes r ((x, nx) :: prev))
          shared;
        Hashtbl.iter
          (fun _ members ->
            match List.sort compare members with
            | [] | [ _ ] -> ()
            | (anchor, _) :: rest ->
                List.iter
                  (fun (y, _) ->
                    let key = (anchor, y) in
                    if not (Hashtbl.mem st.propagated key) then begin
                      Hashtbl.add st.propagated key ();
                      st.trail <- Unpropagate (anchor, y) :: st.trail;
                      stats.Stats.eq_propagations <-
                        stats.Stats.eq_propagations + 1;
                      let e =
                        Simplex.Linexp.add_term anchor Q.one
                          (Simplex.Linexp.add_term y Q.minus_one
                             Simplex.Linexp.empty)
                      in
                      Simplex.assert_atom st.lia e Simplex.Eq Q.zero
                    end)
                  rest)
          classes;
        stats.Stats.lia_checks <- stats.Stats.lia_checks + 1;
        match Simplex.check_int st.lia with
        | Simplex.IUnsat -> Unsat
        | Simplex.IResource_out ->
            stats.Stats.combination_timeouts <-
              stats.Stats.combination_timeouts + 1;
            if Lazy.force debug then
              prerr_endline "DEBUG: check_int out of fuel";
            Resource_out (Budget.Fuel "simplex_fuel")
        | Simplex.IModel m ->
            (* LIA → EUF: model-guided entailed equalities. Only pairs
               the model already makes equal can be entailed, and
               within a model-value bucket one representative per CC
               class stands for its whole class (after the EUF→LIA
               pass above, entailment is class-invariant). *)
            let by_value : (int, (string * int) list) Hashtbl.t =
              Hashtbl.create 16
            in
            List.iter
              (fun (x, nx) ->
                match Smap.find_opt x m with
                | Some v ->
                    let prev =
                      Option.value ~default:[] (Hashtbl.find_opt by_value v)
                    in
                    Hashtbl.replace by_value v ((x, nx) :: prev)
                | None -> ())
              (lia_relevant ());
            let merged = ref false in
            Hashtbl.iter
              (fun _ members ->
                (* One representative per congruence class: the member
                   with the minimal name, for determinism. *)
                let reps : (int, string * int) Hashtbl.t = Hashtbl.create 8 in
                List.iter
                  (fun (x, nx) ->
                    let r = Cc.find st.cc nx in
                    match Hashtbl.find_opt reps r with
                    | Some (x', _) when x' <= x -> ()
                    | _ -> Hashtbl.replace reps r (x, nx))
                  members;
                let rep_list =
                  Hashtbl.fold (fun _ rep acc -> rep :: acc) reps []
                  |> List.sort compare
                in
                List.iter
                  (fun ((x, nx), (y, ny)) ->
                    if not (Cc.are_equal st.cc nx ny) then begin
                      if !eq_budget > 0 then begin
                        decr eq_budget;
                        if lia_entails_eq stats st x y then begin
                          merged := true;
                          stats.Stats.eq_propagations <-
                            stats.Stats.eq_propagations + 1;
                          Cc.assert_eq st.cc nx ny
                        end
                      end
                      else budget_hit := true
                    end)
                  (Listx.all_pairs rep_list))
              by_value;
            if !merged then loop (fuel - 1)
            else begin
              if !budget_hit then begin
                stats.Stats.combination_timeouts <-
                  stats.Stats.combination_timeouts + 1;
                stats.Stats.fuel_eq_budget <- stats.Stats.fuel_eq_budget + 1
              end;
              (* An eq-budget-starved [Sat] stays [Sat]: callers that
                 set a small budget (unsat-core minimization) only
                 trust [Unsat], and the starvation is now counted. *)
              Sat m
            end
      end
    end
  in
  loop 64

(** {!check} under a checkpoint: the state is exactly as before the
    call when it returns, so callers holding a persistent session can
    probe freely. *)
let check_scoped ?eq_budget st : result =
  push st;
  match check ?eq_budget st with
  | r ->
      pop st;
      r
  | exception e ->
      pop st;
      raise e
