(** An SMT solver for quantifier-free EUF + linear integer arithmetic.

    Built from scratch as the automation engine of the verifier (the
    stand-in for Z3 in the paper's toolchain): {!Sat} is a CDCL SAT
    core, {!Cc} congruence closure, {!Simplex} a branch-and-bound
    general simplex, {!Theory} the combination, {!Solver} the lazy
    CDCL(T) loop, {!Session} persistent incremental entailment on top
    of it, and {!Term} the input language. *)

module Sort = Sort
module Term = Term
module Sat = Sat
module Cc = Cc
module Simplex = Simplex
module Theory = Theory
module Solver = Solver
module Session = Session
module Stats = Stats
