(** Congruence closure for ground equality with uninterpreted functions.

    Operates on *purified* terms: variables, integer literals, and
    applications of uninterpreted symbols (arithmetic has been replaced
    by proxy variables before terms reach this module). Terms are
    interned into dense node ids; merging maintains a signature table
    so congruence ([x = y] implies [f x = f y]) propagates to parents.

    Distinct integer literals are pairwise disequal by construction:
    merging two of them is an immediate conflict.

    The structure is {e backtrackable}: {!push} records a mark and
    {!pop} undoes every state change since the matching mark — node
    allocations, merges, signature registrations, disequalities, the
    inconsistency flag — via a trail. To make unions undoable by
    resetting a single parent pointer, the embedded union-find uses
    union-by-rank {e without} path compression (compression re-points
    interior nodes at the root, which would survive the undo of the
    union that made the root reachable). Rank-only finds stay
    logarithmic, which is all the incremental solver needs. *)

type node_kind =
  | Const of string  (** variable or nullary symbol *)
  | Num of int  (** integer literal — distinct literals never merge *)
  | Fapp of string * int list  (** symbol + argument node ids *)

type undo =
  | Mark
  | Alloc of node_kind  (** newest node: un-intern, shrink *)
  | Unmemo of int  (** drop a term-id -> node-id memo entry *)
  | Parent_push of int  (** pop the head of [parents.(rep)] *)
  | Sig_add of (string * int list)  (** remove the signature entry *)
  | Union of {
      child : int;
      parent : int;
      rank_bumped : bool;
      old_parents : int list;
      old_num : int option;
    }
  | Diseq  (** pop the head of [diseqs] *)
  | Inconsistent  (** clear the flag *)

type t = {
  mutable parent : int array;  (* union-find, rank-only *)
  mutable rank : int array;
  mutable kinds : node_kind array;
  mutable n_nodes : int;
  intern : (node_kind, int) Hashtbl.t;
  term_memo : (int, int) Hashtbl.t;  (* Term.id -> node id, trail-scoped *)
  signatures : (string * int list, int) Hashtbl.t;
  mutable parents : int list array;  (* rep -> parent application nodes *)
  mutable num_of_class : int option array;  (* rep -> literal value if any *)
  mutable diseqs : (int * int) list;
  mutable inconsistent : bool;
  mutable trail : undo list;
}

let create () =
  {
    parent = Array.init 64 Fun.id;
    rank = Array.make 64 0;
    kinds = Array.make 64 (Const "");
    n_nodes = 0;
    intern = Hashtbl.create 64;
    term_memo = Hashtbl.create 64;
    signatures = Hashtbl.create 64;
    parents = Array.make 64 [];
    num_of_class = Array.make 64 None;
    diseqs = [];
    inconsistent = false;
    trail = [];
  }

let grow t n =
  if n >= Array.length t.kinds then begin
    let cap = max (n + 1) (2 * Array.length t.kinds) in
    let parent = Array.init cap Fun.id in
    let rank = Array.make cap 0 in
    let kinds = Array.make cap (Const "") in
    let parents = Array.make cap [] in
    let nums = Array.make cap None in
    Array.blit t.parent 0 parent 0 t.n_nodes;
    Array.blit t.rank 0 rank 0 t.n_nodes;
    Array.blit t.kinds 0 kinds 0 t.n_nodes;
    Array.blit t.parents 0 parents 0 t.n_nodes;
    Array.blit t.num_of_class 0 nums 0 t.n_nodes;
    t.parent <- parent;
    t.rank <- rank;
    t.kinds <- kinds;
    t.parents <- parents;
    t.num_of_class <- nums
  end

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x else find t p

let signature t f args = (f, List.map (find t) args)

let set_inconsistent t =
  if not t.inconsistent then begin
    t.inconsistent <- true;
    t.trail <- Inconsistent :: t.trail
  end

let rec alloc t kind =
  match Hashtbl.find_opt t.intern kind with
  | Some id -> id
  | None ->
      let id = t.n_nodes in
      grow t id;
      t.n_nodes <- id + 1;
      (* Slots may hold garbage from a popped allocation: re-init. *)
      t.parent.(id) <- id;
      t.rank.(id) <- 0;
      t.kinds.(id) <- kind;
      t.parents.(id) <- [];
      t.num_of_class.(id) <- None;
      Hashtbl.add t.intern kind id;
      t.trail <- Alloc kind :: t.trail;
      (match kind with
      | Num v -> t.num_of_class.(id) <- Some v
      | Const _ -> ()
      | Fapp (f, args) ->
          (* Register in the signature table, merging on collision. *)
          List.iter
            (fun a ->
              let r = find t a in
              t.parents.(r) <- id :: t.parents.(r);
              t.trail <- Parent_push r :: t.trail)
            args;
          let s = signature t f args in
          (match Hashtbl.find_opt t.signatures s with
          | Some id' -> merge t id id'
          | None ->
              Hashtbl.add t.signatures s id;
              t.trail <- Sig_add s :: t.trail));
      id

and merge t a b =
  if t.inconsistent then ()
  else
    let ra = find t a and rb = find t b in
    if ra <> rb then begin
      (* Numeric consistency. *)
      match (t.num_of_class.(ra), t.num_of_class.(rb)) with
      | Some x, Some y when x <> y -> set_inconsistent t
      | _ ->
          (* Union by rank: attach the lower-rank rep under the other. *)
          let child, parent, rank_bumped =
            if t.rank.(ra) < t.rank.(rb) then (ra, rb, false)
            else if t.rank.(ra) > t.rank.(rb) then (rb, ra, false)
            else (rb, ra, true)
          in
          let old_parents = t.parents.(parent) in
          let old_num = t.num_of_class.(parent) in
          t.parent.(child) <- parent;
          if rank_bumped then t.rank.(parent) <- t.rank.(parent) + 1;
          t.parents.(parent) <- List.rev_append t.parents.(child) old_parents;
          t.num_of_class.(parent) <-
            (match old_num with Some _ -> old_num | None -> t.num_of_class.(child));
          t.trail <-
            Union { child; parent; rank_bumped; old_parents; old_num } :: t.trail;
          (* Recompute signatures of parents; merge on collisions. *)
          let to_merge = ref [] in
          List.iter
            (fun p ->
              match t.kinds.(p) with
              | Fapp (f, args) -> (
                  let s = signature t f args in
                  match Hashtbl.find_opt t.signatures s with
                  | Some q when find t q <> find t p ->
                      to_merge := (p, q) :: !to_merge
                  | Some _ -> ()
                  | None ->
                      Hashtbl.add t.signatures s p;
                      t.trail <- Sig_add s :: t.trail)
              | _ -> ())
            t.parents.(parent);
          List.iter (fun (p, q) -> merge t p q) !to_merge
    end

(** Intern a purified term. Arithmetic constructors are rejected — the
    caller must purify first. Memoized on the term's intern id so
    repeated assertions over shared subterms skip the recursion; the
    memo entry is trail-scoped (pushed after the node's [Alloc], so
    {!pop} drops it before un-interning the node). *)
let rec node_of_term t (tm : Term.t) =
  match Hashtbl.find_opt t.term_memo (Term.id tm) with
  | Some id -> id
  | None ->
      let id =
        match Term.view tm with
        | Term.Var (x, _) -> alloc t (Const x)
        | Term.Int_lit n -> alloc t (Num n)
        | Term.App (f, args) ->
            let args = List.map (node_of_term t) args in
            alloc t (Fapp (f, args))
        | _ ->
            invalid_arg
              (Fmt.str "Cc.node_of_term: unpurified term %a" Term.pp tm)
      in
      Hashtbl.add t.term_memo (Term.id tm) id;
      t.trail <- Unmemo (Term.id tm) :: t.trail;
      id

let assert_eq t a b = merge t a b

let assert_neq t a b =
  t.diseqs <- (a, b) :: t.diseqs;
  t.trail <- Diseq :: t.trail

let are_equal t a b = find t a = find t b

(** Consistency of everything asserted so far. *)
let consistent t =
  (not t.inconsistent)
  && List.for_all (fun (a, b) -> not (are_equal t a b)) t.diseqs

(* --------------------------------------------------------------- *)
(* Backtracking *)

let push t = t.trail <- Mark :: t.trail

let undo_op t = function
  | Mark -> assert false
  | Alloc kind ->
      Hashtbl.remove t.intern kind;
      t.n_nodes <- t.n_nodes - 1
  | Unmemo tid -> Hashtbl.remove t.term_memo tid
  | Parent_push r -> t.parents.(r) <- List.tl t.parents.(r)
  | Sig_add s -> Hashtbl.remove t.signatures s
  | Union { child; parent; rank_bumped; old_parents; old_num } ->
      t.parent.(child) <- child;
      if rank_bumped then t.rank.(parent) <- t.rank.(parent) - 1;
      t.parents.(parent) <- old_parents;
      t.num_of_class.(parent) <- old_num
  | Diseq -> t.diseqs <- List.tl t.diseqs
  | Inconsistent -> t.inconsistent <- false

(** Undo every change back to (and including) the latest {!push} mark.
    Undo runs in strict reverse order, which is what makes the
    individual operations (head pops, single-pointer resets) exact
    inverses. *)
let rec pop t =
  match t.trail with
  | [] -> invalid_arg "Cc.pop: no matching push"
  | Mark :: rest -> t.trail <- rest
  | op :: rest ->
      t.trail <- rest;
      undo_op t op;
      pop t
