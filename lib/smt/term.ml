(** The quantifier-free term language of the solver, hash-consed.

    Every term is interned in a process-global pool: structurally
    equal terms are physically equal, so {!equal} is [(==)], {!hash}
    and {!compare} are O(1) on the interned tag, and {!size} is a
    memoized field. Smart constructors perform the same light
    simplification as before (constant folding, flattening, double
    negation) and then intern; callers build terms naively.

    Invariants (see DESIGN.md §11):
    - [tag] is process-local: allocated from a global counter at
      intern time, never stable across runs. Use it for memo tables
      and ordering *within* a process only.
    - [digest] is canonical: an MD5 over the term's structure alone
      (constructor, payloads, child digests), memoized per node.
      Identical terms built in different processes — or in the same
      process after any amount of unrelated interning — get identical
      digests, which is what makes VC-cache keys survive daemon
      restarts.
    - The pool is shared by all domains (terms cross domain
      boundaries in the parallel engine), so interning takes a
      per-shard mutex around a weak hash set; dropped terms are
      reclaimed by the GC. *)

type t = {
  node : node;
  tag : int;  (** unique intern id — process-local *)
  hkey : int;  (** memoized structural hash *)
  tsize : int;  (** memoized constructor count *)
  mutable digest : string;  (** memoized canonical MD5 ("" = unset) *)
}

and node =
  | Var of string * Sort.t
  | Int_lit of int
  | True
  | False
  | App of string * t list  (** uninterpreted function, int-sorted result *)
  | Pred of string * t list  (** uninterpreted predicate, bool-sorted *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Ite of t * t * t  (** condition, then, else — branches int-sorted *)
  | Eq of t * t
  | Le of t * t
  | Lt of t * t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t

let[@inline] view t = t.node
let[@inline] id t = t.tag
let[@inline] hash t = t.hkey
let[@inline] size t = t.tsize
let[@inline] equal (a : t) (b : t) = a == b
let compare (a : t) (b : t) = Int.compare a.tag b.tag

(* ------------------------------------------------------------------ *)
(* The intern pool *)

(* Structural hash of a node, one level deep: children contribute
   their memoized [hkey], so hashing is O(arity) and agrees with
   shallow equality below. *)
let hash_node node =
  let cmb h x = ((h * 0x01000193) lxor x) land max_int in
  let str s = Hashtbl.hash (s : string) in
  match node with
  | Var (x, Sort.Int) -> cmb 3 (str x)
  | Var (x, Sort.Bool) -> cmb 5 (str x)
  | Int_lit n -> cmb 7 (n land max_int)
  | True -> 11
  | False -> 13
  | App (f, args) ->
      List.fold_left (fun h a -> cmb h a.hkey) (cmb 17 (str f)) args
  | Pred (f, args) ->
      List.fold_left (fun h a -> cmb h a.hkey) (cmb 19 (str f)) args
  | Add (a, b) -> cmb (cmb 23 a.hkey) b.hkey
  | Sub (a, b) -> cmb (cmb 29 a.hkey) b.hkey
  | Mul (a, b) -> cmb (cmb 31 a.hkey) b.hkey
  | Ite (c, a, b) -> cmb (cmb (cmb 37 c.hkey) a.hkey) b.hkey
  | Eq (a, b) -> cmb (cmb 41 a.hkey) b.hkey
  | Le (a, b) -> cmb (cmb 43 a.hkey) b.hkey
  | Lt (a, b) -> cmb (cmb 47 a.hkey) b.hkey
  | Not a -> cmb 53 a.hkey
  | And ts -> List.fold_left (fun h a -> cmb h a.hkey) 59 ts
  | Or ts -> List.fold_left (fun h a -> cmb h a.hkey) 61 ts
  | Implies (a, b) -> cmb (cmb 67 a.hkey) b.hkey
  | Iff (a, b) -> cmb (cmb 71 a.hkey) b.hkey

(* Shallow structural equality: children are compared with [==],
   which is sound because they are already interned. *)
let equal_node (a : node) (b : node) =
  match (a, b) with
  | Var (x, s), Var (y, s') -> String.equal x y && Sort.equal s s'
  | Int_lit m, Int_lit n -> m = n
  | True, True | False, False -> true
  | App (f, xs), App (g, ys) | Pred (f, xs), Pred (g, ys) ->
      String.equal f g && List.equal ( == ) xs ys
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Eq (a1, a2), Eq (b1, b2)
  | Le (a1, a2), Le (b1, b2)
  | Lt (a1, a2), Lt (b1, b2)
  | Implies (a1, a2), Implies (b1, b2)
  | Iff (a1, a2), Iff (b1, b2) ->
      a1 == b1 && a2 == b2
  | Ite (c1, a1, b1), Ite (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
  | Not a, Not b -> a == b
  | And xs, And ys | Or xs, Or ys -> List.equal ( == ) xs ys
  | _ -> false

let size_node = function
  | Var _ | Int_lit _ | True | False -> 1
  | App (_, args) | Pred (_, args) ->
      List.fold_left (fun acc a -> acc + a.tsize) 1 args
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) | Le (a, b) | Lt (a, b)
  | Implies (a, b) | Iff (a, b) ->
      1 + a.tsize + b.tsize
  | Ite (c, a, b) -> 1 + c.tsize + a.tsize + b.tsize
  | Not a -> 1 + a.tsize
  | And ts | Or ts -> List.fold_left (fun acc a -> acc + a.tsize) 1 ts

module Pool = Weak.Make (struct
  type nonrec t = t

  let equal a b = equal_node a.node b.node
  let hash t = t.hkey
end)

(* The pool is global (terms flow between worker domains), sharded to
   keep the mutexes short and mostly uncontended. Hit/miss counters
   are plain ints mutated under the shard mutex — cheaper than
   atomics on the hit path, and exact because the lock is held. *)
type shard = {
  mutex : Mutex.t;
  pool : Pool.t;
  mutable hits : int;
  mutable misses : int;
}

let n_shards = 64

let shards =
  Array.init n_shards (fun _ ->
      { mutex = Mutex.create (); pool = Pool.create 1024; hits = 0; misses = 0 })

let next_tag = Atomic.make 0

(* Lock-free direct-mapped cache in front of the weak pool: a plain
   array indexed by hash, each slot holding the last interned term
   with that hash residue. Races are benign — slots only ever hold
   canonical (pool-resident) terms, a stale read just falls through
   to the locked pool, and an overwrite loses nothing but a future
   shortcut. This keeps the common rebuild-an-existing-term path at
   one hash + one array read, with no mutex and no weak-set probe. *)
let cache_bits = 16
let cache : t option array = Array.make (1 lsl cache_bits) None

(* Racy on purpose: a lost increment under contention skews a
   diagnostic counter, not a verdict; an atomic here would tax every
   constructor call. *)
let cache_hits = ref 0

let intern node =
  let hkey = hash_node node in
  let slot = hkey land ((1 lsl cache_bits) - 1) in
  match Array.unsafe_get cache slot with
  | Some t when equal_node t.node node ->
      incr cache_hits;
      t
  | _ ->
      (* The lookup key borrows the node; tag and size are only
         computed (and an id only consumed) when the term is new. *)
      let probe = { node; tag = -1; hkey; tsize = 0; digest = "" } in
      let shard = shards.(hkey lsr cache_bits land (n_shards - 1)) in
      Mutex.lock shard.mutex;
      let t =
        match Pool.find_opt shard.pool probe with
        | Some t ->
            shard.hits <- shard.hits + 1;
            t
        | None ->
            let t =
              {
                node;
                tag = Atomic.fetch_and_add next_tag 1;
                hkey;
                tsize = size_node node;
                digest = "";
              }
            in
            Pool.add shard.pool t;
            shard.misses <- shard.misses + 1;
            t
      in
      Mutex.unlock shard.mutex;
      Array.unsafe_set cache slot (Some t);
      t

type pool_stats = { pool_size : int; pool_hits : int; pool_misses : int }

(** Pool occupancy and hit rate since process start. [pool_size]
    counts live (not yet collected) interned terms. *)
let pool_stats () =
  Array.fold_left
    (fun acc s ->
      {
        pool_size = acc.pool_size + Pool.count s.pool;
        pool_hits = acc.pool_hits + s.hits;
        pool_misses = acc.pool_misses + s.misses;
      })
    { pool_size = 0; pool_hits = !cache_hits; pool_misses = 0 }
    shards

(* ------------------------------------------------------------------ *)
(* Canonical digest *)

(** Canonical MD5 of the term's structure: constructor tag byte,
    length-prefixed string payloads, children by their (fixed-width)
    digests. Never derived from [tag], so equal structures digest
    equally across processes — the property VC-cache keys need.
    Memoized; the benign race on the field writes identical values. *)
let rec digest t =
  if String.length t.digest <> 0 then t.digest
  else begin
    let buf = Buffer.create 64 in
    let s x =
      Buffer.add_string buf (string_of_int (String.length x));
      Buffer.add_char buf ':';
      Buffer.add_string buf x
    in
    let d x = Buffer.add_string buf (digest x) in
    (match t.node with
    | Var (x, Sort.Int) -> Buffer.add_char buf 'v'; s x
    | Var (x, Sort.Bool) -> Buffer.add_char buf 'b'; s x
    | Int_lit n -> Buffer.add_char buf 'n'; s (string_of_int n)
    | True -> Buffer.add_char buf 'T'
    | False -> Buffer.add_char buf 'F'
    | App (f, args) -> Buffer.add_char buf 'f'; s f; List.iter d args
    | Pred (f, args) -> Buffer.add_char buf 'p'; s f; List.iter d args
    | Add (a, b) -> Buffer.add_char buf '+'; d a; d b
    | Sub (a, b) -> Buffer.add_char buf '-'; d a; d b
    | Mul (a, b) -> Buffer.add_char buf '*'; d a; d b
    | Ite (c, a, b) -> Buffer.add_char buf '?'; d c; d a; d b
    | Eq (a, b) -> Buffer.add_char buf '='; d a; d b
    | Le (a, b) -> Buffer.add_char buf 'l'; d a; d b
    | Lt (a, b) -> Buffer.add_char buf '<'; d a; d b
    | Not a -> Buffer.add_char buf '!'; d a
    | And ts -> Buffer.add_char buf '&'; List.iter d ts
    | Or ts -> Buffer.add_char buf '|'; List.iter d ts
    | Implies (a, b) -> Buffer.add_char buf '>'; d a; d b
    | Iff (a, b) -> Buffer.add_char buf '~'; d a; d b);
    let dg = Digest.string (Buffer.contents buf) in
    t.digest <- dg;
    dg
  end

(* ------------------------------------------------------------------ *)
(* Printing *)

let rec pp ppf t =
  match t.node with
  | Var (x, _) -> Fmt.string ppf x
  | Int_lit n -> Fmt.int ppf n
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | App (f, args) | Pred (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ",@ ") pp) args
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Ite (c, a, b) -> Fmt.pf ppf "(ite %a %a %a)" pp c pp a pp b
  | Eq (a, b) -> Fmt.pf ppf "(%a = %a)" pp a pp b
  | Le (a, b) -> Fmt.pf ppf "(%a <= %a)" pp a pp b
  | Lt (a, b) -> Fmt.pf ppf "(%a < %a)" pp a pp b
  | Not a -> Fmt.pf ppf "¬%a" pp a
  | And ts -> Fmt.pf ppf "(@[%a@])" (Fmt.list ~sep:(Fmt.any " ∧@ ") pp) ts
  | Or ts -> Fmt.pf ppf "(@[%a@])" (Fmt.list ~sep:(Fmt.any " ∨@ ") pp) ts
  | Implies (a, b) -> Fmt.pf ppf "(%a → %a)" pp a pp b
  | Iff (a, b) -> Fmt.pf ppf "(%a ↔ %a)" pp a pp b

let to_string t = Fmt.str "%a" pp t

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)

let var ?(sort = Sort.Int) x = intern (Var (x, sort))
let bvar x = intern (Var (x, Sort.Bool))
let int n = intern (Int_lit n)
let tru = intern True
let fls = intern False
let app f args = intern (App (f, args))
let pred f args = intern (Pred (f, args))

let add a b =
  match (a.node, b.node) with
  | Int_lit 0, _ -> b
  | _, Int_lit 0 -> a
  | Int_lit m, Int_lit n -> int (m + n)
  | _ -> intern (Add (a, b))

let sub a b =
  match (a.node, b.node) with
  | _, Int_lit 0 -> a
  | Int_lit m, Int_lit n -> int (m - n)
  | _ -> intern (Sub (a, b))

let mul a b =
  match (a.node, b.node) with
  | Int_lit 0, _ | _, Int_lit 0 -> int 0
  | Int_lit 1, _ -> b
  | _, Int_lit 1 -> a
  | Int_lit m, Int_lit n -> int (m * n)
  | _ -> intern (Mul (a, b))

let neg t = sub (int 0) t

let not_ t =
  match t.node with
  | True -> fls
  | False -> tru
  | Not u -> u
  | _ -> intern (Not t)

let and_ ts =
  let ts =
    List.concat_map
      (fun t -> match t.node with And xs -> xs | True -> [] | _ -> [ t ])
      ts
  in
  if List.exists (fun t -> match t.node with False -> true | _ -> false) ts
  then fls
  else match ts with [] -> tru | [ t ] -> t | ts -> intern (And ts)

let or_ ts =
  let ts =
    List.concat_map
      (fun t -> match t.node with Or xs -> xs | False -> [] | _ -> [ t ])
      ts
  in
  if List.exists (fun t -> match t.node with True -> true | _ -> false) ts
  then tru
  else match ts with [] -> fls | [ t ] -> t | ts -> intern (Or ts)

let implies a b =
  match (a.node, b.node) with
  | True, _ -> b
  | False, _ -> tru
  | _, True -> tru
  | _, False -> not_ a
  | _ -> intern (Implies (a, b))

let iff a b =
  match (a.node, b.node) with
  | True, _ -> b
  | _, True -> a
  | False, _ -> not_ b
  | _, False -> not_ a
  | _ -> if a == b then tru else intern (Iff (a, b))

let eq a b =
  match (a.node, b.node) with
  | Int_lit m, Int_lit n -> if m = n then tru else fls
  | True, _ -> b
  | _, True -> a
  | False, _ -> not_ b
  | _, False -> not_ a
  | _ -> if a == b then tru else intern (Eq (a, b))

let le a b =
  match (a.node, b.node) with
  | Int_lit m, Int_lit n -> if m <= n then tru else fls
  | _ -> if a == b then tru else intern (Le (a, b))

let lt a b =
  match (a.node, b.node) with
  | Int_lit m, Int_lit n -> if m < n then tru else fls
  | _ -> if a == b then fls else intern (Lt (a, b))

let ge a b = le b a
let gt a b = lt b a
let neq a b = not_ (eq a b)

let ite c a b =
  match c.node with True -> a | False -> b | _ -> intern (Ite (c, a, b))

let bool b = if b then tru else fls

(* ------------------------------------------------------------------ *)

let sort_of t =
  match t.node with
  | Var (_, s) -> s
  | Int_lit _ | App _ | Add _ | Sub _ | Mul _ | Ite _ -> Sort.Int
  | True | False | Pred _ | Eq _ | Le _ | Lt _ | Not _ | And _ | Or _
  | Implies _ | Iff _ ->
      Sort.Bool

let rec free_vars acc t =
  match t.node with
  | Var (x, s) -> (x, s) :: acc
  | Int_lit _ | True | False -> acc
  | App (_, args) | Pred (_, args) -> List.fold_left free_vars acc args
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) | Le (a, b) | Lt (a, b)
  | Implies (a, b) | Iff (a, b) ->
      free_vars (free_vars acc a) b
  | Ite (c, a, b) -> free_vars (free_vars (free_vars acc c) a) b
  | Not a -> free_vars acc a
  | And ts | Or ts -> List.fold_left free_vars acc ts

let vars t = free_vars [] t |> List.sort_uniq Stdlib.compare

(** Capture-free substitution of variables by terms (our terms have no
    binders, so plain structural replacement is capture-free).

    Physical sharing makes the untouched case free: when no child
    changed, the original node is returned as-is — no re-interning,
    no allocation — so substitution costs O(spine touched), not
    O(size), on the mostly-unchanged formulas the verifier feeds it. *)
let rec subst map t =
  let share1 rebuild a a' = if a' == a then t else rebuild a' in
  let share2 rebuild a b a' b' =
    if a' == a && b' == b then t else rebuild a' b'
  in
  let sharen rebuild ts ts' =
    if List.for_all2 ( == ) ts ts' then t else rebuild ts'
  in
  match t.node with
  | Var (x, _) -> ( match Stdx.Smap.find_opt x map with Some u -> u | None -> t)
  | Int_lit _ | True | False -> t
  | App (f, args) -> sharen (app f) args (List.map (subst map) args)
  | Pred (f, args) -> sharen (pred f) args (List.map (subst map) args)
  | Add (a, b) -> share2 add a b (subst map a) (subst map b)
  | Sub (a, b) -> share2 sub a b (subst map a) (subst map b)
  | Mul (a, b) -> share2 mul a b (subst map a) (subst map b)
  | Ite (c, a, b) ->
      let c' = subst map c and a' = subst map a and b' = subst map b in
      if c' == c && a' == a && b' == b then t else ite c' a' b'
  | Eq (a, b) -> share2 eq a b (subst map a) (subst map b)
  | Le (a, b) -> share2 le a b (subst map a) (subst map b)
  | Lt (a, b) -> share2 lt a b (subst map a) (subst map b)
  | Not a -> share1 not_ a (subst map a)
  | And ts -> sharen and_ ts (List.map (subst map) ts)
  | Or ts -> sharen or_ ts (List.map (subst map) ts)
  | Implies (a, b) -> share2 implies a b (subst map a) (subst map b)
  | Iff (a, b) -> share2 iff a b (subst map a) (subst map b)

(** Evaluate a closed-enough term under a valuation. Used by the model
    checker in tests and for counterexample reporting. Unknown
    variables and uninterpreted applications evaluate via [on_app]. *)
let rec eval ~(env : int Stdx.Smap.t)
    ?(on_app = fun _ _ -> None) (t : t) : int option =
  let open Option in
  let int_of t = eval ~env ~on_app t in
  let both f a b =
    bind (int_of a) (fun x -> bind (int_of b) (fun y -> Some (f x y)))
  in
  match t.node with
  | Var (x, _) -> Stdx.Smap.find_opt x env
  | Int_lit n -> Some n
  | True -> Some 1
  | False -> Some 0
  | App (f, args) | Pred (f, args) ->
      let vals = List.filter_map int_of args in
      if List.length vals = List.length args then on_app f vals else None
  | Add (a, b) -> both ( + ) a b
  | Sub (a, b) -> both ( - ) a b
  | Mul (a, b) -> both ( * ) a b
  | Ite (c, a, b) ->
      bind (int_of c) (fun c -> if c <> 0 then int_of a else int_of b)
  | Eq (a, b) -> both (fun x y -> if x = y then 1 else 0) a b
  | Le (a, b) -> both (fun x y -> if x <= y then 1 else 0) a b
  | Lt (a, b) -> both (fun x y -> if x < y then 1 else 0) a b
  | Not a -> map (fun x -> 1 - x) (int_of a)
  | And ts ->
      List.fold_left
        (fun acc t -> bind acc (fun a -> map (fun b -> min a b) (int_of t)))
        (Some 1) ts
  | Or ts ->
      List.fold_left
        (fun acc t -> bind acc (fun a -> map (fun b -> max a b) (int_of t)))
        (Some 0) ts
  | Implies (a, b) -> both (fun x y -> if x <> 0 && y = 0 then 0 else 1) a b
  | Iff (a, b) ->
      both (fun x y -> if (x <> 0) = (y <> 0) then 1 else 0) a b

let eval_bool ~env ?on_app t =
  match eval ~env ?on_app t with
  | Some n -> Some (n <> 0)
  | None -> None
