(** Small, retry-safe IO helpers for the socket layer.

    The daemon and its clients speak a newline-delimited protocol over
    Unix-domain sockets; everything they need from the OS is "write a
    whole string" and "read one line", both robust against short
    writes, short reads, and [EINTR]. Kept in [stdx] so the server,
    the client, and the tests share one implementation. *)

(** Write all of [s] to [fd], retrying short writes and [EINTR].
    Raises [Unix.Unix_error] on real errors (e.g. [EPIPE] once the
    peer is gone — callers decide whether a vanished peer matters). *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(** A buffered line reader over a file descriptor. Not thread-safe:
    one reader owns one descriptor's read side. *)
type line_reader = {
  fd : Unix.file_descr;
  mutable pending : string;  (** bytes read but not yet consumed *)
}

let line_reader fd = { fd; pending = "" }

let chunk = 4096

(** Read one newline-terminated line (without the newline). [None] on
    end-of-stream. A final unterminated fragment is returned as a
    line — a peer that crashed mid-write produces garbage the protocol
    layer rejects, never a hang. *)
let rec read_line (r : line_reader) : string option =
  match String.index_opt r.pending '\n' with
  | Some i ->
      let line = String.sub r.pending 0 i in
      r.pending <-
        String.sub r.pending (i + 1) (String.length r.pending - i - 1);
      Some line
  | None -> (
      let buf = Bytes.create chunk in
      match Unix.read r.fd buf 0 chunk with
      | 0 -> if r.pending = "" then None
             else begin
               let line = r.pending in
               r.pending <- "";
               Some line
             end
      | n ->
          r.pending <- r.pending ^ Bytes.sub_string buf 0 n;
          read_line r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line r)
