(** Deadlines, cooperative cancellation, and unified fuel accounting.

    A budget is a wall-clock deadline plus a cancellation flag,
    optionally chained to a parent (per-run limits compose with
    per-job ones: a child is exhausted as soon as any ancestor is).
    Exhaustion is reported by raising {!Exhausted} from a poll point —
    the long-running loops of the SMT substrate poll cooperatively, so
    one pathological VC terminates at the next poll instead of hanging
    its worker domain.

    Polling is designed for hot loops: {!poll} reads the calling
    domain's {e ambient} budget (installed with {!with_budget},
    domain-local like {!Smt.Stats}) and only touches the clock every
    {!val-mask} calls; with no ambient budget it is a domain-local read
    and a conditional — cheap enough for the SAT solver's inner loop
    (the [bench budget_overhead] target pins the overhead on T1).

    {!Fuel} unifies the solver's scattered step-count knobs
    ([max_rounds], [fuel], [max_conflicts], [eq_budget]) behind one
    named-counter type, so every budget-exhaustion exit can say {e
    which} resource ran out ([Fuel knob] in {!reason}) and be counted
    per knob in the statistics. *)

type reason =
  | Deadline of float  (** the configured limit, in milliseconds *)
  | Cancelled
  | Fuel of string  (** a named step-count knob ran out *)

exception Exhausted of reason

let pp_reason ppf = function
  | Deadline ms -> Fmt.pf ppf "deadline of %gms exceeded" ms
  | Cancelled -> Fmt.string ppf "cancelled"
  | Fuel knob -> Fmt.pf ppf "%s budget exhausted" knob

let reason_to_string r = Fmt.str "%a" pp_reason r

type t = {
  deadline : float option;  (** absolute [Unix.gettimeofday] seconds *)
  limit_ms : float;  (** the configured duration, for messages *)
  cancelled : bool Atomic.t;  (** atomic: any domain may cancel *)
  parent : t option;
  mutable polls : int;  (** cheap-poll counter, clock read at [mask] *)
}

(** Clock reads happen once per [mask] {!check} calls. A power of two
    so the test compiles to a mask. *)
let mask = 255

let create ?parent ?timeout_ms () =
  {
    deadline =
      Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0)) timeout_ms;
    limit_ms = Option.value ~default:infinity timeout_ms;
    cancelled = Atomic.make false;
    parent;
    polls = 0;
  }

let cancel b = Atomic.set b.cancelled true

(** The exhausted ancestor closest to [b], if any. One clock read
    covers the whole chain. *)
let exhausted b =
  let now = lazy (Unix.gettimeofday ()) in
  let rec go b =
    if Atomic.get b.cancelled then Some Cancelled
    else
      match b.deadline with
      | Some d when Lazy.force now > d -> Some (Deadline b.limit_ms)
      | _ -> Option.bind b.parent go
  in
  go b

(** Forced check: reads the clock unconditionally. *)
let check_now b =
  match exhausted b with Some r -> raise (Exhausted r) | None -> ()

(** Cheap check: cancellation every call, the clock every [mask]+1
    calls. *)
let check b =
  if Atomic.get b.cancelled then raise (Exhausted Cancelled)
  else begin
    b.polls <- b.polls + 1;
    if b.polls land mask = 0 then check_now b
  end

(* --------------------------------------------------------------- *)
(* The ambient (domain-local) budget *)

let key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () : t option = !(Domain.DLS.get key)

(** Install [b] as the calling domain's ambient budget for the
    duration of [f]. Nests: the previous ambient budget is restored on
    exit, and callers wanting composition chain via [?parent]. *)
let with_budget b f =
  let cell = Domain.DLS.get key in
  let saved = !cell in
  cell := Some b;
  Fun.protect ~finally:(fun () -> cell := saved) f

(** The hot-loop poll: check the ambient budget, if any. *)
let poll () = match current () with Some b -> check b | None -> ()

(** Forced ambient poll, for coarse-grained points (one per proof
    obligation, say) where a guaranteed clock read is worth 20ns. *)
let poll_now () = match current () with Some b -> check_now b | None -> ()

(* --------------------------------------------------------------- *)
(* Fuel: named step-count budgets *)

module Fuel = struct
  type nonrec t = { knob : string; mutable remaining : int }

  let create ~knob n = { knob; remaining = n }

  (** Spend one unit; [false] once the knob is dry (the caller exits
      with a structured [Resource_out], counting the exhaustion). *)
  let spend f =
    if f.remaining <= 0 then false
    else begin
      f.remaining <- f.remaining - 1;
      true
    end

  let exhausted f = f.remaining <= 0
  let reason f = Fuel f.knob
end
