(** Fresh-name generation.

    Each [t] is an independent counter; verifiers create one per run so
    symbolic-value names are deterministic and tests are reproducible.

    {b Thread safety.} The counter is atomic: concurrent [fresh] calls
    on a shared [t] from several domains never return the same name.
    Determinism, however, is only guaranteed when a [t] is used from a
    single domain — the parallel engine therefore creates one gensym
    per verification job (see [Verifier.State.create]) and never shares
    one across jobs. [reset] is not linearizable with respect to
    concurrent [fresh] calls and must only be used when no other domain
    holds the counter. *)

type t

val create : ?prefix:string -> unit -> t
(** [create ~prefix ()] is a fresh counter starting at 0. The default
    prefix is ["$"]. *)

val fresh : ?hint:string -> t -> string
(** [fresh ~hint t] is ["<prefix><hint><n>"] for the next [n]. *)

val fresh_int : t -> int
(** The next raw counter value. *)

val reset : t -> unit
(** Reset the counter to 0. Single-domain use only; see the note on
    thread safety above. *)
