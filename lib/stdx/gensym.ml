(** Fresh-name generation.

    Each [t] is an independent counter; verifiers create one per run so
    symbolic-value names are deterministic and tests are reproducible. *)

type t = { next : int Atomic.t; prefix : string }

let create ?(prefix = "$") () = { next = Atomic.make 0; prefix }

let fresh ?hint t =
  let n = Atomic.fetch_and_add t.next 1 in
  match hint with
  | None -> Printf.sprintf "%s%d" t.prefix n
  | Some h -> Printf.sprintf "%s%s%d" t.prefix h n

let fresh_int t = Atomic.fetch_and_add t.next 1

let reset t = Atomic.set t.next 0
