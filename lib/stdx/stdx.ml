(** Entry point for the utility substrate. *)

module Budget = Budget
module Fault = Fault
module Watchdog = Watchdog
module Iox = Iox
module Loc = Loc
module Q = Q
module Union_find = Union_find
module Gensym = Gensym
module Listx = Listx
module Smap = Smap
