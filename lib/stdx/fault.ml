(** Seeded fault injection for chaos testing.

    The verification engine claims a soundness property under faults:
    an injected failure may degrade a verdict to [Timeout]/[Crashed],
    but it must never flip [Verified] into [Failed] or vice versa.
    This module provides the injection points that property is tested
    against: named {e sites} in the solver, the incremental session
    layer, the VC cache, the pool workers, the daemon's socket layer,
    and the supervision layer (worker crashes, non-polling stalls,
    torn disk-cache publications), each firing with a configured
    probability drawn from a seeded deterministic stream.

    Activation: the [DAENERYS_FAULTS] environment variable, or
    {!configure} / {!configure_from_string} from the CLI and tests.
    The spec grammar is [site=prob] pairs plus an optional seed,
    comma-separated:

    {v DAENERYS_FAULTS="session=0.3,cache=0.1,seed=42" v}

    Draws are deterministic: the k-th draw at a site hashes
    [(seed, site, k)], with k from a per-site atomic counter — a fixed
    seed replays the same fault schedule on a sequential run, and on a
    parallel run the schedule depends only on the interleaving (the
    soundness property quantifies over {e all} schedules, so that is
    exactly what the chaos tests want to vary). *)

type site =
  | Solver
  | Session
  | Cache
  | Pool
  | Socket
  | Worker  (** supervisor-guarded request body raises (worker crash) *)
  | Stall  (** worker wedges in a non-polling loop until abandoned *)
  | Disk  (** disk-cache publication crashes between write and rename *)

let site_name = function
  | Solver -> "solver"
  | Session -> "session"
  | Cache -> "cache"
  | Pool -> "pool"
  | Socket -> "socket"
  | Worker -> "worker"
  | Stall -> "stall"
  | Disk -> "disk"

let all_sites = [ Solver; Session; Cache; Pool; Socket; Worker; Stall; Disk ]

exception Injected of string  (** the site that fired *)

type config = {
  seed : int;
  probs : (site * float) list;  (** absent sites never fire *)
  counters : (site * int Atomic.t) list;  (** draw streams, per site *)
  fired : (site * int Atomic.t) list;  (** injections that actually hit *)
}

let make_config ~seed probs =
  {
    seed;
    probs;
    counters = List.map (fun s -> (s, Atomic.make 0)) all_sites;
    fired = List.map (fun s -> (s, Atomic.make 0)) all_sites;
  }

(* The active configuration. [None] = faults off (the common case:
   one atomic read per injection point). *)
let state : config option Atomic.t = Atomic.make None

let parse spec : (config, string) result =
  let fields =
    String.split_on_char ',' spec
    |> List.concat_map (String.split_on_char ';')
    |> List.filter (fun s -> String.trim s <> "")
  in
  let rec go seed probs = function
    | [] -> Ok (make_config ~seed probs)
    | f :: rest -> (
        match String.index_opt f '=' with
        | None -> Error (Printf.sprintf "fault spec: expected key=value in %S" f)
        | Some i -> (
            let k = String.trim (String.sub f 0 i) in
            let v = String.trim (String.sub f (i + 1) (String.length f - i - 1)) in
            match k with
            | "seed" -> (
                match int_of_string_opt v with
                | Some s -> go s probs rest
                | None -> Error (Printf.sprintf "fault spec: bad seed %S" v))
            | "solver" | "session" | "cache" | "pool" | "socket" | "worker"
            | "stall" | "disk" -> (
                match float_of_string_opt v with
                | Some p when p >= 0.0 && p <= 1.0 ->
                    let site =
                      List.find (fun s -> String.equal (site_name s) k) all_sites
                    in
                    go seed ((site, p) :: probs) rest
                | _ ->
                    Error
                      (Printf.sprintf
                         "fault spec: probability for %s must be in [0;1], got %S"
                         k v))
            | _ -> Error (Printf.sprintf "fault spec: unknown site %S" k)))
  in
  go 0 [] fields

let configure_from_string spec : (unit, string) result =
  match parse spec with
  | Ok c ->
      Atomic.set state (Some c);
      Ok ()
  | Error _ as e -> e

let configure ?(seed = 0) probs =
  Atomic.set state (Some (make_config ~seed probs))

let clear () = Atomic.set state None

(* Environment activation happens once, at first injection-point hit
   (so library users pay nothing before then). [configure]/[clear]
   override it afterwards. *)
let env = lazy (
  match Sys.getenv_opt "DAENERYS_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
      match configure_from_string spec with
      | Ok () -> ()
      | Error m -> Fmt.epr "warning: ignoring DAENERYS_FAULTS: %s@." m))

let active () =
  Lazy.force env;
  Atomic.get state <> None

(** Deterministic Bernoulli draw for [site]: true iff this draw fires. *)
let draw (c : config) site =
  match List.assoc_opt site c.probs with
  | None -> false
  | Some p when p <= 0.0 -> false
  | Some p ->
      let k = Atomic.fetch_and_add (List.assoc site c.counters) 1 in
      let h = Hashtbl.hash (c.seed, site_name site, k) land 0xFFFF in
      let hit = float_of_int h /. 65536.0 < p in
      if hit then Atomic.incr (List.assoc site c.fired);
      hit

(** Non-raising draw; used where the fault is a silent corruption (the
    cache flips stored bytes) rather than an exception. *)
let fires site =
  Lazy.force env;
  match Atomic.get state with None -> false | Some c -> draw c site

(** Raise {!Injected} if this draw fires — the exception-shaped sites
    (solver, session, pool). *)
let inject site = if fires site then raise (Injected (site_name site))

(** How many injections actually fired at [site] since {!configure}. *)
let fired site =
  match Atomic.get state with
  | None -> 0
  | Some c -> Atomic.get (List.assoc site c.fired)

let seed () =
  match Atomic.get state with None -> None | Some c -> Some c.seed
