(** Source locations: file / line / column spans.

    The whole front-end speaks this type — the lexer stamps every token
    with a span, the parser unions them into node spans, elaboration
    indexes specification clauses by span, and diagnostics render them
    as [file:line:col] (with a caret snippet when the source text is at
    hand). Lines and columns are 1-based, as editors count; [byte_start]
    / [byte_stop] keep the raw offsets so snippets can be cut without
    re-scanning. *)

type t = {
  file : string;  (** "" for anonymous buffers (inline strings) *)
  line : int;  (** 1-based start line *)
  col : int;  (** 1-based start column *)
  end_line : int;
  end_col : int;  (** column just past the last character *)
  byte_start : int;
  byte_stop : int;  (** offset just past the last character *)
}

let dummy =
  {
    file = "";
    line = 0;
    col = 0;
    end_line = 0;
    end_col = 0;
    byte_start = 0;
    byte_stop = 0;
  }

let is_dummy l = l.line = 0

(* ------------------------------------------------------------------ *)
(* Building spans from byte offsets *)

(** An index of line-start offsets for one source buffer, so that
    offset → line/col queries are a binary search instead of a scan. *)
type index = { src : string; starts : int array (* starts.(i) = offset of line i+1 *) }

let index (src : string) : index =
  let starts = ref [ 0 ] in
  String.iteri (fun i c -> if c = '\n' then starts := (i + 1) :: !starts) src;
  { src; starts = Array.of_list (List.rev !starts) }

(** Line number (1-based) of [off] in the indexed source. *)
let line_of (ix : index) (off : int) : int =
  let lo = ref 0 and hi = ref (Array.length ix.starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if ix.starts.(mid) <= off then lo := mid else hi := mid - 1
  done;
  !lo + 1

let pos_of (ix : index) (off : int) : int * int =
  let line = line_of ix off in
  (line, off - ix.starts.(line - 1) + 1)

(** [span ix ~file start stop] — the span covering bytes
    [start..stop-1] (as the lexer and parser count). *)
let span (ix : index) ~file (byte_start : int) (byte_stop : int) : t =
  let line, col = pos_of ix byte_start in
  let end_line, end_col = pos_of ix (max byte_start byte_stop) in
  { file; line; col; end_line; end_col; byte_start; byte_stop }

(** The smallest span covering both arguments (dummy is an identity). *)
let union (a : t) (b : t) : t =
  if is_dummy a then b
  else if is_dummy b then a
  else
    let left = if a.byte_start <= b.byte_start then a else b in
    let right = if a.byte_stop >= b.byte_stop then a else b in
    {
      file = a.file;
      line = left.line;
      col = left.col;
      end_line = right.end_line;
      end_col = right.end_col;
      byte_start = left.byte_start;
      byte_stop = right.byte_stop;
    }

(* ------------------------------------------------------------------ *)
(* Rendering *)

(** [file:line:col] — the editor-clickable form. Omits the file part
    when anonymous; never prints the end position (diagnostic text
    stays one line; the snippet shows the extent). *)
let pp ppf (l : t) =
  if l.file <> "" then Fmt.pf ppf "%s:" l.file;
  Fmt.pf ppf "%d:%d" l.line l.col

let to_string l = Fmt.str "%a" pp l

(** The caret snippet for [l] against its source text:
    {v
      3 |   requires mystery(l)
        |            ^^^^^^^^^^
    v}
    Multi-line spans underline to the end of the first line. *)
let pp_snippet ppf ((src : string), (l : t)) =
  if not (is_dummy l) then begin
    let ix = index src in
    let lstart = ix.starts.(min (l.line - 1) (Array.length ix.starts - 1)) in
    let lstop =
      match String.index_from_opt src lstart '\n' with
      | Some i -> i
      | None -> String.length src
    in
    let text = String.sub src lstart (lstop - lstart) in
    let width =
      if l.end_line = l.line then max 1 (l.end_col - l.col)
      else max 1 (lstop - lstart - l.col + 1)
    in
    Fmt.pf ppf "@[<v>%4d | %s@,     | %s%s@]" l.line text
      (String.make (l.col - 1) ' ')
      (String.make width '^')
  end

let snippet ~src l = Fmt.str "%a" pp_snippet (src, l)
