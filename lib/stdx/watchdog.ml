(** Hard preemption for budgets that stopped being cooperative.

    {!Budget} is a contract: long-running loops poll, and a poll raises
    once the deadline passes. A loop that stops polling (a solver bug,
    a pathological VC in un-instrumented code) defeats the contract —
    the deadline fires but nobody reads it, and the worker domain is
    wedged. The watchdog is the layer above the contract: a monitor
    that watches every in-flight activity's deadline from the outside
    and escalates in two stages when one blows through it.

    - {b soft} — at [deadline × grace] the watch's [cancel] callback
      fires (typically {!Budget.cancel} on the activity's ambient
      budget, which any domain may call). A loop that still polls,
      however rarely, dies at its next poll point.
    - {b hard} — at [deadline × grace × 2] the [abandon] callback
      fires: the activity is declared lost, and the owner is expected
      to answer on its behalf and replace the worker. An OCaml domain
      cannot be killed from outside, so "hard preemption" means the
      stuck domain is written off — it costs one worker, not the
      process.

    Both callbacks fire at most once per watch, from the monitor
    domain; they must be quick and must not raise (escapes are
    swallowed and counted). Completing activities call {!unwatch},
    which wins any race with the monitor by taking the same lock. *)

type state = Armed | Soft_fired | Hard_fired | Done

type watch = {
  id : int;
  soft_at : float;  (** absolute seconds: fire [cancel] *)
  hard_at : float;  (** absolute seconds: fire [abandon] *)
  cancel : unit -> unit;
  abandon : unit -> unit;
  mutable state : state;
}

type t = {
  lock : Mutex.t;
  watches : (int, watch) Hashtbl.t;
  mutable next_id : int;
  mutable stopping : bool;
  mutable monitor : unit Domain.t option;
  interval_s : float;
  (* Counters survive their watches; the daemon's [stats] op reports
     them. *)
  watched : int Atomic.t;
  soft_cancels : int Atomic.t;
  hard_abandons : int Atomic.t;
  callback_errors : int Atomic.t;
}

(** How far past the deadline an activity may run before the soft
    stage fires. 1.0 would preempt legitimate work racing its own
    final poll; the default leaves generous room. *)
let default_grace = 4.0

let swallow t f = try f () with _ -> Atomic.incr t.callback_errors

(** One monitor pass: fire every due stage. Callbacks run outside the
    lock — they may call back into {!unwatch}. Public so tests can
    drive the clock deterministically without the monitor domain. *)
let scan ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  let due =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold
          (fun _ w acc ->
            match w.state with
            | Armed when now >= w.hard_at ->
                w.state <- Hard_fired;
                `Both w :: acc
            | Armed when now >= w.soft_at ->
                w.state <- Soft_fired;
                `Soft w :: acc
            | Soft_fired when now >= w.hard_at ->
                w.state <- Hard_fired;
                `Hard w :: acc
            | _ -> acc)
          t.watches [])
  in
  List.iter
    (function
      | `Soft w ->
          Atomic.incr t.soft_cancels;
          swallow t w.cancel
      | `Hard w ->
          Atomic.incr t.hard_abandons;
          swallow t w.abandon
      | `Both w ->
          (* First scan after a long stall: both stages are overdue.
             Fire them in order — cancel first so a loop that resumed
             polling can still die cooperatively before the owner
             writes it off. *)
          Atomic.incr t.soft_cancels;
          swallow t w.cancel;
          Atomic.incr t.hard_abandons;
          swallow t w.abandon)
    due

let rec monitor_loop t () =
  let stop = Mutex.protect t.lock (fun () -> t.stopping) in
  if not stop then begin
    scan t;
    Unix.sleepf t.interval_s;
    monitor_loop t ()
  end

(** [monitor:false] builds a passive watchdog for deterministic tests:
    no domain is spawned and the caller drives {!scan} by hand. *)
let create ?(interval_s = 0.05) ?(monitor = true) () =
  let t =
    {
      lock = Mutex.create ();
      watches = Hashtbl.create 16;
      next_id = 0;
      stopping = false;
      monitor = None;
      interval_s;
      watched = Atomic.make 0;
      soft_cancels = Atomic.make 0;
      hard_abandons = Atomic.make 0;
      callback_errors = Atomic.make 0;
    }
  in
  if monitor then t.monitor <- Some (Domain.spawn (monitor_loop t));
  t

(** Arm a watch for an activity whose cooperative deadline is
    [deadline_ms]. [cancel] fires at [deadline_ms × grace], [abandon]
    at twice that. *)
let watch t ?(grace = default_grace) ~deadline_ms ~cancel ~abandon () =
  let now = Unix.gettimeofday () in
  let soft = deadline_ms *. grace /. 1000.0 in
  Mutex.protect t.lock (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let w =
        {
          id;
          soft_at = now +. soft;
          hard_at = now +. (2.0 *. soft);
          cancel;
          abandon;
          state = Armed;
        }
      in
      Hashtbl.replace t.watches id w;
      Atomic.incr t.watched;
      w)

(** Disarm [w] (the activity completed). Returns the furthest stage
    that fired while it was armed, so the owner can tell a clean
    completion from one that raced the monitor. *)
let unwatch t (w : watch) =
  Mutex.protect t.lock (fun () ->
      let final = w.state in
      w.state <- Done;
      Hashtbl.remove t.watches w.id;
      match final with
      | Armed | Done -> `Clean
      | Soft_fired -> `Was_cancelled
      | Hard_fired -> `Was_abandoned)

let stop t =
  Mutex.protect t.lock (fun () -> t.stopping <- true);
  Option.iter Domain.join t.monitor;
  t.monitor <- None

type stats = {
  active : int;
  watched_total : int;
  cancels : int;
  abandons : int;
  errors : int;
}

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        active = Hashtbl.length t.watches;
        watched_total = Atomic.get t.watched;
        cancels = Atomic.get t.soft_cancels;
        abandons = Atomic.get t.hard_abandons;
        errors = Atomic.get t.callback_errors;
      })
