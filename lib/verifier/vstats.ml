(** Verifier-side statistics, feeding tables T1 and T3.

    Instance-passed, not global: every symbolic-execution state carries
    the instance it accumulates into ([State.create ?stats]), so
    concurrent verification jobs in [lib/engine] each own a private
    instance and the engine merges them with {!sum} into one report.
    Sequential drivers pass one shared instance across procedures. *)

type t = {
  mutable obligations : int;  (** proof obligations discharged *)
  mutable chunk_matches : int;  (** spatial chunks consumed *)
  mutable resolutions : int;  (** heap reads resolved (destabilized) *)
  mutable stab_checks : int;  (** stability checks performed *)
  mutable unstable_facts : int;  (** facts dropped at mutation points *)
  mutable branches : int;  (** path splits *)
  mutable loops : int;
  mutable calls : int;
  mutable absint_discharged : int;
      (** obligations the abstract-interpretation pre-discharge proved
          [Valid] without consulting the solver (and infeasible branches
          it pruned) *)
  mutable absint_abstained : int;
      (** obligations the pre-discharge saw but could not decide,
          falling through to the solver *)
  mutable par_branches : int;  (** par branches symbolically executed *)
  mutable inv_opens : int;
      (** named-invariant openings at atomic sections *)
  mutable interference_havocs : int;
      (** interference points where the footprint was havocked
          (par forks/joins) *)
}

let create () =
  {
    obligations = 0;
    chunk_matches = 0;
    resolutions = 0;
    stab_checks = 0;
    unstable_facts = 0;
    branches = 0;
    loops = 0;
    calls = 0;
    absint_discharged = 0;
    absint_abstained = 0;
    par_branches = 0;
    inv_opens = 0;
    interference_havocs = 0;
  }

let reset s =
  s.obligations <- 0;
  s.chunk_matches <- 0;
  s.resolutions <- 0;
  s.stab_checks <- 0;
  s.unstable_facts <- 0;
  s.branches <- 0;
  s.loops <- 0;
  s.calls <- 0;
  s.absint_discharged <- 0;
  s.absint_abstained <- 0;
  s.par_branches <- 0;
  s.inv_opens <- 0;
  s.interference_havocs <- 0

let copy s = { s with obligations = s.obligations }

(** Pointwise sum; used by the engine to merge per-job instances. *)
let sum a b =
  {
    obligations = a.obligations + b.obligations;
    chunk_matches = a.chunk_matches + b.chunk_matches;
    resolutions = a.resolutions + b.resolutions;
    stab_checks = a.stab_checks + b.stab_checks;
    unstable_facts = a.unstable_facts + b.unstable_facts;
    branches = a.branches + b.branches;
    loops = a.loops + b.loops;
    calls = a.calls + b.calls;
    absint_discharged = a.absint_discharged + b.absint_discharged;
    absint_abstained = a.absint_abstained + b.absint_abstained;
    par_branches = a.par_branches + b.par_branches;
    inv_opens = a.inv_opens + b.inv_opens;
    interference_havocs = a.interference_havocs + b.interference_havocs;
  }

let pp ppf s =
  Fmt.pf ppf
    "obligations=%d chunks=%d resolutions=%d stab=%d unstable-dropped=%d \
     branches=%d loops=%d calls=%d absint=%d/%d par=%d inv-opens=%d \
     havocs=%d"
    s.obligations s.chunk_matches s.resolutions s.stab_checks
    s.unstable_facts s.branches s.loops s.calls s.absint_discharged
    s.absint_abstained s.par_branches s.inv_opens s.interference_havocs
