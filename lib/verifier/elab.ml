(** Elaboration of whole annotated surface programs onto the verifier.

    {!Heaplang.Parser.parse_program} produces a located
    {!Heaplang.Surface.program}; this module lowers it to an
    {!Exec.program} plus a {!Diag.srcmap} — the clause-granularity
    record of where each specification came from, so that every
    diagnostic raised against the elaborated (span-free) program can be
    re-anchored at [file:line:col] in the original source.

    Two conventions of the hand-built suite are reproduced here:

    - procedure parameters appear as [Sym] values in bodies and as term
      variables in specifications, with the same name. Surface bodies
      write parameters as plain identifiers; [close] substitutes
      [Var x ↦ Val (Sym x)] for every parameter not shadowed by a
      binder (let / fun / rec / match arms);
    - loop invariants are keyed by the *physical identity* of their
      [While] node and ghost blocks by their [GhostMark] key. [close]
      rebuilds the body, so it also returns the old→new [While] node
      correspondence, and the invariant table is re-keyed across it. *)

module S = Heaplang.Surface
module HL = Heaplang.Ast
module A = Baselogic.Assertion
module E = Baselogic.Elab
module SS = Set.Make (String)

let ghost_cmd : S.ghost_cmd -> Exec.ghost_cmd = function
  | S.GFold (p, args) -> Exec.Fold (p, List.map E.term args)
  | S.GUnfold (p, args) -> Exec.Unfold (p, List.map E.term args)
  | S.GAssert a -> Exec.AssertA (E.assertion a)

(** Close a procedure body over its parameters: substitute
    [Var x ↦ Val (Sym x)] for unshadowed parameters. Returns the
    rebuilt body and the association of original [While] nodes to
    their rebuilt twins (physical identity on both sides). *)
let close (params : string list) (body : HL.expr) :
    HL.expr * (HL.expr * HL.expr) list =
  let params = SS.of_list params in
  let remap = ref [] in
  let rec go bound e =
    match e with
    | HL.Var x when SS.mem x params && not (SS.mem x bound) ->
        HL.Val (HL.Sym x)
    | HL.Var _ | HL.Val _ | HL.GhostMark _ -> e
    | HL.Rec (f, x, b) ->
        let bound =
          match f with Some f -> SS.add f bound | None -> bound
        in
        HL.Rec (f, x, go (SS.add x bound) b)
    | HL.App (f, a) -> HL.App (go bound f, go bound a)
    | HL.UnOp (op, a) -> HL.UnOp (op, go bound a)
    | HL.BinOp (op, a, b) -> HL.BinOp (op, go bound a, go bound b)
    | HL.If (c, a, b) -> HL.If (go bound c, go bound a, go bound b)
    | HL.Let (x, e1, e2) -> HL.Let (x, go bound e1, go (SS.add x bound) e2)
    | HL.Seq (a, b) -> HL.Seq (go bound a, go bound b)
    | HL.While (c, b) ->
        let node = HL.While (go bound c, go bound b) in
        remap := (e, node) :: !remap;
        node
    | HL.PairE (a, b) -> HL.PairE (go bound a, go bound b)
    | HL.Fst a -> HL.Fst (go bound a)
    | HL.Snd a -> HL.Snd (go bound a)
    | HL.InjLE a -> HL.InjLE (go bound a)
    | HL.InjRE a -> HL.InjRE (go bound a)
    | HL.Case (s, (x, e1), (y, e2)) ->
        HL.Case (go bound s, (x, go (SS.add x bound) e1),
                 (y, go (SS.add y bound) e2))
    | HL.Alloc a -> HL.Alloc (go bound a)
    | HL.Load a -> HL.Load (go bound a)
    | HL.Store (l, a) -> HL.Store (go bound l, go bound a)
    | HL.Free a -> HL.Free (go bound a)
    | HL.Cas (l, a, b) -> HL.Cas (go bound l, go bound a, go bound b)
    | HL.Faa (l, d) -> HL.Faa (go bound l, go bound d)
    | HL.Assert a -> HL.Assert (go bound a)
    | HL.Par (a, b) -> HL.Par (go bound a, go bound b)
    | HL.Atomic a -> HL.Atomic (go bound a)
  in
  let body' = go SS.empty body in
  (body', !remap)

let proc (p : S.proc) : Exec.proc * Diag.srcmap =
  let body, while_map = close p.S.p_params p.S.p_body in
  let invariants =
    List.map
      (fun (node, a) ->
        let node' =
          match List.assq_opt node while_map with
          | Some n -> n
          | None -> node
        in
        (node', E.assertion a))
      p.S.p_invariants
  in
  let ghost =
    List.map (fun (k, cmds, _) -> (k, List.map ghost_cmd cmds)) p.S.p_ghost
  in
  let opt = function None -> A.Emp | Some a -> E.assertion a in
  let ctx = Diag.Proc p.S.p_name in
  let srcmap =
    List.concat
      [
        (match p.S.p_requires with
        | Some a -> [ ((ctx, Diag.Requires), a.S.aspan) ]
        | None -> []);
        (match p.S.p_ensures with
        | Some a -> [ ((ctx, Diag.Ensures), a.S.aspan) ]
        | None -> []);
        List.mapi
          (fun i (_, (a : S.assertion)) ->
            ((ctx, Diag.Invariant i), a.S.aspan))
          p.S.p_invariants;
        List.map
          (fun (k, _, span) -> ((ctx, Diag.Ghost_block k), span))
          p.S.p_ghost;
        [ ((ctx, Diag.Body), p.S.p_body_span) ];
      ]
  in
  ( {
      Exec.pname = p.S.p_name;
      params = p.S.p_params;
      requires = opt p.S.p_requires;
      ensures = opt p.S.p_ensures;
      body;
      invariants;
      ghost;
    },
    srcmap )

(** Lower a surface program. The returned source map covers every
    specification clause of every procedure and predicate. *)
let program (sp : S.program) : Exec.program * Diag.srcmap =
  let preds =
    Stdx.Smap.of_list
      (List.map
         (fun (pr : S.pred) -> (pr.S.pr_name, E.pred pr))
         sp.S.prog_preds)
  in
  let pred_map =
    List.map
      (fun (pr : S.pred) ->
        ((Diag.Pred pr.S.pr_name, Diag.Pred_body), pr.S.pr_body.S.aspan))
      sp.S.prog_preds
  in
  let invs =
    List.map
      (fun (iv : S.inv) -> (iv.S.i_name, E.assertion iv.S.i_body))
      sp.S.prog_invs
  in
  let inv_map =
    List.map
      (fun (iv : S.inv) ->
        ((Diag.Inv iv.S.i_name, Diag.Inv_body), iv.S.i_body.S.aspan))
      sp.S.prog_invs
  in
  let procs, maps = List.split (List.map proc sp.S.prog_procs) in
  ({ Exec.procs; preds; invs }, pred_map @ inv_map @ List.concat maps)

(** Parse and elaborate in one step. Raises {!Heaplang.Parser.Parse_error},
    {!Heaplang.Lexer.Lex_error}, or {!Baselogic.Elab.Elab_error}. *)
let program_of_string ?file src : Exec.program * Diag.srcmap =
  program (Heaplang.Parser.parse_program ?file src)
