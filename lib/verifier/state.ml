(** Symbolic verification state: a pure path condition plus a symbolic
    heap of chunks, with the inhale/consume operations of a
    Viper-style verifier — except that pure assertions may read the
    heap ([!l] terms), which is the destabilized logic's contribution:
    reads are resolved against owned chunks at inhale/consume time and
    the resulting facts are stable, so nothing needs re-threading at
    mutation points. *)

open Stdx
module A = Baselogic.Assertion
module GV = Baselogic.Ghost_val
module T = Smt.Term

exception Verification_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Verification_error s)) fmt

type t = {
  penv : A.pred_env;
  gensym : Gensym.t;
  heap_dep : bool;  (** heap-dependent assertions enabled (A1 toggle) *)
  absint : bool;  (** abstract pre-discharge enabled ([--no-absint]) *)
  stats : Vstats.t;  (** instance this run accumulates into *)
  session : Smt.Session.t;
      (** the procedure's incremental solver session, shared (mutably)
          by every branch state forked from this one — see {!entails} *)
  invs : (string * A.t) list;
      (** named-invariant registry: shared-state assertions opened (and
          re-established) at every [atomic] section *)
  opened : string list;
      (** names of the invariants currently open in this state — the
          mask; non-empty exactly inside an atomic section, and a
          second open while non-empty is the DA026 reentrancy error *)
  sched : Heaplang.Step.Sched.t option;
      (** interleaving scheduler ([--seed]): permutes the order in
          which [par] branches are explored. Verdicts are
          schedule-independent by construction (every branch is
          verified regardless of order), which the seed makes
          checkable rather than aspirational; [None] is the
          deterministic left-first default *)
  pures : T.t list;  (** path condition; always heap-read-free *)
  absenv : Absdom.t;
      (** interval×parity abstraction of [pures], maintained
          incrementally by {!add_pure}; {!entails} asks it before the
          solver and short-circuits only [Yes] ("every concretization
          satisfies the goal" — the only-Valid discipline) *)
  chunks : A.t list;  (** Points_to / Ghost / Pred *)
}

let create ?(heap_dep = true) ?(absint = true) ?(penv = Smap.empty)
    ?(invs = []) ?(seed = 0) ?session ?stats () =
  (* Declaration-time stability: [A.stable]'s [Pred _ -> true] case is
     sound only if every predicate body in scope is itself stable — a
     chunk stands for its body under interference. Enforced here (and
     reported pre-verification as DA012 by the static analyzer). *)
  Smap.iter
    (fun _ (def : A.pred_def) ->
      if not (A.stable def.A.body) then
        Diag.spec_error ~code:"DA012"
          ~loc:(Diag.loc (Diag.Pred def.A.pname) Diag.Pred_body)
          "predicate %s is unstable at declaration: a heap read escapes \
           its body's footprint"
          def.A.pname)
    penv;
  (* Same discipline for named invariants (DA028): an invariant chunk
     stands for its body *between* atomic sections, under arbitrary
     interference from other threads — an unstable body would be
     meaningless the moment the section closes. *)
  List.iter
    (fun (n, body) ->
      if not (A.stable body) then
        Diag.spec_error ~code:"DA028"
          ~loc:(Diag.loc (Diag.Inv n) Diag.Inv_body)
          "invariant %s is unstable at declaration: a heap read escapes \
           its body's footprint"
          n)
    invs;
  let stats = match stats with Some s -> s | None -> Vstats.create () in
  let session =
    match session with Some s -> s | None -> Smt.Session.create ()
  in
  {
    penv;
    gensym = Gensym.create ~prefix:"v" ();
    heap_dep;
    absint;
    stats;
    session;
    invs;
    opened = [];
    sched =
      (if seed = 0 then None
       else Some (Heaplang.Step.Sched.create ~seed));
    pures = [];
    absenv = Absdom.top;
    chunks = [];
  }

let fresh ?hint st = Gensym.fresh ?hint st.gensym

let add_pure st phi =
  {
    st with
    pures = phi :: st.pures;
    absenv = (if st.absint then Absdom.assume phi st.absenv else st.absenv);
  }
let add_chunk st c = { st with chunks = c :: st.chunks }

(* Re-point the procedure's session at this branch's path condition.
   Branch states are functional copies sharing one mutable session;
   [Session.sync] pops/pushes only the delta against the previously
   synced branch, and since [pures] grows by prepending onto shared
   sublists, sibling branches pay only for their differing suffix. *)
let sync_session st = Smt.Session.sync st.session (List.rev st.pures)

let entails st phi =
  st.stats.Vstats.obligations <- st.stats.Vstats.obligations + 1;
  (* One guaranteed deadline check per proof obligation: even a VC
     whose solver work happens entirely inside fast paths cannot
     overshoot its budget by more than one obligation. *)
  Budget.poll_now ();
  T.equal phi T.tru
  || List.exists (T.equal phi) st.pures
  || (match T.view phi with T.Eq (a, b) -> T.equal a b | _ -> false)
  || (st.absint
     && Absdom.holds st.absenv phi = Absdom.Yes
     && begin
          st.stats.Vstats.absint_discharged <-
            st.stats.Vstats.absint_discharged + 1;
          true
        end)
  || begin
       if st.absint then
         st.stats.Vstats.absint_abstained <-
           st.stats.Vstats.absint_abstained + 1;
       sync_session st;
       match Smt.Session.check_goal st.session phi with
       | Smt.Solver.Valid -> true
       | Smt.Solver.Invalid _ | Smt.Solver.Undecided -> false
       | Smt.Solver.Gave_up r -> raise (Budget.Exhausted r)
     end

(** Is the current path feasible? Used to prune dead branches: the path
    condition is infeasible exactly when the live context entails
    [False]. *)
let feasible st =
  Budget.poll_now ();
  if st.absint && Absdom.is_bot st.absenv then begin
    (* The abstraction proved the path condition unsatisfiable — the
       branch is dead without asking the solver. *)
    st.stats.Vstats.absint_discharged <-
      st.stats.Vstats.absint_discharged + 1;
    false
  end
  else begin
  sync_session st;
  match Smt.Session.check_goal st.session T.fls with
  | Smt.Solver.Valid -> false
  | Smt.Solver.Invalid _ | Smt.Solver.Undecided -> true
  | Smt.Solver.Gave_up (Budget.Fuel _) ->
      (* Fuel-starved feasibility: treating the path as live is the
         sound direction (it only means more work), same as Undecided. *)
      true
  | Smt.Solver.Gave_up ((Budget.Deadline _ | Budget.Cancelled) as r) ->
      raise (Budget.Exhausted r)
  end

(* ------------------------------------------------------------------ *)
(* Heap reads *)

(** Find the chunk covering location [l] (any positive fraction). *)
let find_points_to st (l : T.t) =
  List.find_map
    (function
      | A.Points_to { loc; frac; value } ->
          if T.equal l loc || entails st (T.eq l loc) then
            Some (loc, frac, value)
          else None
      | _ -> None)
    st.chunks

(** Resolve every heap read in [phi] against the owned chunks. This is
    the verifier's use of the destabilized logic: a read obligates a
    positive fraction at the read location. *)
let resolve st (phi : T.t) : T.t =
  if not (Baselogic.Hterm.heap_dependent phi) then phi
  else if not st.heap_dep then
    fail "heap-dependent assertion %a with heap_dep disabled" T.pp phi
  else begin
    st.stats.Vstats.stab_checks <- st.stats.Vstats.stab_checks + 1;
    let phi' =
      Baselogic.Hterm.resolve
        (fun l ->
          match find_points_to st l with
          | Some (_, _, v) ->
              st.stats.Vstats.resolutions <-
                st.stats.Vstats.resolutions + 1;
              Some v
          | None -> None)
        phi
    in
    if Baselogic.Hterm.heap_dependent phi' then
      fail "heap read without permission in %a" T.pp phi'
    else phi'
  end

(* ------------------------------------------------------------------ *)
(* Inhale *)

(** Add an assertion to the state, opening existentials with fresh
    symbols and splitting on disjunctions (so recursive predicate
    bodies like list definitions unfold into one state per case).
    Chunks are added before pure parts are resolved, so reads in an
    assertion's pure parts can target its own chunks. *)
let inhale_cases (st : t) (a : A.t) : t list =
  let rec collect st pures a : (t * T.t list) list =
    match a with
    | A.Pure phi -> [ (st, phi :: pures) ]
    | A.Emp -> [ (st, pures) ]
    | A.Points_to _ as c -> [ (add_chunk st c, pures) ]
    | A.Ghost (_, gv) as c ->
        (* Validity comes for free on inhale. *)
        [ (add_chunk st c, GV.valid_fact gv :: pures) ]
    | A.Pred _ as c -> [ (add_chunk st c, pures) ]
    | A.Sep (p, q) | A.And (p, q) ->
        collect st pures p
        |> List.concat_map (fun (st, pures) -> collect st pures q)
    | A.Or (p, q) -> collect st pures p @ collect st pures q
    | A.Exists (x, p) ->
        let y = fresh ~hint:x st in
        collect st pures (A.subst1 x (T.var y) p)
    | A.Stabilize p | A.Later p | A.Persistently p -> collect st pures p
    | a -> fail "inhale: unsupported assertion %a" A.pp a
  in
  collect st [] a
  |> List.map (fun (st, pures) ->
         List.fold_left (fun st phi -> add_pure st (resolve st phi)) st pures)
  |> List.filter feasible

(** Non-branching inhale; fails on disjunctions. *)
let inhale (st : t) (a : A.t) : t =
  match inhale_cases st a with
  | [ st ] -> st
  | [] -> add_pure st T.fls
  | sts ->
      ignore sts;
      fail "inhale: disjunctive assertion needs inhale_cases: %a" A.pp a

let inhale_all st l = List.fold_left inhale st l

(* ------------------------------------------------------------------ *)
(* Consume *)

let take st pred =
  match Listx.find_remove pred st.chunks with
  | Some (c, rest) ->
      st.stats.Vstats.chunk_matches <- st.stats.Vstats.chunk_matches + 1;
      Some (c, { st with chunks = rest })
  | None -> None

(** Resolve the heap reads of every pure part of [a] against the
    current state — used as a pre-pass by [consume], so that an
    assertion's pure parts can read locations whose chunks the same
    assertion is about to consume. *)
let rec resolve_assertion st (a : A.t) : A.t =
  match a with
  | A.Pure phi -> A.Pure (resolve st phi)
  | A.Emp | A.Points_to _ | A.Ghost _ | A.Pred _ -> a
  | A.Sep (p, q) -> A.Sep (resolve_assertion st p, resolve_assertion st q)
  | A.And (p, q) -> A.And (resolve_assertion st p, resolve_assertion st q)
  | A.Or (p, q) -> A.Or (resolve_assertion st p, resolve_assertion st q)
  | A.Exists (x, p) -> A.Exists (x, resolve_assertion st p)
  | A.Forall (x, p) -> A.Forall (x, resolve_assertion st p)
  | A.Stabilize p -> A.Stabilize (resolve_assertion st p)
  | A.Later p -> A.Later (resolve_assertion st p)
  | A.Persistently p -> A.Persistently (resolve_assertion st p)
  | A.Wand _ | A.Upd _ | A.Wp _ -> a

(** Coalesce fractional chunks at [loc]: two chunks with provably
    equal locations also have equal values (their composition is
    valid), so they merge into one with the summed fraction. *)
let coalesce (st : t) (loc : T.t) : t =
  let same l' = T.equal loc l' || entails st (T.eq loc l') in
  let mine, others =
    List.partition
      (function A.Points_to { loc = l'; _ } -> same l' | _ -> false)
      st.chunks
  in
  match mine with
  | [] | [ _ ] -> st
  | A.Points_to first :: rest ->
      let frac, value =
        List.fold_left
          (fun (q, v) c ->
            match c with
            | A.Points_to { frac = q'; value = v'; _ } ->
                ignore v';
                (Q.add q q', v)
            | _ -> (q, v))
          (first.frac, first.value) rest
      in
      let st' = { st with chunks = A.points_to ~frac first.loc value :: others } in
      (* record the agreement facts *)
      List.fold_left
        (fun st c ->
          match c with
          | A.Points_to { value = v'; _ } -> add_pure st (T.eq value v')
          | _ -> st)
        st' rest
  | _ -> st

(** Composition-validity facts, recorded after opening the named
    invariants on top of already-owned chunks: two points-to chunks
    whose fractions sum above one cannot sit at the same location
    (fractional composition is valid), so the disequality is a fact.
    This prunes the impossible aliasing cases an open would otherwise
    introduce — e.g. a state that owns a full cell the invariant also
    governs in the current disjunct. *)
let compat_facts (st : t) : t =
  let pts =
    List.filter_map
      (function
        | A.Points_to { loc; frac; _ } -> Some (loc, frac)
        | _ -> None)
      st.chunks
  in
  let rec go st = function
    | [] -> st
    | (l1, q1) :: rest ->
        let st =
          List.fold_left
            (fun st (l2, q2) ->
              (* syntactically equal locations make the disequality
                 unsatisfiable — exactly right: such a state is
                 contradictory and gets pruned by [feasible] *)
              if Q.gt (Q.add q1 q2) Q.one then add_pure st (T.neq l1 l2)
              else st)
            st rest
        in
        go st rest
  in
  go st pts

(** Remove an assertion from the state, checking pure obligations.
    Mirrors {!Baselogic.Kernel.entail_auto} without building
    theorems. *)
let rec consume_resolved (st : t) (a : A.t) : t =
  let consume = consume_resolved in
  match a with
  | A.Emp -> st
  | A.Pure phi ->
      let phi = resolve st phi in
      if entails st phi then st
      else fail "cannot prove %a" T.pp phi
  | A.Sep (p, q) | A.And (p, q) -> consume (consume st p) q
  (* [And] with separate chunk consumption is sound only for the
     idempotent assertions we emit; specs use [Sep]. *)
  | A.Points_to { loc; frac; value } -> (
      let st = coalesce st loc in
      match
        take st (function
          | A.Points_to { loc = l'; frac = q'; _ } ->
              Q.geq q' frac
              && (T.equal loc l' || entails st (T.eq loc l'))
          | _ -> false)
      with
      | Some (A.Points_to { loc = l'; frac = q'; value = v' }, st') ->
          if not (entails st (T.eq value v')) then
            fail "points-to %a: cannot prove value %a = %a" T.pp loc T.pp
              value T.pp v';
          if Q.gt q' frac then
            add_chunk st' (A.points_to ~frac:(Q.sub q' frac) l' v')
          else st'
      | _ -> fail "no points-to chunk for %a" T.pp loc)
  | A.Ghost (g, gv) -> (
      match
        take st (function
          | A.Ghost (g', gv') ->
              String.equal g g'
              && (match GV.sub_condition ~goal:gv ~chunk:gv' with
                 | Some cond -> entails st cond
                 | None -> false)
          | _ -> false)
      with
      | Some (_, st') -> st'
      | None -> fail "no ghost chunk %s matching %a" g GV.pp gv)
  | A.Pred (p, args) -> (
      match
        take st (function
          | A.Pred (p', args') ->
              String.equal p p'
              && List.length args = List.length args'
              && List.for_all2 (fun a b -> entails st (T.eq a b)) args args'
          | _ -> false)
      with
      | Some (_, st') -> st'
      | None -> fail "no predicate chunk %s" p)
  | A.Exists (x, body) -> (
      let try_witness t =
        match consume st (A.subst1 x t body) with
        | st' -> Some st'
        | exception Verification_error _ -> None
      in
      match List.find_map try_witness (witnesses st x body) with
      | Some st' -> st'
      | None -> fail "no witness for ∃%s. %a" x A.pp body)
  | A.Or (A.Pure phi, rhs) ->
      (* Classical: if φ is not provable, prove the right side under
         ¬φ (and the converse preference when φ holds). *)
      let phi = resolve st phi in
      if entails st phi then st
      else consume (add_pure st (T.not_ phi)) rhs
  | A.Or (lhs, rhs) -> (
      match consume st lhs with
      | st' -> st'
      | exception Verification_error _ -> consume st rhs)
  | A.Stabilize p ->
      if A.stable p then consume st p
      else fail "assertion under ⌊·⌋ is not stable: %a" A.pp p
  | A.Later p | A.Persistently p -> consume st p
  | a -> fail "consume: unsupported assertion %a" A.pp a

(** Witness candidates for an existential goal, mirroring the
    kernel's inference: unify chunk-shaped conjuncts, try defining
    equations. *)
and witnesses st x body : T.t list =
  (* Look through nested existentials: inner binders are opaque, but
     chunk-shaped conjuncts under them still drive unification. *)
  let rec peel = function A.Exists (_, p) -> peel p | p -> p in
  let body = peel body in
  let cands = ref [] in
  let is_x t =
    match T.view t with T.Var (y, _) -> String.equal y x | _ -> false
  in
  let consider pat chunk =
    match (pat, chunk) with
    | ( A.Points_to { loc; value; _ },
        A.Points_to { loc = l'; value = v'; _ } ) ->
        if is_x value then begin
          if T.equal loc l' || entails st (T.eq loc l') then
            cands := v' :: !cands
        end
        else if is_x loc then
          if entails st (T.eq value v') then cands := l' :: !cands
    | ( A.Ghost (g, GV.Auth_nat { auth = Some a; _ }),
        A.Ghost (g', GV.Auth_nat { auth = Some n'; _ }) )
      when is_x a && String.equal g g' ->
        cands := n' :: !cands
    | A.Ghost (g, GV.Agree a), A.Ghost (g', GV.Agree v')
      when is_x a && String.equal g g' ->
        cands := v' :: !cands
    | A.Pred (p, args), A.Pred (p', args')
      when String.equal p p' && List.length args = List.length args' ->
        List.iter2
          (fun a a' -> if is_x a then cands := a' :: !cands)
          args args'
    | _ -> ()
  in
  List.iter (fun pat -> List.iter (consider pat) st.chunks) (A.conjuncts body);
  List.iter
    (fun pat ->
      match pat with
      | A.Pure t -> (
          match T.view t with
          | T.Eq (lhs, rhs) when is_x lhs -> cands := resolve st rhs :: !cands
          | T.Eq (lhs, rhs) when is_x rhs -> cands := resolve st lhs :: !cands
          | _ -> ())
      | _ -> ())
    (A.conjuncts body);
  Listx.take 8 (List.rev !cands)

(** Public entry: resolve heap reads against the pre-consume state,
    then match and remove. *)
let consume (st : t) (a : A.t) : t = consume_resolved st (resolve_assertion st a)

(* ------------------------------------------------------------------ *)
(* Havoc (for loops) *)

(** Keep only the pure facts; used at loop heads after consuming the
    invariant — the fresh loop state is whatever the invariant
    provides. *)
let pures_only st = { st with chunks = [] }

let pp ppf st =
  Fmt.pf ppf "@[<v>pures: %a@ chunks: %a@]"
    (Fmt.list ~sep:Fmt.comma T.pp) st.pures
    (Fmt.list ~sep:Fmt.comma A.pp) st.chunks
