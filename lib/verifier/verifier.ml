(** The automated verifier (the paper's headline system): symbolic
    execution over the destabilized assertion language, with all proof
    obligations discharged by the built-in SMT solver. *)

module State = State
module Exec = Exec
module Elab = Elab
module Vstats = Vstats
