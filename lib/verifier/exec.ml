(** The symbolic executor: an automated, SMT-backed verifier in the
    style of translational separation-logic verifiers, built on the
    destabilized assertion language.

    Programs are {!Heaplang.Ast} expressions whose specification-level
    parameters appear as [Sym] values; procedure calls are applications
    of named procedures with pre/postconditions; loops carry invariant
    annotations; ghost commands (fold/unfold/ghost updates) hang off
    [GhostMark] nodes.

    Heap-dependent assertions do the heavy lifting: every pure formula
    in a spec may read the heap ([!l]), and the executor resolves the
    read against the symbolic heap at the program point where the
    assertion sits — the stability discipline then guarantees the
    resolved facts survive, so nothing is re-proved at mutation
    points. Compare [lib/proofmode], which pays for a kernel theorem
    at every step. *)

open Stdx
module A = Baselogic.Assertion
module GV = Baselogic.Ghost_val
module K = Baselogic.Kernel
module T = Smt.Term
module HL = Heaplang.Ast
open State

type ghost_cmd =
  | Fold of string * T.t list
  | Unfold of string * T.t list
  | Update of string * GV.t * GV.t  (** ghost name, from, to *)
  | GAlloc of string * GV.t
  | AssertA of A.t  (** assert without consuming *)

type proc = {
  pname : string;
  params : string list;
  requires : A.t;
  ensures : A.t;  (** may mention the reserved variable [result] *)
  body : HL.expr;
  invariants : (HL.expr * A.t) list;  (** [While] nodes, physically *)
  ghost : (string * ghost_cmd list) list;  (** [GhostMark] keys *)
}

type program = {
  procs : proc list;
  preds : A.pred_env;
  invs : (string * A.t) list;
      (** named invariants governing the shared heap; opened (all of
          them) at every [atomic] section and consumed back at its end *)
}

let find_proc prog f = List.find_opt (fun p -> String.equal p.pname f) prog.procs

(** Spec-shaped failures raise {!Diag.Spec_error} with a structured
    location (who referenced what, from where), so callers always see
    where the bad reference sits; [verify_proc] renders them as
    [Failed]. The static analyzer ([lib/analysis]) reports the same
    conditions as [DA0xx] diagnostics before execution — a program it
    passes cannot reach any of these. *)
let default_loc = Diag.loc Diag.Program Diag.Body

let pred_body ?(loc = default_loc) (penv : A.pred_env) name args =
  match Smap.find_opt name penv with
  | None -> Diag.spec_error ~code:"DA001" ~loc "unknown predicate %s" name
  | Some def ->
      if List.length args <> List.length def.A.params then
        Diag.spec_error ~code:"DA002" ~loc
          "predicate %s applied to %d arguments, declared with %d" name
          (List.length args)
          (List.length def.A.params);
      A.subst
        (Smap.of_list (List.map2 (fun x t -> (x, t)) def.A.params args))
        def.A.body

let value_term (v : HL.value) : T.t =
  match K.value_term v with
  | Some t -> t
  | None -> fail "value %a has no term encoding" HL.pp_value v

(* ------------------------------------------------------------------ *)
(* Ghost commands *)

let exec_ghost ?loc (prog : program) (st : t) (cmd : ghost_cmd) : t list =
  match cmd with
  | Fold (p, args) ->
      (* Arguments may read the heap ([fold stk(!s)]): resolve them
         against the owned chunks at the fold point, so the folded
         chunk carries the value actually stored there. *)
      let args = List.map (resolve st) args in
      let body = pred_body ?loc prog.preds p args in
      let st = consume st body in
      [ add_chunk st (A.Pred (p, args)) ]
  | Unfold (p, args) ->
      let args = List.map (resolve st) args in
      let st = consume st (A.Pred (p, args)) in
      (* Disjunctive predicate bodies split the state per case. *)
      inhale_cases st (pred_body ?loc prog.preds p args)
  | Update (g, from_gv, to_gv) -> (
      match
        take st (function
          | A.Ghost (g', gv') ->
              String.equal g g'
              && (match GV.eq_condition gv' from_gv with
                 | Some cond -> entails st cond
                 | None -> false)
          | _ -> false)
      with
      | Some (_, st') -> (
          match GV.update from_gv to_gv with
          | Some cond when entails st' cond ->
              let st' = add_chunk st' (A.Ghost (g, to_gv)) in
              [ add_pure st' (GV.valid_fact to_gv) ]
          | Some _ -> fail "ghost update %s: side condition not provable" g
          | None -> fail "ghost update %s: unrecognized pattern" g)
      | None -> fail "ghost update: no chunk %s matching %a" g GV.pp from_gv)
  | GAlloc (g, gv) ->
      if List.exists (function A.Ghost (g', _) -> String.equal g g' | _ -> false)
           st.chunks
      then fail "ghost alloc: name %s already allocated" g;
      if not (entails st (GV.valid_fact gv)) then
        fail "ghost alloc %s: element not valid" g;
      [ add_chunk st (A.Ghost (g, gv)) ]
  | AssertA a ->
      (* Check on a throwaway copy; the state is unchanged. *)
      ignore (consume st a);
      [ st ]

(* ------------------------------------------------------------------ *)
(* The executor *)

type env = T.t Smap.t

let binop st op (a : T.t) (b : T.t) : T.t =
  match op with
  | HL.Div | HL.Rem -> (
      ignore st;
      match (T.view a, T.view b) with
      | T.Int_lit m, T.Int_lit n when n <> 0 ->
          T.int (if op = HL.Div then m / n else m mod n)
      | _ ->
          fail "div/rem: only concrete operands supported (got %a %s %a)"
            T.pp a
            (if op = HL.Div then "/" else "%%")
            T.pp b)
  | _ -> (
      match K.binop_term op a b with
      | Some t -> t
      | None -> fail "binop %a unsupported symbolically" HL.pp_bin_op op)

(** Execute [e]; return the possible (state, result-term) pairs. *)
let rec exec (prog : program) (proc : proc) (st : t) (env : env)
    (e : HL.expr) : (t * T.t) list =
  match e with
  | HL.Val v -> [ (st, value_term v) ]
  | HL.Var x -> (
      match Smap.find_opt x env with
      | Some t -> [ (st, t) ]
      | None -> fail "unbound program variable %s" x)
  | HL.Let (x, e1, e2) ->
      exec prog proc st env e1
      |> List.concat_map (fun (st, t) ->
             exec prog proc st (Smap.add x t env) e2)
  | HL.Seq (e1, e2) ->
      exec prog proc st env e1
      |> List.concat_map (fun (st, _) -> exec prog proc st env e2)
  | HL.UnOp (op, e1) ->
      exec prog proc st env e1
      |> List.map (fun (st, t) ->
             match op with
             | HL.Neg -> (st, T.sub (T.int 0) t)
             | HL.Not -> (st, T.sub (T.int 1) t))
  | HL.BinOp (op, e1, e2) ->
      exec prog proc st env e1
      |> List.concat_map (fun (st, a) ->
             exec prog proc st env e2
             |> List.map (fun (st, b) -> (st, binop st op a b)))
  | HL.If (c, e1, e2) ->
      exec prog proc st env c
      |> List.concat_map (fun (st, b) ->
             st.stats.Vstats.branches <- st.stats.Vstats.branches + 1;
             let then_st = add_pure st (T.not_ (T.eq b (T.int 0))) in
             let else_st = add_pure st (T.eq b (T.int 0)) in
             (if feasible then_st then exec prog proc then_st env e1 else [])
             @
             if feasible else_st then exec prog proc else_st env e2 else [])
  | HL.While (_, _) -> exec_while prog proc st env e
  | HL.Alloc e1 ->
      exec prog proc st env e1
      |> List.map (fun (st, t) ->
             let l = fresh ~hint:"l" st in
             let lt = T.var l in
             (* Freshness: distinct from every location we know of. *)
             let st =
               List.fold_left
                 (fun st c ->
                   match c with
                   | A.Points_to { loc; _ } -> add_pure st (T.neq lt loc)
                   | _ -> st)
                 st st.chunks
             in
             let st = add_pure st (T.le (T.int 0) lt) in
             (add_chunk st (A.points_to lt t), lt))
  | HL.Load e1 ->
      exec prog proc st env e1
      |> List.map (fun (st, l) ->
             match find_points_to st l with
             | Some (_, _, v) -> (st, v)
             | None -> fail "load: no permission for %a" T.pp l)
  | HL.Store (e1, e2) ->
      exec prog proc st env e1
      |> List.concat_map (fun (st, l) ->
             exec prog proc st env e2
             |> List.map (fun (st, w) ->
                    let st = store_full st l w in
                    (st, T.int 0)))
  | HL.Free e1 ->
      exec prog proc st env e1
      |> List.map (fun (st, l) ->
             match take_full st l with
             | st, _ -> (st, T.int 0))
  | HL.Faa (e1, e2) ->
      exec prog proc st env e1
      |> List.concat_map (fun (st, l) ->
             exec prog proc st env e2
             |> List.map (fun (st, d) ->
                    let st, old = take_full st l in
                    let st = add_chunk st (A.points_to l (T.add old d)) in
                    (st, old)))
  | HL.Cas (e1, e2, e3) ->
      exec prog proc st env e1
      |> List.concat_map (fun (st, l) ->
             exec prog proc st env e2
             |> List.concat_map (fun (st, expected) ->
                    exec prog proc st env e3
                    |> List.concat_map (fun (st, desired) ->
                           st.stats.Vstats.branches <-
                             st.stats.Vstats.branches + 1;
                           let st, cur = take_full st l in
                           let win =
                             add_pure
                               (add_chunk st (A.points_to l desired))
                               (T.eq cur expected)
                           in
                           let lose =
                             add_pure
                               (add_chunk st (A.points_to l cur))
                               (T.neq cur expected)
                           in
                           (if feasible win then [ (win, T.int 1) ] else [])
                           @
                           if feasible lose then [ (lose, T.int 0) ]
                           else [])))
  | HL.Assert e1 ->
      exec prog proc st env e1
      |> List.map (fun (st, b) ->
             if entails st (T.not_ (T.eq b (T.int 0))) then (st, T.int 0)
             else fail "assert: cannot prove %a ≠ 0" T.pp b)
  | HL.GhostMark key -> (
      match List.assoc_opt key proc.ghost with
      | Some cmds ->
          let loc =
            Diag.loc (Diag.Proc proc.pname) (Diag.Ghost_block key)
          in
          List.fold_left
            (fun sts cmd ->
              List.concat_map (fun st -> exec_ghost ~loc prog st cmd) sts)
            [ st ] cmds
          |> List.map (fun st -> (st, T.int 0))
      | None ->
          Diag.spec_error ~code:"DA009"
            ~loc:(Diag.loc (Diag.Proc proc.pname) Diag.Body)
            "ghost mark %s has no command block" key)
  | HL.Par (e1, e2) ->
      (* Structured fork-join. Each branch starts from the pure facts
         only — it owns no chunks; everything shared is reached through
         the named invariants at its own atomic sections — and must
         verify on its own. The parent's chunks are untouchable by the
         branches (they never hold them), so the continuation resumes
         with the parent state unchanged; the fork/join is the
         interference point accounted to [interference_havocs]. *)
      st.stats.Vstats.par_branches <- st.stats.Vstats.par_branches + 2;
      let entry = pures_only st in
      let branches =
        (* The seeded scheduler permutes exploration order; both
           branches are verified regardless, so verdicts cannot
           depend on the seed — the [--seed] gate checks exactly
           that. *)
        match st.sched with
        | Some s when Heaplang.Step.Sched.pick s 2 = 1 -> [ e2; e1 ]
        | _ -> [ e1; e2 ]
      in
      List.iter
        (fun branch -> ignore (exec prog proc entry env branch))
        branches;
      st.stats.Vstats.interference_havocs <-
        st.stats.Vstats.interference_havocs + 1;
      [ (st, T.int 0) ]
  | HL.Atomic e1 ->
      if st.opened <> [] then
        Diag.spec_error ~code:"DA026"
          ~loc:(Diag.loc (Diag.Proc proc.pname) Diag.Body)
          "nested atomic section in %s: invariant%s %s already open"
          proc.pname
          (if List.length st.opened > 1 then "s" else "")
          (String.concat ", " st.opened);
      if prog.invs = [] then exec prog proc st env e1
      else begin
        st.stats.Vstats.inv_opens <-
          st.stats.Vstats.inv_opens + List.length prog.invs;
        let opened = { st with opened = List.map fst prog.invs } in
        let open_sts =
          List.fold_left
            (fun sts (_, body) ->
              List.concat_map (fun st -> inhale_cases st body) sts)
            [ opened ] prog.invs
          |> List.map compat_facts
          |> List.filter feasible
        in
        open_sts
        |> List.concat_map (fun st -> exec prog proc st env e1)
        |> List.map (fun (st_end, res) ->
               (* Close: every invariant body must be re-established
                  and is handed back to the registry. *)
               let st_end =
                 List.fold_left
                   (fun st (_, body) -> consume st body)
                   st_end prog.invs
               in
               ({ st_end with opened = [] }, res))
      end
  | HL.App _ -> exec_call prog proc st env e
  | HL.Rec _ | HL.PairE _ | HL.Fst _ | HL.Snd _ | HL.InjLE _ | HL.InjRE _
  | HL.Case _ ->
      fail "unsupported construct in verified code: %a" HL.pp_expr e

(** A full-permission chunk at [l]: remove it, returning its value. *)
and take_full st l =
  match
    take st (function
      | A.Points_to { loc; frac; _ } ->
          Q.equal frac Q.one
          && (T.equal l loc || entails st (T.eq l loc))
      | _ -> false)
  with
  | Some (A.Points_to { value; _ }, st') -> (st', value)
  | _ -> fail "no full-permission chunk for %a" T.pp l

and store_full st l w =
  let st, _ = take_full st l in
  add_chunk st (A.points_to l w)

(** Loops: consume the invariant (framing the rest), verify the body
    in a havocked state once, and continue from the exit states. *)
and exec_while prog proc st env (loop : HL.expr) : (t * T.t) list =
  let cond, body =
    match loop with HL.While (c, b) -> (c, b) | _ -> assert false
  in
  let inv =
    match List.find_opt (fun (n, _) -> n == loop) proc.invariants with
    | Some (_, inv) -> inv
    | None ->
        Diag.spec_error ~code:"DA008"
          ~loc:(Diag.loc (Diag.Proc proc.pname) Diag.Body)
          "while loop without an invariant annotation in %s" proc.pname
  in
  st.stats.Vstats.loops <- st.stats.Vstats.loops + 1;
  (* Entry: the invariant must hold; everything else is the frame. *)
  let frame = consume st inv in
  (* Havoc: fresh state with only the pure knowledge (symbols are
     immutable) plus a fresh copy of the invariant. *)
  let havocs = inhale_cases (pures_only frame) inv in
  let paths = List.concat_map (fun h -> exec prog proc h env cond) havocs in
  let exits = ref [] in
  List.iter
    (fun (stc, b) ->
      stc.stats.Vstats.branches <- stc.stats.Vstats.branches + 1;
      (* Body path: guard holds; run the body and restore the
         invariant. *)
      let body_st = add_pure stc (T.not_ (T.eq b (T.int 0))) in
      if feasible body_st then
        exec prog proc body_st env body
        |> List.iter (fun (st_end, _) -> ignore (consume st_end inv));
      (* Exit path: guard fails; continue after the loop. *)
      let exit_st = add_pure stc (T.eq b (T.int 0)) in
      if feasible exit_st then exits := exit_st :: !exits)
    paths;
  (* Exit states keep the frame chunks. *)
  List.map
    (fun ex -> ({ ex with chunks = ex.chunks @ frame.chunks }, T.int 0))
    !exits

(** Procedure calls: applications spine-collected,
    [App (App (Var f, a1), a2)]. *)
and exec_call prog proc st env (e : HL.expr) : (t * T.t) list =
  let rec spine acc = function
    | HL.App (f, a) -> spine (a :: acc) f
    | HL.Var f -> (f, acc)
    | e -> fail "call: unsupported callee %a" HL.pp_expr e
  in
  let f, args = spine [] e in
  let call_loc = Diag.loc (Diag.Proc proc.pname) Diag.Body in
  let callee =
    match find_proc prog f with
    | Some p -> p
    | None ->
        Diag.spec_error ~code:"DA003" ~loc:call_loc
          "unknown procedure %s (called from %s)" f proc.pname
  in
  if List.length args <> List.length callee.params then
    Diag.spec_error ~code:"DA004" ~loc:call_loc
      "call %s from %s: %d arguments for %d parameters" f proc.pname
      (List.length args)
      (List.length callee.params);
  st.stats.Vstats.calls <- st.stats.Vstats.calls + 1;
  (* Evaluate arguments left to right, threading states. *)
  let rec eval_args st acc = function
    | [] -> [ (st, List.rev acc) ]
    | a :: rest ->
        exec prog proc st env a
        |> List.concat_map (fun (st, t) -> eval_args st (t :: acc) rest)
  in
  eval_args st [] args
  |> List.concat_map (fun (st, arg_terms) ->
         let bind =
           Smap.of_list (List.map2 (fun x t -> (x, t)) callee.params arg_terms)
         in
         let st = consume st (A.subst bind callee.requires) in
         let res = fresh ~hint:"r" st in
         let bind = Smap.add "result" (T.var res) bind in
         inhale_cases st (A.subst bind callee.ensures)
         |> List.map (fun st -> (st, T.var res)))

(* ------------------------------------------------------------------ *)
(* Entry points *)

(** Captured crash information: the exception and the backtrace at the
    point it escaped, both already rendered (exceptions don't cross
    domain boundaries reliably and the engine ships results between
    domains). *)
type exn_info = { exn : string; backtrace : string }

type outcome =
  | Verified
  | Failed of string  (** the program violates its specification *)
  | Timeout of string  (** deadline/cancellation — the verifier gave up *)
  | Resource_out of string  (** a fuel knob ran dry — the verifier gave up *)
  | Crashed of exn_info  (** an unexpected exception escaped the verifier *)

let pp_outcome ppf = function
  | Verified -> Fmt.string ppf "verified"
  | Failed m -> Fmt.pf ppf "failed: %s" m
  | Timeout m -> Fmt.pf ppf "timeout: %s" m
  | Resource_out m -> Fmt.pf ppf "resource-out: %s" m
  | Crashed { exn; _ } -> Fmt.pf ppf "crashed: %s" exn

(** Did the verifier actually decide the program? [Timeout],
    [Resource_out] and [Crashed] are abstentions, not judgements. *)
let decided = function
  | Verified | Failed _ -> true
  | Timeout _ | Resource_out _ | Crashed _ -> false

(** Verify one procedure against its specification. [stats] is the
    {!Vstats} instance obligations are accounted to; each call gets a
    private fresh one by default, so concurrent jobs never share.

    Each procedure opens one incremental solver session
    ({!Smt.Session}) that lives for the whole symbolic execution: path
    conditions are pushed as execution descends and every obligation
    ([entails], [feasible]) is discharged against the live context,
    instead of shipping the full hypothesis list to a fresh solver per
    query. Sessions are per-procedure (never shared across jobs), so
    the parallel engine's workers stay isolated. *)
let verify_proc ?(heap_dep = true) ?(absint = true) ?(seed = 0)
    ?(srcmap : Diag.srcmap = []) ?stats (prog : program) (proc : proc) :
    outcome =
  match
    (* Deadline check on entry: a procedure whose budget is already
       spent (e.g. late in a tight per-job deadline) stops here rather
       than starting work it cannot finish. *)
    Budget.poll_now ();
    (* [create] is inside the guarded region: it enforces the
       declaration-time stability of every predicate body (DA012). *)
    let session = Smt.Session.create () in
    let st =
      create ~heap_dep ~absint ~seed ~session ?stats ~penv:prog.preds
        ~invs:prog.invs ()
    in
    inhale_cases st proc.requires
    |> List.iter (fun st ->
           exec prog proc st Smap.empty proc.body
           |> List.iter (fun (st_end, res) ->
                  let post = A.subst1 "result" res proc.ensures in
                  ignore (consume st_end post)))
  with
  | () -> Verified
  | exception Verification_error m -> Failed m
  | exception Diag.Spec_error d ->
      Failed (Diag.to_string (Diag.relocate srcmap d))
  | exception Budget.Exhausted ((Budget.Deadline _ | Budget.Cancelled) as r)
    ->
      let s = Smt.Stats.current () in
      s.Smt.Stats.deadline_stops <- s.Smt.Stats.deadline_stops + 1;
      Timeout (Budget.reason_to_string r)
  | exception Budget.Exhausted (Budget.Fuel _ as r) ->
      Resource_out (Budget.reason_to_string r)

(** Verify every procedure of a program; returns per-procedure
    outcomes. A shared [stats] instance accumulates across all
    procedures. *)
let verify ?heap_dep ?absint ?seed ?srcmap ?stats (prog : program) :
    (string * outcome) list =
  List.map
    (fun p ->
      (p.pname, verify_proc ?heap_dep ?absint ?seed ?srcmap ?stats prog p))
    prog.procs
