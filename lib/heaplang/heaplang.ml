(** A HeapLang-style language: untyped lambda calculus with a mutable
    higher-order heap, small-step semantics, and a fast interpreter. *)

module Ast = Ast
module Subst = Subst
module Heap = Heap
module Step = Step
module Interp = Interp
module Lexer = Lexer
module Surface = Surface
module Parser = Parser
