(** A hand-rolled lexer for the surface syntax (menhir/ocamllex are not
    available in the sealed environment, and the token language is
    small enough that a direct scanner is clearer anyway).

    Every token carries a {!Stdx.Loc.t} span — file, 1-based line and
    column, and the byte extent — which the parser unions into node
    spans and threads all the way to diagnostics. The token set covers
    both the programming language and the specification language of
    annotated programs (assertions, points-to, stabilization
    brackets). *)

open Stdx

type token =
  | INT of int
  | IDENT of string
  | SYM of string  (** [?x] — a specification-level symbol *)
  | KW of string  (** keywords: let, in, while, procedure, requires, … *)
  | LPAREN
  | RPAREN
  | LBRACKET  (** [ — opens a pure assertion *)
  | RBRACKET  (** ] *)
  | LBRACE  (** { — procedure bodies, fraction annotations *)
  | RBRACE  (** } *)
  | COMMA
  | SEMI  (** ; *)
  | DOT  (** . — closes an [exists] binder list *)
  | BAR  (** | — match arms *)
  | ARROW  (** -> *)
  | LARROW  (** <- *)
  | MAPSTO  (** |-> — points-to *)
  | LSTAB  (** |_ — opens a stabilization bracket ⌊ *)
  | RSTAB  (** _| — closes a stabilization bracket ⌋ *)
  | BANG  (** ! *)
  | OP of string  (** infix operators *)
  | EOF

let pp_token ppf = function
  | INT n -> Fmt.pf ppf "%d" n
  | IDENT x -> Fmt.pf ppf "%s" x
  | SYM x -> Fmt.pf ppf "?%s" x
  | KW k -> Fmt.pf ppf "%s" k
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | COMMA -> Fmt.string ppf ","
  | SEMI -> Fmt.string ppf ";"
  | DOT -> Fmt.string ppf "."
  | BAR -> Fmt.string ppf "|"
  | ARROW -> Fmt.string ppf "->"
  | LARROW -> Fmt.string ppf "<-"
  | MAPSTO -> Fmt.string ppf "|->"
  | LSTAB -> Fmt.string ppf "|_"
  | RSTAB -> Fmt.string ppf "_|"
  | BANG -> Fmt.string ppf "!"
  | OP s -> Fmt.string ppf s
  | EOF -> Fmt.string ppf "<eof>"

exception Lex_error of string * Loc.t  (** message, source span *)

let keywords =
  [
    (* programs *)
    "let"; "in"; "while"; "do"; "done"; "if"; "then"; "else"; "fun"; "rec";
    "ref"; "free"; "assert"; "ghost"; "true"; "false"; "fst"; "snd"; "inl";
    "inr"; "match"; "with"; "end"; "CAS"; "FAA"; "par"; "atomic";
    (* annotated programs and specifications *)
    "predicate"; "procedure"; "requires"; "ensures"; "invariant"; "emp";
    "exists"; "fold"; "unfold";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_alpha c || is_digit c || c = '\''

(** Tokenize a whole string. [file] names the buffer in spans (defaults
    to anonymous, for inline sources). *)
let tokenize ?(file = "") (src : string) : (token * Loc.t) list =
  let ix = Loc.index src in
  let span start stop = Loc.span ix ~file start stop in
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  (* [emit t start] stamps the token with the span [start .. !i). *)
  let emit t start = toks := (t, span start !i) :: !toks in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment: scan to closing, no nesting *)
      let j = ref (!i + 2) in
      while
        !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = ')')
      do
        incr j
      done;
      if !j + 1 >= n then
        raise (Lex_error ("unterminated comment", span pos (pos + 2)));
      i := !j + 2
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      let lit = String.sub src !i (!j - !i) in
      i := !j;
      emit (INT (int_of_string lit)) pos
    end
    else if c = '_' && !i + 1 < n && src.[!i + 1] = '|' then begin
      (* _| closes a stabilization bracket; checked before identifiers
         because '_' also starts one *)
      i := !i + 2;
      emit RSTAB pos
    end
    else if is_alpha c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do incr j done;
      let word = String.sub src !i (!j - !i) in
      i := !j;
      emit (if List.mem word keywords then KW word else IDENT word) pos
    end
    else if c = '?' && !i + 1 < n && is_alpha src.[!i + 1] then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident src.[!j] do incr j done;
      let name = String.sub src (!i + 1) (!j - !i - 1) in
      i := !j;
      emit (SYM name) pos
    end
    else begin
      (* punctuation and operators, longest match first *)
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      if three = "|->" then begin
        i := !i + 3;
        emit MAPSTO pos
      end
      else
        match two with
        | "->" -> i := !i + 2; emit ARROW pos
        | "<-" -> i := !i + 2; emit LARROW pos
        | "|_" -> i := !i + 2; emit LSTAB pos
        | "==" | "!=" | "<=" | ">=" | "&&" | "||" ->
            i := !i + 2;
            emit (OP two) pos
        | _ -> (
            match c with
            | '(' -> incr i; emit LPAREN pos
            | ')' -> incr i; emit RPAREN pos
            | '[' -> incr i; emit LBRACKET pos
            | ']' -> incr i; emit RBRACKET pos
            | '{' -> incr i; emit LBRACE pos
            | '}' -> incr i; emit RBRACE pos
            | ',' -> incr i; emit COMMA pos
            | ';' -> incr i; emit SEMI pos
            | '.' -> incr i; emit DOT pos
            | '|' -> incr i; emit BAR pos
            | '!' -> incr i; emit BANG pos
            | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' ->
                incr i;
                emit (OP (String.make 1 c)) pos
            | _ ->
                raise
                  (Lex_error
                     ( Printf.sprintf "unexpected character %c" c,
                       span pos (pos + 1) )))
    end
  done;
  List.rev ((EOF, span n n) :: !toks)
