(** Capture-avoiding substitution of values for variables.

    Because we only ever substitute *values* (which are closed), no
    renaming is needed — we just stop at binders that shadow the
    substituted variable. This is the standard HeapLang setup. *)

open Ast

let rec subst x v (e : expr) : expr =
  let go = subst x v in
  match e with
  | Val _ -> e
  | Var y -> if String.equal x y then Val v else e
  | Rec (f, y, body) ->
      if Some x = f || String.equal x y then e else Rec (f, y, go body)
  | App (e1, e2) -> App (go e1, go e2)
  | UnOp (op, e1) -> UnOp (op, go e1)
  | BinOp (op, e1, e2) -> BinOp (op, go e1, go e2)
  | If (c, a, b) -> If (go c, go a, go b)
  | Let (y, e1, e2) ->
      Let (y, go e1, if String.equal x y then e2 else go e2)
  | Seq (a, b) -> Seq (go a, go b)
  | While (c, b) -> While (go c, go b)
  | PairE (a, b) -> PairE (go a, go b)
  | Fst e1 -> Fst (go e1)
  | Snd e1 -> Snd (go e1)
  | InjLE e1 -> InjLE (go e1)
  | InjRE e1 -> InjRE (go e1)
  | Case (e1, (y, l), (z, r)) ->
      Case
        ( go e1,
          (y, if String.equal x y then l else go l),
          (z, if String.equal x z then r else go r) )
  | Alloc e1 -> Alloc (go e1)
  | Load e1 -> Load (go e1)
  | Store (e1, e2) -> Store (go e1, go e2)
  | Free e1 -> Free (go e1)
  | Cas (e1, e2, e3) -> Cas (go e1, go e2, go e3)
  | Faa (e1, e2) -> Faa (go e1, go e2)
  | Assert e1 -> Assert (go e1)
  | GhostMark _ -> e
  | Par (e1, e2) -> Par (go e1, go e2)
  | Atomic e1 -> Atomic (go e1)

let subst_list bindings e =
  List.fold_left (fun e (x, v) -> subst x v e) e bindings

(** Close a program's symbolic values ([Sym x]) with concrete values —
    used before running a verified program or model-checking a WP. *)
let rec close_value (env : (string * value) list) (v : value) : value =
  match v with
  | Sym x -> ( match List.assoc_opt x env with Some v -> v | None -> v)
  | Pair (a, b) -> Pair (close_value env a, close_value env b)
  | InjL a -> InjL (close_value env a)
  | InjR a -> InjR (close_value env a)
  | RecV (f, x, e) -> RecV (f, x, close_expr env e)
  | Unit | Bool _ | Int _ | Loc _ -> v

and close_expr env (e : expr) : expr =
  let go = close_expr env in
  match e with
  | Val v -> Val (close_value env v)
  | Var _ -> e
  | Rec (f, x, body) -> Rec (f, x, go body)
  | App (a, b) -> App (go a, go b)
  | UnOp (op, a) -> UnOp (op, go a)
  | BinOp (op, a, b) -> BinOp (op, go a, go b)
  | If (c, a, b) -> If (go c, go a, go b)
  | Let (x, a, b) -> Let (x, go a, go b)
  | Seq (a, b) -> Seq (go a, go b)
  | While (c, b) -> While (go c, go b)
  | PairE (a, b) -> PairE (go a, go b)
  | Fst a -> Fst (go a)
  | Snd a -> Snd (go a)
  | InjLE a -> InjLE (go a)
  | InjRE a -> InjRE (go a)
  | Case (a, (x, l), (y, r)) -> Case (go a, (x, go l), (y, go r))
  | Alloc a -> Alloc (go a)
  | Load a -> Load (go a)
  | Store (a, b) -> Store (go a, go b)
  | Free a -> Free (go a)
  | Cas (a, b, c) -> Cas (go a, go b, go c)
  | Faa (a, b) -> Faa (go a, go b)
  | Assert a -> Assert (go a)
  | GhostMark _ -> e
  | Par (a, b) -> Par (go a, go b)
  | Atomic a -> Atomic (go a)

(** Free variables of an expression (for closedness checks). *)
let free_vars (e : expr) : string list =
  let module S = Set.Make (String) in
  let rec go bound acc = function
    | Val _ | GhostMark _ -> acc
    | Var x -> if S.mem x bound then acc else S.add x acc
    | Rec (f, x, body) ->
        let bound = S.add x bound in
        let bound = match f with Some f -> S.add f bound | None -> bound in
        go bound acc body
    | App (a, b) | BinOp (_, a, b) | Seq (a, b) | While (a, b)
    | PairE (a, b) | Store (a, b) | Faa (a, b) | Par (a, b) ->
        go bound (go bound acc a) b
    | UnOp (_, a) | Fst a | Snd a | InjLE a | InjRE a | Alloc a | Load a
    | Free a | Assert a | Atomic a ->
        go bound acc a
    | If (c, a, b) | Cas (c, a, b) ->
        go bound (go bound (go bound acc c) a) b
    | Let (x, a, b) -> go (S.add x bound) (go bound acc a) b
    | Case (e, (x, l), (y, r)) ->
        let acc = go bound acc e in
        let acc = go (S.add x bound) acc l in
        go (S.add y bound) acc r
  in
  S.elements (go S.empty S.empty e)
