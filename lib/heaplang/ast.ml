(** Abstract syntax of the programming language.

    An ML-style untyped lambda calculus with a mutable higher-order
    heap, in the image of Iris's HeapLang: recursive functions, pairs,
    sums, and the usual heap primitives including atomic
    compare-and-set and fetch-and-add. [While] and [Let] are provided
    as first-class constructs (rather than the usual encodings) because
    the verifier attaches loop invariants and scoping to them; the
    operational semantics treats them exactly as their encodings. *)

type loc = int

type un_op = Neg  (** integer negation *) | Not  (** boolean negation *)

type bin_op =
  | Add
  | Sub
  | Mul
  | Div  (** truncated toward zero, as in OCaml *)
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | AndOp
  | OrOp

type value =
  | Unit
  | Bool of bool
  | Int of int
  | Loc of loc
  | Pair of value * value
  | InjL of value
  | InjR of value
  | RecV of string option * string * expr
      (** recursive closure [rec f x := e]; substitution-based, so no
          environment *)
  | Sym of string
      (** a logical variable embedded in a program under verification;
          the operational semantics is stuck on it — programs are
          closed by substituting concrete values before running *)

and expr =
  | Val of value
  | Var of string
  | Rec of string option * string * expr
  | App of expr * expr
  | UnOp of un_op * expr
  | BinOp of bin_op * expr * expr
  | If of expr * expr * expr
  | Let of string * expr * expr
  | Seq of expr * expr
  | While of expr * expr
  | PairE of expr * expr
  | Fst of expr
  | Snd of expr
  | InjLE of expr
  | InjRE of expr
  | Case of expr * (string * expr) * (string * expr)
      (** [match e with InjL x -> e1 | InjR y -> e2] *)
  | Alloc of expr
  | Load of expr
  | Store of expr * expr
  | Free of expr
  | Cas of expr * expr * expr  (** location, expected, new; returns bool *)
  | Faa of expr * expr  (** location, delta; returns old value *)
  | Assert of expr
  | GhostMark of string
      (** a verifier annotation point (fold/unfold/ghost update), keyed
          into a side table; operationally a no-op returning unit *)
  | Par of expr * expr
      (** structured fork-join: both branches run to values under an
          interleaving scheduler, their results are discarded, and the
          join returns unit *)
  | Atomic of expr
      (** an atomic section: the body runs to a value in one
          indivisible scheduler step — the only program points where
          the verifier opens named invariants *)

(* ------------------------------------------------------------------ *)
(* Printing *)

let pp_un_op ppf = function
  | Neg -> Fmt.string ppf "-"
  | Not -> Fmt.string ppf "!"

let pp_bin_op ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Rem -> "%"
    | Eq -> "=="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | AndOp -> "&&"
    | OrOp -> "||")

let rec pp_value ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Loc l -> Fmt.pf ppf "#%d" l
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp_value a pp_value b
  | InjL v -> Fmt.pf ppf "inl %a" pp_value v
  | InjR v -> Fmt.pf ppf "inr %a" pp_value v
  | RecV (Some f, x, _) -> Fmt.pf ppf "<rec %s %s>" f x
  | RecV (None, x, _) -> Fmt.pf ppf "<fun %s>" x
  | Sym x -> Fmt.pf ppf "?%s" x

let rec pp_expr ppf = function
  | Val v -> pp_value ppf v
  | Var x -> Fmt.string ppf x
  | Rec (Some f, x, e) -> Fmt.pf ppf "(rec %s %s := %a)" f x pp_expr e
  | Rec (None, x, e) -> Fmt.pf ppf "(fun %s -> %a)" x pp_expr e
  | App (f, a) -> Fmt.pf ppf "(%a %a)" pp_expr f pp_expr a
  | UnOp (op, e) -> Fmt.pf ppf "%a%a" pp_un_op op pp_expr e
  | BinOp (op, a, b) ->
      Fmt.pf ppf "(%a %a %a)" pp_expr a pp_bin_op op pp_expr b
  | If (c, a, b) ->
      Fmt.pf ppf "(if %a then %a else %a)" pp_expr c pp_expr a pp_expr b
  | Let (x, e1, e2) ->
      Fmt.pf ppf "@[<v>let %s = %a in@ %a@]" x pp_expr e1 pp_expr e2
  | Seq (a, b) -> Fmt.pf ppf "@[<v>%a;@ %a@]" pp_expr a pp_expr b
  | While (c, b) -> Fmt.pf ppf "@[<v>while %a do@;<1 2>%a@ done@]" pp_expr c pp_expr b
  | PairE (a, b) -> Fmt.pf ppf "(%a, %a)" pp_expr a pp_expr b
  | Fst e -> Fmt.pf ppf "fst %a" pp_expr e
  | Snd e -> Fmt.pf ppf "snd %a" pp_expr e
  | InjLE e -> Fmt.pf ppf "inl %a" pp_expr e
  | InjRE e -> Fmt.pf ppf "inr %a" pp_expr e
  | Case (e, (x, e1), (y, e2)) ->
      Fmt.pf ppf "(match %a with inl %s -> %a | inr %s -> %a)" pp_expr e x
        pp_expr e1 y pp_expr e2
  | Alloc e -> Fmt.pf ppf "ref %a" pp_expr e
  | Load e -> Fmt.pf ppf "!%a" pp_expr e
  | Store (l, e) -> Fmt.pf ppf "(%a <- %a)" pp_expr l pp_expr e
  | Free e -> Fmt.pf ppf "free %a" pp_expr e
  | Cas (l, a, b) -> Fmt.pf ppf "CAS(%a, %a, %a)" pp_expr l pp_expr a pp_expr b
  | Faa (l, d) -> Fmt.pf ppf "FAA(%a, %a)" pp_expr l pp_expr d
  | Assert e -> Fmt.pf ppf "assert %a" pp_expr e
  | GhostMark k -> Fmt.pf ppf "ghost[%s]" k
  | Par (a, b) ->
      Fmt.pf ppf "@[<v>par {@;<1 2>%a@ } {@;<1 2>%a@ }@]" pp_expr a pp_expr b
  | Atomic e -> Fmt.pf ppf "atomic { %a }" pp_expr e

let rec value_equal (a : value) (b : value) =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Loc x, Loc y -> x = y
  | Pair (a1, a2), Pair (b1, b2) -> value_equal a1 b1 && value_equal a2 b2
  | InjL x, InjL y | InjR x, InjR y -> value_equal x y
  | RecV _, RecV _ -> a == b  (* physical, as comparing code is undecidable *)
  | Sym x, Sym y -> String.equal x y
  | _ -> false

(** Convenience constructors for examples and tests. The operators
    shadow stdlib arithmetic, so they live in a module to [open]
    locally. *)
module Syntax = struct
  let unit_ = Val Unit
  let int n = Val (Int n)
  let bool b = Val (Bool b)
  let var x = Var x
  let lam x e = Rec (None, x, e)
  let rec_ f x e = Rec (Some f, x, e)
  let app f a = App (f, a)
  let let_ x e1 e2 = Let (x, e1, e2)
  let seq a b = Seq (a, b)
  let if_ c a b = If (c, a, b)
  let alloc e = Alloc e
  let load e = Load e
  let store l e = Store (l, e)
  let ( + ) a b = BinOp (Add, a, b)
  let ( - ) a b = BinOp (Sub, a, b)
  let ( * ) a b = BinOp (Mul, a, b)
  let ( = ) a b = BinOp (Eq, a, b)
  let ( < ) a b = BinOp (Lt, a, b)
  let ( <= ) a b = BinOp (Le, a, b)
end
