(** The surface language of *annotated programs*: located abstract
    syntax for whole verification units — predicate definitions and
    procedures with [requires]/[ensures] clauses, loop invariants, and
    ghost command blocks — plus the specification sub-language of
    assertions and spec-level terms.

    This module is pure syntax: every node carries a {!Stdx.Loc.t}
    span and nothing here depends on the logic or the solver. The
    parser ({!Parser.parse_program}) produces these trees;
    [Baselogic.Elab] and [Verifier.Elab] lower them onto
    [Baselogic.Assertion.t] and [Verifier.Exec.program], carrying the
    spans into a source map for diagnostics.

    Concrete syntax (see README §"Surface syntax" for the worked
    grammar):
    {v
    program   ::= (predicate | invariant | procedure)*
    predicate ::= "predicate" name "(" params ")" "=" assertion
    invariant ::= "invariant" name "{" assertion "}"
    procedure ::= "procedure" name "(" params ")"
                    ("requires" assertion)? ("ensures" assertion)?
                  "{" expr "}"
    assertion ::= asep ("||" asep)*
    asep      ::= aprim ("*" aprim)*
    aprim     ::= "emp" | "[" term "]" | "|_" assertion "_|"
                | "exists" x+ "." assertion | name "(" term,* ")"
                | term "|->" ("{" n "/" d "}")? term
                | "(" assertion ")"
    term      ::= spec-level integer/boolean terms, with "!" t a heap
                  read (a {!Baselogic.Hterm} deref after elaboration)
    v} *)

open Stdx

(* ------------------------------------------------------------------ *)
(* Spec-level terms *)

type term = { t : term_desc; tspan : Loc.t }

and term_desc =
  | TInt of int
  | TBool of bool
  | TVar of string
  | TDeref of term  (** [!t] — a heap read inside a specification *)
  | TNeg of term
  | TBin of Ast.bin_op * term * term

(** A literal fraction annotation [{num/den}] on a points-to. *)
type frac = { num : int; den : int }

(* ------------------------------------------------------------------ *)
(* Assertions *)

type assertion = { a : assertion_desc; aspan : Loc.t }

and assertion_desc =
  | AEmp
  | APure of term  (** [\[ t \]] *)
  | APointsTo of { alhs : term; afrac : frac option; arhs : term }
  | APred of string * term list
  | ASep of assertion * assertion
  | AOr of assertion * assertion
  | AStabilize of assertion  (** [|_ A _|], the ⌊·⌋ modality *)
  | AExists of string list * assertion

(* ------------------------------------------------------------------ *)
(* Annotated programs *)

type ghost_cmd =
  | GFold of string * term list
  | GUnfold of string * term list
  | GAssert of assertion

type proc = {
  p_name : string;
  p_params : string list;
  p_requires : assertion option;  (** [None] elaborates to [emp] *)
  p_ensures : assertion option;
  p_body : Ast.expr;
  p_invariants : (Ast.expr * assertion) list;
      (** keyed by the physical [While] node, as the verifier expects *)
  p_ghost : (string * ghost_cmd list * Loc.t) list;
      (** inline [ghost key { … }] blocks, in body order *)
  p_body_span : Loc.t;  (** the braced body region *)
  p_span : Loc.t;  (** the whole declaration *)
}

type pred = {
  pr_name : string;
  pr_params : string list;
  pr_body : assertion;
  pr_span : Loc.t;
}

type inv = {
  i_name : string;
  i_body : assertion;
      (** governs the shared heap between atomic sections; opened and
          re-established by the verifier at every [atomic] block *)
  i_span : Loc.t;
}

type program = {
  prog_preds : pred list;
  prog_invs : inv list;
  prog_procs : proc list;
}

(* ------------------------------------------------------------------ *)
(* Span-insensitive equality (round-trip properties compare these) *)

let rec term_equal (a : term) (b : term) =
  match (a.t, b.t) with
  | TInt m, TInt n -> m = n
  | TBool p, TBool q -> p = q
  | TVar x, TVar y -> String.equal x y
  | TDeref s, TDeref u | TNeg s, TNeg u -> term_equal s u
  | TBin (o1, a1, b1), TBin (o2, a2, b2) ->
      o1 = o2 && term_equal a1 a2 && term_equal b1 b2
  | _ -> false

let rec assertion_equal (a : assertion) (b : assertion) =
  match (a.a, b.a) with
  | AEmp, AEmp -> true
  | APure s, APure u -> term_equal s u
  | APointsTo x, APointsTo y ->
      term_equal x.alhs y.alhs && x.afrac = y.afrac
      && term_equal x.arhs y.arhs
  | APred (p, xs), APred (q, ys) ->
      String.equal p q && List.equal term_equal xs ys
  | ASep (a1, a2), ASep (b1, b2) | AOr (a1, a2), AOr (b1, b2) ->
      assertion_equal a1 b1 && assertion_equal a2 b2
  | AStabilize p, AStabilize q -> assertion_equal p q
  | AExists (xs, p), AExists (ys, q) ->
      List.equal String.equal xs ys && assertion_equal p q
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Grammar-exact printers

   Composite nodes print fully parenthesized (or bracketed), so the
   output of every printer re-parses to the same tree — the QCheck
   round-trip property [parse (print x) ≡ x] pins this. *)

let rec pp_term ppf (t : term) =
  match t.t with
  | TInt n -> Fmt.int ppf n
  | TBool b -> Fmt.bool ppf b
  | TVar x -> Fmt.string ppf x
  | TDeref s -> Fmt.pf ppf "!%a" pp_term s
  | TNeg s -> Fmt.pf ppf "(-%a)" pp_term s
  | TBin (op, a, b) ->
      Fmt.pf ppf "(%a %a %a)" pp_term a Ast.pp_bin_op op pp_term b

let pp_frac ppf { num; den } = Fmt.pf ppf "{%d/%d}" num den

let rec pp_assertion ppf (a : assertion) =
  match a.a with
  | AEmp -> Fmt.string ppf "emp"
  | APure t -> Fmt.pf ppf "[%a]" pp_term t
  | APointsTo { alhs; afrac; arhs } ->
      Fmt.pf ppf "%a |->%a %a" pp_term alhs
        (Fmt.option pp_frac) afrac pp_term arhs
  | APred (p, args) ->
      Fmt.pf ppf "%s(%a)" p (Fmt.list ~sep:(Fmt.any ", ") pp_term) args
  | ASep (p, q) -> Fmt.pf ppf "(%a * %a)" pp_assertion p pp_assertion q
  | AOr (p, q) -> Fmt.pf ppf "(%a || %a)" pp_assertion p pp_assertion q
  | AStabilize p -> Fmt.pf ppf "|_ %a _|" pp_assertion p
  | AExists (xs, p) ->
      Fmt.pf ppf "(exists %a. %a)"
        (Fmt.list ~sep:Fmt.sp Fmt.string) xs pp_assertion p

let term_to_string t = Fmt.str "%a" pp_term t
let assertion_to_string a = Fmt.str "%a" pp_assertion a

(** Print an expression in grammar-exact form: like {!Ast.pp_expr} but
    guaranteed to re-parse to the same tree for the parseable fragment
    (no closures, no [Loc]/[Pair]/[Inj] *values*, no [UnOp Not] — the
    surface grammar has no such literals). Raises [Invalid_argument]
    outside the fragment. *)
let pp_expr ppf (e : Ast.expr) =
  let open Ast in
  let rec pp_expr ppf e =
    match e with
  | Val Unit -> Fmt.string ppf "()"
  | Val (Bool b) -> Fmt.bool ppf b
  | Val (Int n) when n >= 0 -> Fmt.int ppf n
  | Val (Int n) -> Fmt.pf ppf "(-%d)" (-n)
  | Val (Sym x) -> Fmt.pf ppf "?%s" x
  | Val (Loc _ | Pair _ | InjL _ | InjR _ | RecV _) ->
      invalid_arg "Surface.pp_expr: value outside the surface grammar"
  | Var x -> Fmt.string ppf x
  | Rec (Some f, x, b) -> Fmt.pf ppf "(rec %s %s -> %a)" f x pp_expr b
  | Rec (None, x, b) -> Fmt.pf ppf "(fun %s -> %a)" x pp_expr b
    (* application and the keyword-applied forms take *atoms*, so
       function and argument print under their own parentheses *)
    | App (f, a) -> Fmt.pf ppf "((%a) (%a))" pp_expr f pp_expr a
  | UnOp (Neg, e) -> Fmt.pf ppf "(-%a)" pp_expr e
  | UnOp (Not, _) ->
      invalid_arg "Surface.pp_expr: boolean negation has no surface form"
  | BinOp (op, a, b) ->
      Fmt.pf ppf "(%a %a %a)" pp_expr a Ast.pp_bin_op op pp_expr b
  | If (c, a, b) ->
      Fmt.pf ppf "(if %a then %a else %a)" pp_expr c pp_expr a pp_expr b
  | Let (x, e1, e2) ->
      Fmt.pf ppf "(let %s = %a in %a)" x pp_expr e1 pp_expr e2
  | Seq (a, b) -> Fmt.pf ppf "(%a; %a)" pp_expr a pp_expr b
  | While (c, b) -> Fmt.pf ppf "(while %a do %a done)" pp_expr c pp_expr b
  | PairE (a, b) -> Fmt.pf ppf "(%a, %a)" pp_expr a pp_expr b
    | Fst e -> Fmt.pf ppf "(fst (%a))" pp_expr e
    | Snd e -> Fmt.pf ppf "(snd (%a))" pp_expr e
    | InjLE e -> Fmt.pf ppf "(inl (%a))" pp_expr e
    | InjRE e -> Fmt.pf ppf "(inr (%a))" pp_expr e
  | Case (e, (x, e1), (y, e2)) ->
      Fmt.pf ppf "(match %a with inl %s -> %a | inr %s -> %a end)" pp_expr e
        x pp_expr e1 y pp_expr e2
    | Alloc e -> Fmt.pf ppf "(ref (%a))" pp_expr e
  | Load e -> Fmt.pf ppf "!%a" pp_expr e
  | Store (l, e) -> Fmt.pf ppf "(%a <- %a)" pp_expr l pp_expr e
    | Free e -> Fmt.pf ppf "(free (%a))" pp_expr e
  | Cas (l, a, b) ->
      Fmt.pf ppf "CAS(%a, %a, %a)" pp_expr l pp_expr a pp_expr b
  | Faa (l, d) -> Fmt.pf ppf "FAA(%a, %a)" pp_expr l pp_expr d
    | Assert e -> Fmt.pf ppf "(assert (%a))" pp_expr e
    | GhostMark k -> Fmt.pf ppf "ghost %s" k
    | Par (a, b) ->
        Fmt.pf ppf "par { %a } { %a }" pp_expr a pp_expr b
    | Atomic e -> Fmt.pf ppf "atomic { %a }" pp_expr e
  in
  pp_expr ppf e

let expr_to_string e = Fmt.str "%a" pp_expr e
