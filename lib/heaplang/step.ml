(** Small-step operational semantics.

    Configurations are (expression, heap) pairs; [step] performs one
    head-or-context reduction, returning [Stuck] on runtime errors
    (type confusion, dangling loads, failed assertions). Evaluation is
    right-to-left in application position like HeapLang? — no: we use
    left-to-right, call-by-value, which matches the interpreter and the
    verifier's symbolic execution order. *)

open Ast

type cfg = { expr : expr; heap : Heap.t }

type outcome = Done of value * Heap.t | Next of cfg | Stuck of string

let stuck fmt = Fmt.kstr (fun s -> Stuck s) fmt

(** The interleaving scheduler: a seeded splitmix64 stream of thread
    choices. Every [par] node with two runnable branches consults the
    stream once per machine step, so a run is a pure function of
    (program, seed) — replayable, and permutable by varying the seed.
    Without a scheduler the machine is deterministic left-first, which
    keeps the sequential semantics (and every existing test) intact. *)
module Sched = struct
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int seed }

  (* splitmix64 (Steele–Lea–Flood); small, stateless between calls,
     and good enough to exercise interleavings. *)
  let next_int64 (s : t) : int64 =
    s.state <- Int64.add s.state 0x9E3779B97F4A7C15L;
    let z = s.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (** A choice in [0, n). *)
  let pick (s : t) (n : int) : int =
    if n <= 1 then 0
    else
      Int64.to_int
        (Int64.rem
           (Int64.shift_right_logical (next_int64 s) 1)
           (Int64.of_int n))
end

let is_val = function Val _ -> true | _ -> false

(** Step budget for one atomic section: the body must terminate within
    one (indivisible) scheduler step, so it gets its own bound rather
    than competing with the surrounding run's fuel. *)
let atomic_fuel = 1_000_000

let eval_un_op op v =
  match (op, v) with
  | Neg, Int n -> Some (Int (-n))
  | Not, Bool b -> Some (Bool (not b))
  | _ -> None

let eval_bin_op op v1 v2 =
  match (op, v1, v2) with
  | Add, Int a, Int b -> Some (Int (a + b))
  | Sub, Int a, Int b -> Some (Int (a - b))
  | Mul, Int a, Int b -> Some (Int (a * b))
  | Div, Int a, Int b -> if b = 0 then None else Some (Int (a / b))
  | Rem, Int a, Int b -> if b = 0 then None else Some (Int (a mod b))
  | Eq, a, b -> Some (Bool (value_equal a b))
  | Ne, a, b -> Some (Bool (not (value_equal a b)))
  | Lt, Int a, Int b -> Some (Bool (a < b))
  | Le, Int a, Int b -> Some (Bool (a <= b))
  | Gt, Int a, Int b -> Some (Bool (a > b))
  | Ge, Int a, Int b -> Some (Bool (a >= b))
  | AndOp, Bool a, Bool b -> Some (Bool (a && b))
  | OrOp, Bool a, Bool b -> Some (Bool (a || b))
  | _ -> None

(** One step. Structured as: try a head reduction; otherwise descend
    into the leftmost non-value subterm. [sched] interleaves [Par]
    branches; without it the machine is deterministic left-first. *)
let rec step ?sched ({ expr; heap } as cfg : cfg) : outcome =
  let ret e h = Next { expr = e; heap = h } in
  let descend wrap e =
    match step ?sched { cfg with expr = e } with
    | Next c -> Next { c with expr = wrap c.expr }
    | Done (v, h) -> Next { expr = wrap (Val v); heap = h }
    | Stuck m -> Stuck m
  in
  match expr with
  | Val v -> Done (v, heap)
  | Var x -> stuck "unbound variable %s" x
  | Rec (f, x, e) -> ret (Val (RecV (f, x, e))) heap
  | App (Val (RecV (f, x, body) as clo), Val arg) ->
      let body = Subst.subst x arg body in
      let body =
        match f with Some f -> Subst.subst f clo body | None -> body
      in
      ret body heap
  | App (Val v, Val _) -> stuck "applied non-function %a" pp_value v
  | App ((Val _ as f), a) -> descend (fun a -> App (f, a)) a
  | App (f, a) -> descend (fun f -> App (f, a)) f
  | UnOp (op, Val v) -> (
      match eval_un_op op v with
      | Some v -> ret (Val v) heap
      | None -> stuck "bad unary operand %a" pp_value v)
  | UnOp (op, e) -> descend (fun e -> UnOp (op, e)) e
  | BinOp (op, Val v1, Val v2) -> (
      match eval_bin_op op v1 v2 with
      | Some v -> ret (Val v) heap
      | None ->
          stuck "bad binary operands %a %a %a" pp_value v1 pp_bin_op op
            pp_value v2)
  | BinOp (op, (Val _ as a), b) -> descend (fun b -> BinOp (op, a, b)) b
  | BinOp (op, a, b) -> descend (fun a -> BinOp (op, a, b)) a
  | If (Val (Bool true), a, _) -> ret a heap
  | If (Val (Bool false), _, b) -> ret b heap
  (* Untyped machine: integers act as booleans (0 = false) and as
     addresses, matching the logic's first-order encoding. *)
  | If (Val (Int n), a, b) -> ret (if n <> 0 then a else b) heap
  | If (Val v, _, _) -> stuck "if on non-boolean %a" pp_value v
  | If (c, a, b) -> descend (fun c -> If (c, a, b)) c
  | Let (x, Val v, body) -> ret (Subst.subst x v body) heap
  | Let (x, e, body) -> descend (fun e -> Let (x, e, body)) e
  | Seq (Val _, b) -> ret b heap
  | Seq (a, b) -> descend (fun a -> Seq (a, b)) a
  | While (c, body) ->
      (* Unfold: if c then (body; while c do body) else (). *)
      ret (If (c, Seq (body, While (c, body)), Val Unit)) heap
  | PairE (Val a, Val b) -> ret (Val (Pair (a, b))) heap
  | PairE ((Val _ as a), b) -> descend (fun b -> PairE (a, b)) b
  | PairE (a, b) -> descend (fun a -> PairE (a, b)) a
  | Fst (Val (Pair (a, _))) -> ret (Val a) heap
  | Fst (Val v) -> stuck "fst of %a" pp_value v
  | Fst e -> descend (fun e -> Fst e) e
  | Snd (Val (Pair (_, b))) -> ret (Val b) heap
  | Snd (Val v) -> stuck "snd of %a" pp_value v
  | Snd e -> descend (fun e -> Snd e) e
  | InjLE (Val v) -> ret (Val (InjL v)) heap
  | InjLE e -> descend (fun e -> InjLE e) e
  | InjRE (Val v) -> ret (Val (InjR v)) heap
  | InjRE e -> descend (fun e -> InjRE e) e
  | Case (Val (InjL v), (x, l), _) -> ret (Subst.subst x v l) heap
  | Case (Val (InjR v), _, (y, r)) -> ret (Subst.subst y v r) heap
  | Case (Val v, _, _) -> stuck "case on %a" pp_value v
  | Case (e, l, r) -> descend (fun e -> Case (e, l, r)) e
  | Alloc (Val v) ->
      let heap, l = Heap.alloc heap v in
      ret (Val (Loc l)) heap
  | Alloc e -> descend (fun e -> Alloc e) e
  | Load (Val (Int l)) when l >= 0 -> step ?sched { cfg with expr = Load (Val (Loc l)) }
  | Load (Val (Loc l)) -> (
      match Heap.lookup heap l with
      | Some v -> ret (Val v) heap
      | None -> stuck "load from dangling #%d" l)
  | Load (Val v) -> stuck "load from non-location %a" pp_value v
  | Load e -> descend (fun e -> Load e) e
  | Store (Val (Int l), (Val _ as v)) when l >= 0 ->
      step ?sched { cfg with expr = Store (Val (Loc l), v) }
  | Store (Val (Loc l), Val v) -> (
      match Heap.store heap l v with
      | Some heap -> ret (Val Unit) heap
      | None -> stuck "store to dangling #%d" l)
  | Store (Val v, Val _) -> stuck "store to non-location %a" pp_value v
  | Store ((Val _ as l), e) -> descend (fun e -> Store (l, e)) e
  | Store (l, e) -> descend (fun l -> Store (l, e)) l
  | Free (Val (Int l)) when l >= 0 -> step ?sched { cfg with expr = Free (Val (Loc l)) }
  | Free (Val (Loc l)) -> (
      match Heap.free heap l with
      | Some heap -> ret (Val Unit) heap
      | None -> stuck "free of dangling #%d" l)
  | Free (Val v) -> stuck "free of non-location %a" pp_value v
  | Free e -> descend (fun e -> Free e) e
  | Cas (Val (Int l), (Val _ as e1), (Val _ as e2)) when l >= 0 ->
      step ?sched { cfg with expr = Cas (Val (Loc l), e1, e2) }
  | Cas (Val (Loc l), Val expected, Val desired) -> (
      match Heap.lookup heap l with
      | None -> stuck "CAS on dangling #%d" l
      | Some current ->
          if value_equal current expected then
            match Heap.store heap l desired with
            | Some heap -> ret (Val (Bool true)) heap
            | None -> stuck "CAS store failed on #%d" l
          else ret (Val (Bool false)) heap)
  | Cas ((Val _ as l), (Val _ as e1), e2) ->
      descend (fun e2 -> Cas (l, e1, e2)) e2
  | Cas ((Val _ as l), e1, e2) -> descend (fun e1 -> Cas (l, e1, e2)) e1
  | Cas (l, e1, e2) -> descend (fun l -> Cas (l, e1, e2)) l
  | Faa (Val (Int l), (Val (Int _) as d)) when l >= 0 ->
      step ?sched { cfg with expr = Faa (Val (Loc l), d) }
  | Faa (Val (Loc l), Val (Int d)) -> (
      match Heap.lookup heap l with
      | Some (Int old) -> (
          match Heap.store heap l (Int (old + d)) with
          | Some heap -> ret (Val (Int old)) heap
          | None -> stuck "FAA store failed on #%d" l)
      | Some v -> stuck "FAA on non-integer %a" pp_value v
      | None -> stuck "FAA on dangling #%d" l)
  | Faa ((Val _ as l), e) -> descend (fun e -> Faa (l, e)) e
  | Faa (l, e) -> descend (fun l -> Faa (l, e)) l
  | Assert (Val (Bool true)) -> ret (Val Unit) heap
  | Assert (Val (Int n)) when n <> 0 -> ret (Val Unit) heap
  | Assert (Val v) -> stuck "assertion failure (%a)" pp_value v
  | Assert e -> descend (fun e -> Assert e) e
  | GhostMark _ -> ret (Val Unit) heap
  | Par (Val _, Val _) -> ret (Val Unit) heap
  | Par (e1, e2) ->
      (* Fork-join: when both branches can still run, the scheduler
         picks the one to step; left-first without a scheduler. *)
      let go_left =
        if is_val e1 then false
        else if is_val e2 then true
        else
          match sched with Some s -> Sched.pick s 2 = 0 | None -> true
      in
      if go_left then descend (fun e1 -> Par (e1, e2)) e1
      else descend (fun e2 -> Par (e1, e2)) e2
  | Atomic (Val v) -> ret (Val v) heap
  | Atomic e ->
      (* The body runs to a value within this one machine step: no
         sibling thread is scheduled while it executes. *)
      let rec go n c =
        if n <= 0 then stuck "atomic section exceeded its step budget"
        else
          match step ?sched c with
          | Done (v, h) -> ret (Val v) h
          | Next c -> go (n - 1) c
          | Stuck m -> Stuck m
      in
      go atomic_fuel { expr = e; heap }

type run_result = Value of value * Heap.t | Error of string | Timeout

(** Run to a value with a step budget, from a given initial heap.
    [seed] enables the interleaving scheduler. *)
let run_from ?(fuel = 1_000_000) ?seed (heap : Heap.t) (e : expr) :
    run_result =
  let sched = Option.map (fun seed -> Sched.create ~seed) seed in
  let rec go fuel cfg =
    if fuel <= 0 then Timeout
    else
      match step ?sched cfg with
      | Done (v, h) -> Value (v, h)
      | Next cfg -> go (fuel - 1) cfg
      | Stuck m -> Error m
  in
  go fuel { expr = e; heap }

(** Run to a value with a step budget. *)
let run ?(fuel = 1_000_000) ?seed (e : expr) : run_result =
  run_from ~fuel ?seed Heap.empty e
