(** A big-step, environment-based interpreter.

    Much faster than iterating {!Step.step} (no substitution traffic);
    the test suite checks it agrees with the small-step semantics on
    randomly generated programs. Uses its own closure representation
    internally and converts at the boundary. *)

open Ast

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type state = { mutable heap : value Stdx.Smap.t; mutable next : int }
(* Keys are printed locations; a mutable map keeps the interpreter
   simple while remaining observationally equivalent to {!Heap}. *)

let key l = string_of_int l

let create_state () = { heap = Stdx.Smap.empty; next = 0 }

(* Conversions to/from the persistent {!Heap}: a [par] node is handed
   to the small-step machine (the only semantics that can interleave),
   which runs it on the shared heap and hands the result back. *)
let to_heap (st : state) : Heap.t =
  {
    Heap.cells =
      Stdx.Smap.fold
        (fun k v m -> Heap.Imap.add (int_of_string k) v m)
        st.heap Heap.Imap.empty;
    next = st.next;
  }

let of_heap (st : state) (h : Heap.t) : unit =
  st.heap <-
    List.fold_left
      (fun m (l, v) -> Stdx.Smap.add (key l) v m)
      Stdx.Smap.empty (Heap.bindings h);
  st.next <- h.Heap.next

type env = (string * value) list

let rec eval ?sched (st : state) (env : env) (e : expr) ~fuel : value =
  if !fuel <= 0 then error "out of fuel";
  decr fuel;
  let ev = eval ?sched st ~fuel in
  let as_loc = function Loc l -> Some l | Int l when l >= 0 -> Some l | _ -> None in
  match e with
  | Val v -> v
  | Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> error "unbound variable %s" x)
  | Rec (f, x, body) ->
      (* Close over the environment by substituting it away, keeping
         the substitution-based value representation. *)
      let body' =
        List.fold_left
          (fun b (y, v) ->
            if Some y = f || String.equal y x then b else Subst.subst y v b)
          body env
      in
      RecV (f, x, body')
  | App (ef, ea) -> (
      let fv = ev env ef in
      let av = ev env ea in
      match fv with
      | RecV (f, x, body) ->
          let env' = (x, av) :: (match f with Some f -> [ (f, fv) ] | None -> []) in
          eval ?sched st env' body ~fuel
      | v -> error "applied non-function %a" pp_value v)
  | UnOp (op, e1) -> (
      let v = ev env e1 in
      match Step.eval_un_op op v with
      | Some v -> v
      | None -> error "bad unary operand %a" pp_value v)
  | BinOp (op, e1, e2) -> (
      let v1 = ev env e1 in
      let v2 = ev env e2 in
      match Step.eval_bin_op op v1 v2 with
      | Some v -> v
      | None -> error "bad binary operands")
  | If (c, a, b) -> (
      match ev env c with
      | Bool true -> ev env a
      | Bool false -> ev env b
      | Int n -> if n <> 0 then ev env a else ev env b
      | v -> error "if on non-boolean %a" pp_value v)
  | Let (x, e1, e2) ->
      let v = ev env e1 in
      eval ?sched st ((x, v) :: env) e2 ~fuel
  | Seq (a, b) ->
      ignore (ev env a);
      ev env b
  | While (c, body) -> (
      let truthy =
        match ev env c with
        | Bool b -> b
        | Int n -> n <> 0
        | v -> error "while on non-boolean %a" pp_value v
      in
      if truthy then begin
        ignore (ev env body);
        eval ?sched st env (While (c, body)) ~fuel
      end
      else Unit)
  | PairE (a, b) ->
      let va = ev env a in
      let vb = ev env b in
      Pair (va, vb)
  | Fst e1 -> (
      match ev env e1 with Pair (a, _) -> a | v -> error "fst of %a" pp_value v)
  | Snd e1 -> (
      match ev env e1 with Pair (_, b) -> b | v -> error "snd of %a" pp_value v)
  | InjLE e1 -> InjL (ev env e1)
  | InjRE e1 -> InjR (ev env e1)
  | Case (e1, (x, l), (y, r)) -> (
      match ev env e1 with
      | InjL v -> eval ?sched st ((x, v) :: env) l ~fuel
      | InjR v -> eval ?sched st ((y, v) :: env) r ~fuel
      | v -> error "case on %a" pp_value v)
  | Alloc e1 ->
      let v = ev env e1 in
      let l = st.next in
      st.next <- l + 1;
      st.heap <- Stdx.Smap.add (key l) v st.heap;
      Loc l
  | Load e1 -> (
      match as_loc (ev env e1) with
      | Some l -> (
          match Stdx.Smap.find_opt (key l) st.heap with
          | Some v -> v
          | None -> error "load from dangling #%d" l)
      | None -> error "load from non-location")
  | Store (e1, e2) -> (
      match as_loc (ev env e1) with
      | Some l ->
          let v = ev env e2 in
          if Stdx.Smap.mem (key l) st.heap then begin
            st.heap <- Stdx.Smap.add (key l) v st.heap;
            Unit
          end
          else error "store to dangling #%d" l
      | None -> error "store to non-location")
  | Free e1 -> (
      match as_loc (ev env e1) with
      | Some l ->
          if Stdx.Smap.mem (key l) st.heap then begin
            st.heap <- Stdx.Smap.remove (key l) st.heap;
            Unit
          end
          else error "free of dangling #%d" l
      | None -> error "free of non-location")
  | Cas (e1, e2, e3) -> (
      match as_loc (ev env e1) with
      | Some l -> (
          let expected = ev env e2 in
          let desired = ev env e3 in
          match Stdx.Smap.find_opt (key l) st.heap with
          | None -> error "CAS on dangling #%d" l
          | Some current ->
              if value_equal current expected then begin
                st.heap <- Stdx.Smap.add (key l) desired st.heap;
                Bool true
              end
              else Bool false)
      | None -> error "CAS on non-location")
  | Faa (e1, e2) -> (
      match as_loc (ev env e1) with
      | Some l -> (
          let d =
            match ev env e2 with
            | Int d -> d
            | v -> error "FAA delta %a" pp_value v
          in
          match Stdx.Smap.find_opt (key l) st.heap with
          | Some (Int old) ->
              st.heap <- Stdx.Smap.add (key l) (Int (old + d)) st.heap;
              Int old
          | Some v -> error "FAA on non-integer %a" pp_value v
          | None -> error "FAA on dangling #%d" l)
      | None -> error "FAA on non-location")
  | GhostMark _ -> Unit
  | Assert e1 -> (
      match ev env e1 with
      | Bool true -> Unit
      | Int n when n <> 0 -> Unit
      | v -> error "assertion failure (%a)" pp_value v)
  | Atomic e1 ->
      (* In a big-step (single-thread) context there is nothing to be
         atomic against; inside a [par] the small-step machine below
         owns the whole subtree and enforces indivisibility itself. *)
      ev env e1
  | Par (_, _) ->
      (* Only the small-step machine can interleave: close the node
         over the environment, hand it the shared heap, and charge the
         steps it takes against our own fuel. The scheduler stream is
         shared, so a program with several [par] sections draws its
         choices from one seeded sequence. *)
      let closed =
        List.fold_left (fun e' (x, v) -> Subst.subst x v e') e env
      in
      let rec go c =
        if !fuel <= 0 then error "out of fuel"
        else begin
          decr fuel;
          match Step.step ?sched c with
          | Step.Done (v, h) -> (v, h)
          | Step.Next c -> go c
          | Step.Stuck m -> error "%s" m
        end
      in
      let v, h = go { Step.expr = closed; heap = to_heap st } in
      of_heap st h;
      v

type result = Value of value | Error of string | Timeout

let run ?(fuel = 10_000_000) ?seed (e : expr) : result =
  let st = create_state () in
  let fuel = ref fuel in
  let sched = Option.map (fun seed -> Step.Sched.create ~seed) seed in
  match eval ?sched st [] e ~fuel with
  | v -> Value v
  | exception Runtime_error "out of fuel" -> Timeout
  | exception Runtime_error m -> Error m
