(** A recursive-descent parser for the surface syntax: expressions,
    specification assertions, and whole annotated programs.

    Expression grammar (lowest to highest precedence):
    {v
    expr    ::= "let" x "=" expr "in" expr
              | "fun" x "->" expr | "rec" f x "->" expr
              | "if" expr "then" expr "else" expr
              | "while" expr ("invariant" assertion)? "do" expr "done"
              | "match" expr "with" "|"? "inl" x "->" expr
                                   "|" "inr" y "->" expr "end"
              | seq
    seq     ::= assign (";" expr)?            — right-associated
    assign  ::= disj ("<-" disj)?             — store
    disj    ::= conj ("||" conj)*
    conj    ::= cmp ("&&" cmp)*
    cmp     ::= arith (("=="|"!="|"<"|"<="|">"|">=") arith)?
    arith   ::= term (("+"|"-") term)*
    term    ::= prefix (("*"|"/"|"%") prefix)*
    prefix  ::= "!" prefix | "-" prefix | app
    app     ::= atom atom*                    — application, also the
                keyword applications ref/free/assert/fst/snd/inl/inr
    atom    ::= int | "true" | "false" | "(" ")" | ident | ?sym
              | "ghost" ident ("{" gcmds "}")?   — block only in programs
              | "CAS" "(" expr "," expr "," expr ")"
              | "FAA" "(" expr "," expr ")"
              | "par" "{" expr "}" "{" expr "}"  — structured fork-join
              | "atomic" "{" expr "}"            — atomic section
              | "(" expr ("," expr)? ")"
    v}

    The specification grammar (assertions, spec terms, ghost commands)
    and the program grammar (predicate / procedure items) are
    documented in {!Surface}. The parser produces plain {!Ast.expr}
    for code and located {!Surface} trees for specifications; loop
    [invariant] annotations and [ghost key { … }] blocks are collected
    per procedure and keyed by the physical [While] node / the ghost
    mark, exactly as the verifier expects them.

    Errors ({!Parse_error}, {!Lexer.Lex_error}) carry a {!Stdx.Loc.t}
    source span (file, 1-based line and column) rather than a raw byte
    offset. *)

open Stdx
open Ast

exception Parse_error of string * Loc.t

let fail_at span fmt = Fmt.kstr (fun m -> raise (Parse_error (m, span))) fmt

type state = {
  mutable toks : (Lexer.token * Loc.t) list;
  mutable last_span : Loc.t;  (** span of the most recently consumed token *)
  in_program : bool;
      (** whether spec annotations (loop invariants, ghost blocks) are
          legal — true only under {!parse_program} *)
  mutable invs : (Ast.expr * Surface.assertion) list;
      (** collected loop invariants, keyed by the physical While node *)
  mutable ghosts : (string * Surface.ghost_cmd list * Loc.t) list;
      (** collected ghost command blocks, keyed by the mark *)
}

let mk_state ?(in_program = false) toks =
  { toks; last_span = Loc.dummy; in_program; invs = []; ghosts = [] }

let peek st =
  match st.toks with [] -> (Lexer.EOF, Loc.dummy) | t :: _ -> t

(** The token after the next one — one-token lookahead past [peek],
    used to tell a predicate application [p(…)] from a points-to whose
    left-hand side is the variable [p]. *)
let peek2 st =
  match st.toks with
  | _ :: t :: _ -> t
  | _ -> (Lexer.EOF, Loc.dummy)

let here st = snd (peek st)

let advance st =
  match st.toks with
  | [] -> ()
  | (_, span) :: rest ->
      st.last_span <- span;
      st.toks <- rest

let expect st tok what =
  let t, span = peek st in
  if t = tok then advance st
  else fail_at span "expected %s, found %a" what Lexer.pp_token t

let expect_ident st what =
  match peek st with
  | Lexer.IDENT x, _ ->
      advance st;
      x
  | t, span -> fail_at span "expected %s, found %a" what Lexer.pp_token t

let expect_int st what =
  match peek st with
  | Lexer.INT n, _ ->
      advance st;
      n
  | t, span -> fail_at span "expected %s, found %a" what Lexer.pp_token t

let bin_of_string = function
  | "+" -> Add
  | "-" -> Sub
  | "*" -> Mul
  | "/" -> Div
  | "%" -> Rem
  | "==" -> Eq
  | "!=" -> Ne
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | "&&" -> AndOp
  | "||" -> OrOp
  | s -> invalid_arg ("bin_of_string: " ^ s)

(* ================================================================== *)
(* Specification terms *)

(* [allow_star] disables "*" (multiplication) at the factor level so
   that points-to operands do not swallow a following separating
   conjunction; inside "[ … ]", "( … )" and predicate arguments the
   full grammar (including "*") applies. Division and remainder have
   no solver-term encoding, so the spec grammar rejects them. *)

let mk_term t tspan : Surface.term = { Surface.t; tspan }

let rec sterm st : Surface.term = sdisj ~allow_star:true st

and sdisj ~allow_star st =
  let rec go (acc : Surface.term) =
    match peek st with
    | Lexer.OP "||", _ ->
        advance st;
        let rhs = sconj ~allow_star st in
        go
          (mk_term
             (Surface.TBin (OrOp, acc, rhs))
             (Loc.union acc.Surface.tspan rhs.Surface.tspan))
    | _ -> acc
  in
  go (sconj ~allow_star st)

and sconj ~allow_star st =
  let rec go (acc : Surface.term) =
    match peek st with
    | Lexer.OP "&&", _ ->
        advance st;
        let rhs = scmp ~allow_star st in
        go
          (mk_term
             (Surface.TBin (AndOp, acc, rhs))
             (Loc.union acc.Surface.tspan rhs.Surface.tspan))
    | _ -> acc
  in
  go (scmp ~allow_star st)

and scmp ~allow_star st =
  let lhs = sarith ~allow_star st in
  match peek st with
  | Lexer.OP o, _ when List.mem o [ "=="; "!="; "<"; "<="; ">"; ">=" ] ->
      advance st;
      let rhs = sarith ~allow_star st in
      mk_term
        (Surface.TBin (bin_of_string o, lhs, rhs))
        (Loc.union lhs.Surface.tspan rhs.Surface.tspan)
  | _ -> lhs

and sarith ~allow_star st =
  let rec go (acc : Surface.term) =
    match peek st with
    | Lexer.OP (("+" | "-") as o), _ ->
        advance st;
        let rhs = sfactor ~allow_star st in
        go
          (mk_term
             (Surface.TBin (bin_of_string o, acc, rhs))
             (Loc.union acc.Surface.tspan rhs.Surface.tspan))
    | _ -> acc
  in
  go (sfactor ~allow_star st)

and sfactor ~allow_star st =
  let rec go (acc : Surface.term) =
    match peek st with
    | Lexer.OP "*", _ when allow_star ->
        advance st;
        let rhs = sprefix ~allow_star st in
        go
          (mk_term
             (Surface.TBin (Mul, acc, rhs))
             (Loc.union acc.Surface.tspan rhs.Surface.tspan))
    | Lexer.OP (("/" | "%") as o), span ->
        fail_at span
          "'%s' has no specification-term encoding (the solver terms \
           are linear integer arithmetic)" o
    | _ -> acc
  in
  go (sprefix ~allow_star st)

and sprefix ~allow_star st : Surface.term =
  match peek st with
  | Lexer.BANG, span ->
      advance st;
      let t = sprefix ~allow_star st in
      mk_term (Surface.TDeref t) (Loc.union span t.Surface.tspan)
  | Lexer.OP "-", span ->
      advance st;
      let t = sprefix ~allow_star st in
      mk_term (Surface.TNeg t) (Loc.union span t.Surface.tspan)
  | _ -> satom st

and satom st : Surface.term =
  match peek st with
  | Lexer.INT n, span ->
      advance st;
      mk_term (Surface.TInt n) span
  | Lexer.KW "true", span ->
      advance st;
      mk_term (Surface.TBool true) span
  | Lexer.KW "false", span ->
      advance st;
      mk_term (Surface.TBool false) span
  | Lexer.IDENT x, span ->
      advance st;
      mk_term (Surface.TVar x) span
  | Lexer.LPAREN, lspan ->
      advance st;
      let t = sterm st in
      expect st Lexer.RPAREN "')'";
      { t with Surface.tspan = Loc.union lspan st.last_span }
  | t, span ->
      fail_at span "expected a specification term, found %a" Lexer.pp_token t

(* ================================================================== *)
(* Assertions *)

let mk_assert a aspan : Surface.assertion = { Surface.a; aspan }

let rec assertion st : Surface.assertion =
  let rec go (acc : Surface.assertion) =
    match peek st with
    | Lexer.OP "||", _ ->
        advance st;
        let rhs = asep st in
        go
          (mk_assert
             (Surface.AOr (acc, rhs))
             (Loc.union acc.Surface.aspan rhs.Surface.aspan))
    | _ -> acc
  in
  go (asep st)

and asep st : Surface.assertion =
  let lhs = aprim st in
  match peek st with
  | Lexer.OP "*", _ ->
      advance st;
      let rhs = asep st in
      (* right-nested, mirroring [Assertion.seps] *)
      mk_assert
        (Surface.ASep (lhs, rhs))
        (Loc.union lhs.Surface.aspan rhs.Surface.aspan)
  | _ -> lhs

and aprim st : Surface.assertion =
  match peek st with
  | Lexer.KW "emp", span ->
      advance st;
      mk_assert Surface.AEmp span
  | Lexer.LBRACKET, lspan ->
      advance st;
      let t = sterm st in
      expect st Lexer.RBRACKET "']' closing the pure assertion";
      mk_assert (Surface.APure t) (Loc.union lspan st.last_span)
  | Lexer.LSTAB, lspan ->
      advance st;
      let a = assertion st in
      expect st Lexer.RSTAB "'_|' closing the stabilization bracket";
      mk_assert (Surface.AStabilize a) (Loc.union lspan st.last_span)
  | Lexer.KW "exists", lspan ->
      advance st;
      let rec binders acc =
        match peek st with
        | Lexer.IDENT x, _ ->
            advance st;
            binders (x :: acc)
        | Lexer.DOT, _ ->
            advance st;
            List.rev acc
        | t, span ->
            fail_at span "expected a binder or '.', found %a" Lexer.pp_token
              t
      in
      let xs = binders [] in
      if xs = [] then fail_at lspan "exists needs at least one binder";
      let body = assertion st in
      mk_assert
        (Surface.AExists (xs, body))
        (Loc.union lspan body.Surface.aspan)
  | Lexer.LPAREN, _ ->
      let lspan = here st in
      advance st;
      let a = assertion st in
      expect st Lexer.RPAREN "')'";
      { a with Surface.aspan = Loc.union lspan st.last_span }
  | Lexer.IDENT p, pspan when fst (peek2 st) = Lexer.LPAREN ->
      (* predicate application *)
      advance st;
      advance st;
      let rec args acc =
        match peek st with
        | Lexer.RPAREN, _ ->
            advance st;
            List.rev acc
        | _ -> (
            let t = sterm st in
            match peek st with
            | Lexer.COMMA, _ ->
                advance st;
                args (t :: acc)
            | Lexer.RPAREN, _ ->
                advance st;
                List.rev (t :: acc)
            | tok, span ->
                fail_at span "expected ',' or ')', found %a" Lexer.pp_token
                  tok)
      in
      let ts = args [] in
      mk_assert (Surface.APred (p, ts)) (Loc.union pspan st.last_span)
  | _ ->
      (* points-to: term "|->" ("{" n "/" d "}")? term *)
      let lhs = sarith ~allow_star:false st in
      expect st Lexer.MAPSTO "'|->' (or a bracketed pure assertion)";
      let afrac =
        match peek st with
        | Lexer.LBRACE, _ ->
            advance st;
            let num = expect_int st "fraction numerator" in
            expect st (Lexer.OP "/") "'/'";
            let den = expect_int st "fraction denominator" in
            expect st Lexer.RBRACE "'}'";
            if den <= 0 || num <= 0 then
              fail_at st.last_span "fractions must be positive";
            Some { Surface.num; den }
        | _ -> None
      in
      let rhs = sarith ~allow_star:false st in
      mk_assert
        (Surface.APointsTo { alhs = lhs; afrac; arhs = rhs })
        (Loc.union lhs.Surface.tspan rhs.Surface.tspan)

(* ================================================================== *)
(* Ghost command blocks *)

let ghost_cmd st : Surface.ghost_cmd =
  let fold_like what =
    advance st;
    let p = expect_ident st "predicate name" in
    expect st Lexer.LPAREN "'('";
    let rec args acc =
      match peek st with
      | Lexer.RPAREN, _ ->
          advance st;
          List.rev acc
      | _ -> (
          let t = sterm st in
          match peek st with
          | Lexer.COMMA, _ ->
              advance st;
              args (t :: acc)
          | Lexer.RPAREN, _ ->
              advance st;
              List.rev (t :: acc)
          | tok, span ->
              fail_at span "expected ',' or ')', found %a" Lexer.pp_token tok)
    in
    (p, args [], what)
  in
  match peek st with
  | Lexer.KW "fold", _ ->
      let p, args, _ = fold_like `Fold in
      Surface.GFold (p, args)
  | Lexer.KW "unfold", _ ->
      let p, args, _ = fold_like `Unfold in
      Surface.GUnfold (p, args)
  | Lexer.KW "assert", _ ->
      advance st;
      Surface.GAssert (assertion st)
  | t, span ->
      fail_at span
        "expected a ghost command (fold / unfold / assert), found %a"
        Lexer.pp_token t

let ghost_block st key kspan =
  (* "{" already peeked *)
  let lspan = here st in
  advance st;
  let rec cmds acc =
    match peek st with
    | Lexer.RBRACE, _ ->
        advance st;
        List.rev acc
    | _ -> (
        let c = ghost_cmd st in
        match peek st with
        | Lexer.SEMI, _ ->
            advance st;
            cmds (c :: acc)
        | Lexer.RBRACE, _ ->
            advance st;
            List.rev (c :: acc)
        | t, span ->
            fail_at span "expected ';' or '}' in a ghost block, found %a"
              Lexer.pp_token t)
  in
  let block = cmds [] in
  if List.exists (fun (k, _, _) -> String.equal k key) st.ghosts then
    fail_at kspan "duplicate ghost block %S in this procedure" key;
  st.ghosts <-
    (key, block, Loc.union kspan st.last_span) :: st.ghosts;
  if not st.in_program then
    fail_at (Loc.union lspan st.last_span)
      "ghost command blocks are only allowed inside procedure bodies"

(* ================================================================== *)
(* Expressions *)

let rec expr st : expr =
  (* any construct may be followed by `; rest` *)
  let e = head st in
  match peek st with
  | Lexer.SEMI, _ ->
      advance st;
      Seq (e, expr st)
  | _ -> e

and head st : expr =
  match peek st with
  | Lexer.KW "let", _ ->
      advance st;
      let x = expect_ident st "binder" in
      expect st (Lexer.OP "=") "'='";
      let e1 = expr st in
      expect st (Lexer.KW "in") "'in'";
      let e2 = expr st in
      Let (x, e1, e2)
  | Lexer.KW "fun", _ ->
      advance st;
      let x = expect_ident st "parameter" in
      expect st Lexer.ARROW "'->'";
      Rec (None, x, expr st)
  | Lexer.KW "rec", _ ->
      advance st;
      let f = expect_ident st "function name" in
      let x = expect_ident st "parameter" in
      expect st Lexer.ARROW "'->'";
      Rec (Some f, x, expr st)
  | Lexer.KW "if", _ ->
      advance st;
      let c = expr st in
      expect st (Lexer.KW "then") "'then'";
      let a = head st in
      expect st (Lexer.KW "else") "'else'";
      let b = head st in
      If (c, a, b)
  | Lexer.KW "while", _ ->
      advance st;
      let c = expr st in
      let inv =
        match peek st with
        | Lexer.KW "invariant", span ->
            advance st;
            if not st.in_program then
              fail_at span
                "loop invariants are only allowed inside procedure bodies";
            Some (assertion st)
        | _ -> None
      in
      expect st (Lexer.KW "do") "'do'";
      let b = expr st in
      expect st (Lexer.KW "done") "'done'";
      let node = While (c, b) in
      (match inv with
      | Some a -> st.invs <- (node, a) :: st.invs
      | None -> ());
      node
  | Lexer.KW "match", _ ->
      advance st;
      let scrut = expr st in
      expect st (Lexer.KW "with") "'with'";
      (match peek st with
      | Lexer.BAR, _ -> advance st
      | _ -> ());
      expect st (Lexer.KW "inl") "'inl'";
      let x = expect_ident st "left binder" in
      expect st Lexer.ARROW "'->'";
      let e1 = expr st in
      expect st Lexer.BAR "'|'";
      expect st (Lexer.KW "inr") "'inr'";
      let y = expect_ident st "right binder" in
      expect st Lexer.ARROW "'->'";
      let e2 = expr st in
      expect st (Lexer.KW "end") "'end' closing the match";
      Case (scrut, (x, e1), (y, e2))
  | _ -> assign st

and assign st : expr =
  let e1 = disj st in
  match peek st with
  | Lexer.LARROW, _ ->
      advance st;
      Store (e1, disj st)
  | _ -> e1

and binlevel ops next st : expr =
  let rec go acc =
    match peek st with
    | Lexer.OP o, _ when List.mem o ops ->
        advance st;
        go (BinOp (bin_of_string o, acc, next st))
    | _ -> acc
  in
  go (next st)

and disj st = binlevel [ "||" ] conj st
and conj st = binlevel [ "&&" ] cmp st

and cmp st : expr =
  let e1 = arith st in
  match peek st with
  | Lexer.OP o, _ when List.mem o [ "=="; "!="; "<"; "<="; ">"; ">=" ] ->
      advance st;
      BinOp (bin_of_string o, e1, arith st)
  | _ -> e1

and arith st = binlevel [ "+"; "-" ] term st
and term st = binlevel [ "*"; "/"; "%" ] prefix st

and prefix st : expr =
  match peek st with
  | Lexer.BANG, _ ->
      advance st;
      Load (prefix st)
  | Lexer.OP "-", _ ->
      advance st;
      UnOp (Neg, prefix st)
  | _ -> app st

and app st : expr =
  match peek st with
  | Lexer.KW "ref", _ ->
      advance st;
      Alloc (atom st)
  | Lexer.KW "free", _ ->
      advance st;
      Free (atom st)
  | Lexer.KW "assert", _ ->
      advance st;
      Assert (atom st)
  | Lexer.KW "fst", _ ->
      advance st;
      Fst (atom st)
  | Lexer.KW "snd", _ ->
      advance st;
      Snd (atom st)
  | Lexer.KW "inl", _ ->
      advance st;
      InjLE (atom st)
  | Lexer.KW "inr", _ ->
      advance st;
      InjRE (atom st)
  | _ ->
      let rec go acc =
        match peek st with
        | (Lexer.INT _ | Lexer.IDENT _ | Lexer.SYM _ | Lexer.LPAREN
          | Lexer.KW ("true" | "false" | "ghost" | "CAS" | "FAA")), _ ->
            go (App (acc, atom st))
        | _ -> acc
      in
      go (atom st)

and atom st : expr =
  match peek st with
  | Lexer.INT n, _ ->
      advance st;
      Val (Int n)
  | Lexer.KW "true", _ ->
      advance st;
      Val (Bool true)
  | Lexer.KW "false", _ ->
      advance st;
      Val (Bool false)
  | Lexer.IDENT x, _ ->
      advance st;
      Var x
  | Lexer.SYM x, _ ->
      advance st;
      Val (Sym x)
  | Lexer.KW "ghost", _ ->
      advance st;
      let kspan = here st in
      let key = expect_ident st "ghost key" in
      (match peek st with
      | Lexer.LBRACE, _ -> ghost_block st key kspan
      | _ -> ());
      GhostMark key
  | Lexer.KW "CAS", _ ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let l = expr st in
      expect st Lexer.COMMA "','";
      let a = expr st in
      expect st Lexer.COMMA "','";
      let b = expr st in
      expect st Lexer.RPAREN "')'";
      Cas (l, a, b)
  | Lexer.KW "FAA", _ ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let l = expr st in
      expect st Lexer.COMMA "','";
      let d = expr st in
      expect st Lexer.RPAREN "')'";
      Faa (l, d)
  | Lexer.KW "par", _ ->
      advance st;
      expect st Lexer.LBRACE "'{' opening the left par branch";
      let e1 = expr st in
      expect st Lexer.RBRACE "'}' closing the left par branch";
      expect st Lexer.LBRACE "'{' opening the right par branch";
      let e2 = expr st in
      expect st Lexer.RBRACE "'}' closing the right par branch";
      Par (e1, e2)
  | Lexer.KW "atomic", _ ->
      advance st;
      expect st Lexer.LBRACE "'{' opening the atomic section";
      let e = expr st in
      expect st Lexer.RBRACE "'}' closing the atomic section";
      Atomic e
  | Lexer.LPAREN, _ -> (
      advance st;
      match peek st with
      | Lexer.RPAREN, _ ->
          advance st;
          Val Unit
      | _ -> (
          let e = expr st in
          match peek st with
          | Lexer.COMMA, _ ->
              advance st;
              let e2 = expr st in
              expect st Lexer.RPAREN "')'";
              PairE (e, e2)
          | _ ->
              expect st Lexer.RPAREN "')'";
              e))
  | t, span -> fail_at span "expected an expression, found %a" Lexer.pp_token t

(* ================================================================== *)
(* Annotated programs *)

let params_list st =
  expect st Lexer.LPAREN "'('";
  let rec go acc =
    match peek st with
    | Lexer.RPAREN, _ ->
        advance st;
        List.rev acc
    | Lexer.IDENT x, _ -> (
        advance st;
        match peek st with
        | Lexer.COMMA, _ ->
            advance st;
            go (x :: acc)
        | Lexer.RPAREN, _ ->
            advance st;
            List.rev (x :: acc)
        | t, span ->
            fail_at span "expected ',' or ')', found %a" Lexer.pp_token t)
    | t, span -> fail_at span "expected a parameter, found %a" Lexer.pp_token t
  in
  go []

let predicate_item st : Surface.pred =
  let pspan = here st in
  expect st (Lexer.KW "predicate") "'predicate'";
  let name = expect_ident st "predicate name" in
  let params = params_list st in
  expect st (Lexer.OP "=") "'='";
  let body = assertion st in
  {
    Surface.pr_name = name;
    pr_params = params;
    pr_body = body;
    pr_span = Loc.union pspan body.Surface.aspan;
  }

let invariant_item st : Surface.inv =
  let ispan = here st in
  expect st (Lexer.KW "invariant") "'invariant'";
  let name = expect_ident st "invariant name" in
  expect st Lexer.LBRACE "'{' opening the invariant body";
  let body = assertion st in
  expect st Lexer.RBRACE "'}' closing the invariant body";
  { Surface.i_name = name; i_body = body; i_span = Loc.union ispan st.last_span }

let procedure_item st : Surface.proc =
  let pspan = here st in
  expect st (Lexer.KW "procedure") "'procedure'";
  let name = expect_ident st "procedure name" in
  let params = params_list st in
  let requires = ref None and ensures = ref None in
  let rec clauses () =
    match peek st with
    | Lexer.KW "requires", span ->
        advance st;
        if !requires <> None then
          fail_at span "duplicate requires clause";
        requires := Some (assertion st);
        clauses ()
    | Lexer.KW "ensures", span ->
        advance st;
        if !ensures <> None then fail_at span "duplicate ensures clause";
        ensures := Some (assertion st);
        clauses ()
    | _ -> ()
  in
  clauses ();
  (* fresh collectors per procedure *)
  st.invs <- [];
  st.ghosts <- [];
  let bspan = here st in
  expect st Lexer.LBRACE "'{' opening the procedure body";
  let body = expr st in
  expect st Lexer.RBRACE "'}' closing the procedure body";
  let body_span = Loc.union bspan st.last_span in
  {
    Surface.p_name = name;
    p_params = params;
    p_requires = !requires;
    p_ensures = !ensures;
    p_body = body;
    p_invariants = List.rev st.invs;
    p_ghost = List.rev st.ghosts;
    p_body_span = body_span;
    p_span = Loc.union pspan st.last_span;
  }

(* ================================================================== *)
(* Entry points *)

let finish st (k : state -> 'a) : 'a =
  let v = k st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, span -> fail_at span "trailing input: %a" Lexer.pp_token t);
  v

(** Parse a complete expression (no spec annotations). *)
let parse ?file (src : string) : expr =
  let st = mk_state (Lexer.tokenize ?file src) in
  finish st expr

(** Parse a specification assertion. *)
let parse_assertion ?file (src : string) : Surface.assertion =
  let st = mk_state (Lexer.tokenize ?file src) in
  finish st assertion

(** Parse a specification term. *)
let parse_term ?file (src : string) : Surface.term =
  let st = mk_state (Lexer.tokenize ?file src) in
  finish st sterm

(** Parse a whole annotated program (predicates and procedures). *)
let parse_program ?file (src : string) : Surface.program =
  let st = mk_state ~in_program:true (Lexer.tokenize ?file src) in
  finish st (fun st ->
      let preds = ref [] and invs = ref [] and procs = ref [] in
      let rec items () =
        match peek st with
        | Lexer.KW "predicate", _ ->
            preds := predicate_item st :: !preds;
            items ()
        | Lexer.KW "invariant", _ ->
            invs := invariant_item st :: !invs;
            items ()
        | Lexer.KW "procedure", _ ->
            procs := procedure_item st :: !procs;
            items ()
        | Lexer.EOF, _ -> ()
        | t, span ->
            fail_at span
              "expected 'predicate', 'invariant' or 'procedure' at top \
               level, found %a"
              Lexer.pp_token t
      in
      items ();
      {
        Surface.prog_preds = List.rev !preds;
        prog_invs = List.rev !invs;
        prog_procs = List.rev !procs;
      })

(** Parse, raising [Failure] with a readable message on errors. *)
let parse_exn ?file src =
  try parse ?file src with
  | Parse_error (m, span) ->
      failwith (Fmt.str "parse error at %a: %s" Loc.pp span m)
  | Lexer.Lex_error (m, span) ->
      failwith (Fmt.str "lex error at %a: %s" Loc.pp span m)
