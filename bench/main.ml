(** The experiment harness: regenerates every table and figure of
    EXPERIMENTS.md (reconstructed from the paper's evaluation — see
    DESIGN.md for the mismatch notice and the experiment index).

    Run all:         dune exec bench/main.exe
    One experiment:  dune exec bench/main.exe -- table1 fig3
    Bechamel micro:  dune exec bench/main.exe -- micro *)

module A = Baselogic.Assertion
module K = Baselogic.Kernel
module T = Smt.Term
module V = Verifier.Exec
module P = Proofmode.Prove
module G = Suite.Generators
module Pr = Suite.Programs
module E = Engine

(* Wall-clock, not [Sys.time]: CPU time sums across domains and would
   over-report (and hide speedup) under the parallel engine. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ms t = t *. 1000.0

(* Flush per line so partial results survive interrupts. *)
let printf fmt = Printf.(kfprintf (fun oc -> flush oc) stdout fmt)
let _ = ignore printf

(** Verify a suite entry, collecting timing + stats. *)
let run_verifier ?heap_dep ?absint (prog : V.program) =
  Smt.Stats.reset ();
  let vstats = Verifier.Vstats.create () in
  let results, t =
    time (fun () -> V.verify ?heap_dep ?absint ~stats:vstats prog)
  in
  let ok = List.for_all (fun (_, o) -> o = V.Verified) results in
  (ok, t, Verifier.Vstats.copy vstats, Smt.Stats.snapshot ())

let run_baseline (b : Pr.baseline) =
  Smt.Stats.reset ();
  K.reset_rule_count ();
  let body = b.b_body in
  let r, t =
    time (fun () ->
        match
          P.prove_triple ~invariants:b.b_invs ~pre:b.b_pre body "result"
            b.b_post
        with
        | _ -> true
        | exception P.Tactic_error _ -> false
        | exception K.Rule_error _ -> false)
  in
  (r, t, K.rule_count (), Smt.Stats.snapshot ())

(* ------------------------------------------------------------------ *)
(* T1: the benchmark-suite table *)

let table1 () =
  printf "\n== Table 1: benchmark suite ==\n";
  printf
    "%-14s | %9s %6s %7s %7s | %9s %8s\n" "program" "auto(ms)" "oblig"
    "chunks" "queries" "base(ms)" "rules";
  printf "%s\n" (String.make 78 '-');
  List.iter
    (fun (e : Pr.entry) ->
      let ok, t, vs, ss = run_verifier e.prog in
      let base =
        match e.baseline with
        | Some b ->
            let ok_b, tb, rules, _ = run_baseline b in
            if ok_b then Printf.sprintf "%9.1f %8d" (ms tb) rules
            else "   failed        -"
        | None -> "        -        -"
      in
      printf "%-14s | %9.1f %6d %7d %7d | %s%s\n" e.name (ms t)
        vs.Verifier.Vstats.obligations vs.Verifier.Vstats.chunk_matches
        ss.Smt.Stats.queries base
        (if ok then "" else "   << verification failed"))
    Pr.positive

(* ------------------------------------------------------------------ *)
(* T2: solver breakdown *)

let table2 () =
  printf "\n== Table 2: solver breakdown per program ==\n";
  printf "%-14s | %7s %9s %9s %6s %7s %7s\n" "program" "queries"
    "theory-ck" "lia-ck" "euf" "blocked" "eqprop";
  printf "%s\n" (String.make 72 '-');
  List.iter
    (fun (e : Pr.entry) ->
      let _, _, _, ss = run_verifier e.prog in
      printf "%-14s | %7d %9d %9d %6d %7d %7d\n" e.name
        ss.Smt.Stats.queries ss.Smt.Stats.theory_checks ss.Smt.Stats.lia_checks
        ss.Smt.Stats.euf_checks ss.Smt.Stats.blocking_clauses
        ss.Smt.Stats.eq_propagations)
    Pr.positive

(* ------------------------------------------------------------------ *)
(* T3: stability / heap-dependence *)

let table3 () =
  printf "\n== Table 3: destabilization at work ==\n";
  printf "%-14s | %11s %10s | %s\n" "program" "resolutions"
    "stab-check" "stable-variant Δ(oblig)";
  printf "%s\n" (String.make 68 '-');
  List.iter
    (fun (e : Pr.entry) ->
      let _, _, vs, _ = run_verifier e.prog in
      let delta =
        match e.stable_variant with
        | Some sv ->
            let okv, _, vsv, _ = run_verifier sv in
            if okv then
              Printf.sprintf "%+d"
                (vsv.Verifier.Vstats.obligations - vs.Verifier.Vstats.obligations)
            else "stable variant failed"
        | None -> "-"
      in
      printf "%-14s | %11d %10d | %s\n" e.name
        vs.Verifier.Vstats.resolutions vs.Verifier.Vstats.stab_checks delta)
    Pr.positive

(* ------------------------------------------------------------------ *)
(* F1: scaling — straight-line programs, automated vs baseline *)

let fig1 () =
  printf "\n== Figure 1: straight-line scaling (auto vs baseline) ==\n";
  printf "%6s | %10s %10s | %10s %10s\n" "n" "auto(ms)" "queries"
    "base(ms)" "rules";
  printf "%s\n" (String.make 56 '-');
  List.iter
    (fun n ->
      let proc, base = G.straightline n in
      let prog = { V.procs = [ proc ]; preds = Stdx.Smap.empty; invs = [] } in
      let ok, t, _, ss = run_verifier prog in
      let ok_b, tb, rules, _ = run_baseline base in
      printf "%6d | %10.1f %10d | %10.1f %10d%s\n" n (ms t)
        ss.Smt.Stats.queries (ms tb) rules
        (if ok && ok_b then "" else "  << FAILED"))
    [ 2; 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* F2: scaling — symbolic-heap size *)

let fig2 () =
  printf "\n== Figure 2: symbolic-heap scaling (multicell) ==\n";
  printf "%6s | %10s %10s %10s\n" "k" "auto(ms)" "oblig" "chunks";
  printf "%s\n" (String.make 44 '-');
  List.iter
    (fun k ->
      let proc = G.multicell k in
      let prog = { V.procs = [ proc ]; preds = Stdx.Smap.empty; invs = [] } in
      let ok, t, vs, _ = run_verifier prog in
      printf "%6d | %10.1f %10d %10d%s\n" k (ms t)
        vs.Verifier.Vstats.obligations vs.Verifier.Vstats.chunk_matches
        (if ok then "" else "  << FAILED"))
    [ 2; 4; 8; 12; 16; 24 ]

(* ------------------------------------------------------------------ *)
(* F3: solver scaling *)

let fig3 () =
  printf "\n== Figure 3: solver scaling ==\n";
  printf "%-12s %6s | %10s %10s %10s\n" "family" "n" "time(ms)"
    "conflicts" "verdict";
  printf "%s\n" (String.make 56 '-');
  let run name n instance expected =
    Smt.Stats.reset ();
    let r, t = time (fun () -> Smt.Solver.check_sat instance) in
    let verdict =
      match r with
      | Smt.Solver.Sat _ -> "sat"
      | Smt.Solver.Unsat -> "unsat"
      | Smt.Solver.Unknown -> "unknown"
      | Smt.Solver.Resource_out _ -> "resource-out"
    in
    let ss = Smt.Stats.snapshot () in
    printf "%-12s %6d | %10.1f %10d %10s%s\n" name n (ms t)
      ss.Smt.Stats.sat_conflicts verdict
      (if String.equal verdict expected then "" else "  << UNEXPECTED")
  in
  List.iter (fun n -> run "pigeonhole" n (G.pigeonhole n) "unsat") [ 3; 4; 5; 6 ];
  List.iter (fun k -> run "euf-chain" k (G.euf_chain k) "unsat") [ 8; 16; 32; 48 ];
  List.iter (fun k -> run "lia-diamond" k (G.lia_diamond k) "sat") [ 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* A1: heap-dependent assertions on/off *)

let ablation_hd () =
  printf "\n== Ablation A1: heap-dependent assertions ==\n";
  printf "%-14s | %12s %12s | %s\n" "program" "hd-spec(ms)"
    "stable(ms)" "note";
  printf "%s\n" (String.make 64 '-');
  List.iter
    (fun (e : Pr.entry) ->
      match e.stable_variant with
      | None -> ()
      | Some sv ->
          let ok1, t1, _, _ = run_verifier e.prog in
          let ok2, t2, _, _ = run_verifier sv in
          (* The hd spec must fail when heap dependence is disabled. *)
          let ok3, _, _, _ = run_verifier ~heap_dep:false e.prog in
          printf "%-14s | %12.1f %12.1f | hd-off: %s%s\n" e.name (ms t1)
            (ms t2)
            (if ok3 then "verified (!)" else "rejected as expected")
            (if ok1 && ok2 then "" else "  << FAILED"))
    Pr.positive

(* ------------------------------------------------------------------ *)
(* A2: unsat-core minimization on/off *)

let ablation_cores () =
  printf "\n== Ablation A2: unsat-core minimization in the solver ==\n";
  printf "%-12s %6s | %12s %10s | %12s %10s\n" "family" "n" "min(ms)"
    "blocked" "nomin(ms)" "blocked";
  printf "%s\n" (String.make 72 '-');
  let run name n instance =
    let go minimize =
      Smt.Stats.reset ();
      let _, t = time (fun () -> Smt.Solver.check_sat ~minimize instance) in
      (t, (Smt.Stats.snapshot ()).Smt.Stats.blocking_clauses)
    in
    let t1, b1 = go true in
    let t2, b2 = go false in
    printf "%-12s %6d | %12.1f %10d | %12.1f %10d\n" name n (ms t1) b1
      (ms t2) b2
  in
  List.iter (fun k -> run "lia-diamond" k (G.lia_diamond k)) [ 6; 10; 14 ];
  List.iter (fun k -> run "euf-chain" k (G.euf_chain k)) [ 12; 16 ]

(* ------------------------------------------------------------------ *)
(* E1: parallel-engine scaling — wall time vs domains, cache on/off *)

let engine_scaling () =
  printf "\n== Engine scaling: wall time vs worker domains ==\n";
  printf "(host has %d core(s); re-verification workload = positive suite x %d)\n"
    (Domain.recommended_domain_count ()) 12;
  (* A realistic re-verification workload: every positive suite entry,
     repeated — repeats model incremental runs where most VCs recur,
     which is exactly what the content-addressed cache memoizes. *)
  let reps = 12 in
  let progs =
    List.concat_map
      (fun r ->
        List.map
          (fun (e : Pr.entry) -> (Printf.sprintf "%s#%d" e.name r, e.prog))
          Pr.positive)
      (List.init reps Fun.id)
  in
  printf "%7s %5s | %10s %8s | %9s %6s | %s\n" "domains" "cache" "wall(ms)"
    "speedup" "hit-rate" "steals" "solver(ms)/domain";
  printf "%s\n" (String.make 76 '-');
  let baseline = ref nan in
  List.iter
    (fun (domains, cache) ->
      let config = { E.default_config with E.domains; cache } in
      let report = E.verify_programs ~config progs in
      let s = report.E.stats in
      let ok = List.for_all E.group_ok report.E.groups in
      if domains = 1 && not cache then baseline := s.E.wall_ms;
      let hit_rate =
        if s.E.cache_hits + s.E.cache_misses = 0 then 0.0
        else
          100.0
          *. float_of_int s.E.cache_hits
          /. float_of_int (s.E.cache_hits + s.E.cache_misses)
      in
      printf "%7d %5s | %10.1f %7.2fx | %8.1f%% %6d | [%s]%s\n" domains
        (if cache then "on" else "off")
        s.E.wall_ms
        (!baseline /. s.E.wall_ms)
        hit_rate s.E.pool.E.Pool.steals
        (String.concat ","
           (List.map (Printf.sprintf "%.0f")
              (Array.to_list s.E.solver_ms_per_domain)))
        (if ok then "" else "  << FAILED"))
    [
      (1, false); (2, false); (4, false); (8, false);
      (1, true); (2, true); (4, true); (8, true);
    ]

(* ------------------------------------------------------------------ *)
(* E2: incremental sessions vs one-shot solving *)

(* Machine-readable results for --json: target -> (field, value). *)
let json_entries : (string * (string * float) list) list ref = ref []
let record_json name fields = json_entries := (name, fields) :: !json_entries

let write_json_list path entries =
  let oc = open_out path in
  let entry (name, fields) =
    Printf.sprintf "  %S: {%s}" name
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%S: %g" k v) fields))
  in
  Printf.fprintf oc "{\n%s\n}\n" (String.concat ",\n" (List.map entry entries));
  close_out oc;
  printf "wrote %s\n" path

let write_json path = write_json_list path (List.rev !json_entries)

(** --quick trims sizes so the target doubles as a CI smoke test. *)
let quick = ref false

(** --no-absint disables the abstract-interpretation pass (diagnostics
    + VC pre-discharge) — the A/B switch behind the corpus manifest
    invariance gate in dev/check.sh. *)
let no_absint = ref false

(** One-shot vs session latency on the F3 (euf-chain entailment) and
    F2 (multicell verification) workloads. The euf-chain rows compare
    [check_sat] on the full instance against a session asserting the
    same hypotheses and checking [False] on live theory state; the
    multicell rows run the whole verifier with sessions forced through
    the one-shot pipeline ({!Smt.Session.oneshot}) vs the incremental
    default. *)
let smt_incremental () =
  printf "\n== E2: incremental sessions vs one-shot ==\n";
  printf "%-12s %6s | %12s %12s %8s | %s\n" "workload" "n" "oneshot(ms)"
    "session(ms)" "speedup" "counters (session)";
  printf "%s\n" (String.make 78 '-');
  let sizes = if !quick then [ 16; 32 ] else [ 8; 16; 32; 48 ] in
  List.iter
    (fun n ->
      let instance = G.euf_chain n in
      Smt.Stats.reset ();
      let r1, t1 = time (fun () -> Smt.Solver.check_sat instance) in
      Smt.Stats.reset ();
      let r2, t2 =
        time (fun () ->
            let s = Smt.Session.create () in
            List.iter
              (fun h ->
                Smt.Session.push s;
                Smt.Session.assert_hyp s h)
              instance;
            Smt.Session.check_goal s T.fls)
      in
      let ss = Smt.Stats.snapshot () in
      let agree =
        match (r1, r2) with
        | Smt.Solver.Unsat, Smt.Solver.Valid -> true
        | Smt.Solver.Sat _, Smt.Solver.Invalid _ -> true
        | _ -> false
      in
      record_json
        (Printf.sprintf "euf_chain_%d" n)
        [
          ("oneshot_ms", ms t1);
          ("session_ms", ms t2);
          ("theory_checks", float_of_int ss.Smt.Stats.theory_checks);
          ("session_fallbacks", float_of_int ss.Smt.Stats.session_fallbacks);
        ];
      printf "%-12s %6d | %12.1f %12.2f %7.1fx | theory=%d fallbacks=%d%s\n"
        "euf-chain" n (ms t1) (ms t2) (t1 /. t2) ss.Smt.Stats.theory_checks
        ss.Smt.Stats.session_fallbacks
        (if agree then "" else "  << VERDICT MISMATCH"))
    sizes;
  let ks = if !quick then [ 8 ] else [ 8; 16; 24 ] in
  List.iter
    (fun k ->
      let prog = { V.procs = [ G.multicell k ]; preds = Stdx.Smap.empty; invs = [] } in
      (* Best of [reps] per mode: single verifier runs are short enough
         that scheduler noise would dominate a one-shot-vs-session
         comparison. *)
      let reps = if !quick then 1 else 3 in
      let best mode_oneshot =
        Smt.Session.oneshot := mode_oneshot;
        let r = ref None in
        for _ = 1 to reps do
          let ok, t, _, ss = run_verifier prog in
          match !r with
          | Some (_, t', _) when t' <= t -> ()
          | _ -> r := Some (ok, t, ss)
        done;
        Smt.Session.oneshot := false;
        Option.get !r
      in
      let ok1, t1, ss1 = best true in
      let ok2, t2, ss2 = best false in
      record_json
        (Printf.sprintf "multicell_%d" k)
        [
          ("oneshot_ms", ms t1);
          ("session_ms", ms t2);
          ("oneshot_queries", float_of_int ss1.Smt.Stats.queries);
          ("session_checks", float_of_int ss2.Smt.Stats.session_checks);
          ("session_fallbacks", float_of_int ss2.Smt.Stats.session_fallbacks);
        ];
      printf "%-12s %6d | %12.1f %12.1f %7.1fx | checks=%d fallbacks=%d%s\n"
        "multicell" k (ms t1) (ms t2) (t1 /. t2) ss2.Smt.Stats.session_checks
        ss2.Smt.Stats.session_fallbacks
        (if ok1 && ok2 then "" else "  << FAILED"))
    ks

(* ------------------------------------------------------------------ *)
(* A3: static-analysis overhead — lint cost next to solver cost *)

let lint_overhead () =
  printf "\n== Ablation A3: static-analysis (lint) overhead ==\n";
  printf "%-14s | %9s %9s %8s | %6s %6s\n" "program" "lint(ms)"
    "verify(ms)" "lint/ver" "diags" "errors";
  printf "%s\n" (String.make 62 '-');
  let total_lint = ref 0.0 and total_verify = ref 0.0 in
  List.iter
    (fun (e : Pr.entry) ->
      (* Best of 5: a single lint pass is microseconds and scheduler
         noise would swamp the ratio. *)
      let tl = ref infinity and ds = ref [] in
      for _ = 1 to 5 do
        let d, t = time (fun () -> Analysis.analyze_program ~name:e.name e.prog) in
        if t < !tl then tl := t;
        ds := d
      done;
      let _, tv, _, _ = run_verifier e.prog in
      total_lint := !total_lint +. !tl;
      total_verify := !total_verify +. tv;
      printf "%-14s | %9.3f %9.1f %7.4f%% | %6d %6d\n" e.name (ms !tl)
        (ms tv)
        (100.0 *. !tl /. tv)
        (List.length !ds)
        (List.length (Diag.errors !ds)))
    Pr.positive;
  printf "%s\n" (String.make 62 '-');
  printf "%-14s | %9.3f %9.1f %7.4f%%\n" "total" (ms !total_lint)
    (ms !total_verify)
    (100.0 *. !total_lint /. !total_verify)

(* ------------------------------------------------------------------ *)
(* R1: budget-polling overhead — the resilience acceptance target is
   that running the whole positive suite under an ambient (generous)
   deadline costs ≤2% over running it with no budget installed. *)

let budget_overhead () =
  printf "\n== R1: budget-polling overhead ==\n";
  let reps = if !quick then 3 else 7 in
  let sweep () =
    List.iter
      (fun (e : Pr.entry) ->
        let ok, _, _, _ = run_verifier e.prog in
        if not ok then failwith ("budget_overhead: " ^ e.name ^ " failed"))
      Pr.positive
  in
  (* Best-of-reps per mode: single sweeps are short enough that
     scheduler noise would swamp a ≤2% comparison. *)
  let best f =
    let t = ref infinity in
    for _ = 1 to reps do
      let _, dt = time f in
      if dt < !t then t := dt
    done;
    !t
  in
  ignore (best sweep) (* warm up: allocators, caches, code paths *);
  let t_bare = best sweep in
  let t_budget =
    best (fun () ->
        (* A deadline far beyond the sweep: every poll site pays the
           check, none ever fires. *)
        Stdx.Budget.with_budget
          (Stdx.Budget.create ~timeout_ms:600_000.0 ())
          sweep)
  in
  let overhead = 100.0 *. ((t_budget /. t_bare) -. 1.0) in
  record_json "budget_overhead"
    [
      ("bare_ms", ms t_bare);
      ("budget_ms", ms t_budget);
      ("overhead_pct", overhead);
    ];
  printf "%-18s %10s %12s %10s\n" "workload" "bare(ms)" "budget(ms)" "overhead";
  printf "%s\n" (String.make 54 '-');
  printf "%-18s %10.1f %12.1f %+9.2f%%%s\n" "positive suite" (ms t_bare)
    (ms t_budget) overhead
    (if overhead <= 2.0 then "" else "  << OVER TARGET (2%)")

(* ------------------------------------------------------------------ *)
(* A4: abstract-interpretation overhead — the acceptance target is
   that the absint pass (the interval×parity environment threaded
   through every [add_pure], plus the Valid-only pre-discharge attempt
   on every entailment) costs ≤2% wall clock over the positive suite
   against a run with the pass disabled. The pass also *saves* solver
   calls, so the net can come out negative. *)

let absint_overhead () =
  printf "\n== A4: abstract-interpretation overhead ==\n";
  (* The sweeps are tens of ms, so reps are cheap — and at that scale
     a single scheduler hiccup landing in one arm reads as percents of
     fake overhead, so buy the noise down with count. *)
  let reps = if !quick then 7 else 21 in
  let sweep absint () =
    List.iter
      (fun (e : Pr.entry) ->
        let ok, _, _, _ = run_verifier ~absint e.prog in
        if not ok then failwith ("absint_overhead: " ^ e.name ^ " failed"))
      Pr.positive
  in
  (* Interleaved A/B, best-of-reps (same methodology as the corpus
     bench): alternating off/on pairs cancel clock/GC drift that a
     block design would book as overhead. *)
  ignore (time (sweep false)) (* warm up: allocators, caches, code paths *);
  ignore (time (sweep true));
  let t_off = ref infinity and t_on = ref infinity in
  for _ = 1 to reps do
    let _, d_off = time (sweep false) in
    if d_off < !t_off then t_off := d_off;
    let _, d_on = time (sweep true) in
    if d_on < !t_on then t_on := d_on
  done;
  let t_off = !t_off and t_on = !t_on in
  (* How much the pass actually discharged on one instrumented sweep. *)
  let vstats = Verifier.Vstats.create () in
  List.iter
    (fun (e : Pr.entry) -> ignore (V.verify ~stats:vstats e.prog))
    Pr.positive;
  let overhead = 100.0 *. ((t_on /. t_off) -. 1.0) in
  record_json "absint_overhead"
    [
      ("off_ms", ms t_off);
      ("on_ms", ms t_on);
      ("overhead_pct", overhead);
      ( "absint_discharged",
        float_of_int vstats.Verifier.Vstats.absint_discharged );
      ( "absint_abstained",
        float_of_int vstats.Verifier.Vstats.absint_abstained );
    ];
  printf "%-18s %10s %12s %10s %16s\n" "workload" "off(ms)" "on(ms)"
    "overhead" "discharged";
  printf "%s\n" (String.make 72 '-');
  printf "%-18s %10.1f %12.1f %+9.2f%% %9d/%d%s\n" "positive suite"
    (ms t_off) (ms t_on) overhead
    vstats.Verifier.Vstats.absint_discharged
    (vstats.Verifier.Vstats.absint_discharged
    + vstats.Verifier.Vstats.absint_abstained)
    (if overhead <= 2.0 then "" else "  << OVER TARGET (2%)")

(* ------------------------------------------------------------------ *)
(* C1: the concurrent suite — per-scenario verification time and
   verdict invariance across scheduler seeds. The invariance check is
   load-bearing: a seed-dependent verdict would mean the symbolic
   executor skipped a par branch under some exploration order, which
   is a soundness bug, so the bench hard-fails rather than reporting
   a number. *)

let conc_suite () =
  printf "\n== C1: concurrent scenarios (par + named invariants) ==\n";
  let conc_names =
    [ "spinlock"; "ticket_lock"; "treiber"; "racy_incr"; "lock_noinv" ]
  in
  let entries =
    List.filter (fun (e : Pr.entry) -> List.mem e.name conc_names) Pr.all
  in
  let reps = if !quick then 3 else 11 in
  let seeds = if !quick then [ 0; 1; 2 ] else [ 0; 1; 2; 3; 7 ] in
  printf "%-14s %10s %10s %10s %12s\n" "entry" "best(ms)" "verdict"
    "expected" "seeds-agree";
  printf "%s\n" (String.make 60 '-');
  List.iter
    (fun (e : Pr.entry) ->
      let base = V.verify e.prog in
      let ok = List.for_all (fun (_, o) -> o = V.Verified) base in
      if ok = e.expect_fail then
        failwith ("conc_suite: " ^ e.name ^ " has the wrong polarity");
      let agree =
        List.for_all (fun seed -> V.verify ~seed e.prog = base) seeds
      in
      if not agree then
        failwith ("conc_suite: " ^ e.name ^ " verdicts depend on the seed");
      let t = ref infinity in
      for _ = 1 to reps do
        let _, d = time (fun () -> ignore (V.verify e.prog)) in
        if d < !t then t := d
      done;
      record_json ("conc_" ^ e.name)
        [ ("best_ms", ms !t); ("verified", if ok then 1.0 else 0.0) ];
      printf "%-14s %10.2f %10s %10s %12s\n" e.name (ms !t)
        (if ok then "verified" else "failed")
        (if e.expect_fail then "fail" else "verify")
        (Printf.sprintf "%d/%d" (List.length seeds) (List.length seeds)))
    entries;
  (* One instrumented sweep for the concurrency counters. *)
  let vstats = Verifier.Vstats.create () in
  List.iter
    (fun (e : Pr.entry) -> ignore (V.verify ~stats:vstats e.prog))
    entries;
  printf "counters: par=%d inv-opens=%d havocs=%d\n"
    vstats.Verifier.Vstats.par_branches vstats.Verifier.Vstats.inv_opens
    vstats.Verifier.Vstats.interference_havocs

(* ------------------------------------------------------------------ *)
(* S1: daemon throughput — cold vs warm cache at several worker counts *)

let percentile p lats =
  match lats with
  | [] -> nan
  | lats ->
      let a = Array.of_list lats in
      Array.sort compare a;
      let n = Array.length a in
      let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) i))

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let serve_json : (string * (string * float) list) list ref = ref []

(** One daemon per worker count, fresh socket + fresh disk-cache dir.
    The cold pass is a single client walking the whole suite once —
    every request misses the verdict cache and runs the verifier. The
    warm pass is [workers] concurrent clients each repeating the
    suite, so every request is a cache hit; its throughput is the
    daemon's ceiling (scheduler + wire + cache lookup, no solver). *)
let serve_throughput () =
  printf "\n== S1: daemon throughput — cold vs warm cache ==\n";
  let module SC = Server.Client in
  let module SP = Server.Protocol in
  let module SJ = Server.Json in
  let entries = List.map (fun (e : Pr.entry) -> e.Pr.name) Pr.all in
  let reps = if !quick then 2 else 15 in
  printf "(suite of %d entries; warm pass = one suite x %d per client)\n"
    (List.length entries) reps;
  printf "%7s %6s | %9s %9s %9s\n" "workers" "pass" "req/s" "p50(ms)"
    "p99(ms)";
  printf "%s\n" (String.make 50 '-');
  let run_config workers =
    let tmp = Filename.get_temp_dir_name () in
    let tag = Printf.sprintf "daenerys-bench-%d-j%d" (Unix.getpid ()) workers in
    let socket = Filename.concat tmp (tag ^ ".sock") in
    let cache_dir = Filename.concat tmp (tag ^ ".cache") in
    rm_rf cache_dir;
    rm_rf socket;
    let cfg =
      {
        Server.Daemon.default_config with
        Server.Daemon.socket_path = socket;
        workers;
        queue_bound = 256;
        cache_dir = Some cache_dir;
      }
    in
    let daemon = Domain.spawn (fun () -> Server.Daemon.run cfg) in
    let connect () =
      match SC.connect_retry ~attempts:200 ~delay:0.02 socket with
      | Ok c -> c
      | Error m -> failwith ("serve_throughput: connect: " ^ m)
    in
    let request c name =
      let t0 = Unix.gettimeofday () in
      let ok =
        match SC.rpc c (SP.verify_request (SP.Entry name)) with
        | Ok v -> Option.bind (SJ.member "ok" v) SJ.to_bool = Some true
        | Error _ -> false
      in
      ((Unix.gettimeofday () -. t0) *. 1000.0, ok)
    in
    let sweep c = List.map (request c) entries in
    (* Cold: single client, empty cache — every request verifies. *)
    let c0 = connect () in
    let cold, cold_wall = time (fun () -> sweep c0) in
    SC.close c0;
    (* Warm: [workers] concurrent clients, all requests cache hits. *)
    let warm, warm_wall =
      time (fun () ->
          List.init workers (fun _ ->
              Domain.spawn (fun () ->
                  let c = connect () in
                  let lats =
                    List.concat (List.init reps (fun _ -> sweep c))
                  in
                  SC.close c;
                  lats))
          |> List.concat_map Domain.join)
    in
    (* Degraded: the same warm daemon under seeded worker-crash and
       socket faults, driven by retrying session clients. Every
       request must still converge to an [ok] response; the column
       quantifies what supervision + retries cost against the warm
       ceiling. *)
    let degr, degr_wall =
      Stdx.Fault.configure ~seed:17
        [ (Stdx.Fault.Worker, 0.1); (Stdx.Fault.Socket, 0.05) ];
      Fun.protect ~finally:Stdx.Fault.clear (fun () ->
          time (fun () ->
              List.init workers (fun _ ->
                  Domain.spawn (fun () ->
                      let s =
                        SC.open_session
                          ~retry:
                            {
                              SC.attempts = 50;
                              base_delay_ms = 1.0;
                              max_delay_ms = 50.0;
                            }
                          socket
                      in
                      let one name =
                        let t0 = Unix.gettimeofday () in
                        let ok =
                          match
                            SC.request s (SP.verify_request (SP.Entry name))
                          with
                          | Ok v ->
                              Option.bind (SJ.member "ok" v) SJ.to_bool
                              = Some true
                          | Error _ -> false
                        in
                        ((Unix.gettimeofday () -. t0) *. 1000.0, ok)
                      in
                      let lats =
                        List.concat
                          (List.init reps (fun _ -> List.map one entries))
                      in
                      SC.close_session s;
                      lats))
              |> List.concat_map Domain.join))
    in
    let c = connect () in
    ignore (SC.rpc c (SP.shutdown_request ()));
    SC.close c;
    (match Domain.join daemon with
    | Ok () -> ()
    | Error m -> printf "  << daemon exit: %s\n" m);
    rm_rf cache_dir;
    let row pass lats wall =
      let ms_lats = List.map fst lats in
      let rps = float_of_int (List.length lats) /. wall in
      let p50 = percentile 50.0 ms_lats and p99 = percentile 99.0 ms_lats in
      printf "%7d %6s | %9.1f %9.2f %9.2f%s\n" workers pass rps p50 p99
        (if List.for_all snd lats then "" else "  << ERROR RESPONSES");
      [
        (pass ^ "_reqs_per_s", rps);
        (pass ^ "_p50_ms", p50);
        (pass ^ "_p99_ms", p99);
      ]
    in
    let cold_fields = row "cold" cold cold_wall in
    let warm_fields = row "warm" warm warm_wall in
    let degr_fields = row "degr" degr degr_wall in
    if not (List.for_all snd degr) then begin
      printf
        "FAIL: a request never converged under faults (the retrying \
         session must absorb worker=0.1,socket=0.05)\n";
      exit 1
    end;
    let ratio pass fields =
      match List.assoc_opt (pass ^ "_reqs_per_s") fields with
      | Some v when v > 0.0 -> v
      | _ -> nan
    in
    printf "  (degraded retains %.0f%% of warm req/s under \
            worker=0.1,socket=0.05,seed=17)\n"
      (100.0 *. ratio "degr" degr_fields /. ratio "warm" warm_fields);
    let fields = cold_fields @ warm_fields @ degr_fields in
    serve_json :=
      (Printf.sprintf "serve_j%d" workers, fields) :: !serve_json
  in
  List.iter run_config [ 1; 2; 4 ];
  write_json_list "BENCH_serve.json" (List.rev !serve_json)

(* ------------------------------------------------------------------ *)
(* S2: corpus-scale end-to-end throughput — procedures/second through
   the whole pipeline (elaborated spec -> VCs -> solver -> verdict) on
   a synthetic corpus of distinct procedures, at several worker
   counts, cold (empty VC cache) and warm (same cache, second pass). *)

(** --check compares the quick pass against the committed
    BENCH_corpus.json baseline (CI gate; fails loud on regression). *)
let check_baseline = ref false

let corpus_json : (string * (string * float) list) list ref = ref []

(* The committed-baseline tolerance: CI hosts differ from the machine
   that produced BENCH_corpus.json, so the gate only fails when quick
   throughput drops below this fraction of the committed number. *)
let corpus_tolerance = 0.30

let corpus_throughput () =
  printf "\n== S2: corpus throughput — procedures/second, cold vs warm ==\n";
  let module C = Suite.Corpus in
  let quick_size = 120 and full_size = 2000 in
  let gen size = C.generate ~seed:42 ~size in
  let failures = ref 0 in
  (* One shared cache per worker count: first pass is cold (every VC
     misses), second is warm (every VC hits). Verdicts must match the
     generator's expectations on every pass. *)
  let run_pass ~domains ~cache specs =
    let progs = List.map (fun (s : C.spec) -> (s.C.name, s.C.program)) specs in
    let config =
      {
        E.default_config with
        E.domains;
        cache = true;
        shared_cache = Some cache;
        absint = not !no_absint;
      }
    in
    let report = E.verify_programs ~config progs in
    let verdicts =
      List.map
        (fun (g : E.group_result) -> (g.E.group, not (E.group_ok g)))
        report.E.groups
    in
    List.iter2
      (fun (s : C.spec) (name, failed) ->
        if not (String.equal s.C.name name && Bool.equal s.C.expect_fail failed)
        then begin
          incr failures;
          printf "  << VERDICT MISMATCH: %s expected %s\n" s.C.name
            (if s.C.expect_fail then "failed" else "verified")
        end)
      specs verdicts;
    let wall_s = report.E.stats.E.wall_ms /. 1000.0 in
    (float_of_int report.E.stats.E.jobs /. wall_s, verdicts, report.E.stats)
  in
  printf "%6s %7s | %12s %12s | %s\n" "procs" "workers" "cold(p/s)"
    "warm(p/s)" "manifest";
  printf "%s\n" (String.make 64 '-');
  let run_config ~tag ~size domains =
    let specs = gen size in
    let cache = E.Vc_cache.create () in
    E.Vc_cache.install cache;
    let cold, verdicts, cold_stats, warm =
      Fun.protect
        ~finally:(fun () -> E.Vc_cache.uninstall ())
        (fun () ->
          let cold_pps, verdicts, cold_stats = run_pass ~domains ~cache specs in
          let warm_pps, _, _ = run_pass ~domains ~cache specs in
          (cold_pps, verdicts, cold_stats, warm_pps))
    in
    let digest = C.manifest_digest verdicts in
    (* A 16-bit digest prefix survives the %g float round-trip of the
       JSON writer; combined with the in-process expectation check it
       pins the golden manifest. *)
    let manifest16 = int_of_string ("0x" ^ String.sub digest 0 4) in
    let vs = cold_stats.E.vstats in
    printf "%6d %7d | %12.1f %12.1f | %s (absint %d/%d)\n" size domains cold
      warm digest vs.Verifier.Vstats.absint_discharged
      (vs.Verifier.Vstats.absint_discharged
      + vs.Verifier.Vstats.absint_abstained);
    corpus_json :=
      ( tag,
        [
          ("procs", float_of_int size);
          ("cold_procs_per_s", cold);
          ("warm_procs_per_s", warm);
          ("manifest16", float_of_int manifest16);
          ( "absint_discharged",
            float_of_int vs.Verifier.Vstats.absint_discharged );
          ( "absint_abstained",
            float_of_int vs.Verifier.Vstats.absint_abstained );
        ] )
      :: !corpus_json;
    (cold, manifest16)
  in
  if !quick then begin
    let cold, manifest16 = run_config ~tag:"corpus_quick_j2" ~size:quick_size 2 in
    if !check_baseline then begin
      let baseline =
        match
          let ic = open_in "BENCH_corpus.json" in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          Server.Json.parse s
        with
        | Ok json -> (
            match Server.Json.member "corpus_quick_j2" json with
            | Some row ->
                let field k =
                  Option.bind (Server.Json.member k row) Server.Json.to_num
                in
                (field "cold_procs_per_s", field "manifest16")
            | None -> (None, None))
        | Error m ->
            printf "  << cannot parse BENCH_corpus.json: %s\n" m;
            (None, None)
        | exception Sys_error m ->
            printf "  << cannot read BENCH_corpus.json: %s\n" m;
            (None, None)
      in
      match baseline with
      | Some base_pps, Some base_manifest ->
          if int_of_float base_manifest <> manifest16 then begin
            printf
              "FAIL: corpus verdict manifest drifted (committed %d, got %d)\n"
              (int_of_float base_manifest) manifest16;
            exit 1
          end;
          if cold < corpus_tolerance *. base_pps then begin
            printf
              "FAIL: corpus throughput regressed: %.1f p/s < %.0f%% of \
               committed %.1f p/s\n"
              cold (100.0 *. corpus_tolerance) base_pps;
            exit 1
          end;
          printf "baseline ok: %.1f p/s vs committed %.1f p/s (tol %.0f%%)\n"
            cold base_pps
            (100.0 *. corpus_tolerance)
      | _ ->
          printf "FAIL: BENCH_corpus.json lacks corpus_quick_j2 baseline\n";
          exit 1
    end
  end
  else begin
    ignore (run_config ~tag:"corpus_quick_j2" ~size:quick_size 2);
    List.iter
      (fun j ->
        ignore (run_config ~tag:(Printf.sprintf "corpus_j%d" j) ~size:full_size j))
      [ 1; 2; 4 ];
    write_json_list "BENCH_corpus.json" (List.rev !corpus_json)
  end;
  if !failures > 0 then begin
    printf "FAIL: %d corpus verdict mismatches\n" !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks *)

let micro () =
  printf "\n== Bechamel microbenchmarks ==\n%!";
  let open Bechamel in
  let open Toolkit in
  let swap_prog = Pr.swap.Pr.prog in
  let straight8, base8 = G.straightline 8 in
  let sprog = { V.procs = [ straight8 ]; preds = Stdx.Smap.empty; invs = [] } in
  let tests =
    [
      Test.make ~name:"verify-swap"
        (Staged.stage (fun () -> ignore (V.verify swap_prog)));
      Test.make ~name:"verify-straight8"
        (Staged.stage (fun () -> ignore (V.verify sprog)));
      Test.make ~name:"baseline-straight8"
        (Staged.stage (fun () -> ignore (run_baseline base8)));
      Test.make ~name:"smt-euf-chain64"
        (Staged.stage (fun () ->
             ignore (Smt.Solver.check_sat (G.euf_chain 64))));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  List.iter
    (fun t ->
      let results = analyze (benchmark t) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> printf "%-24s %12.1f ns/run\n%!" name est
          | _ -> printf "%-24s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("ablation_hd", ablation_hd);
    ("ablation_cores", ablation_cores);
    ("engine_scaling", engine_scaling);
    ("smt_incremental", smt_incremental);
    ("lint_overhead", lint_overhead);
    ("budget_overhead", budget_overhead);
    ("absint_overhead", absint_overhead);
    ("conc_suite", conc_suite);
    ("serve_throughput", serve_throughput);
    ("corpus_throughput", corpus_throughput);
    ("micro", micro);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json = List.mem "--json" args in
  quick := List.mem "--quick" args;
  check_baseline := List.mem "--check" args;
  no_absint := List.mem "--no-absint" args;
  let names =
    List.filter (fun a -> not (String.starts_with ~prefix:"--" a)) args
  in
  let selected =
    match names with
    | [] -> List.filter (fun (n, _) -> n <> "micro") experiments
    | names ->
        if List.mem "--help" args then begin
          printf
            "experiments: %s\nflags: --json (write BENCH_smt.json) --quick\n"
            (String.concat " " (List.map fst experiments));
          exit 0
        end;
        List.filter (fun (n, _) -> List.mem n names) experiments
  in
  printf "Daenerys-style verifier — experiment harness\n";
  printf "(reconstructed experiments; see DESIGN.md / EXPERIMENTS.md)\n";
  List.iter (fun (_, f) -> f ()) selected;
  if json then write_json "BENCH_smt.json"
