test/test_baselogic.mli:
