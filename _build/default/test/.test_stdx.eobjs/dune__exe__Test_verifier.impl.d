test/test_verifier.ml: Alcotest Baselogic Fmt Heaplang List Option Q Smap Smt Stdx Suite Verifier
