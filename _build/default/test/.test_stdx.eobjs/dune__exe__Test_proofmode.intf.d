test/test_proofmode.mli:
