test/test_heaplang.mli:
