test/test_proofmode.ml: Alcotest Baselogic Fmt Heaplang List Proofmode Smt
