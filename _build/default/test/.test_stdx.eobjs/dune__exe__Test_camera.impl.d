test/test_camera.ml: Agree Alcotest Auth Bool Camera Excl Fmt Frac Gmap Gset_disj Int List Max_nat Nat_add Option Option_ra Printf Prod Registry Stdx Sum Updates
