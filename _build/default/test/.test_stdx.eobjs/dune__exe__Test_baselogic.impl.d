test/test_baselogic.ml: Alcotest Baselogic Heaplang List Listx Q Smap Smt Stdx String
