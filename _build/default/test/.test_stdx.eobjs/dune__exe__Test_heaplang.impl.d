test/test_heaplang.ml: Alcotest Ast Fmt Heap Heaplang Interp List Parser QCheck QCheck_alcotest Step Subst Syntax
