test/test_smt.ml: Alcotest Array Cc Gen List Option Printf Q QCheck QCheck_alcotest Sat Simplex Smt Solver Stdx Suite Term
