test/test_stdx.ml: Alcotest Gensym List Listx Q QCheck QCheck_alcotest Stdx Union_find
