(** Tests for the utility substrate: rational arithmetic laws,
    union-find, and list helpers. *)

open Stdx

let qgen =
  QCheck.Gen.(
    map2
      (fun n d -> Q.mk n d)
      (int_range (-50) 50)
      (oneof [ int_range 1 12; int_range (-12) (-1) ]))

let arb_q = QCheck.make ~print:Q.to_string qgen

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let q_props =
  [
    prop "add-comm" 500
      (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a));
    prop "add-assoc" 500
      (QCheck.triple arb_q arb_q arb_q)
      (fun (a, b, c) ->
        Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c));
    prop "mul-distributes" 500
      (QCheck.triple arb_q arb_q arb_q)
      (fun (a, b, c) ->
        Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    prop "sub-inverse" 500
      (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.equal (Q.add (Q.sub a b) b) a);
    prop "compare-antisym" 500
      (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.compare a b = -Q.compare b a);
    prop "normalized" 500 arb_q (fun a ->
        Q.den a > 0 && (Q.num a = 0 || abs (Q.num a) > 0));
    prop "floor-le" 500 arb_q (fun a ->
        Q.leq (Q.of_int (Q.floor a)) a && Q.lt a (Q.of_int (Q.floor a + 1)));
    prop "ceil-ge" 500 arb_q (fun a ->
        Q.geq (Q.of_int (Q.ceil a)) a && Q.gt a (Q.of_int (Q.ceil a - 1)));
    prop "inv-mul" 500 arb_q (fun a ->
        QCheck.assume (not (Q.equal a Q.zero));
        Q.equal (Q.mul a (Q.inv a)) Q.one);
  ]

let test_q_units () =
  Alcotest.(check bool) "1/2 + 1/2 = 1" true Q.(equal (add half half) one);
  Alcotest.(check bool) "1/3 lt 1/2" true (Q.lt (Q.mk 1 3) Q.half);
  Alcotest.(check int) "floor -3/2" (-2) (Q.floor (Q.mk (-3) 2));
  Alcotest.(check int) "ceil -3/2" (-1) (Q.ceil (Q.mk (-3) 2));
  Alcotest.(check string) "pp" "5/3" (Q.to_string (Q.mk 10 6))

let test_union_find () =
  let uf = Union_find.create () in
  let a = Union_find.make uf
  and b = Union_find.make uf
  and c = Union_find.make uf in
  Alcotest.(check bool) "distinct" false (Union_find.equiv uf a b);
  ignore (Union_find.union uf a b);
  Alcotest.(check bool) "merged" true (Union_find.equiv uf a b);
  Alcotest.(check bool) "c apart" false (Union_find.equiv uf a c);
  ignore (Union_find.union uf b c);
  Alcotest.(check bool) "transitive" true (Union_find.equiv uf a c)

let uf_prop =
  prop "union-find partitions" 200
    QCheck.(list (pair (int_bound 15) (int_bound 15)))
    (fun pairs ->
      let uf = Union_find.create () in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* equiv is an equivalence relation consistent with the unions *)
      List.for_all (fun (a, b) -> Union_find.equiv uf a b) pairs
      && List.for_all
           (fun (a, _) -> Union_find.equiv uf a a)
           pairs)

let test_listx () =
  Alcotest.(check (option (pair int (list int))))
    "find_remove" (Some (3, [ 1; 2; 4 ]))
    (Listx.find_remove (fun x -> x > 2) [ 1; 2; 3; 4 ]);
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 5);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check int) "pairs" 6 (List.length (Listx.all_pairs [ 1; 2; 3; 4 ]))

let test_gensym () =
  let g = Gensym.create ~prefix:"t" () in
  let a = Gensym.fresh g and b = Gensym.fresh g in
  Alcotest.(check bool) "fresh distinct" true (a <> b)

let () =
  Alcotest.run "stdx"
    [
      ("Q-units", [ Alcotest.test_case "units" `Quick test_q_units ]);
      ("Q-props", q_props);
      ( "union-find",
        [ Alcotest.test_case "basic" `Quick test_union_find; uf_prop ] );
      ("listx", [ Alcotest.test_case "helpers" `Quick test_listx ]);
      ("gensym", [ Alcotest.test_case "fresh" `Quick test_gensym ]);
    ]
