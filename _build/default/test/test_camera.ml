(** Camera-law tests: every instance satisfies the RA axioms, the
    decidable inclusion agrees with witness search on finite carriers,
    and the update oracles agree with brute force. *)

open Camera

(* A generic law-checker over a finite carrier. *)
module Laws (C : Camera.FINITE) = struct
  let elements = C.elements

  let for_all2 f = List.for_all (fun a -> List.for_all (f a) elements) elements

  let for_all3 f =
    List.for_all
      (fun a ->
        List.for_all
          (fun b -> List.for_all (fun c -> f a b c) elements)
          elements)
      elements

  let assoc () = for_all3 (fun a b c -> C.equal (C.op a (C.op b c)) (C.op (C.op a b) c))
  let comm () = for_all2 (fun a b -> C.equal (C.op a b) (C.op b a))

  let valid_op () =
    for_all2 (fun a b -> (not (C.valid (C.op a b))) || C.valid a)

  let core_idem () =
    List.for_all
      (fun a ->
        match C.pcore a with
        | None -> true
        | Some ca -> (
            C.equal (C.op ca a) a
            && match C.pcore ca with Some cca -> C.equal cca ca | None -> false))
      elements

  let included_correct () =
    for_all2 (fun a b ->
        let witness = List.exists (fun c -> C.equal (C.op a c) b) elements in
        (* decidable inclusion must cover every witnessed extension *)
        (not witness) || C.included a b || C.equal a b)

  let all name =
    [
      (name ^ "-assoc", assoc);
      (name ^ "-comm", comm);
      (name ^ "-valid-op", valid_op);
      (name ^ "-core-idem", core_idem);
      (name ^ "-included", included_correct);
    ]
end

(* Finite instances *)

module ExclBool = struct
  include Excl.Make (struct
    type t = bool

    let pp = Fmt.bool
    let equal = Bool.equal
  end)

  let elements = [ Excl true; Excl false; Bot ]
end

module AgreeInt = struct
  include Agree.Make (struct
    type t = int

    let pp = Fmt.int
    let equal = Int.equal
    let compare = Int.compare
  end)

  let elements =
    [ of_elt 0; of_elt 1; of_elt 2; op (of_elt 0) (of_elt 1);
      op (of_elt 1) (of_elt 2) ]
end

module FracF = struct
  include Frac

  let elements = Stdx.Q.[ mk 1 4; half; mk 3 4; one; mk 5 4; mk 3 2 ]
end

module NatF = struct
  include Nat_add

  let elements = [ 0; 1; 2; 3 ]
end

module MaxF = struct
  include Max_nat

  let elements = [ 0; 1; 2; 3 ]
end

module SumF = struct
  include Sum.Make (ExclBool) (NatF)

  let elements =
    List.map (fun e -> Inl e) ExclBool.elements
    @ List.map (fun e -> Inr e) NatF.elements
    @ [ SumBot ]
end

module ProdF = struct
  include Prod.Make (FracF) (MaxF)

  let elements =
    List.concat_map
      (fun a -> List.map (fun b -> (a, b)) [ 0; 1; 2 ])
      Stdx.Q.[ half; one; mk 3 2 ]
end

module OptF = struct
  include Option_ra.Make (ExclBool)

  let elements = None :: List.map (fun e -> Some e) ExclBool.elements
end

module AuthNatF = struct
  include Auth.Make (NatF)

  let elements =
    let frags = [ 0; 1; 2 ] in
    List.map frag frags
    @ List.concat_map (fun a -> List.map (fun f -> both a f) frags) [ 0; 1; 2 ]
end

module GsetF = struct
  include Gset_disj

  let elements =
    [ unit; singleton "a"; singleton "b"; of_list [ "a"; "b" ]; Bot ]
end

module GmapF = struct
  include Gmap.Make (ExclBool)

  let elements =
    [
      unit;
      singleton "x" (ExclBool.Excl true);
      singleton "x" (ExclBool.Excl false);
      singleton "y" (ExclBool.Excl true);
      op (singleton "x" (ExclBool.Excl true)) (singleton "y" (ExclBool.Excl false));
      singleton "x" ExclBool.Bot;
    ]
end

let law_cases =
  let module L1 = Laws (ExclBool) in
  let module L2 = Laws (AgreeInt) in
  let module L3 = Laws (FracF) in
  let module L4 = Laws (NatF) in
  let module L5 = Laws (MaxF) in
  let module L6 = Laws (SumF) in
  let module L7 = Laws (ProdF) in
  let module L8 = Laws (OptF) in
  let module L9 = Laws (AuthNatF) in
  let module L10 = Laws (GsetF) in
  let module L11 = Laws (GmapF) in
  List.concat
    [
      L1.all "excl"; L2.all "agree"; L3.all "frac"; L4.all "nat";
      L5.all "maxnat"; L6.all "sum"; L7.all "prod"; L8.all "option";
      L9.all "auth"; L10.all "gset"; L11.all "gmap";
    ]
  |> List.map (fun (name, f) ->
         Alcotest.test_case name `Quick (fun () ->
             Alcotest.(check bool) name true (f ())))

(* Frame-preserving updates: oracles vs brute force. *)

let test_excl_update () =
  (* Excl a ~~> Excl b unconditionally. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let expected =
            Updates.brute_force (module ExclBool) a b
          in
          let oracle = ExclBool.valid b || not (ExclBool.valid a) in
          Alcotest.(check bool) "excl fpu" expected oracle)
        ExclBool.elements)
    ExclBool.elements

let test_auth_nat_update () =
  (* ● n ⋅ ◯ m ~~> ● n' ⋅ ◯ m' iff the local-update condition holds. *)
  let range = [ 0; 1; 2; 3 ] in
  List.iter
    (fun n ->
      List.iter
        (fun m ->
          List.iter
            (fun n' ->
              List.iter
                (fun m' ->
                  let a = AuthNatF.both n m and b = AuthNatF.both n' m' in
                  let brute = Updates.brute_force (module AuthNatF) a b in
                  let oracle =
                    Updates.auth_nat_local_update ~auth:n ~frag:m ~auth':n'
                      ~frag':m'
                  in
                  (* The oracle must be sound (imply brute force); it
                     may be incomplete. *)
                  if oracle && AuthNatF.valid a then
                    Alcotest.(check bool)
                      (Printf.sprintf "auth %d %d ~> %d %d" n m n' m')
                      true brute)
                range)
            range)
        range)
    range

(* Registry: typed injection, cross-camera isolation. *)

module RegNat = Registry.Register (struct
  include Nat_add

  let name = "nat"
  let fpu a b = a = b
end) ()

module RegTok = Registry.Register (struct
  include Gset_disj

  let name = "tok"
  let fpu a b = equal a b
end) ()

let test_registry () =
  let p1 = RegNat.inject 3 in
  let p2 = RegTok.inject (Gset_disj.singleton "t") in
  Alcotest.(check (option int)) "roundtrip" (Some 3) (RegNat.project p1);
  Alcotest.(check bool) "cross-project" true (RegNat.project p2 = None);
  Alcotest.(check bool) "cross-op invalid" false
    (Registry.Packed.valid (Registry.Packed.op p1 p2));
  Alcotest.(check bool) "same-cell op" true
    (Registry.Packed.valid (Registry.Packed.op p1 (RegNat.inject 2)));
  Alcotest.(check (option int)) "op value" (Some 5)
    (RegNat.project (Registry.Packed.op p1 (RegNat.inject 2)))

let test_ghost_map () =
  let module GM = Registry.Ghost_map in
  let m1 = GM.singleton "γ1" (RegNat.inject 1) in
  let m2 = GM.singleton "γ1" (RegNat.inject 2) in
  let m3 = GM.singleton "γ2" (RegTok.inject (Gset_disj.singleton "t")) in
  Alcotest.(check bool) "disjoint valid" true (GM.valid (GM.op m1 m3));
  Alcotest.(check bool) "same-key nat adds" true (GM.valid (GM.op m1 m2));
  Alcotest.(check (option int)) "pointwise op" (Some 3)
    (Option.bind (GM.find "γ1" (GM.op m1 m2)) RegNat.project);
  (* fpu: nat cell only allows identity per the registration above *)
  Alcotest.(check bool) "fpu refl" true (GM.fpu m1 m1);
  Alcotest.(check bool) "fpu non-refl" false (GM.fpu m1 m2)

let () =
  Alcotest.run "camera"
    [
      ("laws", law_cases);
      ( "updates",
        [
          Alcotest.test_case "excl" `Quick test_excl_update;
          Alcotest.test_case "auth-nat" `Quick test_auth_nat_update;
        ] );
      ( "registry",
        [
          Alcotest.test_case "inject-project" `Quick test_registry;
          Alcotest.test_case "ghost-map" `Quick test_ghost_map;
        ] );
    ]
