(** Proof-mode tests: end-to-end certified triples, negative cases, and
    the prove-then-run property — a proved program really does satisfy
    its spec when executed on concrete inputs. *)

module A = Baselogic.Assertion
module K = Baselogic.Kernel
module T = Smt.Term
module HL = Heaplang.Ast
module P = Proofmode.Prove

let sym x = HL.Val (HL.Sym x)
let pt l v = A.points_to (T.var l) v

let proves ?invariants ?witnesses ~pre e post =
  match P.prove_triple ?invariants ?witnesses ~pre e "result" post with
  | _ -> true
  | exception P.Tactic_error _ -> false
  | exception K.Rule_error _ -> false

let swap_body =
  HL.Let ("x", HL.Load (sym "l"),
    HL.Let ("y", HL.Load (sym "r"),
      HL.Seq (HL.Store (sym "l", HL.Var "y"), HL.Store (sym "r", HL.Var "x"))))

let test_swap () =
  let pre = A.seps [ pt "l" (T.var "a"); pt "r" (T.var "b") ] in
  let post = A.seps [ pt "l" (T.var "b"); pt "r" (T.var "a") ] in
  Alcotest.(check bool) "swap proves" true (proves ~pre swap_body post);
  Alcotest.(check bool) "wrong post rejected" false
    (proves ~pre swap_body (A.seps [ pt "l" (T.var "a"); pt "r" (T.var "b") ]))

let test_alloc_free () =
  let body =
    HL.Let ("l", HL.Alloc (HL.Val (HL.Int 7)),
      HL.Let ("v", HL.Load (HL.Var "l"),
        HL.Seq (HL.Free (HL.Var "l"), HL.Var "v")))
  in
  Alcotest.(check bool) "alloc-load-free" true
    (proves ~pre:A.Emp body (A.Pure (T.eq (T.var "result") (T.int 7))))

let test_branch () =
  let body =
    HL.Let ("c", HL.BinOp (HL.Lt, sym "a", HL.Val (HL.Int 0)),
      HL.If (HL.Var "c",
             HL.BinOp (HL.Sub, HL.Val (HL.Int 0), sym "a"),
             sym "a"))
  in
  Alcotest.(check bool) "abs" true
    (proves ~pre:A.Emp body (A.Pure (T.ge (T.var "result") (T.int 0))))

let test_assert_tactic () =
  let body =
    HL.Let ("c", HL.BinOp (HL.Le, sym "a", sym "a"),
      HL.Seq (HL.Assert (HL.Var "c"), HL.Val (HL.Int 0)))
  in
  Alcotest.(check bool) "assert provable" true (proves ~pre:A.Emp body A.Emp);
  let bad =
    HL.Let ("c", HL.BinOp (HL.Lt, sym "a", sym "a"),
      HL.Seq (HL.Assert (HL.Var "c"), HL.Val (HL.Int 0)))
  in
  Alcotest.(check bool) "assert unprovable rejected" false
    (proves ~pre:A.Emp bad A.Emp)

let test_faa_tactic () =
  let body = HL.Faa (sym "l", HL.Val (HL.Int 2)) in
  let pre = pt "l" (T.var "v") in
  let post =
    A.Sep (pt "l" (T.add (T.var "v") (T.int 2)),
           A.Pure (T.eq (T.var "result") (T.var "v")))
  in
  Alcotest.(check bool) "faa" true (proves ~pre body post)

let count_loop_test () =
  let deref l = Baselogic.Hterm.deref (T.var l) in
  let body =
    HL.Let ("c", HL.Load (sym "i"),
      HL.Let ("d", HL.BinOp (HL.Add, HL.Var "c", HL.Val (HL.Int 1)),
        HL.Store (sym "i", HL.Var "d")))
  in
  let cond = HL.Let ("c", HL.Load (sym "i"), HL.BinOp (HL.Lt, HL.Var "c", sym "n")) in
  let loop = HL.While (cond, body) in
  let e = HL.Seq (loop, HL.Load (sym "i")) in
  let inv =
    A.Exists ("v",
      A.Sep (pt "i" (T.var "v"),
             A.Pure (T.and_ [ T.le (T.int 0) (T.var "v"); T.le (T.var "v") (T.var "n") ])))
  in
  let pre = A.seps [ pt "i" (T.int 0); A.Pure (T.le (T.int 0) (T.var "n")) ] in
  let post =
    A.Sep (A.Pure (T.eq (T.var "result") (T.var "n")),
           A.Exists ("w", pt "i" (T.var "w")))
  in
  Alcotest.(check bool) "count loop proves" true
    (proves
       ~invariants:[ (loop, { P.inv; guard = Some (T.lt (deref "i") (T.var "n")) }) ]
       ~pre e post);
  (* A wrong invariant must be rejected. *)
  let bad_inv =
    A.Exists ("v", A.Sep (pt "i" (T.var "v"), A.Pure (T.lt (T.var "v") (T.int 0))))
  in
  Alcotest.(check bool) "bad invariant rejected" false
    (proves
       ~invariants:[ (loop, { P.inv = bad_inv; guard = None }) ]
       ~pre e post)

(* The theorem really is about the program: close the symbols with
   concrete values satisfying the pre, run, check the post. *)
let test_prove_then_run () =
  let pre = A.seps [ pt "l" (T.var "a"); pt "r" (T.var "b") ] in
  let post = A.seps [ pt "l" (T.var "b"); pt "r" (T.var "a") ] in
  let thm = P.prove_triple ~pre swap_body "result" post in
  ignore thm;
  (* Concrete instance: l=#0 with 10, r=#1 with 20. *)
  let closed =
    Heaplang.Subst.close_expr [ ("l", HL.Loc 0); ("r", HL.Loc 1) ] swap_body
  in
  let setup =
    HL.Seq (HL.Alloc (HL.Val (HL.Int 10)),
      HL.Seq (HL.Alloc (HL.Val (HL.Int 20)),
        HL.Seq (closed,
          HL.PairE (HL.Load (HL.Val (HL.Loc 0)), HL.Load (HL.Val (HL.Loc 1))))))
  in
  match Heaplang.Interp.run setup with
  | Heaplang.Interp.Value (HL.Pair (HL.Int 20, HL.Int 10)) -> ()
  | r ->
      Alcotest.failf "swap ran wrong: %s"
        (match r with
        | Heaplang.Interp.Value v -> Fmt.str "%a" HL.pp_value v
        | Heaplang.Interp.Error m -> m
        | Heaplang.Interp.Timeout -> "timeout")

let test_anf () =
  let open HL in
  let e = BinOp (Add, BinOp (Mul, Val (Int 2), Val (Int 3)), Val (Int 4)) in
  let a = P.anf e in
  (* semantics preserved *)
  (match Heaplang.Interp.run a with
  | Heaplang.Interp.Value (Int 10) -> ()
  | _ -> Alcotest.fail "anf changed meaning");
  (* structure: operator operands are values/variables *)
  let rec check = function
    | BinOp (_, (Val _ | Var _), (Val _ | Var _)) -> ()
    | Let (_, e1, e2) ->
        check e1;
        check e2
    | Val _ | Var _ -> ()
    | Seq (e1, e2) ->
        check e1;
        check e2
    | e -> Alcotest.failf "not ANF: %a" pp_expr e
  in
  check a

let test_loops_helper () =
  let open HL in
  let w1 = While (Val (Bool false), Val Unit) in
  let e = Seq (w1, Seq (Val Unit, While (Val (Bool false), Val Unit))) in
  Alcotest.(check int) "two loops" 2 (List.length (P.loops e))

let test_rule_counting () =
  K.reset_rule_count ();
  let pre = A.seps [ pt "l" (T.var "a") ] in
  ignore (P.prove_triple ~pre (HL.Load (sym "l")) "result"
            (A.Sep (pt "l" (T.var "a"), A.Pure (T.eq (T.var "result") (T.var "a")))));
  Alcotest.(check bool) "rules counted" true (K.rule_count () > 0)

let () =
  Alcotest.run "proofmode"
    [
      ( "triples",
        [
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "alloc-free" `Quick test_alloc_free;
          Alcotest.test_case "branch" `Quick test_branch;
          Alcotest.test_case "assert" `Quick test_assert_tactic;
          Alcotest.test_case "faa" `Quick test_faa_tactic;
          Alcotest.test_case "count-loop" `Quick count_loop_test;
        ] );
      ( "integration",
        [
          Alcotest.test_case "prove-then-run" `Quick test_prove_then_run;
          Alcotest.test_case "anf" `Quick test_anf;
          Alcotest.test_case "loops" `Quick test_loops_helper;
          Alcotest.test_case "rule-count" `Quick test_rule_counting;
        ] );
    ]
