(** Soundness tests for the destabilized base logic.

    The centerpiece is the model checker: every kernel rule instance is
    evaluated in a family of finite models — all small global heaps,
    all small local resources compatible with them, several step
    indices, and all assignments of the free term variables — and the
    left-hand side must imply the right-hand side everywhere. This is
    the executable counterpart of the paper's Coq soundness proof.

    We also check that the checker has teeth: deliberately wrong
    "rules" (unstable framing, non-persistent duplication) are caught. *)

module A = Baselogic.Assertion
module GV = Baselogic.Ghost_val
module K = Baselogic.Kernel
module S = Baselogic.Semantics
module HT = Baselogic.Hterm
module T = Smt.Term
module HL = Heaplang.Ast
module Imap = S.Imap
open Stdx

(* ------------------------------------------------------------------ *)
(* The model family *)

let globals : int Imap.t list =
  (* Heaps over locations {0, 1} with values {0..2}; including partial
     ones. *)
  let cell l vs = List.map (fun v -> (l, v)) vs in
  let combine c0 c1 =
    List.concat_map
      (fun b0 -> List.map (fun b1 -> Imap.of_seq (List.to_seq (b0 @ b1))) c1)
      c0
  in
  combine
    ([ [] ] @ List.map (fun b -> [ b ]) (cell 0 [ 0; 1; 2 ]))
    ([ [] ] @ List.map (fun b -> [ b ]) (cell 1 [ 0; 1 ]))

let resources : S.res list =
  let heap_frag = function
    | [] -> Imap.empty
    | cells -> Imap.of_seq (List.to_seq cells)
  in
  let heaps =
    [ [] ]
    @ List.concat_map
        (fun v -> [ [ (0, (Q.one, v)) ]; [ (0, (Q.half, v)) ] ])
        [ 0; 1; 2 ]
    @ [
        [ (1, (Q.one, 0)) ];
        [ (1, (Q.one, 1)) ];
        [ (0, (Q.one, 1)); (1, (Q.one, 0)) ];
      ]
  in
  let ghosts =
    [
      Smap.empty;
      Smap.of_list [ ("g", S.CAuthNat (Some 2, 1)) ];
      Smap.of_list [ ("g", S.CAuthNat (None, 1)) ];
      Smap.of_list [ ("g", S.CAgree 1) ];
      Smap.of_list [ ("g", S.CExcl 0) ];
      Smap.of_list [ ("g", S.CMaxNat 2) ];
    ]
  in
  List.concat_map
    (fun g -> List.map (fun h -> { S.rheap = heap_frag h; rghost = g }) heaps)
    ghosts

let model = { S.ints = [ -1; 0; 1; 2; 3 ]; resources; globals }

(** Check an entailment [lhs ⊢ rhs] over the model family. Free term
    variables are enumerated over a small range (capped at 3 vars). *)
let valid_entailment ?(penv = Smap.empty) (lhs : A.t) (rhs : A.t) : bool =
  let fvs =
    Listx.dedup ~compare:String.compare (A.free_vars lhs @ A.free_vars rhs)
  in
  assert (List.length fvs <= 3);
  let rec envs acc = function
    | [] -> [ acc ]
    | x :: rest ->
        List.concat_map (fun v -> envs (Smap.add x v acc) rest) [ 0; 1; 2 ]
  in
  List.for_all
    (fun env ->
      List.for_all
        (fun sigma ->
          List.for_all
            (fun r ->
              (not (S.compat sigma r))
              || List.for_all
                   (fun step ->
                     (not (S.eval model penv env ~step sigma r lhs))
                     || S.eval model penv env ~step sigma r rhs)
                   [ 0; 1; 3 ])
            model.S.resources)
        model.S.globals)
    (envs Smap.empty fvs)

let check_rule name (thm : K.theorem) =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name true
        (valid_entailment ~penv:(K.penv thm) (K.lhs thm) (K.rhs thm)))

let check_invalid name lhs rhs =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name false (valid_entailment lhs rhs))

(* ------------------------------------------------------------------ *)
(* Rule instances *)

let l0 = T.int 0
let va = T.var "a"
let pt ?frac l v = A.points_to ?frac l v
let pure_ab = A.Pure (T.le va (T.int 5))

let p1 = pt l0 va
let p2 = A.Ghost ("g", GV.Auth_nat { auth = None; frag = T.int 1 })
let p3 = A.Pure (T.eq (HT.deref l0) va)  (* heap-dependent, unstable *)

let structural_rules =
  [
    check_rule "refl" (K.refl p1);
    check_rule "sep-comm" (K.sep_comm p1 p2);
    check_rule "sep-assoc-r" (K.sep_assoc_r p1 p2 pure_ab);
    check_rule "sep-assoc-l" (K.sep_assoc_l p1 p2 pure_ab);
    check_rule "sep-weaken" (K.sep_weaken_l p1 p2);
    check_rule "emp-sep-intro" (K.emp_sep_intro p1);
    check_rule "emp-sep-elim" (K.emp_sep_elim p1);
    check_rule "emp-intro" (K.emp_intro p1);
    check_rule "sep-mono" (K.sep_mono (K.sep_weaken_l p2 p1) (K.refl pure_ab));
    check_rule "wand-elim" (K.wand_elim p1 p2);
    check_rule "wand-intro"
      (K.wand_intro (K.sep_comm p1 p2) );
    check_rule "and-intro" (K.and_intro (K.refl p1) (K.emp_intro p1));
    check_rule "and-elim-l" (K.and_elim_l p1 p2);
    check_rule "and-elim-r" (K.and_elim_r p1 p2);
    check_rule "or-intro-l" (K.or_intro_l p1 p2);
    check_rule "or-intro-r" (K.or_intro_r p1 p2);
    check_rule "or-elim" (K.or_elim (K.emp_intro p1) (K.emp_intro p2));
  ]

let pure_rules =
  [
    check_rule "pure-intro" (K.pure_intro p1 (T.le va (T.add va (T.int 1))));
    check_rule "pure-entail"
      (K.pure_entail ~hyps:[ T.le va (T.int 2) ] (T.le va (T.int 5)));
    check_rule "pure-false-elim" (K.pure_false_elim p1);
    check_rule "exists-intro" (K.exists_intro "x" (pt l0 (T.var "x")) va);
    check_rule "exists-elim"
      (K.exists_elim "x" (K.emp_intro (pt l0 (T.var "x"))));
    check_rule "forall-elim" (K.forall_elim "x" (pt l0 (T.var "x")) (T.int 1));
  ]

let heap_rules =
  [
    check_rule "points-to-agree"
      (K.points_to_agree Q.half Q.half l0 va (T.var "b"));
    check_rule "points-to-split" (K.points_to_split l0 Q.half Q.half va);
    check_rule "points-to-join" (K.points_to_join l0 Q.half Q.half va);
    (* The signature rules of the destabilized logic: *)
    check_rule "deref-resolve"
      (K.deref_resolve Q.half l0 va (T.le (HT.deref l0) (T.int 5)));
    check_rule "deref-intro"
      (K.deref_intro Q.half l0 va (T.le (HT.deref l0) (T.int 5)));
  ]

let ghost_rules =
  [
    check_rule "ghost-valid"
      (K.ghost_valid "g" (GV.Auth_nat { auth = Some va; frag = T.int 1 }));
    check_rule "ghost-op-split"
      (K.ghost_op_split "g"
         (GV.Auth_nat { auth = Some (T.int 2); frag = T.int 1 })
         (GV.Auth_nat { auth = None; frag = T.int 0 }));
    check_rule "ghost-op-join"
      (K.ghost_op_join "g" (GV.Agree va) (GV.Agree (T.var "b")));
    check_rule "ghost-update"
      (K.ghost_update ~hyps:[] "g"
         (GV.Auth_nat { auth = Some (T.int 1); frag = T.int 1 })
         (GV.Auth_nat { auth = Some (T.int 2); frag = T.int 2 }));
    (* ghost_alloc is the fresh-name axiom: its soundness needs the
       allocated name to be absent from every frame, which a fixed
       finite universe cannot express — we check its side condition
       instead (below). *)
  ]

let modality_rules =
  [
    check_rule "persistently-elim" (K.persistently_elim pure_ab);
    check_rule "persistent-dup" (K.persistent_dup (A.Ghost ("g", GV.Max_nat (T.int 2))));
    check_rule "later-intro" (K.later_intro p1);
    check_rule "later-mono" (K.later_mono (K.sep_weaken_l p1 p2));
    check_rule "upd-intro" (K.upd_intro p1);
    check_rule "upd-mono" (K.upd_mono (K.sep_weaken_l p1 p2));
    check_rule "upd-trans" (K.upd_trans p1);
    check_rule "upd-frame" (K.upd_frame p2 p1);
    check_rule "stabilize-elim" (K.stabilize_elim p3);
    check_rule "stabilize-intro" (K.stabilize_intro p1);
    check_rule "stabilize-intro-covered"
      (K.stabilize_intro (A.Sep (p1, p3)));
    check_rule "stabilize-mono" (K.stabilize_mono (K.sep_weaken_l p2 p1));
    check_rule "stabilize-sep" (K.stabilize_sep p1 p2);
  ]

(* WP rules on tiny programs. *)
let wp_rules =
  let q = A.Pure (T.eq (T.var "res") va) in
  [
    check_rule "wp-value" (K.wp_value (HL.Sym "a") "res" q);
    check_rule "wp-load"
      (K.wp_load Q.one "l" va "res" (A.Pure (T.eq (T.var "res") va)));
    check_rule "wp-load-named"
      (K.wp_load_n Q.one "l" va "z" "res" (A.Pure (T.le (T.var "res") (T.var "res"))));
    check_rule "wp-store"
      (K.wp_store "l" va (HL.Int 1) (T.int 1) "res"
         (A.Exists ("w", A.points_to (T.var "l") (T.var "w"))));
    check_rule "wp-frame"
      (K.wp_frame p2 (HL.Val (HL.Int 0)) "res" A.Emp);
    check_rule "wp-pure-step"
      (K.wp_pure_step
         (HL.BinOp (HL.Add, HL.Val (HL.Int 1), HL.Val (HL.Int 2)))
         (HL.Val (HL.Int 3)) "res" (A.Pure (T.eq (T.var "res") (T.int 3))));
    check_rule "wp-assert"
      (K.wp_assert (T.int 1) "res" A.Emp);
  ]

(* The checker must reject wrong rules. *)
let negative_cases =
  [
    check_invalid "no-dup-points-to" p1 (A.Sep (p1, p1));
    check_invalid "no-unstable-stabilize" p3 (A.Stabilize p3);
    check_invalid "no-free-frame" A.Emp p1;
    check_invalid "no-value-change" (pt l0 (T.int 0)) (pt l0 (T.int 1));
    check_invalid "later-not-elim" (A.Later (pt l0 (T.int 9999))) (pt l0 (T.int 9999));
  ]

(* Kernel side conditions must reject bad instances. *)
let rule_error_cases =
  [
    Alcotest.test_case "stabilize-intro-rejects-unstable" `Quick (fun () ->
        match K.stabilize_intro p3 with
        | _ -> Alcotest.fail "must reject"
        | exception K.Rule_error _ -> ());
    Alcotest.test_case "wand-intro-rejects-unstable-ctx" `Quick (fun () ->
        match K.wand_intro (K.sep_comm p3 p1) with
        | _ -> Alcotest.fail "must reject"
        | exception K.Rule_error _ -> ());
    Alcotest.test_case "persistent-dup-rejects" `Quick (fun () ->
        match K.persistent_dup p1 with
        | _ -> Alcotest.fail "must reject"
        | exception K.Rule_error _ -> ());
    Alcotest.test_case "pure-intro-rejects-invalid" `Quick (fun () ->
        match K.pure_intro p1 (T.le va (T.int 0)) with
        | _ -> Alcotest.fail "must reject"
        | exception K.Rule_error _ -> ());
    Alcotest.test_case "points-to-join-rejects-over-1" `Quick (fun () ->
        match K.points_to_join l0 Q.one Q.half va with
        | _ -> Alcotest.fail "must reject"
        | exception K.Rule_error _ -> ());
    Alcotest.test_case "ghost-alloc-rejects-invalid" `Quick (fun () ->
        match
          K.ghost_alloc ~hyps:[] "h"
            (GV.Auth_nat { auth = Some (T.int 1); frag = T.int 2 })
        with
        | _ -> Alcotest.fail "must reject invalid element"
        | exception K.Rule_error _ -> ());
    Alcotest.test_case "ghost-update-rejects-bad-local" `Quick (fun () ->
        match
          K.ghost_update ~hyps:[] "g"
            (GV.Auth_nat { auth = Some (T.int 2); frag = T.int 0 })
            (GV.Auth_nat { auth = Some (T.int 1); frag = T.int 0 })
        with
        | _ -> Alcotest.fail "must reject"
        | exception K.Rule_error _ -> ());
  ]

(* entail_auto: random-ish instances are sound. *)
let entail_auto_cases =
  [
    Alcotest.test_case "entail-auto-basic" `Quick (fun () ->
        let hyps = [ p1; p2; A.Pure (T.eq va (T.int 1)) ] in
        let goal = A.Sep (pt l0 (T.int 1), p2) in
        let thm = K.entail_auto hyps goal in
        Alcotest.(check bool) "model-valid" true
          (valid_entailment (K.lhs thm) (K.rhs thm)));
    Alcotest.test_case "entail-auto-split-frac" `Quick (fun () ->
        let hyps = [ pt l0 va ] in
        let goal = pt ~frac:Q.half l0 va in
        let thm = K.entail_auto hyps goal in
        Alcotest.(check bool) "model-valid" true
          (valid_entailment (K.lhs thm) (K.rhs thm)));
    Alcotest.test_case "entail-auto-deref" `Quick (fun () ->
        (* The destabilized idiom: a pure goal reading the heap. *)
        let hyps = [ pt l0 va; A.Pure (T.le va (T.int 2)) ] in
        let goal = A.Pure (T.le (HT.deref l0) (T.int 2)) in
        let thm = K.entail_auto hyps goal in
        Alcotest.(check bool) "model-valid" true
          (valid_entailment (K.lhs thm) (K.rhs thm)));
    Alcotest.test_case "entail-auto-rejects" `Quick (fun () ->
        match K.entail_auto [ pt l0 va ] (pt l0 (T.add va (T.int 1))) with
        | _ -> Alcotest.fail "must reject"
        | exception K.Rule_error _ -> ());
  ]

(* Ghost_val semantics agrees with the concrete cameras. *)
let ghost_val_consistency =
  [
    Alcotest.test_case "compose-agree" `Quick (fun () ->
        match GV.compose (GV.Agree (T.int 1)) (GV.Agree (T.int 1)) with
        | Some (GV.Agree _, fact) ->
            Alcotest.(check bool) "fact holds" true
              (Smt.Solver.entails_bool fact)
        | _ -> Alcotest.fail "agree composes");
    Alcotest.test_case "compose-excl-none" `Quick (fun () ->
        Alcotest.(check bool) "excl never composes" true
          (GV.compose (GV.Excl (T.int 1)) (GV.Excl (T.int 1)) = None));
    Alcotest.test_case "valid-auth" `Quick (fun () ->
        let f =
          GV.valid_fact (GV.Auth_nat { auth = Some (T.int 3); frag = T.int 4 })
        in
        Alcotest.(check bool) "overdraw invalid" false
          (Smt.Solver.entails_bool f));
    Alcotest.test_case "frac-sum" `Quick (fun () ->
        match GV.compose (GV.Frac_tok Q.half) (GV.Frac_tok Q.half) with
        | Some (GV.Frac_tok q, _) ->
            Alcotest.(check bool) "half+half=1" true (Q.equal q Q.one)
        | _ -> Alcotest.fail "frac composes");
  ]

(* Syntactic stability implies semantic stability. *)
let stability_semantic =
  [
    Alcotest.test_case "stable-sound" `Quick (fun () ->
        (* For syntactically stable P: P(σ,r) and σ' agreeing with r's
           footprint implies P(σ',r). *)
        let cases = [ p1; A.Sep (p1, p3); pure_ab; p2 ] in
        List.iter
          (fun p ->
            if A.stable p then
              let ok =
                List.for_all
                  (fun sigma ->
                    List.for_all
                      (fun r ->
                        (not (S.compat sigma r))
                        || (not
                              (S.eval model Smap.empty
                                 (Smap.of_list [ ("a", 1); ("b", 1) ])
                                 ~step:2 sigma r p))
                        || List.for_all
                             (fun sigma' ->
                               (not (S.compat sigma' r))
                               || S.eval model Smap.empty
                                    (Smap.of_list [ ("a", 1); ("b", 1) ])
                                    ~step:2 sigma' r p)
                             model.S.globals)
                      model.S.resources)
                  model.S.globals
              in
              Alcotest.(check bool) (A.to_string p) true ok)
          cases);
    Alcotest.test_case "deref-pure-unstable" `Quick (fun () ->
        Alcotest.(check bool) "⌜!l = a⌝ unstable" false (A.stable p3);
        Alcotest.(check bool) "covered read stable" true
          (A.stable (A.Sep (p1, p3))));
  ]

let () =
  Alcotest.run "baselogic"
    [
      ("structural", structural_rules);
      ("pure", pure_rules);
      ("heap", heap_rules);
      ("ghost", ghost_rules);
      ("modalities", modality_rules);
      ("wp", wp_rules);
      ("negative", negative_cases);
      ("side-conditions", rule_error_cases);
      ("entail-auto", entail_auto_cases);
      ("ghost-val", ghost_val_consistency);
      ("stability", stability_semantic);
    ]
