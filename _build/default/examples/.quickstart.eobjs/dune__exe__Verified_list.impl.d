examples/verified_list.ml: Baselogic Fmt Heaplang List Smt Stdx String Suite Verifier
