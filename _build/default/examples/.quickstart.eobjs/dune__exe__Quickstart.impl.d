examples/quickstart.ml: Baselogic Fmt Heaplang Proofmode Smap Smt Stdx Verifier
