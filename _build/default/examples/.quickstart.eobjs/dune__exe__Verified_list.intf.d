examples/verified_list.mli:
