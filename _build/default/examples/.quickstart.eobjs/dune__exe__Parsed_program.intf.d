examples/parsed_program.mli:
