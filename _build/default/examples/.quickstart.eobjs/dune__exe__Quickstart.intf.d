examples/quickstart.mli:
