examples/bank_account.mli:
