examples/parsed_program.ml: Baselogic Fmt Heaplang Smap Smt Stdx Verifier
