examples/bank_account.ml: Baselogic Fmt Heaplang List Option Smap Smt Stdx Suite Verifier
