(** Textual front-end: write the program as a string, parse it, verify
    it, run it.

    Run with: dune exec examples/parsed_program.exe *)

module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
open Stdx

let src =
  {|
  (* absolute difference of the two cells, leaving both intact *)
  let x = !?a in
  let y = !?b in
  if x < y then y - x else x - y
|}

let () =
  Fmt.pr "== parsed program ==@.source:%s@." src;
  let body = Heaplang.Parser.parse_exn src in
  Fmt.pr "parsed:@.  @[%a@]@.@." HL.pp_expr body;
  let proc =
    {
      V.pname = "absdiff";
      params = [ "a"; "b"; "va"; "vb" ];
      requires =
        A.seps
          [
            A.points_to (T.var "a") (T.var "va");
            A.points_to (T.var "b") (T.var "vb");
          ];
      ensures =
        A.seps
          [
            A.points_to (T.var "a") (T.var "va");
            A.points_to (T.var "b") (T.var "vb");
            A.Pure (T.ge (T.var "result") (T.int 0));
            A.Pure
              (T.or_
                 [
                   T.eq (T.var "result") (T.sub (T.var "va") (T.var "vb"));
                   T.eq (T.var "result") (T.sub (T.var "vb") (T.var "va"));
                 ]);
          ];
      body;
      invariants = [];
      ghost = [];
    }
  in
  (match V.verify_proc { V.procs = [ proc ]; preds = Smap.empty } proc with
  | V.Verified -> Fmt.pr "verifier: VERIFIED@."
  | V.Failed m -> Fmt.pr "verifier: FAILED %s@." m);
  let closed =
    Heaplang.Subst.close_expr [ ("a", HL.Loc 0); ("b", HL.Loc 1) ] body
  in
  let main =
    HL.Seq
      ( HL.Alloc (HL.Val (HL.Int 3)),
        HL.Seq (HL.Alloc (HL.Val (HL.Int 10)), closed) )
  in
  match Heaplang.Interp.run main with
  | Heaplang.Interp.Value v ->
      Fmt.pr "run (a=3, b=10): %a@." HL.pp_value v
  | Heaplang.Interp.Error m -> Fmt.pr "error: %s@." m
  | Heaplang.Interp.Timeout -> Fmt.pr "timeout@."
