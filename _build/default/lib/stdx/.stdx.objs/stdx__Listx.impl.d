lib/stdx/listx.ml: Either List Result Stdlib
