lib/stdx/smap.ml: Fmt List Map String
