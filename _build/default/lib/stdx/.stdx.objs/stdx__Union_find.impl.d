lib/stdx/union_find.ml: Array Fun Stdlib
