lib/stdx/stdx.ml: Gensym Listx Q Smap Union_find
