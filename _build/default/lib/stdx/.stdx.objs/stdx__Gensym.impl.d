lib/stdx/gensym.ml: Printf
