lib/stdx/q.ml: Fmt Stdlib
