(** Fresh-name generation.

    Each [t] is an independent counter; verifiers create one per run so
    symbolic-value names are deterministic and tests are reproducible. *)

type t = { mutable next : int; prefix : string }

let create ?(prefix = "$") () = { next = 0; prefix }

let fresh ?hint t =
  let n = t.next in
  t.next <- n + 1;
  match hint with
  | None -> Printf.sprintf "%s%d" t.prefix n
  | Some h -> Printf.sprintf "%s%s%d" t.prefix h n

let fresh_int t =
  let n = t.next in
  t.next <- n + 1;
  n

let reset t = t.next <- 0
