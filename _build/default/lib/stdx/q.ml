(** Arbitrary-precision-free rational numbers over native [int].

    The solver (Simplex/Fourier-Motzkin) and the fractional-permission
    camera both need exact rational arithmetic. The sealed container has
    no [zarith], so we normalize aggressively ([gcd] after every
    operation) and keep magnitudes small; the verification conditions we
    generate stay far away from [max_int]. Overflow raises [Overflow]
    rather than wrapping silently. *)

exception Overflow

type t = { num : int; den : int }
(** Invariant: [den > 0] and [gcd (abs num) den = 1]. *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let add_checked a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let mul_checked a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let mk num den =
  if den = 0 then invalid_arg "Q.mk: zero denominator";
  let sign = if den < 0 then -1 else 1 in
  let num = mul_checked num sign and den = abs den in
  if num = 0 then { num = 0; den = 1 }
  else
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let half = mk 1 2

let num t = t.num
let den t = t.den

let add a b =
  mk
    (add_checked (mul_checked a.num b.den) (mul_checked b.num a.den))
    (mul_checked a.den b.den)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = mk (mul_checked a.num b.num) (mul_checked a.den b.den)

let inv a =
  if a.num = 0 then invalid_arg "Q.inv: division by zero";
  mk a.den a.num

let div a b = mul a (inv b)

let compare a b =
  (* Cross-multiplication; denominators are positive. *)
  compare (mul_checked a.num b.den) (mul_checked b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let sign a = compare a zero
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let gt a b = compare a b > 0
let geq a b = compare a b >= 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b
let abs a = { a with num = Stdlib.abs a.num }
let is_int a = a.den = 1

let floor a =
  if a.num >= 0 then a.num / a.den
  else if a.num mod a.den = 0 then a.num / a.den
  else (a.num / a.den) - 1

let ceil a = -floor (neg a)

let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Fmt.int ppf a.num
  else Fmt.pf ppf "%d/%d" a.num a.den

let to_string a = Fmt.str "%a" pp a

let hash a = (a.num * 65599) + a.den
