(** List helpers shared across the project. *)

(** [find_remove p xs] returns the first element satisfying [p] together
    with the list without it, preserving order of the remainder. *)
let find_remove p xs =
  let rec go acc = function
    | [] -> None
    | x :: rest when p x -> Some (x, List.rev_append acc rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] xs

(** [partition_map f xs] splits [xs] by mapping each element to
    [Either.Left] or [Either.Right]. *)
let partition_map f xs =
  let rec go ls rs = function
    | [] -> (List.rev ls, List.rev rs)
    | x :: rest -> (
        match f x with
        | Either.Left l -> go (l :: ls) rs rest
        | Either.Right r -> go ls (r :: rs) rest)
  in
  go [] [] xs

let rec last = function
  | [] -> None
  | [ x ] -> Some x
  | _ :: rest -> last rest

(** [range a b] is [[a; a+1; ...; b-1]]. *)
let range a b = List.init (Stdlib.max 0 (b - a)) (fun i -> a + i)

(** [dedup ~compare xs] sorts and removes duplicates. *)
let dedup ~compare xs = List.sort_uniq compare xs

let sum = List.fold_left ( + ) 0

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

(** [all_pairs xs] lists every unordered pair of distinct positions. *)
let all_pairs xs =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go xs

let rec zip_with f xs ys =
  match (xs, ys) with
  | x :: xs, y :: ys -> f x y :: zip_with f xs ys
  | _ -> []

(** Monadic fold over [Result]: stops at the first [Error]. *)
let fold_result f init xs =
  List.fold_left
    (fun acc x -> Result.bind acc (fun acc -> f acc x))
    (Ok init) xs

(** [map_result f xs] maps [f] and collects, stopping at the first error. *)
let map_result f xs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] xs

let iter_result f xs =
  fold_result (fun () x -> f x) () xs
