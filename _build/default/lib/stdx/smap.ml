(** String-keyed persistent maps, the workhorse finite map of the
    project (variable environments, symbolic heaps keyed by location
    names, ghost-state maps). *)

include Map.Make (String)

let of_list kvs = List.fold_left (fun m (k, v) -> add k v m) empty kvs

let keys m = fold (fun k _ acc -> k :: acc) m [] |> List.rev

let pp pp_v ppf m =
  Fmt.pf ppf "{@[%a@]}"
    (Fmt.list ~sep:(Fmt.any ";@ ") (fun ppf (k, v) ->
         Fmt.pf ppf "%s ↦ %a" k pp_v v))
    (bindings m)
