(** Imperative union-find with path compression and union by rank.

    Used by the congruence-closure engine. Nodes are dense integer ids
    allocated by [make]; the structure grows on demand. *)

type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  { parent = Array.init capacity Fun.id; rank = Array.make capacity 0; size = 0 }

let ensure t n =
  if n >= Array.length t.parent then begin
    let cap = Stdlib.max (n + 1) (2 * Array.length t.parent) in
    let parent = Array.init cap Fun.id and rank = Array.make cap 0 in
    Array.blit t.parent 0 parent 0 t.size;
    Array.blit t.rank 0 rank 0 t.size;
    t.parent <- parent;
    t.rank <- rank
  end;
  if n >= t.size then t.size <- n + 1

(** [make t] allocates a fresh singleton class and returns its id. *)
let make t =
  let id = t.size in
  ensure t id;
  id

let rec find t x =
  ensure t x;
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let r = find t p in
    t.parent.(x) <- r;
    r
  end

let equiv t x y = find t x = find t y

(** [union t x y] merges the classes of [x] and [y] and returns the
    representative of the merged class. *)
let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then rx
  else if t.rank.(rx) < t.rank.(ry) then begin
    t.parent.(rx) <- ry;
    ry
  end
  else if t.rank.(rx) > t.rank.(ry) then begin
    t.parent.(ry) <- rx;
    rx
  end
  else begin
    t.parent.(ry) <- rx;
    t.rank.(rx) <- t.rank.(rx) + 1;
    rx
  end

let copy t = { parent = Array.copy t.parent; rank = Array.copy t.rank; size = t.size }
