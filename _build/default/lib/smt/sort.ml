(** Sorts of the solver's term language.

    The verifier encodes everything into [Int] and [Bool]: program
    integers and booleans directly, heap locations as integers (the
    allocator hands out distinct naturals), and opaque mathematical
    values (sequences, etc.) as integers constrained only through
    uninterpreted functions. *)

type t = Bool | Int

let equal (a : t) b = a = b
let pp ppf = function Bool -> Fmt.string ppf "Bool" | Int -> Fmt.string ppf "Int"
