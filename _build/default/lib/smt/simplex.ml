(** Linear integer arithmetic via general simplex with branch-and-bound.

    The rational core is the Dutertre–de Moura "general simplex" used
    in DPLL(T) solvers: every constraint [Σ cᵢ·xᵢ ⋈ k] is turned into a
    slack variable [s = Σ cᵢ·xᵢ] (a tableau row) plus a bound on [s].
    Strict bounds are handled with δ-rationals (pairs [v + k·δ] for an
    infinitesimal δ). Integrality is recovered by branch-and-bound on
    the rational relaxation.

    The solver is used *offline* by the lazy-SMT loop: assert a
    conjunction of literals, call {!check}. *)

open Stdx

(* δ-rationals: v + d·δ, ordered lexicographically. *)
module Dq = struct
  type t = { v : Q.t; d : Q.t }

  let of_q v = { v; d = Q.zero }
  let zero = of_q Q.zero
  let make v d = { v; d }
  let add a b = { v = Q.add a.v b.v; d = Q.add a.d b.d }
  let sub a b = { v = Q.sub a.v b.v; d = Q.sub a.d b.d }
  let scale c a = { v = Q.mul c a.v; d = Q.mul c a.d }

  let compare a b =
    let c = Q.compare a.v b.v in
    if c <> 0 then c else Q.compare a.d b.d

  let leq a b = compare a b <= 0
  let lt a b = compare a b < 0
  let pp ppf a =
    if Q.equal a.d Q.zero then Q.pp ppf a.v
    else Fmt.pf ppf "%a+(%a)δ" Q.pp a.v Q.pp a.d
end

type op = Le | Lt | Ge | Gt | Eq

(* A linear expression: coefficient map over variable ids. *)
module Linexp = struct
  type t = Q.t Smap.t

  let empty : t = Smap.empty

  let add_term x c (e : t) : t =
    Smap.update x
      (function
        | None -> if Q.equal c Q.zero then None else Some c
        | Some c' ->
            let s = Q.add c c' in
            if Q.equal s Q.zero then None else Some s)
      e

  let of_list l = List.fold_left (fun e (x, c) -> add_term x c e) empty l
  let is_empty (e : t) = Smap.is_empty e
end

type t = {
  mutable n : int;  (* number of solver variables *)
  names : (string, int) Hashtbl.t;
  mutable rows : (int * Q.t) list array;  (* basic var -> row over nonbasics *)
  mutable is_basic : bool array;
  mutable lower : Dq.t option array;
  mutable upper : Dq.t option array;
  mutable beta : Dq.t array;
  mutable trivially_unsat : bool;
}

let create () =
  {
    n = 0;
    names = Hashtbl.create 16;
    rows = Array.make 16 [];
    is_basic = Array.make 16 false;
    lower = Array.make 16 None;
    upper = Array.make 16 None;
    beta = Array.make 16 Dq.zero;
    trivially_unsat = false;
  }

let grow t n =
  if n >= Array.length t.is_basic then begin
    let cap = max (n + 1) (2 * Array.length t.is_basic) in
    let copy a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 t.n;
      a'
    in
    t.rows <- copy t.rows [];
    t.is_basic <- copy t.is_basic false;
    t.lower <- copy t.lower None;
    t.upper <- copy t.upper None;
    t.beta <- copy t.beta Dq.zero
  end

let fresh_var t =
  let id = t.n in
  grow t id;
  t.n <- id + 1;
  id

let var_of_name t x =
  match Hashtbl.find_opt t.names x with
  | Some id -> id
  | None ->
      let id = fresh_var t in
      Hashtbl.add t.names x id;
      id

let tighten_lower t x b =
  match t.lower.(x) with
  | Some l when Dq.leq b l -> ()
  | _ -> t.lower.(x) <- Some b

let tighten_upper t x b =
  match t.upper.(x) with
  | Some u when Dq.leq u b -> ()
  | _ -> t.upper.(x) <- Some b

(** Introduce a tableau row [s = e] for a fresh slack [s]. *)
let slack_for t (e : Linexp.t) =
  let s = fresh_var t in
  t.is_basic.(s) <- true;
  t.rows.(s) <- Smap.bindings e |> List.map (fun (x, c) -> (var_of_name t x, c));
  s

(** Assert [e ⋈ k]. Single-variable expressions bound the variable
    directly; general expressions go through a slack variable. *)
let assert_atom t (e : Linexp.t) (op : op) (k : Q.t) =
  if Linexp.is_empty e then begin
    (* Constant constraint: 0 ⋈ k. *)
    let holds =
      match op with
      | Le -> Q.leq Q.zero k
      | Lt -> Q.lt Q.zero k
      | Ge -> Q.geq Q.zero k
      | Gt -> Q.gt Q.zero k
      | Eq -> Q.equal Q.zero k
    in
    if not holds then t.trivially_unsat <- true
  end
  else begin
    let x, unit_coeff =
      match Smap.bindings e with
      | [ (x, c) ] -> (Some (var_of_name t x), c)
      | _ -> (None, Q.one)
    in
    let target, scale =
      match x with
      | Some x -> (x, unit_coeff)
      | None -> (slack_for t e, Q.one)
    in
    (* target·scale ⋈ k, i.e. target ⋈ k/scale (flipping on negative). *)
    let k = Q.div k scale in
    let op =
      if Q.lt scale Q.zero then
        match op with Le -> Ge | Lt -> Gt | Ge -> Le | Gt -> Lt | Eq -> Eq
      else op
    in
    (* Integer tightening: every solver variable is integral (problem
       variables by sorting, slacks as integer combinations when the
       expression has integer coefficients), so strict bounds tighten
       to non-strict ones on the adjacent integer and fractional
       constants round inward. Without this, branch-and-bound cannot
       refute facts like [x < n ∧ x + 1 > n] (no integer strictly
       between consecutive integers) and diverges. *)
    let integral =
      (* A problem variable is integral by sorting; a slack is integral
         when the expression's coefficients all are. *)
      match x with
      | Some _ -> true
      | None -> Smap.for_all (fun _ c -> Q.is_int c) e
    in
    if integral then
      match op with
      | Le -> tighten_upper t target (Dq.of_q (Q.of_int (Q.floor k)))
      | Lt ->
          let b = if Q.is_int k then Q.num k - 1 else Q.floor k in
          tighten_upper t target (Dq.of_q (Q.of_int b))
      | Ge -> tighten_lower t target (Dq.of_q (Q.of_int (Q.ceil k)))
      | Gt ->
          let b = if Q.is_int k then Q.num k + 1 else Q.ceil k in
          tighten_lower t target (Dq.of_q (Q.of_int b))
      | Eq ->
          if Q.is_int k then begin
            tighten_lower t target (Dq.of_q k);
            tighten_upper t target (Dq.of_q k)
          end
          else t.trivially_unsat <- true
    else
      match op with
      | Le -> tighten_upper t target (Dq.of_q k)
      | Lt -> tighten_upper t target (Dq.make k Q.minus_one)
      | Ge -> tighten_lower t target (Dq.of_q k)
      | Gt -> tighten_lower t target (Dq.make k Q.one)
      | Eq ->
          tighten_lower t target (Dq.of_q k);
          tighten_upper t target (Dq.of_q k)
  end

(* ------------------------------------------------------------------ *)
(* The simplex core *)

let row_coeff row y =
  match List.assoc_opt y row with Some c -> c | None -> Q.zero

(** Recompute β for basic variables from nonbasic assignments. *)
let recompute_basics t =
  for x = 0 to t.n - 1 do
    if t.is_basic.(x) then
      t.beta.(x) <-
        List.fold_left
          (fun acc (y, c) -> Dq.add acc (Dq.scale c t.beta.(y)))
          Dq.zero t.rows.(x)
  done

let init_assignment t =
  for x = 0 to t.n - 1 do
    if not t.is_basic.(x) then
      t.beta.(x) <-
        (match (t.lower.(x), t.upper.(x)) with
        | Some l, _ -> l
        | None, Some u -> u
        | None, None -> Dq.zero)
  done;
  recompute_basics t

let out_of_bounds t x =
  (match t.lower.(x) with Some l -> Dq.lt t.beta.(x) l | None -> false)
  || match t.upper.(x) with Some u -> Dq.lt u t.beta.(x) | None -> false

(** [add_scaled base c extra] is the linear combination
    [base + c·extra] as an association list without zero entries. *)
let add_scaled base c extra =
  List.fold_left
    (fun acc (z, cz) ->
      let cz = Q.mul c cz in
      let merged = Q.add (row_coeff acc z) cz in
      let acc = List.filter (fun (w, _) -> w <> z) acc in
      if Q.equal merged Q.zero then acc else (z, merged) :: acc)
    base extra

(** Pivot basic [x] with nonbasic [y] (occurring in x's row) and move
    β(x) to [v], adjusting β(y) so all rows stay satisfied. *)
let pivot_and_update t x y v =
  let row_x = t.rows.(x) in
  let a_xy = row_coeff row_x y in
  (* Solve x's row for y: y = x/a_xy - Σ_{z≠y} (a_xz/a_xy)·z. *)
  let inv = Q.inv a_xy in
  let row_y =
    (x, inv)
    :: List.filter_map
         (fun (z, c) ->
           if z = y then None else Some (z, Q.neg (Q.mul c inv)))
         row_x
  in
  let theta = Dq.scale inv (Dq.sub v t.beta.(x)) in
  t.beta.(x) <- v;
  t.beta.(y) <- Dq.add t.beta.(y) theta;
  t.is_basic.(x) <- false;
  t.is_basic.(y) <- true;
  t.rows.(x) <- [];
  t.rows.(y) <- row_y;
  (* Substitute y's definition into every other row. *)
  for b = 0 to t.n - 1 do
    if t.is_basic.(b) && b <> y then begin
      let row = t.rows.(b) in
      let c_y = row_coeff row y in
      if not (Q.equal c_y Q.zero) then begin
        let base = List.filter (fun (z, _) -> z <> y) row in
        t.rows.(b) <- add_scaled base c_y row_y
      end
    end
  done;
  recompute_basics t

type check_result = Sat | Unsat

let bounds_consistent t =
  let ok = ref true in
  for x = 0 to t.n - 1 do
    match (t.lower.(x), t.upper.(x)) with
    | Some l, Some u when Dq.lt u l -> ok := false
    | _ -> ()
  done;
  !ok

(** Rational feasibility check (Bland's rule for termination). *)
let check_rational t =
  if t.trivially_unsat || not (bounds_consistent t) then Unsat
  else begin
    init_assignment t;
    let result = ref None in
    let steps = ref 0 in
    while !result = None do
      incr steps;
      (* Bland's rule (smallest index both for the leaving and the
         entering variable) guarantees termination; the assertion
         guards against implementation bugs, not theory. *)
      if !steps > 2_000_000 then failwith "Simplex.check_rational: cycling"
      else begin
        (* Smallest-index out-of-bounds basic variable. *)
        let x = ref (-1) in
        (try
           for i = 0 to t.n - 1 do
             if t.is_basic.(i) && out_of_bounds t i then begin
               x := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !x < 0 then result := Some Sat
        else begin
          let x = !x in
          let below =
            match t.lower.(x) with
            | Some l -> Dq.lt t.beta.(x) l
            | None -> false
          in
          let target =
            if below then Option.get t.lower.(x) else Option.get t.upper.(x)
          in
          (* Find a suitable nonbasic variable (smallest index). *)
          let row = List.sort (fun (a, _) (b, _) -> compare a b) t.rows.(x) in
          let suitable (y, c) =
            if below then
              (Q.gt c Q.zero
              && (match t.upper.(y) with
                 | None -> true
                 | Some u -> Dq.lt t.beta.(y) u))
              || (Q.lt c Q.zero
                 && match t.lower.(y) with
                    | None -> true
                    | Some l -> Dq.lt l t.beta.(y))
            else
              (Q.lt c Q.zero
              && (match t.upper.(y) with
                 | None -> true
                 | Some u -> Dq.lt t.beta.(y) u))
              || (Q.gt c Q.zero
                 && match t.lower.(y) with
                    | None -> true
                    | Some l -> Dq.lt l t.beta.(y))
          in
          match List.find_opt suitable row with
          | None -> result := Some Unsat
          | Some (y, _) -> pivot_and_update t x y target
        end
      end
    done;
    Option.get !result
  end

(* ------------------------------------------------------------------ *)
(* Concrete models and integrality *)

(** Choose a concrete rational value for δ small enough that every
    satisfied δ-rational bound stays satisfied concretely, then read
    off the model. *)
let concrete_model t =
  let delta = ref Q.one in
  (* [lo ≤ hi] holds lexicographically; make it hold for concrete δ:
     lo.v + lo.d·δ ≤ hi.v + hi.d·δ, i.e. (lo.d - hi.d)·δ ≤ hi.v - lo.v.
     Binding only when lo.d > hi.d, in which case hi.v - lo.v > 0. *)
  let constrain (lo : Dq.t) (hi : Dq.t) =
    let num = Q.sub hi.Dq.v lo.Dq.v and den = Q.sub lo.Dq.d hi.Dq.d in
    if Q.gt den Q.zero && Q.gt num Q.zero then
      delta := Q.min !delta (Q.div num den)
  in
  for x = 0 to t.n - 1 do
    (match t.lower.(x) with Some l -> constrain l t.beta.(x) | None -> ());
    match t.upper.(x) with Some u -> constrain t.beta.(x) u | None -> ()
  done;
  let d = !delta in
  Array.init t.n (fun x ->
      let b = t.beta.(x) in
      Q.add b.Dq.v (Q.mul b.Dq.d d))

let copy t =
  {
    n = t.n;
    names = Hashtbl.copy t.names;
    rows = Array.copy t.rows;
    is_basic = Array.copy t.is_basic;
    lower = Array.copy t.lower;
    upper = Array.copy t.upper;
    beta = Array.copy t.beta;
    trivially_unsat = t.trivially_unsat;
  }

type int_result = IModel of int Smap.t | IUnsat | IUnknown

(** Integer feasibility by branch-and-bound on the named (problem)
    variables. With integer coefficients, integrality of the problem
    variables forces integrality of slacks, so branching on problem
    variables is complete. Running out of [fuel] reports [IUnknown] —
    never silently [IUnsat], since the caller uses unsatisfiability to
    claim entailments. *)
let check_int ?(fuel = 10_000) t : int_result =
  let fuel = ref fuel in
  let rec go t =
    if !fuel <= 0 then IUnknown
    else begin
      decr fuel;
      match check_rational t with
      | Unsat -> IUnsat
      | Sat -> (
          let model = concrete_model t in
          let frac = ref None in
          Hashtbl.iter
            (fun name id ->
              if !frac = None && not (Q.is_int model.(id)) then
                frac := Some (name, id, model.(id)))
            t.names;
          match !frac with
          | None ->
              let m = ref Smap.empty in
              Hashtbl.iter
                (fun name id -> m := Smap.add name (Q.floor model.(id)) !m)
                t.names;
              IModel !m
          | Some (_, id, q) -> (
              let low = copy t and high = copy t in
              tighten_upper low id (Dq.of_q (Q.of_int (Q.floor q)));
              tighten_lower high id (Dq.of_q (Q.of_int (Q.ceil q)));
              match go low with
              | IModel m -> IModel m
              | IUnsat -> go high
              | IUnknown -> IUnknown))
    end
  in
  go t
