(** Congruence closure for ground equality with uninterpreted functions.

    Operates on *purified* terms: variables, integer literals, and
    applications of uninterpreted symbols (arithmetic has been replaced
    by proxy variables before terms reach this module). Terms are
    interned into dense node ids; merging maintains a signature table
    so congruence ([x = y] implies [f x = f y]) propagates to parents.

    Distinct integer literals are pairwise disequal by construction:
    merging two of them is an immediate conflict. *)

open Stdx

type node_kind =
  | Const of string  (** variable or nullary symbol *)
  | Num of int  (** integer literal — distinct literals never merge *)
  | Fapp of string * int list  (** symbol + argument node ids *)

type t = {
  uf : Union_find.t;
  mutable kinds : node_kind array;
  mutable n_nodes : int;
  intern : (node_kind, int) Hashtbl.t;
  signatures : (string * int list, int) Hashtbl.t;
  mutable parents : int list array;  (* rep -> parent application nodes *)
  mutable num_of_class : int option array;  (* rep -> literal value if any *)
  mutable diseqs : (int * int) list;
  mutable inconsistent : bool;
}

let create () =
  {
    uf = Union_find.create ();
    kinds = Array.make 64 (Const "");
    n_nodes = 0;
    intern = Hashtbl.create 64;
    signatures = Hashtbl.create 64;
    parents = Array.make 64 [];
    num_of_class = Array.make 64 None;
    diseqs = [];
    inconsistent = false;
  }

let grow t n =
  if n >= Array.length t.kinds then begin
    let cap = max (n + 1) (2 * Array.length t.kinds) in
    let kinds = Array.make cap (Const "") in
    let parents = Array.make cap [] in
    let nums = Array.make cap None in
    Array.blit t.kinds 0 kinds 0 t.n_nodes;
    Array.blit t.parents 0 parents 0 t.n_nodes;
    Array.blit t.num_of_class 0 nums 0 t.n_nodes;
    t.kinds <- kinds;
    t.parents <- parents;
    t.num_of_class <- nums
  end

let find t n = Union_find.find t.uf n

let signature t f args = (f, List.map (find t) args)

let rec alloc t kind =
  match Hashtbl.find_opt t.intern kind with
  | Some id -> id
  | None ->
      let id = Union_find.make t.uf in
      grow t id;
      t.n_nodes <- id + 1;
      t.kinds.(id) <- kind;
      Hashtbl.add t.intern kind id;
      (match kind with
      | Num v -> t.num_of_class.(id) <- Some v
      | Const _ -> ()
      | Fapp (f, args) ->
          (* Register in the signature table, merging on collision. *)
          List.iter
            (fun a ->
              let r = find t a in
              t.parents.(r) <- id :: t.parents.(r))
            args;
          let s = signature t f args in
          (match Hashtbl.find_opt t.signatures s with
          | Some id' -> merge t id id'
          | None -> Hashtbl.add t.signatures s id));
      id

and merge t a b =
  if t.inconsistent then ()
  else
    let ra = find t a and rb = find t b in
    if ra <> rb then begin
      (* Numeric consistency. *)
      (match (t.num_of_class.(ra), t.num_of_class.(rb)) with
      | Some x, Some y when x <> y -> t.inconsistent <- true
      | _ -> ());
      if not t.inconsistent then begin
        let pa = t.parents.(ra) and pb = t.parents.(rb) in
        let na = t.num_of_class.(ra) and nb = t.num_of_class.(rb) in
        let r = Union_find.union t.uf ra rb in
        t.parents.(r) <- List.rev_append pa pb;
        t.num_of_class.(r) <- (match na with Some _ -> na | None -> nb);
        (* Recompute signatures of parents; merge on collisions. *)
        let to_merge = ref [] in
        List.iter
          (fun p ->
            match t.kinds.(p) with
            | Fapp (f, args) -> (
                let s = signature t f args in
                match Hashtbl.find_opt t.signatures s with
                | Some q when find t q <> find t p ->
                    to_merge := (p, q) :: !to_merge
                | Some _ -> ()
                | None -> Hashtbl.add t.signatures s p)
            | _ -> ())
          t.parents.(r);
        List.iter (fun (p, q) -> merge t p q) !to_merge
      end
    end

(** Intern a purified term. Arithmetic constructors are rejected — the
    caller must purify first. *)
let rec node_of_term t (tm : Term.t) =
  match tm with
  | Term.Var (x, _) -> alloc t (Const x)
  | Term.Int_lit n -> alloc t (Num n)
  | Term.App (f, args) ->
      let args = List.map (node_of_term t) args in
      alloc t (Fapp (f, args))
  | _ ->
      invalid_arg
        (Fmt.str "Cc.node_of_term: unpurified term %a" Term.pp tm)

let assert_eq t a b = merge t a b

let assert_neq t a b = t.diseqs <- (a, b) :: t.diseqs

let are_equal t a b = find t a = find t b

(** Consistency of everything asserted so far. *)
let consistent t =
  (not t.inconsistent)
  && List.for_all (fun (a, b) -> not (are_equal t a b)) t.diseqs

(** All interned nodes whose kind is a constant with the given name
    predicate — used for equality propagation across theories. *)
let const_nodes t =
  let acc = ref [] in
  Hashtbl.iter
    (fun kind id ->
      match kind with Const x -> acc := (x, id) :: !acc | _ -> ())
    t.intern;
  !acc
