(** The quantifier-free term language of the solver.

    Smart constructors perform light simplification (constant folding,
    flattening, double negation) so that callers can build terms
    naively; the heavy lifting — CNF conversion, purification — happens
    in {!Preprocess}. *)

type t =
  | Var of string * Sort.t
  | Int_lit of int
  | True
  | False
  | App of string * t list  (** uninterpreted function, int-sorted result *)
  | Pred of string * t list  (** uninterpreted predicate, bool-sorted *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Ite of t * t * t  (** condition, then, else — branches int-sorted *)
  | Eq of t * t
  | Le of t * t
  | Lt of t * t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t

let rec pp ppf = function
  | Var (x, _) -> Fmt.string ppf x
  | Int_lit n -> Fmt.int ppf n
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | App (f, args) | Pred (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ",@ ") pp) args
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Ite (c, a, b) -> Fmt.pf ppf "(ite %a %a %a)" pp c pp a pp b
  | Eq (a, b) -> Fmt.pf ppf "(%a = %a)" pp a pp b
  | Le (a, b) -> Fmt.pf ppf "(%a <= %a)" pp a pp b
  | Lt (a, b) -> Fmt.pf ppf "(%a < %a)" pp a pp b
  | Not a -> Fmt.pf ppf "¬%a" pp a
  | And ts -> Fmt.pf ppf "(@[%a@])" (Fmt.list ~sep:(Fmt.any " ∧@ ") pp) ts
  | Or ts -> Fmt.pf ppf "(@[%a@])" (Fmt.list ~sep:(Fmt.any " ∨@ ") pp) ts
  | Implies (a, b) -> Fmt.pf ppf "(%a → %a)" pp a pp b
  | Iff (a, b) -> Fmt.pf ppf "(%a ↔ %a)" pp a pp b

let to_string t = Fmt.str "%a" pp t

let rec equal a b =
  match (a, b) with
  | Var (x, s), Var (y, s') -> String.equal x y && Sort.equal s s'
  | Int_lit m, Int_lit n -> m = n
  | True, True | False, False -> true
  | App (f, xs), App (g, ys) | Pred (f, xs), Pred (g, ys) ->
      String.equal f g && List.equal equal xs ys
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Eq (a1, a2), Eq (b1, b2)
  | Le (a1, a2), Le (b1, b2)
  | Lt (a1, a2), Lt (b1, b2)
  | Implies (a1, a2), Implies (b1, b2)
  | Iff (a1, a2), Iff (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Ite (c1, a1, b1), Ite (c2, a2, b2) -> equal c1 c2 && equal a1 a2 && equal b1 b2
  | Not a, Not b -> equal a b
  | And xs, And ys | Or xs, Or ys -> List.equal equal xs ys
  | _ -> false

let compare a b = Stdlib.compare a b

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)

let var ?(sort = Sort.Int) x = Var (x, sort)
let bvar x = Var (x, Sort.Bool)
let int n = Int_lit n
let tru = True
let fls = False
let app f args = App (f, args)
let pred f args = Pred (f, args)

let add a b =
  match (a, b) with
  | Int_lit 0, t | t, Int_lit 0 -> t
  | Int_lit m, Int_lit n -> Int_lit (m + n)
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | t, Int_lit 0 -> t
  | Int_lit m, Int_lit n -> Int_lit (m - n)
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Int_lit 0, _ | _, Int_lit 0 -> Int_lit 0
  | Int_lit 1, t | t, Int_lit 1 -> t
  | Int_lit m, Int_lit n -> Int_lit (m * n)
  | _ -> Mul (a, b)

let neg t = sub (Int_lit 0) t

let not_ = function
  | True -> False
  | False -> True
  | Not t -> t
  | t -> Not t

let and_ ts =
  let ts =
    List.concat_map (function And xs -> xs | True -> [] | t -> [ t ]) ts
  in
  if List.exists (equal False) ts then False
  else match ts with [] -> True | [ t ] -> t | ts -> And ts

let or_ ts =
  let ts =
    List.concat_map (function Or xs -> xs | False -> [] | t -> [ t ]) ts
  in
  if List.exists (equal True) ts then True
  else match ts with [] -> False | [ t ] -> t | ts -> Or ts

let implies a b =
  match (a, b) with
  | True, b -> b
  | False, _ -> True
  | _, True -> True
  | a, False -> not_ a
  | _ -> Implies (a, b)

let iff a b =
  match (a, b) with
  | True, t | t, True -> t
  | False, t | t, False -> not_ t
  | _ -> if equal a b then True else Iff (a, b)

let eq a b =
  match (a, b) with
  | Int_lit m, Int_lit n -> if m = n then True else False
  | True, t | t, True -> t
  | False, t | t, False -> not_ t
  | _ -> if equal a b then True else Eq (a, b)

let le a b =
  match (a, b) with
  | Int_lit m, Int_lit n -> if m <= n then True else False
  | _ -> if equal a b then True else Le (a, b)

let lt a b =
  match (a, b) with
  | Int_lit m, Int_lit n -> if m < n then True else False
  | _ -> if equal a b then False else Lt (a, b)

let ge a b = le b a
let gt a b = lt b a
let neq a b = not_ (eq a b)
let ite c a b = match c with True -> a | False -> b | _ -> Ite (c, a, b)
let bool b = if b then True else False

(* ------------------------------------------------------------------ *)

let sort_of = function
  | Var (_, s) -> s
  | Int_lit _ | App _ | Add _ | Sub _ | Mul _ | Ite _ -> Sort.Int
  | True | False | Pred _ | Eq _ | Le _ | Lt _ | Not _ | And _ | Or _
  | Implies _ | Iff _ ->
      Sort.Bool

let rec free_vars acc = function
  | Var (x, s) -> (x, s) :: acc
  | Int_lit _ | True | False -> acc
  | App (_, args) | Pred (_, args) -> List.fold_left free_vars acc args
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) | Le (a, b) | Lt (a, b)
  | Implies (a, b) | Iff (a, b) ->
      free_vars (free_vars acc a) b
  | Ite (c, a, b) -> free_vars (free_vars (free_vars acc c) a) b
  | Not a -> free_vars acc a
  | And ts | Or ts -> List.fold_left free_vars acc ts

let vars t =
  free_vars [] t |> List.sort_uniq compare

(** Capture-free substitution of variables by terms (our terms have no
    binders, so plain structural replacement is capture-free). *)
let rec subst map t =
  match t with
  | Var (x, _) -> ( match Stdx.Smap.find_opt x map with Some u -> u | None -> t)
  | Int_lit _ | True | False -> t
  | App (f, args) -> App (f, List.map (subst map) args)
  | Pred (f, args) -> Pred (f, List.map (subst map) args)
  | Add (a, b) -> add (subst map a) (subst map b)
  | Sub (a, b) -> sub (subst map a) (subst map b)
  | Mul (a, b) -> mul (subst map a) (subst map b)
  | Ite (c, a, b) -> ite (subst map c) (subst map a) (subst map b)
  | Eq (a, b) -> eq (subst map a) (subst map b)
  | Le (a, b) -> le (subst map a) (subst map b)
  | Lt (a, b) -> lt (subst map a) (subst map b)
  | Not a -> not_ (subst map a)
  | And ts -> and_ (List.map (subst map) ts)
  | Or ts -> or_ (List.map (subst map) ts)
  | Implies (a, b) -> implies (subst map a) (subst map b)
  | Iff (a, b) -> iff (subst map a) (subst map b)

(** Evaluate a closed-enough term under a valuation. Used by the model
    checker in tests and for counterexample reporting. Unknown
    variables and uninterpreted applications evaluate via [on_app]. *)
let rec eval ~(env : int Stdx.Smap.t)
    ?(on_app = fun _ _ -> None) (t : t) : int option =
  let open Option in
  let int_of t = eval ~env ~on_app t in
  let both f a b =
    bind (int_of a) (fun x -> bind (int_of b) (fun y -> Some (f x y)))
  in
  match t with
  | Var (x, _) -> Stdx.Smap.find_opt x env
  | Int_lit n -> Some n
  | True -> Some 1
  | False -> Some 0
  | App (f, args) | Pred (f, args) ->
      let vals = List.filter_map int_of args in
      if List.length vals = List.length args then on_app f vals else None
  | Add (a, b) -> both ( + ) a b
  | Sub (a, b) -> both ( - ) a b
  | Mul (a, b) -> both ( * ) a b
  | Ite (c, a, b) ->
      bind (int_of c) (fun c -> if c <> 0 then int_of a else int_of b)
  | Eq (a, b) -> both (fun x y -> if x = y then 1 else 0) a b
  | Le (a, b) -> both (fun x y -> if x <= y then 1 else 0) a b
  | Lt (a, b) -> both (fun x y -> if x < y then 1 else 0) a b
  | Not a -> map (fun x -> 1 - x) (int_of a)
  | And ts ->
      List.fold_left
        (fun acc t -> bind acc (fun a -> map (fun b -> min a b) (int_of t)))
        (Some 1) ts
  | Or ts ->
      List.fold_left
        (fun acc t -> bind acc (fun a -> map (fun b -> max a b) (int_of t)))
        (Some 0) ts
  | Implies (a, b) -> both (fun x y -> if x <> 0 && y = 0 then 0 else 1) a b
  | Iff (a, b) ->
      both (fun x y -> if (x <> 0) = (y <> 0) then 1 else 0) a b

let eval_bool ~env ?on_app t =
  match eval ~env ?on_app t with
  | Some n -> Some (n <> 0)
  | None -> None

(** Size of a term (number of constructors) — used for statistics. *)
let rec size = function
  | Var _ | Int_lit _ | True | False -> 1
  | App (_, args) | Pred (_, args) ->
      1 + Stdx.Listx.sum (List.map size args)
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) | Le (a, b) | Lt (a, b)
  | Implies (a, b) | Iff (a, b) ->
      1 + size a + size b
  | Ite (c, a, b) -> 1 + size c + size a + size b
  | Not a -> 1 + size a
  | And ts | Or ts -> 1 + Stdx.Listx.sum (List.map size ts)
