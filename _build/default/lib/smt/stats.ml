(** Global solver statistics, reset per benchmark run.

    The benchmark harness (tables T2/F3) reads these counters to report
    query counts and theory-check breakdowns. *)

type t = {
  mutable queries : int;  (** top-level [check_sat] calls *)
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
  mutable theory_checks : int;  (** candidate models checked *)
  mutable lia_checks : int;  (** simplex invocations *)
  mutable euf_checks : int;  (** congruence-closure invocations *)
  mutable blocking_clauses : int;
  mutable eq_propagations : int;  (** cross-theory equalities *)
}

let global =
  {
    queries = 0;
    sat_conflicts = 0;
    sat_decisions = 0;
    sat_propagations = 0;
    theory_checks = 0;
    lia_checks = 0;
    euf_checks = 0;
    blocking_clauses = 0;
    eq_propagations = 0;
  }

let reset () =
  global.queries <- 0;
  global.sat_conflicts <- 0;
  global.sat_decisions <- 0;
  global.sat_propagations <- 0;
  global.theory_checks <- 0;
  global.lia_checks <- 0;
  global.euf_checks <- 0;
  global.blocking_clauses <- 0;
  global.eq_propagations <- 0

let snapshot () =
  {
    queries = global.queries;
    sat_conflicts = global.sat_conflicts;
    sat_decisions = global.sat_decisions;
    sat_propagations = global.sat_propagations;
    theory_checks = global.theory_checks;
    lia_checks = global.lia_checks;
    euf_checks = global.euf_checks;
    blocking_clauses = global.blocking_clauses;
    eq_propagations = global.eq_propagations;
  }

let diff a b =
  {
    queries = a.queries - b.queries;
    sat_conflicts = a.sat_conflicts - b.sat_conflicts;
    sat_decisions = a.sat_decisions - b.sat_decisions;
    sat_propagations = a.sat_propagations - b.sat_propagations;
    theory_checks = a.theory_checks - b.theory_checks;
    lia_checks = a.lia_checks - b.lia_checks;
    euf_checks = a.euf_checks - b.euf_checks;
    blocking_clauses = a.blocking_clauses - b.blocking_clauses;
    eq_propagations = a.eq_propagations - b.eq_propagations;
  }

let pp ppf s =
  Fmt.pf ppf
    "queries=%d conflicts=%d decisions=%d theory=%d lia=%d euf=%d blocked=%d \
     eqprop=%d"
    s.queries s.sat_conflicts s.sat_decisions s.theory_checks s.lia_checks
    s.euf_checks s.blocking_clauses s.eq_propagations
