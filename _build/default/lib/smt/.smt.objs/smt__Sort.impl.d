lib/smt/sort.ml: Fmt
