lib/smt/theory.ml: Cc Fmt Gensym Hashtbl List Listx Q Simplex Smap Sort Stats Stdx Sys Term
