lib/smt/smt.ml: Cc Sat Simplex Solver Sort Stats Term Theory
