lib/smt/solver.ml: Fmt Gensym Hashtbl List Option Sat Smap Smt__ Sort Stats Stdx String Sys Term Theory
