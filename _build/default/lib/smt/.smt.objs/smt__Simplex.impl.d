lib/smt/simplex.ml: Array Fmt Hashtbl List Option Q Smap Stdx
