lib/smt/cc.ml: Array Fmt Hashtbl List Stdx Term Union_find
