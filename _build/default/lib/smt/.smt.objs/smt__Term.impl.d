lib/smt/term.ml: Fmt List Option Sort Stdlib Stdx String
