lib/smt/stats.ml: Fmt
