lib/camera/updates.ml: Camera_intf List
