lib/camera/agree.ml: Fmt List Stdx
