lib/camera/camera_intf.ml: Fmt
