lib/camera/prod.ml: Camera_intf Fmt
