lib/camera/gmap.ml: Camera_intf Smap Stdx
