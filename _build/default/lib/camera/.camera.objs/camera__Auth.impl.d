lib/camera/auth.ml: Camera_intf Fmt
