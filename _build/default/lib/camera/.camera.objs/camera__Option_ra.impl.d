lib/camera/option_ra.ml: Camera_intf Fmt Option
