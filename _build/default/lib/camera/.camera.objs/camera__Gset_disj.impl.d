lib/camera/gset_disj.ml: Fmt Set String
