lib/camera/frac.ml: Q Stdx
