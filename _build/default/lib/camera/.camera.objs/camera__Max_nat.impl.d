lib/camera/max_nat.ml: Fmt Int
