lib/camera/excl.ml: Fmt
