lib/camera/camera.ml: Agree Auth Camera_intf Excl Frac Gmap Gset_disj Max_nat Nat_add Option_ra Prod Registry Sum Updates
