lib/camera/registry.ml: Array Camera_intf Fmt Gmap Option Smap Stdx
