lib/camera/sum.ml: Camera_intf Fmt Option
