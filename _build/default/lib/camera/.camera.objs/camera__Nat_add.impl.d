lib/camera/nat_add.ml: Fmt Int
