(** Frame-preserving updates.

    A frame-preserving update [a ~~> b] permits replacing ownership of
    [a] by ownership of [b] under the update modality: for every frame
    [f] (including the absent frame), validity of [a ⋅? f] implies
    validity of [b ⋅? f]. The definition quantifies over all frames, so
    it is not decidable in general; this module provides

    - a brute-force checker for finite cameras (used in tests as ground
      truth), and
    - sound decision procedures for the update patterns the verifier
      relies on (exclusive overwrite, authoritative/local updates).

    The base-logic kernel takes an update oracle as a parameter; the
    oracles below are the building blocks of the one used by the
    verifier, and the test suite cross-checks each against the
    brute-force checker on finite sub-models. *)

(** Ground truth on finite cameras: check every frame in [elements],
    plus the missing frame. *)
let brute_force (type a) (module C : Camera_intf.FINITE with type t = a)
    (a : a) (b : a) =
  let no_frame_ok = C.valid b || not (C.valid a) in
  no_frame_ok
  && List.for_all
       (fun f -> (not (C.valid (C.op a f))) || C.valid (C.op b f))
       C.elements

(** In the exclusive camera every frame invalidates [a], so [Excl x ~~>
    Excl y] holds unconditionally; more generally any update between
    *exclusive* elements (elements whose composition with every frame
    is invalid) only needs the target valid on its own. *)
let exclusive_fpu ~valid_target = valid_target

(** Local update on [nat_add]: [(n, m) ~l~> (n + k, m + k)]. Lifted to
    the authoritative camera this is the counter-increment update
    [● n ⋅ ◯ m ~~> ● (n+k) ⋅ ◯ (m+k)]. *)
let auth_nat_local_update ~auth ~frag ~auth' ~frag' =
  auth >= 0 && frag >= 0 && frag <= auth && auth' - auth = frag' - frag
  && frag' >= 0
