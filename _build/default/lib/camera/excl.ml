(** The exclusive camera [Excl A].

    Ownership of [Excl a] is full ownership: composing two exclusive
    elements is invalid ([Bot]). There is no core — exclusive ownership
    is never duplicable. *)

module type ELT = sig
  type t

  val pp : t Fmt.t
  val equal : t -> t -> bool
end

module Make (E : ELT) = struct
  type t = Excl of E.t | Bot

  let pp ppf = function
    | Excl a -> Fmt.pf ppf "excl(%a)" E.pp a
    | Bot -> Fmt.string ppf "excl:⊥"

  let equal a b =
    match (a, b) with
    | Excl x, Excl y -> E.equal x y
    | Bot, Bot -> true
    | _ -> false

  let valid = function Excl _ -> true | Bot -> false
  let op _ _ = Bot
  let pcore _ = None

  (* [Excl a ≼ Bot] holds: any witness composes to [Bot]. Within valid
     elements nothing is included in anything (no unit). *)
  let included a b =
    match (a, b) with Bot, Bot -> true | _, Bot -> true | _ -> false
end
