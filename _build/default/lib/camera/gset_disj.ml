(** The disjoint-set camera [GSet K].

    Ownership of a set of tokens; composition of overlapping sets is
    invalid. Used for namespaces and one-shot tokens. *)

module SSet = Set.Make (String)

type t = Set of SSet.t | Bot

let pp ppf = function
  | Set s ->
      Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ",") Fmt.string)
        (SSet.elements s)
  | Bot -> Fmt.string ppf "gset:⊥"

let equal a b =
  match (a, b) with
  | Set x, Set y -> SSet.equal x y
  | Bot, Bot -> true
  | _ -> false

let valid = function Set _ -> true | Bot -> false

let op a b =
  match (a, b) with
  | Set x, Set y when SSet.disjoint x y -> Set (SSet.union x y)
  | _ -> Bot

let pcore = function Set _ -> Some (Set SSet.empty) | Bot -> Some Bot

let included a b =
  match (a, b) with
  | Set x, Set y -> SSet.subset x y
  | _, Bot -> true
  | Bot, Set _ -> false

let unit = Set SSet.empty
let singleton k = Set (SSet.singleton k)
let of_list ks = Set (SSet.of_list ks)
