(** The sum camera [A + B].

    An element is either a left injection, a right injection, or the
    invalid mixture [SumBot] produced by composing across sides. *)

module Make (A : Camera_intf.S) (B : Camera_intf.S) = struct
  type t = Inl of A.t | Inr of B.t | SumBot

  let pp ppf = function
    | Inl a -> Fmt.pf ppf "inl(%a)" A.pp a
    | Inr b -> Fmt.pf ppf "inr(%a)" B.pp b
    | SumBot -> Fmt.string ppf "sum:⊥"

  let equal x y =
    match (x, y) with
    | Inl a, Inl b -> A.equal a b
    | Inr a, Inr b -> B.equal a b
    | SumBot, SumBot -> true
    | _ -> false

  let valid = function
    | Inl a -> A.valid a
    | Inr b -> B.valid b
    | SumBot -> false

  let op x y =
    match (x, y) with
    | Inl a, Inl b -> Inl (A.op a b)
    | Inr a, Inr b -> Inr (B.op a b)
    | _ -> SumBot

  let pcore = function
    | Inl a -> Option.map (fun c -> Inl c) (A.pcore a)
    | Inr b -> Option.map (fun c -> Inr c) (B.pcore b)
    | SumBot -> Some SumBot

  let included x y =
    match (x, y) with
    | Inl a, Inl b -> A.included a b
    | Inr a, Inr b -> B.included a b
    | _, SumBot -> true
    | _ -> false
end
