(** The (discrete) agreement camera [Ag A].

    [Ag a] asserts knowledge of a value that all parties agree on;
    composition records every claimed value and is valid only when they
    all coincide. Every element is its own core: agreement is freely
    duplicable. *)

module type ELT = sig
  type t

  val pp : t Fmt.t
  val equal : t -> t -> bool
  val compare : t -> t -> int
end

module Make (E : ELT) = struct
  type t = { claims : E.t list (* sorted, deduplicated, nonempty *) }

  let of_elt a = { claims = [ a ] }

  let pp ppf t =
    Fmt.pf ppf "ag(%a)" (Fmt.list ~sep:(Fmt.any ",") E.pp) t.claims

  let equal a b = List.equal E.equal a.claims b.claims
  let valid t = match t.claims with [ _ ] -> true | _ -> false

  let op a b =
    { claims = Stdx.Listx.dedup ~compare:E.compare (a.claims @ b.claims) }

  let pcore t = Some t

  let included a b =
    (* a ≼ b iff a ⋅ b = b, i.e. every claim of a is a claim of b. *)
    List.for_all (fun c -> List.exists (E.equal c) b.claims) a.claims

  (** [value t] is the agreed value of a valid element. *)
  let value t = match t.claims with [ a ] -> Some a | _ -> None
end
