(** Cameras (resource algebras): the semantic model of Iris ghost state.

    See {!Camera_intf} for the interfaces and laws. *)

module Intf = Camera_intf

module type S = Camera_intf.S
module type UNITAL = Camera_intf.UNITAL
module type FINITE = Camera_intf.FINITE

module Excl = Excl
module Agree = Agree
module Frac = Frac
module Nat_add = Nat_add
module Max_nat = Max_nat
module Option_ra = Option_ra
module Prod = Prod
module Sum = Sum
module Gmap = Gmap
module Gset_disj = Gset_disj
module Auth = Auth
module Updates = Updates
module Registry = Registry
