(** Natural numbers under addition — the contribution camera.

    Used as the fragment camera of authoritative counters: each party
    owns its contribution, and the sum of contributions is bounded by
    the authoritative total. Unital with unit [0]. *)

type t = int

let pp = Fmt.int
let equal = Int.equal
let valid n = n >= 0
let op = ( + )
let pcore _ = Some 0
let included a b = a <= b
let unit = 0
