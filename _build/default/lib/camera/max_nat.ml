(** Natural numbers under maximum — the monotone-counter camera.

    [MaxNat n] is persistent knowledge of a lower bound: composition
    takes the maximum, and every element is its own core. *)

type t = int

let pp = Fmt.int
let equal = Int.equal
let valid n = n >= 0
let op = max
let pcore n = Some n
let included a b = a <= b
let unit = 0
