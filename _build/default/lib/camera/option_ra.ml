(** The option camera: adjoins a unit to any camera.

    [None] is the unit; [Some a] embeds the underlying camera. This is
    how non-unital cameras (exclusive, fractional, agreement) become
    usable as values of unital finite-map cameras. *)

module Make (C : Camera_intf.S) = struct
  type t = C.t option

  let pp ppf = function
    | None -> Fmt.string ppf "ε"
    | Some a -> C.pp ppf a

  let equal a b = Option.equal C.equal a b
  let valid = function None -> true | Some a -> C.valid a

  let op a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (C.op a b)

  let pcore = function
    | None -> Some None
    | Some a -> (
        match C.pcore a with None -> Some None | Some c -> Some (Some c))

  let included a b =
    match (a, b) with
    | None, _ -> true
    | Some _, None -> false
    | Some a, Some b -> C.included a b || C.equal a b
  (* In option, [Some a ≼ Some b] iff [a ≼ b] in C *or* [a ≡ b]
     (witness [None]). *)

  let unit = None
end
