(** Camera (resource algebra) interfaces.

    A camera is the Iris notion of a resource: a partial commutative
    monoid with a validity predicate and a partial "core" extracting the
    duplicable part of an element. This development uses *discrete*
    cameras — validity and equality do not depend on the step index —
    which is the fragment needed for the ghost state of the verifier.
    Step-indexing lives entirely in the base logic ([Baselogic]), where
    the later modality counts down a semantic step index.

    Laws (validated by QCheck in [test/test_camera.ml]):
    - [op] is associative and commutative;
    - validity is down-closed: [valid (op a b)] implies [valid a];
    - if [pcore a = Some ca] then [op ca a = a], [pcore ca = Some ca],
      and the core is monotone w.r.t. inclusion;
    - [included a b] decides the extension order [∃ c. b ≡ op a c]. *)

module type S = sig
  type t

  val pp : t Fmt.t
  val equal : t -> t -> bool

  val valid : t -> bool
  (** Validity. Composition of conflicting resources (two full
      fractions, two different exclusive values, …) yields an invalid
      element rather than being undefined. *)

  val op : t -> t -> t
  (** Resource composition [a ⋅ b]. Total; invalidity marks conflicts. *)

  val pcore : t -> t option
  (** The partial core [|a|]: the maximal duplicable part, if any. *)

  val included : t -> t -> bool
  (** [included a b] iff [∃ c. b ≡ op a c]. Every instance implements
      this directly (and tests cross-check it against enumeration on
      finite sub-models). *)
end

module type UNITAL = sig
  include S

  val unit : t
  (** [valid unit], [op unit a = a], and [pcore unit = Some unit]. *)
end

(** A camera together with a finite enumeration of (a subset of) its
    elements, used to model-check logic rules in tests and to validate
    frame-preserving updates by brute force. *)
module type FINITE = sig
  include S

  val elements : t list
end
