(** The authoritative camera [Auth M] over a unital camera [M].

    [auth a] (written [● a]) is the unique authoritative element;
    [frag b] (written [◯ b]) is a fragment. Validity of a composition
    requires at most one authoritative part, with every fragment
    included in it. This is the workhorse for connecting ghost state to
    physical state (heaps, counters, monotone logs). *)

module Make (M : Camera_intf.UNITAL) = struct
  type auth_part = NoAuth | Auth of M.t | AuthBot

  type t = { auth : auth_part; frag : M.t }

  let pp ppf t =
    match t.auth with
    | NoAuth -> Fmt.pf ppf "◯ %a" M.pp t.frag
    | Auth a -> Fmt.pf ppf "● %a ⋅ ◯ %a" M.pp a M.pp t.frag
    | AuthBot -> Fmt.string ppf "auth:⊥"

  let equal x y =
    (match (x.auth, y.auth) with
    | NoAuth, NoAuth -> true
    | Auth a, Auth b -> M.equal a b
    | AuthBot, AuthBot -> true
    | _ -> false)
    && M.equal x.frag y.frag

  let auth a = { auth = Auth a; frag = M.unit }
  let frag b = { auth = NoAuth; frag = b }
  let both a b = { auth = Auth a; frag = b }

  let valid t =
    match t.auth with
    | NoAuth -> M.valid t.frag
    | Auth a ->
        M.valid a && (M.included t.frag a || M.equal t.frag a)
    | AuthBot -> false

  let op x y =
    let auth =
      match (x.auth, y.auth) with
      | NoAuth, a | a, NoAuth -> a
      | _ -> AuthBot
    in
    { auth; frag = M.op x.frag y.frag }

  let pcore t =
    match M.pcore t.frag with
    | Some c -> Some { auth = NoAuth; frag = c }
    | None -> Some { auth = NoAuth; frag = M.unit }
  (* The core drops the authoritative part and keeps the fragment's
     core; with a unital M the fragment core is total. *)

  let included x y =
    let auth_incl =
      match (x.auth, y.auth) with
      | NoAuth, _ -> true
      | Auth a, Auth b -> M.equal a b
      | _, AuthBot -> true
      | _ -> false
    in
    auth_incl && (M.included x.frag y.frag || M.equal x.frag y.frag)
end
