(** The fractional camera: rationals in (0, 1], composed by addition.

    The canonical permission camera: [1] is full ownership, any positive
    fraction grants read access, and fractions recombine by addition.
    Sums above [1] are invalid. *)

open Stdx

type t = Q.t

let pp = Q.pp
let equal = Q.equal
let valid q = Q.gt q Q.zero && Q.leq q Q.one
let op = Q.add
let pcore _ = None

let included a b = Q.lt a b
(* ∃ c > 0. a + c = b iff a < b. *)

let full = Q.one
let half = Q.half
