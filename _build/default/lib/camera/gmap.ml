(** The finite-map camera [gmap K A]: pointwise composition.

    Absent keys act as units, so the map camera is unital with the empty
    map even when the value camera is not. Keys are strings (ghost
    names, printed locations); richer key types go through their printed
    form. *)

open Stdx

module Make (C : Camera_intf.S) = struct
  type t = C.t Smap.t

  let pp ppf m = Smap.pp C.pp ppf m
  let equal a b = Smap.equal C.equal a b
  let valid m = Smap.for_all (fun _ v -> C.valid v) m

  let op a b =
    Smap.union (fun _ x y -> Some (C.op x y)) a b

  let pcore m =
    (* Pointwise cores; keys without a core simply drop out (their core
       is the absent-key unit). *)
    Some (Smap.filter_map (fun _ v -> C.pcore v) m)

  let included a b =
    Smap.for_all
      (fun k va ->
        match Smap.find_opt k b with
        | None -> false
        | Some vb -> C.included va vb || C.equal va vb)
      a

  let unit = Smap.empty
  let singleton k v = Smap.add k v Smap.empty
  let find = Smap.find_opt
  let add = Smap.add
  let remove = Smap.remove
  let bindings = Smap.bindings
end
