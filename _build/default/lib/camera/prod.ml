(** The product camera: componentwise composition.

    The core exists only when both components have cores (partial cores
    compose pointwise in the partial-function sense — here we follow
    Iris: the product core is defined iff both cores are). *)

module Make (A : Camera_intf.S) (B : Camera_intf.S) = struct
  type t = A.t * B.t

  let pp ppf (a, b) = Fmt.pf ppf "(%a, %a)" A.pp a B.pp b
  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2
  let valid (a, b) = A.valid a && B.valid b
  let op (a1, b1) (a2, b2) = (A.op a1 a2, B.op b1 b2)

  let pcore (a, b) =
    match (A.pcore a, B.pcore b) with
    | Some ca, Some cb -> Some (ca, cb)
    | _ -> None

  let included (a1, b1) (a2, b2) =
    (A.included a1 a2 || A.equal a1 a2) && (B.included b1 b2 || B.equal b1 b2)
  (* Inclusion in a product without units requires a witness per
     component; allowing reflexivity per component matches inclusion in
     the unital completion, which is what the logic uses. *)
end

module MakeUnital (A : Camera_intf.UNITAL) (B : Camera_intf.UNITAL) = struct
  include Make (A) (B)

  let unit = (A.unit, B.unit)

  (* With units, inclusion is the genuine extension order. *)
  let included (a1, b1) (a2, b2) =
    (A.included a1 a2 || A.equal a1 a2) && (B.included b1 b2 || B.equal b1 b2)
end
