(** Parametric workload generators for the scaling figures.

    - {!straightline}: a chain of [n] increments of one cell — F1's
      x-axis. Both a verifier task and a baseline task, so the two
      systems are compared on identical programs.
    - {!multicell}: [k] cells, each loaded/incremented/stored once —
      F2's x-axis (symbolic-heap size).
    - {!pigeonhole} and {!euf_chain}: synthetic solver instances for
      F3. *)

open Stdx
module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module P = Proofmode.Prove

let sym x = HL.Val (HL.Sym x)
let pt l v = A.points_to (T.var l) v

(* ------------------------------------------------------------------ *)

(** [n] sequential increments of a single cell:
    {v let c = !l in l <- c+1; …; !l v}
    pre: [l ↦ 0]; post: [result = n ∗ l ↦ n]. *)
let straightline (n : int) : V.proc * Programs.baseline =
  let rec build i =
    if i = 0 then HL.Load (sym "l")
    else
      let c = Printf.sprintf "c%d" i and d = Printf.sprintf "d%d" i in
      HL.Let
        ( c,
          HL.Load (sym "l"),
          HL.Let
            ( d,
              HL.BinOp (HL.Add, HL.Var c, HL.Val (HL.Int 1)),
              HL.Seq (HL.Store (sym "l", HL.Var d), build (i - 1)) ) )
  in
  let body = build n in
  let pre = pt "l" (T.int 0) in
  let post =
    A.Sep (pt "l" (T.int n), A.Pure (T.eq (T.var "result") (T.int n)))
  in
  ( {
      V.pname = Printf.sprintf "straight%d" n;
      params = [ "l" ];
      requires = pre;
      ensures = post;
      body;
      invariants = [];
      ghost = [];
    },
    { Programs.b_pre = pre; b_body = body; b_post = post; b_invs = [] } )

(** [k] cells, each bumped once. Exercises chunk matching: the
    symbolic heap holds [k] chunks throughout. *)
let multicell (k : int) : V.proc =
  let cell i = Printf.sprintf "l%d" i in
  let rec build i =
    let bump =
      HL.Let
        ( "c",
          HL.Load (sym (cell i)),
          HL.Let
            ( "d",
              HL.BinOp (HL.Add, HL.Var "c", HL.Val (HL.Int 1)),
              HL.Store (sym (cell i), HL.Var "d") ) )
    in
    if i = k - 1 then bump else HL.Seq (bump, build (i + 1))
  in
  let cells f = List.init k (fun i -> pt (cell i) (f i)) in
  {
    V.pname = Printf.sprintf "multicell%d" k;
    params = List.init k cell;
    requires = A.seps (cells (fun _ -> T.int 0));
    ensures = A.seps (cells (fun _ -> T.int 1));
    body = build 0;
    invariants = [];
    ghost = [];
  }

(* ------------------------------------------------------------------ *)
(* Solver microbenchmarks (F3) *)

(** The pigeonhole principle PHP(n): n+1 pigeons, n holes — unsat and
    exponentially hard for resolution-based solvers; the classic CDCL
    stress test. *)
let pigeonhole (n : int) : T.t list =
  let in_hole p h = T.bvar (Printf.sprintf "p%dh%d" p h) in
  let pigeons =
    List.init (n + 1) (fun p -> T.or_ (List.init n (fun h -> in_hole p h)))
  in
  let no_collision =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p1 < p2 then
                  Some (T.or_ [ T.not_ (in_hole p1 h); T.not_ (in_hole p2 h) ])
                else None)
              (Listx.range 0 (n + 1)))
          (Listx.range 0 (n + 1)))
      (Listx.range 0 n)
  in
  pigeons @ no_collision

(** A congruence chain: x₀ = x₁ = … = xₖ, then [f x₀ ≠ f xₖ] — unsat
    after k congruence propagations. *)
let euf_chain (k : int) : T.t list =
  let x i = T.var (Printf.sprintf "x%d" i) in
  List.init k (fun i -> T.eq (x i) (x (i + 1)))
  @ [ T.neq (T.app "f" [ x 0 ]) (T.app "f" [ x k ]) ]

(** A diamond of equalities driven by boolean choices — mixes CDCL
    and LIA: each layer adds [xᵢ₊₁ = xᵢ + aᵢ] or [xᵢ₊₁ = xᵢ + bᵢ];
    the goal bounds the endpoint. Satisfiable, model needed. *)
let lia_diamond (k : int) : T.t list =
  let x i = T.var (Printf.sprintf "x%d" i) in
  List.init k (fun i ->
      T.or_
        [
          T.eq (x (i + 1)) (T.add (x i) (T.int 1));
          T.eq (x (i + 1)) (T.add (x i) (T.int 2));
        ])
  @ [ T.eq (x 0) (T.int 0); T.ge (x k) (T.int k) ]
