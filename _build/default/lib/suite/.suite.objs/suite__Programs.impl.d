lib/suite/programs.ml: Baselogic Heaplang List Proofmode Q Smap Smt Stdx Verifier
