lib/suite/suite.ml: Generators Programs
