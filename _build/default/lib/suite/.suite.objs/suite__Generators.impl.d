lib/suite/generators.ml: Baselogic Heaplang List Listx Printf Programs Proofmode Smt Stdx Verifier
