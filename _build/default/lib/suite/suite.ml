(** The benchmark suite: annotated programs ({!Programs}) and
    parametric workload generators ({!Generators}). *)

module Programs = Programs
module Generators = Generators
