(** A recursive-descent parser for the surface syntax.

    Grammar (lowest to highest precedence):
    {v
    expr    ::= "let" x "=" expr "in" expr
              | "fun" x "->" expr | "rec" f x "->" expr
              | "if" expr "then" expr "else" expr
              | "while" expr "do" expr "done"
              | seq
    seq     ::= assign (";" expr)?            — right-associated
    assign  ::= disj ("<-" disj)?             — store
    disj    ::= conj ("||" conj)*
    conj    ::= cmp ("&&" cmp)*
    cmp     ::= arith (("=="|"!="|"<"|"<="|">"|">=") arith)?
    arith   ::= term (("+"|"-") term)*
    term    ::= prefix (("*"|"/"|"%") prefix)*
    prefix  ::= "!" prefix | "-" prefix | app
    app     ::= atom atom*                    — application, also the
                keyword applications ref/free/assert/fst/snd/inl/inr
    atom    ::= int | "true" | "false" | "(" ")" | ident | ?sym
              | "ghost" ident
              | "CAS" "(" expr "," expr "," expr ")"
              | "FAA" "(" expr "," expr ")"
              | "match" expr "with" "inl" x "->" expr "|" … — omitted;
                use [Ast.Case] directly for sums
              | "(" expr ("," expr)? ")"
    v}

    The parser produces plain {!Ast.expr}; `?x` symbols become [Sym]
    values, so parsed programs plug directly into the verifier. *)

open Ast

exception Parse_error of string * int

let fail_at pos fmt = Fmt.kstr (fun m -> raise (Parse_error (m, pos))) fmt

type state = { mutable toks : (Lexer.token * int) list }

let peek st = match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  let t, pos = peek st in
  if t = tok then advance st
  else fail_at pos "expected %s, found %a" what Lexer.pp_token t

let expect_ident st what =
  match peek st with
  | Lexer.IDENT x, _ ->
      advance st;
      x
  | t, pos -> fail_at pos "expected %s, found %a" what Lexer.pp_token t

let bin_of_string = function
  | "+" -> Add
  | "-" -> Sub
  | "*" -> Mul
  | "/" -> Div
  | "%" -> Rem
  | "==" -> Eq
  | "!=" -> Ne
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | "&&" -> AndOp
  | "||" -> OrOp
  | s -> invalid_arg ("bin_of_string: " ^ s)

let rec expr st : expr =
  (* any construct may be followed by `; rest` *)
  let e = head st in
  match peek st with
  | Lexer.SEMI, _ ->
      advance st;
      Seq (e, expr st)
  | _ -> e

and head st : expr =
  match peek st with
  | Lexer.KW "let", _ ->
      advance st;
      let x = expect_ident st "binder" in
      expect st (Lexer.OP "=") "'='";
      let e1 = expr st in
      expect st (Lexer.KW "in") "'in'";
      let e2 = expr st in
      Let (x, e1, e2)
  | Lexer.KW "fun", _ ->
      advance st;
      let x = expect_ident st "parameter" in
      expect st Lexer.ARROW "'->'";
      Rec (None, x, expr st)
  | Lexer.KW "rec", _ ->
      advance st;
      let f = expect_ident st "function name" in
      let x = expect_ident st "parameter" in
      expect st Lexer.ARROW "'->'";
      Rec (Some f, x, expr st)
  | Lexer.KW "if", _ ->
      advance st;
      let c = expr st in
      expect st (Lexer.KW "then") "'then'";
      let a = head st in
      expect st (Lexer.KW "else") "'else'";
      let b = head st in
      If (c, a, b)
  | Lexer.KW "while", _ ->
      advance st;
      let c = expr st in
      expect st (Lexer.KW "do") "'do'";
      let b = expr st in
      expect st (Lexer.KW "done") "'done'";
      While (c, b)
  | _ -> assign st

and assign st : expr =
  let e1 = disj st in
  match peek st with
  | Lexer.LARROW, _ ->
      advance st;
      Store (e1, disj st)
  | _ -> e1

and binlevel ops next st : expr =
  let rec go acc =
    match peek st with
    | Lexer.OP o, _ when List.mem o ops ->
        advance st;
        go (BinOp (bin_of_string o, acc, next st))
    | _ -> acc
  in
  go (next st)

and disj st = binlevel [ "||" ] conj st
and conj st = binlevel [ "&&" ] cmp st

and cmp st : expr =
  let e1 = arith st in
  match peek st with
  | Lexer.OP o, _ when List.mem o [ "=="; "!="; "<"; "<="; ">"; ">=" ] ->
      advance st;
      BinOp (bin_of_string o, e1, arith st)
  | _ -> e1

and arith st = binlevel [ "+"; "-" ] term st
and term st = binlevel [ "*"; "/"; "%" ] prefix st

and prefix st : expr =
  match peek st with
  | Lexer.BANG, _ ->
      advance st;
      Load (prefix st)
  | Lexer.OP "-", _ ->
      advance st;
      UnOp (Neg, prefix st)
  | _ -> app st

and app st : expr =
  match peek st with
  | Lexer.KW "ref", _ ->
      advance st;
      Alloc (atom st)
  | Lexer.KW "free", _ ->
      advance st;
      Free (atom st)
  | Lexer.KW "assert", _ ->
      advance st;
      Assert (atom st)
  | Lexer.KW "fst", _ ->
      advance st;
      Fst (atom st)
  | Lexer.KW "snd", _ ->
      advance st;
      Snd (atom st)
  | Lexer.KW "inl", _ ->
      advance st;
      InjLE (atom st)
  | Lexer.KW "inr", _ ->
      advance st;
      InjRE (atom st)
  | _ ->
      let rec go acc =
        match peek st with
        | (Lexer.INT _ | Lexer.IDENT _ | Lexer.SYM _ | Lexer.LPAREN
          | Lexer.KW ("true" | "false" | "ghost" | "CAS" | "FAA")), _ ->
            go (App (acc, atom st))
        | _ -> acc
      in
      go (atom st)

and atom st : expr =
  match peek st with
  | Lexer.INT n, _ ->
      advance st;
      Val (Int n)
  | Lexer.KW "true", _ ->
      advance st;
      Val (Bool true)
  | Lexer.KW "false", _ ->
      advance st;
      Val (Bool false)
  | Lexer.IDENT x, _ ->
      advance st;
      Var x
  | Lexer.SYM x, _ ->
      advance st;
      Val (Sym x)
  | Lexer.KW "ghost", _ ->
      advance st;
      GhostMark (expect_ident st "ghost key")
  | Lexer.KW "CAS", _ ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let l = expr st in
      expect st Lexer.COMMA "','";
      let a = expr st in
      expect st Lexer.COMMA "','";
      let b = expr st in
      expect st Lexer.RPAREN "')'";
      Cas (l, a, b)
  | Lexer.KW "FAA", _ ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let l = expr st in
      expect st Lexer.COMMA "','";
      let d = expr st in
      expect st Lexer.RPAREN "')'";
      Faa (l, d)
  | Lexer.LPAREN, _ -> (
      advance st;
      match peek st with
      | Lexer.RPAREN, _ ->
          advance st;
          Val Unit
      | _ -> (
          let e = expr st in
          match peek st with
          | Lexer.COMMA, _ ->
              advance st;
              let e2 = expr st in
              expect st Lexer.RPAREN "')'";
              PairE (e, e2)
          | _ ->
              expect st Lexer.RPAREN "')'";
              e))
  | t, pos -> fail_at pos "expected an expression, found %a" Lexer.pp_token t

(** Parse a complete program. *)
let parse (src : string) : expr =
  let st = { toks = Lexer.tokenize src } in
  let e = expr st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, pos -> fail_at pos "trailing input: %a" Lexer.pp_token t);
  e

(** Parse, raising [Failure] with a readable message on errors. *)
let parse_exn src =
  try parse src with
  | Parse_error (m, pos) ->
      failwith (Printf.sprintf "parse error at offset %d: %s" pos m)
  | Lexer.Lex_error (m, pos) ->
      failwith (Printf.sprintf "lex error at offset %d: %s" pos m)
