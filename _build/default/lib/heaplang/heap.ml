(** The physical heap: a finite map from locations to values, with an
    allocation counter. Persistent, so the small-step semantics can
    branch without copying. *)

open Ast

module Imap = Map.Make (Int)

type t = { cells : value Imap.t; next : loc }

let empty = { cells = Imap.empty; next = 0 }

let alloc (h : t) (v : value) : t * loc =
  let l = h.next in
  ({ cells = Imap.add l v h.cells; next = l + 1 }, l)

let lookup (h : t) (l : loc) : value option = Imap.find_opt l h.cells

let store (h : t) (l : loc) (v : value) : t option =
  if Imap.mem l h.cells then Some { h with cells = Imap.add l v h.cells }
  else None

let free (h : t) (l : loc) : t option =
  if Imap.mem l h.cells then Some { h with cells = Imap.remove l h.cells }
  else None

let size (h : t) = Imap.cardinal h.cells
let bindings (h : t) = Imap.bindings h.cells

let pp ppf h =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ";@ ") (fun ppf (l, v) ->
         Fmt.pf ppf "#%d ↦ %a" l pp_value v))
    (bindings h)
