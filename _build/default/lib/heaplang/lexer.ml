(** A hand-rolled lexer for the surface syntax (menhir/ocamllex are not
    available in the sealed environment, and the token language is
    small enough that a direct scanner is clearer anyway). *)

type token =
  | INT of int
  | IDENT of string
  | SYM of string  (** [?x] — a specification-level symbol *)
  | KW of string  (** keywords: let, in, while, do, done, if, … *)
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI  (** ; *)
  | ARROW  (** -> *)
  | LARROW  (** <- *)
  | BANG  (** ! *)
  | OP of string  (** infix operators *)
  | EOF

let pp_token ppf = function
  | INT n -> Fmt.pf ppf "%d" n
  | IDENT x -> Fmt.pf ppf "%s" x
  | SYM x -> Fmt.pf ppf "?%s" x
  | KW k -> Fmt.pf ppf "%s" k
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | COMMA -> Fmt.string ppf ","
  | SEMI -> Fmt.string ppf ";"
  | ARROW -> Fmt.string ppf "->"
  | LARROW -> Fmt.string ppf "<-"
  | BANG -> Fmt.string ppf "!"
  | OP s -> Fmt.string ppf s
  | EOF -> Fmt.string ppf "<eof>"

exception Lex_error of string * int  (** message, offset *)

let keywords =
  [
    "let"; "in"; "while"; "do"; "done"; "if"; "then"; "else"; "fun"; "rec";
    "ref"; "free"; "assert"; "ghost"; "true"; "false"; "fst"; "snd"; "inl";
    "inr"; "match"; "with"; "end"; "CAS"; "FAA";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_alpha c || is_digit c || c = '\''

(** Tokenize a whole string; positions are byte offsets (used in error
    messages). *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let emit t pos = toks := (t, pos) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment: scan to closing, no nesting *)
      let j = ref (!i + 2) in
      while
        !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = ')')
      do
        incr j
      done;
      if !j + 1 >= n then raise (Lex_error ("unterminated comment", pos));
      i := !j + 2
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      emit (INT (int_of_string (String.sub src !i (!j - !i)))) pos;
      i := !j
    end
    else if is_alpha c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do incr j done;
      let word = String.sub src !i (!j - !i) in
      emit (if List.mem word keywords then KW word else IDENT word) pos;
      i := !j
    end
    else if c = '?' && !i + 1 < n && is_alpha src.[!i + 1] then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident src.[!j] do incr j done;
      emit (SYM (String.sub src (!i + 1) (!j - !i - 1))) pos;
      i := !j
    end
    else begin
      (* punctuation and operators, longest match first *)
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "->" -> emit ARROW pos; i := !i + 2
      | "<-" -> emit LARROW pos; i := !i + 2
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" ->
          emit (OP two) pos;
          i := !i + 2
      | _ -> (
          match c with
          | '(' -> emit LPAREN pos; incr i
          | ')' -> emit RPAREN pos; incr i
          | ',' -> emit COMMA pos; incr i
          | ';' -> emit SEMI pos; incr i
          | '!' -> emit BANG pos; incr i
          | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' ->
              emit (OP (String.make 1 c)) pos;
              incr i
          | _ ->
              raise
                (Lex_error (Printf.sprintf "unexpected character %c" c, pos)))
    end
  done;
  List.rev ((EOF, n) :: !toks)
