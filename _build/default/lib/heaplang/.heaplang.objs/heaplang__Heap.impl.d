lib/heaplang/heap.ml: Ast Fmt Int Map
