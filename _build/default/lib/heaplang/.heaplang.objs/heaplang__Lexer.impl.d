lib/heaplang/lexer.ml: Fmt List Printf String
