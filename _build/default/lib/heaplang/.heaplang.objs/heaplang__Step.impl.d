lib/heaplang/step.ml: Ast Fmt Heap Subst
