lib/heaplang/interp.ml: Ast Fmt List Stdx Step String Subst
