lib/heaplang/parser.ml: Ast Fmt Lexer List Printf
