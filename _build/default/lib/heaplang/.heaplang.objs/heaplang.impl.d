lib/heaplang/heaplang.ml: Ast Heap Interp Lexer Parser Step Subst
