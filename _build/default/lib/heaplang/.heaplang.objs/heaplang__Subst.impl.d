lib/heaplang/subst.ml: Ast List Set String
