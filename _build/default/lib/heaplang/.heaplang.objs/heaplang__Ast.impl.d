lib/heaplang/ast.ml: Fmt String
