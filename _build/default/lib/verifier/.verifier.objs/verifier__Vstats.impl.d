lib/verifier/vstats.ml: Fmt
