lib/verifier/verifier.ml: Exec State Vstats
