lib/verifier/exec.ml: Baselogic Heaplang List Q Smap Smt State Stdx String Vstats
