lib/verifier/state.ml: Baselogic Fmt Gensym List Listx Q Smap Smt Stdx String Vstats
