(** Verifier-side statistics, feeding tables T1 and T3. *)

type t = {
  mutable obligations : int;  (** proof obligations discharged *)
  mutable chunk_matches : int;  (** spatial chunks consumed *)
  mutable resolutions : int;  (** heap reads resolved (destabilized) *)
  mutable stab_checks : int;  (** stability checks performed *)
  mutable unstable_facts : int;  (** facts dropped at mutation points *)
  mutable branches : int;  (** path splits *)
  mutable loops : int;
  mutable calls : int;
}

let global =
  {
    obligations = 0;
    chunk_matches = 0;
    resolutions = 0;
    stab_checks = 0;
    unstable_facts = 0;
    branches = 0;
    loops = 0;
    calls = 0;
  }

let reset () =
  global.obligations <- 0;
  global.chunk_matches <- 0;
  global.resolutions <- 0;
  global.stab_checks <- 0;
  global.unstable_facts <- 0;
  global.branches <- 0;
  global.loops <- 0;
  global.calls <- 0

let snapshot () = { global with obligations = global.obligations }

let pp ppf s =
  Fmt.pf ppf
    "obligations=%d chunks=%d resolutions=%d stab=%d unstable-dropped=%d \
     branches=%d loops=%d calls=%d"
    s.obligations s.chunk_matches s.resolutions s.stab_checks
    s.unstable_facts s.branches s.loops s.calls
