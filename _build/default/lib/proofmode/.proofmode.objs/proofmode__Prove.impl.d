lib/proofmode/prove.ml: Baselogic Fmt Gensym Heaplang List Printf Q Smap Smt Stdx
