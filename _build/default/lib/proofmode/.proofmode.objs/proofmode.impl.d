lib/proofmode/proofmode.ml: Prove
