(** The proof mode: the baseline, fully-certified verification layer.

    {!Prove} turns annotated A-normal-form programs into kernel
    theorems [pre ⊢ WP e {x. post}], one kernel rule at a time. *)

module Prove = Prove
