lib/baselogic/baselogic.ml: Assertion Ghost_val Hterm Kernel Semantics
