lib/baselogic/hterm.ml: List Smt String Term
