lib/baselogic/kernel.mli: Assertion Fmt Ghost_val Heaplang Smt Stdx
