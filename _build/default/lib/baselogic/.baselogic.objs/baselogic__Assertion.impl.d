lib/baselogic/assertion.ml: Fmt Ghost_val Heaplang Hterm List Option Printf Q Set Smap Smt Stdx String Term
