lib/baselogic/ghost_val.ml: Fmt Option Q Smt Stdx Term
