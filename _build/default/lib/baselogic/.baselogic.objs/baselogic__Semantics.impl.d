lib/baselogic/semantics.ml: Assertion Fmt Ghost_val Heaplang Hterm List Listx Option Q Result Smap Smt Stdx String
