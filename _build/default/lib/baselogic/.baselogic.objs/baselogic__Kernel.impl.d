lib/baselogic/kernel.ml: Assertion Fmt Ghost_val Heaplang Hterm List Listx Option Q Smap Smt Stdx String
