(** The proof kernel of the destabilized logic.

    [theorem] is abstract: the only way to obtain one is through the
    rule constructors below, so every theorem is derivable in the
    logic. Two components are trusted beyond the rules themselves:

    - the SMT solver, reached through {!pure_entail} and the
      side-condition checks of the ghost rules (the paper's system
      trusts Z3 in exactly the same place);
    - the syntactic stability judgment {!Assertion.stable} used by
      [stabilize_intro].

    Every rule is model-checked for soundness against
    {!Semantics.eval} in the test suite.

    Theorems are entailments [P ⊢ Q] relative to a predicate
    environment. Entailment is semantically: for all (step, global σ,
    valid local resource a compatible with σ), [P] implies [Q]. *)

type theorem

val penv : theorem -> Assertion.pred_env
val lhs : theorem -> Assertion.t
val rhs : theorem -> Assertion.t
val pp : theorem Fmt.t

exception Rule_error of string

(** Number of kernel-rule applications since startup (proof-size
    accounting for the benchmarks). *)
val rule_count : unit -> int
val reset_rule_count : unit -> unit

(* --- Structural rules --- *)

val refl : ?penv:Assertion.pred_env -> Assertion.t -> theorem
val trans : theorem -> theorem -> theorem

(* --- Separating conjunction (affine BI) --- *)

val sep_comm : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> theorem
(** [P ∗ Q ⊢ Q ∗ P] *)

val sep_assoc_r : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> Assertion.t -> theorem
(** [(P ∗ Q) ∗ R ⊢ P ∗ (Q ∗ R)] *)

val sep_assoc_l : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> Assertion.t -> theorem
(** [P ∗ (Q ∗ R) ⊢ (P ∗ Q) ∗ R] *)

val sep_mono : theorem -> theorem -> theorem
(** from [P1 ⊢ Q1] and [P2 ⊢ Q2], [P1 ∗ P2 ⊢ Q1 ∗ Q2] *)

val sep_weaken_l : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> theorem
(** [P ∗ Q ⊢ Q] (affinity) *)

val emp_sep_intro : ?penv:Assertion.pred_env -> Assertion.t -> theorem
(** [P ⊢ emp ∗ P] *)

val emp_sep_elim : ?penv:Assertion.pred_env -> Assertion.t -> theorem
(** [emp ∗ P ⊢ P] *)

val wand_intro : theorem -> theorem
(** from [P ∗ Q ⊢ R], [P ⊢ Q -∗ R] *)

val wand_elim : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> theorem
(** [(Q -∗ R) ∗ Q ⊢ R] *)

(* --- Plain conjunction / disjunction --- *)

val and_intro : theorem -> theorem -> theorem
val and_elim_l : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> theorem
val and_elim_r : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> theorem
val or_intro_l : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> theorem
val or_intro_r : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> theorem
val or_elim : theorem -> theorem -> theorem
(** from [P ⊢ R] and [Q ⊢ R], [P ∨ Q ⊢ R] *)

val or_classical :
  Assertion.t list -> Smt.Term.t -> Assertion.t -> theorem -> theorem
(** [or_classical hyps φ R th]: from [th : seps (hyps @ \[⌜¬φ⌝\]) ⊢ R],
    conclude [seps hyps ⊢ ⌜φ⌝ ∨ R]. *)

(* --- Pure assertions (SMT gateway) --- *)

val pure_intro : ?penv:Assertion.pred_env -> Assertion.t -> Smt.Term.t -> theorem
(** [P ⊢ ⌜φ⌝] when the solver proves φ valid. *)

val pure_entail : ?penv:Assertion.pred_env -> hyps:Smt.Term.t list -> Smt.Term.t -> theorem
(** [⌜φ1⌝ ∗ … ∗ ⌜φn⌝ ⊢ ⌜ψ⌝] when the solver proves φ₁ ∧ … ∧ φₙ ⊨ ψ.
    Heap reads are treated as uninterpreted, which is sound: the
    entailment then holds for every global heap. *)

val pure_false_elim : ?penv:Assertion.pred_env -> Assertion.t -> theorem
(** [⌜false⌝ ⊢ Q] *)

val emp_intro : ?penv:Assertion.pred_env -> Assertion.t -> theorem
(** [P ⊢ emp] — the logic is affine. *)

(* --- Automated entailment (macro rules) --- *)

val entail_auto :
  ?penv:Assertion.pred_env ->
  ?witnesses:(string * Smt.Term.t) list ->
  Assertion.t list -> Assertion.t -> theorem
(** [entail_auto hyps goal : seps hyps ⊢ goal] by frame matching:
    chunks are consumed syntactically up to SMT-provable equality,
    fractional permissions split, ghost state weakened along camera
    inclusion, heap reads in pure goals resolved against owned
    points-to chunks, and existentials instantiated from [witnesses]
    or by unification against the available chunks. Each internal
    match counts as one rule application. *)

val scrub : Assertion.t list -> Assertion.t list
(** Stabilize a hypothesis list: resolve heap-dependent pure
    hypotheses against the owned chunks (or drop them), drop other
    unstable hypotheses. Bridge with [entail_auto hyps (seps (scrub
    hyps))]. *)

val focus_points_to :
  ?penv:Assertion.pred_env ->
  Assertion.t list -> Smt.Term.t ->
  theorem * Stdx.Q.t * Smt.Term.t * Assertion.t list
(** [focus_points_to hyps l] = ([seps hyps ⊢ l ↦{q} v ∗ seps rest], q,
    v, rest) for the first chunk whose location provably equals [l]. *)

val focus_ghost :
  ?penv:Assertion.pred_env ->
  Assertion.t list -> string ->
  theorem * Ghost_val.t * Assertion.t list

val focus_pred :
  ?penv:Assertion.pred_env ->
  Assertion.t list -> string -> Smt.Term.t list ->
  theorem * Smt.Term.t list * Assertion.t list

(* --- Quantifiers --- *)

val exists_intro : ?penv:Assertion.pred_env -> string -> Assertion.t -> Smt.Term.t -> theorem
(** [P\[t/x\] ⊢ ∃ x. P] *)

val exists_elim : string -> theorem -> theorem
(** from [P ⊢ Q] (where x may occur in P), [∃ x. P ⊢ Q], provided
    x ∉ fv(Q) *)

val exists_elim_ctx :
  before:Assertion.t list -> string -> string -> Assertion.t ->
  after:Assertion.t list -> theorem -> theorem
(** [exists_elim_ctx ~before x y p ~after th]: from
    [th : seps (before @ \[P\[y/x\]\] @ after) ⊢ Q] with [y] fresh,
    conclude [seps (before @ \[∃x.P\] @ after) ⊢ Q]. *)

val forall_elim : ?penv:Assertion.pred_env -> string -> Assertion.t -> Smt.Term.t -> theorem
(** [∀ x. P ⊢ P\[t/x\]] *)

val forall_intro : string -> theorem -> theorem
(** from [P ⊢ Q], [P ⊢ ∀ x. Q], provided x ∉ fv(P) *)

(* --- Heap assertions --- *)

val points_to_agree : ?penv:Assertion.pred_env -> Stdx.Q.t -> Stdx.Q.t -> Smt.Term.t -> Smt.Term.t -> Smt.Term.t -> theorem
(** [l ↦{q} v ∗ l ↦{q'} w ⊢ ⌜v = w⌝] *)

val points_to_split : ?penv:Assertion.pred_env -> Smt.Term.t -> Stdx.Q.t -> Stdx.Q.t -> Smt.Term.t -> theorem
(** [l ↦{q+q'} v ⊢ l ↦{q} v ∗ l ↦{q'} v] *)

val points_to_join : ?penv:Assertion.pred_env -> Smt.Term.t -> Stdx.Q.t -> Stdx.Q.t -> Smt.Term.t -> theorem
(** [l ↦{q} v ∗ l ↦{q'} v ⊢ l ↦{q+q'} v], provided q+q' ≤ 1 *)

val deref_resolve : ?penv:Assertion.pred_env -> Stdx.Q.t -> Smt.Term.t -> Smt.Term.t -> Smt.Term.t -> theorem
(** The destabilized logic's signature rule:
    [l ↦{q} v ∗ ⌜φ(!l)⌝ ⊢ l ↦{q} v ∗ ⌜φ(v)⌝] — a heap read covered by
    a points-to resolves to the owned value (in both directions; see
    [deref_intro]). *)

val deref_intro : ?penv:Assertion.pred_env -> Stdx.Q.t -> Smt.Term.t -> Smt.Term.t -> Smt.Term.t -> theorem
(** [l ↦{q} v ∗ ⌜φ(v)⌝ ⊢ l ↦{q} v ∗ ⌜φ(!l)⌝] *)

(* --- Ghost state --- *)

val ghost_op_split : ?penv:Assertion.pred_env -> string -> Ghost_val.t -> Ghost_val.t -> theorem
(** [own γ (a⋅b) ⊢ own γ a ∗ own γ b] when the symbolic composition is
    defined *)

val ghost_op_join : ?penv:Assertion.pred_env -> string -> Ghost_val.t -> Ghost_val.t -> theorem
(** [own γ a ∗ own γ b ⊢ own γ (a⋅b) ∗ ⌜fact⌝] where [fact] is the pure
    consequence of composition (e.g. agreement) *)

val ghost_valid : ?penv:Assertion.pred_env -> string -> Ghost_val.t -> theorem
(** [own γ a ⊢ own γ a ∗ ⌜✓ a⌝] *)

val ghost_update : ?penv:Assertion.pred_env -> hyps:Smt.Term.t list -> string -> Ghost_val.t -> Ghost_val.t -> theorem
(** [⌜hyps⌝ ∗ own γ a ⊢ |==> own γ b] when [a ~~> b] is a recognized
    update pattern whose side condition follows from [hyps] by SMT *)

val ghost_alloc : ?penv:Assertion.pred_env -> hyps:Smt.Term.t list -> string -> Ghost_val.t -> theorem
(** [⌜hyps⌝ ⊢ |==> own γ a] for a fresh name γ with [✓ a] under hyps *)

(* --- Persistence --- *)

val persistently_elim : ?penv:Assertion.pred_env -> Assertion.t -> theorem
val persistently_intro : theorem -> theorem
(** from [P ⊢ Q] with [P] persistent, [P ⊢ □ Q] *)

val persistent_dup : ?penv:Assertion.pred_env -> Assertion.t -> theorem
(** [P ⊢ P ∗ P] for syntactically persistent [P] *)

(* --- Later --- *)

val later_intro : ?penv:Assertion.pred_env -> Assertion.t -> theorem
val later_mono : theorem -> theorem

(* --- Update modality --- *)

val upd_intro : ?penv:Assertion.pred_env -> Assertion.t -> theorem
val upd_mono : theorem -> theorem
val upd_trans : ?penv:Assertion.pred_env -> Assertion.t -> theorem
val upd_frame : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> theorem
(** [P ∗ |==> Q ⊢ |==> (P ∗ Q)] *)

(* --- Stabilization --- *)

val stabilize_elim : ?penv:Assertion.pred_env -> Assertion.t -> theorem
(** [⌊P⌋ ⊢ P] *)

val stabilize_intro : ?penv:Assertion.pred_env -> Assertion.t -> theorem
(** [P ⊢ ⌊P⌋] when [P] is syntactically stable *)

val stabilize_mono : theorem -> theorem

val stabilize_sep : ?penv:Assertion.pred_env -> Assertion.t -> Assertion.t -> theorem
(** [⌊P⌋ ∗ ⌊Q⌋ ⊢ ⌊P ∗ Q⌋] *)

(* --- Predicates --- *)

val pred_unfold : penv:Assertion.pred_env -> string -> Smt.Term.t list -> theorem
(** [p(ts) ⊢ ▷ body\[ts/params\]] *)

val pred_fold : penv:Assertion.pred_env -> string -> Smt.Term.t list -> theorem
(** [▷ body\[ts/params\] ⊢ p(ts)] — with the guarded-unfolding
    semantics of predicates, folding re-establishes the predicate one
    step later; at the top level the step budget absorbs the later. *)

(* --- Weakest preconditions --- *)

val value_term : Heaplang.Ast.value -> Smt.Term.t option
(** Term encoding of a first-order program value ([Sym x] ↦ the
    variable [x], booleans 0/1-encoded). *)

val binop_term :
  Heaplang.Ast.bin_op -> Smt.Term.t -> Smt.Term.t -> Smt.Term.t option
(** Symbolic meaning of a binary operator (division and remainder have
    none and are handled on concrete values only). *)

val wp_value : ?penv:Assertion.pred_env -> Heaplang.Ast.value -> string -> Assertion.t -> theorem
(** [Q\[v/x\] ⊢ WP v {x. Q}] *)

val wp_mono :
  Heaplang.Ast.expr -> string -> string -> Assertion.t -> Assertion.t ->
  theorem -> theorem
(** [wp_mono e x y Q1 Q2 th]: from [th : Q1\[y/x\] ⊢ Q2\[y/x\]] with [y]
    fresh, conclude [WP e {x.Q1} ⊢ WP e {x.Q2}] *)

val wp_frame : ?penv:Assertion.pred_env -> Assertion.t -> Heaplang.Ast.expr -> string -> Assertion.t -> theorem
(** [P ∗ WP e {x.Q} ⊢ WP e {x. P ∗ Q}], provided x ∉ fv(P) *)

val pure_head_step : Heaplang.Ast.expr -> Heaplang.Ast.expr option
(** The deterministic, heap-free head reduction used by
    [wp_pure_step] — exposed so tactics can compute the reduct. *)

val wp_pure_step : ?penv:Assertion.pred_env -> Heaplang.Ast.expr -> Heaplang.Ast.expr -> string -> Assertion.t -> theorem
(** [WP e' {x.Q} ⊢ WP e {x.Q}] when [e] deterministically head-reduces
    to [e'] without touching the heap (β, let, seq, fst/snd, case,
    if-on-concrete-boolean, arithmetic on concrete integers) *)

val wp_binop : ?penv:Assertion.pred_env -> Heaplang.Ast.bin_op -> Smt.Term.t -> Smt.Term.t -> string -> Assertion.t -> theorem
(** [Q\[⟦op⟧(a,b)/x\] ⊢ WP (BinOp (op, ?a, ?b)) {x. Q}] for symbolic
    operands, with the boolean results 0/1-encoded *)

val wp_if_sym : ?penv:Assertion.pred_env -> Smt.Term.t -> Heaplang.Ast.expr -> Heaplang.Ast.expr -> string -> Assertion.t -> theorem
(** [(⌜b ≠ 0⌝ ∨ WP e2 {x.Q}) ∧ (⌜b = 0⌝ ∨ WP e1 {x.Q})
     ⊢ WP (if ?b then e1 else e2) {x.Q}] — classical case split on a
    symbolic boolean *)

val wp_load : ?penv:Assertion.pred_env -> Stdx.Q.t -> string -> Smt.Term.t -> string -> Assertion.t -> theorem
(** [?l ↦{q} v ∗ (?l ↦{q} v -∗ Q\[v/x\]) ⊢ WP !?l {x. Q}] where the
    location is the symbolic value named by the string *)

val wp_store : ?penv:Assertion.pred_env -> string -> Smt.Term.t -> Heaplang.Ast.value -> Smt.Term.t -> string -> Assertion.t -> theorem
(** [?l ↦ v ∗ (?l ↦ w -∗ Q\[0/x\]) ⊢ WP (?l <- w) {x. Q}] where [w]
    is the stored value and its term encoding is supplied *)

val wp_alloc : ?penv:Assertion.pred_env -> Heaplang.Ast.value -> Smt.Term.t -> string -> string -> Assertion.t -> theorem
(** [(∀ l. l ↦ v -∗ Q\[l/x\]) ⊢ WP (ref v) {x. Q}] *)

val wp_free : ?penv:Assertion.pred_env -> string -> Smt.Term.t -> string -> Assertion.t -> theorem
(** [?l ↦ v ∗ Q\[0/x\] ⊢ WP (free ?l) {x. Q}] *)

val wp_faa : ?penv:Assertion.pred_env -> string -> Smt.Term.t -> Smt.Term.t -> string -> Assertion.t -> theorem
(** [?l ↦ v ∗ (?l ↦ (v+d) -∗ Q\[v/x\]) ⊢ WP (FAA (?l, ?d)) {x. Q}] *)

val wp_let : ?penv:Assertion.pred_env -> string -> Heaplang.Ast.expr -> Heaplang.Ast.expr -> string -> string -> Assertion.t -> theorem
(** [WP e1 {y. WP (e2\[?y/x\]) {r.Q}} ⊢ WP (let x = e1 in e2) {r.Q}]
    — the bind rule specialised to [Let]; [y] is a fresh symbol name *)

val wp_seq : ?penv:Assertion.pred_env -> Heaplang.Ast.expr -> Heaplang.Ast.expr -> string -> string -> Assertion.t -> theorem
(** [WP e1 {y. WP e2 {r.Q}} ⊢ WP (e1; e2) {r.Q}] *)

val wp_assert : ?penv:Assertion.pred_env -> Smt.Term.t -> string -> Assertion.t -> theorem
(** [⌜b ≠ 0⌝ ∧ Q\[0/x\] ⊢ WP (assert ?b) {x. Q}] *)

(* Named variants: the continuation receives the result through a
   fresh name and its defining equation —
   [∀z. ⌜z = t⌝ -∗ Q[z/x]] — so the proof layers never substitute a
   compound term into program syntax. *)

val wp_binop_n :
  ?penv:Assertion.pred_env -> Heaplang.Ast.bin_op -> Smt.Term.t ->
  Smt.Term.t -> string -> string -> Assertion.t -> theorem

val wp_load_n :
  ?penv:Assertion.pred_env -> Stdx.Q.t -> string -> Smt.Term.t -> string ->
  string -> Assertion.t -> theorem

val wp_faa_n :
  ?penv:Assertion.pred_env -> string -> Smt.Term.t -> Smt.Term.t -> string ->
  string -> Assertion.t -> theorem

val wp_if_wand :
  ?penv:Assertion.pred_env -> Smt.Term.t -> Heaplang.Ast.expr ->
  Heaplang.Ast.expr -> string -> Assertion.t -> theorem
(** [(⌜b≠0⌝ -∗ WP e1 {x.Q}) ∧ (⌜b=0⌝ -∗ WP e2 {x.Q})
     ⊢ WP (if ?b then e1 else e2) {x.Q}] *)

val wp_while :
  penv:Assertion.pred_env -> inv:Assertion.t -> body_pre:Assertion.t ->
  cond:Heaplang.Ast.expr -> body:Heaplang.Ast.expr ->
  cond_thm:theorem -> body_thm:theorem ->
  string -> Assertion.t -> theorem
(** The invariant rule for loops (soundness is Löb induction in the
    model). Given
    - [cond_thm : inv ⊢ WP cond {b. (⌜b=0⌝ ∨ body_pre) ∧ (⌜b≠0⌝ ∨ Q\[0/x\])}]
    - [body_thm : body_pre ⊢ WP body {_. inv}]
    conclude [inv ⊢ WP (while cond body) {x. Q}]. *)
