(** Symbolic camera elements.

    Assertions own ghost resources whose contents are *terms* (symbolic
    integers), not concrete camera elements — [own γ (● n ⋅ ◯ m)] with
    [n], [m] verification-time unknowns. Each constructor corresponds
    to a camera from {!Camera}; {!Semantics} evaluates a symbolic
    element to the concrete camera under a valuation, which is how the
    property-based tests tie this layer to the camera laws.

    The functions below compute, symbolically, the three facts the
    logic needs about ghost state: composition (for [own γ a ∗ own γ b ⊣⊢
    own γ (a⋅b)]), validity (for [own γ a ⊢ ✓ a]), and frame-preserving
    updates (for the ghost-update rule). Composition and updates are
    partial: on shapes we cannot decide symbolically they return
    [None] and the caller must fall back to manual reasoning. *)

open Stdx
open Smt

type t =
  | Excl of Term.t  (** exclusive ownership of an integer value *)
  | Agree of Term.t  (** duplicable agreement on an integer value *)
  | Frac_tok of Q.t  (** a fraction of an abstract token *)
  | Auth_nat of { auth : Term.t option; frag : Term.t }
      (** authoritative nat: optional [● n] plus [◯ m] contribution *)
  | Max_nat of Term.t  (** persistent lower-bound knowledge *)
  | Token  (** a one-shot exclusive token (unit exclusive) *)

let pp ppf = function
  | Excl t -> Fmt.pf ppf "excl %a" Term.pp t
  | Agree t -> Fmt.pf ppf "ag %a" Term.pp t
  | Frac_tok q -> Fmt.pf ppf "frac %a" Q.pp q
  | Auth_nat { auth = Some n; frag } ->
      Fmt.pf ppf "● %a ⋅ ◯ %a" Term.pp n Term.pp frag
  | Auth_nat { auth = None; frag } -> Fmt.pf ppf "◯ %a" Term.pp frag
  | Max_nat t -> Fmt.pf ppf "maxnat %a" Term.pp t
  | Token -> Fmt.string ppf "tok"

let equal a b =
  match (a, b) with
  | Excl x, Excl y | Agree x, Agree y | Max_nat x, Max_nat y -> Term.equal x y
  | Frac_tok p, Frac_tok q -> Q.equal p q
  | Auth_nat x, Auth_nat y ->
      Option.equal Term.equal x.auth y.auth && Term.equal x.frag y.frag
  | Token, Token -> true
  | _ -> false

(** Symbolic composition [a ⋅ b]. Returns the composite together with
    the pure fact the composition *adds* (e.g. agreement equates the
    two values). [None] when the composite is known invalid or the
    shape is out of symbolic reach. *)
let compose (a : t) (b : t) : (t * Term.t) option =
  match (a, b) with
  | Excl _, Excl _ | Token, Token -> None
  | Agree x, Agree y -> Some (Agree x, Term.eq x y)
  | Frac_tok p, Frac_tok q ->
      let s = Q.add p q in
      if Q.leq s Q.one then Some (Frac_tok s, Term.tru) else None
  | Auth_nat x, Auth_nat y -> (
      match (x.auth, y.auth) with
      | Some _, Some _ -> None
      | auth, None | None, auth ->
          Some
            ( Auth_nat { auth; frag = Term.add x.frag y.frag },
              Term.tru ))
  | Max_nat x, Max_nat y ->
      (* max is not a linear term; encode via ite. *)
      Some (Max_nat (Term.ite (Term.le x y) y x), Term.tru)
  | _ -> None

(** The pure fact implied by validity of [a]. *)
let valid_fact (a : t) : Term.t =
  match a with
  | Excl _ | Agree _ | Token -> Term.tru
  | Frac_tok q -> Term.bool (Q.gt q Q.zero && Q.leq q Q.one)
  | Auth_nat { auth = Some n; frag } ->
      Term.and_ [ Term.le (Term.int 0) frag; Term.le frag n ]
  | Auth_nat { auth = None; frag } -> Term.le (Term.int 0) frag
  | Max_nat t -> Term.le (Term.int 0) t

(** Is every element of this shape duplicable (its own core)? *)
let persistent = function
  | Agree _ | Max_nat _ -> true
  | Excl _ | Frac_tok _ | Auth_nat _ | Token -> false

(** The pure condition under which two symbolic elements are equal, or
    [None] when the shapes differ. *)
let eq_condition (a : t) (b : t) : Term.t option =
  match (a, b) with
  | Excl x, Excl y | Agree x, Agree y | Max_nat x, Max_nat y ->
      Some (Term.eq x y)
  | Frac_tok p, Frac_tok q -> if Q.equal p q then Some Term.tru else None
  | Auth_nat x, Auth_nat y -> (
      match (x.auth, y.auth) with
      | None, None -> Some (Term.eq x.frag y.frag)
      | Some n, Some n' ->
          Some (Term.and_ [ Term.eq n n'; Term.eq x.frag y.frag ])
      | _ -> None)
  | Token, Token -> Some Term.tru
  | _ -> None

(** The pure condition under which [goal ≼ chunk] (the chunk can be
    weakened to the goal in affine style), or [None] when the shapes
    are incompatible. *)
let sub_condition ~(goal : t) ~(chunk : t) : Term.t option =
  match (goal, chunk) with
  | Max_nat x, Max_nat y -> Some (Term.le x y)
  | Auth_nat { auth = None; frag = m' }, Auth_nat { auth = _; frag = m } ->
      Some (Term.and_ [ Term.le (Term.int 0) m'; Term.le m' m ])
  | Frac_tok p, Frac_tok q ->
      if Q.leq p q then Some Term.tru else None
  | _ -> eq_condition goal chunk

(** Symbolic frame-preserving update [a ~~> b]: returns the side
    condition under which the update is frame-preserving, or [None] if
    the shape pair is not a recognized update pattern. The patterns
    mirror the certified updates in {!Camera.Updates}. *)
let update (a : t) (b : t) : Term.t option =
  match (a, b) with
  | Excl _, Excl _ -> Some Term.tru
  | Auth_nat { auth = Some n; frag = m }, Auth_nat { auth = Some n'; frag = m' }
    ->
      (* Local update: both sides change by the same delta, and the new
         fragment stays a valid contribution. *)
      Some
        (Term.and_
           [
             Term.eq (Term.sub n' n) (Term.sub m' m);
             Term.le (Term.int 0) m';
             Term.le m' n';
           ])
  | Max_nat x, Max_nat y ->
      (* Monotone bump. *)
      Some (Term.le x y)
  | _ -> None
