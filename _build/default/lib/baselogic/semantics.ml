(** A finite-model semantics for the destabilized logic.

    The paper's artifact proves soundness in Coq; our executable
    analogue interprets assertions in small concrete models and lets
    QCheck search for counterexamples to every kernel rule.

    The semantic domain is a triple (step index, global heap σ, local
    resource a):

    - σ is the *authoritative* program heap (what the machine runs on);
    - a is the locally-owned fragment: a fractional heap fragment that
      must agree with σ, plus concrete ghost state;
    - all connectives are monotone in a (Iris-style upward closure),
      but *stability* — insensitivity to changes of σ outside a's
      footprint — is a separate property that heap-dependent pure
      assertions deliberately lack. [Stabilize] quantifies over the
      compatible globals, which is what makes ⌊P⌋ stable by
      construction.

    Quantifiers, wands, updates and WP quantify over the finite
    universes supplied in {!model}; the evaluator is sound and complete
    *for those universes*, which is exactly what model-checking rule
    soundness needs. *)

open Stdx

(* Share the map module with the physical heap so conversions are
   type-transparent. *)
module Imap = Heaplang.Heap.Imap

(* ------------------------------------------------------------------ *)
(* Concrete resources *)

(** Concrete ghost-camera elements — {!Ghost_val} with the terms
    evaluated. *)
type cval =
  | CExcl of int
  | CAgree of int
  | CFrac of Q.t
  | CAuthNat of int option * int
  | CMaxNat of int
  | CToken

type res = { rheap : (Q.t * int) Imap.t; rghost : cval Smap.t }

let empty_res = { rheap = Imap.empty; rghost = Smap.empty }

let pp_cval ppf = function
  | CExcl n -> Fmt.pf ppf "excl %d" n
  | CAgree n -> Fmt.pf ppf "ag %d" n
  | CFrac q -> Fmt.pf ppf "frac %a" Q.pp q
  | CAuthNat (Some n, m) -> Fmt.pf ppf "●%d⋅◯%d" n m
  | CAuthNat (None, m) -> Fmt.pf ppf "◯%d" m
  | CMaxNat n -> Fmt.pf ppf "max %d" n
  | CToken -> Fmt.string ppf "tok"

let pp_res ppf r =
  Fmt.pf ppf "{heap=%a; ghost=%a}"
    (Fmt.list ~sep:Fmt.comma (fun ppf (l, (q, v)) ->
         Fmt.pf ppf "#%d↦{%a}%d" l Q.pp q v))
    (Imap.bindings r.rheap)
    (Smap.pp pp_cval) r.rghost

let cval_op (a : cval) (b : cval) : cval option =
  match (a, b) with
  | CExcl _, CExcl _ | CToken, CToken -> None
  | CAgree x, CAgree y -> if x = y then Some (CAgree x) else None
  | CFrac p, CFrac q ->
      let s = Q.add p q in
      if Q.leq s Q.one then Some (CFrac s) else None
  | CAuthNat (Some _, _), CAuthNat (Some _, _) -> None
  | CAuthNat (auth, m1), CAuthNat (None, m2)
  | CAuthNat (None, m1), CAuthNat (auth, m2) ->
      let m = m1 + m2 in
      (match auth with
      | Some n when m > n -> None
      | _ -> Some (CAuthNat (auth, m)))
  | CMaxNat x, CMaxNat y -> Some (CMaxNat (max x y))
  | _ -> None

let cval_valid = function
  | CExcl _ | CAgree _ | CToken -> true
  | CFrac q -> Q.gt q Q.zero && Q.leq q Q.one
  | CAuthNat (Some n, m) -> 0 <= m && m <= n
  | CAuthNat (None, m) -> 0 <= m
  | CMaxNat n -> n >= 0

let cval_core = function
  | CAgree x -> Some (CAgree x)
  | CMaxNat x -> Some (CMaxNat x)
  | CAuthNat (_, _) -> Some (CAuthNat (None, 0))
  | CExcl _ | CFrac _ | CToken -> None

let cval_incl (a : cval) (b : cval) : bool =
  match (a, b) with
  | CAgree x, CAgree y -> x = y
  | CMaxNat x, CMaxNat y -> x <= y
  | CFrac p, CFrac q -> Q.leq p q
  | CAuthNat (None, m1), CAuthNat (_, m2) -> m1 <= m2
  | CAuthNat (Some n1, m1), CAuthNat (Some n2, m2) -> n1 = n2 && m1 <= m2
  | CExcl x, CExcl y -> x = y
  | CToken, CToken -> true
  | _ -> false

(** Resource composition; [None] marks invalid composites. *)
let res_op (a : res) (b : res) : res option =
  let heap =
    Imap.merge
      (fun _ x y ->
        match (x, y) with
        | None, z | z, None -> Option.map Result.ok z
        | Some (q1, v1), Some (q2, v2) ->
            let q = Q.add q1 q2 in
            if v1 = v2 && Q.leq q Q.one then Some (Ok (q, v1))
            else Some (Error ()))
      a.rheap b.rheap
  in
  let ghost =
    Smap.merge
      (fun _ x y ->
        match (x, y) with
        | None, z | z, None -> Option.map Result.ok z
        | Some x, Some y -> (
            match cval_op x y with
            | Some z when cval_valid z -> Some (Ok z)
            | _ -> Some (Error ())))
      a.rghost b.rghost
  in
  let ok_heap = Imap.for_all (fun _ v -> Result.is_ok v) heap in
  let ok_ghost = Smap.for_all (fun _ v -> Result.is_ok v) ghost in
  if ok_heap && ok_ghost then
    Some
      {
        rheap = Imap.map Result.get_ok heap;
        rghost = Smap.map Result.get_ok ghost;
      }
  else None

let res_core (r : res) : res =
  { rheap = Imap.empty; rghost = Smap.filter_map (fun _ v -> cval_core v) r.rghost }

(** Does fragment [r] agree with global heap [sigma]? *)
let compat (sigma : int Imap.t) (r : res) : bool =
  Imap.for_all
    (fun l (_, v) -> match Imap.find_opt l sigma with
      | Some w -> v = w
      | None -> false)
    r.rheap

(** Resource inclusion a ≼ b (pointwise). *)
let res_incl (a : res) (b : res) : bool =
  Imap.for_all
    (fun l (q, v) ->
      match Imap.find_opt l b.rheap with
      | Some (q', v') -> v = v' && Q.leq q q'
      | None -> false)
    a.rheap
  && Smap.for_all
       (fun g cv ->
         match Smap.find_opt g b.rghost with
         | Some cv' -> cval_incl cv cv'
         | None -> false)
       a.rghost

(* ------------------------------------------------------------------ *)
(* Splitting (for Sep) *)

let rec heap_splits (cells : (int * (Q.t * int)) list) :
    ((Q.t * int) Imap.t * (Q.t * int) Imap.t) list =
  match cells with
  | [] -> [ (Imap.empty, Imap.empty) ]
  | (l, (q, v)) :: rest ->
      let rests = heap_splits rest in
      let options =
        [ (Some (q, v), None); (None, Some (q, v)) ]
        @
        if Q.gt q Q.half || Q.equal q Q.one then
          let h = Q.mul q Q.half in
          [ (Some (h, v), Some (h, v)) ]
        else []
      in
      List.concat_map
        (fun (x, y) ->
          List.map
            (fun (h1, h2) ->
              ( (match x with Some c -> Imap.add l c h1 | None -> h1),
                match y with Some c -> Imap.add l c h2 | None -> h2 ))
            rests)
        options

let cval_splits (cv : cval) : (cval option * cval option) list =
  let whole = [ (Some cv, None); (None, Some cv) ] in
  match cv with
  | CAgree _ | CMaxNat _ -> (Some cv, Some cv) :: whole
  | CFrac q ->
      let h = Q.mul q Q.half in
      (Some (CFrac h), Some (CFrac h)) :: whole
  | CAuthNat (auth, m) ->
      whole
      @ List.concat_map
          (fun m1 ->
            let m2 = m - m1 in
            [
              (Some (CAuthNat (auth, m1)), Some (CAuthNat (None, m2)));
              (Some (CAuthNat (None, m1)), Some (CAuthNat (auth, m2)));
            ])
          (Listx.range 0 (min m 4 + 1))
  | CExcl _ | CToken -> whole

let rec ghost_splits (cells : (string * cval) list) :
    (cval Smap.t * cval Smap.t) list =
  match cells with
  | [] -> [ (Smap.empty, Smap.empty) ]
  | (g, cv) :: rest ->
      let rests = ghost_splits rest in
      List.concat_map
        (fun (x, y) ->
          List.map
            (fun (m1, m2) ->
              ( (match x with Some c -> Smap.add g c m1 | None -> m1),
                match y with Some c -> Smap.add g c m2 | None -> m2 ))
            rests)
        (cval_splits cv)

let res_splits (r : res) : (res * res) list =
  let hs = heap_splits (Imap.bindings r.rheap) in
  let gs = ghost_splits (Smap.bindings r.rghost) in
  List.concat_map
    (fun (h1, h2) ->
      List.map
        (fun (g1, g2) ->
          ({ rheap = h1; rghost = g1 }, { rheap = h2; rghost = g2 }))
        gs)
    hs

(* ------------------------------------------------------------------ *)
(* Ghost values: symbolic → concrete *)

let eval_term env sigma (t : Smt.Term.t) : int option =
  let on_app f args =
    match (f, args) with
    | s, [ l ] when String.equal s Hterm.deref_symbol -> Imap.find_opt l sigma
    | _ -> None
  in
  Smt.Term.eval ~env ~on_app t

let eval_ghost_val env sigma (v : Ghost_val.t) : cval option =
  let ev = eval_term env sigma in
  match v with
  | Ghost_val.Excl t -> Option.map (fun n -> CExcl n) (ev t)
  | Ghost_val.Agree t -> Option.map (fun n -> CAgree n) (ev t)
  | Ghost_val.Frac_tok q -> Some (CFrac q)
  | Ghost_val.Auth_nat { auth; frag } -> (
      match (auth, ev frag) with
      | None, Some m -> Some (CAuthNat (None, m))
      | Some a, Some m ->
          Option.map (fun n -> CAuthNat (Some n, m)) (ev a)
      | _, None -> None)
  | Ghost_val.Max_nat t -> Option.map (fun n -> CMaxNat n) (ev t)
  | Ghost_val.Token -> Some CToken

(* ------------------------------------------------------------------ *)
(* The evaluator *)

type model = {
  ints : int list;  (** range for quantifiers *)
  resources : res list;  (** universe for wand / update / WP frames *)
  globals : int Imap.t list;  (** universe for [Stabilize] *)
}

let default_ints = [ -1; 0; 1; 2; 3 ]

let value_as_int : Heaplang.Ast.value -> int option = function
  | Heaplang.Ast.Unit -> Some 0
  | Heaplang.Ast.Bool b -> Some (if b then 1 else 0)
  | Heaplang.Ast.Int n -> Some n
  | Heaplang.Ast.Loc l -> Some l
  | _ -> None

let heap_of_sigma (sigma : int Imap.t) : Heaplang.Heap.t =
  let cells = Imap.map (fun v -> Heaplang.Ast.Int v) sigma in
  let next =
    match Imap.max_binding_opt sigma with Some (l, _) -> l + 1 | None -> 0
  in
  { Heaplang.Heap.cells; next }

let sigma_of_heap (h : Heaplang.Heap.t) : int Imap.t option =
  let ok = ref true in
  let m =
    Imap.filter_map
      (fun _ v ->
        match value_as_int v with
        | Some n -> Some n
        | None ->
            ok := false;
            None)
      h.Heaplang.Heap.cells
  in
  if !ok then Some m else None

let rec eval (m : model) (penv : Assertion.pred_env) (env : int Smap.t)
    ~(step : int) (sigma : int Imap.t) (r : res) (a : Assertion.t) : bool =
  let ev_t = eval_term env sigma in
  let continue = eval m penv in
  match a with
  | Assertion.Pure t -> (
      match Smt.Term.eval_bool ~env
              ~on_app:(fun f args ->
                match (f, args) with
                | s, [ l ] when String.equal s Hterm.deref_symbol ->
                    Imap.find_opt l sigma
                | _ -> None)
              t
      with
      | Some b -> b
      | None -> false)
  | Assertion.Emp -> true  (* upward-closed: unit is included in anything *)
  | Assertion.Points_to { loc; frac; value } -> (
      match (ev_t loc, ev_t value) with
      | Some l, Some v -> (
          match Imap.find_opt l r.rheap with
          | Some (q, v') -> v = v' && Q.leq frac q
          | None -> false)
      | _ -> false)
  | Assertion.Pred (p, args) -> (
      match Smap.find_opt p penv with
      | None -> false
      | Some def ->
          (* Guarded unfolding: each unfold consumes a step. *)
          step > 0
          && List.length args = List.length def.Assertion.params
          &&
          let vals = List.map ev_t args in
          List.for_all Option.is_some vals
          &&
          let binds =
            List.map2
              (fun x v -> (x, Smt.Term.int (Option.get v)))
              def.Assertion.params vals
          in
          continue env ~step:(step - 1) sigma r
            (Assertion.subst (Smap.of_list binds) def.Assertion.body))
  | Assertion.Ghost (g, gv) -> (
      match eval_ghost_val env sigma gv with
      | None -> false
      | Some cv -> (
          match Smap.find_opt g r.rghost with
          | Some cv' -> cval_incl cv cv'
          | None -> false))
  | Assertion.Sep (p, q) ->
      List.exists
        (fun (r1, r2) ->
          continue env ~step sigma r1 p && continue env ~step sigma r2 q)
        (res_splits r)
  | Assertion.Wand (p, q) ->
      (* Stable wands: quantify over both the frame and the compatible
         globals, so a wand survives heap mutation and can be applied
         at the post-state — this is where the destabilized logic pays
         with the stability side condition on [wand_intro]. *)
      List.for_all
        (fun sigma' ->
          List.for_all
            (fun rf ->
              match res_op r rf with
              | Some rc when compat sigma' rc ->
                  (not (continue env ~step sigma' rf p))
                  || continue env ~step sigma' rc q
              | _ -> true)
            m.resources)
        (sigma :: m.globals)
  | Assertion.And (p, q) ->
      continue env ~step sigma r p && continue env ~step sigma r q
  | Assertion.Or (p, q) ->
      continue env ~step sigma r p || continue env ~step sigma r q
  | Assertion.Exists (x, p) ->
      List.exists
        (fun n -> continue (Smap.add x n env) ~step sigma r p)
        m.ints
  | Assertion.Forall (x, p) ->
      List.for_all
        (fun n -> continue (Smap.add x n env) ~step sigma r p)
        m.ints
  | Assertion.Persistently p -> continue env ~step sigma (res_core r) p
  | Assertion.Later p -> step = 0 || continue env ~step:(step - 1) sigma r p
  | Assertion.Upd p ->
      (* For every compatible frame there is an updated local resource
         validly composing with it and satisfying P. *)
      List.for_all
        (fun rf ->
          match res_op r rf with
          | Some rc when compat sigma rc ->
              List.exists
                (fun r' ->
                  match res_op r' rf with
                  | Some rc' ->
                      compat sigma rc' && continue env ~step sigma r' p
                  | None -> false)
                m.resources
          | _ -> true)
        m.resources
  | Assertion.Stabilize p ->
      (* ⌊P⌋: P holds under every global (from the universe, plus the
         current one) that agrees with our footprint. *)
      let fp = Imap.bindings r.rheap in
      List.for_all
        (fun sigma' ->
          (not
             (List.for_all
                (fun (l, (_, v)) -> Imap.find_opt l sigma' = Some v)
                fp))
          || continue env ~step sigma' r p)
        (sigma :: m.globals)
  | Assertion.Wp (e, x, post) -> eval_wp m penv env ~step sigma r e x post

(** Weakest precondition, for a deterministic sequential machine:
    under any compatible frame *and any compatible initial global*
    (making WP stable by construction, as in Iris where the state
    interpretation is existentially framed), the program runs without
    getting stuck for [step] steps, and on termination the
    postcondition holds in an updated local resource that still
    composes with the frame against the final global heap. *)
and eval_wp m penv env ~step sigma0 r e x post =
  (* Close the program's symbolic values from the valuation. Integers
     double as booleans and addresses in the untyped machine, so the
     integer closure is faithful. *)
  let e =
    Heaplang.Subst.close_expr
      (Smap.bindings env |> List.map (fun (x, n) -> (x, Heaplang.Ast.Int n)))
      e
  in
  List.for_all
    (fun sigma ->
      List.for_all
        (fun rf ->
          match res_op r rf with
          | Some rc when compat sigma rc ->
          let rec run k (cfg : Heaplang.Step.cfg) =
            if k >= step then true  (* ran out of steps: vacuously fine *)
            else
              match Heaplang.Step.step cfg with
              | Heaplang.Step.Stuck _ -> false
              | Heaplang.Step.Done (v, h) -> finish (k + 1) v h
              | Heaplang.Step.Next cfg' -> (
                  match cfg'.Heaplang.Step.expr with
                  | Heaplang.Ast.Val v ->
                      finish (k + 1) v cfg'.Heaplang.Step.heap
                  | _ -> run (k + 1) cfg')
          and finish k v h =
            match (value_as_int v, sigma_of_heap h) with
            | Some n, Some sigma' ->
                List.exists
                  (fun r' ->
                    match res_op r' rf with
                    | Some rc' ->
                        compat sigma' rc'
                        && eval m penv env ~step:(step - k) sigma' r'
                             (Assertion.subst1 x (Smt.Term.int n) post)
                    | None -> false)
                  m.resources
            | _ -> false
          in
          run 0 { Heaplang.Step.expr = e; heap = heap_of_sigma sigma }
          | _ -> true)
        m.resources)
    (sigma0 :: m.globals)
