(** The [daenerys] command-line interface.

    - [daenerys suite]           verify the whole benchmark suite
    - [daenerys verify NAME]     verify one suite entry (verbose)
    - [daenerys run NAME]        execute a suite program concretely
    - [daenerys list]            list suite entries *)

module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module Pr = Suite.Programs
open Cmdliner

let find_entry name =
  List.find_opt (fun (e : Pr.entry) -> String.equal e.name name) Pr.all

let verify_entry ~verbose (e : Pr.entry) =
  Smt.Stats.reset ();
  Verifier.Vstats.reset ();
  let t0 = Sys.time () in
  let results = V.verify e.prog in
  let dt = (Sys.time () -. t0) *. 1000.0 in
  let ok = List.for_all (fun (_, o) -> o = V.Verified) results in
  let verdict =
    match (ok, e.expect_fail) with
    | true, false -> "VERIFIED"
    | false, true -> "rejected (as expected)"
    | true, true -> "VERIFIED — BUT THIS ENTRY MUST FAIL"
    | false, false -> "FAILED"
  in
  Fmt.pr "%-14s %-24s %6.1fms@." e.name verdict dt;
  if verbose then begin
    List.iter
      (fun (p, o) ->
        match o with
        | V.Verified -> Fmt.pr "  proc %-12s ok@." p
        | V.Failed m -> Fmt.pr "  proc %-12s %s@." p m)
      results;
    Fmt.pr "  %a@." Verifier.Vstats.pp (Verifier.Vstats.snapshot ());
    Fmt.pr "  %a@." Smt.Stats.pp (Smt.Stats.snapshot ())
  end;
  ok = not e.expect_fail

let suite_cmd =
  let doc = "Verify every program in the benchmark suite." in
  Cmd.v (Cmd.info "suite" ~doc)
    Term.(
      const (fun () ->
          let ok =
            List.fold_left
              (fun acc e -> verify_entry ~verbose:false e && acc)
              true Pr.all
          in
          if ok then `Ok () else `Error (false, "some entries misbehaved"))
      $ const ()
      |> ret)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")

let verify_cmd =
  let doc = "Verify one suite entry, with statistics." in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const (fun name ->
          match find_entry name with
          | Some e ->
              if verify_entry ~verbose:true e then `Ok ()
              else `Error (false, "verification misbehaved")
          | None -> `Error (false, "unknown entry " ^ name))
      $ name_arg
      |> ret)

let list_cmd =
  let doc = "List the suite entries." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (e : Pr.entry) ->
              Fmt.pr "%-14s %s%s@." e.name e.descr
                (if e.expect_fail then "  [negative test]" else ""))
            Pr.all)
      $ const ())

let run_cmd =
  let doc =
    "Run a suite program concretely (symbols closed with small values)."
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const (fun name ->
          match find_entry name with
          | None -> `Error (false, "unknown entry " ^ name)
          | Some e -> (
              match
                List.find_opt
                  (fun p -> String.equal p.V.pname e.main)
                  e.prog.V.procs
              with
              | None -> `Error (false, "no main procedure")
              | Some p ->
                  (* Allocate a cell per pointer-looking parameter,
                     close the rest with small integers. *)
                  let closure =
                    List.mapi
                      (fun i x ->
                        if String.length x = 1 && (x.[0] = 'l' || x.[0] = 'r'
                                                   || x.[0] = 'i' || x.[0] = 'a'
                                                   || x.[0] = 'b')
                        then (x, HL.Loc i)
                        else (x, HL.Int 3))
                      p.V.params
                  in
                  let body = Heaplang.Subst.close_expr closure p.V.body in
                  let allocs =
                    List.fold_left
                      (fun acc _ -> HL.Seq (HL.Alloc (HL.Val (HL.Int 0)), acc))
                      body p.V.params
                  in
                  (match Heaplang.Interp.run allocs with
                  | Heaplang.Interp.Value v ->
                      Fmt.pr "result: %a@." HL.pp_value v
                  | Heaplang.Interp.Error m -> Fmt.pr "runtime error: %s@." m
                  | Heaplang.Interp.Timeout -> Fmt.pr "timeout@.");
                  `Ok ()))
      $ name_arg
      |> ret)

let () =
  let doc = "a destabilized separation-logic verifier" in
  let info = Cmd.info "daenerys" ~version:"0.1" ~doc in
  exit (Cmd.eval (Cmd.group info [ suite_cmd; verify_cmd; list_cmd; run_cmd ]))
