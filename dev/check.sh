#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#   ./dev/check.sh
# Runs the build, the full test suite, the static analyzer (suite +
# examples must lint clean; the ill-formed suite must produce its
# annotated codes), a smoke run of the parallel engine (2 worker
# domains, VC cache on, lint gate on) over the benchmark suite, the
# daemon gates (warm cache, restart, kill -9 crash recovery), and the
# chaos gates (seeded faults at every injection site must never move
# a verdict or kill the daemon).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== daenerys lint (suite + examples; fails on any error) =="
dune exec bin/daenerys.exe -- lint --stats

echo "== daenerys lint --ill-formed (negative-suite expectations) =="
dune exec bin/daenerys.exe -- lint --ill-formed

echo "== daenerys suite --lint -j 2 (smoke) =="
dune exec bin/daenerys.exe -- suite --lint -j 2 --stats

echo "== surface (.hl) gate: parse + lint + verify every examples/*.hl =="
for f in examples/*.hl; do
  case "$f" in
    examples/bad_swap.hl)
      # negative program: must parse, lint clean, and FAIL verification
      dune exec bin/daenerys.exe -- lint "$f"
      if dune exec bin/daenerys.exe -- verify "$f" >/dev/null 2>&1; then
        echo "FAIL: $f verified but must fail" >&2; exit 1
      fi
      echo "$f: failed verification (as expected)"
      ;;
    examples/broken.hl)
      # ill-formed program: lint must report DA001 anchored at 6:12
      out=$(dune exec bin/daenerys.exe -- lint --json "$f" 2>&1) && {
        echo "FAIL: lint $f exited 0 but must report errors" >&2; exit 1; }
      for needle in '"DA001"' 'broken.hl' '"line": 6' '"col": 12'; do
        case "$out" in
          *"$needle"*) ;;
          *) echo "FAIL: lint --json $f missing $needle" >&2
             echo "$out" >&2; exit 1 ;;
        esac
      done
      echo "$f: DA001 at broken.hl:6:12 (as expected)"
      ;;
    examples/da018_div_zero.hl|examples/da021_false_ensures.hl)
      # absint error twins: lint must report the code, verify must fail
      code=$(case "$f" in *da018*) echo DA018;; *) echo DA021;; esac)
      out=$(dune exec bin/daenerys.exe -- lint "$f" 2>&1) && {
        echo "FAIL: lint $f exited 0 but must report errors" >&2; exit 1; }
      case "$out" in
        *"$code"*) ;;
        *) echo "FAIL: lint $f missing $code" >&2; echo "$out" >&2; exit 1 ;;
      esac
      if dune exec bin/daenerys.exe -- verify "$f" >/dev/null 2>&1; then
        echo "FAIL: $f verified but must fail" >&2; exit 1
      fi
      echo "$f: $code + failed verification (as expected)"
      ;;
    examples/da020_contradictory.hl)
      # contradictory requires: DA020 as an error, span-anchored at the
      # clause (the verifier "succeeds" vacuously — exactly the trap
      # the diagnostic is for)
      out=$(dune exec bin/daenerys.exe -- lint --json "$f" 2>&1) && {
        echo "FAIL: lint $f exited 0 but must report errors" >&2; exit 1; }
      for needle in '"DA020"' 'da020_contradictory.hl' '"line": 8' '"col": 12'; do
        case "$out" in
          *"$needle"*) ;;
          *) echo "FAIL: lint --json $f missing $needle" >&2
             echo "$out" >&2; exit 1 ;;
        esac
      done
      echo "$f: DA020 at da020_contradictory.hl:8:12 (as expected)"
      ;;
    examples/lock_noinv.hl)
      # concurrency negative: the spinlock without its invariant is
      # well-formed (lints clean) but the atomic has nothing to open,
      # so verification must fail
      dune exec bin/daenerys.exe -- lint "$f"
      if dune exec bin/daenerys.exe -- verify "$f" >/dev/null 2>&1; then
        echo "FAIL: $f verified but must fail" >&2; exit 1
      fi
      echo "$f: failed verification (as expected)"
      ;;
    examples/da027_racy_par.hl)
      # racy par branch: DA027 is a warning (lint still exits 0), and
      # the branch can prove no permission, so verification must fail
      out=$(dune exec bin/daenerys.exe -- lint "$f" 2>&1) || {
        echo "FAIL: lint $f must exit 0 (DA027 is a warning)" >&2
        echo "$out" >&2; exit 1; }
      case "$out" in
        *DA027*) ;;
        *) echo "FAIL: lint $f missing DA027" >&2; echo "$out" >&2; exit 1 ;;
      esac
      if dune exec bin/daenerys.exe -- verify "$f" >/dev/null 2>&1; then
        echo "FAIL: $f verified but must fail" >&2; exit 1
      fi
      echo "$f: DA027 warning + failed verification (as expected)"
      ;;
    examples/da026_nested_atomic.hl|examples/da028_unstable_inv.hl)
      # concurrency error twins: lint must report the code, verify
      # must fail (the executor raises the same diagnostic)
      code=$(case "$f" in *da026*) echo DA026;; *) echo DA028;; esac)
      out=$(dune exec bin/daenerys.exe -- lint "$f" 2>&1) && {
        echo "FAIL: lint $f exited 0 but must report errors" >&2; exit 1; }
      case "$out" in
        *"$code"*) ;;
        *) echo "FAIL: lint $f missing $code" >&2; echo "$out" >&2; exit 1 ;;
      esac
      if dune exec bin/daenerys.exe -- verify "$f" >/dev/null 2>&1; then
        echo "FAIL: $f verified but must fail" >&2; exit 1
      fi
      echo "$f: $code + failed verification (as expected)"
      ;;
    *)
      # positive twins: must lint clean and verify
      dune exec bin/daenerys.exe -- lint "$f"
      dune exec bin/daenerys.exe -- verify "$f"
      ;;
  esac
done

echo "== concurrency gate: verdicts identical under seeds 1/2/3 =="
# The scheduler seed permutes par-branch exploration order; verdicts
# must not depend on it. Positives stay verified and negatives keep
# failing under every seed.
for f in examples/spinlock.hl examples/ticket_lock.hl examples/treiber.hl; do
  for s in 1 2 3; do
    dune exec bin/daenerys.exe -- verify "$f" --seed "$s" >/dev/null || {
      echo "FAIL: $f must verify under --seed $s" >&2; exit 1; }
  done
  echo "$f: verified under seeds 1/2/3"
done
for f in examples/lock_noinv.hl examples/da027_racy_par.hl; do
  for s in 1 2 3; do
    if dune exec bin/daenerys.exe -- verify "$f" --seed "$s" >/dev/null 2>&1; then
      echo "FAIL: $f must fail under --seed $s" >&2; exit 1
    fi
  done
  echo "$f: failed under seeds 1/2/3 (as expected)"
done

echo "== chaos gate: session+cache faults must not move any verdict =="
# Session faults force the incremental-session fallback path and cache
# faults corrupt every stored VC entry; both are absorbed (fallback /
# re-solve), so the suite must still exit 0 with every verdict intact.
dune exec bin/daenerys.exe -- suite --faults "session=1,cache=0.5,seed=7" -j 2

echo "== chaos gate: solver/pool faults may degrade but never flip =="
# Injected solver/pool crashes turn verdicts into 'crashed' (exit 2,
# "the verifier gave up"); what they must never do is flip an entry to
# the wrong verdict (exit 1).
if dune exec bin/daenerys.exe -- suite --faults "solver=0.2,pool=0.2,seed=11" -j 4; then
  :  # clean run: every fault landed on a retried/absorbed path
else
  st=$?
  if [ "$st" -ne 2 ]; then
    echo "FAIL: chaos suite exited $st (a fault flipped a verdict)" >&2
    exit 1
  fi
  echo "(verifier gave up on some entries under faults — expected)"
fi

echo "== daemon gate: serve + client, warm cache >=10x, restart reuses disk =="
DAE=./_build/default/bin/daenerys.exe
TMPD=$(mktemp -d)
SOCK="$TMPD/daenerys.sock"
CACHE="$TMPD/cache"
SRV=""
trap '[ -n "$SRV" ] && kill "$SRV" 2>/dev/null; rm -rf "$TMPD"' EXIT

start_daemon() {
  "$DAE" serve --socket "$SOCK" -j 2 --cache-dir "$CACHE" &
  SRV=$!
  i=0
  while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "FAIL: daemon did not bind $SOCK" >&2; exit 1; }
    sleep 0.05
  done
}

stop_daemon() {
  "$DAE" client --socket "$SOCK" --shutdown >/dev/null
  wait "$SRV"
  SRV=""
}

# Daemon-side verification time (sums the per-request wall_ms of the
# engine reports, so client process startup doesn't pollute the ratio).
sum_wall_ms() {
  grep -o '"wall_ms":[0-9.]*' | awk -F: '{ s += $2 } END { printf "%.3f", s }'
}
verdicts() {
  grep -o '"entry":"[^"]*","expect_fail":[a-z]*,"status":"[^"]*"'
}

start_daemon
cold=$("$DAE" client --socket "$SOCK" --suite --json)
warm=$("$DAE" client --socket "$SOCK" --suite --json)
cold_ms=$(echo "$cold" | sum_wall_ms)
warm_ms=$(echo "$warm" | sum_wall_ms)
if [ "$(echo "$cold" | verdicts)" != "$(echo "$warm" | verdicts)" ]; then
  echo "FAIL: warm-cache verdicts differ from cold verdicts" >&2; exit 1
fi
awk -v c="$cold_ms" -v w="$warm_ms" 'BEGIN { exit !(c >= 10 * w) }' || {
  echo "FAIL: warm suite not >=10x faster (cold ${cold_ms}ms, warm ${warm_ms}ms)" >&2
  exit 1
}
echo "warm cache: ${cold_ms}ms cold -> ${warm_ms}ms warm, verdicts identical"

# A seeded request is a distinct verdict-cache key (never served from
# the seed-0 entries) but must produce the very same verdicts.
seeded=$("$DAE" client --socket "$SOCK" --suite --seed 5 --json)
if [ "$(echo "$cold" | verdicts)" != "$(echo "$seeded" | verdicts)" ]; then
  echo "FAIL: --seed 5 verdicts differ from seed-0 verdicts" >&2; exit 1
fi
echo "seeded suite (--seed 5): verdicts identical to seed 0"

stop_daemon
start_daemon  # same cache dir: the disk tier must survive the restart
restart=$("$DAE" client --socket "$SOCK" --suite --json)
if [ "$(echo "$cold" | verdicts)" != "$(echo "$restart" | verdicts)" ]; then
  echo "FAIL: post-restart verdicts differ from cold verdicts" >&2; exit 1
fi
stats=$("$DAE" client --socket "$SOCK" --stats)
disk_hits=$(echo "$stats" | grep -o '"disk_hits":[0-9]*' | head -1 | cut -d: -f2)
if [ -z "$disk_hits" ] || [ "$disk_hits" -eq 0 ]; then
  echo "FAIL: restarted daemon served no disk-cache hits" >&2
  echo "$stats" >&2
  exit 1
fi
echo "restart: $disk_hits requests answered from the disk cache"
stop_daemon
rm -rf "$TMPD"
trap - EXIT

echo "== crash-recovery gate: kill -9, wreckage absorbed, verdicts intact =="
# Populate the disk cache, kill the daemon without any chance to clean
# up, fabricate the torn-write wreckage a real crash can leave behind,
# and restart over the same directory: recovery must quarantine the
# wreckage, the suite must answer from disk with identical verdicts,
# and the recovery counters must be visible in stats.
TMPD=$(mktemp -d)
SOCK="$TMPD/daenerys.sock"
CACHE="$TMPD/cache"
SRV=""
trap '[ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null; rm -rf "$TMPD"' EXIT

start_daemon
before=$("$DAE" client --socket "$SOCK" --suite --json)
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""
# kill -9 never runs the cleanup path: the socket file must still be
# there for the restart to displace as stale.
[ -S "$SOCK" ] || { echo "FAIL: kill -9 should leave the socket file" >&2; exit 1; }
# Torn entry (rename happened, bytes are garbage) + a temp file from a
# long-dead writer pid (mid-publication crash).
printf 'DAEVC1\ngarbage' > "$CACHE/$(printf 'a%.0s' $(seq 32)).vc"
printf 'half-written' > "$CACHE/.tmp.999999999.0"
start_daemon
after=$("$DAE" client --socket "$SOCK" --suite --json)
if [ "$(echo "$before" | verdicts)" != "$(echo "$after" | verdicts)" ]; then
  echo "FAIL: post-crash verdicts differ from pre-crash verdicts" >&2; exit 1
fi
stats=$("$DAE" client --socket "$SOCK" --stats)
for key in disk_hits recovered_tmp recovered_torn; do
  val=$(echo "$stats" | grep -o "\"$key\":[0-9]*" | head -1 | cut -d: -f2)
  if [ -z "$val" ] || [ "$val" -eq 0 ]; then
    echo "FAIL: stats $key is '${val:-missing}' after crash recovery" >&2
    echo "$stats" >&2
    exit 1
  fi
done
echo "crash recovery: wreckage absorbed, verdicts identical, disk cache reused"
stop_daemon
rm -rf "$TMPD"
trap - EXIT

echo "== chaos gate: supervised daemon under worker/stall/disk/cache/socket faults =="
# Fixed-seed faults at every supervisor-facing site at once: workers
# crash, workers stall past their watchdog budget, disk publishes tear,
# cache loads corrupt, sockets reset. The daemon must survive the whole
# suite (no process death), retrying clients must converge, and the
# verdict manifest must be byte-identical to a fault-free run.
TMPD=$(mktemp -d)
SOCK="$TMPD/daenerys.sock"
CACHE="$TMPD/cache"
SRV=""
trap '[ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null; rm -rf "$TMPD"' EXIT

start_daemon
baseline=$("$DAE" client --socket "$SOCK" --suite --json)
stop_daemon
rm -rf "$CACHE"

start_chaos_daemon() {
  "$DAE" serve --socket "$SOCK" -j 2 --cache-dir "$CACHE" \
    --watchdog-ms 150 --watchdog-grace 1.0 \
    --faults "worker=0.05,stall=0.02,disk=0.2,cache=0.2,socket=0.1,seed=13" &
  SRV=$!
  i=0
  while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "FAIL: chaos daemon did not bind" >&2; exit 1; }
    sleep 0.05
  done
}
start_chaos_daemon
for round in 1 2 3; do
  chaos=$("$DAE" client --socket "$SOCK" --retry 100 --suite --json)
  if [ "$(echo "$baseline" | verdicts)" != "$(echo "$chaos" | verdicts)" ]; then
    echo "FAIL: chaos round $round moved a verdict" >&2; exit 1
  fi
  kill -0 "$SRV" 2>/dev/null || {
    echo "FAIL: daemon died during chaos round $round" >&2; exit 1; }
done
stats=$("$DAE" client --socket "$SOCK" --retry 100 --stats)
for key in crashes respawns; do
  echo "$stats" | grep -q "\"$key\":" || {
    echo "FAIL: chaos stats missing $key" >&2; echo "$stats" >&2; exit 1; }
done
crashes=$(echo "$stats" | grep -o '"crashes":[0-9]*' | head -1 | cut -d: -f2)
stalls=$(echo "$stats" | grep -o '"stalls":[0-9]*' | head -1 | cut -d: -f2)
echo "chaos: 3 suite rounds byte-identical to fault-free (worker crashes=$crashes stalls=$stalls, daemon alive)"
"$DAE" client --socket "$SOCK" --retry 100 --shutdown >/dev/null
wait "$SRV" || { echo "FAIL: chaos daemon exited non-zero" >&2; exit 1; }
SRV=""
rm -rf "$TMPD"
trap - EXIT

echo "== bench smoke: smt_incremental + budget_overhead + absint_overhead + conc_suite + serve --quick =="
dune exec bench/main.exe -- smt_incremental --quick
dune exec bench/main.exe -- budget_overhead --quick
dune exec bench/main.exe -- absint_overhead --quick
dune exec bench/main.exe -- conc_suite --quick
dune exec bench/main.exe -- serve_throughput --quick

echo "== corpus gate: fixed-seed synthetic corpus, golden verdicts + throughput =="
# Re-verifies the quick corpus (fixed seed) twice — with the abstract
# pre-discharge on (default) and off (--no-absint). Both runs must
# match the golden manifest and throughput tolerance, and their
# verdict manifests must be byte-identical: the absint pass may only
# short-circuit Valid verdicts, never move one.
out_on=$(dune exec bench/main.exe -- corpus_throughput --quick --check) \
  || { echo "$out_on"; exit 1; }
echo "$out_on"
out_off=$(dune exec bench/main.exe -- corpus_throughput --quick --check --no-absint) \
  || { echo "$out_off"; exit 1; }
echo "$out_off"
m_on=$(echo "$out_on" | grep -o '[0-9a-f]\{32\}' | head -1)
m_off=$(echo "$out_off" | grep -o '[0-9a-f]\{32\}' | head -1)
if [ -z "$m_on" ] || [ "$m_on" != "$m_off" ]; then
  echo "FAIL: corpus manifest moved under --no-absint ($m_on vs $m_off)" >&2
  exit 1
fi
echo "absint invariance: manifest $m_on identical with the pass on and off"

echo "tier-1 gate: OK"
