#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#   ./dev/check.sh
# Runs the build, the full test suite, the static analyzer (suite +
# examples must lint clean; the ill-formed suite must produce its
# annotated codes), and a smoke run of the parallel engine (2 worker
# domains, VC cache on, lint gate on) over the benchmark suite.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== daenerys lint (suite + examples; fails on any error) =="
dune exec bin/daenerys.exe -- lint --stats

echo "== daenerys lint --ill-formed (negative-suite expectations) =="
dune exec bin/daenerys.exe -- lint --ill-formed

echo "== daenerys suite --lint -j 2 (smoke) =="
dune exec bin/daenerys.exe -- suite --lint -j 2 --stats

echo "== surface (.hl) gate: parse + lint + verify every examples/*.hl =="
for f in examples/*.hl; do
  case "$f" in
    examples/bad_swap.hl)
      # negative program: must parse, lint clean, and FAIL verification
      dune exec bin/daenerys.exe -- lint "$f"
      if dune exec bin/daenerys.exe -- verify "$f" >/dev/null 2>&1; then
        echo "FAIL: $f verified but must fail" >&2; exit 1
      fi
      echo "$f: failed verification (as expected)"
      ;;
    examples/broken.hl)
      # ill-formed program: lint must report DA001 anchored at 6:12
      out=$(dune exec bin/daenerys.exe -- lint --json "$f" 2>&1) && {
        echo "FAIL: lint $f exited 0 but must report errors" >&2; exit 1; }
      for needle in '"DA001"' 'broken.hl' '"line": 6' '"col": 12'; do
        case "$out" in
          *"$needle"*) ;;
          *) echo "FAIL: lint --json $f missing $needle" >&2
             echo "$out" >&2; exit 1 ;;
        esac
      done
      echo "$f: DA001 at broken.hl:6:12 (as expected)"
      ;;
    *)
      # positive twins: must lint clean and verify
      dune exec bin/daenerys.exe -- lint "$f"
      dune exec bin/daenerys.exe -- verify "$f"
      ;;
  esac
done

echo "== chaos gate: session+cache faults must not move any verdict =="
# Session faults force the incremental-session fallback path and cache
# faults corrupt every stored VC entry; both are absorbed (fallback /
# re-solve), so the suite must still exit 0 with every verdict intact.
dune exec bin/daenerys.exe -- suite --faults "session=1,cache=0.5,seed=7" -j 2

echo "== chaos gate: solver/pool faults may degrade but never flip =="
# Injected solver/pool crashes turn verdicts into 'crashed' (exit 2,
# "the verifier gave up"); what they must never do is flip an entry to
# the wrong verdict (exit 1).
if dune exec bin/daenerys.exe -- suite --faults "solver=0.2,pool=0.2,seed=11" -j 4; then
  :  # clean run: every fault landed on a retried/absorbed path
else
  st=$?
  if [ "$st" -ne 2 ]; then
    echo "FAIL: chaos suite exited $st (a fault flipped a verdict)" >&2
    exit 1
  fi
  echo "(verifier gave up on some entries under faults — expected)"
fi

echo "== bench smoke: smt_incremental + budget_overhead --quick =="
dune exec bench/main.exe -- smt_incremental --quick
dune exec bench/main.exe -- budget_overhead --quick

echo "tier-1 gate: OK"
