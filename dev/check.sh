#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#   ./dev/check.sh
# Runs the build, the full test suite, and a smoke run of the parallel
# engine (2 worker domains, VC cache on) over the benchmark suite.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== daenerys suite -j 2 (smoke) =="
dune exec bin/daenerys.exe -- suite -j 2 --stats

echo "== bench smoke: smt_incremental --quick =="
dune exec bench/main.exe -- smt_incremental --quick

echo "tier-1 gate: OK"
