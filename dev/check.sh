#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
#   ./dev/check.sh
# Runs the build, the full test suite, the static analyzer (suite +
# examples must lint clean; the ill-formed suite must produce its
# annotated codes), and a smoke run of the parallel engine (2 worker
# domains, VC cache on, lint gate on) over the benchmark suite.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== daenerys lint (suite + examples; fails on any error) =="
dune exec bin/daenerys.exe -- lint --stats

echo "== daenerys lint --ill-formed (negative-suite expectations) =="
dune exec bin/daenerys.exe -- lint --ill-formed

echo "== daenerys suite --lint -j 2 (smoke) =="
dune exec bin/daenerys.exe -- suite --lint -j 2 --stats

echo "== bench smoke: smt_incremental --quick =="
dune exec bench/main.exe -- smt_incremental --quick

echo "tier-1 gate: OK"
