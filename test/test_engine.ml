(** Engine tests: parallel verification is observationally identical to
    sequential verification (for positive AND negative suite entries),
    the VC cache changes no verdict, and the cache survives concurrent
    hammering from several domains. *)

module T = Smt.Term
module V = Verifier.Exec
module Pr = Suite.Programs
module E = Engine

let outcome : V.outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf o -> V.pp_outcome ppf o)
    ( = )

let proc_results = Alcotest.(list (pair string outcome))

let engine_results config =
  let report =
    E.verify_programs ~config
      (List.map (fun (e : Pr.entry) -> (e.name, e.prog)) Pr.all)
  in
  List.map (fun (g : E.group_result) -> (g.E.group, g.E.outcomes)) report.E.groups

(* 1. Per-entry: 4 worker domains produce exactly the sequential
   verifier's outcomes, including failure messages of the negative
   entries. *)
let test_parallel_matches_sequential () =
  let par =
    engine_results { E.default_config with E.domains = 4; cache = false }
  in
  List.iter
    (fun (e : Pr.entry) ->
      let seq = V.verify e.prog in
      Alcotest.check proc_results e.name seq (List.assoc e.name par))
    Pr.all

(* 2. Cache on ≡ cache off, at one and several domains. *)
let test_cache_preserves_verdicts () =
  let go domains cache =
    engine_results { E.default_config with E.domains; cache }
  in
  let reference = go 1 false in
  List.iter
    (fun (domains, cache) ->
      List.iter
        (fun (name, outs) ->
          Alcotest.check proc_results
            (Printf.sprintf "%s (j=%d cache=%b)" name domains cache)
            outs
            (List.assoc name (go domains cache)))
        reference)
    [ (1, true); (4, true) ]

(* 3. The engine report accounts every job, obligations route through
   the incremental sessions, and cache accounting stays consistent
   (sessions bypass the cache, so hits/misses cover exactly the
   one-shot queries that remain). *)
let test_engine_stats () =
  let progs =
    List.concat_map
      (fun r ->
        List.map
          (fun (e : Pr.entry) -> (Printf.sprintf "%s#%d" e.name r, e.prog))
          Pr.positive)
      [ 0; 1 ]
  in
  let njobs =
    List.fold_left (fun n (_, p) -> n + List.length p.V.procs) 0 progs
  in
  let report =
    E.verify_programs
      ~config:{ E.default_config with E.domains = 2; cache = true }
      progs
  in
  let s = report.E.stats in
  Alcotest.(check int) "job count" njobs s.E.jobs;
  Alcotest.(check int)
    "jobs partitioned over domains" njobs
    (Array.fold_left ( + ) 0 s.E.pool.E.Pool.jobs_per_domain);
  Alcotest.(check bool)
    "obligations went through sessions" true
    (s.E.smt.Smt.Stats.session_checks > 0);
  Alcotest.(check bool)
    "lookups = queries routed through cache" true
    (s.E.cache_hits + s.E.cache_misses = s.E.smt.Smt.Stats.queries);
  Alcotest.(check bool) "all verified" true (List.for_all E.group_ok report.E.groups)

(* 4. qcheck: hammer one shared cache from several domains; verdicts
   must match the uncached sequential solver on every instance. *)

let gen_formula : T.t QCheck.Gen.t =
  let open QCheck.Gen in
  let vars = [ "x"; "y"; "z" ] in
  let atom =
    oneof [ map T.int (int_range (-4) 4); map T.var (oneofl vars) ]
  in
  let arith =
    oneof [ atom; map2 T.add atom atom; map2 T.sub atom atom ]
  in
  let cmp =
    oneof [ map2 T.eq arith arith; map2 T.le arith arith; map2 T.lt arith arith ]
  in
  let rec form n =
    if n <= 0 then cmp
    else
      frequency
        [
          (3, cmp);
          (2, map T.not_ (form (n - 1)));
          (2, map2 (fun a b -> T.and_ [ a; b ]) (form (n - 1)) (form (n - 1)));
          (2, map2 (fun a b -> T.or_ [ a; b ]) (form (n - 1)) (form (n - 1)));
        ]
  in
  form 2

let verdict = function
  | Smt.Solver.Sat _ -> "sat"
  | Smt.Solver.Unsat -> "unsat"
  | Smt.Solver.Unknown -> "unknown"
  | Smt.Solver.Resource_out _ -> "resource-out"

let cache_hammer =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"vc-cache-parallel-consistent" ~count:30
       QCheck.(make ~print:(fun ts -> String.concat "; " (List.map T.to_string ts))
                 (Gen.list_size (Gen.int_range 4 10) gen_formula))
       (fun instances ->
         let expected = List.map (fun t -> verdict (Smt.Solver.check_sat [ t ])) instances in
         let cache = E.Vc_cache.create () in
         E.Vc_cache.install cache;
         let got =
           Fun.protect ~finally:E.Vc_cache.uninstall (fun () ->
               (* Each domain checks every instance at a different
                  starting offset, so lookups and stores of the same
                  key race across domains. *)
               let work offset () =
                 let arr = Array.of_list instances in
                 let n = Array.length arr in
                 List.init n (fun i ->
                     let j = (i + offset) mod n in
                     (j, verdict (Smt.Solver.check_sat [ arr.(j) ])))
               in
               let spawned =
                 List.init 3 (fun d -> Domain.spawn (work (d + 1)))
               in
               let mine = work 0 () in
               mine :: List.map Domain.join spawned)
         in
         List.for_all
           (List.for_all (fun (j, v) -> String.equal v (List.nth expected j)))
           got
         && E.Vc_cache.hits cache + E.Vc_cache.misses cache
            = 4 * List.length instances))

let () =
  Alcotest.run "engine"
    [
      ( "engine",
        [
          Alcotest.test_case "parallel-matches-sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "cache-preserves-verdicts" `Quick
            test_cache_preserves_verdicts;
          Alcotest.test_case "engine-stats" `Quick test_engine_stats;
          cache_hammer;
        ] );
    ]
