(** Tests for the utility substrate: rational arithmetic laws,
    union-find, list helpers, and the watchdog's two-stage
    escalation (driven deterministically, no monitor domain). *)

open Stdx

let qgen =
  QCheck.Gen.(
    map2
      (fun n d -> Q.mk n d)
      (int_range (-50) 50)
      (oneof [ int_range 1 12; int_range (-12) (-1) ]))

let arb_q = QCheck.make ~print:Q.to_string qgen

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let q_props =
  [
    prop "add-comm" 500
      (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a));
    prop "add-assoc" 500
      (QCheck.triple arb_q arb_q arb_q)
      (fun (a, b, c) ->
        Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c));
    prop "mul-distributes" 500
      (QCheck.triple arb_q arb_q arb_q)
      (fun (a, b, c) ->
        Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    prop "sub-inverse" 500
      (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.equal (Q.add (Q.sub a b) b) a);
    prop "compare-antisym" 500
      (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.compare a b = -Q.compare b a);
    prop "normalized" 500 arb_q (fun a ->
        Q.den a > 0 && (Q.num a = 0 || abs (Q.num a) > 0));
    prop "floor-le" 500 arb_q (fun a ->
        Q.leq (Q.of_int (Q.floor a)) a && Q.lt a (Q.of_int (Q.floor a + 1)));
    prop "ceil-ge" 500 arb_q (fun a ->
        Q.geq (Q.of_int (Q.ceil a)) a && Q.gt a (Q.of_int (Q.ceil a - 1)));
    prop "inv-mul" 500 arb_q (fun a ->
        QCheck.assume (not (Q.equal a Q.zero));
        Q.equal (Q.mul a (Q.inv a)) Q.one);
  ]

let test_q_units () =
  Alcotest.(check bool) "1/2 + 1/2 = 1" true Q.(equal (add half half) one);
  Alcotest.(check bool) "1/3 lt 1/2" true (Q.lt (Q.mk 1 3) Q.half);
  Alcotest.(check int) "floor -3/2" (-2) (Q.floor (Q.mk (-3) 2));
  Alcotest.(check int) "ceil -3/2" (-1) (Q.ceil (Q.mk (-3) 2));
  Alcotest.(check string) "pp" "5/3" (Q.to_string (Q.mk 10 6))

let test_union_find () =
  let uf = Union_find.create () in
  let a = Union_find.make uf
  and b = Union_find.make uf
  and c = Union_find.make uf in
  Alcotest.(check bool) "distinct" false (Union_find.equiv uf a b);
  ignore (Union_find.union uf a b);
  Alcotest.(check bool) "merged" true (Union_find.equiv uf a b);
  Alcotest.(check bool) "c apart" false (Union_find.equiv uf a c);
  ignore (Union_find.union uf b c);
  Alcotest.(check bool) "transitive" true (Union_find.equiv uf a c)

let uf_prop =
  prop "union-find partitions" 200
    QCheck.(list (pair (int_bound 15) (int_bound 15)))
    (fun pairs ->
      let uf = Union_find.create () in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* equiv is an equivalence relation consistent with the unions *)
      List.for_all (fun (a, b) -> Union_find.equiv uf a b) pairs
      && List.for_all
           (fun (a, _) -> Union_find.equiv uf a a)
           pairs)

let test_listx () =
  Alcotest.(check (option (pair int (list int))))
    "find_remove" (Some (3, [ 1; 2; 4 ]))
    (Listx.find_remove (fun x -> x > 2) [ 1; 2; 3; 4 ]);
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 5);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check int) "pairs" 6 (List.length (Listx.all_pairs [ 1; 2; 3; 4 ]))

let test_gensym () =
  let g = Gensym.create ~prefix:"t" () in
  let a = Gensym.fresh g and b = Gensym.fresh g in
  Alcotest.(check bool) "fresh distinct" true (a <> b)

(* A passive watchdog ([monitor:false]) whose clock the test owns:
   [scan ~now] replaces the monitor domain, so every escalation step
   is deterministic. *)
let test_watchdog_escalation () =
  let wd = Watchdog.create ~monitor:false () in
  let t0 = Unix.gettimeofday () in
  let cancelled = ref false and abandoned = ref false in
  let w =
    Watchdog.watch wd ~grace:1.0 ~deadline_ms:1000.0
      ~cancel:(fun () -> cancelled := true)
      ~abandon:(fun () -> abandoned := true)
      ()
  in
  (* Before the deadline: nothing fires. *)
  Watchdog.scan ~now:(t0 +. 0.5) wd;
  Alcotest.(check bool) "quiet before deadline" false !cancelled;
  (* Past deadline × grace: the soft stage cancels, once. *)
  Watchdog.scan ~now:(t0 +. 1.5) wd;
  Alcotest.(check bool) "soft stage cancelled" true !cancelled;
  Alcotest.(check bool) "hard stage not yet" false !abandoned;
  Watchdog.scan ~now:(t0 +. 1.6) wd;
  Alcotest.(check int) "soft fires once" 1 (Watchdog.stats wd).Watchdog.cancels;
  (* Past twice that: the hard stage writes the activity off. *)
  Watchdog.scan ~now:(t0 +. 2.5) wd;
  Alcotest.(check bool) "hard stage abandoned" true !abandoned;
  (match Watchdog.unwatch wd w with
  | `Was_abandoned -> ()
  | `Clean | `Was_cancelled -> Alcotest.fail "unwatch must report abandonment");
  let st = Watchdog.stats wd in
  Alcotest.(check int) "no active watches left" 0 st.Watchdog.active;
  Alcotest.(check int) "abandons counted" 1 st.Watchdog.abandons;
  Watchdog.stop wd

let test_watchdog_clean_completion () =
  let wd = Watchdog.create ~monitor:false () in
  let fired = ref false in
  let w =
    Watchdog.watch wd ~grace:1.0 ~deadline_ms:1000.0
      ~cancel:(fun () -> fired := true)
      ~abandon:(fun () -> fired := true)
      ()
  in
  (match Watchdog.unwatch wd w with
  | `Clean -> ()
  | _ -> Alcotest.fail "completing inside the deadline is clean");
  (* A scan after completion must not fire anything. *)
  Watchdog.scan ~now:(Unix.gettimeofday () +. 60.0) wd;
  Alcotest.(check bool) "disarmed watch never fires" false !fired;
  Watchdog.stop wd

let test_watchdog_long_stall_fires_both_in_order () =
  (* The first scan after a long stall finds both stages overdue: it
     must fire cancel then abandon, in that order. *)
  let wd = Watchdog.create ~monitor:false () in
  let order = ref [] in
  let t0 = Unix.gettimeofday () in
  ignore
    (Watchdog.watch wd ~grace:1.0 ~deadline_ms:10.0
       ~cancel:(fun () -> order := "cancel" :: !order)
       ~abandon:(fun () -> order := "abandon" :: !order)
       ());
  Watchdog.scan ~now:(t0 +. 60.0) wd;
  Alcotest.(check (list string))
    "cancel before abandon" [ "cancel"; "abandon" ] (List.rev !order);
  Watchdog.stop wd

let test_watchdog_callback_errors_swallowed () =
  let wd = Watchdog.create ~monitor:false () in
  let t0 = Unix.gettimeofday () in
  ignore
    (Watchdog.watch wd ~grace:1.0 ~deadline_ms:10.0
       ~cancel:(fun () -> failwith "cancel blew up")
       ~abandon:(fun () -> failwith "abandon blew up")
       ());
  (* The scan must survive both raising callbacks and count them. *)
  Watchdog.scan ~now:(t0 +. 60.0) wd;
  let st = Watchdog.stats wd in
  Alcotest.(check int) "errors counted" 2 st.Watchdog.errors;
  Alcotest.(check int) "stages still advanced" 1 st.Watchdog.abandons;
  Watchdog.stop wd

let () =
  Alcotest.run "stdx"
    [
      ("Q-units", [ Alcotest.test_case "units" `Quick test_q_units ]);
      ("Q-props", q_props);
      ( "union-find",
        [ Alcotest.test_case "basic" `Quick test_union_find; uf_prop ] );
      ("listx", [ Alcotest.test_case "helpers" `Quick test_listx ]);
      ("gensym", [ Alcotest.test_case "fresh" `Quick test_gensym ]);
      ( "watchdog",
        [
          Alcotest.test_case "two-stage escalation" `Quick
            test_watchdog_escalation;
          Alcotest.test_case "clean completion" `Quick
            test_watchdog_clean_completion;
          Alcotest.test_case "long stall fires both" `Quick
            test_watchdog_long_stall_fires_both_in_order;
          Alcotest.test_case "callback errors swallowed" `Quick
            test_watchdog_callback_errors_swallowed;
        ] );
    ]
